// Benchmarks regenerating each table and figure of the paper's evaluation
// (§6). Each benchmark runs a scaled-down version of the corresponding
// experiment pipeline and reports the headline numbers as custom metrics,
// so `go test -bench=.` doubles as a fast reproduction of the paper's
// result shapes. For full-scale runs use cmd/boltbench.
package main

import (
	"testing"

	"gobolt/internal/bench"
	"gobolt/internal/workload"
)

// benchScale keeps `go test -bench=.` in the minutes range.
const benchScale = bench.Scale(0.12)

func BenchmarkFig5DataCenterSpeedups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := bench.Fig5(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(100*r.Speedup, "%speedup_"+r.Workload)
		}
	}
}

func BenchmarkFig6HHVMMetrics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := bench.Fig6(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(100*r.Reduction, "%reduction_"+r.Metric)
		}
	}
}

func BenchmarkFig7Clang(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := bench.CompilerExperiment(workload.Clang(), true, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		var bolt, pgo, both float64
		for _, r := range rows {
			bolt += r.BOLT
			pgo += r.PGO
			both += r.PGOBOLT
		}
		n := float64(len(rows))
		b.ReportMetric(100*bolt/n, "%speedup_BOLT")
		b.ReportMetric(100*pgo/n, "%speedup_PGO+LTO")
		b.ReportMetric(100*both/n, "%speedup_PGO+LTO+BOLT")
	}
}

func BenchmarkFig8GCC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := bench.CompilerExperiment(workload.GCC(), false, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		var bolt, pgo, both float64
		for _, r := range rows {
			bolt += r.BOLT
			pgo += r.PGO
			both += r.PGOBOLT
		}
		n := float64(len(rows))
		b.ReportMetric(100*bolt/n, "%speedup_BOLT")
		b.ReportMetric(100*pgo/n, "%speedup_PGO")
		b.ReportMetric(100*both/n, "%speedup_PGO+BOLT")
	}
}

func BenchmarkTable2DynoStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table2(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9HeatMaps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		before, after, _, err := bench.Fig9(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(before.Heat.HotSpan(0.95))/1024, "KB_hot_before")
		b.ReportMetric(float64(after.Heat.HotSpan(0.95))/1024, "KB_hot_after")
	}
}

func BenchmarkFig11LBRImportance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := bench.Fig11(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Metric == "CPU time" {
				b.ReportMetric(100*r.LBRGain, "%cpu_gain_"+r.Scenario)
			}
		}
	}
}

func BenchmarkSec51SamplingEvents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := bench.Events(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(100*r.Speedup, "%speedup_"+r.Config)
		}
	}
}

func BenchmarkSec4ICF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := bench.ICF(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*float64(res.BoltBytes)/float64(res.TextSize), "%text_folded")
		b.ReportMetric(float64(res.BoltFolded), "funcs_folded")
	}
}

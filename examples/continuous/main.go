// Continuous profiling: the §7.3 "Beyond" loop in one file.
//
//	go run ./examples/continuous
//
// A data center never stops: by the time a binary is BOLTed and deployed,
// the profile that built it is already aging. This example closes the
// loop the way production BOLT does:
//
//  1. build and profile a binary, then optimize it (gobolt writes a
//     .bolt.bat address-translation section into the output);
//  2. keep sampling the *optimized* binary in "production";
//  3. translate that profile back to input-binary coordinates through
//     BAT (the perf2bolt -translate step);
//  4. re-optimize the original binary with the translated profile — no
//     un-optimized canary machines needed;
//  5. ship a *new release* of the program and apply the same old
//     profile: stale-profile shape matching (internal/stale) recovers
//     the records whose offsets no longer resolve.
package main

import (
	"fmt"
	"log"

	"gobolt/internal/bat"
	"gobolt/internal/bench"
	"gobolt/internal/cc"
	"gobolt/internal/core"
	"gobolt/internal/ld"
	"gobolt/internal/passes"
	"gobolt/internal/perf"
	"gobolt/internal/uarch"
	"gobolt/internal/workload"
)

func main() {
	spec := workload.Tiny()
	mode := perf.DefaultMode()

	link := func(s workload.Spec) *ld.Result {
		objs, err := cc.Compile(workload.Generate(s), cc.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		res, err := ld.Link(objs, ld.Options{EmitRelocs: true, ICF: true})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	// 1. Build v1, profile it, embed CFG shapes (vmrun -record -shapes).
	v1 := link(spec)
	fd, _, err := perf.RecordFile(v1.File, mode, 0)
	if err != nil {
		log.Fatal(err)
	}
	ctx, err := core.NewContext(v1.File, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fd.Shapes = core.ComputeShapes(ctx)
	fmt.Printf("v1 profiled: %d branch records (total count %d), %d shapes\n",
		len(fd.Branches), fd.TotalBranchCount(), len(fd.Shapes))

	// 2. Optimize; the output carries the BAT section.
	opt, _, err := passes.Optimize(v1.File, fd, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	table, err := bat.FromFile(opt.File)
	if err != nil || table == nil {
		log.Fatalf("no BAT table in optimized binary: %v", err)
	}
	fmt.Printf("bolted: %d functions moved; BAT maps %d ranges of %d functions\n",
		opt.MovedFuncs, len(table.Ranges), len(table.Funcs))

	// 3. Sample the optimized binary in "production" and translate.
	fdProd, _, err := perf.RecordFile(opt.File, mode, 0)
	if err != nil {
		log.Fatal(err)
	}
	fdBack, st := bat.TranslateProfile(fdProd, opt.File, table)
	fmt.Printf("production profile translated: %d counts moved back to input coordinates, %d passthrough, %d dropped\n",
		st.TranslatedBranches, st.PassthroughCount, st.DroppedCount)

	// 4. Re-optimize v1 with the translated profile and verify.
	opt2, _, err := passes.Optimize(v1.File, fdBack, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	mb, err := bench.Measure(v1.File, uarch.DefaultConfig(), false)
	if err != nil {
		log.Fatal(err)
	}
	m2, err := bench.Measure(opt2.File, uarch.DefaultConfig(), false)
	if err != nil {
		log.Fatal(err)
	}
	if mb.Checksum != m2.Checksum {
		log.Fatalf("BUG: checksum changed: %d -> %d", mb.Checksum, m2.Checksum)
	}
	fmt.Printf("re-bolted from production profile: %.2f%% speedup, identical result %d\n",
		100*uarch.Speedup(mb.Metrics, m2.Metrics), m2.Checksum)

	// 5. New release: same program, grown prologues. The old profile's
	//    offsets are stale; shape matching recovers them.
	spec2 := spec
	spec2.EntryPadOps = 3
	v2 := link(spec2)
	ctx2, err := core.NewContext(v2.File, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	ctx2.ApplyProfile(fd)
	fmt.Printf("stale profile on v2: %d counts recovered by shape matching (%d funcs), %d dropped\n",
		ctx2.Stats["profile-stale-count"], ctx2.Stats["profile-stale-funcs"],
		ctx2.Stats["profile-stale-drop-count"])
}

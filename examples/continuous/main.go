// Continuous profiling: the §7.3 "Beyond" loop in one file.
//
//	go run ./examples/continuous
//
// A data center never stops: by the time a binary is BOLTed and deployed,
// the profile that built it is already aging. This example closes the
// loop the way production BOLT does, entirely through the bolt package:
//
//  1. build and profile a binary, then optimize it (the session writes a
//     .bolt.bat address-translation section into the output);
//  2. keep sampling the *optimized* binary in "production";
//  3. feed that profile back through bolt.SampledOn, which auto-detects
//     the BAT table and translates the samples to input-binary
//     coordinates (the perf2bolt -translate step);
//  4. re-optimize the original binary with the translated profile — no
//     un-optimized canary machines needed;
//  5. ship a *new release* of the program and apply the same old
//     profile: stale-profile shape matching (internal/stale) recovers
//     the records whose offsets no longer resolve.
package main

import (
	"context"
	"fmt"
	"log"

	"gobolt/bolt"
	"gobolt/internal/bench"
	"gobolt/internal/cc"
	"gobolt/internal/elfx"
	"gobolt/internal/ld"
	"gobolt/internal/perf"
	"gobolt/internal/profile"
	"gobolt/internal/uarch"
	"gobolt/internal/workload"
)

func main() {
	cx := context.Background()
	spec := workload.Tiny()
	mode := perf.DefaultMode()

	link := func(s workload.Spec) *ld.Result {
		objs, err := cc.Compile(workload.Generate(s), cc.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		res, err := ld.Link(objs, ld.Options{EmitRelocs: true, ICF: true})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	// optimize runs one full session and returns it (output, report,
	// stats all hang off the session).
	optimize := func(f *elfx.File, fd *profile.Fdata) (*bolt.Session, *bolt.Report) {
		sess, err := bolt.OpenELF(f)
		if err != nil {
			log.Fatal(err)
		}
		if err := sess.LoadProfile(cx, bolt.Fdata(fd)); err != nil {
			log.Fatal(err)
		}
		rep, err := sess.Optimize(cx)
		if err != nil {
			log.Fatal(err)
		}
		return sess, rep
	}

	// 1. Build v1, profile it, embed CFG shapes (vmrun -record -shapes).
	v1 := link(spec)
	fd, _, err := perf.RecordFile(v1.File, mode, 0)
	if err != nil {
		log.Fatal(err)
	}
	shapeSess, err := bolt.OpenELF(v1.File)
	if err != nil {
		log.Fatal(err)
	}
	if err := shapeSess.Analyze(cx); err != nil {
		log.Fatal(err)
	}
	if fd.Shapes, err = shapeSess.Shapes(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("v1 profiled: %d branch records (total count %d), %d shapes\n",
		len(fd.Branches), fd.TotalBranchCount(), len(fd.Shapes))

	// 2. Optimize; the output carries the BAT section.
	sess1, rep1 := optimize(v1.File, fd)
	fmt.Printf("bolted: %d functions moved\n", rep1.MovedFuncs)

	// 3. Sample the optimized binary in "production" and translate back
	//    through the auto-detected BAT table.
	fdProd, _, err := perf.RecordFile(sess1.Output(), mode, 0)
	if err != nil {
		log.Fatal(err)
	}
	src := bolt.SampledOnELF(bolt.Fdata(fdProd), sess1.Output())
	fdBack, err := src.Load(cx)
	if err != nil {
		log.Fatal(err)
	}
	if !src.Result.Translated {
		log.Fatal("no BAT table in optimized binary")
	}
	fmt.Printf("production profile translated via BAT (%d funcs, %d ranges): %d counts moved back to input coordinates, %d passthrough, %d dropped\n",
		src.Result.BATFuncs, src.Result.BATRanges,
		src.Result.Stats.TranslatedBranches, src.Result.Stats.PassthroughCount, src.Result.Stats.DroppedCount)

	// 4. Re-optimize v1 with the translated profile and verify.
	sess2, _ := optimize(v1.File, fdBack)
	mb, err := bench.Measure(v1.File, uarch.DefaultConfig(), false)
	if err != nil {
		log.Fatal(err)
	}
	m2, err := bench.Measure(sess2.Output(), uarch.DefaultConfig(), false)
	if err != nil {
		log.Fatal(err)
	}
	if mb.Checksum != m2.Checksum {
		log.Fatalf("BUG: checksum changed: %d -> %d", mb.Checksum, m2.Checksum)
	}
	fmt.Printf("re-bolted from production profile: %.2f%% speedup, identical result %d\n",
		100*uarch.Speedup(mb.Metrics, m2.Metrics), m2.Checksum)

	// 5. New release: same program, grown prologues. The old profile's
	//    offsets are stale; shape matching recovers them.
	spec2 := spec
	spec2.EntryPadOps = 3
	v2 := link(spec2)
	sessV2, err := bolt.OpenELF(v2.File)
	if err != nil {
		log.Fatal(err)
	}
	if err := sessV2.LoadProfile(cx, bolt.Fdata(fd)); err != nil {
		log.Fatal(err)
	}
	if err := sessV2.Analyze(cx); err != nil {
		log.Fatal(err)
	}
	stats, err := sessV2.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stale profile on v2: %d counts recovered by shape matching (%d funcs), %d dropped\n",
		stats["profile-stale-count"], stats["profile-stale-funcs"],
		stats["profile-stale-drop-count"])
}

// Datacenter: the paper's headline scenario (§6.1) — a large,
// front-end-bound service built with LTO and link-time HFSort (the
// production baseline), then optimized with gobolt. Reports the Figure 5
// speedup, the Figure 6 micro-architecture metrics, and the Figure 9
// hot-code packing for an HHVM-like workload.
//
//	go run ./examples/datacenter [-scale 0.3]
package main

import (
	"flag"
	"fmt"
	"log"

	"gobolt/internal/bench"
	"gobolt/internal/core"
	"gobolt/internal/perf"
	"gobolt/internal/uarch"
	"gobolt/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 0.3, "workload scale")
	flag.Parse()

	spec := workload.HHVM()
	spec.Iterations = int(float64(spec.Iterations) * *scale)
	mode := perf.DefaultMode()

	fmt.Println("building hhvm-like service (LTO + link-time HFSort baseline)...")
	base, lres, err := bench.Build(spec, bench.CfgHFSortLTO, mode)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d functions, %d KB text\n", len(base.FuncSymbols()), lres.TextSize/1024)

	fmt.Println("profiling and applying gobolt...")
	bolted, rep, err := bench.Bolt(base, mode, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  passes: reordered %d functions' blocks, split %d, folded %d, ICP %d, PLT %d\n",
		rep.Stats["reorder-bbs-funcs"], rep.Stats["split-functions"],
		rep.Stats["icf-folded"], rep.Stats["icp-promoted"], rep.Stats["plt-calls"])

	fmt.Println("measuring under the microarchitecture simulator...")
	mb, err := bench.Measure(base, uarch.DefaultConfig(), true)
	if err != nil {
		log.Fatal(err)
	}
	mo, err := bench.Measure(bolted, uarch.DefaultConfig(), true)
	if err != nil {
		log.Fatal(err)
	}
	if mb.Checksum != mo.Checksum {
		log.Fatalf("BUG: semantics changed")
	}
	b, o := mb.Metrics, mo.Metrics
	fmt.Printf("\nspeedup: %.2f%% (Figure 5 for hhvm)\n", 100*uarch.Speedup(b, o))
	fmt.Println("miss reductions (Figure 6):")
	fmt.Printf("  branch  %6.2f%%\n", 100*uarch.Reduction(b.BranchMiss, o.BranchMiss))
	fmt.Printf("  i-cache %6.2f%%\n", 100*uarch.Reduction(b.L1IMiss, o.L1IMiss))
	fmt.Printf("  i-tlb   %6.2f%%\n", 100*uarch.Reduction(b.ITLBMiss, o.ITLBMiss))
	fmt.Printf("  llc     %6.2f%%\n", 100*uarch.Reduction(b.LLCMiss, o.LLCMiss))
	fmt.Println("hot-code packing (Figure 9, 95% of fetches):")
	fmt.Printf("  before: %d KB   after: %d KB\n",
		mb.Heat.HotSpan(0.95)/1024, mo.Heat.HotSpan(0.95)/1024)
}

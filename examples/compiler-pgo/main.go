// Compiler-PGO: the §6.2 experiment — a Clang-like binary built four
// ways (plain, +BOLT, PGO+LTO, PGO+LTO+BOLT), evaluated on inputs
// different from the training input. Demonstrates the paper's key claim:
// post-link optimization does not merely overlap with compiler PGO; the
// two compose, because the compiler's source-keyed profile merges inlined
// copies (Figure 2) while gobolt sees per-address truth.
//
//	go run ./examples/compiler-pgo [-scale 0.25]
package main

import (
	"flag"
	"fmt"
	"log"

	"gobolt/internal/bench"
	"gobolt/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 0.25, "workload scale")
	flag.Parse()

	fmt.Println("running the Figure 7 matrix on a clang-like workload...")
	rows, report, err := bench.CompilerExperiment(workload.Clang(), true, bench.Scale(*scale))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)

	// The shape that matters (paper Figure 7): BOLT alone is competitive
	// with PGO+LTO, and the combination beats both.
	var bolt, pgo, both float64
	for _, r := range rows {
		bolt += r.BOLT
		pgo += r.PGO
		both += r.PGOBOLT
	}
	n := float64(len(rows))
	fmt.Printf("\naverages: BOLT %.2f%%  PGO+LTO %.2f%%  PGO+LTO+BOLT %.2f%%\n",
		100*bolt/n, 100*pgo/n, 100*both/n)
	if both > pgo && both > 0 {
		fmt.Println("=> gains compose: post-link layout is complementary to compiler PGO")
	}
}

// Exceptions: demonstrates that gobolt preserves C++-style exception
// machinery while aggressively moving code (§3.4, Figure 4): landing pads
// go to the cold fragment (-split-eh), the CFI and LSDA tables are
// rebuilt for the new layout, and the VM's CFI-driven unwinder still
// lands every throw on the right handler.
//
//	go run ./examples/exceptions
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"gobolt/bolt"
	"gobolt/internal/bench"
	"gobolt/internal/cc"
	"gobolt/internal/cfi"
	"gobolt/internal/ld"
	"gobolt/internal/perf"
	"gobolt/internal/uarch"
	"gobolt/internal/vm"
	"gobolt/internal/workload"
)

func main() {
	cx := context.Background()
	spec := workload.Tiny()
	spec.ThrowFrac = 0.9 // make exception paths ubiquitous
	spec.ColdProb = 0.1  // and reasonably frequent at runtime
	prog := workload.Generate(spec)

	objs, err := cc.Compile(prog, cc.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	linked, err := ld.Link(objs, ld.Options{EmitRelocs: true})
	if err != nil {
		log.Fatal(err)
	}

	m, err := vm.New(linked.File)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.Run(0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: result=%d, %d exceptions thrown and caught\n", m.Result(), m.C.Throws)

	fd, _, err := perf.RecordFile(linked.File, perf.DefaultMode(), 0)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := bolt.OpenELF(linked.File) // -split-eh is on by default
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.LoadProfile(cx, bolt.Fdata(fd)); err != nil {
		log.Fatal(err)
	}
	rep, err := sess.Optimize(cx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gobolt: split %d functions; %d cold blocks moved\n",
		rep.Stats["split-functions"], rep.Stats["split-cold-blocks"])

	// Show the rebuilt exception metadata.
	out := sess.Output()
	frames, _ := cfi.DecodeFrames(out.Section(cfi.FrameSectionName).Data)
	withLSDA := 0
	for _, f := range frames {
		if f.LSDA != 0 {
			withLSDA++
		}
	}
	fmt.Printf("rebuilt CFI: %d FDEs (%d with exception tables); cold section %d bytes\n",
		len(frames), withLSDA, rep.ColdTextSize)

	// The proof: run the rewritten binary; every unwind must still work.
	m2, err := vm.New(out)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m2.Run(0); err != nil {
		log.Fatal("unwinding broke after rewriting: ", err)
	}
	fmt.Printf("bolted:   result=%d, %d exceptions thrown and caught\n", m2.Result(), m2.C.Throws)
	if m2.Result() != m.Result() || m2.C.Throws != m.C.Throws {
		fmt.Println("MISMATCH — this would be a CFI/LSDA rewriting bug")
		os.Exit(1)
	}
	before, _ := bench.Measure(linked.File, uarch.DefaultConfig(), false)
	after, _ := bench.Measure(out, uarch.DefaultConfig(), false)
	if before != nil && after != nil {
		fmt.Printf("speedup with exception paths split out: %.2f%%\n",
			100*uarch.Speedup(before.Metrics, after.Metrics))
	}
	// Print a Figure 4-style CFG dump of a function with landing pads.
	hottest, err := sess.HottestFunctions(50)
	if err != nil {
		log.Fatal(err)
	}
	for _, fn := range hottest {
		if fn.HasLSDA && fn.Simple {
			fmt.Println("\nFigure 4-style dump of one exception-handling function:")
			if err := sess.PrintCFG(os.Stdout, fn.Name); err != nil {
				log.Fatal(err)
			}
			break
		}
	}
}

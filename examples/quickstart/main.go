// Quickstart: the whole BOLT workflow in one file, driven through the
// public bolt package.
//
//	go run ./examples/quickstart
//
// It builds a small synthetic binary, profiles it under the VM with
// LBR-style sampling, optimizes it with a staged bolt.Session
// (open → profile → optimize → output), verifies the optimized binary
// computes the same result, and compares simulated CPU time.
package main

import (
	"context"
	"fmt"
	"log"

	"gobolt/bolt"
	"gobolt/internal/bench"
	"gobolt/internal/cc"
	"gobolt/internal/ld"
	"gobolt/internal/perf"
	"gobolt/internal/uarch"
	"gobolt/internal/workload"
)

func main() {
	cx := context.Background()

	// 1. "Source code": a seeded synthetic program.
	prog := workload.Generate(workload.Tiny())

	// 2. Compile and link with relocations kept (--emit-relocs), as the
	//    paper's relocations mode requires.
	objs, err := cc.Compile(prog, cc.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	linked, err := ld.Link(objs, ld.Options{EmitRelocs: true, ICF: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built: %d bytes of .text\n", linked.TextSize)

	// 3. Profile with sampled LBRs (perf record -e cycles:u -j any,u).
	fd, m, err := perf.RecordFile(linked.File, perf.DefaultMode(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled: result=%d, %d branch records\n", m.Result(), len(fd.Branches))

	// 4. gobolt through the library: open a session on the linked image,
	//    attach the in-memory profile, optimize.
	sess, err := bolt.OpenELF(linked.File)
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.LoadProfile(cx, bolt.Fdata(fd)); err != nil {
		log.Fatal(err)
	}
	rep, err := sess.Optimize(cx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bolted: moved %d functions, split %d, folded %d (reordered %d)\n",
		rep.MovedFuncs, rep.SplitFuncs, rep.FoldedFuncs, rep.Stats["reorder-bbs-funcs"])

	// 5. Verify semantics and measure both binaries under the simulator.
	before, err := bench.Measure(linked.File, uarch.DefaultConfig(), false)
	if err != nil {
		log.Fatal(err)
	}
	after, err := bench.Measure(sess.Output(), uarch.DefaultConfig(), false)
	if err != nil {
		log.Fatal(err)
	}
	if before.Checksum != after.Checksum {
		log.Fatalf("BUG: checksum changed: %d -> %d", before.Checksum, after.Checksum)
	}
	fmt.Printf("verified: identical result %d\n", after.Checksum)
	fmt.Printf("cycles: %d -> %d (%.2f%% speedup)\n",
		before.Metrics.Cycles, after.Metrics.Cycles,
		100*uarch.Speedup(before.Metrics, after.Metrics))
}

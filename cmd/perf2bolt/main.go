// Command perf2bolt converts raw VM-perf sample data into an fdata
// profile, symbolized against the profiled binary. In this toolchain the
// sampler (vmrun -record) already performs aggregation+symbolization, so
// perf2bolt's job is validation, translation, and re-symbolization:
//
//   - Plain mode parses a profile, checks every location against the
//     binary's symbol table, drops records that no longer resolve, and
//     rewrites the file.
//   - When the binary carries a .bolt.bat section (it was produced by
//     gobolt), the profile was sampled on *optimized* code; perf2bolt
//     translates every location back to input-binary coordinates through
//     the BOLT Address Translation table, so the output feeds a fresh
//     gobolt run on the original binary (§7.3 continuous profiling).
//   - Merge mode (BOLT's merge-fdata) aggregates N profile shards from
//     parallel runs into one deterministic profile.
//
// All three modes are thin adapters over the bolt package's profile
// sources: bolt.SampledOn performs the BAT auto-detection/translation
// and bolt.MergeShards the parallel shard merge.
//
// Usage:
//
//	perf2bolt -p perf.fdata -o clean.fdata binary
//	perf2bolt -merge -o merged.fdata shard1.fdata shard2.fdata ...
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"gobolt/bolt"
	"gobolt/internal/core"
	"gobolt/internal/profile"
)

// errUsage marks a bad invocation; main exits 2 (the flag-package
// convention) after the usage lines were printed, everything else
// exits 1.
var errUsage = errors.New("usage")

func main() {
	if err := run(); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "perf2bolt:", err)
		os.Exit(1)
	}
}

func run() error {
	in := flag.String("p", "", "input profile")
	out := flag.String("o", "", "output profile (default: overwrite input)")
	merge := flag.Bool("merge", false, "merge N profile shards (args are fdata files, no binary)")
	jobs := flag.Int("jobs", 0, "worker threads for parsing merge shards (0 = GOMAXPROCS)")
	translate := flag.Bool("translate", true, "translate through the binary's .bolt.bat section when present")
	inferFlow := flag.Bool("infer-flow", false, "report the profile's flow-equation consistency against the binary's CFGs before/after minimum-cost-flow inference (plain mode: the profile must be in this binary's coordinates)")
	flag.Parse()

	cx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *merge {
		if *inferFlow {
			fmt.Fprintln(os.Stderr, "usage: -infer-flow needs a binary to analyze; it does not apply to -merge")
			return errUsage
		}
		return runMerge(cx, flag.Args(), *out, *jobs)
	}
	if flag.NArg() != 1 || *in == "" {
		fmt.Fprintln(os.Stderr, "usage: perf2bolt -p perf.fdata [-o out.fdata] <binary>")
		fmt.Fprintln(os.Stderr, "       perf2bolt -merge -o out.fdata <shard.fdata>...")
		return errUsage
	}
	binary := flag.Arg(0)

	// SampledOn auto-detects whether the binary is a gobolt output: with
	// a .bolt.bat section the profile is rewritten into input-binary
	// coordinates, otherwise stale records are validated and dropped.
	// -translate=false skips even reading the section, so a corrupt
	// table can always be bypassed.
	src := bolt.SampledOn(bolt.FdataFile(*in), binary)
	src.Translate = *translate
	fd, err := src.Load(cx)
	if err != nil {
		return err
	}
	if err := bolt.SaveProfile(fd, outPath(*in, *out)); err != nil {
		return err
	}
	r := src.Result
	if r.Translated {
		fmt.Fprintf(os.Stderr, "perf2bolt: %s: translated via BAT (%d funcs, %d ranges): %d branch records, %d samples kept; counts: %d translated, %d passthrough, %d dropped -> %s\n",
			binary, r.BATFuncs, r.BATRanges, r.Branches, r.Samples,
			r.Stats.TranslatedBranches+r.Stats.TranslatedSamples,
			r.Stats.PassthroughCount, r.Stats.DroppedCount, outPath(*in, *out))
	} else {
		fmt.Fprintf(os.Stderr, "perf2bolt: %d branch records, %d samples kept (%d dropped) -> %s\n",
			r.Branches, r.Samples, r.Dropped, outPath(*in, *out))
	}
	if *inferFlow {
		return reportFlowAccuracy(cx, binary, fd, r.Translated)
	}
	return nil
}

// reportFlowAccuracy analyzes the binary's CFGs, applies the cleaned
// profile with minimum-cost-flow inference forced on, and prints how
// consistent the counts were before and after the solver — the quickest
// way to judge whether a profile needs inference before trusting it.
func reportFlowAccuracy(cx context.Context, binary string, fd *profile.Fdata, translated bool) error {
	if translated {
		// The profile is now in input-binary coordinates; this binary is
		// the optimized one, so its CFGs no longer match the records.
		fmt.Fprintln(os.Stderr, "perf2bolt: -infer-flow: profile was BAT-translated to input-binary coordinates; run gobolt -infer-flow=always on the input binary instead")
		return nil
	}
	sess, err := bolt.Open(binary, bolt.WithInferFlow(core.InferAlways))
	if err != nil {
		return err
	}
	if err := sess.LoadProfile(cx, bolt.Fdata(fd)); err != nil {
		return err
	}
	if err := sess.Analyze(cx); err != nil {
		return err
	}
	before, after, err := sess.FlowAccuracy()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "perf2bolt: flow accuracy %.4f -> %.4f after min-cost-flow inference\n", before, after)
	return nil
}

// runMerge implements merge-fdata: shards parse concurrently over the
// shared worker pool, then fold into one deterministic profile.
func runMerge(cx context.Context, paths []string, out string, jobs int) error {
	if len(paths) == 0 || out == "" {
		fmt.Fprintln(os.Stderr, "usage: perf2bolt -merge -o out.fdata <shard.fdata>...")
		return errUsage
	}
	src := bolt.MergeShards(bolt.FdataFiles(paths...)...)
	src.Jobs = jobs
	merged, err := src.Load(cx)
	if err != nil {
		return err
	}
	if err := bolt.SaveProfile(merged, out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "perf2bolt: merged %d shards: %d branch records (%d total count), %d samples -> %s\n",
		len(paths), len(merged.Branches), merged.TotalBranchCount(), len(merged.Samples), out)
	return nil
}

func outPath(in, out string) string {
	if out == "" {
		return in
	}
	return out
}

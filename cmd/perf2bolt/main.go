// Command perf2bolt converts raw VM-perf sample data into an fdata
// profile, symbolized against the profiled binary. In this toolchain the
// sampler (vmrun -record) already performs aggregation+symbolization, so
// perf2bolt's job is validation and re-symbolization: it parses a profile,
// checks every location against the binary's symbol table, drops records
// that no longer resolve, and rewrites the file.
//
//	perf2bolt -p perf.fdata -o clean.fdata binary
package main

import (
	"flag"
	"fmt"
	"os"

	"gobolt/internal/elfx"
	"gobolt/internal/profile"
)

func main() {
	in := flag.String("p", "", "input profile")
	out := flag.String("o", "", "output profile (default: overwrite input)")
	flag.Parse()
	if flag.NArg() != 1 || *in == "" {
		fmt.Fprintln(os.Stderr, "usage: perf2bolt -p perf.fdata [-o out.fdata] <binary>")
		os.Exit(2)
	}
	f, err := elfx.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	r, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	fd, err := profile.Parse(r)
	r.Close()
	if err != nil {
		fatal(err)
	}

	resolves := func(l profile.Loc) bool {
		sym, ok := f.SymbolByName(l.Sym)
		return ok && l.Off < sym.Size
	}
	kept := &profile.Fdata{LBR: fd.LBR, Event: fd.Event}
	dropped := 0
	for _, b := range fd.Branches {
		if resolves(b.From) && resolves(b.To) {
			kept.Branches = append(kept.Branches, b)
		} else {
			dropped++
		}
	}
	for _, s := range fd.Samples {
		if resolves(s.At) {
			kept.Samples = append(kept.Samples, s)
		} else {
			dropped++
		}
	}

	outPath := *out
	if outPath == "" {
		outPath = *in
	}
	w, err := os.Create(outPath)
	if err != nil {
		fatal(err)
	}
	if err := kept.Write(w); err != nil {
		fatal(err)
	}
	w.Close()
	fmt.Printf("perf2bolt: %d branch records, %d samples kept (%d dropped) -> %s\n",
		len(kept.Branches), len(kept.Samples), dropped, outPath)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perf2bolt:", err)
	os.Exit(1)
}

// Command perf2bolt converts raw VM-perf sample data into an fdata
// profile, symbolized against the profiled binary. In this toolchain the
// sampler (vmrun -record) already performs aggregation+symbolization, so
// perf2bolt's job is validation, translation, and re-symbolization:
//
//   - Plain mode parses a profile, checks every location against the
//     binary's symbol table, drops records that no longer resolve, and
//     rewrites the file.
//   - When the binary carries a .bolt.bat section (it was produced by
//     gobolt), the profile was sampled on *optimized* code; perf2bolt
//     translates every location back to input-binary coordinates through
//     the BOLT Address Translation table, so the output feeds a fresh
//     gobolt run on the original binary (§7.3 continuous profiling).
//   - Merge mode (BOLT's merge-fdata) aggregates N profile shards from
//     parallel runs into one deterministic profile.
//
// Usage:
//
//	perf2bolt -p perf.fdata -o clean.fdata binary
//	perf2bolt -merge -o merged.fdata shard1.fdata shard2.fdata ...
package main

import (
	"flag"
	"fmt"
	"os"

	"gobolt/internal/bat"
	"gobolt/internal/elfx"
	"gobolt/internal/par"
	"gobolt/internal/profile"
)

func main() {
	in := flag.String("p", "", "input profile")
	out := flag.String("o", "", "output profile (default: overwrite input)")
	merge := flag.Bool("merge", false, "merge N profile shards (args are fdata files, no binary)")
	jobs := flag.Int("jobs", 0, "worker threads for parsing merge shards (0 = GOMAXPROCS)")
	translate := flag.Bool("translate", true, "translate through the binary's .bolt.bat section when present")
	flag.Parse()

	if *merge {
		runMerge(flag.Args(), *out, *jobs)
		return
	}
	if flag.NArg() != 1 || *in == "" {
		fmt.Fprintln(os.Stderr, "usage: perf2bolt -p perf.fdata [-o out.fdata] <binary>")
		fmt.Fprintln(os.Stderr, "       perf2bolt -merge -o out.fdata <shard.fdata>...")
		os.Exit(2)
	}
	f, err := elfx.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	fd, err := parseFile(*in)
	if err != nil {
		fatal(err)
	}

	// Translation mode: the binary is a gobolt output; rewrite the
	// profile into input-binary coordinates through its BAT table.
	// -translate=false skips even reading the section, so a corrupt
	// table can always be bypassed.
	var table *bat.Table
	if *translate {
		if table, err = bat.FromFile(f); err != nil {
			fatal(err)
		}
	}
	if table != nil {
		kept, st := bat.TranslateProfile(fd, f, table)
		writeProfile(kept, *in, *out)
		fmt.Printf("perf2bolt: %s: translated via BAT (%d funcs, %d ranges): %d branch records, %d samples kept; counts: %d translated, %d passthrough, %d dropped -> %s\n",
			flag.Arg(0), len(table.Funcs), len(table.Ranges),
			len(kept.Branches), len(kept.Samples),
			st.TranslatedBranches+st.TranslatedSamples, st.PassthroughCount, st.DroppedCount, outPath(*in, *out))
		return
	}

	resolves := func(l profile.Loc) bool {
		sym, ok := f.SymbolByName(l.Sym)
		return ok && l.Off < sym.Size
	}
	kept := &profile.Fdata{LBR: fd.LBR, Event: fd.Event, Shapes: fd.Shapes}
	dropped := 0
	for _, b := range fd.Branches {
		if resolves(b.From) && resolves(b.To) {
			kept.Branches = append(kept.Branches, b)
		} else {
			dropped++
		}
	}
	for _, s := range fd.Samples {
		if resolves(s.At) {
			kept.Samples = append(kept.Samples, s)
		} else {
			dropped++
		}
	}
	writeProfile(kept, *in, *out)
	fmt.Printf("perf2bolt: %d branch records, %d samples kept (%d dropped) -> %s\n",
		len(kept.Branches), len(kept.Samples), dropped, outPath(*in, *out))
}

// runMerge implements merge-fdata: shards parse concurrently over the
// shared worker pool, then fold into one deterministic profile.
func runMerge(paths []string, out string, jobs int) {
	if len(paths) == 0 || out == "" {
		fmt.Fprintln(os.Stderr, "usage: perf2bolt -merge -o out.fdata <shard.fdata>...")
		os.Exit(2)
	}
	shards := make([]*profile.Fdata, len(paths))
	if _, err := par.For(len(paths), par.Jobs(jobs, len(paths)), func(_, i int) error {
		fd, err := parseFile(paths[i])
		if err != nil {
			return fmt.Errorf("%s: %w", paths[i], err)
		}
		shards[i] = fd
		return nil
	}); err != nil {
		fatal(err)
	}
	merged, err := profile.Merge(shards)
	if err != nil {
		fatal(err)
	}
	writeProfile(merged, "", out)
	fmt.Printf("perf2bolt: merged %d shards: %d branch records (%d total count), %d samples -> %s\n",
		len(paths), len(merged.Branches), merged.TotalBranchCount(), len(merged.Samples), out)
}

func parseFile(path string) (*profile.Fdata, error) {
	r, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return profile.Parse(r)
}

func outPath(in, out string) string {
	if out == "" {
		return in
	}
	return out
}

func writeProfile(fd *profile.Fdata, in, out string) {
	w, err := os.Create(outPath(in, out))
	if err != nil {
		fatal(err)
	}
	if err := fd.Write(w); err != nil {
		fatal(err)
	}
	w.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perf2bolt:", err)
	os.Exit(1)
}

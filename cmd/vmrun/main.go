// Command vmrun executes a toolchain ELF binary under the VM — the
// "hardware" of this reproduction. It can sample profiles like
// `perf record` (-record, -lbr, -event) and report microarchitecture
// counters like `perf stat` (-stat).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"gobolt/bolt"
	"gobolt/internal/elfx"
	"gobolt/internal/perf"
	"gobolt/internal/profile"
	"gobolt/internal/uarch"
	"gobolt/internal/vm"
)

// errUsage marks a bad invocation; main exits 2 (the flag-package
// convention) after the usage line was printed, everything else exits 1.
var errUsage = errors.New("usage")

func main() {
	if err := run(); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "vmrun:", err)
		os.Exit(1)
	}
}

func run() error {
	record := flag.String("record", "", "write an fdata profile to this path")
	lbr := flag.Bool("lbr", true, "use LBR sampling (-j any,u)")
	event := flag.String("event", "cycles", "sampling event: cycles|instructions|branches")
	period := flag.Uint64("period", 4096, "sampling period (instructions)")
	pebs := flag.Int("pebs", 0, "PEBS precision level 0-3 (non-LBR skid reduction)")
	shapes := flag.Bool("shapes", true, "embed CFG block shapes in the profile (v2 format) for stale matching")
	stat := flag.Bool("stat", false, "simulate the microarchitecture and print perf-stat counters")
	maxInstr := flag.Uint64("max-instr", 0, "stop after N instructions (0 = run to halt)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vmrun [flags] <binary>")
		return errUsage
	}
	f, err := elfx.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}

	if *record != "" {
		mode := perf.Mode{LBR: *lbr, Event: perf.Event(*event), Period: *period, PEBS: *pebs}
		fd, m, err := perf.RecordFile(f, mode, *maxInstr)
		if err != nil {
			return err
		}
		if *shapes {
			// Disassemble the profiled binary and embed its CFG shapes so
			// a future gobolt run on a *different* build can stale-match
			// this profile instead of dropping it.
			if fs, err := fileShapes(f); err == nil {
				fd.Shapes = fs
			} else {
				fmt.Fprintf(os.Stderr, "vmrun: cannot derive CFG shapes (profile stays v1, stale matching unavailable): %v\n", err)
			}
		}
		if err := bolt.SaveProfile(fd, *record); err != nil {
			return err
		}
		fmt.Printf("vmrun: result=%d instructions=%d branches=%d (profile: %d branch records, %d samples, %d shapes)\n",
			m.Result(), m.C.Instructions, m.C.Branches, len(fd.Branches), len(fd.Samples), len(fd.Shapes))
		return nil
	}

	m, err := vm.New(f)
	if err != nil {
		return err
	}
	var sim *uarch.Sim
	if *stat {
		sim = uarch.New(uarch.DefaultConfig())
		m.SetTracer(sim)
	}
	if _, err := m.Run(*maxInstr); err != nil {
		return err
	}
	fmt.Printf("vmrun: result=%d halted=%v\n", m.Result(), m.Halted())
	fmt.Printf("  retired: %d instructions, %d cond branches (%d taken), %d calls, %d returns, %d throws\n",
		m.C.Instructions, m.C.Branches, m.C.TakenBranch, m.C.Calls, m.C.Returns, m.C.Throws)
	if sim != nil {
		fmt.Print(sim.Finish().Format())
	}
	return nil
}

// fileShapes analyzes the binary through a bolt session and returns its
// CFG shapes.
func fileShapes(f *elfx.File) (map[string]profile.FuncShape, error) {
	sess, err := bolt.OpenELF(f)
	if err != nil {
		return nil, err
	}
	if err := sess.Analyze(context.Background()); err != nil {
		return nil, err
	}
	return sess.Shapes()
}

// Command vmrun executes a toolchain ELF binary under the VM — the
// "hardware" of this reproduction. It can sample profiles like
// `perf record` (-record, -lbr, -event) and report microarchitecture
// counters like `perf stat` (-stat).
package main

import (
	"flag"
	"fmt"
	"os"

	"gobolt/internal/core"
	"gobolt/internal/elfx"
	"gobolt/internal/perf"
	"gobolt/internal/uarch"
	"gobolt/internal/vm"
)

func main() {
	record := flag.String("record", "", "write an fdata profile to this path")
	lbr := flag.Bool("lbr", true, "use LBR sampling (-j any,u)")
	event := flag.String("event", "cycles", "sampling event: cycles|instructions|branches")
	period := flag.Uint64("period", 4096, "sampling period (instructions)")
	pebs := flag.Int("pebs", 0, "PEBS precision level 0-3 (non-LBR skid reduction)")
	shapes := flag.Bool("shapes", true, "embed CFG block shapes in the profile (v2 format) for stale matching")
	stat := flag.Bool("stat", false, "simulate the microarchitecture and print perf-stat counters")
	maxInstr := flag.Uint64("max-instr", 0, "stop after N instructions (0 = run to halt)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vmrun [flags] <binary>")
		os.Exit(2)
	}
	f, err := elfx.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	if *record != "" {
		mode := perf.Mode{LBR: *lbr, Event: perf.Event(*event), Period: *period, PEBS: *pebs}
		fd, m, err := perf.RecordFile(f, mode, *maxInstr)
		if err != nil {
			fatal(err)
		}
		if *shapes {
			// Disassemble the profiled binary and embed its CFG shapes so
			// a future gobolt run on a *different* build can stale-match
			// this profile instead of dropping it.
			if ctx, err := core.NewContext(f, core.Options{}); err == nil {
				fd.Shapes = core.ComputeShapes(ctx)
			} else {
				fmt.Fprintf(os.Stderr, "vmrun: cannot derive CFG shapes (profile stays v1, stale matching unavailable): %v\n", err)
			}
		}
		w, err := os.Create(*record)
		if err != nil {
			fatal(err)
		}
		if err := fd.Write(w); err != nil {
			fatal(err)
		}
		w.Close()
		fmt.Printf("vmrun: result=%d instructions=%d branches=%d (profile: %d branch records, %d samples, %d shapes)\n",
			m.Result(), m.C.Instructions, m.C.Branches, len(fd.Branches), len(fd.Samples), len(fd.Shapes))
		return
	}

	m, err := vm.New(f)
	if err != nil {
		fatal(err)
	}
	var sim *uarch.Sim
	if *stat {
		sim = uarch.New(uarch.DefaultConfig())
		m.SetTracer(sim)
	}
	if _, err := m.Run(*maxInstr); err != nil {
		fatal(err)
	}
	fmt.Printf("vmrun: result=%d halted=%v\n", m.Result(), m.Halted())
	fmt.Printf("  retired: %d instructions, %d cond branches (%d taken), %d calls, %d returns, %d throws\n",
		m.C.Instructions, m.C.Branches, m.C.TakenBranch, m.C.Calls, m.C.Returns, m.C.Throws)
	if sim != nil {
		fmt.Print(sim.Finish().Format())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vmrun:", err)
	os.Exit(1)
}

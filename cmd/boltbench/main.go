// Command boltbench regenerates the paper's tables and figures. Each
// experiment builds the relevant synthetic workload(s), profiles them
// under the VM, applies gobolt and/or the compiler baselines, and prints
// the rows/series the paper reports (see DESIGN.md §3 and EXPERIMENTS.md).
//
// Usage:
//
//	boltbench -experiment fig5 [-scale 0.25]
//	boltbench -experiment all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gobolt/internal/bench"
	"gobolt/internal/workload"
)

func main() {
	exp := flag.String("experiment", "all",
		"experiment(s) to run: fig5, fig6, fig7, fig8, fig9, fig10, fig11, table2, events, icf, fig2, continuous, inference, timing (comma separated or 'all')")
	scale := flag.Float64("scale", 1.0, "workload scale factor (iterations multiplier)")
	jobs := flag.Int("jobs", 0, "worker threads for every gobolt run's parallel phases — loader, function passes, emission (0 = GOMAXPROCS, 1 = serial)")
	timePasses := flag.Bool("time-passes", false, "run the 'timing' experiment (load/pass/emit wall time at jobs=1 vs -jobs) even when not listed")
	heatOut := flag.String("heat-out", "", "write Figure 9 heat maps (CSV + text) with this path prefix")
	flag.Parse()

	bench.SetBoltJobs(*jobs)
	list := strings.Split(*exp, ",")
	if *exp == "all" {
		list = []string{"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "table2", "events", "icf", "fig2", "continuous", "inference"}
	}
	if *timePasses && !strings.Contains(*exp, "timing") {
		list = append(list, "timing")
	}
	sc := bench.Scale(*scale)
	for _, e := range list {
		start := time.Now()
		var report string
		var err error
		switch strings.TrimSpace(e) {
		case "fig5":
			_, report, err = bench.Fig5(sc)
		case "fig6":
			_, report, err = bench.Fig6(sc)
		case "fig7":
			_, report, err = bench.CompilerExperiment(workload.Clang(), true, sc)
		case "fig8":
			_, report, err = bench.CompilerExperiment(workload.GCC(), false, sc)
		case "fig9":
			var before, after *bench.Measurement
			before, after, report, err = bench.Fig9(sc)
			if err == nil && *heatOut != "" {
				werr := os.WriteFile(*heatOut+".before.txt", []byte(before.Heat.Render()), 0o644)
				if werr == nil {
					werr = os.WriteFile(*heatOut+".after.txt", []byte(after.Heat.Render()), 0o644)
				}
				if werr == nil {
					werr = os.WriteFile(*heatOut+".before.csv", []byte(before.Heat.CSV()), 0o644)
				}
				if werr == nil {
					werr = os.WriteFile(*heatOut+".after.csv", []byte(after.Heat.CSV()), 0o644)
				}
				if werr != nil {
					fmt.Fprintln(os.Stderr, "heat-out:", werr)
				}
			}
		case "fig10":
			report, err = bench.Fig10(sc)
		case "fig11":
			_, report, err = bench.Fig11(sc)
		case "table2":
			report, err = bench.Table2(sc)
		case "events":
			_, report, err = bench.Events(sc)
		case "icf":
			_, report, err = bench.ICF(sc)
		case "fig2":
			report, err = bench.Fig2Report(sc)
		case "continuous":
			_, report, err = bench.Continuous(sc)
		case "inference":
			_, report, err = bench.Inference(sc)
		case "timing":
			report, err = bench.PipelineScaling(sc, *jobs)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", e)
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: error: %v\n", e, err)
			os.Exit(1)
		}
		fmt.Println(report)
		fmt.Printf("[%s done in %v]\n\n", e, time.Since(start).Round(time.Millisecond))
	}
}

// Command boltbench regenerates the paper's tables and figures. Each
// experiment builds the relevant synthetic workload(s), profiles them
// under the VM, applies gobolt and/or the compiler baselines, and prints
// the rows/series the paper reports (see DESIGN.md §3 and EXPERIMENTS.md).
//
// Usage:
//
//	boltbench -experiment fig5 [-scale 0.25]
//	boltbench -experiment speed -bench-out new.txt   # then: benchstat old.txt new.txt
//	boltbench -experiment all
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"gobolt/bolt"
	"gobolt/internal/bench"
	"gobolt/internal/benchfmt"
	"gobolt/internal/obsv"
	"gobolt/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "boltbench:", err)
		os.Exit(1)
	}
}

func run() error {
	exp := flag.String("experiment", "all",
		"experiment(s) to run: fig5, fig6, fig7, fig8, fig9, fig10, fig11, table2, events, icf, fig2, continuous, inference, verify, timing, speed, scaling, obsv (comma separated or 'all')")
	scale := flag.Float64("scale", 1.0, "workload scale factor (iterations multiplier)")
	jobs := flag.Int("jobs", 0, "worker threads for every gobolt run's parallel phases — loader, function passes, emission (0 = GOMAXPROCS, 1 = serial)")
	timePasses := flag.Bool("time-passes", false, "run the 'timing' experiment (load/pass/emit wall time at jobs=1 vs -jobs) even when not listed")
	heatOut := flag.String("heat-out", "", "write Figure 9 heat maps (CSV + text) with this path prefix")
	benchOut := flag.String("bench-out", "", "write the 'speed'/'scaling' experiment's Go benchfmt output to this file (compare runs with benchstat)")
	benchJSON := flag.String("bench-json", "", "write the 'speed'/'scaling' experiment's results as a BENCH_*.json gate-baseline skeleton to this file")
	benchBaseline := flag.String("bench-baseline", "", "compare the 'speed'/'scaling' experiment against this committed BENCH_*.json baseline and fail on regression past its threshold")
	scalingJobs := flag.String("scaling-jobs", "", "comma-separated jobs values the 'scaling' experiment sweeps (default 1,2,4,8)")
	validateTrace := flag.String("validate-trace", "", "validate a Chrome trace-event JSON file (gobolt -trace-out) and exit")
	validateReport := flag.String("validate-report", "", "validate a machine-readable run report (gobolt -report-json) and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile (after a final GC) to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "boltbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "boltbench: memprofile:", err)
			}
		}()
	}

	// Standalone validation mode: check artifacts from a gobolt run
	// against the obsv schemas and exit without running experiments.
	if *validateTrace != "" || *validateReport != "" {
		if *validateTrace != "" {
			data, err := os.ReadFile(*validateTrace)
			if err != nil {
				return err
			}
			if err := obsv.ValidateChromeTrace(data); err != nil {
				return fmt.Errorf("%s: %w", *validateTrace, err)
			}
			fmt.Printf("boltbench: %s: valid Chrome trace\n", *validateTrace)
		}
		if *validateReport != "" {
			data, err := os.ReadFile(*validateReport)
			if err != nil {
				return err
			}
			if err := bolt.ValidateRunReport(data); err != nil {
				return fmt.Errorf("%s: %w", *validateReport, err)
			}
			fmt.Printf("boltbench: %s: valid run report (schema v%d)\n", *validateReport, bolt.ReportSchemaVersion)
		}
		return nil
	}

	bench.SetBoltJobs(*jobs)
	list := strings.Split(*exp, ",")
	if *exp == "all" {
		list = []string{"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "table2", "events", "icf", "fig2", "continuous", "inference"}
	}
	if *timePasses && !strings.Contains(*exp, "timing") {
		list = append(list, "timing")
	}
	sc := bench.Scale(*scale)
	for _, e := range list {
		start := time.Now()
		var report string
		var err error
		switch strings.TrimSpace(e) {
		case "fig5":
			_, report, err = bench.Fig5(sc)
		case "fig6":
			_, report, err = bench.Fig6(sc)
		case "fig7":
			_, report, err = bench.CompilerExperiment(workload.Clang(), true, sc)
		case "fig8":
			_, report, err = bench.CompilerExperiment(workload.GCC(), false, sc)
		case "fig9":
			var before, after *bench.Measurement
			before, after, report, err = bench.Fig9(sc)
			if err == nil && *heatOut != "" {
				werr := os.WriteFile(*heatOut+".before.txt", []byte(before.Heat.Render()), 0o644)
				if werr == nil {
					werr = os.WriteFile(*heatOut+".after.txt", []byte(after.Heat.Render()), 0o644)
				}
				if werr == nil {
					werr = os.WriteFile(*heatOut+".before.csv", []byte(before.Heat.CSV()), 0o644)
				}
				if werr == nil {
					werr = os.WriteFile(*heatOut+".after.csv", []byte(after.Heat.CSV()), 0o644)
				}
				if werr != nil {
					fmt.Fprintln(os.Stderr, "heat-out:", werr)
				}
			}
		case "fig10":
			report, err = bench.Fig10(sc)
		case "fig11":
			_, report, err = bench.Fig11(sc)
		case "table2":
			report, err = bench.Table2(sc)
		case "events":
			_, report, err = bench.Events(sc)
		case "icf":
			_, report, err = bench.ICF(sc)
		case "fig2":
			report, err = bench.Fig2Report(sc)
		case "continuous":
			_, report, err = bench.Continuous(sc)
		case "inference":
			_, report, err = bench.Inference(sc)
		case "verify":
			_, report, err = bench.Verify(sc)
		case "timing":
			report, err = bench.PipelineScaling(sc, *jobs)
		case "obsv":
			report, err = bench.Obsv(sc)
		case "speed":
			var results []benchfmt.Result
			results, report, err = bench.Speed(sc, *jobs)
			if err == nil {
				err = handleSpeedOutputs(results, report, sc, *jobs, *benchOut, *benchJSON, *benchBaseline)
			}
		case "scaling":
			var jobsList []int
			jobsList, err = parseJobsList(*scalingJobs)
			if err != nil {
				return err
			}
			var results []benchfmt.Result
			results, report, err = bench.Scaling(sc, jobsList)
			if err == nil {
				err = handleScalingOutputs(results, report, sc, jobsList, *benchOut, *benchJSON, *benchBaseline)
			}
		default:
			return fmt.Errorf("unknown experiment %q", e)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", e, err)
		}
		fmt.Println(report)
		fmt.Printf("[%s done in %v]\n\n", e, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// parseJobsList parses the -scaling-jobs flag ("" = harness default).
func parseJobsList(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		j, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || j <= 0 {
			return nil, fmt.Errorf("bad -scaling-jobs entry %q (want positive integers)", f)
		}
		out = append(out, j)
	}
	return out, nil
}

// handleScalingOutputs post-processes a scaling sweep the same way
// handleSpeedOutputs treats a speed run: benchfmt round-trip check,
// optional -bench-out/-bench-json files, and the -bench-baseline
// serial-fraction regression gate.
func handleScalingOutputs(results []benchfmt.Result, report string, sc bench.Scale, jobsList []int, outPath, jsonPath, baselinePath string) error {
	parsed, _, err := benchfmt.Parse(strings.NewReader(report))
	if err != nil {
		return fmt.Errorf("scaling output failed benchfmt parse: %w", err)
	}
	if len(parsed) != len(results) {
		return fmt.Errorf("scaling output round-trip lost results: %d written, %d parsed", len(results), len(parsed))
	}
	if outPath != "" {
		if err := os.WriteFile(outPath, []byte(report), 0o644); err != nil {
			return err
		}
	}
	if jsonPath != "" {
		bf := bench.NewScalingBenchFile(sc, jobsList, results, time.Now())
		raw, err := bf.Marshal()
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, raw, 0o644); err != nil {
			return err
		}
	}
	if baselinePath != "" {
		bf, err := bench.LoadBenchFile(baselinePath)
		if err != nil {
			return err
		}
		table, gateErr := bench.ScalingGate(bf, sc, results)
		if table != "" {
			fmt.Print(table)
		}
		if gateErr != nil {
			return errors.New(gateErr.Error())
		}
	}
	return nil
}

// handleSpeedOutputs post-processes a speed run: round-trips the report
// through the benchfmt parser (the "output is valid benchfmt" check the
// CI job relies on), writes the optional -bench-out/-bench-json files,
// and enforces the -bench-baseline regression gate.
func handleSpeedOutputs(results []benchfmt.Result, report string, sc bench.Scale, jobs int, outPath, jsonPath, baselinePath string) error {
	parsed, _, err := benchfmt.Parse(strings.NewReader(report))
	if err != nil {
		return fmt.Errorf("speed output failed benchfmt parse: %w", err)
	}
	if len(parsed) != len(results) {
		return fmt.Errorf("speed output round-trip lost results: %d written, %d parsed", len(results), len(parsed))
	}
	if outPath != "" {
		if err := os.WriteFile(outPath, []byte(report), 0o644); err != nil {
			return err
		}
	}
	if jsonPath != "" {
		bf := bench.NewBenchFile(sc, jobs, results, time.Now())
		raw, err := bf.Marshal()
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, raw, 0o644); err != nil {
			return err
		}
	}
	if baselinePath != "" {
		bf, err := bench.LoadBenchFile(baselinePath)
		if err != nil {
			return err
		}
		table, gateErr := bench.SpeedGate(bf, sc, jobs, results)
		if table != "" {
			fmt.Print(table)
		}
		if gateErr != nil {
			return errors.New(gateErr.Error())
		}
	}
	return nil
}

// Command minicc builds a synthetic workload into an ELF executable —
// the "compiler + linker" half of the Figure 1 pipeline. Programs come
// from the named generators in internal/workload.
//
//	minicc -workload hhvm -o hhvm.elf
//	minicc -workload clang -fprofile-use clang.fdata -flto -o clang.pgo.elf
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"gobolt/internal/bench"
	"gobolt/internal/cc"
	"gobolt/internal/elfx"
	"gobolt/internal/hfsort"
	"gobolt/internal/ld"
	"gobolt/internal/profile"
	"gobolt/internal/workload"
)

func main() {
	wl := flag.String("workload", "tiny", "workload preset: tiny|hhvm|tao|proxygen|multifeed1|multifeed2|clang|gcc|figure2")
	out := flag.String("o", "a.elf", "output path")
	lto := flag.Bool("flto", false, "link-time optimization (cross-module inlining, static PLT elision)")
	profileUse := flag.String("fprofile-use", "", "fdata profile for PGO (converted to source-level, like AutoFDO)")
	reorderFuncs := flag.String("freorder-functions", "", "link-time function order: hfsort|exec (needs -fprofile-use)")
	emitRelocs := flag.Bool("emit-relocs", true, "keep relocations in the output (--emit-relocs)")
	icf := flag.Bool("licf", true, "linker identical-code folding")
	seed := flag.Uint64("seed", 0, "override workload seed")
	inputSeed := flag.Uint64("input-seed", 0, "override input-data seed")
	iterations := flag.Int("iterations", 0, "override iteration count")
	flag.Parse()

	var prog = func() *workload.Spec {
		if *wl == "figure2" {
			return nil
		}
		spec, ok := workload.ByName(*wl)
		if !ok {
			if *wl == "tiny" {
				spec = workload.Tiny()
			} else {
				fmt.Fprintf(os.Stderr, "minicc: unknown workload %q\n", *wl)
				os.Exit(2)
			}
		}
		if *seed != 0 {
			spec.Seed = *seed
		}
		if *inputSeed != 0 {
			spec.InputSeed = *inputSeed
		}
		if *iterations != 0 {
			spec.Iterations = *iterations
		}
		return &spec
	}()

	p := workload.GenerateFigure2()
	if prog != nil {
		p = workload.Generate(*prog)
	}

	copts := cc.DefaultOptions()
	copts.LTO = *lto
	lopts := ld.Options{EmitRelocs: *emitRelocs, ICF: *icf, NoPLT: *lto}

	if *profileUse != "" {
		// Two-phase: the profile was taken on some binary of this
		// program; convert to source level against a fresh plain build.
		objs, err := cc.Compile(p, cc.DefaultOptions())
		if err != nil {
			fatal(err)
		}
		plain, err := ld.Link(objs, lopts)
		if err != nil {
			fatal(err)
		}
		r, err := os.Open(*profileUse)
		if err != nil {
			fatal(err)
		}
		fd, err := profile.Parse(context.Background(), r)
		r.Close()
		if err != nil {
			fatal(err)
		}
		sp, err := bench.SourceProfile(plain.File, fd)
		if err != nil {
			fatal(err)
		}
		copts.PGO = sp
		if *reorderFuncs != "" {
			g := profile.BuildCallGraph(fd, nil)
			sizes := map[string]uint64{}
			for _, s := range plain.File.FuncSymbols() {
				sizes[s.Name] = s.Size
			}
			lopts.FuncOrder = hfsort.Order(g, sizes, hfsort.Algorithm(*reorderFuncs))
		}
	}

	objs, err := cc.Compile(p, copts)
	if err != nil {
		fatal(err)
	}
	res, err := ld.Link(objs, lopts)
	if err != nil {
		fatal(err)
	}
	if err := res.File.WriteFile(*out); err != nil {
		fatal(err)
	}
	var f *elfx.File = res.File
	fmt.Printf("minicc: wrote %s (%d functions, .text %d bytes, entry %#x, linker ICF folded %d)\n",
		*out, len(f.FuncSymbols()), res.TextSize, f.Entry, res.ICFFolded)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minicc:", err)
	os.Exit(1)
}

// Command bincheck statically verifies a BOLTed binary: it re-opens
// the ELF from its bytes, re-disassembles every function fragment, and
// checks branch targets, jump tables, CFI, LSDA, the BAT translation
// map, and symbol/section sanity — independently of the rewriter that
// produced the file (see internal/bincheck for the rule catalogue).
//
//	bincheck prog.bolt                  # findings to stderr, exit 1 on errors
//	bincheck -json report.json prog.bolt
//
// Exit status: 0 clean (warnings allowed), 1 error-severity findings,
// 2 usage or unreadable input.
package main

import (
	"flag"
	"fmt"
	"os"

	"gobolt/internal/bincheck"
)

func main() {
	jsonOut := flag.String("json", "", "write the machine-readable result to this path; \"-\" writes to stdout")
	quiet := flag.Bool("q", false, "suppress per-finding output; only the summary line")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bincheck [-json out.json] [-q] binary")
		os.Exit(2)
	}

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "bincheck: %v\n", err)
		os.Exit(2)
	}
	res, err := bincheck.Check(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bincheck: %v\n", err)
		os.Exit(2)
	}

	if !*quiet {
		for _, f := range res.Findings {
			fmt.Fprintf(os.Stderr, "%s: %s\n", flag.Arg(0), f)
		}
	}
	if *jsonOut != "" {
		w := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bincheck: %v\n", err)
				os.Exit(2)
			}
			defer f.Close()
			w = f
		}
		if err := res.WriteJSON(w); err != nil {
			fmt.Fprintf(os.Stderr, "bincheck: %v\n", err)
			os.Exit(2)
		}
	}
	fmt.Fprintf(os.Stderr, "bincheck: %s: %d fragments, %d instructions, %d FDEs, %d BAT ranges: %d errors, %d warnings\n",
		flag.Arg(0), res.Fragments, res.Instructions, res.FDEs, res.BATRanges, res.Errors, res.Warnings)
	if !res.Ok() {
		os.Exit(1)
	}
}

// Command heatmap renders the Figure 9 instruction-address heat map for
// a binary: it executes the program under the VM, accumulates fetched
// bytes over the executable address range, and prints the 64x64 log-scale
// grid (optionally CSV for plotting).
package main

import (
	"flag"
	"fmt"
	"os"

	"gobolt/internal/elfx"
	"gobolt/internal/heatmap"
	"gobolt/internal/vm"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of the text grid")
	maxInstr := flag.Uint64("max-instr", 0, "stop after N instructions")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: heatmap [-csv] <binary>")
		os.Exit(2)
	}
	f, err := elfx.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var lo, hi uint64
	first := true
	for _, s := range f.Sections {
		if s.Flags&elfx.SHFExecinstr == 0 || s.Size() == 0 {
			continue
		}
		if first || s.Addr < lo {
			lo = s.Addr
		}
		if first || s.Addr+s.Size() > hi {
			hi = s.Addr + s.Size()
		}
		first = false
	}
	m, err := vm.New(f)
	if err != nil {
		fatal(err)
	}
	h := heatmap.New(lo, hi)
	m.SetTracer(h.Tracer())
	if _, err := m.Run(*maxInstr); err != nil {
		fatal(err)
	}
	if *csv {
		fmt.Print(h.CSV())
	} else {
		fmt.Print(h.Render())
		fmt.Printf("hot span (95%% of fetches): %d bytes of %d total\n",
			h.HotSpan(0.95), hi-lo)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "heatmap:", err)
	os.Exit(1)
}

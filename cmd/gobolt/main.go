// Command gobolt is the post-link binary optimizer: the command-line
// driver for the Figure 3 pipeline, with flags mirroring the llvm-bolt
// invocation used in the paper (§6.2.1):
//
//	gobolt binary -data perf.fdata -o binary.bolt \
//	    -reorder-blocks=cache+ -reorder-functions=hfsort+ \
//	    -split-functions=3 -split-all-cold -split-eh -icf=1 -dyno-stats
//
// It is a thin flag→option adapter over the bolt library package: all
// pipeline work happens in bolt.Session, every failure is a returned
// error (the only os.Exit lives in main), and Ctrl-C cancels the
// pipeline through context cancellation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"

	"gobolt/bolt"
	"gobolt/internal/core"
	"gobolt/internal/hfsort"
	"gobolt/internal/layout"
	"gobolt/internal/obsv"
)

// errUsage marks a bad invocation; main exits 2 (the flag-package
// convention) after the usage line was printed, everything else exits 1.
var errUsage = errors.New("usage")

func main() {
	if err := run(); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "gobolt:", err)
		os.Exit(1)
	}
}

func run() error {
	data := flag.String("data", "", "fdata profile file (from perf2bolt)")
	out := flag.String("o", "", "output binary path (default <input>.bolt)")
	reorderBlocks := flag.String("reorder-blocks", "cache+", "block layout: none|reverse|ph|cache+")
	reorderFuncs := flag.String("reorder-functions", "hfsort+", "function layout: none|exec|hfsort|hfsort+")
	splitFuncs := flag.Int("split-functions", 3, "hot/cold splitting level (0 = off)")
	splitAllCold := flag.Bool("split-all-cold", true, "move all cold blocks to the cold section")
	splitEH := flag.Bool("split-eh", true, "split exception landing pads")
	icf := flag.Int("icf", 1, "identical code folding (0 = off)")
	icp := flag.Bool("icp", true, "indirect call promotion")
	inlineSmall := flag.Bool("inline-small", true, "inline small functions")
	simplifyRO := flag.Bool("simplify-ro-loads", true, "fold constant loads from .rodata")
	plt := flag.Bool("plt", true, "bypass PLT stubs for direct calls")
	peepholes := flag.Bool("peepholes", true, "peephole cleanups")
	frameOpts := flag.Bool("frame-opts", true, "remove dead caller-saved spills")
	shrinkWrap := flag.Bool("shrink-wrapping", true, "move cold-only callee-saved spills")
	sctc := flag.Bool("sctc", true, "simplify conditional tail calls")
	enableBAT := flag.Bool("enable-bat", true, "write the BOLT Address Translation table (.bolt.bat) for continuous profiling")
	staleMatch := flag.Bool("stale-matching", true, "recover stale profile records via CFG shape matching (v2 profiles)")
	inferFlow := flag.String("infer-flow", "auto", "minimum-cost-flow profile inference: auto (non-LBR sample profiles), always (also repair LBR/stale/translated profiles), never (legacy proportional estimator)")
	lite := flag.Bool("lite", false, "only process functions with profile samples")
	jobs := flag.Int("jobs", 0, "worker threads for the parallel phases — loader disasm+CFG, function passes, code emission (0 = GOMAXPROCS, 1 = serial)")
	timePasses := flag.Bool("time-passes", false, "print per-pass wall time and stat deltas")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON timeline of the run (load in Perfetto or chrome://tracing)")
	reportJSON := flag.String("report-json", "", "write the machine-readable run report (versioned JSON) to this path; \"-\" writes to stdout")
	verify := flag.Bool("verify", false, "statically verify the output binary from its serialized bytes (branch targets, jump tables, CFI/LSDA, BAT, symbols); error-severity findings fail the run")
	dynoStats := flag.Bool("dyno-stats", false, "print dyno stats before/after")
	badLayout := flag.Bool("report-bad-layout", false, "report cold blocks between hot blocks and exit")
	printCFG := flag.String("print-cfg", "", "print the CFG of the named function and exit")
	printPipeline := flag.Bool("print-pipeline", false, "print the pass pipeline (Table 1) and exit")
	updateDebug := flag.Bool("update-debug-sections", true, "rewrite .debug_line for moved code")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile (after a final GC) to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gobolt: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "gobolt: memprofile:", err)
			}
		}()
	}

	opts := core.DefaultOptions()
	opts.ReorderBlocks = layout.Algorithm(*reorderBlocks)
	opts.ReorderFunctions = hfsort.Algorithm(*reorderFuncs)
	opts.SplitFunctions = *splitFuncs
	opts.SplitAllCold = *splitAllCold
	opts.SplitEH = *splitEH
	opts.ICF = *icf != 0
	opts.ICP = *icp
	opts.InlineSmall = *inlineSmall
	opts.SimplifyROLoads = *simplifyRO
	opts.PLT = *plt
	opts.Peepholes = *peepholes
	opts.FrameOpts = *frameOpts
	opts.ShrinkWrapping = *shrinkWrap
	opts.SCTC = *sctc
	opts.EnableBAT = *enableBAT
	opts.StaleMatching = *staleMatch
	mode, err := core.ParseInferMode(*inferFlow)
	if err != nil {
		return err
	}
	opts.InferFlow = mode
	opts.Lite = *lite
	opts.Jobs = *jobs
	opts.TimePasses = *timePasses
	opts.DynoStats = *dynoStats
	opts.UpdateDebugSections = *updateDebug
	var tracer *obsv.Tracer
	if *traceOut != "" {
		tracer = obsv.New()
		opts.Trace = tracer
	}

	if *printPipeline {
		for i, name := range bolt.PipelineNames(bolt.WithOptions(opts)) {
			fmt.Printf("%2d. %s\n", i+1, name)
		}
		return nil
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gobolt [flags] <binary>")
		return errUsage
	}
	input := flag.Arg(0)

	// Ctrl-C cancels the pipeline: the parallel phases stop claiming
	// work and Optimize returns context.Canceled.
	cx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sess, err := bolt.Open(input, bolt.WithOptions(opts))
	if err != nil {
		return err
	}
	if *data != "" {
		if err := sess.LoadProfile(cx, bolt.FdataFile(*data)); err != nil {
			return err
		}
	}

	// Report-only modes stop after analysis.
	if *badLayout || *printCFG != "" {
		if err := sess.Analyze(cx); err != nil {
			return err
		}
		if *badLayout {
			report, err := sess.BadLayoutReport(20)
			if err != nil {
				return err
			}
			fmt.Print(report)
			return nil
		}
		return sess.PrintCFG(os.Stdout, *printCFG)
	}

	rep, err := sess.Optimize(cx)
	if err != nil {
		// No timing or dyno output on failure: a report must never print
		// alongside a swallowed error.
		return err
	}
	// Diagnostics go to stderr: stdout is reserved for requested data
	// output (`-report-json -`, -print-cfg, ...), so piping stays clean.
	if *timePasses {
		rep.WriteTimings(os.Stderr)
	}
	if *dynoStats {
		rep.WriteDynoStats(os.Stderr)
	}
	outPath := *out
	if outPath == "" {
		outPath = input + ".bolt"
	}
	if err := sess.WriteFile(outPath); err != nil {
		return err
	}
	if *verify {
		res, err := sess.VerifyOutput()
		if err != nil {
			return err
		}
		for _, f := range res.Findings {
			fmt.Fprintf(os.Stderr, "gobolt: verify: %s: %s\n", outPath, f)
		}
		fmt.Fprintf(os.Stderr, "gobolt: verify: %s: %d fragments, %d instructions, %d FDEs, %d BAT ranges: %d errors, %d warnings\n",
			outPath, res.Fragments, res.Instructions, res.FDEs, res.BATRanges, res.Errors, res.Warnings)
		if !res.Ok() {
			return fmt.Errorf("verify: %d error-severity findings in %s", res.Errors, outPath)
		}
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, tracer); err != nil {
			return err
		}
	}
	if *reportJSON != "" {
		if err := writeReportJSON(*reportJSON, rep); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "gobolt: %s -> %s\n", input, outPath)
	fmt.Fprintln(os.Stderr, indent(rep.Summary()))
	return nil
}

// writeTrace exports the recorded span timeline as Chrome trace-event
// JSON (Perfetto-loadable).
func writeTrace(path string, tr *obsv.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("write trace %s: %w", path, err)
	}
	return f.Close()
}

// writeReportJSON writes the machine-readable run report to path, or to
// stdout for "-".
func writeReportJSON(path string, rep *bolt.Report) error {
	if path == "-" {
		return rep.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("write report %s: %w", path, err)
	}
	return f.Close()
}

// indent prefixes every line with two spaces (the CLI's result style).
func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}

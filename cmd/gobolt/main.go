// Command gobolt is the post-link binary optimizer: the command-line
// driver for the Figure 3 pipeline, with flags mirroring the llvm-bolt
// invocation used in the paper (§6.2.1):
//
//	gobolt binary -data perf.fdata -o binary.bolt \
//	    -reorder-blocks=cache+ -reorder-functions=hfsort+ \
//	    -split-functions=3 -split-all-cold -split-eh -icf=1 -dyno-stats
package main

import (
	"flag"
	"fmt"
	"os"

	"gobolt/internal/core"
	"gobolt/internal/elfx"
	"gobolt/internal/hfsort"
	"gobolt/internal/layout"
	"gobolt/internal/passes"
	"gobolt/internal/profile"
)

func main() {
	data := flag.String("data", "", "fdata profile file (from perf2bolt)")
	out := flag.String("o", "", "output binary path (default <input>.bolt)")
	reorderBlocks := flag.String("reorder-blocks", "cache+", "block layout: none|reverse|ph|cache+")
	reorderFuncs := flag.String("reorder-functions", "hfsort+", "function layout: none|exec|hfsort|hfsort+")
	splitFuncs := flag.Int("split-functions", 3, "hot/cold splitting level (0 = off)")
	splitAllCold := flag.Bool("split-all-cold", true, "move all cold blocks to the cold section")
	splitEH := flag.Bool("split-eh", true, "split exception landing pads")
	icf := flag.Int("icf", 1, "identical code folding (0 = off)")
	icp := flag.Bool("icp", true, "indirect call promotion")
	inlineSmall := flag.Bool("inline-small", true, "inline small functions")
	simplifyRO := flag.Bool("simplify-ro-loads", true, "fold constant loads from .rodata")
	plt := flag.Bool("plt", true, "bypass PLT stubs for direct calls")
	peepholes := flag.Bool("peepholes", true, "peephole cleanups")
	frameOpts := flag.Bool("frame-opts", true, "remove dead caller-saved spills")
	shrinkWrap := flag.Bool("shrink-wrapping", true, "move cold-only callee-saved spills")
	sctc := flag.Bool("sctc", true, "simplify conditional tail calls")
	enableBAT := flag.Bool("enable-bat", true, "write the BOLT Address Translation table (.bolt.bat) for continuous profiling")
	staleMatch := flag.Bool("stale-matching", true, "recover stale profile records via CFG shape matching (v2 profiles)")
	lite := flag.Bool("lite", false, "only process functions with profile samples")
	jobs := flag.Int("jobs", 0, "worker threads for the parallel phases — loader disasm+CFG, function passes, code emission (0 = GOMAXPROCS, 1 = serial)")
	timePasses := flag.Bool("time-passes", false, "print per-pass wall time and stat deltas")
	dynoStats := flag.Bool("dyno-stats", false, "print dyno stats before/after")
	badLayout := flag.Bool("report-bad-layout", false, "report cold blocks between hot blocks and exit")
	printCFG := flag.String("print-cfg", "", "print the CFG of the named function and exit")
	printPipeline := flag.Bool("print-pipeline", false, "print the pass pipeline (Table 1) and exit")
	updateDebug := flag.Bool("update-debug-sections", true, "rewrite .debug_line for moved code")
	flag.Parse()

	opts := core.DefaultOptions()
	opts.ReorderBlocks = layout.Algorithm(*reorderBlocks)
	opts.ReorderFunctions = hfsort.Algorithm(*reorderFuncs)
	opts.SplitFunctions = *splitFuncs
	opts.SplitAllCold = *splitAllCold
	opts.SplitEH = *splitEH
	opts.ICF = *icf != 0
	opts.ICP = *icp
	opts.InlineSmall = *inlineSmall
	opts.SimplifyROLoads = *simplifyRO
	opts.PLT = *plt
	opts.Peepholes = *peepholes
	opts.FrameOpts = *frameOpts
	opts.ShrinkWrapping = *shrinkWrap
	opts.SCTC = *sctc
	opts.EnableBAT = *enableBAT
	opts.StaleMatching = *staleMatch
	opts.Lite = *lite
	opts.Jobs = *jobs
	opts.TimePasses = *timePasses
	opts.DynoStats = *dynoStats
	opts.UpdateDebugSections = *updateDebug

	if *printPipeline {
		for i, p := range passes.BuildPipeline(opts) {
			fmt.Printf("%2d. %s\n", i+1, p.Name())
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gobolt <binary> [flags]")
		os.Exit(2)
	}
	input := flag.Arg(0)
	f, err := elfx.ReadFile(input)
	if err != nil {
		fatal(err)
	}

	var fd *profile.Fdata
	if *data != "" {
		r, err := os.Open(*data)
		if err != nil {
			fatal(err)
		}
		fd, err = profile.Parse(r)
		r.Close()
		if err != nil {
			fatal(err)
		}
	}

	// Report-only modes.
	if *badLayout || *printCFG != "" {
		ctx, err := core.NewContext(f, opts)
		if err != nil {
			fatal(err)
		}
		if fd != nil {
			ctx.ApplyProfile(fd)
		}
		if *badLayout {
			fmt.Print(ctx.BadLayoutReport(20))
			return
		}
		fn := ctx.ByName[*printCFG]
		if fn == nil {
			fatal(fmt.Errorf("no function %q", *printCFG))
		}
		ctx.PrintCFG(os.Stdout, fn)
		return
	}

	ctx, err := core.NewContext(f, opts)
	if err != nil {
		fatal(err)
	}
	if fd != nil {
		ctx.ApplyProfile(fd)
	}
	var before core.DynoStats
	if *dynoStats {
		before = ctx.CollectDynoStats()
	}
	pm := core.NewPassManager(opts.Jobs)
	if err := pm.Run(ctx, passes.BuildPipeline(opts)); err != nil {
		fatal(err)
	}
	if *dynoStats {
		core.PrintComparison(os.Stdout, input, before, ctx.CollectDynoStats())
	}
	res, err := ctx.Rewrite()
	if *timePasses {
		// Printed after Rewrite so the report includes the loader and
		// emission phases next to the passes.
		core.WriteFullTimings(os.Stdout, ctx)
	}
	if err != nil {
		fatal(err)
	}
	outPath := *out
	if outPath == "" {
		outPath = input + ".bolt"
	}
	if err := res.File.WriteFile(outPath); err != nil {
		fatal(err)
	}
	fmt.Printf("gobolt: %s -> %s\n", input, outPath)
	fmt.Printf("  moved %d functions (%d skipped non-simple, %d folded, %d split)\n",
		res.MovedFuncs, res.SkippedFuncs, res.FoldedFuncs, res.SplitFuncs)
	fmt.Printf("  hot text %d bytes, cold text %d bytes (original %d)\n",
		res.HotTextSize, res.ColdTextSize, res.OrigTextSize)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gobolt:", err)
	os.Exit(1)
}

// Boltvet runs the repo's house static-analysis suite (package
// internal/lintvet): determinism, hot-path allocation, stat-key,
// context-plumbing, and float-reduction invariants, go-vet style.
//
// Usage:
//
//	go run ./cmd/boltvet ./...
//
// Exit status: 0 clean, 1 diagnostics reported, 2 load failure.
package main

import (
	"os"

	"gobolt/internal/lintvet"
)

func main() {
	os.Exit(lintvet.Main(os.Stdout, os.Stderr, os.Args[1:]))
}

module gobolt

go 1.24

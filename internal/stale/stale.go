// Package stale implements hash-based CFG block matching for stale
// profiles, after "Stale Profile Matching" (Ayupov, Panchenko, Pupyrev;
// arXiv:2401.17168). A profile records (function, offset) pairs that stop
// resolving when the binary is rebuilt from changed source: block offsets
// shift even where the code is unchanged. Instead of dropping those
// records, the profile carries the *shapes* of the profiled binary's
// CFGs (profile.BlockShape: offset, opcode-sequence hash, successor
// indices), and this package matches old blocks to the current CFG:
//
//  1. unique opcode-hash match (identical code, moved);
//  2. unique (hash, neighbor-hash) match, disambiguating repeated bodies
//     by their successor context;
//  3. order-preserving positional match of the leftovers with a
//     successor-arity compatibility check (catches blocks whose code was
//     edited but whose place in the layout survived, e.g. a prologue
//     that gained instrumentation in the new release).
//
// The package is deliberately engine-agnostic: it depends only on
// internal/profile, so both the optimizer (internal/core) and offline
// tooling can share one matcher without an import cycle.
package stale

import "gobolt/internal/profile"

// HashSeed/hashPrime are the FNV-1a 64-bit parameters.
const (
	hashSeed  uint64 = 0xCBF29CE484222325
	hashPrime uint64 = 0x100000001B3
)

// HashBytes hashes an opcode byte stream (FNV-1a). Callers feed it the
// per-instruction opcode encoding of a basic block; two blocks hash equal
// iff their opcode sequences are identical. Registers and immediates are
// deliberately excluded so the match survives register-allocation and
// constant drift between compiler runs.
func HashBytes(b []byte) uint64 {
	h := hashSeed
	for _, c := range b {
		h ^= uint64(c)
		h *= hashPrime
	}
	return h
}

// combine mixes two hashes order-sensitively.
func combine(h, x uint64) uint64 {
	h ^= x + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)
	return h
}

// neighborHash extends a block's own hash with its successors' hashes in
// edge order — the disambiguator for repeated identical bodies.
func neighborHash(blocks []profile.BlockShape, i int) uint64 {
	h := blocks[i].Hash
	for _, s := range blocks[i].Succs {
		if s >= 0 && s < len(blocks) {
			h = combine(h, blocks[s].Hash)
		}
	}
	return h
}

// Match maps old block indices to current block indices. Unmatched old
// blocks are absent from the result. Both slices are in layout order
// (profile.FuncShape convention).
func Match(old, cur []profile.BlockShape) map[int]int {
	out := make(map[int]int, len(old))
	oldTaken := make([]bool, len(old))
	curTaken := make([]bool, len(cur))

	match := func(key func(bs []profile.BlockShape, i int) uint64) {
		// A key matches when it is unique among the unmatched blocks on
		// BOTH sides; collisions wait for a later, stricter round.
		oldByKey := map[uint64]int{}
		oldDup := map[uint64]bool{}
		for i := range old {
			if oldTaken[i] {
				continue
			}
			k := key(old, i)
			if _, ok := oldByKey[k]; ok {
				oldDup[k] = true
			}
			oldByKey[k] = i
		}
		curByKey := map[uint64]int{}
		curDup := map[uint64]bool{}
		for j := range cur {
			if curTaken[j] {
				continue
			}
			k := key(cur, j)
			if _, ok := curByKey[k]; ok {
				curDup[k] = true
			}
			curByKey[k] = j
		}
		for k, i := range oldByKey {
			if oldDup[k] || curDup[k] {
				continue
			}
			if j, ok := curByKey[k]; ok {
				out[i] = j
				oldTaken[i] = true
				curTaken[j] = true
			}
		}
	}

	// Round 1: exact opcode hash. Round 2: hash + successor context.
	match(func(bs []profile.BlockShape, i int) uint64 { return bs[i].Hash })
	match(neighborHash)

	// Round 3: positional. Walk the unmatched remainders of both sides in
	// layout order; each old block takes the next unmatched current block
	// with the same successor arity — the weakest signal, used only for
	// blocks whose code actually changed. The cursor only advances past a
	// current block when it is consumed by a match, so an incompatible
	// old block (no candidate anywhere ahead) does not rob later old
	// blocks of their order-preserving matches.
	j := 0
	for i := range old {
		if oldTaken[i] {
			continue
		}
		for k := j; k < len(cur); k++ {
			if curTaken[k] || len(old[i].Succs) != len(cur[k].Succs) {
				continue
			}
			out[i] = k
			oldTaken[i] = true
			curTaken[k] = true
			j = k + 1
			break
		}
	}
	return out
}

// ShapesEqual reports whether two shapes describe byte-for-byte the same
// CFG layout: same block count, offsets, and hashes. When true, profile
// offsets resolve directly and no matching is needed.
func ShapesEqual(a, b profile.FuncShape) bool {
	if len(a.Blocks) != len(b.Blocks) {
		return false
	}
	for i := range a.Blocks {
		if a.Blocks[i].Off != b.Blocks[i].Off || a.Blocks[i].Hash != b.Blocks[i].Hash {
			return false
		}
	}
	return true
}

// BlockAtOff returns the index of the shape block containing off (the
// block with the greatest start offset <= off), or -1. Blocks are in
// layout order but offsets need not be contiguous; containment is by
// start offset only, matching how profile offsets anchor to blocks.
func BlockAtOff(blocks []profile.BlockShape, off uint64) int {
	lo, hi := 0, len(blocks)
	for lo < hi {
		mid := (lo + hi) / 2
		if blocks[mid].Off <= off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// HasSucc reports whether shape block i lists j as a successor.
func HasSucc(blocks []profile.BlockShape, i, j int) bool {
	if i < 0 || i >= len(blocks) {
		return false
	}
	for _, s := range blocks[i].Succs {
		if s == j {
			return true
		}
	}
	return false
}

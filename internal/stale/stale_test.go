package stale

import (
	"testing"

	"gobolt/internal/profile"
)

func bs(off, hash uint64, succs ...int) profile.BlockShape {
	return profile.BlockShape{Off: off, Hash: hash, Succs: succs}
}

func TestMatchExactHashes(t *testing.T) {
	// Same blocks, shifted offsets (the new-release case).
	old := []profile.BlockShape{bs(0, 100, 1, 2), bs(0x10, 200, 2), bs(0x20, 300)}
	cur := []profile.BlockShape{bs(0, 100, 1, 2), bs(0x18, 200, 2), bs(0x28, 300)}
	m := Match(old, cur)
	for i := 0; i < 3; i++ {
		if m[i] != i {
			t.Fatalf("block %d matched to %d: %v", i, m[i], m)
		}
	}
}

func TestMatchNeighborDisambiguation(t *testing.T) {
	// Blocks 1 and 2 share a hash; successor context tells them apart:
	// old block 1 -> terminator A (400), old block 2 -> terminator B (500).
	old := []profile.BlockShape{
		bs(0x00, 100, 1, 2),
		bs(0x10, 777, 3),
		bs(0x20, 777, 4),
		bs(0x30, 400),
		bs(0x40, 500),
	}
	// Current CFG reorders the duplicate pair.
	cur := []profile.BlockShape{
		bs(0x00, 100, 2, 1),
		bs(0x14, 777, 4),
		bs(0x24, 777, 3),
		bs(0x34, 400),
		bs(0x44, 500),
	}
	m := Match(old, cur)
	// old 1 leads to hash-400 (cur index 3); in cur that is block 2.
	if m[1] != 2 || m[2] != 1 {
		t.Fatalf("neighbor disambiguation failed: %v", m)
	}
	if m[3] != 3 || m[4] != 4 || m[0] != 0 {
		t.Fatalf("unique blocks mismatched: %v", m)
	}
}

func TestMatchPositionalFallback(t *testing.T) {
	// The entry block's code changed (new hash) but its position and
	// successor arity survived.
	old := []profile.BlockShape{bs(0, 111, 1, 2), bs(0x10, 200), bs(0x20, 300)}
	cur := []profile.BlockShape{bs(0, 999, 1, 2), bs(0x14, 200), bs(0x24, 300)}
	m := Match(old, cur)
	if m[0] != 0 {
		t.Fatalf("positional fallback failed: %v", m)
	}
}

func TestMatchRefusesIncompatiblePositional(t *testing.T) {
	// Leftovers with different successor arity must not pair up.
	old := []profile.BlockShape{bs(0, 111, 1, 2), bs(0x10, 200)}
	cur := []profile.BlockShape{bs(0, 999), bs(0x14, 200)}
	m := Match(old, cur)
	if got, ok := m[0]; ok {
		t.Fatalf("incompatible blocks matched: 0 -> %d", got)
	}
}

func TestShapesEqual(t *testing.T) {
	a := profile.FuncShape{Blocks: []profile.BlockShape{bs(0, 1, 1), bs(8, 2)}}
	b := profile.FuncShape{Blocks: []profile.BlockShape{bs(0, 1, 1), bs(8, 2)}}
	if !ShapesEqual(a, b) {
		t.Fatal("identical shapes reported unequal")
	}
	c := profile.FuncShape{Blocks: []profile.BlockShape{bs(0, 1, 1), bs(9, 2)}}
	if ShapesEqual(a, c) {
		t.Fatal("shifted shapes reported equal")
	}
	d := profile.FuncShape{Blocks: []profile.BlockShape{bs(0, 1, 1)}}
	if ShapesEqual(a, d) {
		t.Fatal("different block counts reported equal")
	}
}

func TestBlockAtOff(t *testing.T) {
	blocks := []profile.BlockShape{bs(0, 1), bs(0x10, 2), bs(0x30, 3)}
	cases := []struct {
		off  uint64
		want int
	}{{0, 0}, {0xF, 0}, {0x10, 1}, {0x2F, 1}, {0x30, 2}, {0x1000, 2}}
	for _, c := range cases {
		if got := BlockAtOff(blocks, c.off); got != c.want {
			t.Errorf("BlockAtOff(%#x) = %d, want %d", c.off, got, c.want)
		}
	}
	if got := BlockAtOff(nil, 0); got != -1 {
		t.Errorf("BlockAtOff(empty) = %d, want -1", got)
	}
}

func TestHashBytes(t *testing.T) {
	if HashBytes([]byte{1, 2}) == HashBytes([]byte{2, 1}) {
		t.Fatal("hash is order-insensitive")
	}
	if HashBytes(nil) != HashBytes([]byte{}) {
		t.Fatal("empty hashes differ")
	}
}

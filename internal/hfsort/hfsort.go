// Package hfsort implements profile-driven function ordering.
//
// HFSort (Ottoni & Maher, CGO'17) is the algorithm behind the paper's
// reorder-functions pass (Table 1, pass 13) and the link-time baseline in
// the Figure 5 experiments: functions are clustered greedily along the
// hottest caller->callee edges, subject to a page-size bound, and clusters
// are then laid out by hotness density. The "hfsort+" variant merges
// chains by expected I-TLB/I-cache benefit rather than a fixed page bound.
package hfsort

import (
	"sort"

	"gobolt/internal/profile"
)

// Algorithm selects the ordering strategy.
type Algorithm string

// Algorithms.
const (
	AlgoNone   Algorithm = "none"
	AlgoExec   Algorithm = "exec"    // hottest-first (simple baseline)
	AlgoHFSort Algorithm = "hfsort"  // C3 clustering
	AlgoPlus   Algorithm = "hfsort+" // density-gain clustering
)

// pageSize is the clustering bound for classic HFSort.
const pageSize = 4096

type cluster struct {
	funcs   []string
	size    uint64
	samples uint64
}

func (c *cluster) density() float64 {
	if c.size == 0 {
		return 0
	}
	return float64(c.samples) / float64(c.size)
}

// Order returns the function layout order, hottest first. Functions
// absent from the graph keep their natural order after the profiled ones
// (the caller appends them). sizes provides function byte sizes.
func Order(g *profile.CallGraph, sizes map[string]uint64, algo Algorithm) []string {
	switch algo {
	case AlgoNone:
		return nil
	case AlgoExec:
		return execOrder(g)
	case AlgoPlus:
		return clusterOrder(g, sizes, true)
	default:
		return clusterOrder(g, sizes, false)
	}
}

func execOrder(g *profile.CallGraph) []string {
	names := make([]string, 0, len(g.Nodes))
	for n := range g.Nodes {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if g.Nodes[names[i]] != g.Nodes[names[j]] {
			return g.Nodes[names[i]] > g.Nodes[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

// clusterOrder is the C3 algorithm: process functions hottest-first, and
// append each to the cluster of its heaviest predecessor when profitable.
func clusterOrder(g *profile.CallGraph, sizes map[string]uint64, plus bool) []string {
	names := execOrder(g)
	if len(names) == 0 {
		return nil
	}

	// Heaviest caller per callee.
	type arc struct {
		caller string
		weight uint64
	}
	heaviest := map[string]arc{}
	for e, w := range g.Edges {
		caller, callee := e[0], e[1]
		if caller == callee {
			continue
		}
		if a, ok := heaviest[callee]; !ok || w > a.weight || (w == a.weight && caller < a.caller) {
			heaviest[callee] = arc{caller: caller, weight: w}
		}
	}

	clusterOf := map[string]*cluster{}
	mk := func(fn string) *cluster {
		c := &cluster{funcs: []string{fn}, size: sizes[fn], samples: g.Nodes[fn]}
		if c.size == 0 {
			c.size = 1
		}
		clusterOf[fn] = c
		return c
	}
	for _, fn := range names {
		mk(fn)
	}

	for _, fn := range names {
		a, ok := heaviest[fn]
		if !ok || a.weight == 0 {
			continue
		}
		src := clusterOf[fn]
		dst := clusterOf[a.caller]
		if src == nil || dst == nil || src == dst {
			// The caller may be absent from the node set (e.g. it never
			// produced entry samples of its own).
			continue
		}
		// The callee must currently lead its cluster (C3 merges chains).
		if src.funcs[0] != fn {
			continue
		}
		if plus {
			// hfsort+: merge while the combined density does not collapse
			// (avoids gluing a hot cluster onto a cold giant).
			combined := float64(dst.samples+src.samples) / float64(dst.size+src.size)
			if combined < dst.density()/8 {
				continue
			}
			if dst.size+src.size > 8*pageSize {
				continue
			}
		} else {
			// Classic HFSort: keep clusters within a page.
			if dst.size+src.size > pageSize {
				continue
			}
		}
		dst.funcs = append(dst.funcs, src.funcs...)
		dst.size += src.size
		dst.samples += src.samples
		for _, f := range src.funcs {
			clusterOf[f] = dst
		}
	}

	// Emit clusters by density, dedup preserving first placement.
	seen := map[*cluster]bool{}
	var clusters []*cluster
	for _, fn := range names {
		c := clusterOf[fn]
		if !seen[c] {
			seen[c] = true
			clusters = append(clusters, c)
		}
	}
	sort.SliceStable(clusters, func(i, j int) bool {
		return clusters[i].density() > clusters[j].density()
	})
	var out []string
	for _, c := range clusters {
		out = append(out, c.funcs...)
	}
	return out
}

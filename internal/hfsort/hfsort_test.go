package hfsort

import (
	"testing"

	"gobolt/internal/profile"
)

func graph() (*profile.CallGraph, map[string]uint64) {
	g := &profile.CallGraph{
		Nodes: map[string]uint64{
			"hot1": 1000, "hot2": 900, "callee": 800, "warm": 100, "cold": 1,
		},
		Edges: map[[2]string]uint64{
			{"hot1", "callee"}: 800,
			{"warm", "callee"}: 50,
			{"hot2", "warm"}:   90,
		},
	}
	sizes := map[string]uint64{"hot1": 512, "hot2": 256, "callee": 128, "warm": 2048, "cold": 64}
	return g, sizes
}

func indexOf(order []string, name string) int {
	for i, n := range order {
		if n == name {
			return i
		}
	}
	return -1
}

func TestExecOrder(t *testing.T) {
	g, sizes := graph()
	order := Order(g, sizes, AlgoExec)
	if order[0] != "hot1" || order[1] != "hot2" {
		t.Fatalf("exec order wrong: %v", order)
	}
}

func TestHFSortClustersCalleeWithCaller(t *testing.T) {
	g, sizes := graph()
	order := Order(g, sizes, AlgoHFSort)
	hi := indexOf(order, "hot1")
	ci := indexOf(order, "callee")
	if hi < 0 || ci < 0 {
		t.Fatalf("missing functions in %v", order)
	}
	if ci != hi+1 {
		t.Errorf("callee should directly follow its heaviest caller: %v", order)
	}
	if indexOf(order, "cold") < indexOf(order, "hot2") {
		t.Errorf("cold function placed before hot: %v", order)
	}
}

func TestHFSortRespectsPageBound(t *testing.T) {
	g := &profile.CallGraph{
		Nodes: map[string]uint64{"a": 100, "b": 90},
		Edges: map[[2]string]uint64{{"a", "b"}: 90},
	}
	// b is bigger than a page: the classic algorithm must not merge.
	sizes := map[string]uint64{"a": 4000, "b": 5000}
	order := Order(g, sizes, AlgoHFSort)
	if len(order) != 2 {
		t.Fatalf("bad order %v", order)
	}
	// Both present, order by density; no crash is the main property.
	if indexOf(order, "a") < 0 || indexOf(order, "b") < 0 {
		t.Fatalf("missing funcs: %v", order)
	}
}

func TestHFSortPlusMergesBigger(t *testing.T) {
	g := &profile.CallGraph{
		Nodes: map[string]uint64{"a": 100, "b": 90},
		Edges: map[[2]string]uint64{{"a", "b"}: 90},
	}
	sizes := map[string]uint64{"a": 4000, "b": 5000}
	order := Order(g, sizes, AlgoPlus)
	if indexOf(order, "b") != indexOf(order, "a")+1 {
		t.Errorf("hfsort+ should merge beyond one page: %v", order)
	}
}

func TestNoneReturnsNil(t *testing.T) {
	g, sizes := graph()
	if Order(g, sizes, AlgoNone) != nil {
		t.Fatal("none must return nil (keep original order)")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := &profile.CallGraph{Nodes: map[string]uint64{}, Edges: map[[2]string]uint64{}}
	if out := Order(g, nil, AlgoHFSort); len(out) != 0 {
		t.Fatalf("expected empty order, got %v", out)
	}
}

func TestDeterminism(t *testing.T) {
	g, sizes := graph()
	a := Order(g, sizes, AlgoPlus)
	b := Order(g, sizes, AlgoPlus)
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic order: %v vs %v", a, b)
		}
	}
}

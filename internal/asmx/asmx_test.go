package asmx

import (
	"testing"

	"gobolt/internal/isa"
	"gobolt/internal/obj"
)

func TestShortBranch(t *testing.T) {
	a := New()
	top := a.NewLabel()
	a.Bind(top)
	a.Emit(func() isa.Inst { i := isa.NewInst(isa.ADDri); i.R1 = isa.RAX; i.Imm = 1; return i }())
	jcc := isa.NewInst(isa.JCC)
	jcc.Cc = isa.CondNE
	a.EmitBranch(jcc, top)
	a.Emit(isa.NewInst(isa.RET))
	res, err := a.Finish(0x400000)
	if err != nil {
		t.Fatal(err)
	}
	// add(4) + jcc rel8(2) + ret(1) = 7 bytes.
	if len(res.Code) != 7 {
		t.Fatalf("expected short form, got %d bytes: % x", len(res.Code), res.Code)
	}
	dec, _, err := isa.Decode(res.Code[4:], 0x400004)
	if err != nil || dec.Op != isa.JCC || dec.TargetAddr != 0x400000 {
		t.Fatalf("branch decode: %v %v target %#x", dec.Op, err, dec.TargetAddr)
	}
}

func TestRelaxationWidens(t *testing.T) {
	a := New()
	end := a.NewLabel()
	jmp := isa.NewInst(isa.JMP)
	a.EmitBranch(jmp, end)
	// 200 bytes of filler forces the jump to rel32.
	for i := 0; i < 50; i++ {
		a.Emit(func() isa.Inst { i := isa.NewInst(isa.ADDri); i.R1 = isa.RBX; i.Imm = 1; return i }())
	}
	a.Bind(end)
	a.Emit(isa.NewInst(isa.RET))
	res, err := a.Finish(0x400000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Code[0] != 0xE9 {
		t.Fatalf("expected rel32 jmp, first byte %#x", res.Code[0])
	}
	dec, n, err := isa.Decode(res.Code, 0x400000)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(0x400000 + n + 50*4)
	if dec.TargetAddr != want {
		t.Fatalf("jmp target %#x, want %#x", dec.TargetAddr, want)
	}
}

func TestChainOfBranchesConverges(t *testing.T) {
	// Branches that straddle each other: widening one can push another out
	// of rel8 range; the fixpoint loop must converge.
	a := New()
	labels := make([]Label, 10)
	for i := range labels {
		labels[i] = a.NewLabel()
	}
	for i := 0; i < 10; i++ {
		jmp := isa.NewInst(isa.JMP)
		a.EmitBranch(jmp, labels[9-i])
		for j := 0; j < 12; j++ {
			a.Emit(func() isa.Inst { k := isa.NewInst(isa.ADDri); k.R1 = isa.RAX; k.Imm = 100; return k }())
		}
		a.Bind(labels[i])
	}
	a.Emit(isa.NewInst(isa.RET))
	if _, err := a.Finish(0x400000); err != nil {
		t.Fatal(err)
	}
}

func TestAlign(t *testing.T) {
	a := New()
	a.Emit(isa.NewInst(isa.RET))
	a.Align(16)
	l := a.NewLabel()
	a.Bind(l)
	a.Emit(isa.NewInst(isa.RET))
	res, err := a.Finish(0x400000)
	if err != nil {
		t.Fatal(err)
	}
	if res.LabelOffs[l] != 16 {
		t.Fatalf("aligned label at %d, want 16", res.LabelOffs[l])
	}
	// Padding must be decodable NOPs.
	off := uint64(1)
	for off < 16 {
		dec, n, err := isa.Decode(res.Code[off:], 0x400000+off)
		if err != nil || dec.Op != isa.NOP {
			t.Fatalf("pad at %d not nop: %v %v", off, dec.Op, err)
		}
		off += uint64(n)
	}
}

func TestRelocPlacement(t *testing.T) {
	a := New()
	call := isa.NewInst(isa.CALL)
	a.EmitReloc(call, obj.RelPC32, "callee", -4)
	lea := isa.NewInst(isa.LEA)
	lea.R1 = isa.RAX
	lea.M = isa.Mem{Base: isa.NoReg, Index: isa.NoReg, RIP: true}
	a.EmitReloc(lea, obj.RelPC32, "table", -4)
	res, err := a.Finish(0x400000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Relocs) != 2 {
		t.Fatalf("got %d relocs", len(res.Relocs))
	}
	if res.Relocs[0].Off != 1 || res.Relocs[0].Sym != "callee" {
		t.Errorf("call reloc wrong: %+v", res.Relocs[0])
	}
	// lea is 7 bytes (rex+8D+modrm+disp32): reloc at 5 + 7 - 4 = 8.
	if res.Relocs[1].Off != 8 || res.Relocs[1].Sym != "table" {
		t.Errorf("lea reloc wrong: %+v", res.Relocs[1])
	}
}

func TestUnboundLabel(t *testing.T) {
	a := New()
	l := a.NewLabel()
	a.EmitBranch(isa.NewInst(isa.JMP), l)
	if _, err := a.Finish(0); err == nil {
		t.Fatal("unbound label must error")
	}
}

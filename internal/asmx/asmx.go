// Package asmx is the function-body assembler shared by the mini compiler
// and by gobolt's code emitter. It lays out a stream of instructions,
// binds labels, performs rel8/rel32 branch relaxation to a fixpoint
// (starting short and widening — the 2-byte vs 6-byte Jcc trade-off from
// paper §3.1), inserts alignment NOPs, and records relocations for
// references the linker must patch.
package asmx

import (
	"fmt"

	"gobolt/internal/isa"
	"gobolt/internal/obj"
)

// Label identifies a position in the assembled stream.
type Label int

// None marks "no label".
const None Label = -1

type itemKind uint8

const (
	kindInst itemKind = iota
	kindBranch
	kindReloc
	kindAlign
	kindBytes
)

type item struct {
	kind   itemKind
	inst   isa.Inst
	target Label // kindBranch
	// kindReloc
	relType uint32
	sym     string
	symID   obj.SymID
	addend  int64
	// kindAlign
	align int
	// kindBytes
	raw []byte

	long bool // widened branch (relaxation state)
	off  uint32
	size uint32
}

// Assembler accumulates instructions and produces machine code.
type Assembler struct {
	items     []item
	labels    []int    // label -> item index (position *before* that item)
	labelOffs []uint32 // Finish's reusable label-offset scratch
}

// New returns an empty assembler.
func New() *Assembler { return &Assembler{} }

// Reset clears the assembler for reuse, keeping its backing storage.
// Hot callers (gobolt's emitter) hold one assembler per worker and Reset
// it between functions, so steady-state assembly allocates only the
// returned code and relocation slices.
func (a *Assembler) Reset() {
	a.items = a.items[:0]
	a.labels = a.labels[:0]
}

// NewLabel allocates an unbound label.
func (a *Assembler) NewLabel() Label {
	a.labels = append(a.labels, -1)
	return Label(len(a.labels) - 1)
}

// Bind attaches l to the current position.
func (a *Assembler) Bind(l Label) {
	a.labels[l] = len(a.items)
}

// Emit appends a plain instruction.
func (a *Assembler) Emit(i isa.Inst) {
	a.items = append(a.items, item{kind: kindInst, inst: i})
}

// EmitBranch appends a direct branch (JMP/JCC) to a label.
func (a *Assembler) EmitBranch(i isa.Inst, target Label) {
	a.items = append(a.items, item{kind: kindBranch, inst: i, target: target})
}

// EmitReloc appends an instruction whose trailing 4 bytes are a
// linker-patched field (call rel32, RIP-relative disp32). The relocation
// is recorded at (instruction end - 4) with the given type/sym/addend.
func (a *Assembler) EmitReloc(i isa.Inst, relType uint32, sym string, addend int64) {
	a.items = append(a.items, item{kind: kindReloc, inst: i, relType: relType, sym: sym, addend: addend})
}

// EmitRelocID is EmitReloc with a packed numeric symbol instead of a
// name (obj.Reloc.SymID); gobolt's emitter uses it to keep the hot
// emission path free of per-relocation string building.
func (a *Assembler) EmitRelocID(i isa.Inst, relType uint32, symID obj.SymID, addend int64) {
	a.items = append(a.items, item{kind: kindReloc, inst: i, relType: relType, symID: symID, addend: addend})
}

// Align pads with NOPs to the given power-of-two boundary.
func (a *Assembler) Align(n int) {
	a.items = append(a.items, item{kind: kindAlign, align: n})
}

// EmitBytes appends raw bytes (used for data-in-text padding in tests).
func (a *Assembler) EmitBytes(b []byte) {
	a.items = append(a.items, item{kind: kindBytes, raw: b})
}

// Result is the assembled function body. Code and Relocs are freshly
// allocated at their exact final size and safe to retain; LabelOffs
// aliases assembler-owned scratch and is only valid until the next
// Finish or Reset on the same assembler.
type Result struct {
	Code      []byte
	LabelOffs []uint32 // label -> byte offset within Code
	Relocs    []obj.Reloc
}

// Finish lays out the stream at the given base address and returns the
// encoded bytes. Relaxation: every branch starts in its rel8 form; any
// branch whose displacement does not fit is widened to rel32 and layout is
// recomputed, until a fixpoint (widening is monotone, so this terminates).
func (a *Assembler) Finish(base uint64) (*Result, error) {
	if cap(a.labelOffs) < len(a.labels) {
		a.labelOffs = make([]uint32, len(a.labels))
	}
	labelOffs := a.labelOffs[:len(a.labels)]
	clear(labelOffs)
	if len(a.items) == 0 {
		return &Result{LabelOffs: labelOffs}, nil
	}

	computeLayout := func() {
		off := uint32(0)
		for idx := range a.items {
			it := &a.items[idx]
			it.off = off
			switch it.kind {
			case kindInst, kindReloc:
				// Non-label-relative instructions always use their long
				// form (fixed size regardless of final addresses).
				it.size = uint32(isa.InstLen(&it.inst, true))
			case kindBranch:
				it.size = uint32(isa.InstLen(&it.inst, it.long))
			case kindAlign:
				pad := uint32(0)
				if it.align > 1 {
					rem := (uint64(off) + base) % uint64(it.align)
					if rem != 0 {
						pad = uint32(uint64(it.align) - rem)
					}
				}
				it.size = pad
			case kindBytes:
				it.size = uint32(len(it.raw))
			}
			off += it.size
		}
		for l, itemIdx := range a.labels {
			if itemIdx < 0 {
				labelOffs[l] = 0
				continue
			}
			if itemIdx >= len(a.items) {
				// Bound at the very end.
				last := a.items[len(a.items)-1]
				labelOffs[l] = last.off + last.size
			} else {
				labelOffs[l] = a.items[itemIdx].off
			}
		}
	}

	// Relaxation loop.
	for iter := 0; ; iter++ {
		if iter > len(a.items)+8 {
			return nil, fmt.Errorf("asmx: relaxation did not converge")
		}
		computeLayout()
		widened := false
		for idx := range a.items {
			it := &a.items[idx]
			if it.kind != kindBranch || it.long {
				continue
			}
			if a.labels[it.target] < 0 {
				return nil, fmt.Errorf("asmx: branch to unbound label %d", it.target)
			}
			targetOff := int64(labelOffs[it.target])
			rel := targetOff - int64(it.off) - int64(it.size)
			if rel < -128 || rel > 127 {
				it.long = true
				widened = true
			}
		}
		if !widened {
			break
		}
	}

	// Encode into exactly-sized buffers: total code length is fixed by
	// the converged layout, and the relocation count by the item stream.
	res := &Result{LabelOffs: labelOffs}
	last := &a.items[len(a.items)-1]
	code := make([]byte, 0, last.off+last.size)
	nRel := 0
	for idx := range a.items {
		if a.items[idx].kind == kindReloc {
			nRel++
		}
	}
	if nRel > 0 {
		res.Relocs = make([]obj.Reloc, 0, nRel)
	}
	for idx := range a.items {
		it := &a.items[idx]
		if uint32(len(code)) != it.off {
			return nil, fmt.Errorf("asmx: layout drift at item %d: %d != %d", idx, len(code), it.off)
		}
		pc := base + uint64(it.off)
		var err error
		switch it.kind {
		case kindInst:
			code, err = isa.AppendInst(code, &it.inst, pc, true)
		case kindBranch:
			inst := it.inst
			inst.TargetAddr = base + uint64(labelOffs[it.target])
			code, err = isa.AppendInst(code, &inst, pc, it.long)
		case kindReloc:
			code, err = isa.AppendInst(code, &it.inst, pc, true)
			if err == nil {
				res.Relocs = append(res.Relocs, obj.Reloc{
					Off:    uint32(len(code) - 4),
					Type:   it.relType,
					Sym:    it.sym,
					SymID:  it.symID,
					Addend: it.addend,
				})
			}
		case kindAlign:
			code = isa.AppendNop(code, int(it.size))
		case kindBytes:
			code = append(code, it.raw...)
		}
		if err != nil {
			return nil, fmt.Errorf("asmx: encoding %s at %#x: %w", it.inst.String(), pc, err)
		}
	}
	res.Code = code
	return res, nil
}

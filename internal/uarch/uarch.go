// Package uarch is a trace-driven microarchitecture simulator: the
// measurement substrate replacing the paper's Intel servers. It consumes
// the VM's execution trace and models the structures the paper attributes
// BOLT's wins to (Fig 6): the instruction cache and TLB, the data cache
// hierarchy, and the branch predictor, plus a front-end-bound timing model
// that turns miss counts into a CPU-time figure.
//
// Absolute cycle counts are not calibrated to any real part; the
// experiments compare the *same* model across binaries, so relative
// deltas (speedups, miss reductions) are meaningful.
package uarch

import (
	"fmt"
	"strings"

	"gobolt/internal/vm"
)

// CacheCfg shapes one cache level.
type CacheCfg struct {
	SizeKB  int
	Assoc   int
	LineLog uint // log2 of the line size
}

// TLBCfg shapes a TLB.
type TLBCfg struct {
	Entries int
	Assoc   int
	PageLog uint
}

// Config is the machine model. Zero fields take defaults (see
// DefaultConfig); penalties are in cycles.
type Config struct {
	L1I  CacheCfg
	L1D  CacheCfg
	L2   CacheCfg // unified
	LLC  CacheCfg
	ITLB TLBCfg
	DTLB TLBCfg

	GshareBits uint
	BTBEntries int
	RASDepth   int

	IssueWidth     int
	L2Penalty      uint64
	LLCPenalty     uint64
	MemPenalty     uint64
	TLBMissPenalty uint64
	MispredPenalty uint64
	TakenPenalty   uint64 // front-end fetch redirect per taken branch
}

// DefaultConfig models a small Ivy-Bridge-class core.
func DefaultConfig() Config {
	return Config{
		L1I:  CacheCfg{SizeKB: 32, Assoc: 8, LineLog: 6},
		L1D:  CacheCfg{SizeKB: 32, Assoc: 8, LineLog: 6},
		L2:   CacheCfg{SizeKB: 256, Assoc: 8, LineLog: 6},
		LLC:  CacheCfg{SizeKB: 8192, Assoc: 16, LineLog: 6},
		ITLB: TLBCfg{Entries: 128, Assoc: 4, PageLog: 12},
		DTLB: TLBCfg{Entries: 64, Assoc: 4, PageLog: 12},

		GshareBits: 14,
		BTBEntries: 4096,
		RASDepth:   16,

		IssueWidth:     4,
		L2Penalty:      12,
		LLCPenalty:     36,
		MemPenalty:     180,
		TLBMissPenalty: 28,
		MispredPenalty: 15,
		TakenPenalty:   1,
	}
}

// Metrics is the simulator output.
type Metrics struct {
	Instructions uint64
	Cycles       uint64

	L1IAccess, L1IMiss uint64
	L1DAccess, L1DMiss uint64
	L2Access, L2Miss   uint64
	LLCAccess, LLCMiss uint64

	ITLBAccess, ITLBMiss uint64
	DTLBAccess, DTLBMiss uint64

	Branches, BranchMiss uint64
	TakenBranches        uint64
}

// IPC returns instructions per cycle.
func (m *Metrics) IPC() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.Instructions) / float64(m.Cycles)
}

// MissRate is a safe ratio helper.
func MissRate(miss, access uint64) float64 {
	if access == 0 {
		return 0
	}
	return float64(miss) / float64(access)
}

// Reduction returns the relative improvement from base to opt (positive =
// opt is better), e.g. Reduction(base.L1IMiss, opt.L1IMiss).
func Reduction(base, opt uint64) float64 {
	if base == 0 {
		return 0
	}
	return (float64(base) - float64(opt)) / float64(base)
}

// Speedup returns base/opt CPU-time ratio minus 1 (e.g. 0.08 = 8% faster).
func Speedup(base, opt *Metrics) float64 {
	if opt.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles)/float64(opt.Cycles) - 1
}

// cache is a set-associative LRU cache over line/page numbers.
type cache struct {
	sets    [][]uint64 // tags; 0 = empty
	lru     [][]uint32
	setMask uint64
	shift   uint
	tick    uint32
}

func newCache(lines int, assoc int, shift uint) *cache {
	if assoc <= 0 {
		assoc = 1
	}
	nsets := lines / assoc
	if nsets < 1 {
		nsets = 1
	}
	// Round down to a power of two for cheap indexing.
	for nsets&(nsets-1) != 0 {
		nsets &^= nsets & (-nsets) // clear lowest set bit... (loop ends at pow2)
	}
	c := &cache{setMask: uint64(nsets - 1), shift: shift}
	c.sets = make([][]uint64, nsets)
	c.lru = make([][]uint32, nsets)
	for i := range c.sets {
		c.sets[i] = make([]uint64, assoc)
		c.lru[i] = make([]uint32, assoc)
	}
	return c
}

func newCacheFromCfg(cfg CacheCfg) *cache {
	lineSize := 1 << cfg.LineLog
	lines := cfg.SizeKB * 1024 / lineSize
	return newCache(lines, cfg.Assoc, cfg.LineLog)
}

func newTLB(cfg TLBCfg) *cache {
	return newCache(cfg.Entries, cfg.Assoc, cfg.PageLog)
}

// access returns true on hit and updates LRU/fill state.
func (c *cache) access(addr uint64) bool {
	key := addr>>c.shift | 1<<63 // bias so 0 means empty
	set := (addr >> c.shift) & c.setMask
	tags := c.sets[set]
	lru := c.lru[set]
	c.tick++
	for i, t := range tags {
		if t == key {
			lru[i] = c.tick
			return true
		}
	}
	// Miss: replace LRU way.
	victim := 0
	for i := 1; i < len(tags); i++ {
		if lru[i] < lru[victim] {
			victim = i
		}
	}
	tags[victim] = key
	lru[victim] = c.tick
	return false
}

// Sim implements vm.Tracer.
type Sim struct {
	cfg Config
	M   Metrics

	l1i, l1d, l2, llc *cache
	itlb, dtlb        *cache

	gshare  []uint8
	ghist   uint64
	gmask   uint64
	btb     []uint64
	btbMask uint64
	ras     []uint64
	rasTop  int

	lastLine uint64 // last fetched I-line (dedup sequential accesses)
}

// New builds a simulator; zero-value fields of cfg take defaults.
func New(cfg Config) *Sim {
	def := DefaultConfig()
	if cfg.L1I.SizeKB == 0 {
		cfg = def
	}
	s := &Sim{cfg: cfg}
	s.l1i = newCacheFromCfg(cfg.L1I)
	s.l1d = newCacheFromCfg(cfg.L1D)
	s.l2 = newCacheFromCfg(cfg.L2)
	s.llc = newCacheFromCfg(cfg.LLC)
	s.itlb = newTLB(cfg.ITLB)
	s.dtlb = newTLB(cfg.DTLB)
	s.gshare = make([]uint8, 1<<cfg.GshareBits)
	s.gmask = uint64(len(s.gshare) - 1)
	n := cfg.BTBEntries
	for n&(n-1) != 0 {
		n &^= n & (-n)
	}
	s.btb = make([]uint64, n)
	s.btbMask = uint64(n - 1)
	s.ras = make([]uint64, cfg.RASDepth)
	s.lastLine = ^uint64(0)
	return s
}

// missPath charges the L2/LLC/memory path shared by I- and D-side misses.
func (s *Sim) missPath(addr uint64) uint64 {
	s.M.L2Access++
	if s.l2.access(addr) {
		return s.cfg.L2Penalty
	}
	s.M.L2Miss++
	s.M.LLCAccess++
	if s.llc.access(addr) {
		return s.cfg.LLCPenalty
	}
	s.M.LLCMiss++
	return s.cfg.MemPenalty
}

// Inst models the fetch of one instruction.
func (s *Sim) Inst(addr uint64, size uint8) {
	s.M.Instructions++
	line := addr >> s.cfg.L1I.LineLog
	endLine := (addr + uint64(size) - 1) >> s.cfg.L1I.LineLog
	for l := line; l <= endLine; l++ {
		if l == s.lastLine {
			continue
		}
		s.lastLine = l
		la := l << s.cfg.L1I.LineLog
		s.M.L1IAccess++
		s.M.ITLBAccess++
		if !s.itlb.access(la) {
			s.M.ITLBMiss++
			s.M.Cycles += s.cfg.TLBMissPenalty
		}
		if !s.l1i.access(la) {
			s.M.L1IMiss++
			s.M.Cycles += s.missPath(la)
		}
	}
}

// Mem models one data access.
func (s *Sim) Mem(addr uint64, size uint8, write bool) {
	s.M.L1DAccess++
	s.M.DTLBAccess++
	if !s.dtlb.access(addr) {
		s.M.DTLBMiss++
		s.M.Cycles += s.cfg.TLBMissPenalty
	}
	if !s.l1d.access(addr) {
		s.M.L1DMiss++
		s.M.Cycles += s.missPath(addr)
	}
}

// Branch models prediction for one control transfer.
func (s *Sim) Branch(from, to uint64, taken bool, kind vm.BranchKind) {
	switch kind {
	case vm.BrCond:
		s.M.Branches++
		idx := (from ^ s.ghist) & s.gmask
		ctr := &s.gshare[idx]
		pred := *ctr >= 2
		if taken && *ctr < 3 {
			*ctr++
		} else if !taken && *ctr > 0 {
			*ctr--
		}
		s.ghist = s.ghist<<1 | b2u(taken)
		miss := pred != taken
		if taken {
			// Taken branches also need the BTB to supply the target in
			// time; code layout that converts taken branches into
			// fall-throughs relieves exactly this pressure (paper §4,
			// pass 9 discussion).
			slot := &s.btb[(from>>1)&s.btbMask]
			if *slot != to {
				miss = true
				*slot = to
			}
			s.M.TakenBranches++
			s.M.Cycles += s.cfg.TakenPenalty
			s.lastLine = ^uint64(0) // fetch redirect
		}
		if miss {
			s.M.BranchMiss++
			s.M.Cycles += s.cfg.MispredPenalty
		}
	case vm.BrUncond:
		s.M.TakenBranches++
		s.M.Cycles += s.cfg.TakenPenalty
		s.lastLine = ^uint64(0)
	case vm.BrIndirect, vm.BrIndCall:
		s.M.Branches++
		s.M.TakenBranches++
		slot := &s.btb[(from>>1)&s.btbMask]
		if *slot != to {
			s.M.BranchMiss++
			s.M.Cycles += s.cfg.MispredPenalty
			*slot = to
		}
		s.M.Cycles += s.cfg.TakenPenalty
		s.lastLine = ^uint64(0)
		if kind == vm.BrIndCall {
			s.pushRAS(from)
		}
	case vm.BrCall:
		s.M.TakenBranches++
		s.M.Cycles += s.cfg.TakenPenalty
		s.lastLine = ^uint64(0)
		s.pushRAS(from)
	case vm.BrRet:
		s.M.Branches++
		s.M.TakenBranches++
		want := s.popRAS()
		// Return addresses are from+call-length; compare approximately by
		// requiring the return to land within 16 bytes after the call.
		if want == 0 || to < want || to > want+16 {
			s.M.BranchMiss++
			s.M.Cycles += s.cfg.MispredPenalty
		}
		s.M.Cycles += s.cfg.TakenPenalty
		s.lastLine = ^uint64(0)
	}
}

func (s *Sim) pushRAS(callAddr uint64) {
	s.ras[s.rasTop%len(s.ras)] = callAddr
	s.rasTop++
}

func (s *Sim) popRAS() uint64 {
	if s.rasTop == 0 {
		return 0
	}
	s.rasTop--
	return s.ras[s.rasTop%len(s.ras)]
}

// Finish folds the base pipeline cost into the cycle count; call once
// after the run.
func (s *Sim) Finish() *Metrics {
	s.M.Cycles += s.M.Instructions / uint64(s.cfg.IssueWidth)
	return &s.M
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Format renders a perf-stat-like report.
func (m *Metrics) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%16d instructions\n", m.Instructions)
	fmt.Fprintf(&sb, "%16d cycles               # %.2f IPC\n", m.Cycles, m.IPC())
	fmt.Fprintf(&sb, "%16d branches\n", m.Branches)
	fmt.Fprintf(&sb, "%16d branch-misses        # %5.2f%%\n", m.BranchMiss, 100*MissRate(m.BranchMiss, m.Branches))
	fmt.Fprintf(&sb, "%16d L1-icache-misses     # %5.2f%% of %d\n", m.L1IMiss, 100*MissRate(m.L1IMiss, m.L1IAccess), m.L1IAccess)
	fmt.Fprintf(&sb, "%16d L1-dcache-misses     # %5.2f%% of %d\n", m.L1DMiss, 100*MissRate(m.L1DMiss, m.L1DAccess), m.L1DAccess)
	fmt.Fprintf(&sb, "%16d LLC-misses           # %5.2f%% of %d\n", m.LLCMiss, 100*MissRate(m.LLCMiss, m.LLCAccess), m.LLCAccess)
	fmt.Fprintf(&sb, "%16d iTLB-misses          # %5.2f%% of %d\n", m.ITLBMiss, 100*MissRate(m.ITLBMiss, m.ITLBAccess), m.ITLBAccess)
	fmt.Fprintf(&sb, "%16d dTLB-misses          # %5.2f%% of %d\n", m.DTLBMiss, 100*MissRate(m.DTLBMiss, m.DTLBAccess), m.DTLBAccess)
	return sb.String()
}

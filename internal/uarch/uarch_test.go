package uarch

import (
	"testing"

	"gobolt/internal/vm"
)

func TestCacheBasics(t *testing.T) {
	c := newCache(64, 4, 6) // 64 lines, 4-way, 64B lines
	if c.access(0x1000) {
		t.Fatal("cold miss expected")
	}
	if !c.access(0x1000) || !c.access(0x103F) {
		t.Fatal("same line must hit")
	}
	if c.access(0x1040) {
		t.Fatal("next line must miss")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(4, 4, 6) // one set, 4 ways: addresses with same set index
	addrs := []uint64{0x0000, 0x1000, 0x2000, 0x3000}
	for _, a := range addrs {
		c.access(a)
	}
	for _, a := range addrs {
		if !c.access(a) {
			t.Fatalf("addr %#x should still be resident", a)
		}
	}
	c.access(0x4000) // evicts LRU = 0x0000
	if c.access(0x0000) {
		t.Fatal("0x0000 should have been evicted")
	}
}

func TestInstFetchCountsLinesOnce(t *testing.T) {
	s := New(DefaultConfig())
	s.Inst(0x400000, 4)
	s.Inst(0x400004, 4) // same line: no new access
	if s.M.L1IAccess != 1 {
		t.Fatalf("expected 1 line access, got %d", s.M.L1IAccess)
	}
	s.Inst(0x40003E, 4) // crosses into the next line
	if s.M.L1IAccess != 2 {
		t.Fatalf("expected 2 accesses after line cross, got %d", s.M.L1IAccess)
	}
}

func TestBranchRedirectResetsFetchLine(t *testing.T) {
	s := New(DefaultConfig())
	s.Inst(0x400000, 4)
	s.Branch(0x400004, 0x400000, true, vm.BrUncond)
	before := s.M.L1IAccess
	s.Inst(0x400000, 4) // same line, but after a redirect: counts again
	if s.M.L1IAccess != before+1 {
		t.Fatal("fetch line must reset after taken branch")
	}
}

func TestCondBranchPrediction(t *testing.T) {
	s := New(DefaultConfig())
	// Strongly biased branch: after warmup, no more mispredicts.
	for i := 0; i < 100; i++ {
		s.Branch(0x400100, 0x400200, true, vm.BrCond)
	}
	missesAfterWarmup := s.M.BranchMiss
	for i := 0; i < 100; i++ {
		s.Branch(0x400100, 0x400200, true, vm.BrCond)
	}
	if s.M.BranchMiss != missesAfterWarmup {
		t.Fatalf("biased branch kept mispredicting: %d -> %d",
			missesAfterWarmup, s.M.BranchMiss)
	}
}

func TestReturnAddressStack(t *testing.T) {
	s := New(DefaultConfig())
	s.Branch(0x400010, 0x400100, true, vm.BrCall)
	miss := s.M.BranchMiss
	s.Branch(0x400110, 0x400015, true, vm.BrRet) // returns right after the call
	if s.M.BranchMiss != miss {
		t.Fatal("matched return must predict")
	}
	s.Branch(0x400120, 0x500000, true, vm.BrRet) // bogus return target
	if s.M.BranchMiss != miss+1 {
		t.Fatal("mismatched return must mispredict")
	}
}

func TestTimingModel(t *testing.T) {
	s := New(DefaultConfig())
	for i := 0; i < 1024; i++ {
		s.Inst(0x400000+uint64(4*i), 4)
	}
	m := s.Finish()
	if m.Cycles == 0 || m.Instructions != 1024 {
		t.Fatalf("bad metrics: %+v", m)
	}
	if m.IPC() <= 0 || m.IPC() > float64(DefaultConfig().IssueWidth) {
		t.Fatalf("IPC out of range: %f", m.IPC())
	}
}

func TestHelpers(t *testing.T) {
	if Reduction(100, 80) != 0.2 {
		t.Error("Reduction wrong")
	}
	if Reduction(0, 5) != 0 {
		t.Error("Reduction zero-guard wrong")
	}
	a := &Metrics{Cycles: 110}
	b := &Metrics{Cycles: 100}
	if s := Speedup(a, b); s < 0.099 || s > 0.101 {
		t.Errorf("Speedup wrong: %f", s)
	}
	if MissRate(1, 0) != 0 {
		t.Error("MissRate zero-guard wrong")
	}
	if (&Metrics{}).Format() == "" {
		t.Error("Format must render")
	}
}

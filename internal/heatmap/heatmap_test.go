package heatmap

import (
	"strings"
	"testing"
)

func TestTouchAndHotSpan(t *testing.T) {
	m := New(0x400000, 0x400000+4096*64)
	// Concentrate all heat in one block.
	for i := 0; i < 1000; i++ {
		m.Touch(0x400010, 16)
	}
	if span := m.HotSpan(0.95); span != m.BlockSize {
		t.Fatalf("hot span %d, want one block (%d)", span, m.BlockSize)
	}
	m.Touch(0x400000+uint64(m.BlockSize)*100, 8)
	if m.Counts[100] != 8 {
		t.Errorf("second block not counted")
	}
	// Out-of-range touches are ignored.
	m.Touch(0x300000, 8)
	m.Touch(0x500000*2, 8)
}

func TestRenderShape(t *testing.T) {
	m := New(0, 4096*GridDim*GridDim)
	m.Touch(0, 64)
	out := m.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != GridDim+1 { // header + 64 rows
		t.Fatalf("render has %d lines", len(lines))
	}
	if len(lines[1]) != GridDim {
		t.Fatalf("row width %d", len(lines[1]))
	}
	if lines[1][0] == '.' {
		t.Error("touched block rendered cold")
	}
	if !strings.HasPrefix(m.CSV(), "block,start,bytes,heat") {
		t.Error("CSV header wrong")
	}
}

func TestEmptyMap(t *testing.T) {
	m := New(0, 100)
	if m.HotSpan(0.95) != 0 {
		t.Error("empty map must have zero hot span")
	}
	if !strings.Contains(m.Render(), "heatmap:") {
		t.Error("render must include header")
	}
}

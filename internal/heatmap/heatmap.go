// Package heatmap builds instruction-address-space heat maps like the
// paper's Figure 9: a 64x64 grid over the text segment where each cell
// records how many times, on average, each of its bytes was fetched,
// displayed on a log scale.
package heatmap

import (
	"fmt"
	"math"
	"strings"

	"gobolt/internal/vm"
)

// GridDim is the paper's 64x64 layout.
const GridDim = 64

// Map accumulates fetched bytes over an address range.
type Map struct {
	Base      uint64
	Limit     uint64
	BlockSize uint64
	Counts    []uint64 // fetched bytes per block
}

// New covers [base, limit) with GridDim*GridDim blocks.
func New(base, limit uint64) *Map {
	span := limit - base
	blocks := uint64(GridDim * GridDim)
	bs := (span + blocks - 1) / blocks
	if bs == 0 {
		bs = 1
	}
	return &Map{Base: base, Limit: limit, BlockSize: bs, Counts: make([]uint64, blocks)}
}

// Touch records a fetch of size bytes at addr. Implements the part of
// vm.Tracer it needs; use Tracer() for a full adapter.
func (m *Map) Touch(addr uint64, size uint8) {
	if addr < m.Base || addr >= m.Limit {
		return
	}
	b := (addr - m.Base) / m.BlockSize
	m.Counts[b] += uint64(size)
}

// Heat returns the per-block log-scaled average fetches per byte.
func (m *Map) Heat() []float64 {
	out := make([]float64, len(m.Counts))
	for i, c := range m.Counts {
		if c == 0 {
			continue
		}
		avg := float64(c) / float64(m.BlockSize)
		out[i] = math.Log10(1 + avg)
	}
	return out
}

// HotSpan returns the number of bytes of address space needed to cover
// the given fraction of all fetches, taking blocks hottest-first. This is
// the quantitative core of Figure 9: BOLT packs the hot bytes of a
// 148 MB binary into ~4 MB.
func (m *Map) HotSpan(frac float64) uint64 {
	total := uint64(0)
	for _, c := range m.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	sorted := append([]uint64(nil), m.Counts...)
	// Simple insertion-free approach: repeatedly take the max (grid is
	// only 4096 entries).
	target := uint64(float64(total) * frac)
	var covered, blocks uint64
	for covered < target {
		maxI, maxV := -1, uint64(0)
		for i, v := range sorted {
			if v > maxV {
				maxI, maxV = i, v
			}
		}
		if maxI < 0 {
			break
		}
		covered += maxV
		sorted[maxI] = 0
		blocks++
	}
	return blocks * m.BlockSize
}

// Render draws the grid as text; '.' is cold, digits scale with heat.
func (m *Map) Render() string {
	heat := m.Heat()
	maxH := 0.0
	for _, h := range heat {
		if h > maxH {
			maxH = h
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "heatmap: base=%#x limit=%#x block=%d bytes (log scale, max=%.2f)\n",
		m.Base, m.Limit, m.BlockSize, maxH)
	for y := 0; y < GridDim; y++ {
		for x := 0; x < GridDim; x++ {
			h := heat[y*GridDim+x]
			switch {
			case h == 0:
				sb.WriteByte('.')
			case maxH == 0:
				sb.WriteByte('.')
			default:
				level := int(h / maxH * 9)
				if level > 9 {
					level = 9
				}
				sb.WriteByte(byte('0' + level))
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CSV emits "blockIndex,startAddr,bytesFetched,heat" rows for plotting.
func (m *Map) CSV() string {
	heat := m.Heat()
	var sb strings.Builder
	sb.WriteString("block,start,bytes,heat\n")
	for i, c := range m.Counts {
		fmt.Fprintf(&sb, "%d,%#x,%d,%.4f\n", i, m.Base+uint64(i)*m.BlockSize, c, heat[i])
	}
	return sb.String()
}

// Tracer adapts the map to vm.Tracer.
func (m *Map) Tracer() vm.Tracer { return tracerAdapter{m} }

type tracerAdapter struct{ m *Map }

func (t tracerAdapter) Inst(addr uint64, size uint8)                           { t.m.Touch(addr, size) }
func (t tracerAdapter) Branch(from, to uint64, taken bool, kind vm.BranchKind) {}
func (t tracerAdapter) Mem(addr uint64, size uint8, write bool)                {}

// Package obsv is the pipeline's zero-dependency observability
// subsystem: a low-overhead span tracer (per-worker append-only buffers,
// no locks on the hot path), a Chrome trace-event exporter, derived
// per-phase occupancy statistics, and a typed metrics registry that owns
// the stat counters the engine used to keep in a bare map.
//
// A nil *Tracer is the disabled state: every instrumentation site
// nil-checks before recording, so tracing off costs a pointer compare
// and no allocations.
package obsv

import (
	"cmp"
	"slices"
	"sync"
	"time"
)

// Kind classifies a recorded span.
type Kind uint8

const (
	// KindPhase marks one pipeline phase (a pass, a loader or emitter
	// stage); phase spans live on the dedicated pipeline lane.
	KindPhase Kind = iota
	// KindBatch marks one worker's participation in a pooled phase:
	// the interval from the worker claiming its first item to the pool
	// draining. N carries the number of items the worker completed.
	KindBatch
	// KindTask marks one work item (typically one function) executed by
	// a worker inside a pooled phase.
	KindTask
)

func (k Kind) String() string {
	switch k {
	case KindPhase:
		return "phase"
	case KindBatch:
		return "batch"
	case KindTask:
		return "task"
	}
	return "unknown"
}

// Span is one recorded interval. Start is relative to the tracer epoch
// so spans order and export without re-reading the wall clock.
type Span struct {
	Kind   Kind
	Name   string        // phase name, or task/function name
	Phase  string        // owning phase (== Name for phase spans)
	Worker int           // worker lane; -1 for phase spans
	Start  time.Duration // offset from the tracer epoch
	Dur    time.Duration
	N      int // phase: pool width (jobs); batch: items completed
}

// lane is one worker's private append-only span buffer. Lanes are
// pointer-held by the tracer so growing the lane table never moves a
// buffer another goroutine is appending to.
type lane struct {
	spans []Span
}

// Tracer records spans for one pipeline run. The hot path —
// Task/Batch from pool workers — appends to a per-worker lane with no
// locking; the tracer only takes its mutex on the serial control path
// (EnsureWorkers, Phase, Spans). Concurrent phases are not supported:
// the pipeline runs phases serially and only fans out within one.
type Tracer struct {
	epoch time.Time

	mu     sync.Mutex
	phases []Span
	lanes  []*lane
}

// New returns an enabled tracer with its epoch set to now.
func New() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// Epoch returns the tracer's time origin.
func (t *Tracer) Epoch() time.Time { return t.epoch }

// EnsureWorkers grows the lane table to at least n worker lanes. Pools
// call it once before fanning out so workers never mutate the table.
func (t *Tracer) EnsureWorkers(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	for len(t.lanes) < n {
		t.lanes = append(t.lanes, &lane{})
	}
	t.mu.Unlock()
}

// Phase records one pipeline phase span with the pool width that ran it.
// Serial phases pass jobs=1.
func (t *Tracer) Phase(name string, start time.Time, dur time.Duration, jobs int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.phases = append(t.phases, Span{
		Kind: KindPhase, Name: name, Phase: name, Worker: -1,
		Start: start.Sub(t.epoch), Dur: dur, N: jobs,
	})
	t.mu.Unlock()
}

// Task records one work item on worker w's lane. The caller must have
// sized the lane table with EnsureWorkers; the append itself is
// lock-free because the lane is private to the worker.
func (t *Tracer) Task(w int, phase, name string, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	l := t.lanes[w]
	l.spans = append(l.spans, Span{
		Kind: KindTask, Name: name, Phase: phase, Worker: w,
		Start: start.Sub(t.epoch), Dur: dur,
	})
}

// Batch records worker w's whole participation in a pooled phase —
// items is how many work items the worker completed.
func (t *Tracer) Batch(w int, phase string, start time.Time, dur time.Duration, items int) {
	if t == nil {
		return
	}
	l := t.lanes[w]
	l.spans = append(l.spans, Span{
		Kind: KindBatch, Name: phase, Phase: phase, Worker: w,
		Start: start.Sub(t.epoch), Dur: dur, N: items,
	})
}

// Workers reports how many worker lanes have been provisioned.
func (t *Tracer) Workers() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.lanes)
}

// Spans returns every recorded span sorted by start time (phase spans
// first on ties, so a phase encloses its tasks in stable order). Safe
// to call only when no pool is in flight.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	total := len(t.phases)
	for _, l := range t.lanes {
		total += len(l.spans)
	}
	out := make([]Span, 0, total)
	out = append(out, t.phases...)
	for _, l := range t.lanes {
		out = append(out, l.spans...)
	}
	slices.SortStableFunc(out, func(a, b Span) int {
		if a.Start != b.Start {
			return cmp.Compare(a.Start, b.Start)
		}
		return cmp.Compare(a.Kind, b.Kind)
	})
	return out
}

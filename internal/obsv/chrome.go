package obsv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// The trace export speaks the Chrome trace-event JSON format (the
// object form with a traceEvents array), which Perfetto and
// chrome://tracing load directly. Spans become "X" (complete) events;
// lane names become "M" (metadata) thread_name events. The pipeline
// lane is tid 0 and worker w is tid w+1, all under pid 1.

const (
	chromePID     = 1
	pipelineTID   = 0
	workerTIDBase = 1
)

type chromeEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat,omitempty"`
	Ph   string      `json:"ph"`
	TS   float64     `json:"ts"`            // microseconds since trace start
	Dur  *float64    `json:"dur,omitempty"` // microseconds; required for ph=X
	PID  int         `json:"pid"`
	TID  int         `json:"tid"`
	Args *chromeArgs `json:"args,omitempty"`
}

type chromeArgs struct {
	Name  string `json:"name,omitempty"`  // thread_name metadata payload
	Jobs  int    `json:"jobs,omitempty"`  // phase spans: pool width
	Items int    `json:"items,omitempty"` // batch spans: items completed
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
}

func usec(d int64) float64 { return float64(d) / 1e3 } // ns -> µs

// WriteChromeTrace renders the tracer's spans as Chrome trace-event
// JSON. The output is deterministic for a given span set: metadata
// first, then spans in Spans() order.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	var tr chromeTrace
	tr.DisplayTimeUnit = "ms"
	dur := func(d float64) *float64 { return &d }
	tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
		Name: "thread_name", Ph: "M", PID: chromePID, TID: pipelineTID,
		Args: &chromeArgs{Name: "pipeline"},
	})
	for w := 0; w < t.Workers(); w++ {
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePID, TID: workerTIDBase + w,
			Args: &chromeArgs{Name: fmt.Sprintf("worker %d", w)},
		})
	}
	for _, s := range t.Spans() {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  s.Kind.String(),
			Ph:   "X",
			TS:   usec(s.Start.Nanoseconds()),
			Dur:  dur(usec(s.Dur.Nanoseconds())),
			PID:  chromePID,
		}
		switch s.Kind {
		case KindPhase:
			ev.TID = pipelineTID
			ev.Args = &chromeArgs{Jobs: s.N}
		case KindBatch:
			ev.TID = workerTIDBase + s.Worker
			ev.Cat = "batch:" + s.Phase
			ev.Args = &chromeArgs{Items: s.N}
		case KindTask:
			ev.TID = workerTIDBase + s.Worker
			ev.Cat = "task:" + s.Phase
		}
		tr.TraceEvents = append(tr.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&tr)
}

// ValidateChromeTrace strictly parses data as the trace subset this
// package emits (docs/trace.schema.json) and checks its structural
// invariants: unknown fields rejected, every event is "X" or "M",
// complete events carry non-negative ts/dur and a known category, and
// at least one phase span is present.
func ValidateChromeTrace(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var tr chromeTrace
	if err := dec.Decode(&tr); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if len(tr.TraceEvents) == 0 {
		return fmt.Errorf("trace: no events")
	}
	phases := 0
	for i, ev := range tr.TraceEvents {
		if ev.Name == "" {
			return fmt.Errorf("trace: event %d has no name", i)
		}
		if ev.PID != chromePID {
			return fmt.Errorf("trace: event %d has pid %d, want %d", i, ev.PID, chromePID)
		}
		switch ev.Ph {
		case "M":
			if ev.Name != "thread_name" || ev.Args == nil || ev.Args.Name == "" {
				return fmt.Errorf("trace: event %d is malformed metadata", i)
			}
		case "X":
			if ev.TS < 0 || ev.Dur == nil || *ev.Dur < 0 {
				return fmt.Errorf("trace: event %d (%s) has bad ts/dur", i, ev.Name)
			}
			switch {
			case ev.Cat == "phase":
				if ev.TID != pipelineTID {
					return fmt.Errorf("trace: phase span %q off the pipeline lane (tid %d)", ev.Name, ev.TID)
				}
				phases++
			case len(ev.Cat) > 5 && ev.Cat[:5] == "task:",
				len(ev.Cat) > 6 && ev.Cat[:6] == "batch:":
				if ev.TID < workerTIDBase {
					return fmt.Errorf("trace: worker span %q on tid %d", ev.Name, ev.TID)
				}
			default:
				return fmt.Errorf("trace: event %d (%s) has unknown category %q", i, ev.Name, ev.Cat)
			}
		default:
			return fmt.Errorf("trace: event %d has unknown ph %q", i, ev.Ph)
		}
	}
	if phases == 0 {
		return fmt.Errorf("trace: no phase spans")
	}
	return nil
}

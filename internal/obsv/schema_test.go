package obsv

import (
	"encoding/json"
	"os"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// TestTraceSchemaInSync keeps docs/trace.schema.json honest against the
// chrome*.go structs that emit and strictly validate the trace: every
// definition's property keys must match the struct's JSON keys exactly,
// with unknown fields rejected.
func TestTraceSchemaInSync(t *testing.T) {
	data, err := os.ReadFile("../../docs/trace.schema.json")
	if err != nil {
		t.Fatalf("read schema: %v", err)
	}
	var doc struct {
		Ref  string `json:"$ref"`
		Defs map[string]struct {
			AdditionalProperties *bool                      `json:"additionalProperties"`
			Required             []string                   `json:"required"`
			Properties           map[string]json.RawMessage `json:"properties"`
		} `json:"$defs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("parse schema: %v", err)
	}
	if doc.Ref != "#/$defs/trace" {
		t.Errorf("schema root $ref is %q, want #/$defs/trace", doc.Ref)
	}

	types := map[string]reflect.Type{
		"trace": reflect.TypeOf(chromeTrace{}),
		"event": reflect.TypeOf(chromeEvent{}),
		"args":  reflect.TypeOf(chromeArgs{}),
	}
	for name, typ := range types {
		def, ok := doc.Defs[name]
		if !ok {
			t.Errorf("schema is missing the %q definition", name)
			continue
		}
		if def.AdditionalProperties == nil || *def.AdditionalProperties {
			t.Errorf("schema def %q must set additionalProperties: false (ValidateChromeTrace is strict)", name)
		}
		var got []string
		for k := range def.Properties {
			got = append(got, k)
		}
		sort.Strings(got)
		var want []string
		for i := 0; i < typ.NumField(); i++ {
			name, _, _ := strings.Cut(typ.Field(i).Tag.Get("json"), ",")
			want = append(want, name)
		}
		sort.Strings(want)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("schema def %q properties drifted from %v:\n  schema: %v\n  struct: %v",
				name, typ, got, want)
		}
		for _, req := range def.Required {
			if _, ok := def.Properties[req]; !ok {
				t.Errorf("schema def %q requires %q but does not define it", name, req)
			}
		}
	}
	for name := range doc.Defs {
		if _, ok := types[name]; !ok {
			t.Errorf("schema def %q has no Go struct mapped in this test; extend the map", name)
		}
	}
}

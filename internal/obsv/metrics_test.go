package obsv

import (
	"reflect"
	"testing"
)

func testDefs() []Def {
	return []Def{
		{Name: "total", Kind: Counter, Help: "parent"},
		{Name: "a", Kind: Counter, Help: "part a", SumTo: "total"},
		{Name: "b", Kind: Counter, Help: "part b", SumTo: "total"},
		{Name: "g", Kind: Gauge, Help: "a gauge"},
		{Name: "h", Kind: HistogramKind, Help: "a hist", Buckets: []float64{0.5, 1.0}},
	}
}

func TestCountersAliasAndMerge(t *testing.T) {
	r := NewRegistry(testDefs())
	stats := r.Counters()
	r.Add("a", 3)
	r.Merge(map[string]int64{"b": 4, "total": 7})
	if stats["a"] != 3 || stats["b"] != 4 || stats["total"] != 7 {
		t.Fatalf("aliased map = %v", stats)
	}
	if err := r.CheckSums(); err != nil {
		t.Fatal(err)
	}
	r.Add("a", 1)
	if err := r.CheckSums(); err == nil {
		t.Fatal("CheckSums passed with 8 != 7")
	}
	if und := r.Undeclared(); und != nil {
		t.Fatalf("undeclared = %v", und)
	}
	r.Add("mystery", 1)
	if und := r.Undeclared(); !reflect.DeepEqual(und, []string{"mystery"}) {
		t.Fatalf("undeclared = %v", und)
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	r := NewRegistry(testDefs())
	r.Add("a", 1)
	s := r.Snapshot()
	r.Add("a", 1)
	if s.Counters["a"] != 1 {
		t.Errorf("snapshot mutated: %v", s.Counters)
	}
	if got := r.SnapshotCounters()["a"]; got != 2 {
		t.Errorf("live count = %d", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry(testDefs())
	r.Observe("h", "x", 0.25)
	r.Observe("h", "y", 0.75)
	r.Observe("h", "z", 2.0)
	r.SetGauge("g", 0.5)
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %+v", s.Histograms)
	}
	h := s.Histograms[0]
	if h.Count != 3 || h.Min != 0.25 || h.Max != 2.0 {
		t.Fatalf("h = %+v", h)
	}
	if !reflect.DeepEqual(h.Counts, []int64{1, 1, 1}) {
		t.Errorf("bucket counts = %v", h.Counts)
	}
	// Worst list is ascending by value: the lowest-quality functions first.
	if h.Worst[0].Label != "x" || h.Worst[1].Label != "y" || h.Worst[2].Label != "z" {
		t.Errorf("worst = %+v", h.Worst)
	}
	if s.Gauges["g"] != 0.5 {
		t.Errorf("gauges = %v", s.Gauges)
	}
	// Observing an undeclared histogram is drift, not a panic.
	r.Observe("nope", "x", 1)
	found := false
	for _, u := range r.Undeclared() {
		found = found || u == "nope"
	}
	if !found {
		t.Error("undeclared histogram not tracked")
	}
}

func TestHistogramWorstCap(t *testing.T) {
	r := NewRegistry([]Def{{Name: "h", Kind: HistogramKind, Buckets: []float64{1}}})
	for i := 0; i < 3*maxWorstObs; i++ {
		r.Observe("h", "f", float64(i))
	}
	h := r.Snapshot().Histograms[0]
	if len(h.Worst) != maxWorstObs {
		t.Fatalf("worst len = %d, want %d", len(h.Worst), maxWorstObs)
	}
	if h.Worst[0].Value != 0 || h.Worst[maxWorstObs-1].Value != float64(maxWorstObs-1) {
		t.Errorf("worst = %+v", h.Worst)
	}
}

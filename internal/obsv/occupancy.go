package obsv

import (
	"cmp"
	"fmt"
	"io"
	"slices"
	"strings"
	"time"
)

// TaskStat names one straggler task and its duration.
type TaskStat struct {
	Name  string `json:"name"`
	DurNS int64  `json:"dur_ns"`
}

// PhaseStats is the derived occupancy summary for one pooled phase:
// how busy the pool actually was against the phase's wall time, the
// task-duration distribution, and the top straggler tasks by name.
// Utilization is Σ task durations / (wall × jobs); the gap to 1.0 is
// worker idle time (startup/drain skew, uneven task sizes).
type PhaseStats struct {
	Phase       string     `json:"phase"`
	WallNS      int64      `json:"wall_ns"`
	Jobs        int        `json:"jobs"`
	Tasks       int        `json:"tasks"`
	BusyNS      int64      `json:"busy_ns"`
	Utilization float64    `json:"utilization"`
	P50NS       int64      `json:"p50_ns"`
	P99NS       int64      `json:"p99_ns"`
	Stragglers  []TaskStat `json:"stragglers,omitempty"`
}

// maxStragglers bounds the per-phase straggler list kept in reports.
const maxStragglers = 5

// Occupancy derives per-phase pool-occupancy statistics from the
// recorded spans. Only phases that recorded task spans appear (barrier
// passes and serial stages have no pool to be occupied). A phase name
// recorded more than once (e.g. a pass that runs twice) is folded into
// one row: walls and busy times sum, so utilization stays consistent.
// Rows come back in first-recorded order.
func Occupancy(spans []Span) []PhaseStats {
	type acc struct {
		wall  time.Duration
		jobs  int
		busy  time.Duration
		tasks []Span
	}
	accs := map[string]*acc{}
	var order []string
	get := func(phase string) *acc {
		a := accs[phase]
		if a == nil {
			a = &acc{}
			accs[phase] = a
			order = append(order, phase)
		}
		return a
	}
	for _, s := range spans {
		switch s.Kind {
		case KindPhase:
			a := get(s.Name)
			a.wall += s.Dur
			if s.N > a.jobs {
				a.jobs = s.N
			}
		case KindTask:
			a := get(s.Phase)
			a.busy += s.Dur
			a.tasks = append(a.tasks, s)
		}
	}
	var out []PhaseStats
	for _, phase := range order {
		a := accs[phase]
		if len(a.tasks) == 0 {
			continue
		}
		jobs := a.jobs
		if jobs < 1 {
			jobs = 1
		}
		ps := PhaseStats{
			Phase:  phase,
			WallNS: a.wall.Nanoseconds(),
			Jobs:   jobs,
			Tasks:  len(a.tasks),
			BusyNS: a.busy.Nanoseconds(),
		}
		if a.wall > 0 {
			ps.Utilization = float64(a.busy) / (float64(a.wall) * float64(jobs))
		}
		durs := make([]time.Duration, len(a.tasks))
		for i, t := range a.tasks {
			durs[i] = t.Dur
		}
		slices.Sort(durs)
		ps.P50NS = quantile(durs, 0.50).Nanoseconds()
		ps.P99NS = quantile(durs, 0.99).Nanoseconds()
		// Top stragglers by duration; ties broken by name then start so
		// the list is deterministic for a fixed span set. a.tasks is the
		// accumulator's private copy, so sorting in place is fine.
		tasks := a.tasks
		slices.SortFunc(tasks, func(x, y Span) int {
			if x.Dur != y.Dur {
				return cmp.Compare(y.Dur, x.Dur)
			}
			if x.Name != y.Name {
				return strings.Compare(x.Name, y.Name)
			}
			return cmp.Compare(x.Start, y.Start)
		})
		for i := 0; i < len(tasks) && i < maxStragglers; i++ {
			ps.Stragglers = append(ps.Stragglers, TaskStat{
				Name: tasks[i].Name, DurNS: tasks[i].Dur.Nanoseconds(),
			})
		}
		out = append(out, ps)
	}
	return out
}

// quantile returns the q-quantile of sorted durations (nearest-rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// WriteOccupancy renders the occupancy table appended to -time-passes
// reports next to the Amdahl summary.
func WriteOccupancy(w io.Writer, stats []PhaseStats) {
	if len(stats) == 0 {
		return
	}
	fmt.Fprintf(w, "pool occupancy (busy/(wall*jobs)):\n")
	for _, ps := range stats {
		fmt.Fprintf(w, "  %-20s %5.1f%%  jobs=%-2d tasks=%-5d p50=%-10v p99=%-10v",
			ps.Phase, 100*ps.Utilization, ps.Jobs, ps.Tasks,
			time.Duration(ps.P50NS).Round(time.Microsecond),
			time.Duration(ps.P99NS).Round(time.Microsecond))
		for i, s := range ps.Stragglers {
			if i >= 3 {
				break
			}
			if i == 0 {
				fmt.Fprintf(w, "  slowest:")
			}
			fmt.Fprintf(w, " %s(%v)", s.Name, time.Duration(s.DurNS).Round(time.Microsecond))
		}
		fmt.Fprintln(w)
	}
}

// Summarize renders a compact one-phase-per-line occupancy summary for
// embedding in error messages (the scaling experiment's divergence
// diagnostics).
func Summarize(stats []PhaseStats) string {
	if len(stats) == 0 {
		return "  (no pooled phases traced)\n"
	}
	var b []byte
	for _, ps := range stats {
		line := fmt.Sprintf("  %-20s wall=%-10v busy=%-10v util=%4.1f%% jobs=%d tasks=%d",
			ps.Phase,
			time.Duration(ps.WallNS).Round(time.Microsecond),
			time.Duration(ps.BusyNS).Round(time.Microsecond),
			100*ps.Utilization, ps.Jobs, ps.Tasks)
		if len(ps.Stragglers) > 0 {
			s := ps.Stragglers[0]
			line += fmt.Sprintf(" slowest=%s(%v)", s.Name, time.Duration(s.DurNS).Round(time.Microsecond))
		}
		b = append(b, line...)
		b = append(b, '\n')
	}
	return string(b)
}

package obsv

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// record builds a tracer with one two-worker phase: the phase spans
// 10ms, worker 0 runs two tasks (6ms busy), worker 1 one task (4ms).
func record(t *testing.T) *Tracer {
	t.Helper()
	tr := New()
	e := tr.Epoch()
	tr.EnsureWorkers(2)
	tr.Task(0, "load", "f1", e, 2*time.Millisecond)
	tr.Task(0, "load", "f2", e.Add(2*time.Millisecond), 4*time.Millisecond)
	tr.Task(1, "load", "f3", e, 4*time.Millisecond)
	tr.Batch(0, "load", e, 6*time.Millisecond, 2)
	tr.Batch(1, "load", e, 4*time.Millisecond, 1)
	tr.Phase("load", e, 10*time.Millisecond, 2)
	return tr
}

func TestTracerSpans(t *testing.T) {
	tr := record(t)
	spans := tr.Spans()
	if len(spans) != 6 {
		t.Fatalf("got %d spans, want 6", len(spans))
	}
	// Sorted by start; the phase (start 0) sorts before same-start tasks.
	if spans[0].Kind != KindPhase || spans[0].Name != "load" || spans[0].N != 2 {
		t.Fatalf("first span = %+v, want the load phase", spans[0])
	}
	var tasks, batches int
	for _, s := range spans {
		switch s.Kind {
		case KindTask:
			tasks++
			if s.Phase != "load" {
				t.Errorf("task %q has phase %q", s.Name, s.Phase)
			}
		case KindBatch:
			batches++
		}
	}
	if tasks != 3 || batches != 2 {
		t.Errorf("got %d tasks, %d batches; want 3, 2", tasks, batches)
	}
}

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	// Every recording entry point must be a no-op on the nil tracer.
	tr.EnsureWorkers(4)
	tr.Phase("p", time.Now(), time.Millisecond, 1)
	if got := tr.Spans(); got != nil {
		t.Errorf("nil tracer recorded spans: %v", got)
	}
	if tr.Workers() != 0 {
		t.Errorf("nil tracer has workers")
	}
}

func TestOccupancy(t *testing.T) {
	tr := record(t)
	occ := Occupancy(tr.Spans())
	if len(occ) != 1 {
		t.Fatalf("got %d occupancy rows, want 1", len(occ))
	}
	o := occ[0]
	if o.Phase != "load" || o.Jobs != 2 || o.Tasks != 3 {
		t.Fatalf("row = %+v", o)
	}
	if o.WallNS != (10 * time.Millisecond).Nanoseconds() {
		t.Errorf("wall = %d", o.WallNS)
	}
	if o.BusyNS != (10 * time.Millisecond).Nanoseconds() {
		t.Errorf("busy = %d", o.BusyNS)
	}
	// busy / (wall * jobs) = 10ms / 20ms.
	if o.Utilization < 0.499 || o.Utilization > 0.501 {
		t.Errorf("utilization = %v, want 0.5", o.Utilization)
	}
	// Durations sorted: 2, 4, 4 → p50 = 4ms, p99 = 4ms (nearest rank).
	if o.P50NS != (4 * time.Millisecond).Nanoseconds() {
		t.Errorf("p50 = %d", o.P50NS)
	}
	if len(o.Stragglers) != 3 || o.Stragglers[0].DurNS != (4*time.Millisecond).Nanoseconds() {
		t.Errorf("stragglers = %+v", o.Stragglers)
	}
	// Equal-duration stragglers tie-break by name.
	if o.Stragglers[0].Name != "f2" || o.Stragglers[1].Name != "f3" {
		t.Errorf("straggler order = %+v", o.Stragglers)
	}
}

func TestOccupancySkipsTasklessPhases(t *testing.T) {
	tr := New()
	tr.Phase("barrier", tr.Epoch(), time.Millisecond, 1)
	if occ := Occupancy(tr.Spans()); len(occ) != 0 {
		t.Errorf("taskless phase produced occupancy rows: %+v", occ)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	tr := record(t)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("self-emitted trace invalid: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{`"pipeline"`, `"worker 0"`, `"worker 1"`, `"task:load"`, `"batch:load"`, `"cat":"phase"`} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %s:\n%s", want, out)
		}
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	cases := map[string]string{
		"empty":        `{"traceEvents":[]}`,
		"unknown":      `{"traceEvents":[],"bogus":1}`,
		"no-phase":     `{"traceEvents":[{"name":"x","cat":"task:p","ph":"X","ts":0,"dur":1,"pid":1,"tid":1}]}`,
		"bad-ph":       `{"traceEvents":[{"name":"x","cat":"phase","ph":"B","ts":0,"pid":1,"tid":0}]}`,
		"neg-dur":      `{"traceEvents":[{"name":"x","cat":"phase","ph":"X","ts":0,"dur":-1,"pid":1,"tid":0}]}`,
		"bad-cat":      `{"traceEvents":[{"name":"x","cat":"wat","ph":"X","ts":0,"dur":1,"pid":1,"tid":0}]}`,
		"phase-on-tid": `{"traceEvents":[{"name":"x","cat":"phase","ph":"X","ts":0,"dur":1,"pid":1,"tid":3}]}`,
	}
	for name, in := range cases {
		if err := ValidateChromeTrace([]byte(in)); err == nil {
			t.Errorf("%s: validated, want error", name)
		}
	}
}

package obsv

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// MetricKind classifies a registered metric.
type MetricKind uint8

const (
	Counter MetricKind = iota
	Gauge
	HistogramKind
)

func (k MetricKind) String() string {
	switch k {
	case Counter:
		return "counter"
	case Gauge:
		return "gauge"
	case HistogramKind:
		return "histogram"
	}
	return "unknown"
}

// Def declares one metric: its name, kind, and documentation. Counter
// defs may name a SumTo parent — the registry can then check that the
// children sum exactly to the parent (the profile-accounting
// invariant). Histogram defs carry their bucket upper bounds.
type Def struct {
	Name    string
	Kind    MetricKind
	Help    string
	SumTo   string    // counters: parent this counter must sum into
	Buckets []float64 // histograms: ascending bucket upper bounds
}

// Obs is one labeled histogram observation kept verbatim — the
// registry retains the lowest-valued observations per histogram so a
// quality gate can name the worst functions, not just count them.
type Obs struct {
	Label string  `json:"label"`
	Value float64 `json:"value"`
}

// maxWorstObs bounds the per-histogram worst-observation list.
const maxWorstObs = 8

// Histogram is a fixed-bucket histogram with labeled worst-case
// retention. Counts[i] holds observations <= Buckets[i]; the final
// element overflows.
type Histogram struct {
	def    Def
	counts []int64
	count  int64
	sum    float64
	min    float64
	max    float64
	worst  []Obs // ascending by value, capped at maxWorstObs
}

func (h *Histogram) observe(label string, v float64) {
	i := sort.SearchFloat64s(h.def.Buckets, v)
	h.counts[i]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if h.count == 1 || v > h.max {
		h.max = v
	}
	at := sort.Search(len(h.worst), func(i int) bool {
		if h.worst[i].Value != v {
			return h.worst[i].Value > v
		}
		return h.worst[i].Label > label
	})
	if at < maxWorstObs {
		h.worst = append(h.worst, Obs{})
		copy(h.worst[at+1:], h.worst[at:])
		h.worst[at] = Obs{Label: label, Value: v}
		if len(h.worst) > maxWorstObs {
			h.worst = h.worst[:maxWorstObs]
		}
	}
}

// HistogramSnapshot is the exported state of one histogram.
type HistogramSnapshot struct {
	Name    string    `json:"name"`
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Min     float64   `json:"min"`
	Max     float64   `json:"max"`
	Buckets []float64 `json:"buckets"`
	Counts  []int64   `json:"counts"`
	Worst   []Obs     `json:"worst,omitempty"`
}

// Snapshot is a point-in-time copy of the registry, shaped for the run
// report's metrics section.
type Snapshot struct {
	Counters   map[string]int64    `json:"counters"`
	Gauges     map[string]float64  `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// Registry is the typed home for the pipeline's stats. Its counter
// storage is a plain map[string]int64 exposed via Counters() — the
// engine aliases that map as ctx.Stats, so every existing reader keeps
// working while the registry is the source of truth. Unknown counter
// names are accepted (shard merging must never panic mid-pipeline) but
// tracked as undeclared so a test can fail on key drift.
type Registry struct {
	mu         sync.Mutex
	defs       []Def
	declared   map[string]Def
	counters   map[string]int64
	gauges     map[string]float64
	hists      map[string]*Histogram
	histOrder  []string
	undeclared map[string]bool
}

// NewRegistry builds a registry from metric definitions. Histogram defs
// must carry ascending bucket bounds.
func NewRegistry(defs []Def) *Registry {
	r := &Registry{
		declared:   make(map[string]Def, len(defs)),
		counters:   make(map[string]int64),
		gauges:     make(map[string]float64),
		hists:      make(map[string]*Histogram),
		undeclared: make(map[string]bool),
	}
	r.defs = append(r.defs, defs...)
	for _, d := range defs {
		r.declared[d.Name] = d
		if d.Kind == HistogramKind {
			r.hists[d.Name] = &Histogram{def: d, counts: make([]int64, len(d.Buckets)+1)}
			r.histOrder = append(r.histOrder, d.Name)
		}
	}
	return r
}

// Defs returns the declared definitions in registration order.
func (r *Registry) Defs() []Def { return append([]Def(nil), r.defs...) }

// Counters returns the live counter map. The engine aliases this as
// the compatibility ctx.Stats view; readers between phases see current
// values, and the registry's own mutators go through the same storage.
func (r *Registry) Counters() map[string]int64 { return r.counters }

// Add bumps a counter by delta.
func (r *Registry) Add(name string, delta int64) {
	r.mu.Lock()
	r.bump(name, delta)
	r.mu.Unlock()
}

// Merge folds a per-worker shard into the counters; merging is
// commutative so barrier joins stay deterministic.
func (r *Registry) Merge(shard map[string]int64) {
	if len(shard) == 0 {
		return
	}
	r.mu.Lock()
	for k, v := range shard {
		r.bump(k, v)
	}
	r.mu.Unlock()
}

func (r *Registry) bump(name string, delta int64) {
	if _, ok := r.declared[name]; !ok {
		r.undeclared[name] = true
	}
	r.counters[name] += delta
}

// SetGauge records a point-in-time value.
func (r *Registry) SetGauge(name string, v float64) {
	r.mu.Lock()
	if _, ok := r.declared[name]; !ok {
		r.undeclared[name] = true
	}
	r.gauges[name] = v
	r.mu.Unlock()
}

// Observe records a labeled value into a declared histogram. Observing
// an undeclared histogram is recorded as drift but otherwise dropped —
// production paths must not panic.
func (r *Registry) Observe(name, label string, v float64) {
	if math.IsNaN(v) {
		return
	}
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		r.undeclared[name] = true
	} else {
		h.observe(label, v)
	}
	r.mu.Unlock()
}

// Undeclared returns the sorted names that were used without a
// definition — the drift a registry-driven test fails on.
func (r *Registry) Undeclared() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for k := range r.undeclared {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SnapshotCounters copies the counter map (the pass manager's
// stat-delta bookkeeping).
func (r *Registry) SnapshotCounters() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// Snapshot copies the whole registry for a run report. Histograms with
// no observations are omitted.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{Counters: make(map[string]int64, len(r.counters))}
	for k, v := range r.counters {
		s.Counters[k] = v
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for k, v := range r.gauges {
			s.Gauges[k] = v
		}
	}
	for _, name := range r.histOrder {
		h := r.hists[name]
		if h.count == 0 {
			continue
		}
		s.Histograms = append(s.Histograms, HistogramSnapshot{
			Name:    name,
			Count:   h.count,
			Sum:     h.sum,
			Min:     h.min,
			Max:     h.max,
			Buckets: append([]float64(nil), h.def.Buckets...),
			Counts:  append([]int64(nil), h.counts...),
			Worst:   append([]Obs(nil), h.worst...),
		})
	}
	return s
}

// CheckSums verifies every SumTo group: the children declared to sum
// into a parent counter must add up to it exactly.
func (r *Registry) CheckSums() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	sums := map[string]int64{}
	var parents []string
	for _, d := range r.defs {
		if d.SumTo == "" {
			continue
		}
		if _, ok := sums[d.SumTo]; !ok {
			parents = append(parents, d.SumTo)
		}
		sums[d.SumTo] += r.counters[d.Name]
	}
	for _, p := range parents {
		if got, want := sums[p], r.counters[p]; got != want {
			return fmt.Errorf("metrics: counters declared to sum into %q total %d, want %d", p, got, want)
		}
	}
	return nil
}

// Package bincheck is an independent static verifier for BOLTed
// binaries. It re-opens a rewritten ELF from its serialized bytes,
// re-disassembles every function fragment, and checks the structural
// invariants the rewriter promises — branch targets, jump tables, CFI,
// LSDA, the BAT translation map, and symbol/section sanity — without
// consulting any of the emitter's in-memory state. The paper's core
// claim is that the output is semantically identical to the input
// (Panchenko et al., CGO 2019, §3); this package is the artifact-trust
// gate that checks the output on its own terms before anything ships.
//
// Findings are structured diagnostics: a stable rule ID, a severity,
// the owning function, and the offending address. Rule IDs:
//
//	disasm        fragment bytes fail to decode at an instruction start
//	branch-target direct branch/call target is not an instruction
//	              boundary inside a known fragment
//	jt-target     jump-table entry escapes its function's fragments
//	jt-unbounded  indirect jump in re-emitted code has no recognizable
//	              bounded table (warning)
//	cfi-bounds    FDE range does not match a known fragment
//	cfi-cover     re-emitted fragment has no FDE
//	cfi-decode    CFI program is malformed (offset past the FDE,
//	              off-boundary binding, restore without remember)
//	cfi-split     CFA state is inconsistent across a hot/cold split edge
//	lsda-bounds   LSDA record missing, truncated, or call-site range
//	              outside its FDE
//	lsda-pad      landing pad is not a boundary in the same function
//	bat-parse     .bolt.bat section fails to decode
//	bat-range     BAT range does not match a known fragment
//	bat-monotone  BAT anchors not strictly increasing on instruction
//	              boundaries inside the fragment
//	bat-cover     mapped fragment has no anchors, so samples cannot
//	              translate (warning)
//	bat-translate translated input offset falls outside the original
//	              function body
//	sym-overlap   two function fragments overlap
//	sym-bounds    fragment extends past its section
//	sym-entry     entry point is not a valid instruction start
//	reloc-bounds  relocation patch site is out of section bounds
package bincheck

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"gobolt/internal/elfx"
)

// Severity grades a finding. Errors fail `gobolt -verify`; warnings
// describe conditions the verifier cannot prove safe but that do not
// contradict an invariant on their own.
type Severity string

// Severity levels.
const (
	SeverityError   Severity = "error"
	SeverityWarning Severity = "warning"
)

// Finding is one diagnostic from the verifier.
type Finding struct {
	// Rule is the stable rule ID (see the package comment).
	Rule string `json:"rule"`
	// Severity is "error" or "warning".
	Severity Severity `json:"severity"`
	// Func is the owning function, when one is attributable.
	Func string `json:"func,omitempty"`
	// Addr is the offending virtual address, when one is attributable.
	Addr uint64 `json:"addr,omitempty"`
	// Message is the human-readable diagnostic.
	Message string `json:"msg"`
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s: %s", f.Severity, f.Rule)
	if f.Func != "" {
		s += " " + f.Func
	}
	if f.Addr != 0 {
		s += fmt.Sprintf(" @ %#x", f.Addr)
	}
	return s + ": " + f.Message
}

// Result is the machine-readable outcome of one verification run.
type Result struct {
	// Findings lists every diagnostic, sorted by address then rule.
	Findings []Finding `json:"findings"`
	// Errors and Warnings count findings by severity.
	Errors   int `json:"errors"`
	Warnings int `json:"warnings"`
	// Fragments is the number of function fragments discovered and
	// re-disassembled; Instructions the total instruction count.
	Fragments    int `json:"fragments"`
	Instructions int `json:"instructions"`
	// FDEs is the number of frame entries decoded; BATRanges the number
	// of address-translation ranges checked (0 when .bolt.bat is absent).
	FDEs      int `json:"fdes"`
	BATRanges int `json:"bat_ranges"`
}

// Ok reports whether the run produced no error-severity findings.
func (r *Result) Ok() bool { return r.Errors == 0 }

// WriteJSON writes the result as indented JSON (the standalone
// cmd/bincheck artifact; the library path embeds Result in RunReport).
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Check verifies a BOLTed binary from its serialized bytes. It parses
// the image with elfx, rebuilds the fragment map from the symbol table,
// re-disassembles every fragment, and runs the full rule suite. The
// returned error reports only images the checker cannot open at all;
// everything wrong *inside* a parseable image is a Finding.
func Check(data []byte) (*Result, error) {
	f, err := elfx.Read(data)
	if err != nil {
		return nil, fmt.Errorf("bincheck: %w", err)
	}
	c := &checker{f: f, res: &Result{Findings: []Finding{}}}
	c.discover()
	c.checkSymbols()
	c.checkCode()
	c.checkCFI()
	c.checkBAT()
	c.checkRelocs()
	c.finish()
	return c.res, nil
}

// reportf records a finding.
func (c *checker) reportf(rule string, sev Severity, fn string, addr uint64, format string, args ...any) {
	c.res.Findings = append(c.res.Findings, Finding{
		Rule: rule, Severity: sev, Func: fn, Addr: addr,
		Message: fmt.Sprintf(format, args...),
	})
}

func (c *checker) errorf(rule, fn string, addr uint64, format string, args ...any) {
	c.reportf(rule, SeverityError, fn, addr, format, args...)
}

func (c *checker) warnf(rule, fn string, addr uint64, format string, args ...any) {
	c.reportf(rule, SeverityWarning, fn, addr, format, args...)
}

// finish sorts findings deterministically and tallies severities.
func (c *checker) finish() {
	sort.SliceStable(c.res.Findings, func(i, j int) bool {
		a, b := c.res.Findings[i], c.res.Findings[j]
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	for _, f := range c.res.Findings {
		if f.Severity == SeverityError {
			c.res.Errors++
		} else {
			c.res.Warnings++
		}
	}
}

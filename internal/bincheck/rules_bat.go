package bincheck

import (
	"gobolt/internal/bat"
)

// checkBAT validates the BOLT Address Translation section against the
// re-disassembled fragments: every range matches a known fragment,
// anchors are strictly monotone instruction boundaries, every mapped
// fragment stays translatable, and every translated input offset falls
// inside the original function body (the continuous-profiling loop of
// §7.3 trusts exactly these properties).
func (c *checker) checkBAT() {
	sec := c.f.Section(bat.SectionName)
	if sec == nil {
		return // BAT emission is optional
	}
	t, err := bat.Parse(sec.Data)
	if err != nil {
		c.errorf("bat-parse", "", 0, "%s does not decode: %v", bat.SectionName, err)
		return
	}
	c.res.BATRanges = len(t.Ranges)

	mapped := map[*fragment]int{}
	for i := range t.Ranges {
		r := &t.Ranges[i]
		fi := t.Funcs[r.FuncIdx]
		name := fi.Name
		if r.Cold {
			name += ColdSuffix
		}
		fr := c.byName[name]
		if fr == nil {
			c.errorf("bat-range", fi.Name, r.Start,
				"range [%#x,+%#x) maps unknown fragment %q", r.Start, r.Size, name)
			continue
		}
		mapped[fr]++
		if fr.addr != r.Start || fr.size != uint64(r.Size) {
			c.errorf("bat-range", fi.Name, r.Start,
				"range [%#x,+%#x) does not match fragment %s [%#x,+%#x)",
				r.Start, r.Size, fr.name, fr.addr, fr.size)
			continue
		}
		if len(r.Entries) == 0 && r.Size > 0 {
			c.warnf("bat-cover", fi.Name, r.Start,
				"range [%#x,+%#x) has no anchors; samples there cannot translate", r.Start, r.Size)
		}
		prev := int64(-1)
		for _, e := range r.Entries {
			addr := r.Start + uint64(e.OutOff)
			if int64(e.OutOff) <= prev {
				c.errorf("bat-monotone", fi.Name, addr,
					"anchor at +%#x is not strictly after the previous anchor (+%#x)", e.OutOff, prev)
			}
			prev = int64(e.OutOff)
			if e.OutOff >= r.Size {
				c.errorf("bat-monotone", fi.Name, addr,
					"anchor at +%#x is outside the range (size %#x)", e.OutOff, r.Size)
				continue
			}
			if !fr.broken && !fr.isBoundary(e.OutOff) {
				c.errorf("bat-monotone", fi.Name, addr,
					"anchor at +%#x is not an instruction boundary", e.OutOff)
			}
			if uint64(e.InOff) >= fi.InSize {
				c.errorf("bat-translate", fi.Name, addr,
					"anchor at +%#x translates to input offset %#x outside the original body (size %#x)",
					e.OutOff, e.InOff, fi.InSize)
			}
		}
	}

	// Every fragment the rewriter emitted must be mapped, or samples on
	// it silently vanish from the next profiling round.
	for _, fr := range c.frags {
		if !fr.reemitted {
			continue
		}
		switch mapped[fr] {
		case 0:
			c.errorf("bat-cover", fr.name, fr.addr, "re-emitted fragment has no BAT range")
		case 1:
		default:
			c.errorf("bat-range", fr.name, fr.addr,
				"re-emitted fragment has %d BAT ranges", mapped[fr])
		}
	}
}

package bincheck

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestFindingString(t *testing.T) {
	for _, tc := range []struct {
		f    Finding
		want string
	}{
		{
			Finding{Rule: "branch-target", Severity: SeverityError,
				Func: "f", Addr: 0x401000, Message: "target escapes"},
			"error: branch-target f @ 0x401000: target escapes",
		},
		{
			Finding{Rule: "bat-parse", Severity: SeverityError, Message: "truncated"},
			"error: bat-parse: truncated",
		},
		{
			Finding{Rule: "jt-unbounded", Severity: SeverityWarning,
				Func: "g", Message: "no bound"},
			"warning: jt-unbounded g: no bound",
		},
	} {
		if got := tc.f.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestResultJSONAndTally(t *testing.T) {
	c := &checker{res: &Result{Findings: []Finding{}}}
	c.warnf("bat-cover", "g", 0x30, "no anchors")
	c.errorf("sym-entry", "", 0x10, "entry off boundary")
	c.errorf("branch-target", "f", 0x20, "bad target")
	c.finish()

	r := c.res
	if r.Errors != 2 || r.Warnings != 1 {
		t.Fatalf("tally = %d errors, %d warnings, want 2, 1", r.Errors, r.Warnings)
	}
	if r.Ok() {
		t.Error("Ok() = true with error findings")
	}
	// finish sorts by address, then rule.
	for i, want := range []string{"sym-entry", "branch-target", "bat-cover"} {
		if got := r.Findings[i].Rule; got != want {
			t.Errorf("Findings[%d].Rule = %s, want %s", i, got, want)
		}
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(back.Findings) != 3 || back.Errors != 2 || back.Warnings != 1 {
		t.Errorf("round-trip lost data: %+v", back)
	}
}

func TestCheckRejectsGarbage(t *testing.T) {
	if _, err := Check([]byte("not an ELF image")); err == nil {
		t.Error("Check accepted a non-ELF image")
	}
}

// TestMutationsCoverDistinctRules keeps the corruption matrix honest:
// every mutation names a rule from the catalogue, and the matrix spans
// the code, CFI, LSDA, BAT, and symbol rule families.
func TestMutationsCoverDistinctRules(t *testing.T) {
	families := map[string]bool{}
	for _, m := range Mutations() {
		if m.Name == "" || m.Rule == "" || m.Apply == nil {
			t.Errorf("incomplete mutation %+v", m)
		}
		families[ruleFamily(m.Rule)] = true
	}
	for _, fam := range []string{"code", "cfi", "lsda", "bat", "sym"} {
		if !families[fam] {
			t.Errorf("no mutation targets the %s rule family", fam)
		}
	}
}

func ruleFamily(rule string) string {
	switch rule {
	case "disasm", "branch-target", "jt-target", "jt-unbounded":
		return "code"
	case "cfi-bounds", "cfi-cover", "cfi-decode", "cfi-split":
		return "cfi"
	case "lsda-bounds", "lsda-pad":
		return "lsda"
	case "bat-parse", "bat-range", "bat-monotone", "bat-cover", "bat-translate":
		return "bat"
	case "sym-overlap", "sym-bounds", "sym-entry":
		return "sym"
	case "reloc-bounds":
		return "reloc"
	}
	return "unknown"
}

package bincheck

import (
	"sort"
	"strings"

	"gobolt/internal/elfx"
	"gobolt/internal/isa"
)

// ColdSuffix is the symbol-name suffix the rewriter gives the cold
// fragment of a split function (mirroring llvm-bolt's naming).
const ColdSuffix = ".cold.0"

// instAt is one decoded instruction inside a fragment.
type instAt struct {
	off  uint32
	size uint32
	inst isa.Inst
}

// fragment is one contiguous chunk of function code named by an
// STT_FUNC symbol: a hot or cold fragment of a rewritten function, an
// unmoved function in .bolt.org.text, or a PLT stub.
type fragment struct {
	name string // defining symbol name (fn or fn.cold.0)
	fn   string // owning function (ColdSuffix stripped)
	cold bool
	// reemitted marks fragments the rewriter laid out itself (.text /
	// .text.cold); the strictest rules apply only to those.
	reemitted  bool
	addr, size uint64
	sec        *elfx.Section
	code       []byte

	insts  []instAt
	offIdx map[uint32]int // boundary offset -> index into insts
	broken bool           // decoding failed; instruction-level rules skip
	// aliases are other symbols naming the identical range (linker ICF).
	aliases []string
}

func (fr *fragment) end() uint64 { return fr.addr + fr.size }

// isBoundary reports whether off is an instruction start.
func (fr *fragment) isBoundary(off uint32) bool {
	_, ok := fr.offIdx[off]
	return ok
}

// checker carries the rebuilt model of one binary through the rules.
type checker struct {
	f     *elfx.File
	frags []*fragment // sorted by addr
	// byName maps every defining symbol name (including ICF aliases) to
	// its fragment; byFunc groups fragments by owning function.
	byName map[string]*fragment
	byFunc map[string][]*fragment
	// objSyms maps data-symbol start addresses to their first symbol
	// (jump-table bounding, mirroring the loader's lookup order).
	objSyms map[uint64]elfx.Symbol
	res     *Result
}

// discover rebuilds the fragment map from the symbol table and
// re-disassembles every fragment.
func (c *checker) discover() {
	c.byName = map[string]*fragment{}
	c.byFunc = map[string][]*fragment{}
	c.objSyms = map[uint64]elfx.Symbol{}
	byRange := map[[2]uint64]*fragment{}

	for _, sym := range c.f.Symbols {
		if sym.Type == elfx.STTObject {
			if _, ok := c.objSyms[sym.Value]; !ok {
				c.objSyms[sym.Value] = sym
			}
			continue
		}
		if sym.Type != elfx.STTFunc || sym.Size == 0 {
			continue
		}
		sec := c.f.Section(sym.Section)
		if sec == nil || sec.Flags&elfx.SHFExecinstr == 0 {
			continue
		}
		if fr, ok := byRange[[2]uint64{sym.Value, sym.Size}]; ok {
			// Identical range under another name: a linker-ICF alias.
			fr.aliases = append(fr.aliases, sym.Name)
			c.byName[sym.Name] = fr
			continue
		}
		fr := &fragment{
			name: sym.Name, fn: strings.TrimSuffix(sym.Name, ColdSuffix),
			cold:      strings.HasSuffix(sym.Name, ColdSuffix),
			reemitted: sec.Name == ".text" || sec.Name == ".text.cold",
			addr:      sym.Value, size: sym.Size, sec: sec,
		}
		byRange[[2]uint64{sym.Value, sym.Size}] = fr
		c.byName[sym.Name] = fr
		c.byFunc[fr.fn] = append(c.byFunc[fr.fn], fr)
		c.frags = append(c.frags, fr)
	}
	sort.Slice(c.frags, func(i, j int) bool {
		a, b := c.frags[i], c.frags[j]
		if a.addr != b.addr {
			return a.addr < b.addr
		}
		return a.size < b.size
	})
	c.res.Fragments = len(c.frags)

	for _, fr := range c.frags {
		c.disassemble(fr)
	}
}

// disassemble linearly decodes a fragment, recording every instruction
// boundary. A decode failure marks the fragment broken: the bytes do
// not form an instruction stream, which is itself a finding, and the
// instruction-level rules skip the fragment rather than cascade.
func (c *checker) disassemble(fr *fragment) {
	secOff := fr.addr - fr.sec.Addr
	if fr.addr < fr.sec.Addr || secOff+fr.size > uint64(len(fr.sec.Data)) {
		// checkSymbols reports the bounds violation; nothing to decode.
		fr.broken = true
		fr.offIdx = map[uint32]int{}
		return
	}
	fr.code = fr.sec.Data[secOff : secOff+fr.size]
	fr.offIdx = make(map[uint32]int, len(fr.code)/4)
	for off := uint32(0); uint64(off) < fr.size; {
		inst, n, err := isa.Decode(fr.code[off:], fr.addr+uint64(off))
		if err != nil {
			c.errorf("disasm", fr.name, fr.addr+uint64(off),
				"undecodable bytes at offset %#x: %v", off, err)
			fr.broken = true
			return
		}
		fr.offIdx[off] = len(fr.insts)
		fr.insts = append(fr.insts, instAt{off: off, size: uint32(n), inst: inst})
		off += uint32(n)
	}
	c.res.Instructions += len(fr.insts)
}

// at locates the fragment containing addr, if any.
func (c *checker) at(addr uint64) *fragment {
	i := sort.Search(len(c.frags), func(i int) bool { return c.frags[i].addr > addr })
	if i == 0 {
		return nil
	}
	fr := c.frags[i-1]
	if addr >= fr.end() {
		return nil
	}
	return fr
}

// fragStarting returns the fragment starting exactly at addr, if any.
func (c *checker) fragStarting(addr uint64) *fragment {
	fr := c.at(addr)
	if fr == nil || fr.addr != addr {
		return nil
	}
	return fr
}

// validTarget reports whether addr is an instruction boundary inside a
// known fragment. Fragments that failed to decode accept any interior
// address (the disasm finding already covers them).
func (c *checker) validTarget(addr uint64) (*fragment, bool) {
	fr := c.at(addr)
	if fr == nil {
		return nil, false
	}
	if fr.broken {
		return fr, true
	}
	return fr, fr.isBoundary(uint32(addr - fr.addr))
}

// checkSymbols verifies the fragment map itself: fragments inside their
// sections, no partial overlaps, a valid entry point.
func (c *checker) checkSymbols() {
	for i, fr := range c.frags {
		if fr.addr < fr.sec.Addr || fr.end() > fr.sec.Addr+uint64(len(fr.sec.Data)) {
			c.errorf("sym-bounds", fr.name, fr.addr,
				"fragment [%#x,%#x) extends past section %s [%#x,%#x)",
				fr.addr, fr.end(), fr.sec.Name, fr.sec.Addr, fr.sec.Addr+uint64(len(fr.sec.Data)))
		}
		if i > 0 {
			prev := c.frags[i-1]
			if fr.addr < prev.end() {
				c.errorf("sym-overlap", fr.name, fr.addr,
					"fragment [%#x,%#x) overlaps %s [%#x,%#x)",
					fr.addr, fr.end(), prev.name, prev.addr, prev.end())
			}
		}
	}
	if c.f.Entry != 0 {
		if fr, ok := c.validTarget(c.f.Entry); !ok {
			name := ""
			if fr != nil {
				name = fr.name
			}
			c.errorf("sym-entry", name, c.f.Entry,
				"entry point %#x is not an instruction boundary in any fragment", c.f.Entry)
		}
	}
}

// checkRelocs bounds-checks every surviving relocation against its
// section's data (outputs usually carry none; inputs opened for
// inspection do).
func (c *checker) checkRelocs() {
	names := make([]string, 0, len(c.f.Relas))
	for name := range c.f.Relas {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sec := c.f.Section(name)
		if sec == nil {
			c.errorf("reloc-bounds", "", 0, "relocations for missing section %q", name)
			continue
		}
		for _, r := range c.f.Relas[name] {
			width := uint64(4)
			if r.Type == elfx.RX866464 {
				width = 8
			}
			if r.Off+width > uint64(len(sec.Data)) {
				c.errorf("reloc-bounds", r.Sym, sec.Addr+r.Off,
					"relocation at %s+%#x overruns the section (%d bytes)",
					name, r.Off, len(sec.Data))
			}
		}
	}
}

package bincheck

import (
	"math"

	"gobolt/internal/cfi"
)

// checkCFI decodes the frame section from its serialized bytes and
// verifies every FDE against the re-disassembled fragments: ranges
// match, CFI programs bind on instruction boundaries and replay without
// underflow, every re-emitted fragment is covered, LSDA call sites stay
// inside their FDE with live landing pads in the same function, and
// hot/cold split edges carry consistent CFA state.
func (c *checker) checkCFI() {
	sec := c.f.Section(cfi.FrameSectionName)
	if sec == nil {
		for _, fr := range c.frags {
			if fr.reemitted {
				c.errorf("cfi-cover", fr.name, fr.addr,
					"no %s section, but fragment %s was re-emitted", cfi.FrameSectionName, fr.name)
				return // one finding is enough; every fragment is equally uncovered
			}
		}
		return
	}
	fdes, err := cfi.DecodeFrames(sec.Data)
	if err != nil {
		c.errorf("cfi-bounds", "", 0, "%s does not decode: %v", cfi.FrameSectionName, err)
		return
	}
	c.res.FDEs = len(fdes)

	covered := map[*fragment]int{}
	fdeOf := map[*fragment]*cfi.FDE{}
	for i := range fdes {
		fde := &fdes[i]
		fr := c.fragStarting(fde.Start)
		if fr == nil {
			c.errorf("cfi-bounds", "", fde.Start,
				"FDE [%#x,%#x) starts at no known fragment", fde.Start, fde.Start+uint64(fde.Len))
			continue
		}
		covered[fr]++
		if fdeOf[fr] == nil {
			fdeOf[fr] = fde
		}
		if fr.reemitted && uint64(fde.Len) != fr.size {
			c.errorf("cfi-bounds", fr.name, fde.Start,
				"FDE length %#x != re-emitted fragment size %#x", fde.Len, fr.size)
		} else if uint64(fde.Len) > fr.size {
			c.errorf("cfi-bounds", fr.name, fde.Start,
				"FDE length %#x overruns fragment size %#x", fde.Len, fr.size)
		}
		c.checkFDEProgram(fr, fde)
		if fde.LSDA != 0 {
			c.checkLSDA(fr, fde)
		}
	}

	for _, fr := range c.frags {
		if !fr.reemitted {
			continue
		}
		switch covered[fr] {
		case 0:
			c.errorf("cfi-cover", fr.name, fr.addr, "re-emitted fragment has no FDE")
		case 1:
		default:
			c.errorf("cfi-cover", fr.name, fr.addr,
				"re-emitted fragment has %d FDEs", covered[fr])
		}
	}

	c.checkSplitState(fdeOf)
}

// checkFDEProgram validates one FDE's unwind program: every rule binds
// at an instruction boundary inside the FDE, and the full replay
// succeeds (no restore_state without a matching remember_state).
func (c *checker) checkFDEProgram(fr *fragment, fde *cfi.FDE) {
	for _, pi := range fde.Insts {
		if pi.PC >= fde.Len && !(pi.PC == 0 && fde.Len == 0) {
			c.errorf("cfi-decode", fr.name, fde.Start+uint64(pi.PC),
				"CFI %s bound at offset %#x beyond FDE length %#x", pi.Inst.Kind, pi.PC, fde.Len)
			continue
		}
		if !fr.broken && !fr.isBoundary(pi.PC) {
			c.errorf("cfi-decode", fr.name, fde.Start+uint64(pi.PC),
				"CFI %s bound mid-instruction at offset %#x", pi.Inst.Kind, pi.PC)
		}
	}
	if _, err := fde.Evaluate(math.MaxUint32); err != nil {
		c.errorf("cfi-decode", fr.name, fde.Start, "CFI program does not replay: %v", err)
	}
}

// checkLSDA validates the exception call-site table hanging off an FDE.
func (c *checker) checkLSDA(fr *fragment, fde *cfi.FDE) {
	sec := c.f.Section(cfi.LSDASectionName)
	if sec == nil || fde.LSDA < sec.Addr {
		c.errorf("lsda-bounds", fr.name, fde.Start,
			"FDE points at LSDA %#x outside %s", fde.LSDA, cfi.LSDASectionName)
		return
	}
	l, err := cfi.DecodeLSDA(sec.Data, uint32(fde.LSDA-sec.Addr))
	if err != nil {
		c.errorf("lsda-bounds", fr.name, fde.Start, "LSDA at %#x does not decode: %v", fde.LSDA, err)
		return
	}
	for i, cs := range l.CallSites {
		if uint64(cs.Start)+uint64(cs.Len) > uint64(fde.Len) {
			c.errorf("lsda-bounds", fr.name, fde.Start+uint64(cs.Start),
				"call site %d [%#x,+%#x) overruns the FDE (length %#x)", i, cs.Start, cs.Len, fde.Len)
			continue
		}
		if !fr.broken && !fr.isBoundary(cs.Start) {
			c.errorf("lsda-bounds", fr.name, fde.Start+uint64(cs.Start),
				"call site %d starts mid-instruction at offset %#x", i, cs.Start)
		}
		if cs.LandingPad == 0 {
			continue
		}
		lp, ok := c.validTarget(cs.LandingPad)
		if !ok {
			c.errorf("lsda-pad", fr.name, cs.LandingPad,
				"call site %d landing pad %#x is not an instruction boundary", i, cs.LandingPad)
			continue
		}
		if lp.fn != fr.fn {
			c.errorf("lsda-pad", fr.name, cs.LandingPad,
				"call site %d landing pad %#x lands in %s, not in %s", i, cs.LandingPad, lp.name, fr.fn)
		}
	}
}

// checkSplitState verifies CFA consistency across hot/cold split edges:
// a branch between the two fragments of one function does not change
// the CFA, so the unwind state at the target must equal the state at
// the branch site — unless the target offset carries its own explicit
// CFI rules (the spliced state diff the emitter writes at a fragment
// entry, or an original rule that happens to bind there).
func (c *checker) checkSplitState(fdeOf map[*fragment]*cfi.FDE) {
	for _, frags := range c.byFunc {
		if len(frags) < 2 {
			continue
		}
		for _, src := range frags {
			sfde := fdeOf[src]
			if sfde == nil || src.broken || !src.reemitted {
				continue
			}
			for i := range src.insts {
				in := &src.insts[i].inst
				if !in.IsDirectBranch() {
					continue
				}
				dst := c.at(in.TargetAddr)
				if dst == nil || dst == src || dst.fn != src.fn || dst.broken {
					continue
				}
				dfde := fdeOf[dst]
				if dfde == nil {
					continue // cfi-cover already reported
				}
				srcOff := src.insts[i].off
				dstOff := uint32(in.TargetAddr - dst.addr)
				if hasExplicitRule(dfde, dstOff) {
					continue
				}
				ss, err1 := sfde.Evaluate(srcOff)
				ds, err2 := dfde.Evaluate(dstOff)
				if err1 != nil || err2 != nil {
					continue // cfi-decode already reported
				}
				if ss.CfaReg != ds.CfaReg || ss.CfaOff != ds.CfaOff {
					c.errorf("cfi-split", src.name, src.addr+uint64(srcOff),
						"split edge %#x -> %#x changes CFA (r%d%+d -> r%d%+d) with no CFI rule at the target",
						src.addr+uint64(srcOff), in.TargetAddr,
						ss.CfaReg, ss.CfaOff, ds.CfaReg, ds.CfaOff)
				}
			}
		}
	}
}

// hasExplicitRule reports whether the FDE binds any CFI instruction at
// exactly off.
func hasExplicitRule(fde *cfi.FDE, off uint32) bool {
	for _, pi := range fde.Insts {
		if pi.PC == off {
			return true
		}
	}
	return false
}

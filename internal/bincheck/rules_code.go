package bincheck

import (
	"encoding/binary"

	"gobolt/internal/isa"
)

// checkCode runs the instruction-level rules over every fragment:
// direct control transfers must land on instruction boundaries of known
// fragments, and every jump-table entry must resolve into the owning
// function's fragments.
func (c *checker) checkCode() {
	for _, fr := range c.frags {
		if fr.broken {
			continue
		}
		for i := range fr.insts {
			ia := &fr.insts[i]
			in := &ia.inst
			switch {
			case in.IsDirectBranch() || in.Op == isa.CALL:
				addr := fr.addr + uint64(ia.off)
				if tf, ok := c.validTarget(in.TargetAddr); !ok {
					where := "outside every known fragment"
					if tf != nil {
						where = "inside " + tf.name + " but off the instruction stream"
					}
					c.errorf("branch-target", fr.name, addr,
						"%s at %#x targets %#x, %s", in.Mnemonic(), addr, in.TargetAddr, where)
				}
			case in.IsIndirectBranch():
				c.checkIndirectJump(fr, i)
			}
		}
	}
}

// jumpTable is a bounded jump table re-derived from the instruction
// stream: its address, entry width, and count.
type jumpTable struct {
	addr      uint64
	entrySize uint64
	n         uint64
	pic       bool
}

// target decodes entry e of the table from its raw bytes.
func (jt *jumpTable) target(data []byte, e uint64) uint64 {
	if jt.pic {
		v := binary.LittleEndian.Uint32(data[e*4:])
		return jt.addr + uint64(int64(int32(v)))
	}
	return binary.LittleEndian.Uint64(data[e*8:])
}

// deriveTable re-derives the jump table feeding the indirect jump at
// fr.insts[idx], mirroring the loader's two lowering patterns (absolute
// and PIC, §3.2). The derivation is independent: it reads only the
// re-disassembled stream and the symbol table of the serialized output.
// When no bounded table matches, why says what broke the pattern.
func (c *checker) deriveTable(fr *fragment, idx int) (jt jumpTable, why string, ok bool) {
	in := &fr.insts[idx].inst

	findLea := func(reg isa.Reg, from int) (uint64, bool) {
		for k := from; k >= 0 && k > from-8; k-- {
			r := &fr.insts[k].inst
			if r.Op == isa.LEA && r.R1 == reg && r.M.RIP {
				return fr.addr + uint64(fr.insts[k].off) + uint64(fr.insts[k].size) + uint64(int64(r.M.Disp)), true
			}
			if r.Defs().Has(reg) {
				return 0, false
			}
		}
		return 0, false
	}

	switch in.Op {
	case isa.JMPm:
		if in.M.Base == isa.NoReg || in.M.Scale != 8 {
			return jt, "unrecognized memory-jump form", false
		}
		t, ok := findLea(in.M.Base, idx-1)
		if !ok {
			return jt, "no table-base lea in reach", false
		}
		jt.addr = t
	case isa.JMPr:
		if idx < 2 {
			return jt, "indirect jump with no context", false
		}
		add := &fr.insts[idx-1].inst
		mov := &fr.insts[idx-2].inst
		if add.Op != isa.ADDrr || add.R1 != in.R1 ||
			mov.Op != isa.MOVSXDrm || mov.R1 != in.R1 ||
			mov.M.Base != add.R2 || mov.M.Scale != 4 {
			return jt, "not a PIC jump-table pattern", false
		}
		t, ok := findLea(add.R2, idx-3)
		if !ok {
			return jt, "no PIC table-base lea in reach", false
		}
		jt.addr = t
		jt.pic = true
	default:
		return jt, "", false
	}

	sym, ok := c.objSyms[jt.addr]
	if !ok || sym.Size == 0 {
		return jt, "no data symbol bounds the table", false
	}
	jt.entrySize = 8
	if jt.pic {
		jt.entrySize = 4
	}
	jt.n = sym.Size / jt.entrySize
	if jt.n == 0 || jt.n > 4096 {
		return jt, "implausible table size", false
	}
	return jt, "", true
}

// checkIndirectJump validates every entry of the jump table feeding an
// indirect jump (see deriveTable).
func (c *checker) checkIndirectJump(fr *fragment, idx int) {
	addr := fr.addr + uint64(fr.insts[idx].off)

	jt, why, ok := c.deriveTable(fr, idx)
	if !ok {
		// unbounded: in code the rewriter emitted itself, every indirect
		// jump must be a recognizable bounded jump table — anything else
		// was non-simple and should never have moved.
		if fr.reemitted && why != "" {
			c.warnf("jt-unbounded", fr.name, addr, "indirect jump at %#x: %s", addr, why)
		}
		return
	}
	sym := c.objSyms[jt.addr]
	tableAddr, entrySize, n := jt.addr, jt.entrySize, jt.n
	data, err := c.f.ReadAt(tableAddr, int(n*entrySize))
	if err != nil {
		c.errorf("jt-target", fr.name, addr,
			"jump table %s at %#x is unreadable: %v", sym.Name, tableAddr, err)
		return
	}
	for e := uint64(0); e < n; e++ {
		target := jt.target(data, e)
		tf, ok := c.validTarget(target)
		if !ok {
			c.errorf("jt-target", fr.name, tableAddr+e*entrySize,
				"jump table %s entry %d targets %#x, not an instruction boundary", sym.Name, e, target)
			continue
		}
		if tf.fn != fr.fn {
			c.errorf("jt-target", fr.name, tableAddr+e*entrySize,
				"jump table %s entry %d escapes to %s at %#x", sym.Name, e, tf.name, target)
		}
	}
}

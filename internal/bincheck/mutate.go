package bincheck

import (
	"encoding/binary"
	"fmt"
	"sort"

	"gobolt/internal/bat"
	"gobolt/internal/cfi"
	"gobolt/internal/elfx"
	"gobolt/internal/isa"
)

// Mutation is one targeted single-site corruption of a serialized
// BOLTed binary, paired with the rule that must catch it. The mutation
// harness (bench's verify experiment and TestVerifierCatchesCorruption)
// applies each to a fresh parse of a known-clean output and asserts the
// checker reports the expected rule — a soundness test for the whole
// rule suite: a verifier that stops looking is caught here, not in
// production.
type Mutation struct {
	// Name identifies the corruption site (what byte lies).
	Name string
	// Rule is the finding the checker must produce.
	Rule string
	// Apply corrupts the parsed image in place. It fails only when the
	// image has no applicable site (e.g. no jump tables to corrupt).
	Apply func(f *elfx.File) error
}

// Mutations returns the corruption matrix: every verification category
// (branch targets, jump tables, CFI, LSDA, BAT, symbols) is represented
// by at least one targeted single-site mutation.
func Mutations() []Mutation {
	return []Mutation{
		{"branch-displacement", "branch-target", mutateControlDisp(false)},
		{"call-displacement", "branch-target", mutateControlDisp(true)},
		{"jump-table-slot", "jt-target", mutateJumpTableSlot},
		{"fde-length", "cfi-bounds", mutateFDELength},
		{"cfi-inst-pc", "cfi-decode", mutateCFIInstPC},
		{"lsda-landing-pad", "lsda-pad", mutateLandingPad},
		{"bat-delta", "bat-translate", mutateBATDelta},
		{"bat-anchor-order", "bat-monotone", mutateBATAnchor},
		{"symbol-size", "sym-overlap", mutateSymbolSize},
		{"entry-point", "sym-entry", mutateEntry},
	}
}

// rediscover rebuilds the fragment model over a parsed image so
// mutations can pick precise sites the same way the checker will look
// at them.
func rediscover(f *elfx.File) *checker {
	c := &checker{f: f, res: &Result{}}
	c.discover()
	return c
}

// mutateControlDisp bumps the high displacement byte of a rel32 direct
// branch (or call) in a re-emitted fragment, shifting its target 16MiB
// away — off every instruction boundary the binary has.
func mutateControlDisp(call bool) func(f *elfx.File) error {
	return func(f *elfx.File) error {
		c := rediscover(f)
		for _, fr := range c.frags {
			if !fr.reemitted || fr.broken {
				continue
			}
			for _, ia := range fr.insts {
				in := &ia.inst
				if call && in.Op != isa.CALL {
					continue
				}
				if !call && !in.IsDirectBranch() {
					continue
				}
				if ia.size < 5 {
					continue // rel8 form; one byte cannot escape far enough
				}
				fr.code[ia.off+ia.size-1]++ // fr.code aliases the section data
				return nil
			}
		}
		return fmt.Errorf("no rel32 direct %s found", map[bool]string{true: "call", false: "branch"}[call])
	}
}

// mutateJumpTableSlot redirects the first entry of a bounded jump table
// at another function's entry point: a valid instruction boundary, but
// an escape from the owning function's block set.
func mutateJumpTableSlot(f *elfx.File) error {
	c := rediscover(f)
	for _, fr := range c.frags {
		if fr.broken {
			continue
		}
		for i := range fr.insts {
			if !fr.insts[i].inst.IsIndirectBranch() {
				continue
			}
			jt, _, ok := c.deriveTable(fr, i)
			if !ok {
				continue
			}
			var other *fragment
			for _, cand := range c.frags {
				if cand.fn != fr.fn && !cand.broken && cand.reemitted {
					other = cand
					break
				}
			}
			if other == nil {
				continue
			}
			sec := f.SectionFor(jt.addr)
			if sec == nil {
				continue
			}
			slot := sec.Data[jt.addr-sec.Addr:]
			if jt.pic {
				binary.LittleEndian.PutUint32(slot, uint32(int32(int64(other.addr)-int64(jt.addr))))
			} else {
				binary.LittleEndian.PutUint64(slot, other.addr)
			}
			return nil
		}
	}
	return fmt.Errorf("no bounded jump table found")
}

// withFrames decodes, edits, and re-encodes the frame section.
func withFrames(f *elfx.File, edit func(fdes []cfi.FDE) error) error {
	sec := f.Section(cfi.FrameSectionName)
	if sec == nil {
		return fmt.Errorf("no %s section", cfi.FrameSectionName)
	}
	fdes, err := cfi.DecodeFrames(sec.Data)
	if err != nil {
		return err
	}
	if err := edit(fdes); err != nil {
		return err
	}
	sec.Data = cfi.EncodeFrames(fdes)
	return nil
}

// mutateFDELength grows one FDE's length field past its fragment.
func mutateFDELength(f *elfx.File) error {
	return withFrames(f, func(fdes []cfi.FDE) error {
		if len(fdes) == 0 {
			return fmt.Errorf("no FDEs")
		}
		fdes[0].Len += 8
		return nil
	})
}

// mutateCFIInstPC rebinds one unwind rule far beyond its FDE.
func mutateCFIInstPC(f *elfx.File) error {
	return withFrames(f, func(fdes []cfi.FDE) error {
		for i := range fdes {
			if n := len(fdes[i].Insts); n > 0 {
				fdes[i].Insts[n-1].PC = 0xFFFFFFF0
				return nil
			}
		}
		return fmt.Errorf("no FDE carries CFI instructions")
	})
}

// mutateLandingPad points one call site's landing pad at address 1 —
// no instruction boundary anywhere. The patch edits the serialized
// LSDA bytes directly (u32 count, then 20-byte call-site records with
// the landing pad at record offset 8).
func mutateLandingPad(f *elfx.File) error {
	sec := f.Section(cfi.FrameSectionName)
	lsdaSec := f.Section(cfi.LSDASectionName)
	if sec == nil || lsdaSec == nil {
		return fmt.Errorf("no exception sections")
	}
	fdes, err := cfi.DecodeFrames(sec.Data)
	if err != nil {
		return err
	}
	for i := range fdes {
		if fdes[i].LSDA == 0 || fdes[i].LSDA < lsdaSec.Addr {
			continue
		}
		off := fdes[i].LSDA - lsdaSec.Addr
		l, err := cfi.DecodeLSDA(lsdaSec.Data, uint32(off))
		if err != nil {
			continue
		}
		for cs := range l.CallSites {
			if l.CallSites[cs].LandingPad == 0 {
				continue
			}
			pad := off + 4 + uint64(cs)*20 + 8
			binary.LittleEndian.PutUint64(lsdaSec.Data[pad:], 1)
			return nil
		}
	}
	return fmt.Errorf("no landing pad found")
}

// withBAT decodes, edits, and re-encodes the address-translation table.
func withBAT(f *elfx.File, edit func(t *bat.Table) error) error {
	sec := f.Section(bat.SectionName)
	if sec == nil {
		return fmt.Errorf("no %s section", bat.SectionName)
	}
	t, err := bat.Parse(sec.Data)
	if err != nil {
		return err
	}
	if err := edit(t); err != nil {
		return err
	}
	sec.Data = t.Encode()
	return nil
}

// mutateBATDelta pushes one anchor's input offset past the original
// function body — a translated sample would attribute to a neighbor.
func mutateBATDelta(f *elfx.File) error {
	return withBAT(f, func(t *bat.Table) error {
		for i := range t.Ranges {
			r := &t.Ranges[i]
			if len(r.Entries) == 0 {
				continue
			}
			r.Entries[0].InOff = uint32(t.Funcs[r.FuncIdx].InSize) + 1000
			return nil
		}
		return fmt.Errorf("no BAT anchors")
	})
}

// mutateBATAnchor breaks anchor ordering: the last anchor of a range
// repeats the first's output offset, so binary search over the range is
// no longer well-defined.
func mutateBATAnchor(f *elfx.File) error {
	return withBAT(f, func(t *bat.Table) error {
		for i := range t.Ranges {
			r := &t.Ranges[i]
			if len(r.Entries) < 2 {
				continue
			}
			r.Entries[len(r.Entries)-1].OutOff = r.Entries[0].OutOff
			return nil
		}
		return fmt.Errorf("no BAT range with two anchors")
	})
}

// mutateSymbolSize grows a hot-text function symbol one byte into its
// successor.
func mutateSymbolSize(f *elfx.File) error {
	type fsym struct {
		idx   int
		value uint64
	}
	var syms []fsym
	for i, sym := range f.Symbols {
		if sym.Type == elfx.STTFunc && sym.Size > 0 && sym.Section == ".text" {
			syms = append(syms, fsym{i, sym.Value})
		}
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i].value < syms[j].value })
	for i := 0; i+1 < len(syms); i++ {
		if syms[i+1].value > syms[i].value {
			f.Symbols[syms[i].idx].Size = syms[i+1].value - syms[i].value + 1
			return nil
		}
	}
	return fmt.Errorf("fewer than two .text function symbols")
}

// mutateEntry points the ELF entry at unmapped address 1.
func mutateEntry(f *elfx.File) error {
	f.Entry = 1
	return nil
}

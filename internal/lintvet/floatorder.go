package lintvet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatOrder flags floating-point accumulation into variables shared
// across a par.For/par.ForTraced worker pool. Float addition is not
// associative, so `acc += x` on a captured float64 inside the work
// closure makes the total depend on which worker claimed which item —
// the nondeterministic-reduction class the MCF inference work (PR 5)
// had to design around with index-slotted integer terms. The
// deterministic shapes stay legal:
//
//   - accumulating into a closure-local variable (reduced after the
//     pool joins, in a fixed order);
//   - writing into a slot indexed by the *item* parameter
//     (acc[item] = ... or acc[item] += ...): every item owns its slot,
//     so the result is schedule-independent;
//
// while worker-indexed or plain captured accumulation is flagged.
// Escape hatch: `//boltvet:floatorder-ok <reason>`.
var FloatOrder = &Analyzer{
	Name:      "floatorder",
	Doc:       "no captured float accumulation inside par.For closures",
	Directive: "floatorder-ok",
	Run:       runFloatOrder,
}

func runFloatOrder(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := calleeFunc(p.Info, call)
			if !isPkgFunc(f, "internal/par", "For") && !isPkgFunc(f, "internal/par", "ForTraced") {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
			if !ok {
				return true
			}
			checkWorkClosure(p, lit)
			return true
		})
	}
}

func checkWorkClosure(p *Pass, lit *ast.FuncLit) {
	itemParam := workItemParam(p, lit)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		case token.ASSIGN:
			// x = x + y is the same reduction spelled longhand.
			if len(as.Lhs) != 1 || len(as.Rhs) != 1 || !selfReference(p, as.Lhs[0], as.Rhs[0]) {
				return true
			}
		default:
			return true
		}
		for _, lhs := range as.Lhs {
			t := p.Info.TypeOf(lhs)
			if t == nil || !isFloat(t) {
				continue
			}
			root := rootIdent(lhs)
			if root == nil {
				continue
			}
			obj := p.Info.Uses[root]
			if obj == nil || !capturedBy(obj, lit) {
				continue // closure-local accumulator: joined deterministically later
			}
			if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && indexIsItem(p, ix, itemParam) {
				continue // item-slotted: one writer per slot, schedule-independent
			}
			p.Reportf(as.Pos(), "float accumulation into captured %s inside a par worker: totals depend on the schedule — slot terms by item index and reduce after the join (or //boltvet:floatorder-ok <reason>)", root.Name)
		}
		return true
	})
}

// workItemParam returns the object of the closure's item parameter
// (the second int parameter of the par work signature), or nil.
func workItemParam(p *Pass, lit *ast.FuncLit) types.Object {
	params := lit.Type.Params
	if params == nil {
		return nil
	}
	var idents []*ast.Ident
	for _, field := range params.List {
		idents = append(idents, field.Names...)
	}
	if len(idents) < 2 {
		return nil
	}
	return p.Info.Defs[idents[1]]
}

// capturedBy reports whether obj is declared outside lit — a free
// variable of the closure.
func capturedBy(obj types.Object, lit *ast.FuncLit) bool {
	return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}

// indexIsItem reports whether the index expression is exactly the
// work closure's item parameter.
func indexIsItem(p *Pass, ix *ast.IndexExpr, item types.Object) bool {
	if item == nil {
		return false
	}
	id, ok := ast.Unparen(ix.Index).(*ast.Ident)
	return ok && p.Info.Uses[id] == item
}

// selfReference reports whether rhs mentions the root identifier of
// lhs (x = x + w, including x[i] = x[i] + w).
func selfReference(p *Pass, lhs, rhs ast.Expr) bool {
	root := rootIdent(lhs)
	if root == nil {
		return false
	}
	obj := p.Info.Uses[root]
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

package lintvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SymID enforces the packed emission-symbol encapsulation: the
// bit layout of obj.SymID (kind tag, function ordinal, block index,
// absolute address) is owned by internal/obj, and every other package
// must go through its constructors (FuncSym/BlockSym/AbsSym) and
// accessors (Kind/FuncOrd/BlockRef/AbsAddr). Outside obj, the
// analyzer flags
//
//   - shift or mask expressions with a SymID operand (raw layout
//     construction or inspection), and
//   - conversions between SymID and integer types in either direction
//     (smuggling the bits past the helpers).
//
// The emitter↔rewriter contract depends on the layout being changeable
// in exactly one file; a raw `sym >> 61` elsewhere would compile
// silently and decode garbage the day the kind tag moves. Escape
// hatch: `//boltvet:symid-ok <reason>`.
var SymID = &Analyzer{
	Name:      "symid",
	Doc:       "packed emission-symbol bits only via internal/obj helpers",
	Directive: "symid-ok",
	Run:       runSymID,
}

// isObjPkgPath reports whether path is (or ends with) the obj package,
// which owns the SymID layout. Suffix matching keeps the analyzer
// testable against a testdata stand-in ending in /obj.
func isObjPkgPath(path string) bool {
	return path == "obj" || strings.HasSuffix(path, "/obj")
}

// isSymIDType reports whether t is the named type SymID declared in an
// obj package.
func isSymIDType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := n.Obj()
	return o.Name() == "SymID" && o.Pkg() != nil && isObjPkgPath(o.Pkg().Path())
}

// isIntegerType reports whether t's underlying type is an integer.
func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func runSymID(p *Pass) {
	if p.Pkg != nil && isObjPkgPath(p.Pkg.Path()) {
		return // the layout owner manipulates its own bits freely
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.BinaryExpr:
				switch v.Op {
				case token.SHL, token.SHR, token.AND, token.OR, token.XOR, token.AND_NOT:
				default:
					return true
				}
				if isSymIDType(p.Info.TypeOf(v.X)) || isSymIDType(p.Info.TypeOf(v.Y)) {
					p.Reportf(v.OpPos, "raw %s on obj.SymID; use the obj constructors/accessors (FuncSym, BlockSym, AbsSym, Kind, FuncOrd, BlockRef, AbsAddr)", v.Op)
				}
			case *ast.CallExpr:
				if len(v.Args) != 1 {
					return true
				}
				tv, ok := p.Info.Types[v.Fun]
				if !ok || !tv.IsType() {
					return true
				}
				to, from := tv.Type, p.Info.TypeOf(v.Args[0])
				if from == nil {
					return true
				}
				switch {
				case isSymIDType(to) && !isSymIDType(from) && isIntegerType(from):
					p.Reportf(v.Pos(), "obj.SymID constructed from raw bits; use FuncSym, BlockSym, or AbsSym")
				case isSymIDType(from) && !isSymIDType(to) && isIntegerType(to):
					p.Reportf(v.Pos(), "obj.SymID inspected through a raw integer conversion; use Kind, FuncOrd, BlockRef, or AbsAddr")
				}
			}
			return true
		})
	}
}

package lintvet

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxThread enforces the PR-4 context-plumbing contract: library code
// never mints its own root context, it threads the one it was handed.
// A context.Background()/context.TODO() buried in the engine detaches
// that subtree from cancellation — Ctrl-C keeps burning CPU, the
// service's per-request deadlines stop propagating — and the bug only
// shows up under cancellation tests that happen to race the right
// phase.
//
// Flagged: context.Background() and context.TODO() calls outside
// main-adjacent code (package main, cmd/, examples/, internal/bench,
// and _test files are exempt), except the documented nil-normalization
// idiom `if cx == nil { cx = context.Background() }`. Also flagged:
// handing par.For/par.ForTraced a literal nil or freshly-minted
// context as its first argument instead of a received one.
// Escape hatch: `//boltvet:ctx-ok <reason>`.
var CtxThread = &Analyzer{
	Name:      "ctxthread",
	Doc:       "no context.Background()/TODO() outside main-adjacent code; par.For gets a threaded context",
	Directive: "ctx-ok",
	Run:       runCtxThread,
}

// ctxExemptSuffixes are import-path segments whose packages are
// main-adjacent: they own the process and legitimately mint roots.
var ctxExemptSegments = []string{"/cmd/", "/examples/", "/internal/bench/"}

func runCtxThread(p *Pass) {
	exempt := p.Pkg.Name() == "main"
	for _, seg := range ctxExemptSegments {
		if strings.Contains("/"+p.Path+"/", seg) {
			exempt = true
		}
	}

	for _, file := range p.Files {
		// First pass: fresh roots handed straight to par.For get the
		// par-specific diagnostic; remember them so the general check
		// below does not report the same call twice.
		parArgRoots := map[*ast.CallExpr]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := calleeFunc(p.Info, call)
			if (isPkgFunc(f, "internal/par", "For") || isPkgFunc(f, "internal/par", "ForTraced")) && len(call.Args) > 0 {
				switch arg := ast.Unparen(call.Args[0]).(type) {
				case *ast.Ident:
					if arg.Name == "nil" && p.Info.Uses[arg] == types.Universe.Lookup("nil") {
						p.Reportf(arg.Pos(), "par.%s called with a nil context: pass the context this function received so cancellation reaches the pool (or //boltvet:ctx-ok <reason>)", f.Name())
					}
				case *ast.CallExpr:
					if inner := calleeFunc(p.Info, arg); isCtxRoot(inner) && !exempt {
						parArgRoots[arg] = true
						p.Reportf(arg.Pos(), "par.%s called with a fresh context.%s(): pass the context this function received (or //boltvet:ctx-ok <reason>)", f.Name(), inner.Name())
					}
				}
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || parArgRoots[call] {
				return true
			}
			f := calleeFunc(p.Info, call)
			if !exempt && isCtxRoot(f) && !isNilNormalization(file, call) {
				p.Reportf(call.Pos(), "context.%s() in library code detaches this path from cancellation — thread the caller's context (or //boltvet:ctx-ok <reason>)", f.Name())
			}
			return true
		})
	}
}

// isCtxRoot reports whether f is context.Background or context.TODO.
func isCtxRoot(f *types.Func) bool {
	return isPkgFunc(f, "context", "Background") || isPkgFunc(f, "context", "TODO")
}

// isNilNormalization recognizes the one sanctioned Background() in
// library code — the nil-context compatibility fallback:
//
//	if cx == nil {
//	    cx = context.Background()
//	}
//
// The call must be the sole statement's RHS and the enclosing if must
// test that same variable against nil.
func isNilNormalization(file *ast.File, call *ast.CallExpr) bool {
	var found bool
	ast.Inspect(file, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok || found {
			return !found
		}
		bin, ok := ifStmt.Cond.(*ast.BinaryExpr)
		if !ok || bin.Op.String() != "==" {
			return true
		}
		condVar := nilComparedIdent(bin)
		if condVar == "" || len(ifStmt.Body.List) != 1 {
			return true
		}
		as, ok := ifStmt.Body.List[0].(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok || lhs.Name != condVar {
			return true
		}
		if rhs, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && rhs == call {
			found = true
			return false
		}
		return true
	})
	return found
}

// nilComparedIdent returns the identifier compared against nil in a
// binary ==, or "".
func nilComparedIdent(bin *ast.BinaryExpr) string {
	if x, ok := bin.X.(*ast.Ident); ok {
		if y, ok := bin.Y.(*ast.Ident); ok && y.Name == "nil" {
			return x.Name
		}
	}
	if y, ok := bin.Y.(*ast.Ident); ok {
		if x, ok := bin.X.(*ast.Ident); ok && x.Name == "nil" {
			return y.Name
		}
	}
	return ""
}

package lintvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// MapIter flags `for range` over a map inside any function reachable
// from output-producing code. Go randomizes map iteration order, so a
// map range on a path that serializes bytes — the emitter, BAT/fdata
// writers, report and trace renderers — is exactly the bug class that
// breaks the byte-identical-across-jobs guarantee, and only
// probabilistically: a runtime test must get unlucky to catch it,
// while this check fails on the diff.
//
// Output-producing roots are detected structurally: a function is a
// root if it receives an io.Writer-shaped destination (io.Writer,
// *bytes.Buffer, *strings.Builder) or its name matches the writer
// naming convention (Write*/Print*/Emit*/Serialize*/Marshal*/
// Render*/Report*/Fprint*/Dump*, or String()). Reachability is the
// static call graph within the package (calls resolved through
// go/types; calls through function values are approximated by
// treating referenced functions as callees).
//
// Two shapes are recognized as deterministic and exempted:
//
//   - collect-then-sort: a range body that only appends keys/values
//     to local slices which are later passed to a sort call in the
//     same function;
//   - map-to-map transfer: a body that only writes map indexes or
//     deletes map keys (order-independent by construction).
//
// Anything else needs `//boltvet:sorted-ok <reason>`.
var MapIter = &Analyzer{
	Name:      "mapiter",
	Doc:       "map iteration in output-reachable code must sort keys first",
	Directive: "sorted-ok",
	Run:       runMapIter,
}

var outputNameRE = regexp.MustCompile(`(?i)^(write|print|emit|serialize|marshal|render|report|fprint|dump)|(?i)(rewrite|tostring|dynostats)|^String$`)

func runMapIter(p *Pass) {
	decls := funcDecls(p.Files)

	// Build the package call graph: declared function -> declared
	// functions it references (calls and bare references both count,
	// so funcs passed as values stay reachable).
	byObj := make(map[*types.Func]*ast.FuncDecl, len(decls))
	for _, fd := range decls {
		if o := declObj(p.Info, fd); o != nil {
			byObj[o] = fd
		}
	}
	calls := make(map[*ast.FuncDecl][]*ast.FuncDecl, len(decls))
	for _, fd := range decls {
		seen := map[*ast.FuncDecl]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if f, ok := p.Info.Uses[id].(*types.Func); ok {
				if callee := byObj[f]; callee != nil && !seen[callee] {
					seen[callee] = true
					calls[fd] = append(calls[fd], callee)
				}
			}
			return true
		})
	}

	// Roots: writer-shaped signature or writer-convention name.
	reachable := map[*ast.FuncDecl]bool{}
	var frontier []*ast.FuncDecl
	for _, fd := range decls {
		o := declObj(p.Info, fd)
		if o == nil {
			continue
		}
		sig := o.Type().(*types.Signature)
		if outputNameRE.MatchString(fd.Name.Name) || hasWriterParam(sig) {
			reachable[fd] = true
			frontier = append(frontier, fd)
		}
	}
	for len(frontier) > 0 {
		fd := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, callee := range calls[fd] {
			if !reachable[callee] {
				reachable[callee] = true
				frontier = append(frontier, callee)
			}
		}
	}

	for _, fd := range decls {
		if !reachable[fd] {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || !isMapType(p.Info, rng.X) {
				return true
			}
			if mapTransferLoop(p.Info, rng) {
				return true
			}
			if collected := collectLoop(p.Info, rng); collected != nil && sortedLater(p.Info, fd.Body, rng, collected) {
				return true
			}
			p.Reportf(rng.Pos(), "iterating a map in output-reachable %s: order is randomized — sort the keys first (or //boltvet:sorted-ok <reason>)", fd.Name.Name)
			return true
		})
	}
}

// mapTransferLoop reports whether every statement in the range body
// is an order-independent map write: m2[k] = v assignments, delete()
// calls, or map-keyed compound assignment (m2[k] += v commutes for
// the additive stat-merge shapes).
func mapTransferLoop(info *types.Info, rng *ast.RangeStmt) bool {
	if len(rng.Body.List) == 0 {
		return false
	}
	for _, st := range rng.Body.List {
		switch s := st.(type) {
		case *ast.AssignStmt:
			ok := len(s.Lhs) == 1
			if ok {
				ix, isIx := s.Lhs[0].(*ast.IndexExpr)
				ok = isIx && isMapType(info, ix.X)
			}
			if !ok {
				return false
			}
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok {
				return false
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "delete" {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// collectLoop recognizes a pure collection body — appends to local
// slices, optionally guarded by ifs or skipped with continue — and
// returns the objects collected into. Any other effect disqualifies
// the loop: collection order never matters when the only output is a
// slice that sortedLater proves gets sorted.
func collectLoop(info *types.Info, rng *ast.RangeStmt) []types.Object {
	var out []types.Object
	var allowed func(st ast.Stmt) bool
	allowed = func(st ast.Stmt) bool {
		switch s := st.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			lhs, ok := s.Lhs[0].(*ast.Ident)
			if !ok {
				return false
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok {
				return false
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
				return false
			}
			if o := info.Uses[lhs]; o != nil {
				out = append(out, o)
			} else if o := info.Defs[lhs]; o != nil {
				out = append(out, o)
			}
			return true
		case *ast.IfStmt:
			for _, b := range s.Body.List {
				if !allowed(b) {
					return false
				}
			}
			if s.Else != nil {
				if blk, ok := s.Else.(*ast.BlockStmt); ok {
					for _, b := range blk.List {
						if !allowed(b) {
							return false
						}
					}
				} else {
					return allowed(s.Else)
				}
			}
			return true
		case *ast.BranchStmt:
			return s.Tok == token.CONTINUE
		}
		return false
	}
	if len(rng.Body.List) == 0 {
		return nil
	}
	for _, st := range rng.Body.List {
		if !allowed(st) {
			return nil
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// sortedLater reports whether, after the range statement, every
// collected slice is handed to a sorting call (sort.*, slices.Sort*,
// or any function whose name contains "sort") within the same body.
func sortedLater(info *types.Info, body *ast.BlockStmt, rng *ast.RangeStmt, collected []types.Object) bool {
	sorted := make(map[types.Object]bool, len(collected))
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		name := ""
		switch fn := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fn.Name
		case *ast.SelectorExpr:
			name = fn.Sel.Name
			if x, ok := fn.X.(*ast.Ident); ok {
				name = x.Name + "." + name
			}
		}
		if !strings.Contains(strings.ToLower(name), "sort") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok {
					for _, o := range collected {
						if info.Uses[id] == o {
							sorted[o] = true
						}
					}
				}
				return true
			})
		}
		return true
	})
	for _, o := range collected {
		if !sorted[o] {
			return false
		}
	}
	return true
}

package lintvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// wantRE matches the expectation comment grammar used in testdata
// packages: `// want "regexp"` on the line a diagnostic is expected.
var wantRE = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// expectation is one `// want` comment.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// CheckPackage loads the packages at relDirs (relative to moduleDir;
// `...` patterns skip testdata, so each package dir is named
// explicitly), runs the given analyzers, and compares the diagnostics
// against the packages' `// want "re"` comments — the analysistest
// contract: every want must be matched by a same-line diagnostic and
// every diagnostic must be covered by a want. Returned strings are
// the failures, empty for a verified package.
func CheckPackage(moduleDir string, analyzers []*Analyzer, relDirs ...string) ([]string, error) {
	patterns := make([]string, 0, len(relDirs))
	for _, d := range relDirs {
		patterns = append(patterns, "./"+strings.TrimPrefix(d, "./"))
	}
	pkgs, err := Load(moduleDir, patterns)
	if err != nil {
		return nil, err
	}
	diags := RunPackages(pkgs, analyzers)

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			wants = append(wants, fileWants(pkg.Fset, f)...)
		}
	}

	var problems []string
	for _, d := range diags {
		covered := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				covered = true
			}
		}
		if !covered {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, w := range wants {
		if !w.matched {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.pattern))
		}
	}
	return problems, nil
}

// fileWants extracts the expectations from one file's comments.
func fileWants(fset *token.FileSet, f *ast.File) []*expectation {
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
				pat, err := regexp.Compile(m[1])
				if err != nil {
					// Surface the bad pattern as an unmatchable want.
					pat = regexp.MustCompile(regexp.QuoteMeta("invalid want regexp: " + m[1]))
				}
				pos := fset.Position(c.Pos())
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: pat})
			}
		}
	}
	return out
}

package lintvet

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// checkTestdata runs analyzers over testdata packages and reports any
// mismatch against their `// want` annotations.
func checkTestdata(t *testing.T, analyzers []*Analyzer, dirs ...string) {
	t.Helper()
	root := testModuleRoot(t)
	problems, err := CheckPackage(root, analyzers, dirs...)
	if err != nil {
		t.Fatalf("loading %v: %v", dirs, err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

func testModuleRoot(t *testing.T) string {
	t.Helper()
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestMapIter(t *testing.T) {
	checkTestdata(t, []*Analyzer{MapIter}, "internal/lintvet/testdata/src/mapiter")
}

func TestHotAlloc(t *testing.T) {
	checkTestdata(t, []*Analyzer{HotAlloc}, "internal/lintvet/testdata/src/hotalloc")
}

func TestStatKey(t *testing.T) {
	// Two packages: defs declares (its StatDefs is harvested first —
	// dependency order), statkey records against the harvested set.
	checkTestdata(t, []*Analyzer{StatKey},
		"internal/lintvet/testdata/src/statkey/defs",
		"internal/lintvet/testdata/src/statkey")
}

func TestSymID(t *testing.T) {
	// Two packages: the /obj stand-in owns the layout (its raw bit
	// manipulation is legal), symid consumes it and violates.
	checkTestdata(t, []*Analyzer{SymID},
		"internal/lintvet/testdata/src/symid/obj",
		"internal/lintvet/testdata/src/symid")
}

func TestCtxThread(t *testing.T) {
	checkTestdata(t, []*Analyzer{CtxThread}, "internal/lintvet/testdata/src/ctxthread")
}

func TestFloatOrder(t *testing.T) {
	checkTestdata(t, []*Analyzer{FloatOrder}, "internal/lintvet/testdata/src/floatorder")
}

func TestDirectiveGrammar(t *testing.T) {
	// The full suite runs so every directive name is known; the
	// package exercises reasonless, unknown, and stale directives.
	checkTestdata(t, All(), "internal/lintvet/testdata/src/directive")
}

// TestAnalyzerRegistry pins the suite: cmd/boltvet registers exactly
// this documented set, every analyzer is self-describing, and the
// README's "Static analysis" section names each one with its
// directive.
func TestAnalyzerRegistry(t *testing.T) {
	want := []string{"mapiter", "hotalloc", "statkey", "ctxthread", "floatorder", "symid"}
	all := All()
	var got []string
	for _, a := range all {
		got = append(got, a.Name)
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("All() = %v, want %v", got, want)
	}

	directives := map[string]string{}
	for _, a := range all {
		if a.Doc == "" {
			t.Errorf("%s: empty Doc", a.Name)
		}
		if a.Directive == "" {
			t.Errorf("%s: empty Directive", a.Name)
		}
		if prev, dup := directives[a.Directive]; dup {
			t.Errorf("%s and %s share directive %q", prev, a.Name, a.Directive)
		}
		directives[a.Directive] = a.Name
	}

	readme, err := os.ReadFile(filepath.Join(testModuleRoot(t), "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range all {
		if !strings.Contains(string(readme), "`"+a.Name+"`") {
			t.Errorf("README.md does not document analyzer `%s`", a.Name)
		}
		if !strings.Contains(string(readme), "boltvet:"+a.Directive) {
			t.Errorf("README.md does not document directive boltvet:%s", a.Directive)
		}
	}
}

// TestTreeClean is the self-application gate: the full suite over the
// full module must report nothing, which is also what CI's
// `go run ./cmd/boltvet ./...` step asserts.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	diags, err := Run(testModuleRoot(t), []string{"./..."}, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestProbeDetection feeds the loader a deliberately-broken copy of
// an emit-shaped function — an unsorted map range on a writer path —
// and asserts the suite catches it. This is the end-to-end proof that
// a regression in a real emit file would fail CI, without breaking a
// real file to find out.
func TestProbeDetection(t *testing.T) {
	dir := t.TempDir()
	src := `package probe

import (
	"fmt"
	"io"
)

func WriteStats(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s %d\n", k, v)
	}
}
`
	if err := os.WriteFile(filepath.Join(dir, "probe.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module probe\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	diags, err := Run(dir, []string{"./..."}, All())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range diags {
		if d.Analyzer == "mapiter" && strings.Contains(d.Message, "WriteStats") {
			found = true
		}
	}
	if !found {
		t.Fatalf("probe not detected; diagnostics: %v", diags)
	}
}

// directiveRE matches a directive comment at the start of a line —
// prose mentions of the grammar inside doc comments (indented or
// backticked mid-comment) stay out of the audit.
// TestToolVersionsPinned keeps the CI workflow's third-party analyzer
// installs in lockstep with the pinned versions in toolversions.go,
// and rejects floating pins.
func TestToolVersionsPinned(t *testing.T) {
	ci, err := os.ReadFile(filepath.Join(testModuleRoot(t), ".github", "workflows", "ci.yml"))
	if err != nil {
		t.Fatal(err)
	}
	for tool, version := range map[string]string{
		"honnef.co/go/tools/cmd/staticcheck": StaticcheckVersion,
		"golang.org/x/vuln/cmd/govulncheck":  GovulncheckVersion,
	} {
		if !strings.Contains(string(ci), tool+"@"+version) {
			t.Errorf("ci.yml does not install %s@%s (update ci.yml or toolversions.go)", tool, version)
		}
	}
	if strings.Contains(string(ci), "@latest") {
		t.Error("ci.yml installs a tool @latest: pin it in toolversions.go and ci.yml")
	}
}

var directiveRE = regexp.MustCompile(`(?m)^[ \t]*//boltvet:([A-Za-z0-9-]+)`)

// TestSuppressionAudit walks the tree for //boltvet: directives
// (testdata excluded — seeded violations live there) and compares the
// population against suppressions.txt. Growing the exemption list
// without updating the committed allowlist fails the build.
func TestSuppressionAudit(t *testing.T) {
	root := testModuleRoot(t)

	var got []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range directiveRE.FindAllStringSubmatch(string(data), -1) {
			got = append(got, fmt.Sprintf("%s:%s", filepath.ToSlash(rel), m[1]))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)

	var want []string
	f, err := os.Open(filepath.Join(root, "internal", "lintvet", "suppressions.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		want = append(want, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	sort.Strings(want)

	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("tree directives and internal/lintvet/suppressions.txt disagree\ntree:\n  %s\nallowlist:\n  %s\nupdate suppressions.txt alongside the directive change",
			strings.Join(got, "\n  "), strings.Join(want, "\n  "))
	}
}

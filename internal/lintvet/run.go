package lintvet

import (
	"fmt"
	"go/ast"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// All returns the full boltvet analyzer suite in reporting order.
// cmd/boltvet registers exactly this set; TestAnalyzerRegistry pins
// the names against the README's documented list.
func All() []*Analyzer {
	return []*Analyzer{
		MapIter,
		HotAlloc,
		StatKey,
		CtxThread,
		FloatOrder,
		SymID,
	}
}

// Run loads patterns from moduleDir and applies every analyzer,
// returning the surviving diagnostics sorted by position. Packages
// are visited in dependency order so facts (like the declared
// stat-key set) flow from core to its importers; per-file directive
// state is shared across analyzers so suppression bookkeeping —
// including the stale-directive check — sees the whole run.
func Run(moduleDir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := Load(moduleDir, patterns)
	if err != nil {
		return nil, err
	}
	return RunPackages(pkgs, analyzers), nil
}

// RunPackages applies analyzers to already-loaded packages (the
// analysistest harness path).
func RunPackages(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := map[string]bool{HotPathDirective: true}
	for _, a := range analyzers {
		if a.Directive != "" {
			known[a.Directive] = true
		}
	}

	facts := &Facts{m: make(map[string]any)}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		dirs := make(map[*ast.File]*fileDirectives, len(pkg.Files))
		for _, f := range pkg.Files {
			dirs[f] = indexDirectives(parseDirectives(pkg.Fset, f))
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Path:     pkg.ImportPath,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				Facts:    facts,
			}
			pass.report = func(d Diagnostic) {
				if fd := dirs[fileOf(pkg, d)]; fd.suppresses(a.Directive, d.Pos.Line) {
					return
				}
				diags = append(diags, d)
			}
			a.Run(pass)
		}
		for _, f := range pkg.Files {
			checkDirectives(pkg.Fset, dirs[f], known, func(d Diagnostic) { diags = append(diags, d) })
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// fileOf finds the *ast.File a diagnostic was reported in.
func fileOf(pkg *Package, d Diagnostic) *ast.File {
	for _, f := range pkg.Files {
		if pkg.Fset.Position(f.Pos()).Filename == d.Pos.Filename {
			return f
		}
	}
	return nil
}

// Main is the cmd/boltvet entry point: it runs the full suite on the
// given patterns (default ./...) from the nearest module root and
// prints diagnostics go-vet style. The exit code is 0 for a clean
// tree, 1 when diagnostics were reported, 2 on loader failure.
func Main(out, errOut io.Writer, args []string) int {
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 2
	}
	diags, err := Run(root, args, All())
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 2
	}
	for _, d := range diags {
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
			d.Pos.Filename = rel
		}
		fmt.Fprintln(out, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(errOut, "boltvet: %d diagnostic(s)\n", len(diags))
		return 1
	}
	return 0
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod, so boltvet can be invoked from any subdirectory like go vet.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("boltvet: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

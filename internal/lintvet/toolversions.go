package lintvet

// Pinned versions of the third-party analyzers CI runs alongside the
// in-tree suite. They are deliberately not module dependencies — the
// pipeline builds offline from the standard library alone — so CI
// installs them by exact version, and TestToolVersionsPinned keeps
// the workflow file and these constants in lockstep: bumping a tool
// is a one-line reviewed change in both places, never a drive-by
// `@latest`.
const (
	// StaticcheckVersion pins honnef.co/go/tools/cmd/staticcheck.
	StaticcheckVersion = "2025.1"
	// GovulncheckVersion pins golang.org/x/vuln/cmd/govulncheck.
	GovulncheckVersion = "v1.1.4"
)

package lintvet

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// calleeFunc resolves a call expression to the *types.Func it invokes
// statically (plain calls, method calls, imported functions). Calls
// through function-typed variables or interface values return nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// isPkgFunc reports whether f is the named function (or method) in a
// package whose import path ends with pathSuffix. Matching by suffix
// keeps the analyzers testable: testdata packages live under
// gobolt/internal/lintvet/testdata/... but can still stand in for
// "internal/par" by ending with /par.
func isPkgFunc(f *types.Func, pathSuffix, name string) bool {
	if f == nil || f.Name() != name || f.Pkg() == nil {
		return false
	}
	p := f.Pkg().Path()
	return p == pathSuffix || strings.HasSuffix(p, "/"+pathSuffix)
}

// constString returns the compile-time string value of e, if any.
// Both plain literals and named constants (core.MetricFlowAccuracy)
// resolve, because go/types folds them.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// isMapType reports whether e's type is (or aliases) a map.
func isMapType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isFloat reports whether t's underlying type is float32 or float64.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isString reports whether t's underlying type is a string.
func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// rootIdent peels selectors, indexes, stars, and parens off an
// expression and returns the identifier at its base (x for
// x.f[i].g), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// funcDecls yields every function and method declaration in the pass.
func funcDecls(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// declObj returns the types.Func object for a declaration.
func declObj(info *types.Info, fd *ast.FuncDecl) *types.Func {
	f, _ := info.Defs[fd.Name].(*types.Func)
	return f
}

// hasWriterParam reports whether the function signature receives an
// io.Writer-shaped destination (io.Writer itself, any interface with
// a Write([]byte) method, *bytes.Buffer, or *strings.Builder) — the
// cheap structural signal that the function produces output.
func hasWriterParam(sig *types.Signature) bool {
	check := func(t types.Type) bool {
		if t == nil {
			return false
		}
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		switch tn := t.(type) {
		case *types.Named:
			n := tn.Obj().Name()
			pkg := tn.Obj().Pkg()
			if pkg != nil && (pkg.Path() == "bytes" && n == "Buffer" || pkg.Path() == "strings" && n == "Builder") {
				return true
			}
		}
		iface, ok := t.Underlying().(*types.Interface)
		if !ok {
			return false
		}
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == "Write" {
				return true
			}
		}
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if check(sig.Params().At(i).Type()) {
			return true
		}
	}
	if r := sig.Recv(); r != nil && check(r.Type()) {
		return true
	}
	return false
}

package lintvet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// A Package is one loaded, type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	Imports    []string
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// Load resolves patterns (e.g. "./...") from moduleDir via the go
// command and returns the matched packages parsed and type-checked.
// The go command does all module/build-graph work: `go list -export
// -deps` compiles every dependency and hands back export-data paths,
// which a gc importer consumes, so the loader needs no network, no
// third-party machinery, and no GOPATH assumptions. Packages come
// back topologically sorted (dependencies before dependents) so
// cross-package facts flow forward.
func Load(moduleDir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps",
		"-json=ImportPath,Dir,Name,GoFiles,Imports,Export,Standard,DepOnly"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lintvet: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lintvet: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lintvet: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range topoSort(targets) {
		p, err := typeCheck(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// topoSort orders targets so that every target is preceded by the
// targets it imports; ties break on import path so runs are stable.
func topoSort(targets []*listedPkg) []*listedPkg {
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	byPath := make(map[string]*listedPkg, len(targets))
	for _, t := range targets {
		byPath[t.ImportPath] = t
	}
	seen := make(map[string]bool, len(targets))
	out := make([]*listedPkg, 0, len(targets))
	var visit func(*listedPkg)
	visit = func(t *listedPkg) {
		if seen[t.ImportPath] {
			return
		}
		seen[t.ImportPath] = true
		for _, imp := range t.Imports {
			if dep := byPath[imp]; dep != nil {
				visit(dep)
			}
		}
		out = append(out, t)
	}
	for _, t := range targets {
		visit(t)
	}
	return out
}

// typeCheck parses and type-checks one target from source. Imports —
// including imports of sibling targets — resolve through export data,
// so each target checks independently of the others' ASTs.
func typeCheck(fset *token.FileSet, imp types.Importer, t *listedPkg) (*Package, error) {
	files := make([]*ast.File, 0, len(t.GoFiles))
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lintvet: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lintvet: type-checking %s: %v", t.ImportPath, err)
	}
	return &Package{
		ImportPath: t.ImportPath,
		Dir:        t.Dir,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
		Imports:    t.Imports,
	}, nil
}

// Package lintvet is the in-tree static-analysis suite ("boltvet")
// that promotes the repo's house invariants — byte-identical output
// across -jobs, zero-alloc hot phases, declared-stat-key discipline,
// context plumbing — from runtime tests to compile-time checks. It is
// a deliberately small re-implementation of the golang.org/x/tools
// go/analysis surface on the standard library alone: packages are
// loaded through `go list -export` (the go command resolves the
// module graph and builds export data), target sources are parsed and
// type-checked with go/types, and each analyzer walks the typed ASTs.
//
// Diagnostics are suppressible site-by-site with a directive comment:
//
//	//boltvet:<name> <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory — a reasonless directive is itself a diagnostic — and
// every suppression in the tree must also be listed in
// suppressions.txt (TestSuppressionAudit), so silent accretion of
// exemptions fails the build twice over.
package lintvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and cmd/boltvet output.
	Name string
	// Doc is the one-line description shown by cmd/boltvet and the README.
	Doc string
	// Directive is the suppression directive the analyzer honors
	// (e.g. "sorted-ok" makes `//boltvet:sorted-ok reason` suppress it).
	Directive string
	// Run reports the analyzer's diagnostics for one package.
	Run func(*Pass)
}

// A Pass carries one package's typed syntax to an analyzer, plus the
// run-wide fact store (packages are visited in dependency order, so a
// fact exported by internal/core is visible when internal/passes or
// bolt is analyzed).
type Pass struct {
	Analyzer *Analyzer
	Path     string // import path of the package under analysis
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Facts    *Facts

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos unless a matching suppression
// directive covers that line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned for file:line reporting.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Facts is the cross-package blackboard shared by one Run: analyzers
// on early packages deposit values that analyzers on importing
// packages consume (the statkey analyzer publishes core.StatDefs()'s
// declared key set this way).
type Facts struct {
	m map[string]any
}

// Set stores a fact under key.
func (f *Facts) Set(key string, v any) { f.m[key] = v }

// Get returns the fact stored under key, or nil.
func (f *Facts) Get(key string) any { return f.m[key] }

// DirectivePrefix introduces every boltvet comment directive.
const DirectivePrefix = "//boltvet:"

// HotPathDirective marks a whole file as a scrubbed hot path for the
// hotalloc analyzer. Unlike the per-analyzer "-ok" suppressions it
// widens coverage rather than narrowing it, but it shares the
// grammar: a reason is required and the audit test tracks it.
const HotPathDirective = "hot-path"

// directive is one parsed //boltvet: comment.
type directive struct {
	name   string
	reason string
	pos    token.Pos
	line   int
	used   bool
}

// parseDirectives extracts every //boltvet: comment from file,
// keyed by line number. Malformed grammar (no name) is reported
// immediately; empty reasons are reported by checkDirectives after
// the analyzers run.
func parseDirectives(fset *token.FileSet, file *ast.File) []*directive {
	var out []*directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, DirectivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, DirectivePrefix)
			name, reason, _ := strings.Cut(rest, " ")
			// A trailing `// ...` on the same line (like the testdata
			// `// want` annotations) is commentary, not reason text.
			if i := strings.Index(reason, "//"); i >= 0 {
				reason = reason[:i]
			}
			out = append(out, &directive{
				name:   name,
				reason: strings.TrimSpace(reason),
				pos:    c.Pos(),
				line:   fset.Position(c.Pos()).Line,
			})
		}
	}
	return out
}

// fileDirectives indexes one file's directives for suppression lookup.
type fileDirectives struct {
	byLine map[int][]*directive
	all    []*directive
}

func indexDirectives(ds []*directive) *fileDirectives {
	fd := &fileDirectives{byLine: make(map[int][]*directive, len(ds)), all: ds}
	for _, d := range ds {
		fd.byLine[d.line] = append(fd.byLine[d.line], d)
	}
	return fd
}

// suppresses reports whether a directive named name covers line: the
// directive must sit on the line itself or the line directly above,
// and must carry a reason (reasonless directives never suppress — they
// are themselves diagnostics, so the underlying finding stays visible
// until the reason is written).
func (fd *fileDirectives) suppresses(name string, line int) bool {
	if fd == nil {
		return false
	}
	for _, d := range fd.byLine[line] {
		if d.name == name && d.reason != "" {
			d.used = true
			return true
		}
	}
	for _, d := range fd.byLine[line-1] {
		if d.name == name && d.reason != "" {
			d.used = true
			return true
		}
	}
	return false
}

// hotFile reports whether the file carries a hot-path marker, using it.
func (fd *fileDirectives) hotFile() bool {
	for _, d := range fd.all {
		if d.name == HotPathDirective && d.reason != "" {
			d.used = true
			return true
		}
	}
	return false
}

// checkDirectives validates one file's directives after every
// analyzer ran: unknown names, missing reasons, and suppressions that
// no longer suppress anything are all diagnostics, so the directive
// population can only shrink back toward zero.
func checkDirectives(fset *token.FileSet, fd *fileDirectives, known map[string]bool, report func(Diagnostic)) {
	for _, d := range fd.all {
		pos := fset.Position(d.pos)
		switch {
		case !known[d.name]:
			names := make([]string, 0, len(known))
			for n := range known {
				names = append(names, n)
			}
			sort.Strings(names)
			report(Diagnostic{Pos: pos, Analyzer: "directive",
				Message: fmt.Sprintf("unknown boltvet directive %q (valid: %s)", d.name, strings.Join(names, ", "))})
		case d.reason == "":
			report(Diagnostic{Pos: pos, Analyzer: "directive",
				Message: fmt.Sprintf("boltvet:%s needs a reason: //boltvet:%s <why this site is exempt>", d.name, d.name)})
		case !d.used && d.name != HotPathDirective:
			report(Diagnostic{Pos: pos, Analyzer: "directive",
				Message: fmt.Sprintf("boltvet:%s suppresses nothing here — remove the stale directive", d.name)})
		}
	}
}

package lintvet

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// StatKey is the compile-time half of the declared-stat-key
// invariant: every constant string used as a counter/gauge/histogram
// key — CountStat on BinaryContext/FuncCtx, Add/SetGauge/Observe on
// the obsv Registry — must appear in core.StatDefs(). The runtime
// Registry.Undeclared test only fires when the offending code path
// executes; this check reads the key straight off the call site, so
// an undeclared key fails `boltvet ./...` even if no test reaches it.
//
// The declared set is lifted from the StatDefs function body during
// the same run (constant string arguments of the builder calls and
// Name:/SumTo: fields), published as a fact, and consumed by every
// package analyzed after it — dependency ordering guarantees core
// precedes its importers. Keys computed at runtime (a variable key in
// a merge loop) are invisible to the checker and stay covered by the
// runtime test. Escape hatch: `//boltvet:statkey-ok <reason>`.
var StatKey = &Analyzer{
	Name:      "statkey",
	Doc:       "stat-key string literals must be declared in core.StatDefs()",
	Directive: "statkey-ok",
	Run:       runStatKey,
}

// statKeysFact is the Facts key under which the declared set lives.
const statKeysFact = "statkey.declared"

// registryMethods are the obsv.Registry mutators whose first argument
// is a metric name. CountStat matches on any receiver (BinaryContext,
// FuncCtx, and test doubles all funnel into the registry).
var registryMethods = map[string]bool{"Add": true, "SetGauge": true, "Observe": true}

func runStatKey(p *Pass) {
	// Phase 1: harvest declarations from a StatDefs() in this package.
	for _, fd := range funcDecls(p.Files) {
		if fd.Name.Name != "StatDefs" || fd.Recv != nil {
			continue
		}
		keys, _ := p.Facts.Get(statKeysFact).(map[string]bool)
		if keys == nil {
			keys = make(map[string]bool)
			p.Facts.Set(statKeysFact, keys)
		}
		harvestStatDefs(p, fd, keys)
	}

	keys, _ := p.Facts.Get(statKeysFact).(map[string]bool)
	if keys == nil {
		// No StatDefs in scope (a run that does not include core):
		// nothing to check against.
		return
	}

	// Phase 2: check key literals at every recording site.
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			f := calleeFunc(p.Info, call)
			if f == nil || f.Type().(*types.Signature).Recv() == nil {
				return true
			}
			name := f.Name()
			if name != "CountStat" && !(registryMethods[name] && recvNamed(f, "Registry")) {
				return true
			}
			key, ok := constString(p.Info, call.Args[0])
			if !ok {
				return true // runtime-computed key: the Undeclared test owns it
			}
			if !keys[key] {
				p.Reportf(call.Args[0].Pos(), "stat key %q is not declared in core.StatDefs() — declare it there (closest: %s) or //boltvet:statkey-ok <reason>", key, closestKey(key, keys))
			}
			return true
		})
	}
}

// harvestStatDefs pulls every declared metric name out of the
// StatDefs body: constant string first-arguments of helper-builder
// calls (counter(...)/weighted(...)) and Name:/SumTo: composite
// literal fields. go/types constant folding resolves named constants
// like MetricFlowAccuracy for free.
func harvestStatDefs(p *Pass, fd *ast.FuncDecl, keys map[string]bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			if len(v.Args) == 0 {
				return true
			}
			// Only local builder closures take the name first; calls
			// into other packages (fmt etc.) never declare keys.
			if calleeFunc(p.Info, v) != nil {
				return true
			}
			if s, ok := constString(p.Info, v.Args[0]); ok {
				keys[s] = true
			}
		case *ast.KeyValueExpr:
			id, ok := v.Key.(*ast.Ident)
			if !ok || (id.Name != "Name" && id.Name != "SumTo") {
				return true
			}
			if s, ok := constString(p.Info, v.Value); ok && s != "" {
				keys[s] = true
			}
		}
		return true
	})
}

// recvNamed reports whether f's receiver (possibly a pointer) is a
// named type called name.
func recvNamed(f *types.Func, name string) bool {
	r := f.Type().(*types.Signature).Recv()
	if r == nil {
		return false
	}
	t := r.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}

// closestKey names the declared key nearest to miss (shared-prefix
// heuristic) so typo diagnostics carry the likely fix.
func closestKey(miss string, keys map[string]bool) string {
	best, bestLen := "(none)", -1
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		l := 0
		for l < len(k) && l < len(miss) && k[l] == miss[l] {
			l++
		}
		if l > bestLen {
			best, bestLen = k, l
		}
	}
	if strings.TrimSpace(best) == "" {
		return "(none)"
	}
	return best
}

// Package obj is boltvet testdata: a stand-in for internal/obj (the
// import path ends in /obj, which is how the symid analyzer knows the
// layout owner). Raw bit manipulation here is legal — this package
// defines the layout.
package obj

// SymID mirrors the packed emission-symbol handle.
type SymID uint64

const (
	symKindShift = 61
	symPayload   = 1<<symKindShift - 1
)

// FuncSym packs a function ordinal (legal: layout owner).
func FuncSym(ord int) SymID {
	return SymID(1)<<symKindShift | SymID(ord)
}

// AbsAddr unpacks an absolute address (legal: layout owner).
func (s SymID) AbsAddr() uint64 {
	return uint64(s) & symPayload
}

// Kind returns the tag bits (legal: layout owner).
func (s SymID) Kind() uint64 {
	return uint64(s >> symKindShift)
}

// Package symid is boltvet testdata: consumers of the packed
// emission-symbol type must use the obj helpers, never the raw bits.
package symid

import (
	"gobolt/internal/lintvet/testdata/src/symid/obj"
)

// Resolve exercises legal helper access and every flagged shape: raw
// shifts, masks, and integer conversions in both directions.
func Resolve(sym obj.SymID, raw uint64) uint64 {
	if sym.Kind() == 1 { // helpers are the sanctioned surface
		return sym.AbsAddr()
	}

	kind := sym >> 61        // want "raw >> on obj.SymID"
	masked := sym & 0xFF     // want "raw & on obj.SymID"
	tagged := sym | 1<<61    // want "raw \\| on obj.SymID"
	cleared := sym &^ 0xF0   // want "raw &\^ on obj.SymID"
	bits := uint64(sym)      // want "raw integer conversion"
	forged := obj.SymID(raw) // want "constructed from raw bits"
	_, _, _, _, _ = kind, masked, tagged, cleared, forged

	legit := obj.FuncSym(int(raw)) // constructors are the sanctioned path
	_ = legit

	//boltvet:symid-ok exercising the escape hatch
	suppressed := uint64(sym)

	return bits + suppressed
}

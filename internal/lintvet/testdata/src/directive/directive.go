// Package directive is boltvet testdata: the directive grammar
// itself. Unknown names, missing reasons, and stale suppressions are
// diagnostics, so the exemption population can only shrink.
package directive

import (
	"fmt"
	"io"
)

// WriteBad shows that a reasonless directive does not suppress: both
// the finding and the grammar complaint are reported.
func WriteBad(w io.Writer, m map[string]int) {
	//boltvet:sorted-ok // want "boltvet:sorted-ok needs a reason"
	for k := range m { // want "iterating a map in output-reachable WriteBad"
		fmt.Fprintln(w, k)
	}
}

//boltvet:frobnicate no analyzer answers to this name // want "unknown boltvet directive \"frobnicate\""

//boltvet:ctx-ok fixed long ago, nothing here mints a context // want "suppresses nothing here"

// WriteGood is the well-formed counterpart: no findings.
func WriteGood(w io.Writer, m map[string]int) {
	//boltvet:sorted-ok order-insensitive debug aid
	for k := range m {
		fmt.Fprintln(w, k)
	}
}

// Package ctxthread is boltvet testdata: context threading through
// library code and par pools.
package ctxthread

import (
	"context"

	"gobolt/internal/par"
)

func work(worker, item int) error { return nil }

// Threaded passes the received context straight through: no findings.
func Threaded(cx context.Context, n int) error {
	_, err := par.For(cx, n, 4, work)
	return err
}

// Detached mints a root mid-library: flagged.
func Detached() context.Context {
	return context.Background() // want "context.Background\(\) in library code detaches this path from cancellation"
}

// Postponed hides behind TODO: flagged the same way.
func Postponed() context.Context {
	return context.TODO() // want "context.TODO\(\) in library code detaches this path from cancellation"
}

// NilPool starves the pool of a cancellation channel: flagged.
func NilPool(n int) error {
	_, err := par.For(nil, n, 4, work) // want "par.For called with a nil context"
	return err
}

// FreshPool mints a root right at the pool boundary: flagged once,
// with the par-specific message.
func FreshPool(n int) error {
	_, err := par.For(context.Background(), n, 4, work) // want "par.For called with a fresh context.Background\(\)"
	return err
}

// Normalized is the one sanctioned Background() in library code — the
// nil-context compatibility fallback: no finding.
func Normalized(cx context.Context, n int) error {
	if cx == nil {
		cx = context.Background()
	}
	_, err := par.For(cx, n, 4, work)
	return err
}

// Suppressed carries a reasoned directive: no finding.
func Suppressed() context.Context {
	//boltvet:ctx-ok detached janitor goroutine must outlive the request
	return context.Background()
}

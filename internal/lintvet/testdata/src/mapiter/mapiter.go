// Package mapiter is boltvet testdata: map iteration in
// output-reachable code.
package mapiter

import (
	"fmt"
	"io"
	"sort"
)

// WriteCounts is a root by both name and writer parameter; the raw
// map range is the bug this analyzer exists for.
func WriteCounts(w io.Writer, m map[string]int) {
	for k, v := range m { // want "iterating a map in output-reachable WriteCounts"
		fmt.Fprintf(w, "%s %d\n", k, v)
	}
}

// WriteSorted is the sanctioned collect-then-sort shape: no finding.
func WriteSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s %d\n", k, m[k])
	}
}

// WriteNonZero guards the collection with an if and a continue — still
// a pure collect loop, still sorted later: no finding.
func WriteNonZero(w io.Writer, m map[string]int) {
	var keys []string
	for k, v := range m {
		if v == 0 {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintln(w, k)
	}
}

// WriteReport reaches render through the package call graph; the map
// range inside the helper is just as order-sensitive as one in the
// root itself.
func WriteReport(w io.Writer, m map[string]int) {
	io.WriteString(w, render(m))
}

func render(m map[string]int) string {
	s := ""
	for k := range m { // want "iterating a map in output-reachable render"
		s += k
	}
	return s
}

// snapshot is a map-to-map transfer: order-independent by
// construction, no finding even though Dump reaches it.
func snapshot(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Dump is a root by name.
func Dump(w io.Writer, m map[string]int) {
	for _, k := range sortedKeys(snapshot(m)) {
		fmt.Fprintln(w, k)
	}
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// tally never feeds an output path: map ranging for a commutative
// reduction is fine, no finding.
func tally(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

var _ = tally // not reachable from any writer root on purpose

// WriteDebug carries a reasoned suppression: no finding.
func WriteDebug(w io.Writer, m map[string]int) {
	//boltvet:sorted-ok debug dump, line order is irrelevant to the reader
	for k := range m {
		fmt.Fprintln(w, k)
	}
}

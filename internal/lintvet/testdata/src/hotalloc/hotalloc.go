// Package hotalloc is boltvet testdata: allocation shapes banned in
// hot-path files.
package hotalloc

//boltvet:hot-path testdata standing in for the emit/disasm/parse hot files

import (
	"errors"
	"fmt"
	"strconv"
)

// Format shows the banned shapes back to back.
func Format(names []string, n int) ([]string, string, error) {
	s := fmt.Sprintf("n=%d", n) // want "fmt.Sprintf on a hot path"

	err := fmt.Errorf("bad count %d", n) // want "fmt.Errorf outside a direct return"
	if err != nil && n < 0 {
		return nil, "", err
	}

	label := "n=" + strconv.Itoa(n) // want "string concatenation on a hot path"

	for _, name := range names {
		label += name // want "string \+= on a hot path"
	}

	var out []string
	for _, name := range names {
		out = append(out, name) // want "append in a loop to out, declared without capacity"
	}
	return out, s + label, nil // want "string concatenation on a hot path"
}

// Clean uses the sanctioned equivalents: no findings.
func Clean(names []string, n int) ([]byte, []string, error) {
	if n < 0 {
		return nil, nil, fmt.Errorf("bad count %d", n) // Errorf in a direct return is the abort path
	}
	buf := make([]byte, 0, 32)
	buf = append(buf, "n="...)
	buf = strconv.AppendInt(buf, int64(n), 10)

	out := make([]string, 0, len(names))
	for _, name := range names {
		out = append(out, name)
	}

	const prefix = "hot" + "-path" // constant folding is free
	_ = prefix
	return buf, out, nil
}

// Suppressed carries reasoned directives: no findings.
func Suppressed(names []string) string {
	//boltvet:alloc-ok one-shot banner built at startup, not per item
	s := "banner: " + names[0]
	var grown []error
	for range names {
		//boltvet:alloc-ok error slice stays empty on the success path
		grown = append(grown, errors.New("x"))
	}
	_ = grown
	return s
}

// Package defs is boltvet testdata: the declaring side of the
// stat-key invariant. StatDefs here plays the role of core.StatDefs;
// the sibling package imports it so dependency-ordered analysis
// carries the harvested keys across the package boundary.
package defs

// Def mirrors the shape of core.StatDef.
type Def struct {
	Name  string
	Help  string
	SumTo string
}

const aggregateKey = "blocks-total"

// StatDefs declares the testdata metric set through both harvested
// shapes: builder-closure first arguments and Name:/SumTo: fields.
func StatDefs() []Def {
	counter := func(name, help string) Def { return Def{Name: name, Help: help} }
	return []Def{
		counter("load-simple", "functions loaded without quirks"),
		counter("flow-accuracy", "profile flow conservation score"),
		{Name: "emit-bytes", Help: "bytes written", SumTo: aggregateKey},
	}
}

// Registry mirrors the obsv.Registry mutator surface.
type Registry struct{}

// Add records a counter delta.
func (r *Registry) Add(name string, delta int64) {}

// SetGauge records a gauge level.
func (r *Registry) SetGauge(name string, v float64) {}

// Observe records a histogram sample.
func (r *Registry) Observe(name string, v float64) {}

// Ctx mirrors the CountStat carriers (BinaryContext/FuncCtx).
type Ctx struct{}

// CountStat bumps a named counter.
func (c *Ctx) CountStat(name string, delta int64) {}

// Package statkey is boltvet testdata: the recording side of the
// stat-key invariant, checked against the declarations harvested from
// the imported defs package.
package statkey

import (
	"strings"

	"gobolt/internal/lintvet/testdata/src/statkey/defs"
)

// Record exercises declared, undeclared, suppressed, and
// runtime-computed keys.
func Record(c *defs.Ctx, r *defs.Registry, phase string) {
	c.CountStat("load-simple", 1)
	c.CountStat("load-simpel", 1) // want "stat key \"load-simpel\" is not declared"

	r.Add("flow-accuracy", 1)
	r.Add("blocks-total", 1) // SumTo targets are declared keys too
	r.SetGauge("emit-bytes", 1)
	r.SetGauge("emit-byte", 1)    // want "stat key \"emit-byte\" is not declared"
	r.Observe("load-latency", 25) // want "stat key \"load-latency\" is not declared"

	key := "phase-" + strings.ToLower(phase)
	c.CountStat(key, 1) // runtime-computed: the Registry.Undeclared test owns it

	//boltvet:statkey-ok key lands with the follow-up emit PR
	c.CountStat("emit-relocs", 1)
}

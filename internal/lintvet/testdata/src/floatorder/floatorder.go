// Package floatorder is boltvet testdata: float reductions across
// par.For worker pools.
package floatorder

import (
	"context"

	"gobolt/internal/par"
)

// SharedSum races workers into one captured float: flagged.
func SharedSum(cx context.Context, xs []float64) (float64, error) {
	var total float64
	_, err := par.For(cx, len(xs), 4, func(worker, item int) error {
		total += xs[item] // want "float accumulation into captured total"
		return nil
	})
	return total, err
}

// LonghandSum spells the same reduction as x = x + y: flagged.
func LonghandSum(cx context.Context, xs []float64) (float64, error) {
	var total float64
	_, err := par.For(cx, len(xs), 4, func(worker, item int) error {
		total = total + xs[item] // want "float accumulation into captured total"
		return nil
	})
	return total, err
}

// WorkerSlots shard by worker index — still schedule-dependent,
// because which items a worker claims decides each slot's rounding:
// flagged.
func WorkerSlots(cx context.Context, xs []float64, jobs int) ([]float64, error) {
	acc := make([]float64, jobs)
	_, err := par.For(cx, len(xs), jobs, func(worker, item int) error {
		acc[worker] += xs[item] // want "float accumulation into captured acc"
		return nil
	})
	return acc, err
}

// ItemSlots give every item its own slot — one writer per slot, the
// PR-5 deterministic-reduction shape: no finding.
func ItemSlots(cx context.Context, xs []float64) ([]float64, error) {
	acc := make([]float64, len(xs))
	_, err := par.For(cx, len(xs), 4, func(worker, item int) error {
		acc[item] += xs[item] * 0.5
		return nil
	})
	return acc, err
}

// LocalAcc accumulates into a closure-local before a single slotted
// write: no finding.
func LocalAcc(cx context.Context, xs [][]float64) ([]float64, error) {
	acc := make([]float64, len(xs))
	_, err := par.For(cx, len(xs), 4, func(worker, item int) error {
		sum := 0.0
		for _, v := range xs[item] {
			sum += v
		}
		acc[item] = sum
		return nil
	})
	return acc, err
}

// IntCount is integer accumulation — racy for other reasons but
// associative, not this analyzer's concern: no finding.
func IntCount(cx context.Context, xs []float64) (int, error) {
	n := 0
	_, err := par.For(cx, len(xs), 4, func(worker, item int) error {
		n++
		return nil
	})
	return n, err
}

// Suppressed carries a reasoned directive: no finding.
func Suppressed(cx context.Context, xs []float64) (float64, error) {
	var total float64
	_, err := par.For(cx, len(xs), 1, func(worker, item int) error {
		//boltvet:floatorder-ok jobs is pinned to 1 here, a single worker is sequential
		total += xs[item]
		return nil
	})
	return total, err
}

package lintvet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc guards the PR-6 allocation scrub: in files marked
// `//boltvet:hot-path <what makes this file hot>` — the loader's
// disassembly path, the emitter, and the profile parser — it flags
// the allocation shapes that were deliberately driven out and must
// not creep back:
//
//   - fmt.Sprintf anywhere (string formatting allocates; the hot
//     paths use appenders and strconv);
//   - fmt.Errorf outside a direct `return` (error construction on
//     the abort path is fine — the pipeline stops — but an Errorf
//     whose result is stored or inspected runs on the success path);
//   - non-constant string concatenation with + or += (each one
//     allocates; constant folding is free and stays exempt);
//   - append inside a loop to a slice declared in the same function
//     without any capacity hint (repeated growth reallocations; give
//     the make() a capacity or hoist the slice).
//
// Intentional sites take `//boltvet:alloc-ok <reason>`.
var HotAlloc = &Analyzer{
	Name:      "hotalloc",
	Doc:       "no fmt/concat/growth allocations in //boltvet:hot-path files",
	Directive: "alloc-ok",
	Run:       runHotAlloc,
}

func runHotAlloc(p *Pass) {
	for _, file := range p.Files {
		fd := indexDirectives(parseDirectives(p.Fset, file))
		if !fd.hotFile() {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkHotFunc(p, fn)
		}
	}
}

func checkHotFunc(p *Pass, fn *ast.FuncDecl) {
	slices := localSliceDecls(p, fn)

	var walk func(n ast.Node, inReturn bool, loopDepth int, inConcat bool)
	walk = func(n ast.Node, inReturn bool, loopDepth int, inConcat bool) {
		switch v := n.(type) {
		case nil:
			return
		case *ast.ReturnStmt:
			for _, r := range v.Results {
				walk(r, true, loopDepth, inConcat)
			}
			return
		case *ast.ForStmt:
			walk(v.Init, inReturn, loopDepth, inConcat)
			walk(v.Cond, inReturn, loopDepth, inConcat)
			walk(v.Post, inReturn, loopDepth, inConcat)
			walk(v.Body, inReturn, loopDepth+1, inConcat)
			return
		case *ast.RangeStmt:
			walk(v.X, inReturn, loopDepth, inConcat)
			walk(v.Body, inReturn, loopDepth+1, inConcat)
			return
		case *ast.CallExpr:
			callee := calleeFunc(p.Info, v)
			switch {
			case isPkgFunc(callee, "fmt", "Sprintf"):
				p.Reportf(v.Pos(), "fmt.Sprintf on a hot path: use append-based formatting/strconv (or //boltvet:alloc-ok <reason>)")
			case isPkgFunc(callee, "fmt", "Errorf") && !inReturn:
				p.Reportf(v.Pos(), "fmt.Errorf outside a direct return on a hot path: build errors only on the abort path (or //boltvet:alloc-ok <reason>)")
			case loopDepth > 0 && isBuiltinAppend(p.Info, v):
				if tgt := appendTarget(p.Info, v); tgt != nil {
					if decl, ok := slices[tgt]; ok && !decl.hasCap {
						p.Reportf(v.Pos(), "append in a loop to %s, declared without capacity: preallocate with make(%s, 0, n) (or //boltvet:alloc-ok <reason>)", tgt.Name(), tgt.Name())
					}
				}
			}
			// Calls reset the concat context: fn(a+b) inside a concat
			// chain is its own expression.
			children(v, func(c ast.Node) { walk(c, inReturn, loopDepth, false) })
			return
		case *ast.BinaryExpr:
			if v.Op == token.ADD && isString(p.Info.TypeOf(v)) && p.Info.Types[v].Value == nil {
				if !inConcat {
					p.Reportf(v.Pos(), "string concatenation on a hot path allocates: use an append buffer (or //boltvet:alloc-ok <reason>)")
				}
				// Flag a chain once: operands walk in concat context.
				walk(v.X, inReturn, loopDepth, true)
				walk(v.Y, inReturn, loopDepth, true)
				return
			}
		case *ast.AssignStmt:
			if v.Tok == token.ADD_ASSIGN && len(v.Lhs) == 1 && isString(p.Info.TypeOf(v.Lhs[0])) {
				p.Reportf(v.Pos(), "string += on a hot path allocates per iteration: use an append buffer (or //boltvet:alloc-ok <reason>)")
			}
		case *ast.FuncLit:
			walk(v.Body, false, loopDepth, false)
			return
		}
		children(n, func(c ast.Node) { walk(c, inReturn, loopDepth, inConcat) })
	}
	walk(fn.Body, false, 0, false)
}

// children invokes f once for each immediate child of n.
func children(n ast.Node, f func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			f(c)
		}
		return false
	})
}

// sliceDecl records how a function-local slice variable was declared.
type sliceDecl struct{ hasCap bool }

// localSliceDecls maps each slice variable declared inside fn to
// whether its declaration carries a capacity: make(T, n) / make(T, n,
// c) / a non-empty literal count as presized, `var s []T`, `s :=
// []T{}`, and `s := make([]T, 0)` do not. Nested concat via
// string(append(...)) idioms keep their variables out of this map and
// are never flagged.
func localSliceDecls(p *Pass, fn *ast.FuncDecl) map[types.Object]sliceDecl {
	out := map[types.Object]sliceDecl{}
	record := func(id *ast.Ident, rhs ast.Expr) {
		o := p.Info.Defs[id]
		if o == nil {
			return
		}
		if _, ok := o.Type().Underlying().(*types.Slice); !ok {
			return
		}
		d := sliceDecl{}
		switch v := rhs.(type) {
		case nil:
			// var s []T — zero value, no capacity.
		case *ast.CallExpr:
			if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "make" && p.Info.Uses[id] == nil {
				// make([]T, n) presizes length; only a 3-arg make with
				// constant-0 capacity (or 2-arg make(, 0)) counts as growth-prone.
				d.hasCap = !makeZeroSized(p, v)
			} else {
				d.hasCap = true // produced by a call; origin unknown, stay quiet
			}
		case *ast.CompositeLit:
			d.hasCap = len(v.Elts) > 0
		default:
			d.hasCap = true
		}
		out[o] = d
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if v.Tok == token.DEFINE && len(v.Lhs) == len(v.Rhs) {
				for i := range v.Lhs {
					if id, ok := v.Lhs[i].(*ast.Ident); ok {
						record(id, v.Rhs[i])
					}
				}
			}
		case *ast.ValueSpec:
			for i, id := range v.Names {
				var rhs ast.Expr
				if i < len(v.Values) {
					rhs = v.Values[i]
				}
				record(id, rhs)
			}
		}
		return true
	})
	return out
}

// makeZeroSized reports whether a make call builds a zero-length,
// zero/absent-capacity slice — the growth-prone shape.
func makeZeroSized(p *Pass, call *ast.CallExpr) bool {
	isZero := func(e ast.Expr) bool {
		tv, ok := p.Info.Types[e]
		if !ok || tv.Value == nil {
			return false
		}
		return tv.Value.String() == "0"
	}
	switch len(call.Args) {
	case 2:
		return isZero(call.Args[1])
	case 3:
		return isZero(call.Args[2])
	}
	return false
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// appendTarget returns the object of the slice being appended to,
// for the common self-append `x = append(x, ...)` spelled with x as
// the first argument.
func appendTarget(info *types.Info, call *ast.CallExpr) types.Object {
	if len(call.Args) == 0 {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}

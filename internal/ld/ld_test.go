package ld

import (
	"testing"

	"gobolt/internal/obj"
)

func tinyObjects() []*obj.Object {
	// _start: call f; hlt  (call rel32 patched by the linker)
	start := &obj.Func{
		Name:   "_start",
		Bytes:  []byte{0xE8, 0, 0, 0, 0, 0xF4},
		Align:  16,
		Global: true,
		Relocs: []obj.Reloc{{Off: 1, Type: obj.RelPC32, Sym: "f", Addend: -4}},
	}
	f := &obj.Func{Name: "f", Bytes: []byte{0xC3}, Align: 16, Global: true}
	g := &obj.Global{Name: "blob", Data: []byte{1, 2, 3, 4}, Align: 4}
	return []*obj.Object{{Name: "m", Funcs: []*obj.Func{start, f}, Globals: []*obj.Global{g}}}
}

func TestLinkBasics(t *testing.T) {
	res, err := Link(tinyObjects(), Options{EmitRelocs: true})
	if err != nil {
		t.Fatal(err)
	}
	file := res.File
	startSym, ok := file.SymbolByName("_start")
	if !ok || file.Entry != startSym.Value {
		t.Fatalf("entry mismatch: %#x vs %+v", file.Entry, startSym)
	}
	fSym, _ := file.SymbolByName("f")
	// Verify the call displacement resolves to f.
	text := file.Section(".text")
	off := startSym.Value - text.Addr + 1
	disp := int32(uint32(text.Data[off]) | uint32(text.Data[off+1])<<8 |
		uint32(text.Data[off+2])<<16 | uint32(text.Data[off+3])<<24)
	target := startSym.Value + 5 + uint64(int64(disp))
	if target != fSym.Value {
		t.Fatalf("call resolves to %#x, want %#x", target, fSym.Value)
	}
	if len(file.Relas[".text"]) != 1 {
		t.Fatalf("emit-relocs lost: %v", file.Relas)
	}
}

func TestLinkRejectsDuplicates(t *testing.T) {
	objs := tinyObjects()
	objs = append(objs, &obj.Object{Funcs: []*obj.Func{{Name: "f", Bytes: []byte{0xC3}}}})
	if _, err := Link(objs, Options{}); err == nil {
		t.Fatal("duplicate symbol accepted")
	}
}

func TestLinkRequiresStart(t *testing.T) {
	objs := []*obj.Object{{Funcs: []*obj.Func{{Name: "f", Bytes: []byte{0xC3}}}}}
	if _, err := Link(objs, Options{}); err == nil {
		t.Fatal("missing _start accepted")
	}
}

func TestLinkerICFFoldsRelocFreeOnly(t *testing.T) {
	objs := tinyObjects()
	dupA := &obj.Func{Name: "dupA", Bytes: []byte{0x48, 0x31, 0xC0, 0xC3}}
	dupB := &obj.Func{Name: "dupB", Bytes: []byte{0x48, 0x31, 0xC0, 0xC3}}
	// Same bytes but with a relocation: must NOT fold.
	dupC := &obj.Func{Name: "dupC", Bytes: []byte{0x48, 0x31, 0xC0, 0xC3},
		Relocs: []obj.Reloc{{Off: 0, Type: obj.RelPC32, Sym: "f", Addend: -4}}}
	objs[0].Funcs = append(objs[0].Funcs, dupA, dupB, dupC)
	res, err := Link(objs, Options{ICF: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ICFFolded != 1 {
		t.Fatalf("folded %d, want 1", res.ICFFolded)
	}
	a, _ := res.File.SymbolByName("dupA")
	b, _ := res.File.SymbolByName("dupB")
	c, _ := res.File.SymbolByName("dupC")
	if a.Value != b.Value {
		t.Errorf("dupA/dupB must alias: %#x vs %#x", a.Value, b.Value)
	}
	if c.Value == a.Value {
		t.Errorf("dupC (with relocs) must not fold")
	}
}

func TestFuncOrder(t *testing.T) {
	objs := tinyObjects()
	objs[0].Funcs = append(objs[0].Funcs,
		&obj.Func{Name: "a", Bytes: []byte{0xC3}},
		&obj.Func{Name: "b", Bytes: []byte{0xC3}},
	)
	res, err := Link(objs, Options{FuncOrder: []string{"b", "a"}})
	if err != nil {
		t.Fatal(err)
	}
	aSym, _ := res.File.SymbolByName("a")
	bSym, _ := res.File.SymbolByName("b")
	if bSym.Value >= aSym.Value {
		t.Fatalf("FuncOrder ignored: b=%#x a=%#x", bSym.Value, aSym.Value)
	}
}

// Package ld is the static linker: it combines objects produced by
// internal/cc into a runnable ELF64 executable.
//
// Features the BOLT workflow depends on: --emit-relocs (keeping
// relocations in the output so gobolt's relocations mode can move
// functions, paper §3.2), linker-level identical code folding (the
// baseline gobolt's ICF must beat by ~3%, §4), PLT/GOT synthesis for calls
// into the simulated shared library (target of the plt pass), and optional
// profile-driven function ordering (the HFSort-at-link-time baseline used
// for the Figure 5 experiments).
package ld

import (
	"fmt"
	"sort"

	"gobolt/internal/cfi"
	"gobolt/internal/dbg"
	"gobolt/internal/elfx"
	"gobolt/internal/obj"
)

// Default image layout constants.
const (
	DefaultTextBase = uint64(0x401000)
	pageSize        = uint64(0x1000)
	pltEntrySize    = 16
)

// Options configures a link.
type Options struct {
	// EmitRelocs keeps relocations in the executable (--emit-relocs).
	EmitRelocs bool
	// ICF folds identical relocation-free functions (linker-grade ICF;
	// functions with jump tables or other relocations are *not* folded,
	// leaving headroom gobolt's binary-level ICF exploits).
	ICF bool
	// NoPLT statically binds calls to shared-module functions instead of
	// synthesizing PLT stubs (an LTO-style static link).
	NoPLT bool
	// FuncOrder lays out the named functions first, in the given order
	// (profile-driven ordering such as HFSort); remaining functions keep
	// their input order.
	FuncOrder []string
	// TextBase overrides the default text start address.
	TextBase uint64
}

// Result bundles the linked image with link-time statistics.
type Result struct {
	File *elfx.File
	// ICFFolded counts functions removed by linker ICF.
	ICFFolded int
	// TextSize is the total .text size in bytes.
	TextSize uint64
}

// Link produces an executable from the given objects. The entry point is
// the function named "_start".
func Link(objs []*obj.Object, opts Options) (*Result, error) {
	if opts.TextBase == 0 {
		opts.TextBase = DefaultTextBase
	}

	// Collect functions and globals, preserving input order.
	var funcs []*obj.Func
	var globals []*obj.Global
	funcByName := map[string]*obj.Func{}
	globalByName := map[string]*obj.Global{}
	for _, o := range objs {
		for _, f := range o.Funcs {
			if funcByName[f.Name] != nil {
				return nil, fmt.Errorf("ld: duplicate function %q", f.Name)
			}
			funcByName[f.Name] = f
			funcs = append(funcs, f)
		}
		for _, g := range o.Globals {
			if globalByName[g.Name] != nil {
				return nil, fmt.Errorf("ld: duplicate global %q", g.Name)
			}
			globalByName[g.Name] = g
			globals = append(globals, g)
		}
	}
	if funcByName["_start"] == nil {
		return nil, fmt.Errorf("ld: no _start function")
	}

	// Linker ICF.
	aliases := map[string]string{} // folded name -> kept name
	folded := 0
	if opts.ICF {
		kept := map[string]string{} // body key -> name
		var keptFuncs []*obj.Func
		for _, f := range funcs {
			if len(f.Relocs) > 0 || len(f.CallSites) > 0 || f.Name == "_start" {
				keptFuncs = append(keptFuncs, f)
				continue
			}
			key := string(f.Bytes) + "\x00" + string(cfi.EncodeFrames([]cfi.FDE{{Insts: f.CFI}}))
			if orig, ok := kept[key]; ok {
				aliases[f.Name] = orig
				folded++
				continue
			}
			kept[key] = f.Name
			keptFuncs = append(keptFuncs, f)
		}
		funcs = keptFuncs
	}
	resolveAlias := func(name string) string {
		if a, ok := aliases[name]; ok {
			return a
		}
		return name
	}

	// PLT stubs needed?
	pltTargets := []string{}
	pltSeen := map[string]bool{}
	if !opts.NoPLT {
		for _, f := range funcs {
			for _, r := range f.Relocs {
				t := resolveAlias(r.Sym)
				if r.Type == obj.RelPLT32 && !pltSeen[t] {
					pltSeen[t] = true
					pltTargets = append(pltTargets, t)
				}
			}
		}
		sort.Strings(pltTargets)
	}

	// Function layout order.
	ordered := orderFuncs(funcs, opts.FuncOrder)

	// Address assignment: .plt, then .text.
	align := func(v, a uint64) uint64 {
		if a == 0 {
			a = 1
		}
		return (v + a - 1) &^ (a - 1)
	}
	pltBase := opts.TextBase
	pltSize := uint64(len(pltTargets) * pltEntrySize)
	textBase := align(pltBase+pltSize, 16)

	funcAddr := map[string]uint64{}
	addr := textBase
	for _, f := range ordered {
		addr = align(addr, uint64(f.Align))
		funcAddr[f.Name] = addr
		addr += uint64(len(f.Bytes))
	}
	textEnd := addr

	// Data layout: .rodata then .data on fresh pages.
	rodataBase := align(textEnd, pageSize)
	globalAddr := map[string]uint64{}
	a2 := rodataBase
	var roList, rwList []*obj.Global
	for _, g := range globals {
		if !g.Writable {
			roList = append(roList, g)
		} else {
			rwList = append(rwList, g)
		}
	}
	for _, g := range roList {
		a2 = align(a2, uint64(max(g.Align, 1)))
		globalAddr[g.Name] = a2
		a2 += uint64(len(g.Data))
	}
	rodataEnd := a2
	dataBase := align(rodataEnd, pageSize)
	a2 = dataBase
	for _, g := range rwList {
		a2 = align(a2, uint64(max(g.Align, 1)))
		globalAddr[g.Name] = a2
		a2 += uint64(len(g.Data))
	}
	dataEnd := a2

	// GOT after data.
	gotBase := align(dataEnd, 8)
	gotAddr := map[string]uint64{}
	for i, t := range pltTargets {
		gotAddr[t] = gotBase + uint64(8*i)
	}
	gotEnd := gotBase + uint64(8*len(pltTargets))

	pltStubAddr := map[string]uint64{}
	for i, t := range pltTargets {
		pltStubAddr[t] = pltBase + uint64(i*pltEntrySize)
	}

	// symValue resolves a symbol to its final address.
	symValue := func(name string) (uint64, error) {
		n := resolveAlias(name)
		if v, ok := funcAddr[n]; ok {
			return v, nil
		}
		if v, ok := globalAddr[n]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("ld: undefined symbol %q", name)
	}

	// Patch code.
	le := func(b []byte, off uint32, v uint32) {
		b[off] = byte(v)
		b[off+1] = byte(v >> 8)
		b[off+2] = byte(v >> 16)
		b[off+3] = byte(v >> 24)
	}
	le64 := func(b []byte, off uint32, v uint64) {
		le(b, off, uint32(v))
		le(b, off+4, uint32(v>>32))
	}
	textData := make([]byte, textEnd-textBase)
	var textRelas []elfx.Rela
	for _, f := range ordered {
		base := funcAddr[f.Name]
		copy(textData[base-textBase:], f.Bytes)
		for _, r := range f.Relocs {
			p := base + uint64(r.Off)
			s, err := symValue(r.Sym)
			if err != nil {
				return nil, fmt.Errorf("ld: in %s: %w", f.Name, err)
			}
			switch r.Type {
			case obj.RelPC32:
				le(textData, uint32(p-textBase), uint32(int64(s)+r.Addend-int64(p)))
			case obj.RelPLT32:
				target := s
				if stub, ok := pltStubAddr[resolveAlias(r.Sym)]; ok {
					target = stub
				}
				le(textData, uint32(p-textBase), uint32(int64(target)+r.Addend-int64(p)))
			case obj.RelAbs64:
				le64(textData, uint32(p-textBase), uint64(int64(s)+r.Addend))
			default:
				return nil, fmt.Errorf("ld: unsupported reloc type %d in %s", r.Type, f.Name)
			}
			if opts.EmitRelocs {
				textRelas = append(textRelas, elfx.Rela{
					Off: p - textBase, Type: r.Type, Sym: resolveAlias(r.Sym), Addend: r.Addend,
				})
			}
		}
	}

	// PLT stub bodies: jmp *GOT[i](%rip), padded with NOPs.
	pltData := make([]byte, pltSize)
	for _, t := range pltTargets {
		stub := pltStubAddr[t]
		got := gotAddr[t]
		off := stub - pltBase
		pltData[off] = 0xFF
		pltData[off+1] = 0x25
		disp := uint32(int64(got) - int64(stub) - 6)
		le(pltData, uint32(off+2), disp)
		// Pad the 16-byte entry with decodable NOPs.
		copy(pltData[off+6:], []byte{0x0F, 0x1F, 0x84, 0x00, 0, 0, 0, 0, 0x66, 0x90})
	}

	// Patch global data.
	rodataData := make([]byte, rodataEnd-rodataBase)
	dataData := make([]byte, dataEnd-dataBase)
	var roRelas, rwRelas []elfx.Rela
	patchGlobal := func(g *obj.Global, sect []byte, sectBase uint64, relas *[]elfx.Rela) error {
		base := globalAddr[g.Name]
		copy(sect[base-sectBase:], g.Data)
		for _, r := range g.Relocs {
			p := base + uint64(r.Off)
			s, err := symValue(r.Sym)
			if err != nil {
				return fmt.Errorf("ld: in %s: %w", g.Name, err)
			}
			switch r.Type {
			case obj.RelAbs64:
				le64(sect, uint32(p-sectBase), uint64(int64(s)+r.Addend))
			case obj.RelJT32:
				// PIC jump-table entry: target - table base. Resolved here
				// and *never emitted*, per the paper's observation.
				le(sect, uint32(p-sectBase), uint32(int64(s)+r.Addend-int64(base)))
			case obj.RelPC32:
				le(sect, uint32(p-sectBase), uint32(int64(s)+r.Addend-int64(p)))
			default:
				return fmt.Errorf("ld: unsupported data reloc %d in %s", r.Type, g.Name)
			}
			if opts.EmitRelocs && !g.NoEmitRelocs {
				*relas = append(*relas, elfx.Rela{
					Off: p - sectBase, Type: r.Type, Sym: resolveAlias(r.Sym), Addend: r.Addend,
				})
			}
		}
		return nil
	}
	for _, g := range roList {
		if err := patchGlobal(g, rodataData, rodataBase, &roRelas); err != nil {
			return nil, err
		}
	}
	for _, g := range rwList {
		if err := patchGlobal(g, dataData, dataBase, &rwRelas); err != nil {
			return nil, err
		}
	}

	// GOT contents (with relocations kept under --emit-relocs, like
	// R_X86_64_GLOB_DAT, so a post-link optimizer can retarget them).
	gotData := make([]byte, gotEnd-gotBase)
	var gotRelas []elfx.Rela
	for _, t := range pltTargets {
		v, err := symValue(t)
		if err != nil {
			return nil, err
		}
		le64(gotData, uint32(gotAddr[t]-gotBase), v)
		if opts.EmitRelocs {
			gotRelas = append(gotRelas, elfx.Rela{
				Off: gotAddr[t] - gotBase, Type: obj.RelAbs64, Sym: resolveAlias(t),
			})
		}
	}

	// Exception tables and CFI.
	var lsdaData []byte
	var fdes []cfi.FDE
	lineTab := &dbg.Table{}
	for _, f := range ordered {
		base := funcAddr[f.Name]
		fde := cfi.FDE{Start: base, Len: uint32(len(f.Bytes)), Insts: f.CFI}
		if len(f.CallSites) > 0 {
			l := &cfi.LSDA{}
			for _, cs := range f.CallSites {
				l.CallSites = append(l.CallSites, cfi.CallSite{
					Start: cs.Start, Len: cs.Len,
					LandingPad: base + uint64(cs.LPOff), Action: cs.Action,
				})
			}
			var off uint32
			lsdaData, off = cfi.EncodeLSDA(lsdaData, l)
			fde.LSDA = uint64(off) + 1 // +1 so offset 0 is distinguishable; reader subtracts
		}
		fdes = append(fdes, fde)
		for _, ln := range f.Lines {
			lineTab.Add(base+uint64(ln.Off), ln.File, uint32(ln.Line))
		}
	}
	lineTab.Sort()

	// LSDA section address: after GOT.
	lsdaBase := align(gotEnd, 8)
	for i := range fdes {
		if fdes[i].LSDA != 0 {
			fdes[i].LSDA = lsdaBase + fdes[i].LSDA - 1
		}
	}
	frameData := cfi.EncodeFrames(fdes)

	// Assemble the ELF image.
	out := elfx.New()
	out.Entry = funcAddr["_start"]
	out.EmitRelocs = opts.EmitRelocs
	if pltSize > 0 {
		out.AddSection(&elfx.Section{
			Name: ".plt", Type: elfx.SHTProgbits,
			Flags: elfx.SHFAlloc | elfx.SHFExecinstr,
			Addr:  pltBase, Data: pltData, Addralign: 16,
		})
	}
	out.AddSection(&elfx.Section{
		Name: ".text", Type: elfx.SHTProgbits,
		Flags: elfx.SHFAlloc | elfx.SHFExecinstr,
		Addr:  textBase, Data: textData, Addralign: 16,
	})
	if len(rodataData) > 0 {
		out.AddSection(&elfx.Section{
			Name: ".rodata", Type: elfx.SHTProgbits, Flags: elfx.SHFAlloc,
			Addr: rodataBase, Data: rodataData, Addralign: 8,
		})
	}
	if len(dataData) > 0 {
		out.AddSection(&elfx.Section{
			Name: ".data", Type: elfx.SHTProgbits,
			Flags: elfx.SHFAlloc | elfx.SHFWrite,
			Addr:  dataBase, Data: dataData, Addralign: 8,
		})
	}
	if len(gotData) > 0 {
		out.AddSection(&elfx.Section{
			Name: ".got", Type: elfx.SHTProgbits,
			Flags: elfx.SHFAlloc | elfx.SHFWrite,
			Addr:  gotBase, Data: gotData, Addralign: 8,
		})
	}
	if len(lsdaData) > 0 {
		out.AddSection(&elfx.Section{
			Name: cfi.LSDASectionName, Type: elfx.SHTProgbits, Flags: elfx.SHFAlloc,
			Addr: lsdaBase, Data: lsdaData, Addralign: 8,
		})
	}
	out.AddSection(&elfx.Section{
		Name: cfi.FrameSectionName, Type: elfx.SHTProgbits,
		Data: frameData, Addralign: 8,
	})
	out.AddSection(&elfx.Section{
		Name: dbg.SectionName, Type: elfx.SHTProgbits,
		Data: lineTab.Encode(), Addralign: 8,
	})

	// Symbols.
	for _, f := range ordered {
		bind := elfx.STBLocal
		if f.Global {
			bind = elfx.STBGlobal
		}
		out.Symbols = append(out.Symbols, elfx.Symbol{
			Name: f.Name, Value: funcAddr[f.Name], Size: uint64(len(f.Bytes)),
			Type: elfx.STTFunc, Bind: bind, Section: ".text",
		})
	}
	for folded, keptName := range aliases {
		out.Symbols = append(out.Symbols, elfx.Symbol{
			Name: folded, Value: funcAddr[keptName], Size: uint64(len(funcByName[keptName].Bytes)),
			Type: elfx.STTFunc, Bind: elfx.STBLocal, Section: ".text",
		})
	}
	for _, t := range pltTargets {
		out.Symbols = append(out.Symbols, elfx.Symbol{
			Name: t + "@plt", Value: pltStubAddr[t], Size: pltEntrySize,
			Type: elfx.STTFunc, Bind: elfx.STBLocal, Section: ".plt",
		})
	}
	for _, g := range globals {
		sect := ".rodata"
		if g.Writable {
			sect = ".data"
		}
		out.Symbols = append(out.Symbols, elfx.Symbol{
			Name: g.Name, Value: globalAddr[g.Name], Size: uint64(len(g.Data)),
			Type: elfx.STTObject, Bind: elfx.STBLocal, Section: sect,
		})
	}
	if opts.EmitRelocs {
		out.Relas[".text"] = textRelas
		if len(roRelas) > 0 {
			out.Relas[".rodata"] = roRelas
		}
		if len(rwRelas) > 0 {
			out.Relas[".data"] = rwRelas
		}
		if len(gotRelas) > 0 {
			out.Relas[".got"] = gotRelas
		}
	}
	return &Result{File: out, ICFFolded: folded, TextSize: textEnd - textBase}, nil
}

// orderFuncs applies the explicit ordering, keeping unlisted functions in
// input order afterwards.
func orderFuncs(funcs []*obj.Func, order []string) []*obj.Func {
	if len(order) == 0 {
		return funcs
	}
	byName := map[string]*obj.Func{}
	for _, f := range funcs {
		byName[f.Name] = f
	}
	var out []*obj.Func
	placed := map[string]bool{}
	for _, n := range order {
		if f, ok := byName[n]; ok && !placed[n] {
			out = append(out, f)
			placed[n] = true
		}
	}
	for _, f := range funcs {
		if !placed[f.Name] {
			out = append(out, f)
		}
	}
	return out
}

// Package layout implements basic-block ordering algorithms for the
// reorder-bbs pass (Table 1, pass 9): Pettis–Hansen bottom-up chaining
// and the "cache+" algorithm (an ext-TSP-style chain merger that scores
// fall-through and short-jump proximity), plus trivial baselines for
// ablation benchmarks.
package layout

import "sort"

// Algorithm selects a block-ordering strategy.
type Algorithm string

// Algorithms (flag values mirror the paper's -reorder-blocks options).
const (
	AlgoNone    Algorithm = "none"
	AlgoReverse Algorithm = "reverse"
	AlgoPH      Algorithm = "ph"     // Pettis-Hansen chains
	AlgoCache   Algorithm = "cache+" // ext-TSP-style
)

// Edge is a weighted CFG edge between block indices.
type Edge struct {
	From, To int
	Weight   uint64
}

// Graph is the layout problem: block 0 is the entry and must stay first.
type Graph struct {
	N      int
	Weight []uint64 // per-block execution counts
	Size   []int    // per-block byte sizes
	Edges  []Edge
}

// Reorder returns a permutation of 0..N-1 with 0 first.
func Reorder(g *Graph, algo Algorithm) []int {
	switch algo {
	case AlgoReverse:
		out := make([]int, 0, g.N)
		out = append(out, 0)
		for i := g.N - 1; i >= 1; i-- {
			out = append(out, i)
		}
		return out
	case AlgoPH:
		return chainLayout(g, false)
	case AlgoCache:
		return chainLayout(g, true)
	default:
		out := make([]int, g.N)
		for i := range out {
			out[i] = i
		}
		return out
	}
}

type chain struct {
	blocks []int
	size   int
}

// chainLayout builds chains by merging along heavy edges. In PH mode,
// merges happen in strict edge-weight order when endpoints match. In
// cache+ (ext-TSP-like) mode, merges are chosen by a proximity score that
// also rewards short forward jumps, iterating until no positive gain.
func chainLayout(g *Graph, extTSP bool) []int {
	chainOf := make([]*chain, g.N)
	for i := 0; i < g.N; i++ {
		sz := 1
		if i < len(g.Size) {
			sz = g.Size[i]
		}
		chainOf[i] = &chain{blocks: []int{i}, size: sz}
	}
	head := func(c *chain) int { return c.blocks[0] }
	tail := func(c *chain) int { return c.blocks[len(c.blocks)-1] }
	merge := func(a, b *chain) *chain {
		a.blocks = append(a.blocks, b.blocks...)
		a.size += b.size
		for _, blk := range b.blocks {
			chainOf[blk] = a
		}
		return a
	}

	edges := append([]Edge(nil), g.Edges...)
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].Weight > edges[j].Weight })

	if !extTSP {
		// Pettis-Hansen: one pass over edges by weight.
		for _, e := range edges {
			if e.From == e.To || e.Weight == 0 {
				continue
			}
			a, b := chainOf[e.From], chainOf[e.To]
			if a == b {
				continue
			}
			// Entry block must remain a chain head.
			if tail(a) == e.From && head(b) == e.To && head(b) != 0 {
				merge(a, b)
			}
		}
	} else {
		// cache+: iterate merges by score gain. The score of joining
		// chain A before chain B is the weight of edges that become
		// fall-throughs (tail(A)->head(B)) plus a distance-discounted
		// bonus for edges from anywhere in A to head(B).
		for {
			var bestA, bestB *chain
			var bestGain float64
			seen := map[*chain]bool{}
			var chains []*chain
			for i := 0; i < g.N; i++ {
				if c := chainOf[i]; !seen[c] {
					seen[c] = true
					chains = append(chains, c)
				}
			}
			if len(chains) <= 1 {
				break
			}
			// Index edges by (tailBlock, headBlock) pairs for scoring.
			for _, e := range edges {
				if e.Weight == 0 || e.From == e.To {
					continue
				}
				a, b := chainOf[e.From], chainOf[e.To]
				if a == b || head(b) == 0 {
					continue
				}
				var gain float64
				if tail(a) == e.From && head(b) == e.To {
					gain = float64(e.Weight) // perfect fall-through
				} else if head(b) == e.To {
					// Forward jump from inside A to the start of B:
					// discounted by how far the source sits from A's end.
					dist := 0
					found := false
					for i := len(a.blocks) - 1; i >= 0; i-- {
						if a.blocks[i] == e.From {
							found = true
							break
						}
						if i < len(g.Size) {
							dist += g.Size[a.blocks[i]]
						}
					}
					if found && dist < 1024 {
						gain = 0.1 * float64(e.Weight)
					}
				}
				if gain > bestGain {
					bestGain, bestA, bestB = gain, a, b
				}
			}
			if bestA == nil || bestGain <= 0 {
				break
			}
			merge(bestA, bestB)
		}
	}

	// Order chains: entry chain first, then by connection-weighted
	// hotness (total edge weight into placed chains, falling back to
	// chain execution weight).
	seen := map[*chain]bool{}
	var chains []*chain
	for i := 0; i < g.N; i++ {
		if c := chainOf[i]; !seen[c] {
			seen[c] = true
			chains = append(chains, c)
		}
	}
	weightOf := func(c *chain) uint64 {
		var w uint64
		for _, b := range c.blocks {
			if b < len(g.Weight) {
				w += g.Weight[b]
			}
		}
		return w
	}
	sort.SliceStable(chains, func(i, j int) bool {
		ci, cj := chains[i], chains[j]
		if (head(ci) == 0) != (head(cj) == 0) {
			return head(ci) == 0
		}
		return weightOf(ci) > weightOf(cj)
	})

	var out []int
	for _, c := range chains {
		out = append(out, c.blocks...)
	}
	return out
}

// Score evaluates an order with the ext-TSP objective: edge weight earns
// full credit on fall-through, partial credit for short forward jumps,
// and a sliver for short backward jumps. Used by tests and ablations.
func Score(g *Graph, order []int) float64 {
	pos := make([]int, g.N)
	offset := make([]int, g.N)
	off := 0
	for i, b := range order {
		pos[b] = i
		offset[b] = off
		if b < len(g.Size) {
			off += g.Size[b]
		}
	}
	var s float64
	for _, e := range g.Edges {
		if e.From == e.To {
			continue
		}
		srcEnd := offset[e.From]
		if e.From < len(g.Size) {
			srcEnd += g.Size[e.From]
		}
		dst := offset[e.To]
		dist := dst - srcEnd
		switch {
		case pos[e.To] == pos[e.From]+1:
			s += float64(e.Weight)
		case dist > 0 && dist < 1024:
			s += 0.1 * float64(e.Weight) * (1 - float64(dist)/1024)
		case dist < 0 && -dist < 640:
			s += 0.1 * float64(e.Weight) * (1 - float64(-dist)/640)
		}
	}
	return s
}

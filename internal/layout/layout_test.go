package layout

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// diamond returns a CFG: 0 -> {1 hot, 2 cold} -> 3.
func diamond() *Graph {
	return &Graph{
		N:      4,
		Weight: []uint64{100, 90, 10, 100},
		Size:   []int{16, 32, 64, 8},
		Edges: []Edge{
			{From: 0, To: 1, Weight: 90},
			{From: 0, To: 2, Weight: 10},
			{From: 1, To: 3, Weight: 90},
			{From: 2, To: 3, Weight: 10},
		},
	}
}

func validPermutation(t *testing.T, g *Graph, order []int) {
	t.Helper()
	if len(order) != g.N {
		t.Fatalf("order has %d entries, want %d", len(order), g.N)
	}
	if order[0] != 0 {
		t.Fatalf("entry block must stay first, got %v", order)
	}
	seen := make([]bool, g.N)
	for _, b := range order {
		if b < 0 || b >= g.N || seen[b] {
			t.Fatalf("invalid permutation %v", order)
		}
		seen[b] = true
	}
}

func TestAlgorithmsProduceValidPermutations(t *testing.T) {
	g := diamond()
	for _, algo := range []Algorithm{AlgoNone, AlgoReverse, AlgoPH, AlgoCache} {
		validPermutation(t, g, Reorder(g, algo))
	}
}

func TestHotPathFallsThrough(t *testing.T) {
	g := diamond()
	for _, algo := range []Algorithm{AlgoPH, AlgoCache} {
		order := Reorder(g, algo)
		pos := make([]int, g.N)
		for i, b := range order {
			pos[b] = i
		}
		// The hot chain 0 -> 1 -> 3 must be consecutive.
		if pos[1] != pos[0]+1 || pos[3] != pos[1]+1 {
			t.Errorf("%s: hot path not contiguous: %v", algo, order)
		}
		// And must beat the identity layout on the ext-TSP score.
		id := Reorder(g, AlgoNone)
		if Score(g, order) < Score(g, id) {
			t.Errorf("%s: score %f worse than identity %f", algo, Score(g, order), Score(g, id))
		}
	}
}

func TestLoopBody(t *testing.T) {
	// 0 -> 1 (head) -> 2 (body) -> 1, 1 -> 3 (exit).
	g := &Graph{
		N:      4,
		Weight: []uint64{10, 110, 100, 10},
		Size:   []int{8, 8, 24, 8},
		Edges: []Edge{
			{From: 0, To: 1, Weight: 10},
			{From: 1, To: 2, Weight: 100},
			{From: 2, To: 1, Weight: 100},
			{From: 1, To: 3, Weight: 10},
		},
	}
	order := Reorder(g, AlgoCache)
	pos := make([]int, g.N)
	for i, b := range order {
		pos[b] = i
	}
	if pos[2] != pos[1]+1 {
		t.Errorf("loop body must follow head: %v", order)
	}
}

func TestReorderProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	check := func() bool {
		n := 2 + r.Intn(20)
		g := &Graph{N: n}
		for i := 0; i < n; i++ {
			g.Weight = append(g.Weight, uint64(r.Intn(1000)))
			g.Size = append(g.Size, 4+r.Intn(120))
		}
		for i := 0; i < n*2; i++ {
			g.Edges = append(g.Edges, Edge{
				From: r.Intn(n), To: r.Intn(n), Weight: uint64(r.Intn(500)),
			})
		}
		for _, algo := range []Algorithm{AlgoPH, AlgoCache, AlgoReverse} {
			order := Reorder(g, algo)
			if len(order) != n || order[0] != 0 {
				return false
			}
			seen := map[int]bool{}
			for _, b := range order {
				if seen[b] {
					return false
				}
				seen[b] = true
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

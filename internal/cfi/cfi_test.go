package cfi

import (
	"testing"
)

// standardPrologue builds the CFI program for:
//
//	0: push %rbp        -> def_cfa_offset 16; offset rbp, -16
//	1: mov %rsp,%rbp    -> def_cfa_register rbp
//	4: push %rbx        -> offset rbx, -24
//	5: sub $0x10,%rsp
func standardPrologue() FDE {
	return FDE{
		Start: 0x400000,
		Len:   0x40,
		Insts: []PCInst{
			{PC: 1, Inst: Inst{Kind: OpDefCfaOffset, Off: 16}},
			{PC: 1, Inst: Inst{Kind: OpOffset, Reg: 6, Off: -16}},
			{PC: 4, Inst: Inst{Kind: OpDefCfaRegister, Reg: 6}},
			{PC: 5, Inst: Inst{Kind: OpOffset, Reg: 3, Off: -24}},
		},
	}
}

func TestEvaluate(t *testing.T) {
	f := standardPrologue()
	st, err := f.Evaluate(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.CfaReg != 4 || st.CfaOff != 8 || len(st.Saved) != 0 {
		t.Errorf("entry state wrong: %+v", st)
	}
	st, err = f.Evaluate(2)
	if err != nil {
		t.Fatal(err)
	}
	if st.CfaReg != 4 || st.CfaOff != 16 || st.Saved[6] != -16 {
		t.Errorf("state after push rbp wrong: %+v", st)
	}
	st, err = f.Evaluate(0x20)
	if err != nil {
		t.Fatal(err)
	}
	if st.CfaReg != 6 || st.CfaOff != 16 || st.Saved[3] != -24 || st.Saved[6] != -16 {
		t.Errorf("steady state wrong: %+v", st)
	}
}

func TestRememberRestore(t *testing.T) {
	f := FDE{
		Start: 0, Len: 0x100,
		Insts: []PCInst{
			{PC: 1, Inst: Inst{Kind: OpDefCfaOffset, Off: 16}},
			{PC: 8, Inst: Inst{Kind: OpRememberState}},
			{PC: 8, Inst: Inst{Kind: OpOffset, Reg: 3, Off: -24}},
			{PC: 8, Inst: Inst{Kind: OpDefCfaOffset, Off: 24}},
			{PC: 0x20, Inst: Inst{Kind: OpRestoreState}},
		},
	}
	st, _ := f.Evaluate(0x10)
	if st.CfaOff != 24 || st.Saved[3] != -24 {
		t.Errorf("inside region: %+v", st)
	}
	st, _ = f.Evaluate(0x30)
	if st.CfaOff != 16 || len(st.Saved) != 0 {
		t.Errorf("after restore: %+v", st)
	}
}

func TestRestoreStateUnderflow(t *testing.T) {
	f := FDE{Insts: []PCInst{{PC: 0, Inst: Inst{Kind: OpRestoreState}}}}
	if _, err := f.Evaluate(1); err == nil {
		t.Fatal("expected underflow error")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	fdes := []FDE{standardPrologue(), {Start: 0x400100, Len: 8, LSDA: 0x500000}}
	data := EncodeFrames(fdes)
	got, err := DecodeFrames(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d FDEs", len(got))
	}
	if got[0].Start != 0x400000 || len(got[0].Insts) != 4 || got[1].LSDA != 0x500000 {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if got[0].Insts[3].Inst.String() != "OpOffset Reg3 -24" {
		t.Errorf("inst formatting: %q", got[0].Insts[3].Inst.String())
	}
}

func TestFindFDE(t *testing.T) {
	fdes := []FDE{
		{Start: 0x1000, Len: 0x100},
		{Start: 0x2000, Len: 0x80},
		{Start: 0x3000, Len: 0x10},
	}
	data := EncodeFrames(fdes)
	sorted, _ := DecodeFrames(data)
	for _, tc := range []struct {
		addr uint64
		want uint64
		ok   bool
	}{
		{0x1000, 0x1000, true},
		{0x10FF, 0x1000, true},
		{0x1100, 0, false},
		{0x2040, 0x2000, true},
		{0x300F, 0x3000, true},
		{0x3010, 0, false},
		{0xFFF, 0, false},
	} {
		f, ok := FindFDE(sorted, tc.addr)
		if ok != tc.ok {
			t.Errorf("FindFDE(%#x): ok=%v want %v", tc.addr, ok, tc.ok)
			continue
		}
		if ok && f.Start != tc.want {
			t.Errorf("FindFDE(%#x) = %#x, want %#x", tc.addr, f.Start, tc.want)
		}
	}
}

func TestLSDARoundTrip(t *testing.T) {
	l := &LSDA{CallSites: []CallSite{
		{Start: 0x10, Len: 5, LandingPad: 0x400500, Action: 1},
		{Start: 0x20, Len: 5, LandingPad: 0, Action: 0},
	}}
	buf := []byte{0xEE} // existing content: offsets must be respected
	buf, off := EncodeLSDA(buf, l)
	got, err := DecodeLSDA(buf, off)
	if err != nil {
		t.Fatal(err)
	}
	lp, action, ok := got.Lookup(0x12)
	if !ok || lp != 0x400500 || action != 1 {
		t.Errorf("Lookup(0x12) = %#x, %d, %v", lp, action, ok)
	}
	if _, _, ok := got.Lookup(0x22); ok {
		t.Errorf("zero landing pad must report no handler")
	}
	if _, _, ok := got.Lookup(0x100); ok {
		t.Errorf("outside ranges must report no handler")
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := DecodeFrames([]byte{1, 2}); err == nil {
		t.Error("short frame section accepted")
	}
	if _, err := DecodeFrames([]byte{5, 0, 0, 0, 1}); err == nil {
		t.Error("truncated FDE accepted")
	}
	if _, err := DecodeLSDA([]byte{1}, 0); err == nil {
		t.Error("truncated LSDA accepted")
	}
	if _, err := DecodeLSDA([]byte{255, 0, 0, 0}, 0); err == nil {
		t.Error("oversized LSDA accepted")
	}
}

// Package cfi models call-frame information and exception tables.
//
// It plays the role DWARF CFI and the Itanium-ABI LSDA play in the paper
// (§3.4): every function carries a little program describing, per code
// offset, how to compute the canonical frame address (CFA) and where
// callee-saved registers were spilled; functions with exception handlers
// additionally carry a call-site table mapping call instructions to landing
// pads. The binary encoding here is our own compact format rather than
// DWARF byte-exact (see DESIGN.md substitution table), but it is
// *load-bearing*: the VM's unwinder evaluates these records at runtime, so
// a rewriter that fails to update them breaks exception tests.
package cfi

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// OpKind enumerates CFI instruction kinds (names follow DWARF).
type OpKind uint8

// CFI instruction kinds.
const (
	OpDefCfa         OpKind = iota // CFA = Reg + Off
	OpDefCfaRegister               // CFA register changes to Reg
	OpDefCfaOffset                 // CFA offset changes to Off
	OpOffset                       // Reg is saved at CFA + Off
	OpRestore                      // Reg is no longer saved
	OpRememberState                // push current state
	OpRestoreState                 // pop to remembered state
)

var opKindNames = [...]string{
	"OpDefCfa", "OpDefCfaRegister", "OpDefCfaOffset",
	"OpOffset", "OpRestore", "OpRememberState", "OpRestoreState",
}

func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("OpKind(%d)", k)
}

// Inst is a single CFI instruction.
type Inst struct {
	Kind OpKind
	Reg  uint8 // register number in isa encoding (6 = rbp, 7 = rsp is 4... we use isa values)
	Off  int32
}

// String renders the instruction in the style of the paper's Figure 4,
// e.g. "OpDefCfaOffset -16" or "OpOffset Reg6 -16".
func (in Inst) String() string {
	switch in.Kind {
	case OpDefCfa:
		return fmt.Sprintf("OpDefCfa Reg%d %d", in.Reg, in.Off)
	case OpDefCfaRegister:
		return fmt.Sprintf("OpDefCfaRegister Reg%d", in.Reg)
	case OpDefCfaOffset:
		return fmt.Sprintf("OpDefCfaOffset %d", in.Off)
	case OpOffset:
		return fmt.Sprintf("OpOffset Reg%d %d", in.Reg, in.Off)
	case OpRestore:
		return fmt.Sprintf("OpRestore Reg%d", in.Reg)
	case OpRememberState:
		return "OpRememberState"
	case OpRestoreState:
		return "OpRestoreState"
	}
	return "OpUnknown"
}

// PCInst attaches a CFI instruction to a code offset within its function.
type PCInst struct {
	PC   uint32 // offset from function start; the instruction takes effect *at* this offset
	Inst Inst
}

// FDE is the frame description entry for one function (or function
// fragment, after hot/cold splitting).
type FDE struct {
	Start uint64 // absolute start address
	Len   uint32 // code length covered
	LSDA  uint64 // absolute address of the LSDA record, 0 if none
	Insts []PCInst
}

// State is the evaluated unwind state at some program counter.
type State struct {
	CfaReg uint8
	CfaOff int32
	// Saved maps register -> offset from CFA where its old value lives.
	Saved map[uint8]int32
}

func (s *State) clone() State {
	m := make(map[uint8]int32, len(s.Saved))
	for k, v := range s.Saved {
		m[k] = v
	}
	return State{CfaReg: s.CfaReg, CfaOff: s.CfaOff, Saved: m}
}

// InitialState is the ABI-defined state at function entry: CFA = rsp + 8
// (the call pushed the return address), nothing saved yet.
func InitialState() State {
	return State{CfaReg: 4 /* rsp */, CfaOff: 8, Saved: map[uint8]int32{}}
}

// Evaluate replays the FDE's CFI program up to (and including) code offset
// pc and returns the unwind state there.
func (f *FDE) Evaluate(pc uint32) (State, error) {
	st := InitialState()
	var stack []State
	for _, pi := range f.Insts {
		if pi.PC > pc {
			break
		}
		switch pi.Inst.Kind {
		case OpDefCfa:
			st.CfaReg, st.CfaOff = pi.Inst.Reg, pi.Inst.Off
		case OpDefCfaRegister:
			st.CfaReg = pi.Inst.Reg
		case OpDefCfaOffset:
			st.CfaOff = pi.Inst.Off
		case OpOffset:
			st.Saved[pi.Inst.Reg] = pi.Inst.Off
		case OpRestore:
			delete(st.Saved, pi.Inst.Reg)
		case OpRememberState:
			stack = append(stack, st.clone())
		case OpRestoreState:
			if len(stack) == 0 {
				return st, fmt.Errorf("cfi: restore_state with empty stack at pc %#x", pc)
			}
			st = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		}
	}
	return st, nil
}

// --- Binary encoding of the frame table (.eh_frame analogue) ---

const fdeInstSize = 12 // pc u32, kind u8, reg u8, pad u16, off i32

// EncodeFrames serializes FDEs to a frame section payload.
func EncodeFrames(fdes []FDE) []byte {
	sorted := make([]FDE, len(fdes))
	copy(sorted, fdes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(sorted)))
	for _, f := range sorted {
		buf = binary.LittleEndian.AppendUint64(buf, f.Start)
		buf = binary.LittleEndian.AppendUint32(buf, f.Len)
		buf = binary.LittleEndian.AppendUint64(buf, f.LSDA)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.Insts)))
		for _, pi := range f.Insts {
			buf = binary.LittleEndian.AppendUint32(buf, pi.PC)
			buf = append(buf, byte(pi.Inst.Kind), pi.Inst.Reg, 0, 0)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(pi.Inst.Off))
		}
	}
	return buf
}

// DecodeFrames parses a frame section payload.
func DecodeFrames(data []byte) ([]FDE, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("cfi: frame section too short")
	}
	n := binary.LittleEndian.Uint32(data)
	p := 4
	fdes := make([]FDE, 0, n)
	for i := uint32(0); i < n; i++ {
		if p+24 > len(data) {
			return nil, fmt.Errorf("cfi: truncated FDE header")
		}
		var f FDE
		f.Start = binary.LittleEndian.Uint64(data[p:])
		f.Len = binary.LittleEndian.Uint32(data[p+8:])
		f.LSDA = binary.LittleEndian.Uint64(data[p+12:])
		cnt := binary.LittleEndian.Uint32(data[p+20:])
		p += 24
		if p+int(cnt)*fdeInstSize > len(data) {
			return nil, fmt.Errorf("cfi: truncated FDE body")
		}
		f.Insts = make([]PCInst, cnt)
		for j := uint32(0); j < cnt; j++ {
			f.Insts[j] = PCInst{
				PC: binary.LittleEndian.Uint32(data[p:]),
				Inst: Inst{
					Kind: OpKind(data[p+4]),
					Reg:  data[p+5],
					Off:  int32(binary.LittleEndian.Uint32(data[p+8:])),
				},
			}
			p += fdeInstSize
		}
		fdes = append(fdes, f)
	}
	return fdes, nil
}

// FindFDE returns the FDE covering the absolute address addr.
func FindFDE(fdes []FDE, addr uint64) (*FDE, bool) {
	// fdes are sorted by Start.
	lo, hi := 0, len(fdes)
	for lo < hi {
		mid := (lo + hi) / 2
		if fdes[mid].Start <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil, false
	}
	f := &fdes[lo-1]
	if addr >= f.Start+uint64(f.Len) {
		return nil, false
	}
	return f, true
}

// --- LSDA (exception call-site table, .gcc_except_table analogue) ---

// CallSite maps a code range (offsets from the *fragment* start) to a
// landing pad. Landing pads are absolute addresses so that split-function
// fragments can point into one another (-split-eh).
type CallSite struct {
	Start      uint32 // code offset of the region start
	Len        uint32
	LandingPad uint64 // absolute address; 0 = unwind continues past this frame
	Action     int32  // 0 = cleanup, 1 = catch-all (paper Fig 4 "action: 1")
}

// LSDA is one function's exception table record.
type LSDA struct {
	CallSites []CallSite
}

const callSiteSize = 20

// EncodeLSDA appends the record to buf and returns the new buffer and the
// record's offset within it.
func EncodeLSDA(buf []byte, l *LSDA) ([]byte, uint32) {
	off := uint32(len(buf))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(l.CallSites)))
	for _, cs := range l.CallSites {
		buf = binary.LittleEndian.AppendUint32(buf, cs.Start)
		buf = binary.LittleEndian.AppendUint32(buf, cs.Len)
		buf = binary.LittleEndian.AppendUint64(buf, cs.LandingPad)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(cs.Action))
	}
	return buf, off
}

// DecodeLSDA parses the record at offset off in the section payload.
func DecodeLSDA(data []byte, off uint32) (*LSDA, error) {
	if int(off)+4 > len(data) {
		return nil, fmt.Errorf("cfi: LSDA offset %#x out of range", off)
	}
	n := binary.LittleEndian.Uint32(data[off:])
	p := int(off) + 4
	if p+int(n)*callSiteSize > len(data) {
		return nil, fmt.Errorf("cfi: truncated LSDA")
	}
	l := &LSDA{CallSites: make([]CallSite, n)}
	for i := uint32(0); i < n; i++ {
		l.CallSites[i] = CallSite{
			Start:      binary.LittleEndian.Uint32(data[p:]),
			Len:        binary.LittleEndian.Uint32(data[p+4:]),
			LandingPad: binary.LittleEndian.Uint64(data[p+8:]),
			Action:     int32(binary.LittleEndian.Uint32(data[p+16:])),
		}
		p += callSiteSize
	}
	return l, nil
}

// Lookup returns the landing pad for a return address at code offset pc
// (offset from fragment start), or 0 if the range has no handler.
func (l *LSDA) Lookup(pc uint32) (uint64, int32, bool) {
	for _, cs := range l.CallSites {
		if pc >= cs.Start && pc < cs.Start+cs.Len {
			return cs.LandingPad, cs.Action, cs.LandingPad != 0
		}
	}
	return 0, 0, false
}

// Section names used across the toolchain.
const (
	FrameSectionName = ".eh_frame"
	LSDASectionName  = ".gcc_except_table"
)

// StateDiff returns the CFI instructions that transform state `from` into
// state `to`. Code emitters use it to splice correct unwind info between
// arbitrarily reordered blocks instead of replaying prologue history.
func StateDiff(from, to *State) []Inst {
	var out []Inst
	if from.CfaReg != to.CfaReg || from.CfaOff != to.CfaOff {
		out = append(out, Inst{Kind: OpDefCfa, Reg: to.CfaReg, Off: to.CfaOff})
	}
	// Deterministic order: restores then offsets, by register number.
	for r := uint8(0); r < 17; r++ {
		if _, had := from.Saved[r]; had {
			if _, has := to.Saved[r]; !has {
				out = append(out, Inst{Kind: OpRestore, Reg: r})
			}
		}
	}
	for r := uint8(0); r < 17; r++ {
		off, has := to.Saved[r]
		if !has {
			continue
		}
		if old, had := from.Saved[r]; !had || old != off {
			out = append(out, Inst{Kind: OpOffset, Reg: r, Off: off})
		}
	}
	return out
}

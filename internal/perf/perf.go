// Package perf is the sampling profiler: the stand-in for `perf record`
// plus the hardware PMU. It interrupts the VM every sampling period,
// reads either the LBR ring (LBR mode) or the interrupted PC (non-LBR
// mode), and aggregates raw address-level data; Convert symbolizes it into
// an fdata profile the way perf2bolt does.
//
// The model reproduces the §5.1 phenomenology: non-LBR samples suffer
// event-dependent skid (the recorded PC trails the event by several
// instructions, with "cycles" worst and PEBS reducing it), while LBR
// records are exact regardless of where the sample lands — which is why
// the paper finds LBR profiles robust across sampling events.
package perf

import (
	"fmt"

	"gobolt/internal/elfx"
	"gobolt/internal/profile"
	"gobolt/internal/vm"
)

// Event is a hardware sampling event.
type Event string

// Supported events.
const (
	EventCycles       Event = "cycles"
	EventInstructions Event = "instructions"
	EventBranches     Event = "branches"
)

// Mode configures sampling.
type Mode struct {
	LBR    bool
	Event  Event
	Period uint64 // instructions between samples
	// PEBS is the precise-event level 0..3; higher levels shrink skid.
	PEBS int
}

// DefaultMode mirrors `perf record -e cycles:u -j any,u` (paper §6.2.1).
func DefaultMode() Mode { return Mode{LBR: true, Event: EventCycles, Period: 4096} }

// branchCount aggregates one (from,to) pair.
type branchCount struct {
	Count    uint64
	Mispreds uint64
}

// Raw is address-level aggregated sample data.
type Raw struct {
	LBR        bool
	Event      Event
	Branches   map[[2]uint64]*branchCount
	Samples    map[uint64]uint64
	NumSamples uint64
	Retired    uint64
}

// Record runs the machine to completion (or maxInstr), sampling per mode.
func Record(m *vm.Machine, mode Mode, maxInstr uint64) (*Raw, error) {
	if mode.Period == 0 {
		mode.Period = 4096
	}
	raw := &Raw{
		LBR:      mode.LBR,
		Event:    mode.Event,
		Branches: map[[2]uint64]*branchCount{},
		Samples:  map[uint64]uint64{},
	}
	rng := uint64(0x9E3779B97F4A7C15)
	nextRand := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	start := m.C.Instructions
	for !m.Halted() {
		if maxInstr > 0 && m.C.Instructions-start >= maxInstr {
			break
		}
		// Small deterministic jitter avoids lockstep with loop periods.
		jitter := nextRand() % (mode.Period/16 + 1)
		if _, err := m.Run(mode.Period + jitter); err != nil {
			return nil, err
		}
		if m.Halted() {
			break
		}
		// Event-dependent skid: the PMU fires late by a few instructions.
		skid := uint64(0)
		switch mode.Event {
		case EventCycles:
			skid = 4 + nextRand()%24
		case EventInstructions:
			skid = 1 + nextRand()%3
		case EventBranches:
			// Branch events are attributed near branch retirement: drift
			// to just past the next taken branch.
			before := m.C.TakenBranch
			for i := 0; i < 32 && m.C.TakenBranch == before && !m.Halted(); i++ {
				if _, err := m.Run(1); err != nil {
					return nil, err
				}
			}
		}
		skid >>= uint(mode.PEBS)
		if skid > 0 {
			if _, err := m.Run(skid); err != nil {
				return nil, err
			}
		}
		if m.Halted() {
			break
		}
		raw.NumSamples++
		if mode.LBR {
			// LBR contents are exact history: skid does not corrupt them.
			for _, r := range m.LBR() {
				key := [2]uint64{r.From, r.To}
				e := raw.Branches[key]
				if e == nil {
					e = &branchCount{}
					raw.Branches[key] = e
				}
				e.Count++
				if r.Mispred {
					e.Mispreds++
				}
			}
		} else {
			raw.Samples[m.RIP()]++
		}
	}
	raw.Retired = m.C.Instructions - start
	return raw, nil
}

// Convert symbolizes raw data against the binary's symbol table — the
// perf2bolt step. Addresses not covered by any function symbol (stale
// padding, PLT-less stubs) are dropped, as perf2bolt drops them.
func Convert(raw *Raw, f *elfx.File) *profile.Fdata {
	b := profile.NewBuilder(raw.LBR, string(raw.Event))
	locate := func(addr uint64) (profile.Loc, bool) {
		sym, ok := f.SymbolAt(addr)
		if !ok {
			return profile.Loc{}, false
		}
		return profile.Loc{Sym: sym.Name, Off: addr - sym.Value}, true
	}
	for key, e := range raw.Branches {
		from, ok1 := locate(key[0])
		to, ok2 := locate(key[1])
		if !ok1 || !ok2 {
			continue
		}
		b.AddBranchN(from, to, e.Count, e.Mispreds)
	}
	for addr, c := range raw.Samples {
		if at, ok := locate(addr); ok {
			b.AddSampleN(at, c)
		}
	}
	return b.Build()
}

// RecordFile is a convenience wrapper: load, sample, symbolize.
func RecordFile(f *elfx.File, mode Mode, maxInstr uint64) (*profile.Fdata, *vm.Machine, error) {
	m, err := vm.New(f)
	if err != nil {
		return nil, nil, err
	}
	raw, err := Record(m, mode, maxInstr)
	if err != nil {
		return nil, nil, fmt.Errorf("perf: %w", err)
	}
	return Convert(raw, f), m, nil
}

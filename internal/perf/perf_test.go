package perf

import (
	"testing"

	"gobolt/internal/cc"
	"gobolt/internal/ir"
	"gobolt/internal/isa"
	"gobolt/internal/ld"
	"gobolt/internal/vm"
)

// loopBinary builds a program with one heavily biased branch in a loop.
func loopBinary(t *testing.T) *ldResult {
	t.Helper()
	f := ir.NewFunc("_start", "m.mir", 1)
	f.SavedRegs = []isa.Reg{isa.RBX}
	loop := f.AddBlock()
	hot := f.AddBlock()
	cold := f.AddBlock()
	latch := f.AddBlock()
	exit := f.AddBlock()
	f.Blocks[0].Ops = []ir.Op{
		{Kind: ir.OpMovImm, Dst: isa.RBX, Imm: 0},
		{Kind: ir.OpMovImm, Dst: isa.RSI, Imm: 0},
	}
	f.Blocks[0].Term = ir.Term{Kind: ir.TermJump, Then: loop.Index}
	loop.Ops = []ir.Op{
		{Kind: ir.OpMov, Dst: isa.RAX, Src: isa.RSI},
		{Kind: ir.OpAndImm, Dst: isa.RAX, Imm: 15},
	}
	loop.Term = ir.Term{Kind: ir.TermBranch, Cc: isa.CondNE, CmpReg: isa.RAX, CmpImm: 0,
		Then: hot.Index, Else: cold.Index} // hot 15/16 of the time
	hot.Ops = []ir.Op{{Kind: ir.OpAddImm, Dst: isa.RBX, Imm: 1}}
	hot.Term = ir.Term{Kind: ir.TermJump, Then: latch.Index}
	cold.Ops = []ir.Op{{Kind: ir.OpAddImm, Dst: isa.RBX, Imm: 100}}
	cold.Term = ir.Term{Kind: ir.TermJump, Then: latch.Index}
	latch.Ops = []ir.Op{{Kind: ir.OpAddImm, Dst: isa.RSI, Imm: 1}}
	latch.Term = ir.Term{Kind: ir.TermBranch, Cc: isa.CondL, CmpReg: isa.RSI, CmpImm: 100000,
		Then: loop.Index, Else: exit.Index}
	exit.Ops = []ir.Op{{Kind: ir.OpMov, Dst: isa.RAX, Src: isa.RBX}}
	exit.Term = ir.Term{Kind: ir.TermExit}
	p := &ir.Program{Modules: []*ir.Module{{Name: "m", Funcs: []*ir.Func{f}}}}
	objs, err := cc.Compile(p, cc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ld.Link(objs, ld.Options{EmitRelocs: true})
	if err != nil {
		t.Fatal(err)
	}
	return &ldResult{res}
}

type ldResult struct{ *ld.Result }

func TestLBRProfileCapturesBias(t *testing.T) {
	bin := loopBinary(t)
	fd, m, err := RecordFile(bin.File, Mode{LBR: true, Event: EventCycles, Period: 512}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Halted() {
		t.Fatal("did not halt")
	}
	if !fd.LBR || len(fd.Branches) == 0 {
		t.Fatal("no LBR records")
	}
	// The backward latch branch (hottest taken branch) must dominate.
	var maxCount uint64
	for _, b := range fd.Branches {
		if b.Count > maxCount {
			maxCount = b.Count
		}
	}
	if maxCount < 1000 {
		t.Fatalf("expected heavy branch counts, max %d", maxCount)
	}
}

func TestNonLBRProfileSamplesPCs(t *testing.T) {
	bin := loopBinary(t)
	fd, _, err := RecordFile(bin.File, Mode{LBR: false, Event: EventCycles, Period: 256}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fd.LBR || len(fd.Samples) == 0 {
		t.Fatalf("no PC samples: %+v", fd)
	}
	var total uint64
	for _, s := range fd.Samples {
		if s.At.Sym != "_start" {
			t.Fatalf("sample outside _start: %+v", s)
		}
		total += s.Count
	}
	if total < 100 {
		t.Fatalf("too few samples: %d", total)
	}
}

func TestEventSkidDiffers(t *testing.T) {
	// Non-LBR cycles samples are skewed by skid; instructions samples
	// less so. The distributions must differ.
	sample := func(event Event) map[uint64]uint64 {
		bin := loopBinary(t)
		m, err := vm.New(bin.File)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := Record(m, Mode{LBR: false, Event: event, Period: 256}, 0)
		if err != nil {
			t.Fatal(err)
		}
		return raw.Samples
	}
	cy := sample(EventCycles)
	in := sample(EventInstructions)
	same := true
	for pc, c := range cy {
		if in[pc] != c {
			same = false
			break
		}
	}
	if same && len(cy) == len(in) {
		t.Fatal("cycles and instructions samples identical — skid model inert")
	}
}

func TestDeterministicProfiles(t *testing.T) {
	bin := loopBinary(t)
	fd1, _, err := RecordFile(bin.File, DefaultMode(), 0)
	if err != nil {
		t.Fatal(err)
	}
	bin2 := loopBinary(t)
	fd2, _, err := RecordFile(bin2.File, DefaultMode(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fd1.Branches) != len(fd2.Branches) {
		t.Fatalf("non-deterministic profile: %d vs %d records", len(fd1.Branches), len(fd2.Branches))
	}
	for i := range fd1.Branches {
		if fd1.Branches[i] != fd2.Branches[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

// Package dbg implements the toolchain's debug line table: a mapping from
// code addresses to source file/line, stored in a ".debug_line" section.
// gobolt reads it to annotate CFG dumps with source origins (paper Fig 4,
// Fig 10) and rewrites it after moving code (-update-debug-sections).
package dbg

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Entry maps the code at [Addr, nextEntry.Addr) to File:Line.
type Entry struct {
	Addr uint64
	File uint32 // index into Table.Files
	Line uint32
}

// Table is a complete line table.
type Table struct {
	Files   []string
	Entries []Entry // sorted by Addr
}

// SectionName is where the table lives in linked binaries.
const SectionName = ".debug_line"

// FileIndex interns a file name and returns its index.
func (t *Table) FileIndex(name string) uint32 {
	for i, f := range t.Files {
		if f == name {
			return uint32(i)
		}
	}
	t.Files = append(t.Files, name)
	return uint32(len(t.Files) - 1)
}

// Add appends an entry (call in any order; Sort before Encode/Lookup).
func (t *Table) Add(addr uint64, file string, line uint32) {
	t.Entries = append(t.Entries, Entry{Addr: addr, File: t.FileIndex(file), Line: line})
}

// Sort orders entries by address and drops consecutive duplicates.
func (t *Table) Sort() {
	sort.Slice(t.Entries, func(i, j int) bool { return t.Entries[i].Addr < t.Entries[j].Addr })
	out := t.Entries[:0]
	for _, e := range t.Entries {
		if n := len(out); n > 0 && out[n-1].File == e.File && out[n-1].Line == e.Line {
			continue
		} else if n > 0 && out[n-1].Addr == e.Addr {
			out[n-1] = e
			continue
		}
		out = append(out, e)
	}
	t.Entries = out
}

// Lookup returns the source position covering addr.
func (t *Table) Lookup(addr uint64) (file string, line uint32, ok bool) {
	i := sort.Search(len(t.Entries), func(i int) bool { return t.Entries[i].Addr > addr })
	if i == 0 {
		return "", 0, false
	}
	e := t.Entries[i-1]
	if int(e.File) >= len(t.Files) {
		return "", 0, false
	}
	return t.Files[e.File], e.Line, true
}

// Encode serializes the table.
func (t *Table) Encode() []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(t.Files)))
	for _, f := range t.Files {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f)))
		buf = append(buf, f...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.Entries)))
	for _, e := range t.Entries {
		buf = binary.LittleEndian.AppendUint64(buf, e.Addr)
		buf = binary.LittleEndian.AppendUint32(buf, e.File)
		buf = binary.LittleEndian.AppendUint32(buf, e.Line)
	}
	return buf
}

// Decode parses a table produced by Encode.
func Decode(data []byte) (*Table, error) {
	t := &Table{}
	if len(data) < 4 {
		return nil, fmt.Errorf("dbg: truncated header")
	}
	nf := binary.LittleEndian.Uint32(data)
	p := 4
	for i := uint32(0); i < nf; i++ {
		if p+4 > len(data) {
			return nil, fmt.Errorf("dbg: truncated file table")
		}
		l := int(binary.LittleEndian.Uint32(data[p:]))
		p += 4
		if p+l > len(data) {
			return nil, fmt.Errorf("dbg: truncated file name")
		}
		t.Files = append(t.Files, string(data[p:p+l]))
		p += l
	}
	if p+4 > len(data) {
		return nil, fmt.Errorf("dbg: truncated entry count")
	}
	ne := binary.LittleEndian.Uint32(data[p:])
	p += 4
	for i := uint32(0); i < ne; i++ {
		if p+16 > len(data) {
			return nil, fmt.Errorf("dbg: truncated entries")
		}
		t.Entries = append(t.Entries, Entry{
			Addr: binary.LittleEndian.Uint64(data[p:]),
			File: binary.LittleEndian.Uint32(data[p+8:]),
			Line: binary.LittleEndian.Uint32(data[p+12:]),
		})
		p += 16
	}
	return t, nil
}

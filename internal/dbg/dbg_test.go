package dbg

import "testing"

func TestRoundTripAndLookup(t *testing.T) {
	tab := &Table{}
	tab.Add(0x401000, "a.mir", 10)
	tab.Add(0x401010, "a.mir", 12)
	tab.Add(0x402000, "b.mir", 3)
	tab.Sort()
	data := tab.Encode()
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if f, l, ok := got.Lookup(0x401008); !ok || f != "a.mir" || l != 10 {
		t.Errorf("Lookup mid-range: %q %d %v", f, l, ok)
	}
	if f, l, ok := got.Lookup(0x402500); !ok || f != "b.mir" || l != 3 {
		t.Errorf("Lookup last entry: %q %d %v", f, l, ok)
	}
	if _, _, ok := got.Lookup(0x400000); ok {
		t.Error("address before first entry must miss")
	}
}

func TestSortDedups(t *testing.T) {
	tab := &Table{}
	tab.Add(0x10, "f", 1)
	tab.Add(0x20, "f", 1) // same file/line: dropped
	tab.Add(0x30, "f", 2)
	tab.Sort()
	if len(tab.Entries) != 2 {
		t.Fatalf("dedup failed: %+v", tab.Entries)
	}
}

func TestDecodeGarbage(t *testing.T) {
	for _, b := range [][]byte{{}, {1}, {1, 0, 0, 0, 5}, {0, 0, 0, 0, 9, 0, 0, 0}} {
		if _, err := Decode(b); err == nil {
			t.Errorf("Decode(% x) accepted garbage", b)
		}
	}
}

package workload

import (
	"testing"

	"gobolt/internal/cc"
	"gobolt/internal/ld"
	"gobolt/internal/vm"
)

func buildSpec(t *testing.T, spec Spec) uint64 {
	t.Helper()
	p := Generate(spec)
	if err := p.Validate(); err != nil {
		t.Fatalf("%s: invalid program: %v", spec.Name, err)
	}
	objs, err := cc.Compile(p, cc.DefaultOptions())
	if err != nil {
		t.Fatalf("%s: compile: %v", spec.Name, err)
	}
	res, err := ld.Link(objs, ld.Options{EmitRelocs: true})
	if err != nil {
		t.Fatalf("%s: link: %v", spec.Name, err)
	}
	m, err := vm.New(res.File)
	if err != nil {
		t.Fatalf("%s: load: %v", spec.Name, err)
	}
	if _, err := m.Run(500_000_000); err != nil {
		t.Fatalf("%s: run: %v", spec.Name, err)
	}
	if !m.Halted() {
		t.Fatalf("%s: did not halt", spec.Name)
	}
	return m.Result()
}

func TestTinyDeterministic(t *testing.T) {
	a := buildSpec(t, Tiny())
	b := buildSpec(t, Tiny())
	if a != b {
		t.Fatalf("non-deterministic checksum: %d vs %d", a, b)
	}
	if a == 0 {
		t.Fatal("zero checksum is suspicious")
	}
}

func TestTinyDifferentSeedsDiffer(t *testing.T) {
	s1 := Tiny()
	s2 := Tiny()
	s2.Seed = 43
	if buildSpec(t, s1) == buildSpec(t, s2) {
		t.Fatal("different seeds produced the same checksum")
	}
}

func TestFigure2Runs(t *testing.T) {
	p := GenerateFigure2()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	objs, err := cc.Compile(p, cc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ld.Link(objs, ld.Options{EmitRelocs: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(res.File)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if m.C.Branches == 0 {
		t.Fatal("no branches executed")
	}
}

func TestPresetsGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("preset generation is slow in -short mode")
	}
	for _, name := range []string{"tao", "proxygen", "multifeed2"} {
		spec, ok := ByName(name)
		if !ok {
			t.Fatalf("missing preset %s", name)
		}
		spec.Iterations = 500 // keep the runtime modest in tests
		if got := buildSpec(t, spec); got == 0 {
			t.Errorf("%s: zero checksum", name)
		}
	}
}

// Package workload generates the synthetic programs standing in for the
// paper's evaluation subjects: the Facebook services of §6.1 (HHVM, TAO,
// Proxygen, Multifeed) and the Clang/GCC compilers of §6.2. The
// generators are seeded and deterministic; each preset dials the knobs
// that drive code-layout behaviour — binary size, Zipfian function
// hotness, branch bias, jump-table dispatch, exception paths, duplicate
// function families, shared-library calls, and the indirect tail calls
// that force gobolt to leave functions untouched (§6.4).
package workload

import (
	"fmt"
	"math"

	"gobolt/internal/ir"
	"gobolt/internal/isa"
)

// Spec parameterizes one synthetic application.
type Spec struct {
	Name string
	Seed uint64
	// InputSeed varies the *input data* (the bytes driving branches and
	// dispatch) without changing the program structure: the paper trains
	// on one input and evaluates on others (§6.2). 0 means derive from
	// Seed.
	InputSeed uint64

	Modules        int
	FuncsPerModule int
	SharedFuncs    int // simulated shared-library leaves (PLT targets)
	Layers         int // call-graph depth below the dispatcher

	// ZipfS is the hotness skew (larger = hotter heads).
	ZipfS float64
	// DispatchSlots is the dispatcher jump-table size.
	DispatchSlots int

	// Per-function shape.
	SegmentsMin, SegmentsMax int // branchy segments per function
	// LoopFrac is the probability a hot segment carries an inner counted
	// loop (2..9 trips). Loops concentrate fetch heat into a minority of
	// bytes — the skew that makes code layout pay off.
	LoopFrac float64
	ColdProb float64 // probability mass of cold side branches
	// ColdOpsMin/Max size the cold-side filler (error formatting,
	// diagnostics, cleanup — the inline cold bulk that makes data-center
	// functions big and sparse; splitting it out is where the I-cache
	// and I-TLB wins come from).
	ColdOpsMin, ColdOpsMax int
	ThrowFrac              float64 // fraction of cold paths that throw
	JumpTableFrac          float64 // fraction of functions with a switch
	PICFrac                float64 // fraction of jump tables that are PIC
	IndirectCallFrac       float64 // fraction of functions doing an indirect call
	SpillFrac              float64 // fraction of calls with a redundant spill
	RepzRetFrac            float64
	ShrinkWrapFrac         float64 // fraction of leaf-callers with a cold-only callee-saved reg

	// DupFamilies x DupSize identical functions (ICF material); half get
	// jump tables so the linker cannot fold them.
	DupFamilies, DupSize int

	// IndirectTailFrac of functions end in an indirect tail call and
	// become non-simple.
	IndirectTailFrac float64

	// EntryPadOps prepends this many semantically neutral instructions to
	// every application function's entry block — modeling a new release
	// that grew prologue instrumentation. All block offsets below the
	// entry shift, so a profile recorded on the unpadded build goes stale
	// (its (function, offset) pairs stop resolving) while the opcode
	// sequences of the unchanged blocks stay matchable. The continuous
	// profiling experiment uses this as its version-skew lever.
	EntryPadOps int

	Iterations int
	InputSize  int
}

// internal generator state follows.
//
// rng is a splitmix64-ish deterministic generator.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

func (r *rng) chance(p float64) bool { return r.float() < p }

// InputBytes deterministically generates the input-data blob for a seed.
// The experiment harness uses it to swap evaluation inputs into an
// already-built (or already-BOLTed) binary without relinking.
func InputBytes(seed uint64, n int) []byte {
	r := rng{s: seed}
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.next())
	}
	return b
}

// zipfWeights returns n weights following a Zipf(s) distribution.
func zipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// Generate builds the program for a spec.
func Generate(spec Spec) *ir.Program {
	g := &generator{spec: spec, r: rng{s: spec.Seed}}
	return g.run()
}

type generator struct {
	spec Spec
	r    rng

	prog      *ir.Program
	modules   []*ir.Module
	shared    *ir.Module
	funcNames [][]string // per layer
	lineNo    int32
	input     []byte
	fptabs    []string
}

func (g *generator) nextLine() int32 {
	g.lineNo += 3
	return g.lineNo
}

func (g *generator) run() *ir.Program {
	s := &g.spec
	if s.Modules == 0 {
		s.Modules = 4
	}
	if s.FuncsPerModule == 0 {
		s.FuncsPerModule = 50
	}
	if s.Layers == 0 {
		s.Layers = 3
	}
	if s.DispatchSlots == 0 {
		s.DispatchSlots = 64
	}
	if s.SegmentsMax == 0 {
		s.SegmentsMin, s.SegmentsMax = 1, 3
	}
	if s.InputSize == 0 {
		s.InputSize = 1 << 14
	}
	if s.Iterations == 0 {
		s.Iterations = 20000
	}

	g.prog = &ir.Program{}
	inputSeed := s.InputSeed
	if inputSeed == 0 {
		inputSeed = s.Seed ^ 0xDA7A5EED
	}
	g.input = InputBytes(inputSeed, s.InputSize)
	g.prog.Globals = append(g.prog.Globals, &ir.Global{Name: "input", Data: g.input, Align: 8})

	for m := 0; m < s.Modules; m++ {
		g.modules = append(g.modules, &ir.Module{Name: fmt.Sprintf("mod%d", m)})
	}
	g.prog.Modules = g.modules
	if s.SharedFuncs > 0 {
		g.shared = &ir.Module{Name: "libshared", Shared: true}
		g.prog.Modules = append(g.prog.Modules, g.shared)
	}

	// Function name plan, layer by layer (layer 0 = dispatch targets).
	total := s.Modules * s.FuncsPerModule
	perLayer := total / s.Layers
	g.funcNames = make([][]string, s.Layers)
	idx := 0
	for l := 0; l < s.Layers; l++ {
		n := perLayer
		if l == s.Layers-1 {
			n = total - perLayer*(s.Layers-1)
		}
		for k := 0; k < n; k++ {
			g.funcNames[l] = append(g.funcNames[l], fmt.Sprintf("f%d_%d", l, k))
			idx++
		}
	}

	// Shared leaves.
	var sharedNames []string
	for k := 0; k < s.SharedFuncs; k++ {
		name := fmt.Sprintf("lib_%d", k)
		sharedNames = append(sharedNames, name)
		g.shared.Funcs = append(g.shared.Funcs, g.makeLeaf(name, "libshared.mir", int64(3+k%7)))
	}

	// Indirect-tail-call targets must never forward again (no cycles):
	// a dedicated table over shared leaves, created before any function
	// that might become a forwarder.
	if len(sharedNames) >= 2 && s.IndirectTailFrac > 0 {
		gl := &ir.Global{Name: "tailtab", Data: make([]byte, 16), Align: 8}
		gl.FuncRefs = []ir.FuncRef{
			{Off: 0, Name: sharedNames[0]},
			{Off: 8, Name: sharedNames[1]},
		}
		g.prog.Globals = append(g.prog.Globals, gl)
		g.fptabs = append(g.fptabs, "tailtab")
	}

	// Duplicate families.
	dupIdx := 0
	for fam := 0; fam < s.DupFamilies; fam++ {
		withJT := fam%2 == 0
		for c := 0; c < s.DupSize; c++ {
			name := fmt.Sprintf("dup%d_%d", fam, c)
			mod := g.modules[g.r.intn(len(g.modules))]
			mod.Funcs = append(mod.Funcs, g.makeDup(name, fam, withJT))
			dupIdx++
		}
	}

	// Bottom-up: leaves first.
	for l := s.Layers - 1; l >= 0; l-- {
		for k, name := range g.funcNames[l] {
			mod := g.modules[(k+l)%len(g.modules)]
			var callees []string
			if l+1 < s.Layers {
				callees = g.funcNames[l+1]
			}
			fn := g.makeFunc(name, mod.Name+".mir", l, k, callees, sharedNames)
			mod.Funcs = append(mod.Funcs, fn)
		}
	}

	g.makeDispatcher()
	g.prog.Finalize()
	return g.prog
}

// makeLeaf builds a tiny frameless compute function.
func (g *generator) makeLeaf(name, file string, mul int64) *ir.Func {
	f := ir.NewFunc(name, file, g.nextLine())
	b := f.Blocks[0]
	b.Ops = []ir.Op{
		{Kind: ir.OpMov, Dst: isa.RAX, Src: isa.RDI},
		{Kind: ir.OpMovImm, Dst: isa.RCX, Imm: mul},
		{Kind: ir.OpMul, Dst: isa.RAX, Src: isa.RCX},
		{Kind: ir.OpAddImm, Dst: isa.RAX, Imm: mul ^ 0x55},
	}
	b.Term = ir.Term{Kind: ir.TermReturn}
	if g.r.chance(g.spec.RepzRetFrac) {
		f.RepzRet = true
	}
	return f
}

// makeDup builds one member of a duplicate family: the body depends only
// on the family id, so all members are byte-identical (think template
// instantiations with the same code). Bodies carry realistic bulk so
// folding them moves the code-size needle like the paper's ~3% (§4).
func (g *generator) makeDup(name string, fam int, withJT bool) *ir.Func {
	f := ir.NewFunc(name, fmt.Sprintf("dup%d.mir", fam), int32(1000+fam*10))
	b := f.Blocks[0]
	b.Ops = []ir.Op{
		{Kind: ir.OpMov, Dst: isa.RAX, Src: isa.RDI},
		{Kind: ir.OpAndImm, Dst: isa.RAX, Imm: 7},
	}
	// Family-deterministic bulk (identical across clones).
	famRng := rng{s: uint64(fam)*0x9E37 + 7}
	bulk := 24 + int(famRng.next()%48)
	for i := 0; i < bulk; i++ {
		switch i % 3 {
		case 0:
			b.Ops = append(b.Ops, ir.Op{Kind: ir.OpMovImm, Dst: isa.RCX, Imm: int64(famRng.next() & 0xFFFF)})
		case 1:
			b.Ops = append(b.Ops, ir.Op{Kind: ir.OpShlImm, Dst: isa.RCX, Imm: int64(1 + i%7)})
		default:
			b.Ops = append(b.Ops, ir.Op{Kind: ir.OpAdd, Dst: isa.RAX, Src: isa.RCX})
		}
	}
	if !withJT {
		b.Ops = append(b.Ops, ir.Op{Kind: ir.OpAddImm, Dst: isa.RAX, Imm: int64(fam * 3)})
		b.Term = ir.Term{Kind: ir.TermReturn}
		return f
	}
	// Jump-table variant: linkers cannot fold these (paper §4).
	cases := make([]int, 4)
	merge := -1
	b.Ops = append(b.Ops, ir.Op{Kind: ir.OpAndImm, Dst: isa.RAX, Imm: 3})
	for i := range cases {
		c := f.AddBlock()
		cases[i] = c.Index
		c.Ops = []ir.Op{{Kind: ir.OpAddImm, Dst: isa.RAX, Imm: int64(fam + i*i)}}
	}
	m := f.AddBlock()
	merge = m.Index
	m.Term = ir.Term{Kind: ir.TermReturn}
	for _, ci := range cases {
		f.Blocks[ci].Term = ir.Term{Kind: ir.TermJump, Then: merge}
	}
	b.Term = ir.Term{Kind: ir.TermSwitch, IndexReg: isa.RAX, Targets: cases, PIC: fam%4 < 2}
	return f
}

// makeFunc builds one application function at layer l.
func (g *generator) makeFunc(name, file string, l, k int, callees, sharedNames []string) *ir.Func {
	s := &g.spec
	f := ir.NewFunc(name, file, g.nextLine())
	isLeafLayer := len(callees) == 0

	// Indirect tail-call functions are frameless forwarders (non-simple
	// for gobolt; they also populate the residual warm area of Fig 9).
	if isLeafLayer && g.r.chance(s.IndirectTailFrac) && len(g.fptabs) > 0 {
		b := f.Blocks[0]
		b.Ops = []ir.Op{
			{Kind: ir.OpMov, Dst: isa.RAX, Src: isa.RDI},
			{Kind: ir.OpAndImm, Dst: isa.RAX, Imm: 1},
		}
		b.Term = ir.Term{Kind: ir.TermTailIndirect, Callee: g.fptabs[g.r.intn(len(g.fptabs))], IndexReg: isa.RAX}
		return f
	}

	if isLeafLayer {
		return g.makeLeafLayerFunc(f, name)
	}

	f.SavedRegs = []isa.Reg{isa.RBX, isa.R12}
	useR13 := g.r.chance(s.ShrinkWrapFrac)
	if useR13 {
		f.SavedRegs = append(f.SavedRegs, isa.R13)
	}

	entry := f.Blocks[0]
	entry.Ops = append(entry.Ops, g.entryPad()...)
	entry.Ops = append(entry.Ops,
		ir.Op{Kind: ir.OpMov, Dst: isa.RBX, Src: isa.RDI}, // accumulator
		ir.Op{Kind: ir.OpMov, Dst: isa.R12, Src: isa.RDI}, // work id
	)
	cur := entry

	segments := s.SegmentsMin
	if s.SegmentsMax > s.SegmentsMin {
		segments += g.r.intn(s.SegmentsMax - s.SegmentsMin)
	}
	salt := int64(g.r.next() & 0x3FF)

	// loadInputByte emits idx computation + byte load into RAX.
	loadInputByte := func(b *ir.Block, extra int64) {
		b.Ops = append(b.Ops,
			ir.Op{Kind: ir.OpMov, Dst: isa.RCX, Src: isa.R12},
			ir.Op{Kind: ir.OpMovImm, Dst: isa.RDX, Imm: salt + extra},
			ir.Op{Kind: ir.OpAdd, Dst: isa.RCX, Src: isa.RDX},
			ir.Op{Kind: ir.OpAndImm, Dst: isa.RCX, Imm: int64(s.InputSize - 1)},
			ir.Op{Kind: ir.OpLoadByte, Dst: isa.RAX, Src: isa.RCX, Sym: "input", Scale: 1},
		)
	}
	pickCallee := func() string {
		// Locality: prefer callees in a window around 2*k, with a wide
		// enough spread that the executed footprint covers most layers.
		base := (2*k + g.r.intn(31)) % len(callees)
		return callees[base]
	}

	for seg := 0; seg < segments; seg++ {
		hot := f.AddBlock()
		cold := f.AddBlock()
		cold.Cold = true
		join := f.AddBlock()

		loadInputByte(cur, int64(seg*13))
		threshold := int64(256 * (1 - s.ColdProb))
		cur.Term = ir.Term{Kind: ir.TermBranch, Cc: isa.CondL, CmpReg: isa.RAX, CmpImm: threshold,
			Then: hot.Index, Else: cold.Index, Prob: 1 - s.ColdProb}

		// Hot side: compute + call downward, optionally with an inner
		// counted loop (the hot core where fetch heat concentrates).
		spill := isa.NoReg
		if g.r.chance(s.SpillFrac) {
			spill = isa.R9
		}
		hot.Ops = []ir.Op{
			{Kind: ir.OpMov, Dst: isa.RDI, Src: isa.R12},
			{Kind: ir.OpCall, Callee: pickCallee(), SpillReg: spill, LandingPad: -1},
			{Kind: ir.OpAdd, Dst: isa.RBX, Src: isa.RAX},
		}
		if g.r.chance(s.LoopFrac) {
			// trip count = 2 + (RAX & 7) from the already-loaded byte.
			hot.Ops = append(hot.Ops,
				ir.Op{Kind: ir.OpMov, Dst: isa.RDX, Src: isa.RAX},
				ir.Op{Kind: ir.OpAndImm, Dst: isa.RDX, Imm: 7},
				ir.Op{Kind: ir.OpAddImm, Dst: isa.RDX, Imm: 2},
			)
			head := f.AddBlock()
			body := f.AddBlock()
			hot.Term = ir.Term{Kind: ir.TermJump, Then: head.Index}
			head.Term = ir.Term{Kind: ir.TermBranch, Cc: isa.CondG, CmpReg: isa.RDX,
				CmpImm: 0, Then: body.Index, Else: join.Index, Prob: 0.85}
			body.Ops = []ir.Op{
				{Kind: ir.OpMov, Dst: isa.RCX, Src: isa.R12},
				{Kind: ir.OpXor, Dst: isa.RCX, Src: isa.RDX},
				{Kind: ir.OpShlImm, Dst: isa.RCX, Imm: 1},
				{Kind: ir.OpAdd, Dst: isa.RBX, Src: isa.RCX},
				{Kind: ir.OpAddImm, Dst: isa.RDX, Imm: -1},
			}
			body.Term = ir.Term{Kind: ir.TermJump, Then: head.Index}
		} else {
			hot.Term = ir.Term{Kind: ir.TermJump, Then: join.Index}
		}

		// Cold side: error-path flavored.
		if g.r.chance(s.ThrowFrac) {
			lp := f.AddBlock()
			lp.Cold = true
			lp.Ops = []ir.Op{{Kind: ir.OpAddImm, Dst: isa.RBX, Imm: 10_000}}
			lp.Term = ir.Term{Kind: ir.TermJump, Then: join.Index}
			cold.Ops = []ir.Op{
				{Kind: ir.OpMov, Dst: isa.RDI, Src: isa.R12},
				{Kind: ir.OpCall, Callee: "raise", SpillReg: isa.NoReg, LandingPad: lp.Index},
				{Kind: ir.OpAdd, Dst: isa.RBX, Src: isa.RAX},
			}
			cold.Term = ir.Term{Kind: ir.TermJump, Then: join.Index}
		} else if useR13 && seg == 0 {
			// Cold-only use of R13: shrink-wrapping candidate.
			cold.Ops = []ir.Op{
				{Kind: ir.OpMov, Dst: isa.R13, Src: isa.R12},
				{Kind: ir.OpShlImm, Dst: isa.R13, Imm: 2},
				{Kind: ir.OpAdd, Dst: isa.RBX, Src: isa.R13},
				{Kind: ir.OpAddImm, Dst: isa.RBX, Imm: 77},
			}
			cold.Term = ir.Term{Kind: ir.TermJump, Then: join.Index}
		} else {
			cold.Ops = []ir.Op{
				{Kind: ir.OpMovImm, Dst: isa.RCX, Imm: int64(seg + 11)},
				{Kind: ir.OpAdd, Dst: isa.RBX, Src: isa.RCX},
			}
			cold.Term = ir.Term{Kind: ir.TermJump, Then: join.Index}
		}
		g.padCold(cold)
		cur = join
	}

	// Optional switch segment.
	if g.r.chance(s.JumpTableFrac) {
		ncases := 4 + g.r.intn(4)
		caseIdx := make([]int, ncases)
		join := f.AddBlock()
		loadInputByte(cur, 97)
		cur.Ops = append(cur.Ops, ir.Op{Kind: ir.OpAndImm, Dst: isa.RAX, Imm: 7})
		var targets []int
		for i := 0; i < ncases; i++ {
			c := f.AddBlock()
			caseIdx[i] = c.Index
			c.Ops = []ir.Op{
				{Kind: ir.OpMovImm, Dst: isa.RCX, Imm: int64(i * i)},
				{Kind: ir.OpAdd, Dst: isa.RBX, Src: isa.RCX},
			}
			if len(callees) > 0 && i == 0 {
				c.Ops = append(c.Ops,
					ir.Op{Kind: ir.OpMov, Dst: isa.RDI, Src: isa.R12},
					ir.Op{Kind: ir.OpCall, Callee: pickCallee(), SpillReg: isa.NoReg, LandingPad: -1},
					ir.Op{Kind: ir.OpAdd, Dst: isa.RBX, Src: isa.RAX})
			}
			c.Term = ir.Term{Kind: ir.TermJump, Then: join.Index}
		}
		for i := 0; i < 8; i++ {
			targets = append(targets, caseIdx[i%ncases])
		}
		cur.Term = ir.Term{Kind: ir.TermSwitch, IndexReg: isa.RAX, Targets: targets,
			PIC: g.r.chance(s.PICFrac)}
		cur = join
	}

	// Optional indirect call through a function-pointer table.
	if g.r.chance(s.IndirectCallFrac) {
		tab := g.makeFptab(callees, sharedNames)
		if tab != "" {
			// Heavily biased index: slot 0 dominates (ICP candidate).
			cur.Ops = append(cur.Ops,
				ir.Op{Kind: ir.OpMov, Dst: isa.RSI, Src: isa.R12},
				ir.Op{Kind: ir.OpAndImm, Dst: isa.RSI, Imm: 15},
				ir.Op{Kind: ir.OpMovImm, Dst: isa.RCX, Imm: 13},
				ir.Op{Kind: ir.OpMovImm, Dst: isa.RDX, Imm: 0},
			)
			// idx = (rsi < 13) ? 0 : rsi-12  -> implemented as branch.
			hotc := f.AddBlock()
			rare := f.AddBlock()
			rare.Cold = true
			icall := f.AddBlock()
			cur.Term = ir.Term{Kind: ir.TermBranch, Cc: isa.CondL, CmpReg: isa.RSI,
				CmpUseReg: true, CmpReg2: isa.RCX, Then: hotc.Index, Else: rare.Index, Prob: 13.0 / 16}
			hotc.Ops = []ir.Op{{Kind: ir.OpMovImm, Dst: isa.RSI, Imm: 0}}
			hotc.Term = ir.Term{Kind: ir.TermJump, Then: icall.Index}
			rare.Ops = []ir.Op{{Kind: ir.OpAddImm, Dst: isa.RSI, Imm: -12}}
			rare.Term = ir.Term{Kind: ir.TermJump, Then: icall.Index}
			icall.Ops = []ir.Op{
				{Kind: ir.OpMov, Dst: isa.RDI, Src: isa.R12},
				{Kind: ir.OpCallIndirect, Sym: tab, Src: isa.RSI, LandingPad: -1},
				{Kind: ir.OpAdd, Dst: isa.RBX, Src: isa.RAX},
			}
			cur = icall
		}
	}

	// Shared-library call.
	if len(sharedNames) > 0 && g.r.chance(0.4) {
		cur.Ops = append(cur.Ops,
			ir.Op{Kind: ir.OpMov, Dst: isa.RDI, Src: isa.R12},
			ir.Op{Kind: ir.OpCall, Callee: sharedNames[g.r.intn(len(sharedNames))], SpillReg: isa.NoReg, LandingPad: -1},
			ir.Op{Kind: ir.OpAdd, Dst: isa.RBX, Src: isa.RAX})
	}

	cur.Ops = append(cur.Ops, ir.Op{Kind: ir.OpMov, Dst: isa.RAX, Src: isa.RBX})
	cur.Term = ir.Term{Kind: ir.TermReturn}
	if g.r.chance(s.RepzRetFrac) {
		f.RepzRet = true
	}
	return f
}

// padCold prepends cold-side filler ops (simulated error handling bulk).
// RCX/RDX churn only; semantics of the block are unchanged because the
// filler result is discarded before the block's real ops run.
func (g *generator) padCold(b *ir.Block) {
	s := &g.spec
	if s.ColdOpsMax <= 0 {
		return
	}
	n := s.ColdOpsMin
	if s.ColdOpsMax > s.ColdOpsMin {
		n += g.r.intn(s.ColdOpsMax - s.ColdOpsMin)
	}
	filler := make([]ir.Op, 0, n)
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			filler = append(filler, ir.Op{Kind: ir.OpMovImm, Dst: isa.RCX, Imm: int64(g.r.next() & 0xFFFF)})
		case 1:
			filler = append(filler, ir.Op{Kind: ir.OpShlImm, Dst: isa.RCX, Imm: int64(1 + i%5)})
		case 2:
			filler = append(filler, ir.Op{Kind: ir.OpMovImm, Dst: isa.RDX, Imm: int64(i * 97)})
		default:
			filler = append(filler, ir.Op{Kind: ir.OpAdd, Dst: isa.RCX, Src: isa.RDX})
		}
	}
	b.Ops = append(filler, b.Ops...)
}

// entryPad materializes the Spec.EntryPadOps version-skew filler:
// identity moves on the return register, harmless under every calling
// convention the generators use.
func (g *generator) entryPad() []ir.Op {
	if g.spec.EntryPadOps <= 0 {
		return nil
	}
	ops := make([]ir.Op, g.spec.EntryPadOps)
	for i := range ops {
		ops[i] = ir.Op{Kind: ir.OpMov, Dst: isa.RAX, Src: isa.RAX}
	}
	return ops
}

// makeLeafLayerFunc emits a branchy frameless leaf.
func (g *generator) makeLeafLayerFunc(f *ir.Func, name string) *ir.Func {
	s := &g.spec
	b := f.Blocks[0]
	hot := f.AddBlock()
	cold := f.AddBlock()
	cold.Cold = true
	done := f.AddBlock()
	salt := int64(g.r.next() & 0x7FF)
	b.Ops = append(g.entryPad(),
		ir.Op{Kind: ir.OpMov, Dst: isa.RCX, Src: isa.RDI},
		ir.Op{Kind: ir.OpAddImm, Dst: isa.RCX, Imm: salt},
		ir.Op{Kind: ir.OpAndImm, Dst: isa.RCX, Imm: int64(s.InputSize - 1)},
		ir.Op{Kind: ir.OpLoadByte, Dst: isa.RAX, Src: isa.RCX, Sym: "input", Scale: 1},
	)
	threshold := int64(256 * (1 - s.ColdProb))
	b.Term = ir.Term{Kind: ir.TermBranch, Cc: isa.CondL, CmpReg: isa.RAX, CmpImm: threshold,
		Then: hot.Index, Else: cold.Index, Prob: 1 - s.ColdProb}
	hot.Ops = []ir.Op{
		{Kind: ir.OpMov, Dst: isa.RAX, Src: isa.RDI},
		{Kind: ir.OpMovImm, Dst: isa.RCX, Imm: salt | 1},
		{Kind: ir.OpMul, Dst: isa.RAX, Src: isa.RCX},
	}
	hot.Term = ir.Term{Kind: ir.TermJump, Then: done.Index}
	cold.Ops = []ir.Op{
		{Kind: ir.OpMov, Dst: isa.RAX, Src: isa.RDI},
		{Kind: ir.OpShlImm, Dst: isa.RAX, Imm: 3},
		{Kind: ir.OpAddImm, Dst: isa.RAX, Imm: salt * 7},
		{Kind: ir.OpXor, Dst: isa.RAX, Src: isa.RDI},
	}
	cold.Term = ir.Term{Kind: ir.TermJump, Then: done.Index}
	g.padCold(cold)
	done.Term = ir.Term{Kind: ir.TermReturn}
	return f
}

// makeFptab creates (or reuses) a function-pointer table over candidates.
func (g *generator) makeFptab(callees, sharedNames []string) string {
	pool := callees
	if len(pool) == 0 {
		pool = sharedNames
	}
	if len(pool) == 0 {
		return ""
	}
	name := fmt.Sprintf("fptab%d", len(g.fptabs))
	n := 4
	gl := &ir.Global{Name: name, Data: make([]byte, 8*n), Align: 8, Writable: false}
	for i := 0; i < n; i++ {
		gl.FuncRefs = append(gl.FuncRefs, ir.FuncRef{Off: uint32(8 * i), Name: pool[g.r.intn(len(pool))]})
	}
	g.prog.Globals = append(g.prog.Globals, gl)
	g.fptabs = append(g.fptabs, name)
	return name
}

// makeDispatcher builds `raise`, `_start`, and the Zipf-weighted dispatch
// jump table over layer-0 functions.
func (g *generator) makeDispatcher() {
	s := &g.spec

	// raise: throws unconditionally (callers set landing pads).
	raise := ir.NewFunc("raise", "runtime.mir", 5)
	raise.Blocks[0].Term = ir.Term{Kind: ir.TermThrow, LandingPad: -1}
	g.modules[0].Funcs = append(g.modules[0].Funcs, raise)

	targets := g.funcNames[0]
	weights := zipfWeights(len(targets), s.ZipfS)

	// Dispatch table: slot counts proportional to Zipf weights.
	slots := make([]int, 0, s.DispatchSlots)
	for i := range targets {
		n := int(math.Round(weights[i] * float64(s.DispatchSlots)))
		for j := 0; j < n && len(slots) < s.DispatchSlots; j++ {
			slots = append(slots, i)
		}
	}
	for len(slots) < s.DispatchSlots {
		slots = append(slots, len(targets)-1)
	}

	start := ir.NewFunc("_start", "main.mir", 1)
	start.SavedRegs = []isa.Reg{isa.RBX, isa.R13}
	entry := start.Blocks[0]
	loop := start.AddBlock()
	// One call block per layer-0 function.
	callBlocks := make([]int, len(targets))
	merge := start.AddBlock()
	exit := start.AddBlock()
	lp := start.AddBlock()
	lp.Cold = true

	entry.Ops = []ir.Op{
		{Kind: ir.OpMovImm, Dst: isa.RBX, Imm: 0},
		{Kind: ir.OpMovImm, Dst: isa.R13, Imm: 0},
	}
	entry.Term = ir.Term{Kind: ir.TermJump, Then: loop.Index}

	for i := range targets {
		cb := start.AddBlock()
		callBlocks[i] = cb.Index
		cb.Ops = []ir.Op{
			{Kind: ir.OpMov, Dst: isa.RDI, Src: isa.R13},
			{Kind: ir.OpCall, Callee: targets[i], SpillReg: isa.NoReg, LandingPad: lp.Index},
			{Kind: ir.OpAdd, Dst: isa.RBX, Src: isa.RAX},
		}
		cb.Term = ir.Term{Kind: ir.TermJump, Then: merge.Index}
	}

	// loop: combine two input bytes so jump tables larger than 256
	// slots are fully exercised:
	//   idx = (input[(i*7+3) & mask] ^ input[(i*13+5) & mask] << 3) & (slots-1)
	loop.Ops = []ir.Op{
		{Kind: ir.OpMov, Dst: isa.RCX, Src: isa.R13},
		{Kind: ir.OpMovImm, Dst: isa.RDX, Imm: 7},
		{Kind: ir.OpMul, Dst: isa.RCX, Src: isa.RDX},
		{Kind: ir.OpAddImm, Dst: isa.RCX, Imm: 3},
		{Kind: ir.OpAndImm, Dst: isa.RCX, Imm: int64(s.InputSize - 1)},
		{Kind: ir.OpLoadByte, Dst: isa.RAX, Src: isa.RCX, Sym: "input", Scale: 1},
		{Kind: ir.OpMov, Dst: isa.RCX, Src: isa.R13},
		{Kind: ir.OpMovImm, Dst: isa.RDX, Imm: 13},
		{Kind: ir.OpMul, Dst: isa.RCX, Src: isa.RDX},
		{Kind: ir.OpAddImm, Dst: isa.RCX, Imm: 5},
		{Kind: ir.OpAndImm, Dst: isa.RCX, Imm: int64(s.InputSize - 1)},
		{Kind: ir.OpLoadByte, Dst: isa.RDX, Src: isa.RCX, Sym: "input", Scale: 1},
		{Kind: ir.OpShlImm, Dst: isa.RDX, Imm: 3},
		{Kind: ir.OpXor, Dst: isa.RAX, Src: isa.RDX},
		{Kind: ir.OpAndImm, Dst: isa.RAX, Imm: int64(s.DispatchSlots - 1)},
	}
	swTargets := make([]int, s.DispatchSlots)
	for i, t := range slots {
		swTargets[i] = callBlocks[t]
	}
	loop.Term = ir.Term{Kind: ir.TermSwitch, IndexReg: isa.RAX, Targets: swTargets, PIC: false}

	merge.Ops = []ir.Op{{Kind: ir.OpAddImm, Dst: isa.R13, Imm: 1}}
	merge.Term = ir.Term{Kind: ir.TermBranch, Cc: isa.CondL, CmpReg: isa.R13,
		CmpImm: int64(s.Iterations), Then: loop.Index, Else: exit.Index,
		Prob: 1 - 1/float64(s.Iterations)}

	lp.Ops = []ir.Op{{Kind: ir.OpAddImm, Dst: isa.RBX, Imm: 1_000_000}}
	lp.Term = ir.Term{Kind: ir.TermJump, Then: merge.Index}

	exit.Ops = []ir.Op{{Kind: ir.OpMov, Dst: isa.RAX, Src: isa.RBX}}
	exit.Term = ir.Term{Kind: ir.TermExit}

	g.modules[0].Funcs = append(g.modules[0].Funcs, start)
}

package workload

import (
	"gobolt/internal/ir"
	"gobolt/internal/isa"
)

// GenerateFigure2 builds the paper's Figure 2 program:
//
//	function foo(x)  { if (x > 0) { B1 } else { B2 } }
//	function bar()   { foo(+i)  }  // branch always taken
//	function baz()   { foo(-i)  }  // branch never taken
//
// foo is small enough for PGO hot-call-site inlining but larger than the
// always-inline threshold. When a source-keyed profile is retrofitted,
// the branch at foo's `if` shows 50% taken (the two call sites merge), so
// the compiler cannot lay out both inlined copies well; the binary-level
// profile distinguishes the two copies.
func GenerateFigure2() *ir.Program {
	mkSide := func(f *ir.Func, imm int64, line int32) *ir.Block {
		b := f.AddBlock()
		b.Line = line
		b.Ops = []ir.Op{
			{Kind: ir.OpMovImm, Dst: isa.RAX, Imm: imm},
			{Kind: ir.OpMovImm, Dst: isa.RCX, Imm: imm * 3},
			{Kind: ir.OpAdd, Dst: isa.RAX, Src: isa.RCX},
			{Kind: ir.OpXor, Dst: isa.RAX, Src: isa.RDI},
			{Kind: ir.OpShlImm, Dst: isa.RAX, Imm: 1},
		}
		return b
	}

	foo := ir.NewFunc("foo", "foo.mir", 2) // the if lives at line 2
	entry := foo.Blocks[0]
	b1 := mkSide(foo, 100, 3) // "then" body: line 3 (paper's B1)
	b2 := mkSide(foo, 200, 5) // "else" body: line 5 (paper's B2)
	ret := foo.AddBlock()
	entry.Term = ir.Term{Kind: ir.TermBranch, Cc: isa.CondG, CmpReg: isa.RDI, CmpImm: 0,
		Then: b1.Index, Else: b2.Index, Prob: 0.5, Line: 2}
	b1.Term = ir.Term{Kind: ir.TermJump, Then: ret.Index}
	b2.Term = ir.Term{Kind: ir.TermJump, Then: ret.Index}
	ret.Ops = []ir.Op{{Kind: ir.OpAddImm, Dst: isa.RAX, Imm: 1}}
	ret.Term = ir.Term{Kind: ir.TermReturn}

	mkCaller := func(name string, sign int64, line int32) *ir.Func {
		f := ir.NewFunc(name, name+".mir", line)
		b := f.Blocks[0]
		b.Ops = []ir.Op{
			{Kind: ir.OpMov, Dst: isa.RDI, Src: isa.RDI},
			{Kind: ir.OpMovImm, Dst: isa.RCX, Imm: sign},
			{Kind: ir.OpMul, Dst: isa.RDI, Src: isa.RCX},
			{Kind: ir.OpAddImm, Dst: isa.RDI, Imm: sign},
			{Kind: ir.OpCall, Callee: "foo", SpillReg: isa.NoReg, LandingPad: -1},
		}
		b.Term = ir.Term{Kind: ir.TermReturn}
		return f
	}
	bar := mkCaller("bar", +1, 9)  // foo(... > 0): inlined copy 1
	baz := mkCaller("baz", -1, 12) // foo(... < 0): inlined copy 2

	start := ir.NewFunc("_start", "main.mir", 20)
	start.SavedRegs = []isa.Reg{isa.RBX, isa.R13}
	s0 := start.Blocks[0]
	loop := start.AddBlock()
	exit := start.AddBlock()
	s0.Ops = []ir.Op{
		{Kind: ir.OpMovImm, Dst: isa.RBX, Imm: 0},
		{Kind: ir.OpMovImm, Dst: isa.R13, Imm: 1},
	}
	s0.Term = ir.Term{Kind: ir.TermJump, Then: loop.Index}
	loop.Ops = []ir.Op{
		{Kind: ir.OpMov, Dst: isa.RDI, Src: isa.R13},
		{Kind: ir.OpCall, Callee: "bar", SpillReg: isa.NoReg, LandingPad: -1},
		{Kind: ir.OpAdd, Dst: isa.RBX, Src: isa.RAX},
		{Kind: ir.OpMov, Dst: isa.RDI, Src: isa.R13},
		{Kind: ir.OpCall, Callee: "baz", SpillReg: isa.NoReg, LandingPad: -1},
		{Kind: ir.OpAdd, Dst: isa.RBX, Src: isa.RAX},
		{Kind: ir.OpAddImm, Dst: isa.R13, Imm: 1},
	}
	loop.Term = ir.Term{Kind: ir.TermBranch, Cc: isa.CondL, CmpReg: isa.R13, CmpImm: 50000,
		Then: loop.Index, Else: exit.Index, Prob: 0.9999}
	exit.Ops = []ir.Op{{Kind: ir.OpMov, Dst: isa.RAX, Src: isa.RBX}}
	exit.Term = ir.Term{Kind: ir.TermExit}

	p := &ir.Program{Modules: []*ir.Module{
		{Name: "main", Funcs: []*ir.Func{start}},
		// foo lives in a different module: without LTO the compiler
		// cannot inline it at all (paper §2.2).
		{Name: "foolib", Funcs: []*ir.Func{foo}},
		{Name: "callers", Funcs: []*ir.Func{bar, baz}},
	}}
	p.Finalize()
	return p
}

package workload

// Presets model the paper's evaluation subjects, scaled per DESIGN.md §5
// (laptop-scale text sizes; hot working sets still far exceed L1I).
//
// The distinguishing knobs follow the paper's characterization: HHVM is
// the largest and most front-end bound (§6.1); TAO/Proxygen/Multifeed are
// smaller services; the compilers (§6.2) are branchy, call-dense programs
// with significant cold error paths — which is why layout matters so much
// for them.

// HHVM is the largest, most front-end-bound service (LTO + HFSort
// baseline in Figure 5; subject of Figures 6, 9, 11).
func HHVM() Spec {
	return Spec{
		Name: "hhvm", Seed: 0x48485642,
		Modules: 12, FuncsPerModule: 360, SharedFuncs: 30, Layers: 3,
		ZipfS: 0.95, DispatchSlots: 1024,
		SegmentsMin: 3, SegmentsMax: 8,
		LoopFrac:   0.45,
		ColdOpsMin: 14, ColdOpsMax: 60,
		ColdProb: 0.02, ThrowFrac: 0.25,
		JumpTableFrac: 0.25, PICFrac: 0.5,
		IndirectCallFrac: 0.2, SpillFrac: 0.25, RepzRetFrac: 0.15,
		ShrinkWrapFrac: 0.1,
		DupFamilies:    90, DupSize: 6,
		IndirectTailFrac: 0.005,
		Iterations:       16000, InputSize: 1 << 14,
	}
}

// TAO: the in-memory social-graph cache.
func TAO() Spec {
	return Spec{
		Name: "tao", Seed: 0x54414F21,
		Modules: 8, FuncsPerModule: 240, SharedFuncs: 16, Layers: 3,
		ZipfS: 1.1, DispatchSlots: 512,
		SegmentsMin: 2, SegmentsMax: 6,
		LoopFrac:   0.4,
		ColdOpsMin: 10, ColdOpsMax: 40,
		ColdProb: 0.02, ThrowFrac: 0.15,
		JumpTableFrac: 0.15, PICFrac: 0.4,
		IndirectCallFrac: 0.12, SpillFrac: 0.2, RepzRetFrac: 0.1,
		ShrinkWrapFrac: 0.08,
		DupFamilies:    40, DupSize: 4,
		IndirectTailFrac: 0.006,
		Iterations:       16000, InputSize: 1 << 13,
	}
}

// Proxygen: the cluster load balancer.
func Proxygen() Spec {
	return Spec{
		Name: "proxygen", Seed: 0x50524F58,
		Modules: 7, FuncsPerModule: 200, SharedFuncs: 12, Layers: 2,
		ZipfS: 1.2, DispatchSlots: 256,
		SegmentsMin: 2, SegmentsMax: 5,
		LoopFrac:   0.35,
		ColdOpsMin: 8, ColdOpsMax: 32,
		ColdProb: 0.015, ThrowFrac: 0.2,
		JumpTableFrac: 0.12, PICFrac: 0.5,
		IndirectCallFrac: 0.1, SpillFrac: 0.15, RepzRetFrac: 0.08,
		ShrinkWrapFrac: 0.06,
		DupFamilies:    30, DupSize: 4,
		IndirectTailFrac: 0.005,
		Iterations:       14000, InputSize: 1 << 13,
	}
}

// Multifeed1: news-feed aggregation service (leaf-heavy).
func Multifeed1() Spec {
	return Spec{
		Name: "multifeed1", Seed: 0x4D464431,
		Modules: 8, FuncsPerModule: 220, SharedFuncs: 10, Layers: 3,
		ZipfS: 1.05, DispatchSlots: 512,
		SegmentsMin: 2, SegmentsMax: 5,
		LoopFrac:   0.35,
		ColdOpsMin: 10, ColdOpsMax: 36,
		ColdProb: 0.02, ThrowFrac: 0.1,
		JumpTableFrac: 0.18, PICFrac: 0.3,
		IndirectCallFrac: 0.15, SpillFrac: 0.2, RepzRetFrac: 0.1,
		ShrinkWrapFrac: 0.1,
		DupFamilies:    32, DupSize: 4,
		IndirectTailFrac: 0.005,
		Iterations:       15000, InputSize: 1 << 13,
	}
}

// Multifeed2: ranking component of the same service.
func Multifeed2() Spec {
	return Spec{
		Name: "multifeed2", Seed: 0x4D464432,
		Modules: 8, FuncsPerModule: 200, SharedFuncs: 10, Layers: 2,
		ZipfS: 1.05, DispatchSlots: 512,
		SegmentsMin: 2, SegmentsMax: 5,
		LoopFrac:   0.35,
		ColdOpsMin: 10, ColdOpsMax: 36,
		ColdProb: 0.025, ThrowFrac: 0.12,
		JumpTableFrac: 0.2, PICFrac: 0.35,
		IndirectCallFrac: 0.12, SpillFrac: 0.25, RepzRetFrac: 0.12,
		ShrinkWrapFrac: 0.08,
		DupFamilies:    30, DupSize: 4,
		IndirectTailFrac: 0.005,
		Iterations:       15000, InputSize: 1 << 13,
	}
}

// Clang models the Clang compiler binary compiling translation units
// (Figure 7): large, extremely branchy, deep call chains, many cold
// diagnostic paths.
func Clang() Spec {
	return Spec{
		Name: "clang", Seed: 0x434C4E47,
		Modules: 10, FuncsPerModule: 300, SharedFuncs: 16, Layers: 4,
		ZipfS: 0.9, DispatchSlots: 1024,
		SegmentsMin: 2, SegmentsMax: 7,
		LoopFrac:   0.4,
		ColdOpsMin: 14, ColdOpsMax: 56,
		ColdProb: 0.03, ThrowFrac: 0.2,
		JumpTableFrac: 0.3, PICFrac: 0.6,
		IndirectCallFrac: 0.18, SpillFrac: 0.3, RepzRetFrac: 0.05,
		ShrinkWrapFrac: 0.12,
		DupFamilies:    70, DupSize: 5,
		IndirectTailFrac: 0.006,
		Iterations:       10000, InputSize: 1 << 14,
	}
}

// GCC models cc1plus (Figure 8): similar character to Clang, slightly
// smaller here (the paper could not use LTO for GCC).
func GCC() Spec {
	return Spec{
		Name: "gcc", Seed: 0x47434321,
		Modules: 9, FuncsPerModule: 260, SharedFuncs: 14, Layers: 4,
		ZipfS: 0.95, DispatchSlots: 1024,
		SegmentsMin: 2, SegmentsMax: 6,
		LoopFrac:   0.4,
		ColdOpsMin: 12, ColdOpsMax: 48,
		ColdProb: 0.03, ThrowFrac: 0.15,
		JumpTableFrac: 0.28, PICFrac: 0.5,
		IndirectCallFrac: 0.15, SpillFrac: 0.3, RepzRetFrac: 0.06,
		ShrinkWrapFrac: 0.1,
		DupFamilies:    60, DupSize: 5,
		IndirectTailFrac: 0.006,
		Iterations:       9000, InputSize: 1 << 14,
	}
}

// ByName returns a preset spec.
func ByName(name string) (Spec, bool) {
	switch name {
	case "hhvm":
		return HHVM(), true
	case "tao":
		return TAO(), true
	case "proxygen":
		return Proxygen(), true
	case "multifeed1":
		return Multifeed1(), true
	case "multifeed2":
		return Multifeed2(), true
	case "clang":
		return Clang(), true
	case "gcc":
		return GCC(), true
	}
	return Spec{}, false
}

// Tiny is a fast preset for tests and the quickstart example.
func Tiny() Spec {
	return Spec{
		Name: "tiny", Seed: 42,
		Modules: 2, FuncsPerModule: 16, SharedFuncs: 4, Layers: 2,
		ZipfS: 1.2, DispatchSlots: 16,
		SegmentsMin: 1, SegmentsMax: 3,
		LoopFrac:   0.4,
		ColdOpsMin: 14, ColdOpsMax: 56,
		ColdProb: 0.03, ThrowFrac: 0.2,
		JumpTableFrac: 0.3, PICFrac: 0.5,
		IndirectCallFrac: 0.2, SpillFrac: 0.3, RepzRetFrac: 0.2,
		ShrinkWrapFrac: 0.2,
		DupFamilies:    2, DupSize: 2,
		IndirectTailFrac: 0.05,
		Iterations:       4000, InputSize: 1 << 10,
	}
}

// Figure2 reproduces the paper's motivating example: `foo` contains a
// branch whose direction is perfectly predictable per *call site* (bar
// always takes it, baz never does), but a source-keyed profile merges the
// two, so compile-time PGO lays out at most one inlined copy well.
func Figure2() Spec {
	return Spec{Name: "figure2", Seed: 2}
}

package bat

import (
	"fmt"

	"gobolt/internal/elfx"
	"gobolt/internal/profile"
)

// FromFile extracts and parses the BAT table of an optimized binary.
// Returns (nil, nil) when the binary carries no .bolt.bat section — the
// binary was not produced by gobolt, or BAT emission was disabled.
func FromFile(f *elfx.File) (*Table, error) {
	s := f.Section(SectionName)
	if s == nil {
		return nil, nil
	}
	t, err := Parse(s.Data)
	if err != nil {
		return nil, fmt.Errorf("bat: %s: %w", SectionName, err)
	}
	return t, nil
}

// TranslateStats reports what happened to each record count during
// profile translation.
type TranslateStats struct {
	TranslatedBranches uint64 // branch count with >=1 endpoint translated
	PassthroughCount   uint64 // records fully outside relocated code
	DroppedCount       uint64 // records that could not be resolved at all
	TranslatedSamples  uint64
}

// TranslateProfile rewrites a profile sampled on the optimized binary
// (locations symbolized against *its* symbol table: moved functions at
// their new addresses, cold fragments as name.cold.0 symbols) into
// input-binary coordinates using the BAT table. Locations in unmoved code
// pass through unchanged — their symbols kept their input addresses.
// Records whose symbols cannot be resolved against the optimized binary
// are dropped, as are translated locations that fall outside the input
// function (defensive; should not happen). Shapes are discarded: they
// describe the optimized binary's CFGs, which are meaningless in input
// coordinates.
func TranslateProfile(fd *profile.Fdata, f *elfx.File, t *Table) (*profile.Fdata, TranslateStats) {
	var st TranslateStats
	symAddr := make(map[string]uint64, len(f.Symbols))
	symSize := make(map[string]uint64, len(f.Symbols))
	for _, s := range f.Symbols {
		if s.Type != elfx.STTFunc {
			continue
		}
		if _, ok := symAddr[s.Name]; !ok {
			symAddr[s.Name] = s.Value
			symSize[s.Name] = s.Size
		}
	}

	// translate maps one location; moved reports whether the BAT table
	// rewrote it (vs a passthrough), ok whether it resolved at all.
	translate := func(l profile.Loc) (out profile.Loc, moved, ok bool) {
		base, known := symAddr[l.Sym]
		if !known {
			return l, false, false
		}
		if fn, off, hit := t.Translate(base + l.Off); hit {
			if size, sok := t.FuncSize(fn); sok && off >= size {
				return l, false, false
			}
			return profile.Loc{Sym: fn, Off: off}, true, true
		}
		// Unmoved code: the symbol's value and size are unchanged from
		// the input binary, so the location is already in input
		// coordinates; validate against the symbol extent.
		if l.Off >= symSize[l.Sym] {
			return l, false, false
		}
		return l, false, true
	}

	b := profile.NewBuilder(fd.LBR, fd.Event)
	for _, br := range fd.Branches {
		from, fromMoved, ok1 := translate(br.From)
		to, toMoved, ok2 := translate(br.To)
		if !ok1 || !ok2 {
			st.DroppedCount += br.Count
			continue
		}
		if fromMoved || toMoved {
			st.TranslatedBranches += br.Count
		} else {
			st.PassthroughCount += br.Count
		}
		b.AddBranchN(from, to, br.Count, br.Mispreds)
	}
	for _, s := range fd.Samples {
		at, moved, ok := translate(s.At)
		if !ok {
			st.DroppedCount += s.Count
			continue
		}
		if moved {
			st.TranslatedSamples += s.Count
		} else {
			st.PassthroughCount += s.Count
		}
		b.AddSampleN(at, s.Count)
	}
	return b.Build(), st
}

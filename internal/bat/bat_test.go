package bat

import (
	"bytes"
	"reflect"
	"testing"
)

func sampleTable() *Table {
	t := &Table{}
	fi := t.AddFunc("alpha", 0x80)
	t.AddRange(Range{FuncIdx: fi, Start: 0x401000, Size: 0x30, Entries: []Entry{
		{OutOff: 0x00, InOff: 0x00},
		{OutOff: 0x08, InOff: 0x10}, // block moved forward
		{OutOff: 0x10, InOff: 0x08}, // and one moved back (negative delta)
		{OutOff: 0x20, InOff: 0x40},
	}})
	t.AddRange(Range{FuncIdx: fi, Start: 0x402000, Size: 0x10, Cold: true, Entries: []Entry{
		{OutOff: 0x00, InOff: 0x60},
		{OutOff: 0x06, InOff: 0x68},
	}})
	gi := t.AddFunc("beta", 0x20)
	t.AddRange(Range{FuncIdx: gi, Start: 0x401040, Size: 0x10, Entries: []Entry{
		{OutOff: 0x00, InOff: 0x00},
	}})
	return t
}

func TestEncodeParseRoundTrip(t *testing.T) {
	tab := sampleTable()
	enc := tab.Encode()
	got, err := Parse(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Funcs, tab.Funcs) {
		t.Fatalf("funcs diverge: %+v vs %+v", got.Funcs, tab.Funcs)
	}
	if !reflect.DeepEqual(got.Ranges, tab.Ranges) {
		t.Fatalf("ranges diverge:\n got %+v\nwant %+v", got.Ranges, tab.Ranges)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a := sampleTable().Encode()
	b := sampleTable().Encode()
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same table differ")
	}
	// Encoding an already-encoded-and-parsed table is also stable.
	parsed, err := Parse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(parsed.Encode(), a) {
		t.Fatal("re-encoding after parse differs")
	}
}

func TestTranslate(t *testing.T) {
	tab := sampleTable()
	cases := []struct {
		addr   uint64
		fn     string
		off    uint64
		wantOK bool
	}{
		{0x401000, "alpha", 0x00, true},
		{0x401008, "alpha", 0x10, true},
		{0x401010, "alpha", 0x08, true},
		{0x40100c, "alpha", 0x10, true}, // mid-anchor clamps back
		{0x401025, "alpha", 0x40, true}, // past last anchor, inside range
		{0x402000, "alpha", 0x60, true}, // cold fragment
		{0x402006, "alpha", 0x68, true}, // cold fragment second anchor
		{0x401040, "beta", 0x00, true},  // second function
		{0x400fff, "", 0, false},        // before every range
		{0x401030, "", 0, false},        // gap between ranges
		{0x402010, "", 0, false},        // past the cold range
		{0x500000, "", 0, false},        // far away
	}
	for _, c := range cases {
		fn, off, ok := tab.Translate(c.addr)
		if ok != c.wantOK || fn != c.fn || off != c.off {
			t.Errorf("Translate(%#x) = (%q, %#x, %v), want (%q, %#x, %v)",
				c.addr, fn, off, ok, c.fn, c.off, c.wantOK)
		}
	}
}

func TestParseRejectsCorrupt(t *testing.T) {
	enc := sampleTable().Encode()
	for _, bad := range [][]byte{
		nil,
		[]byte("XXXX"),
		enc[:4],
		enc[:len(enc)-1],
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%d bytes) unexpectedly succeeded", len(bad))
		}
	}
}

func TestFuncSize(t *testing.T) {
	tab := sampleTable()
	if sz, ok := tab.FuncSize("alpha"); !ok || sz != 0x80 {
		t.Fatalf("FuncSize(alpha) = %#x, %v", sz, ok)
	}
	// After a parse (funcIdx not pre-built) the lazy path must work too.
	parsed, err := Parse(tab.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if sz, ok := parsed.FuncSize("beta"); !ok || sz != 0x20 {
		t.Fatalf("parsed FuncSize(beta) = %#x, %v", sz, ok)
	}
	if _, ok := parsed.FuncSize("gamma"); ok {
		t.Fatal("FuncSize(gamma) unexpectedly resolved")
	}
}

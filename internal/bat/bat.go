// Package bat implements the BOLT Address Translation table (paper §7.3,
// "BOLT for continuous profiling"): a map from every address range of the
// *optimized* binary's relocated code back to (input function, input
// offset) coordinates. gobolt writes the table into a .bolt.bat section
// during rewrite; perf2bolt detects the section and uses it to rewrite a
// profile collected in production on the BOLTed binary into input-binary
// coordinates, closing the continuous-PGO loop: the translated profile
// feeds a fresh gobolt run on the *original* binary.
//
// Granularity is per emitted instruction: each range (one hot or cold
// fragment of one function) carries anchors (output offset -> input
// offset) for every instruction that originated in the input binary.
// Synthesized instructions (layout jumps, ICP compares) have no anchor
// and clamp to the nearest preceding one.
package bat

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// SectionName is where the serialized table lives in the output ELF.
const SectionName = ".bolt.bat"

// magic and version guard the encoding.
const (
	magic   = "GBAT"
	version = 1
)

// Entry anchors one emitted instruction: its offset within the output
// fragment and the matching offset within the input function.
type Entry struct {
	OutOff uint32
	InOff  uint32
}

// Range is one contiguous chunk of relocated code (the hot or cold
// fragment of one function) in the output address space.
type Range struct {
	FuncIdx int    // index into Table.Funcs
	Start   uint64 // output virtual address of the fragment
	Size    uint32 // fragment size in bytes
	Cold    bool
	Entries []Entry // sorted by OutOff
}

// FuncInfo describes one input-coordinate function the table maps into.
type FuncInfo struct {
	Name   string
	InSize uint64 // input-binary function size (for validation)
}

// Table is the full address-translation map of one rewritten binary.
type Table struct {
	Funcs  []FuncInfo
	Ranges []Range // sorted by Start (Encode/Translate maintain this)

	funcIdx map[string]int
	sorted  bool
}

// AddFunc interns a function and returns its index.
func (t *Table) AddFunc(name string, inSize uint64) int {
	if t.funcIdx == nil {
		t.funcIdx = map[string]int{}
	}
	if i, ok := t.funcIdx[name]; ok {
		return i
	}
	i := len(t.Funcs)
	t.Funcs = append(t.Funcs, FuncInfo{Name: name, InSize: inSize})
	t.funcIdx[name] = i
	return i
}

// FuncSize returns the input-binary size of a mapped function.
func (t *Table) FuncSize(name string) (uint64, bool) {
	if t.funcIdx == nil {
		t.funcIdx = map[string]int{}
		for i, f := range t.Funcs {
			t.funcIdx[f.Name] = i
		}
	}
	i, ok := t.funcIdx[name]
	if !ok {
		return 0, false
	}
	return t.Funcs[i].InSize, true
}

// AddRange appends a fragment range. Entries must be sorted by OutOff;
// ranges are re-sorted by start address on the next Encode or Translate,
// so call order does not matter.
func (t *Table) AddRange(r Range) {
	t.Ranges = append(t.Ranges, r)
	t.sorted = false
}

func (t *Table) ensureSorted() {
	if t.sorted {
		return
	}
	sort.Slice(t.Ranges, func(i, j int) bool { return t.Ranges[i].Start < t.Ranges[j].Start })
	t.sorted = true
}

// Encode serializes the table deterministically: header, function table,
// then ranges sorted by output start address with delta-compressed
// anchors.
func (t *Table) Encode() []byte {
	t.ensureSorted()
	out := []byte(magic)
	out = binary.AppendUvarint(out, version)
	out = binary.AppendUvarint(out, uint64(len(t.Funcs)))
	for _, f := range t.Funcs {
		out = binary.AppendUvarint(out, uint64(len(f.Name)))
		out = append(out, f.Name...)
		out = binary.AppendUvarint(out, f.InSize)
	}
	out = binary.AppendUvarint(out, uint64(len(t.Ranges)))
	prevStart := uint64(0)
	for _, r := range t.Ranges {
		out = binary.AppendUvarint(out, uint64(r.FuncIdx))
		flags := uint64(0)
		if r.Cold {
			flags = 1
		}
		out = binary.AppendUvarint(out, flags)
		out = binary.AppendUvarint(out, r.Start-prevStart) // ascending
		prevStart = r.Start
		out = binary.AppendUvarint(out, uint64(r.Size))
		out = binary.AppendUvarint(out, uint64(len(r.Entries)))
		prevOut, prevIn := uint64(0), uint64(0)
		for _, e := range r.Entries {
			out = binary.AppendUvarint(out, uint64(e.OutOff)-prevOut)
			out = appendZigzag(out, int64(uint64(e.InOff))-int64(prevIn))
			prevOut, prevIn = uint64(e.OutOff), uint64(e.InOff)
		}
	}
	return out
}

func appendZigzag(b []byte, v int64) []byte {
	return binary.AppendUvarint(b, uint64(v<<1)^uint64(v>>63))
}

type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.err = fmt.Errorf("bat: truncated uvarint at %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) zigzag() int64 {
	u := r.uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

func (r *reader) bytes(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if uint64(r.pos)+n > uint64(len(r.data)) {
		r.err = fmt.Errorf("bat: truncated string at %d", r.pos)
		return nil
	}
	b := r.data[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b
}

// Parse decodes a table serialized by Encode.
func Parse(data []byte) (*Table, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("bat: bad magic")
	}
	r := &reader{data: data, pos: len(magic)}
	if v := r.uvarint(); r.err == nil && v != version {
		return nil, fmt.Errorf("bat: unsupported version %d", v)
	}
	t := &Table{}
	nf := r.uvarint()
	if nf > 1<<24 {
		return nil, fmt.Errorf("bat: implausible function count %d", nf)
	}
	for i := uint64(0); i < nf && r.err == nil; i++ {
		nameLen := r.uvarint()
		if nameLen > 1<<16 {
			return nil, fmt.Errorf("bat: implausible name length %d", nameLen)
		}
		name := string(r.bytes(nameLen))
		size := r.uvarint()
		t.Funcs = append(t.Funcs, FuncInfo{Name: name, InSize: size})
	}
	nr := r.uvarint()
	if nr > 1<<24 {
		return nil, fmt.Errorf("bat: implausible range count %d", nr)
	}
	start := uint64(0)
	for i := uint64(0); i < nr && r.err == nil; i++ {
		var rg Range
		fi := r.uvarint()
		if fi >= uint64(len(t.Funcs)) {
			return nil, fmt.Errorf("bat: range references function %d of %d", fi, len(t.Funcs))
		}
		rg.FuncIdx = int(fi)
		rg.Cold = r.uvarint()&1 != 0
		start += r.uvarint()
		rg.Start = start
		rg.Size = uint32(r.uvarint())
		ne := r.uvarint()
		if ne > 1<<24 {
			return nil, fmt.Errorf("bat: implausible entry count %d", ne)
		}
		outOff, inOff := uint64(0), int64(0)
		for j := uint64(0); j < ne && r.err == nil; j++ {
			outOff += r.uvarint()
			inOff += r.zigzag()
			rg.Entries = append(rg.Entries, Entry{OutOff: uint32(outOff), InOff: uint32(inOff)})
		}
		t.Ranges = append(t.Ranges, rg)
	}
	if r.err != nil {
		return nil, r.err
	}
	t.sorted = true // deltas are unsigned, so decode order is ascending
	return t, nil
}

// Translate maps an output-binary virtual address to input coordinates.
// Addresses inside a mapped range resolve to the nearest anchored
// instruction at or before them; addresses outside every range (unmoved
// code, data) report ok=false.
func (t *Table) Translate(addr uint64) (fn string, off uint64, ok bool) {
	t.ensureSorted()
	i := sort.Search(len(t.Ranges), func(i int) bool { return t.Ranges[i].Start > addr })
	if i == 0 {
		return "", 0, false
	}
	r := &t.Ranges[i-1]
	if addr >= r.Start+uint64(r.Size) {
		return "", 0, false
	}
	rel := uint32(addr - r.Start)
	es := r.Entries
	j := sort.Search(len(es), func(j int) bool { return es[j].OutOff > rel })
	if j == 0 {
		// Before the first anchor (can only happen for fully synthesized
		// prefixes); clamp to the fragment's first anchor if any.
		if len(es) == 0 {
			return "", 0, false
		}
		return t.Funcs[r.FuncIdx].Name, uint64(es[0].InOff), true
	}
	// Clamp to the anchor: sampled addresses land on instruction starts,
	// and for synthesized instructions the nearest originating
	// instruction is the best input-coordinate witness.
	return t.Funcs[r.FuncIdx].Name, uint64(es[j-1].InOff), true
}

package bat

import (
	"bytes"
	"reflect"
	"testing"
)

// fuzzSeedTable builds a rewrite-shaped table (hot+cold ranges over a
// few interned functions, delta-friendly anchors) whose encoding seeds
// the corpus with a structurally valid document.
func fuzzSeedTable() *Table {
	t := &Table{}
	a := t.AddFunc("alpha", 0x120)
	b := t.AddFunc("beta", 0x400)
	t.AddRange(Range{FuncIdx: a, Start: 0x401000, Size: 0x40, Entries: []Entry{{0, 0}, {0x10, 0x20}, {0x28, 0x88}}})
	t.AddRange(Range{FuncIdx: a, Start: 0x481000, Size: 0x18, Cold: true, Entries: []Entry{{0, 0x90}, {0x8, 0x100}}})
	t.AddRange(Range{FuncIdx: b, Start: 0x401040, Size: 0x200, Entries: []Entry{{0, 0}, {0x80, 0x1c0}}})
	return t
}

// FuzzBATDecode feeds arbitrary bytes to the BAT parser (must never
// panic) and, whenever an input parses, checks decode→encode→decode is
// a fixpoint on the exported structure: the continuous-profiling loop
// round-trips tables through exactly this path.
func FuzzBATDecode(f *testing.F) {
	f.Add(fuzzSeedTable().Encode())
	f.Add([]byte("GBAT"))
	f.Add([]byte{})
	empty := &Table{}
	f.Add(empty.Encode())
	one := &Table{}
	one.AddRange(Range{FuncIdx: one.AddFunc("x", 1), Start: 1, Size: 1, Entries: []Entry{{0, 0}}})
	f.Add(one.Encode())
	f.Fuzz(func(t *testing.T, in []byte) {
		tbl, err := Parse(in)
		if err != nil {
			return // rejected inputs just must not panic
		}
		enc := tbl.Encode()
		got, err := Parse(enc)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		// Compare the exported structure, not the whole Table: funcIdx
		// and sorted are lazily-built internals.
		if !reflect.DeepEqual(got.Funcs, tbl.Funcs) {
			t.Fatalf("functions drift:\n got %+v\nwant %+v", got.Funcs, tbl.Funcs)
		}
		if !reflect.DeepEqual(got.Ranges, tbl.Ranges) {
			t.Fatalf("ranges drift:\n got %+v\nwant %+v", got.Ranges, tbl.Ranges)
		}
		if !bytes.Equal(got.Encode(), enc) {
			t.Fatal("encode is not a fixpoint after one round trip")
		}
	})
}

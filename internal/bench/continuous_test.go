package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"gobolt/bolt"
	"gobolt/internal/bat"
	"gobolt/internal/elfx"
	"gobolt/internal/perf"
	"gobolt/internal/profile"
	"gobolt/internal/workload"
)

// buildTiny links the Tiny workload (optionally with version-skew pads).
func buildTiny(t *testing.T, pad int) *elfx.File {
	t.Helper()
	spec := workload.Tiny()
	spec.EntryPadOps = pad
	f, _, err := Build(spec, CfgBaseline, perf.DefaultMode())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// analyzeProfile applies fd to a fresh analysis of f through the bolt
// API (optionally with stale matching disabled) and returns the session
// for stats and function inspection.
func analyzeProfile(t *testing.T, f *elfx.File, fd *profile.Fdata, stale bool) *bolt.Session {
	t.Helper()
	cx := context.Background()
	sess, err := bolt.OpenELF(f, bolt.WithOptions(boltOptions()), bolt.WithStaleMatching(stale))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.LoadProfile(cx, bolt.Fdata(fd)); err != nil {
		t.Fatal(err)
	}
	if err := sess.Analyze(cx); err != nil {
		t.Fatal(err)
	}
	return sess
}

func sessionStats(t *testing.T, sess *bolt.Session) map[string]int64 {
	t.Helper()
	st, err := sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestContinuousBATRoundTrip drives the full optimize→sample→translate
// loop on the Tiny workload and checks the BAT layer invariants:
// deterministic double translation, cold-fragment coverage, and that the
// translated profile drives ApplyProfile (including flow repair on
// functions that were split in round 1).
func TestContinuousBATRoundTrip(t *testing.T) {
	cx := context.Background()
	spec := workload.Tiny()
	mode := perf.DefaultMode()
	base, _, err := Build(spec, CfgBaseline, mode)
	if err != nil {
		t.Fatal(err)
	}
	fdFresh, err := recordWithShapes(base, mode)
	if err != nil {
		t.Fatal(err)
	}
	sess1, _, err := optimizeSession(base, fdFresh, bolt.WithOptions(boltOptions()))
	if err != nil {
		t.Fatal(err)
	}
	opt := sess1.Output()

	table, err := bat.FromFile(opt)
	if err != nil {
		t.Fatal(err)
	}
	if table == nil {
		t.Fatalf("optimized binary carries no %s section", bat.SectionName)
	}

	// The loop re-disassembles gobolt's own output (vmrun -record embeds
	// shapes of whatever binary it runs, BOLTed or not). This must not
	// choke on gobolt-only constructs like SCTC conditional tail calls.
	optSess, err := bolt.OpenELF(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := optSess.Analyze(cx); err != nil {
		t.Fatalf("re-disassembling the BOLTed binary: %v", err)
	}
	if shapes, err := optSess.Shapes(); err != nil || len(shapes) == 0 {
		t.Fatalf("no shapes derivable from the BOLTed binary (%v)", err)
	}

	// Cold fragments must be mapped and must translate into their parent
	// function's input coordinate space.
	coldRanges := 0
	for _, r := range table.Ranges {
		if !r.Cold || len(r.Entries) == 0 {
			continue
		}
		coldRanges++
		fn, off, ok := table.Translate(r.Start + uint64(r.Entries[0].OutOff))
		if !ok || strings.Contains(fn, ".cold") {
			t.Fatalf("cold range at %#x translated to (%q, %#x, %v)", r.Start, fn, off, ok)
		}
		if size, _ := table.FuncSize(fn); off >= size {
			t.Fatalf("cold range of %s translated past function end: %#x >= %#x", fn, off, size)
		}
	}
	if coldRanges == 0 {
		t.Fatal("no cold ranges in BAT table (split functions expected)")
	}

	// Sample the optimized binary and translate — twice, through the
	// BAT-auto-detecting profile source; the two outputs must serialize
	// byte-identically (determinism satellite).
	fdOpt, _, err := perf.RecordFile(opt, mode, 0)
	if err != nil {
		t.Fatal(err)
	}
	src1 := bolt.SampledOnELF(bolt.Fdata(fdOpt), opt)
	trans1, err := src1.Load(cx)
	if err != nil {
		t.Fatal(err)
	}
	if !src1.Result.Translated {
		t.Fatal("SampledOn did not auto-detect the BAT table")
	}
	trans2, err := bolt.SampledOnELF(bolt.Fdata(fdOpt), opt).Load(cx)
	if err != nil {
		t.Fatal(err)
	}
	var buf1, buf2 bytes.Buffer
	if err := trans1.Write(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := trans2.Write(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("translating the same profile twice produced different bytes")
	}
	if src1.Result.Stats.DroppedCount > fdOpt.TotalBranchCount()/20 {
		t.Fatalf("translation dropped %d of %d counts", src1.Result.Stats.DroppedCount, fdOpt.TotalBranchCount())
	}

	// Apply the translated profile to a fresh analysis of the input
	// binary: counts must attach, and functions that were split in round
	// 1 (their profile partly collected in the cold section) must come
	// out of flow repair with consistent counts.
	sessT := analyzeProfile(t, base, trans1, true)
	stats := sessionStats(t, sessT)
	if stats["profile-edge-count"] == 0 || stats["profile-call-count"] == 0 {
		t.Fatalf("translated profile did not apply: %v", stats)
	}
	funcs1, err := sess1.Functions()
	if err != nil {
		t.Fatal(err)
	}
	splitSampled := 0
	for _, fn1 := range funcs1 {
		if !fn1.IsSplit {
			continue
		}
		fn, err := sessT.Function(fn1.Name)
		if err != nil {
			t.Fatal(err)
		}
		if fn == nil || !fn.Sampled {
			continue
		}
		splitSampled++
		if fn.ProfileAcc < 0.5 {
			t.Errorf("split function %s: flow repair left accuracy %.2f", fn.Name, fn.ProfileAcc)
		}
	}
	if splitSampled == 0 {
		t.Fatal("no cold-split function received translated profile data")
	}
}

// TestStaleMatchingRecovers rebuilds the workload with padded prologues
// (a mutated release): without matching the intra-function records drop;
// with matching they recover onto real CFG edges.
func TestStaleMatchingRecovers(t *testing.T) {
	mode := perf.DefaultMode()
	base, _, err := Build(workload.Tiny(), CfgBaseline, mode)
	if err != nil {
		t.Fatal(err)
	}
	fd, err := recordWithShapes(base, mode)
	if err != nil {
		t.Fatal(err)
	}

	v2f := buildTiny(t, 3)
	// Stale matching off: the classic behaviour, intra-function counts die.
	offStats := sessionStats(t, analyzeProfile(t, v2f, fd, false))

	v2 := analyzeProfile(t, v2f, fd, true)
	onStats := sessionStats(t, v2)
	recovered := onStats["profile-stale-count"]
	if recovered == 0 {
		t.Fatalf("stale matching recovered nothing: %v", onStats)
	}
	if onStats["profile-stale-funcs"] == 0 {
		t.Fatal("no function was diagnosed stale")
	}
	// The classic pipeline must be visibly worse: everything the matcher
	// recovered was dropped (or worse, misattributed) before.
	if offStats["profile-edge-count"] >= onStats["profile-edge-count"]+recovered {
		t.Fatalf("stale matching did not add edge counts: off=%v on=%v", offStats, onStats)
	}
	// Recovered counts must have landed on actual edges of padded
	// functions.
	funcs, err := v2.Functions()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, fn := range funcs {
		if !fn.Simple || !fn.Sampled {
			continue
		}
		for _, b := range fn.Blocks {
			for _, e := range b.Succs {
				if e.Count > 0 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("no edge counts present after stale application")
	}
}

// TestContinuousExperiment runs the full §7.3 experiment at reduced scale
// and asserts the acceptance-level rates.
func TestContinuousExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("continuous experiment takes seconds; skipped in -short")
	}
	res, report, err := Continuous(Scale(0.05))
	if err != nil {
		t.Fatal(err)
	}
	t.Log(report)
	if res.TranslationSurvival < 0.99 {
		t.Errorf("translation survival %.4f < 0.99", res.TranslationSurvival)
	}
	if res.VsFresh < 0.95 {
		t.Errorf("translated profile reproduces only %.4f of the fresh total (< 0.95)", res.VsFresh)
	}
	if res.AppliedVsFresh < 0.80 {
		t.Errorf("applied counts reproduce only %.4f of fresh (< 0.80)", res.AppliedVsFresh)
	}
	if res.SpeedupTranslated <= 0 {
		t.Errorf("re-optimizing with the translated profile gave no speedup: %.4f", res.SpeedupTranslated)
	}
	if res.StaleRecovered == 0 {
		t.Error("stale matching recovered no counts on the mutated binary")
	}
	if res.StaleRecoveryRate < 0.5 {
		t.Errorf("stale recovery rate %.4f < 0.5", res.StaleRecoveryRate)
	}
	if res.StaleSpeedup <= 0 {
		t.Errorf("stale-profile BOLT gave no speedup: %.4f", res.StaleSpeedup)
	}
}

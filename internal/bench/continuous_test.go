package bench

import (
	"bytes"
	"strings"
	"testing"

	"gobolt/internal/bat"
	"gobolt/internal/core"
	"gobolt/internal/passes"
	"gobolt/internal/perf"
	"gobolt/internal/workload"
)

// buildTiny links the Tiny workload (optionally with version-skew pads).
func buildTiny(t *testing.T, pad int) *core.BinaryContext {
	t.Helper()
	spec := workload.Tiny()
	spec.EntryPadOps = pad
	f, _, err := Build(spec, CfgBaseline, perf.DefaultMode())
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := core.NewContext(f, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

// TestContinuousBATRoundTrip drives the full optimize→sample→translate
// loop on the Tiny workload and checks the BAT layer invariants:
// deterministic double translation, cold-fragment coverage, and that the
// translated profile drives ApplyProfile (including flow repair on
// functions that were split in round 1).
func TestContinuousBATRoundTrip(t *testing.T) {
	spec := workload.Tiny()
	mode := perf.DefaultMode()
	base, _, err := Build(spec, CfgBaseline, mode)
	if err != nil {
		t.Fatal(err)
	}
	fdFresh, err := recordWithShapes(base, mode)
	if err != nil {
		t.Fatal(err)
	}
	opt, ctx1, err := passes.Optimize(base, fdFresh, boltOptions())
	if err != nil {
		t.Fatal(err)
	}

	table, err := bat.FromFile(opt.File)
	if err != nil {
		t.Fatal(err)
	}
	if table == nil {
		t.Fatalf("optimized binary carries no %s section", bat.SectionName)
	}

	// The loop re-disassembles gobolt's own output (vmrun -record embeds
	// shapes of whatever binary it runs, BOLTed or not). This must not
	// choke on gobolt-only constructs like SCTC conditional tail calls.
	optCtx, err := core.NewContext(opt.File, core.Options{})
	if err != nil {
		t.Fatalf("re-disassembling the BOLTed binary: %v", err)
	}
	if len(core.ComputeShapes(optCtx)) == 0 {
		t.Fatal("no shapes derivable from the BOLTed binary")
	}

	// Cold fragments must be mapped and must translate into their parent
	// function's input coordinate space.
	coldRanges := 0
	for _, r := range table.Ranges {
		if !r.Cold || len(r.Entries) == 0 {
			continue
		}
		coldRanges++
		fn, off, ok := table.Translate(r.Start + uint64(r.Entries[0].OutOff))
		if !ok || strings.Contains(fn, ".cold") {
			t.Fatalf("cold range at %#x translated to (%q, %#x, %v)", r.Start, fn, off, ok)
		}
		if size, _ := table.FuncSize(fn); off >= size {
			t.Fatalf("cold range of %s translated past function end: %#x >= %#x", fn, off, size)
		}
	}
	if coldRanges == 0 {
		t.Fatal("no cold ranges in BAT table (split functions expected)")
	}

	// Sample the optimized binary and translate — twice; the two outputs
	// must serialize byte-identically (determinism satellite).
	fdOpt, _, err := perf.RecordFile(opt.File, mode, 0)
	if err != nil {
		t.Fatal(err)
	}
	trans1, st1 := bat.TranslateProfile(fdOpt, opt.File, table)
	trans2, _ := bat.TranslateProfile(fdOpt, opt.File, table)
	var buf1, buf2 bytes.Buffer
	if err := trans1.Write(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := trans2.Write(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("translating the same profile twice produced different bytes")
	}
	if st1.DroppedCount > fdOpt.TotalBranchCount()/20 {
		t.Fatalf("translation dropped %d of %d counts", st1.DroppedCount, fdOpt.TotalBranchCount())
	}

	// Apply the translated profile to a fresh context of the input
	// binary: counts must attach, and functions that were split in round
	// 1 (their profile partly collected in the cold section) must come
	// out of flow repair with consistent counts.
	ctxT, err := core.NewContext(base, boltOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctxT.ApplyProfile(trans1)
	if ctxT.Stats["profile-edge-count"] == 0 || ctxT.Stats["profile-call-count"] == 0 {
		t.Fatalf("translated profile did not apply: %v", ctxT.Stats)
	}
	splitSampled := 0
	for _, fn1 := range ctx1.Funcs {
		if !fn1.IsSplit {
			continue
		}
		fn := ctxT.ByName[fn1.Name]
		if fn == nil || !fn.Sampled {
			continue
		}
		splitSampled++
		if fn.ProfileAcc < 0.5 {
			t.Errorf("split function %s: flow repair left accuracy %.2f", fn.Name, fn.ProfileAcc)
		}
	}
	if splitSampled == 0 {
		t.Fatal("no cold-split function received translated profile data")
	}
}

// TestStaleMatchingRecovers rebuilds the workload with padded prologues
// (a mutated release): without matching the intra-function records drop;
// with matching they recover onto real CFG edges.
func TestStaleMatchingRecovers(t *testing.T) {
	mode := perf.DefaultMode()
	base, _, err := Build(workload.Tiny(), CfgBaseline, mode)
	if err != nil {
		t.Fatal(err)
	}
	fd, err := recordWithShapes(base, mode)
	if err != nil {
		t.Fatal(err)
	}

	v2 := buildTiny(t, 3)
	// Stale matching off: today's behaviour, intra-function counts die.
	off := buildTiny(t, 3)
	off.Opts.StaleMatching = false
	off.ApplyProfile(fd)

	v2.ApplyProfile(fd)
	recovered := v2.Stats["profile-stale-count"]
	if recovered == 0 {
		t.Fatalf("stale matching recovered nothing: %v", v2.Stats)
	}
	if v2.Stats["profile-stale-funcs"] == 0 {
		t.Fatal("no function was diagnosed stale")
	}
	// The classic pipeline must be visibly worse: everything the matcher
	// recovered was dropped (or worse, misattributed) before.
	if off.Stats["profile-edge-count"] >= v2.Stats["profile-edge-count"]+recovered {
		t.Fatalf("stale matching did not add edge counts: off=%v on=%v", off.Stats, v2.Stats)
	}
	// Recovered counts must have landed on actual edges of padded
	// functions.
	found := false
	for _, fn := range v2.Funcs {
		if !fn.Simple || !fn.Sampled {
			continue
		}
		for _, b := range fn.Blocks {
			for _, e := range b.Succs {
				if e.Count > 0 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("no edge counts present after stale application")
	}
}

// TestContinuousExperiment runs the full §7.3 experiment at reduced scale
// and asserts the acceptance-level rates.
func TestContinuousExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("continuous experiment takes seconds; skipped in -short")
	}
	res, report, err := Continuous(Scale(0.05))
	if err != nil {
		t.Fatal(err)
	}
	t.Log(report)
	if res.TranslationSurvival < 0.99 {
		t.Errorf("translation survival %.4f < 0.99", res.TranslationSurvival)
	}
	if res.VsFresh < 0.95 {
		t.Errorf("translated profile reproduces only %.4f of the fresh total (< 0.95)", res.VsFresh)
	}
	if res.AppliedVsFresh < 0.80 {
		t.Errorf("applied counts reproduce only %.4f of fresh (< 0.80)", res.AppliedVsFresh)
	}
	if res.SpeedupTranslated <= 0 {
		t.Errorf("re-optimizing with the translated profile gave no speedup: %.4f", res.SpeedupTranslated)
	}
	if res.StaleRecovered == 0 {
		t.Error("stale matching recovered no counts on the mutated binary")
	}
	if res.StaleRecoveryRate < 0.5 {
		t.Errorf("stale recovery rate %.4f < 0.5", res.StaleRecoveryRate)
	}
	if res.StaleSpeedup <= 0 {
		t.Errorf("stale-profile BOLT gave no speedup: %.4f", res.StaleSpeedup)
	}
}

package bench

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"time"

	"gobolt/bolt"
	"gobolt/internal/benchfmt"
	"gobolt/internal/core"
	"gobolt/internal/obsv"
	"gobolt/internal/perf"
	"gobolt/internal/workload"
)

// DefaultScalingJobs is the jobs sweep the scaling experiment runs when
// no explicit list is given (and the sweep BENCH_*.json baselines are
// recorded at).
var DefaultScalingJobs = []int{1, 2, 4, 8}

// ScalingPoint is one jobs value of a scaling sweep: the end-to-end
// session wall time plus the Amdahl split of the pipeline's measured
// phase timings at that worker count.
type ScalingPoint struct {
	Jobs   int
	Wall   time.Duration
	Amdahl core.AmdahlSummary
	Report *bolt.Report
}

// Scaling is the jobs-sweep scaling experiment: it builds the clang
// workload and a training profile once, then runs the full session
// (open → profile → optimize) at each worker count in jobsList,
// verifying every run produces a byte-identical output binary and
// identical statistics — any divergence is an error, which is what the
// CI scaling-smoke job leans on. For each point it folds the session's
// phase timings (load, passes, emit) through core.Amdahl and reports,
// as benchfmt, the wall time and measured serial fraction per phase
// group and for the whole pipeline, so sweeps can be compared with
// benchstat or gated with ScalingGate.
//
// A phase counts as serial if it did not run on the worker pool, so the
// jobs=1 point always reports serial fraction 1 — it exists as the
// speedup denominator. The interesting number is the serial fraction at
// jobs>1: the share of wall the pool cannot touch, whose reciprocal
// bounds the useful worker count.
func Scaling(scale Scale, jobsList []int) ([]benchfmt.Result, string, error) {
	jobsList = normalizeJobs(jobsList)
	spec := scale.apply(workload.Clang())
	mode := perf.DefaultMode()
	f, _, err := Build(spec, CfgBaseline, mode)
	if err != nil {
		return nil, "", err
	}
	fd, _, err := perf.RecordFile(f, mode, 0)
	if err != nil {
		return nil, "", err
	}

	var points []ScalingPoint
	var firstRaw []byte
	for _, j := range jobsList {
		opts := boltOptions()
		opts.Jobs = j
		// Each point gets its own tracer so a divergence error can show
		// the worker-pool schedule of the failing run next to the
		// baseline's (Report.Occupancy rides along either way).
		opts.Trace = obsv.New()
		cx := context.Background()
		start := time.Now()
		sess, err := bolt.OpenELF(f, bolt.WithOptions(opts))
		if err != nil {
			return nil, "", fmt.Errorf("jobs=%d: %w", j, err)
		}
		if err := sess.LoadProfile(cx, bolt.Fdata(fd)); err != nil {
			return nil, "", fmt.Errorf("jobs=%d: %w", j, err)
		}
		rep, err := sess.Optimize(cx)
		wall := time.Since(start)
		if err != nil {
			return nil, "", fmt.Errorf("jobs=%d: %w", j, err)
		}
		raw, err := sess.Output().Bytes()
		if err != nil {
			return nil, "", fmt.Errorf("jobs=%d: %w", j, err)
		}
		if firstRaw == nil {
			firstRaw = raw
		} else {
			if !bytes.Equal(firstRaw, raw) {
				return nil, "", fmt.Errorf("bench: emitted binaries diverge across worker counts (jobs=%d vs jobs=%d: %d vs %d bytes)\n%s",
					jobsList[0], j, len(firstRaw), len(raw),
					divergenceOccupancy(jobsList[0], points[0].Report, j, rep))
			}
			if !reflect.DeepEqual(points[0].Report.Stats, rep.Stats) {
				return nil, "", fmt.Errorf("bench: stats diverge across worker counts (jobs=%d vs jobs=%d)\n%s",
					jobsList[0], j,
					divergenceOccupancy(jobsList[0], points[0].Report, j, rep))
			}
		}
		points = append(points, ScalingPoint{
			Jobs: j, Wall: wall, Amdahl: core.Amdahl(rep.Timings()), Report: rep,
		})
	}

	var results []benchfmt.Result
	for _, p := range points {
		groups := []struct {
			phase   string
			timings []core.PassTiming
		}{
			{"load", p.Report.LoadTimings},
			{"passes", p.Report.PassTimings},
			{"emit", p.Report.EmitTimings},
		}
		for _, g := range groups {
			a := core.Amdahl(g.timings)
			results = append(results, scalingResult(spec.Name, g.phase, p.Jobs, a.Total, a.SerialFraction))
		}
		results = append(results, scalingResult(spec.Name, "pipeline", p.Jobs, p.Wall, p.Amdahl.SerialFraction))
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "Scaling sweep on %s (%d simple functions, GOMAXPROCS=%d)\n",
		spec.Name, points[0].Report.SimpleFuncs, runtime.GOMAXPROCS(0))
	fmt.Fprintf(&sb, "  %5s %12s %8s %13s %12s %16s\n",
		"jobs", "wall", "speedup", "serial wall", "serial frac", "max useful jobs")
	base := float64(points[0].Wall)
	for _, p := range points {
		jobsStr := "unbounded"
		if !math.IsInf(p.Amdahl.MaxUsefulJobs, 1) {
			jobsStr = fmt.Sprintf("~%.0f", math.Ceil(p.Amdahl.MaxUsefulJobs))
		}
		fmt.Fprintf(&sb, "  %5d %12v %7.2fx %13v %11.1f%% %16s\n",
			p.Jobs, p.Wall.Round(time.Microsecond), base/float64(p.Wall),
			p.Amdahl.SerialWall.Round(time.Microsecond), 100*p.Amdahl.SerialFraction, jobsStr)
	}
	fmt.Fprintf(&sb, "outputs byte-identical and stats identical across jobs=%v\n", jobsList)
	if runtime.GOMAXPROCS(0) == 1 {
		sb.WriteString("(single-CPU host: worker-pool speedup cannot materialize; serial fractions remain meaningful)\n")
	}
	sb.WriteByte('\n')
	writeSpeedReport(&sb, results)
	return results, sb.String(), nil
}

// divergenceOccupancy renders the baseline and failing runs' per-phase
// occupancy summaries side by side, so a cross-jobs divergence error
// carries the worker-pool schedule that produced it.
func divergenceOccupancy(baseJobs int, base *bolt.Report, failJobs int, fail *bolt.Report) string {
	return fmt.Sprintf("baseline jobs=%d occupancy:\n%sfailing jobs=%d occupancy:\n%s",
		baseJobs, obsv.Summarize(base.OccupancyStats()),
		failJobs, obsv.Summarize(fail.OccupancyStats()))
}

// scalingResult builds one benchfmt line of the sweep. Iters is 1 —
// each point is a single end-to-end run, not an averaged loop — and the
// serial fraction rides along as a custom lower-is-better unit.
func scalingResult(workload, phase string, jobs int, wall time.Duration, serialFrac float64) benchfmt.Result {
	return benchfmt.Result{
		Name:  fmt.Sprintf("BenchmarkScaling/%s/%s/jobs=%d-%d", phase, workload, jobs, runtime.GOMAXPROCS(0)),
		Iters: 1,
		Metrics: map[string]float64{
			"ns/op":           float64(wall.Nanoseconds()),
			"serial-fraction": serialFrac,
		},
	}
}

// normalizeJobs sorts, dedups, and defaults a jobs sweep, dropping
// non-positive entries. The ascending order puts jobs=1 (when present)
// first, where Scaling uses it as the speedup baseline.
func normalizeJobs(jobsList []int) []int {
	out := make([]int, 0, len(jobsList))
	for _, j := range jobsList {
		if j > 0 {
			out = append(out, j)
		}
	}
	if len(out) == 0 {
		return append(out, DefaultScalingJobs...)
	}
	sort.Ints(out)
	n := 1
	for _, j := range out[1:] {
		if j != out[n-1] {
			out[n] = j
			n++
		}
	}
	return out[:n]
}

// scalingAbsSlack is the absolute serial-fraction change (in fraction
// units, i.e. 0.02 = two percentage points) a run must exceed before
// the gate can fail. Serial fraction is a ratio of wall-clock sums, so
// on a loaded CI host it wobbles by a point or two even with identical
// code; a purely relative threshold over a ~5% baseline would turn that
// noise into spurious failures.
const scalingAbsSlack = 0.02

// NewScalingBenchFile builds a gate-baseline skeleton from a fresh
// scaling sweep: the gate pins the pipeline serial fraction at the
// sweep's gate point (jobs=2 when swept — the point the CI smoke job
// can reproduce on any host — else the largest jobs value) at a 10%
// relative threshold. Edit Issue/Local/Comparison/Notes by hand before
// committing.
func NewScalingBenchFile(scale Scale, jobsList []int, results []benchfmt.Result, now time.Time) *BenchFile {
	jobsList = normalizeJobs(jobsList)
	gateJobs := jobsList[len(jobsList)-1]
	for _, j := range jobsList {
		if j == 2 {
			gateJobs = 2
		}
	}
	bf := &BenchFile{Date: now.UTC().Format("2006-01-02")}
	bf.Host.GOOS = runtime.GOOS
	bf.Host.GOARCH = runtime.GOARCH
	bf.Host.CPUs = runtime.NumCPU()
	bf.Gate.Experiment = "scaling"
	bf.Gate.Scale = float64(scale)
	bf.Gate.Jobs = gateJobs
	bf.Gate.Unit = "serial-fraction"
	bf.Gate.ThresholdPct = 10
	bf.Gate.Results = results
	// The end-to-end point carries the gated fraction.
	for _, r := range results {
		if strings.Contains(r.Name, "/pipeline/") && strings.Contains(r.Name, fmt.Sprintf("/jobs=%d-", gateJobs)) {
			bf.Gate.Benchmark = benchfmt.BaseName(r.Name)
		}
	}
	return bf
}

// ScalingGate compares a fresh scaling sweep against the baseline
// committed in a BENCH_*.json file and fails if the gated pipeline
// serial fraction regressed beyond the recorded relative threshold AND
// by more than scalingAbsSlack absolute — both conditions, so wall-
// clock noise in a ~5% fraction cannot trip the gate on its own. The
// sweep must include the baseline's gate jobs point and have been taken
// at the baseline's scale; serial fraction shifts with both, so other
// comparisons are rejected outright.
func ScalingGate(bf *BenchFile, scale Scale, results []benchfmt.Result) (string, error) {
	if bf.Gate.Experiment != "scaling" {
		return "", fmt.Errorf("bench: baseline gates the %q experiment, not scaling", bf.Gate.Experiment)
	}
	if float64(scale) != bf.Gate.Scale {
		return "", fmt.Errorf("bench: scaling gate baseline was recorded at scale=%g, this run used scale=%g; rerun with the baseline's scale",
			bf.Gate.Scale, float64(scale))
	}
	deltas := benchfmt.Compare(bf.Gate.Results, results, bf.Gate.Unit)
	var sb strings.Builder
	fmt.Fprintf(&sb, "scaling gate (%s at jobs=%d, threshold +%.0f%% and +%.0fpp) vs baseline:\n",
		bf.Gate.Unit, bf.Gate.Jobs, bf.Gate.ThresholdPct, 100*scalingAbsSlack)
	sb.WriteString(benchfmt.FormatDeltas(deltas))
	var gated *benchfmt.Delta
	for i := range deltas {
		if deltas[i].Name == bf.Gate.Benchmark {
			gated = &deltas[i]
		}
	}
	if gated == nil {
		return sb.String(), fmt.Errorf("bench: gated benchmark %q missing from this sweep (did the jobs list include %d?)",
			bf.Gate.Benchmark, bf.Gate.Jobs)
	}
	if gated.Pct > bf.Gate.ThresholdPct && gated.New-gated.Old > scalingAbsSlack {
		return sb.String(), fmt.Errorf("bench: %s %s regressed %.2f%% (%.4f -> %.4f), over the +%.0f%% gate",
			gated.Name, gated.Unit, gated.Pct, gated.Old, gated.New, bf.Gate.ThresholdPct)
	}
	return sb.String(), nil
}

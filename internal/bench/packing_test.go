package bench

import (
	"sort"
	"testing"

	"gobolt/internal/core"
	"gobolt/internal/elfx"
	"gobolt/internal/perf"
	"gobolt/internal/vm"
	"gobolt/internal/workload"
)

type pageProbe struct {
	pages map[uint64]uint64
}

func (p *pageProbe) Inst(addr uint64, size uint8)                           { p.pages[addr>>12] += uint64(size) }
func (p *pageProbe) Branch(from, to uint64, taken bool, kind vm.BranchKind) {}
func (p *pageProbe) Mem(addr uint64, size uint8, write bool)                {}

// TestPagePackingImproves asserts the Figure 9 packing effect: after
// BOLT, 99% of instruction fetches fit in no more pages than before.
func TestPagePackingImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("full HHVM build+simulate experiment (~15s); run without -short")
	}
	spec := Scale(0.3).apply(workload.HHVM())
	mode := perf.DefaultMode()
	base, _, err := Build(spec, CfgHFSortLTO, mode)
	if err != nil {
		t.Fatal(err)
	}
	bolted, _, err := Bolt(base, mode, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	probe := func(name string, f *elfx.File) int {
		m, err := vm.New(f)
		if err != nil {
			t.Fatal(err)
		}
		p := &pageProbe{pages: map[uint64]uint64{}}
		m.SetTracer(p)
		if _, err := m.Run(0); err != nil {
			t.Fatal(err)
		}
		type pg struct {
			page  uint64
			bytes uint64
		}
		var list []pg
		var total uint64
		for k, v := range p.pages {
			list = append(list, pg{k, v})
			total += v
		}
		sort.Slice(list, func(i, j int) bool { return list[i].bytes > list[j].bytes })
		var cum uint64
		n99 := 0
		for _, e := range list {
			cum += e.bytes
			n99++
			if float64(cum) > 0.99*float64(total) {
				break
			}
		}
		bySec := map[string]int{}
		for i, e := range list {
			if i >= 60 {
				break
			}
			sec := f.SectionFor(e.page << 12)
			name := "?"
			if sec != nil {
				name = sec.Name
			}
			bySec[name]++
		}
		t.Logf("%s: %d pages touched, %d pages for 99%%; top-60 pages by section: %v",
			name, len(list), n99, bySec)
		return n99
	}
	basePages := probe("baseline", base)
	boltPages := probe("bolted", bolted)
	if boltPages > basePages {
		t.Errorf("99%%-fetch page set grew: %d -> %d", basePages, boltPages)
	}
}

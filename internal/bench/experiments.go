package bench

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"time"

	"gobolt/bolt"
	"gobolt/internal/cc"
	"gobolt/internal/core"
	"gobolt/internal/elfx"
	"gobolt/internal/hfsort"
	"gobolt/internal/ir"
	"gobolt/internal/layout"
	"gobolt/internal/ld"
	"gobolt/internal/obj"
	"gobolt/internal/perf"
	"gobolt/internal/profile"
	"gobolt/internal/uarch"
	"gobolt/internal/workload"
)

// boltJobs is the worker-pool width every experiment's gobolt invocation
// uses (0 = GOMAXPROCS); set by cmd/boltbench's -jobs flag.
var boltJobs int

// SetBoltJobs configures the pass-manager parallelism for all experiment
// pipelines.
func SetBoltJobs(jobs int) { boltJobs = jobs }

// boltOptions is the paper's evaluation configuration plus the harness's
// parallelism setting.
func boltOptions() core.Options {
	o := core.DefaultOptions()
	o.Jobs = boltJobs
	return o
}

// Scale shrinks workload iteration counts for fast runs (1.0 = full).
type Scale float64

func (s Scale) apply(spec workload.Spec) workload.Spec {
	if s > 0 && s != 1 {
		spec.Iterations = int(float64(spec.Iterations) * float64(s))
		if spec.Iterations < 500 {
			spec.Iterations = 500
		}
	}
	return spec
}

// SetInput swaps the input-data blob inside a built binary (baseline or
// BOLTed) so the same code can be evaluated on a different input, like
// the paper's input1..3/clang-build runs.
func SetInput(f *elfx.File, seed uint64) error {
	sym, ok := f.SymbolByName("input")
	if !ok {
		return fmt.Errorf("bench: no input symbol")
	}
	sec := f.SectionFor(sym.Value)
	if sec == nil {
		return fmt.Errorf("bench: input symbol not mapped")
	}
	copy(sec.Data[sym.Value-sec.Addr:], workload.InputBytes(seed, int(sym.Size)))
	return nil
}

// Fig5Row is one bar of Figure 5.
type Fig5Row struct {
	Workload string
	Speedup  float64
}

// Fig5 measures BOLT on top of the HFSort(+LTO for HHVM) baseline for the
// five data-center workloads.
func Fig5(scale Scale) ([]Fig5Row, string, error) {
	specs := []workload.Spec{
		workload.HHVM(), workload.TAO(), workload.Proxygen(),
		workload.Multifeed1(), workload.Multifeed2(),
	}
	mode := perf.DefaultMode()
	var rows []Fig5Row
	var speeds []float64
	for _, spec := range specs {
		spec = scale.apply(spec)
		cfg := CfgHFSort
		if spec.Name == "hhvm" {
			cfg = CfgHFSortLTO // the paper builds HHVM with LTO too
		}
		base, _, err := Build(spec, cfg, mode)
		if err != nil {
			return nil, "", fmt.Errorf("%s: %w", spec.Name, err)
		}
		bolted, _, err := Bolt(base, mode, boltOptions())
		if err != nil {
			return nil, "", fmt.Errorf("%s: bolt: %w", spec.Name, err)
		}
		mb, err := Measure(base, uarch.DefaultConfig(), false)
		if err != nil {
			return nil, "", err
		}
		mo, err := Measure(bolted, uarch.DefaultConfig(), false)
		if err != nil {
			return nil, "", err
		}
		if mb.Checksum != mo.Checksum {
			return nil, "", fmt.Errorf("%s: checksum mismatch after BOLT", spec.Name)
		}
		sp := uarch.Speedup(mb.Metrics, mo.Metrics)
		rows = append(rows, Fig5Row{Workload: spec.Name, Speedup: sp})
		speeds = append(speeds, sp)
	}
	rows = append(rows, Fig5Row{Workload: "GeoMean", Speedup: GeoMean(speeds)})

	var sb strings.Builder
	sb.WriteString("Figure 5: speedups from BOLT on data-center workloads (baseline: HFSort(+LTO))\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-12s %6.2f%%\n", r.Workload, 100*r.Speedup)
	}
	return rows, sb.String(), nil
}

// Fig6Row is one micro-architecture metric improvement.
type Fig6Row struct {
	Metric    string
	Reduction float64
}

// Fig6 reports HHVM miss-rate reductions across the hierarchy.
func Fig6(scale Scale) ([]Fig6Row, string, error) {
	spec := scale.apply(workload.HHVM())
	mode := perf.DefaultMode()
	base, _, err := Build(spec, CfgHFSortLTO, mode)
	if err != nil {
		return nil, "", err
	}
	bolted, _, err := Bolt(base, mode, boltOptions())
	if err != nil {
		return nil, "", err
	}
	mb, err := Measure(base, uarch.DefaultConfig(), false)
	if err != nil {
		return nil, "", err
	}
	mo, err := Measure(bolted, uarch.DefaultConfig(), false)
	if err != nil {
		return nil, "", err
	}
	b, o := mb.Metrics, mo.Metrics
	rows := []Fig6Row{
		{"Branch", uarch.Reduction(b.BranchMiss, o.BranchMiss)},
		{"D-Cache", uarch.Reduction(b.L1DMiss, o.L1DMiss)},
		{"I-Cache", uarch.Reduction(b.L1IMiss, o.L1IMiss)},
		{"I-TLB", uarch.Reduction(b.ITLBMiss, o.ITLBMiss)},
		{"D-TLB", uarch.Reduction(b.DTLBMiss, o.DTLBMiss)},
		{"LLC", uarch.Reduction(b.LLCMiss, o.LLCMiss)},
	}
	var sb strings.Builder
	sb.WriteString("Figure 6: micro-architecture miss reductions for HHVM\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-8s %6.2f%%\n", r.Metric, 100*r.Reduction)
	}
	fmt.Fprintf(&sb, "  (CPU time: %.2f%% speedup)\n", 100*uarch.Speedup(b, o))
	return rows, sb.String(), nil
}

// CompilerRow is one bar group of Figures 7/8.
type CompilerRow struct {
	Input   string
	BOLT    float64 // BOLT on plain baseline
	PGO     float64 // PGO(+LTO) over baseline
	PGOBOLT float64 // PGO(+LTO)+BOLT over baseline
}

// CompilerExperiment implements Figures 7 (Clang: PGO+LTO) and 8 (GCC:
// PGO only). Speedups are against the plain -O2 build, measured on four
// evaluation inputs after training on a separate input.
func CompilerExperiment(spec workload.Spec, useLTO bool, scale Scale) ([]CompilerRow, string, error) {
	spec = scale.apply(spec)
	mode := perf.DefaultMode()
	trainSeed := spec.Seed ^ 0x7EA12345

	build := func(cfg BuildConfig) (*elfx.File, error) {
		s := spec
		s.InputSeed = trainSeed // PGO training input
		f, _, err := Build(s, cfg, mode)
		return f, err
	}

	baseline, err := build(CfgBaseline)
	if err != nil {
		return nil, "", err
	}
	pgoCfg := CfgPGO
	if useLTO {
		pgoCfg = CfgPGOLTO
	}
	pgo, err := build(pgoCfg)
	if err != nil {
		return nil, "", err
	}
	boltedBase, _, err := Bolt(baseline, mode, boltOptions())
	if err != nil {
		return nil, "", fmt.Errorf("bolt baseline: %w", err)
	}
	boltedPGO, _, err := Bolt(pgo, mode, boltOptions())
	if err != nil {
		return nil, "", fmt.Errorf("bolt pgo: %w", err)
	}

	inputs := []struct {
		name string
		seed uint64
	}{
		{"input1", spec.Seed ^ 0x101}, {"input2", spec.Seed ^ 0x202},
		{"input3", spec.Seed ^ 0x303}, {"build", spec.Seed ^ 0x404},
	}
	var rows []CompilerRow
	for _, in := range inputs {
		cycles := func(f *elfx.File) (uint64, error) {
			if err := SetInput(f, in.seed); err != nil {
				return 0, err
			}
			m, err := Measure(f, uarch.DefaultConfig(), false)
			if err != nil {
				return 0, err
			}
			return m.Metrics.Cycles, nil
		}
		cb, err := cycles(baseline)
		if err != nil {
			return nil, "", err
		}
		cbb, err := cycles(boltedBase)
		if err != nil {
			return nil, "", err
		}
		cp, err := cycles(pgo)
		if err != nil {
			return nil, "", err
		}
		cpb, err := cycles(boltedPGO)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, CompilerRow{
			Input:   in.name,
			BOLT:    float64(cb)/float64(cbb) - 1,
			PGO:     float64(cb)/float64(cp) - 1,
			PGOBOLT: float64(cb)/float64(cpb) - 1,
		})
	}
	pgoName := "PGO"
	if useLTO {
		pgoName = "PGO+LTO"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 7/8 (%s): speedups over the plain build\n", spec.Name)
	fmt.Fprintf(&sb, "  %-10s %10s %12s %14s\n", "input", "BOLT", pgoName, pgoName+"+BOLT")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-10s %9.2f%% %11.2f%% %13.2f%%\n",
			r.Input, 100*r.BOLT, 100*r.PGO, 100*r.PGOBOLT)
	}
	return rows, sb.String(), nil
}

// Table2 reproduces the dyno-stats comparison: BOLT's effect on branch
// statistics over the baseline build and over the PGO+LTO build.
func Table2(scale Scale) (string, error) {
	spec := scale.apply(workload.Clang())
	mode := perf.DefaultMode()

	report := func(cfg BuildConfig) (core.DynoStats, core.DynoStats, error) {
		f, _, err := Build(spec, cfg, mode)
		if err != nil {
			return core.DynoStats{}, core.DynoStats{}, err
		}
		fd, _, err := perf.RecordFile(f, mode, 0)
		if err != nil {
			return core.DynoStats{}, core.DynoStats{}, err
		}
		_, rep, err := optimizeSession(f, fd, bolt.WithOptions(boltOptions()), bolt.WithDynoStats(true))
		if err != nil {
			return core.DynoStats{}, core.DynoStats{}, err
		}
		return rep.DynoBefore, rep.DynoAfter, nil
	}

	var buf bytes.Buffer
	b0, a0, err := report(CfgBaseline)
	if err != nil {
		return "", err
	}
	core.PrintComparison(&buf, "BOLT over baseline", b0, a0)
	b1, a1, err := report(CfgPGOLTO)
	if err != nil {
		return "", err
	}
	core.PrintComparison(&buf, "BOLT over PGO+LTO", b1, a1)
	return buf.String(), nil
}

// Fig9 produces before/after heat maps and the hot-span packing numbers.
func Fig9(scale Scale) (before, after *Measurement, report string, err error) {
	spec := scale.apply(workload.HHVM())
	mode := perf.DefaultMode()
	base, _, err := Build(spec, CfgHFSortLTO, mode)
	if err != nil {
		return nil, nil, "", err
	}
	bolted, _, err := Bolt(base, mode, boltOptions())
	if err != nil {
		return nil, nil, "", err
	}
	before, err = Measure(base, uarch.DefaultConfig(), true)
	if err != nil {
		return nil, nil, "", err
	}
	after, err = Measure(bolted, uarch.DefaultConfig(), true)
	if err != nil {
		return nil, nil, "", err
	}
	var sb strings.Builder
	sb.WriteString("Figure 9: instruction-address heat (hot-span covering 95% of fetches)\n")
	fmt.Fprintf(&sb, "  without BOLT: %8d bytes of %d\n", before.Heat.HotSpan(0.95), before.Heat.Limit-before.Heat.Base)
	fmt.Fprintf(&sb, "  with BOLT:    %8d bytes of %d\n", after.Heat.HotSpan(0.95), after.Heat.Limit-after.Heat.Base)
	return before, after, sb.String(), nil
}

// Fig10 runs -report-bad-layout on a PGO+LTO compiler build.
func Fig10(scale Scale) (string, error) {
	spec := scale.apply(workload.Clang())
	mode := perf.DefaultMode()
	f, _, err := Build(spec, CfgPGOLTO, mode)
	if err != nil {
		return "", err
	}
	fd, _, err := perf.RecordFile(f, mode, 0)
	if err != nil {
		return "", err
	}
	cx := context.Background()
	sess, err := bolt.OpenELF(f, bolt.WithOptions(boltOptions()))
	if err != nil {
		return "", err
	}
	if err := sess.LoadProfile(cx, bolt.Fdata(fd)); err != nil {
		return "", err
	}
	if err := sess.Analyze(cx); err != nil {
		return "", err
	}
	return sess.BadLayoutReport(10)
}

// Fig11Row reports the improvement from using LBRs for one optimization
// scenario (higher is better, like the paper's Figure 11).
type Fig11Row struct {
	Scenario string
	Metric   string
	LBRGain  float64
}

// Fig11 compares BOLT with LBR profiles against BOLT with non-LBR
// profiles under three scenarios: function reordering only, basic-block
// reordering (plus other opts), and both.
func Fig11(scale Scale) ([]Fig11Row, string, error) {
	spec := scale.apply(workload.HHVM())
	lbrMode := perf.DefaultMode()
	nolbrMode := lbrMode
	nolbrMode.LBR = false

	base, _, err := Build(spec, CfgBaseline, lbrMode)
	if err != nil {
		return nil, "", err
	}

	scenario := func(name string) core.Options {
		opts := boltOptions()
		switch name {
		case "Functions":
			opts.ReorderBlocks = layout.AlgoNone
			opts.SplitFunctions = 0
			opts.SplitAllCold = false
		case "BBs":
			opts.ReorderFunctions = hfsort.AlgoNone
		}
		return opts
	}

	var rows []Fig11Row
	var sb strings.Builder
	sb.WriteString("Figure 11: improvement from LBR profiles vs non-LBR (per scenario)\n")
	for _, sc := range []string{"Functions", "BBs", "Both"} {
		opts := scenario(sc)
		withLBR, _, err := Bolt(base, lbrMode, opts)
		if err != nil {
			return nil, "", err
		}
		withoutLBR, _, err := Bolt(base, nolbrMode, opts)
		if err != nil {
			return nil, "", err
		}
		ml, err := Measure(withLBR, uarch.DefaultConfig(), false)
		if err != nil {
			return nil, "", err
		}
		mn, err := Measure(withoutLBR, uarch.DefaultConfig(), false)
		if err != nil {
			return nil, "", err
		}
		l, n := ml.Metrics, mn.Metrics
		add := func(metric string, lv, nv uint64) {
			gain := uarch.Reduction(nv, lv) // how much LBR reduces the metric
			rows = append(rows, Fig11Row{Scenario: sc, Metric: metric, LBRGain: gain})
			fmt.Fprintf(&sb, "  %-10s %-14s %6.2f%%\n", sc, metric, 100*gain)
		}
		add("Instructions", l.Instructions, n.Instructions)
		add("Branch-miss", l.BranchMiss, n.BranchMiss)
		add("I-cache-miss", l.L1IMiss, n.L1IMiss)
		add("LLC-miss", l.LLCMiss, n.LLCMiss)
		add("iTLB-miss", l.ITLBMiss, n.ITLBMiss)
		add("CPU time", l.Cycles, n.Cycles)
	}
	return rows, sb.String(), nil
}

// EventsRow is one sampling-event configuration result (§5.1).
type EventsRow struct {
	Config  string
	Speedup float64
}

// Events reproduces the §5.1 study: BOLT speedups are stable across LBR
// sampling events but degrade with biased non-LBR samples.
func Events(scale Scale) ([]EventsRow, string, error) {
	spec := scale.apply(workload.TAO())
	base, _, err := Build(spec, CfgBaseline, perf.DefaultMode())
	if err != nil {
		return nil, "", err
	}
	mb, err := Measure(base, uarch.DefaultConfig(), false)
	if err != nil {
		return nil, "", err
	}
	var rows []EventsRow
	var sb strings.Builder
	sb.WriteString("Section 5.1: sampling-event sensitivity of BOLT speedups\n")
	for _, cfg := range []struct {
		name string
		mode perf.Mode
	}{
		{"lbr-cycles", perf.Mode{LBR: true, Event: perf.EventCycles, Period: 4096}},
		{"lbr-instructions", perf.Mode{LBR: true, Event: perf.EventInstructions, Period: 4096}},
		{"lbr-branches", perf.Mode{LBR: true, Event: perf.EventBranches, Period: 4096}},
		{"nolbr-cycles", perf.Mode{LBR: false, Event: perf.EventCycles, Period: 512}},
		{"nolbr-cycles-pebs", perf.Mode{LBR: false, Event: perf.EventCycles, Period: 512, PEBS: 3}},
	} {
		bolted, _, err := Bolt(base, cfg.mode, boltOptions())
		if err != nil {
			return nil, "", fmt.Errorf("%s: %w", cfg.name, err)
		}
		mo, err := Measure(bolted, uarch.DefaultConfig(), false)
		if err != nil {
			return nil, "", err
		}
		sp := uarch.Speedup(mb.Metrics, mo.Metrics)
		rows = append(rows, EventsRow{Config: cfg.name, Speedup: sp})
		fmt.Fprintf(&sb, "  %-20s %6.2f%%\n", cfg.name, 100*sp)
	}
	return rows, sb.String(), nil
}

// ICFResult quantifies binary-level ICF beyond linker ICF (§4).
type ICFResult struct {
	LinkerFolded int
	BoltFolded   int
	BoltBytes    int64
	TextSize     uint64
}

// ICF measures how much code gobolt's ICF removes on top of the linker's.
func ICF(scale Scale) (*ICFResult, string, error) {
	spec := scale.apply(workload.HHVM())
	mode := perf.DefaultMode()
	prog := workload.Generate(spec)
	objs, err := ccCompileDefault(prog)
	if err != nil {
		return nil, "", err
	}
	lres, err := ldLink(objs)
	if err != nil {
		return nil, "", err
	}
	fd, _, err := perf.RecordFile(lres.File, mode, 0)
	if err != nil {
		return nil, "", err
	}
	_, rep, err := optimizeSession(lres.File, fd, bolt.WithOptions(boltOptions()))
	if err != nil {
		return nil, "", err
	}
	res := &ICFResult{
		LinkerFolded: lres.ICFFolded,
		BoltFolded:   int(rep.Stats["icf-folded"]),
		BoltBytes:    rep.Stats["icf-bytes"],
		TextSize:     lres.TextSize,
	}
	report := fmt.Sprintf(
		"ICF (§4): linker folded %d functions; gobolt folded %d more (%d bytes, %.2f%% of .text)\n",
		res.LinkerFolded, res.BoltFolded, res.BoltBytes,
		100*float64(res.BoltBytes)/float64(res.TextSize))
	return res, report, nil
}

// PipelineScaling measures end-to-end pipeline wall time — loader
// (discovery, disassembly+CFG), optimization passes, and emission
// (code generation, layout+patch) — at jobs=1 versus jobs=N on a bundled
// workload, prints both full -time-passes reports, and verifies the two
// runs produced identical statistics and byte-identical binaries (the
// race-instrumented twin of this check lives in the test suite).
func PipelineScaling(scale Scale, jobs int) (string, error) {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	spec := scale.apply(workload.Clang())
	mode := perf.DefaultMode()
	f, _, err := Build(spec, CfgBaseline, mode)
	if err != nil {
		return "", err
	}
	fd, _, err := perf.RecordFile(f, mode, 0)
	if err != nil {
		return "", err
	}

	run := func(j int) (*bolt.Report, []byte, time.Duration, error) {
		opts := boltOptions()
		opts.Jobs = j
		start := time.Now()
		sess, err := bolt.OpenELF(f, bolt.WithOptions(opts))
		if err != nil {
			return nil, nil, 0, err
		}
		cx := context.Background()
		if err := sess.LoadProfile(cx, bolt.Fdata(fd)); err != nil {
			return nil, nil, 0, err
		}
		rep, err := sess.Optimize(cx)
		d := time.Since(start)
		if err != nil {
			return nil, nil, 0, err
		}
		raw, err := sess.Output().Bytes()
		return rep, raw, d, err
	}

	rep1, raw1, d1, err := run(1)
	if err != nil {
		return "", err
	}
	repN, rawN, dN, err := run(jobs)
	if err != nil {
		return "", err
	}
	if !reflect.DeepEqual(rep1.Stats, repN.Stats) {
		return "", fmt.Errorf("bench: stats diverge across worker counts:\n  jobs=1: %v\n  jobs=%d: %v",
			rep1.Stats, jobs, repN.Stats)
	}
	if !bytes.Equal(raw1, rawN) {
		return "", fmt.Errorf("bench: emitted binaries differ across worker counts (%d vs %d bytes)",
			len(raw1), len(rawN))
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "Pipeline scaling on %s (%d simple functions, GOMAXPROCS=%d)\n",
		spec.Name, rep1.SimpleFuncs, runtime.GOMAXPROCS(0))
	fmt.Fprintf(&sb, "\n-- jobs=1 --\n")
	rep1.WriteTimings(&sb)
	fmt.Fprintf(&sb, "\n-- jobs=%d --\n", jobs)
	repN.WriteTimings(&sb)
	speedup := float64(d1) / float64(dN)
	fmt.Fprintf(&sb, "\npipeline wall time (load+passes+emit): %v (jobs=1) -> %v (jobs=%d), %.2fx; stats identical; binaries byte-identical\n",
		d1.Round(time.Microsecond), dN.Round(time.Microsecond), jobs, speedup)
	if runtime.GOMAXPROCS(0) == 1 {
		sb.WriteString("(single-CPU host: worker-pool speedup cannot materialize; expect ~1.0x)\n")
	}
	return sb.String(), nil
}

// Small indirection helpers (keep experiment code readable).

// optimizeSession drives one full bolt run (open → profile → optimize)
// over an in-memory binary and returns the finished session plus its
// report (the output image is sess.Output()).
func optimizeSession(f *elfx.File, fd *profile.Fdata, opts ...bolt.Option) (*bolt.Session, *bolt.Report, error) {
	cx := context.Background()
	sess, err := bolt.OpenELF(f, opts...)
	if err != nil {
		return nil, nil, err
	}
	if fd != nil {
		if err := sess.LoadProfile(cx, bolt.Fdata(fd)); err != nil {
			return nil, nil, err
		}
	}
	rep, err := sess.Optimize(cx)
	if err != nil {
		return nil, nil, err
	}
	return sess, rep, nil
}

func ccCompileDefault(prog *ir.Program) ([]*obj.Object, error) {
	return cc.Compile(prog, cc.DefaultOptions())
}

func ldLink(objs []*obj.Object) (*ld.Result, error) {
	return ld.Link(objs, ld.Options{EmitRelocs: true, ICF: true})
}

// Fig2Report demonstrates the paper's Figure 2 motivation end to end:
// with PGO the inlined copies of foo share one merged (50/50) source
// profile, so at least one copy is laid out badly; gobolt sees each
// binary copy's own branch statistics and fixes both. The report shows
// taken-branch counts per configuration.
func Fig2Report(scale Scale) (string, error) {
	_ = scale
	mode := perf.DefaultMode()
	mode.Period = 512
	prog := workload.GenerateFigure2()

	build := func(pgo bool) (*elfx.File, error) {
		copts := cc.DefaultOptions()
		copts.LTO = true // inlining across modules is the point
		if pgo {
			objs, err := cc.Compile(prog, copts)
			if err != nil {
				return nil, err
			}
			res, err := ld.Link(objs, ld.Options{EmitRelocs: true})
			if err != nil {
				return nil, err
			}
			fd, _, err := perf.RecordFile(res.File, mode, 0)
			if err != nil {
				return nil, err
			}
			sp, err := SourceProfile(res.File, fd)
			if err != nil {
				return nil, err
			}
			copts.PGO = sp
		}
		objs, err := cc.Compile(prog, copts)
		if err != nil {
			return nil, err
		}
		res, err := ld.Link(objs, ld.Options{EmitRelocs: true})
		if err != nil {
			return nil, err
		}
		return res.File, nil
	}

	measure := func(f *elfx.File) (*uarch.Metrics, error) {
		m, err := Measure(f, uarch.DefaultConfig(), false)
		if err != nil {
			return nil, err
		}
		return m.Metrics, nil
	}

	base, err := build(false)
	if err != nil {
		return "", err
	}
	pgo, err := build(true)
	if err != nil {
		return "", err
	}
	boltedPGO, _, err := Bolt(pgo, mode, boltOptions())
	if err != nil {
		return "", err
	}
	mb, err := measure(base)
	if err != nil {
		return "", err
	}
	mp, err := measure(pgo)
	if err != nil {
		return "", err
	}
	mpb, err := measure(boltedPGO)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Figure 2 mechanism: taken conditional branches (lower is better)\n")
	fmt.Fprintf(&sb, "  %-22s taken=%d  cycles=%d\n", "LTO (no profile)", mb.TakenBranches, mb.Cycles)
	fmt.Fprintf(&sb, "  %-22s taken=%d  cycles=%d  (merged source profile)\n", "PGO+LTO", mp.TakenBranches, mp.Cycles)
	fmt.Fprintf(&sb, "  %-22s taken=%d  cycles=%d  (per-copy binary profile)\n", "PGO+LTO+BOLT", mpb.TakenBranches, mpb.Cycles)
	return sb.String(), nil
}

package bench

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"time"

	"gobolt/bolt"
	"gobolt/internal/obsv"
	"gobolt/internal/par"
	"gobolt/internal/perf"
	"gobolt/internal/workload"
)

// ObsvOverheadLimitPct is the tracing-overhead budget the obsv
// experiment enforces: recording spans for a fully traced end-to-end
// session may cost at most this much extra over the untraced session's
// wall time.
const ObsvOverheadLimitPct = 3.0

// obsvPairs is how many interleaved off/on session pairs the experiment
// runs (for the informational end-to-end delta and the validated
// artifacts); obsvCalibrationRounds is how many best-of rounds the
// per-task calibration loop takes.
const (
	obsvPairs             = 3
	obsvCalibrationRounds = 7
	obsvCalibrationItems  = 200000
)

// Obsv is the observability smoke experiment behind the CI obsv-smoke
// job. It runs the full session (open → profile → optimize) on the
// clang workload with tracing off and on, and
//
//   - gates the recording overhead at ObsvOverheadLimitPct of the
//     untraced pipeline wall,
//   - validates the recorded span timeline as Chrome trace-event JSON
//     (obsv.ValidateChromeTrace) and checks every pipeline stage —
//     profile load, loader, profile matching, passes, emission — left
//     at least one phase span,
//   - validates the machine-readable run report round-trip
//     (Report.WriteJSON → bolt.ValidateRunReport).
//
// The gated number is *calibrated*, not a raw A/B wall delta: a tight
// interleaved loop over par.ForTraced measures the per-task recording
// cost (best-of-N traced minus untraced), which is multiplied by the
// real session's task-span count and divided by the untraced session
// wall. Shared CI hosts show run-to-run wall noise far above 3% — an
// uncalibrated A/B gate at this threshold would flake on noise, while
// the calibrated product is stable and measures exactly what tracing
// adds to the pipeline (span derivation is lazy and happens outside the
// optimize window, see Report.OccupancyStats). The raw end-to-end delta
// is still printed for eyeballing.
func Obsv(scale Scale) (string, error) {
	spec := scale.apply(workload.Clang())
	mode := perf.DefaultMode()
	f, _, err := Build(spec, CfgBaseline, mode)
	if err != nil {
		return "", err
	}
	fd, _, err := perf.RecordFile(f, mode, 0)
	if err != nil {
		return "", err
	}
	cx := context.Background()

	runOnce := func(tr *obsv.Tracer) (time.Duration, *bolt.Report, error) {
		opts := boltOptions()
		opts.Trace = tr
		start := time.Now()
		sess, err := bolt.OpenELF(f, bolt.WithOptions(opts))
		if err != nil {
			return 0, nil, err
		}
		if err := sess.LoadProfile(cx, bolt.Fdata(fd)); err != nil {
			return 0, nil, err
		}
		rep, err := sess.Optimize(cx)
		if err != nil {
			return 0, nil, err
		}
		return time.Since(start), rep, nil
	}

	// Warmup run (untraced) absorbs lazy initialization.
	if _, _, err := runOnce(nil); err != nil {
		return "", err
	}

	var bestOff, bestOn time.Duration
	var lastTracer *obsv.Tracer
	var lastRep *bolt.Report
	for i := 0; i < obsvPairs; i++ {
		off, _, err := runOnce(nil)
		if err != nil {
			return "", err
		}
		tr := obsv.New()
		on, rep, err := runOnce(tr)
		if err != nil {
			return "", err
		}
		if bestOff == 0 || off < bestOff {
			bestOff = off
		}
		if bestOn == 0 || on < bestOn {
			bestOn = on
		}
		lastTracer, lastRep = tr, rep
	}

	// Structural checks on the last traced run.
	spans := lastTracer.Spans()
	stages := map[string]string{
		"profile load":    "profile:load",
		"loader":          "load:",
		"profile matcher": "profile:apply",
		"passes":          "reorder", // any pipeline pass name would do
		"emission":        "emit:",
	}
	phaseSeen := make(map[string]bool)
	var phases, tasks int
	for _, s := range spans {
		switch s.Kind {
		case obsv.KindPhase:
			phases++
			for stage, prefix := range stages {
				if strings.Contains(s.Name, prefix) {
					phaseSeen[stage] = true
				}
			}
		case obsv.KindTask:
			tasks++
		}
	}
	for stage := range stages {
		if !phaseSeen[stage] {
			return "", fmt.Errorf("bench: obsv: no phase span for the %s stage in the trace (%d phase spans total)", stage, phases)
		}
	}
	if tasks == 0 {
		return "", fmt.Errorf("bench: obsv: trace has no per-worker task spans")
	}

	var traceBuf bytes.Buffer
	if err := lastTracer.WriteChromeTrace(&traceBuf); err != nil {
		return "", fmt.Errorf("bench: obsv: write trace: %w", err)
	}
	if err := obsv.ValidateChromeTrace(traceBuf.Bytes()); err != nil {
		return "", fmt.Errorf("bench: obsv: emitted trace invalid: %w", err)
	}
	var repBuf bytes.Buffer
	if err := lastRep.WriteJSON(&repBuf); err != nil {
		return "", fmt.Errorf("bench: obsv: write report: %w", err)
	}
	if err := bolt.ValidateRunReport(repBuf.Bytes()); err != nil {
		return "", fmt.Errorf("bench: obsv: emitted run report invalid: %w", err)
	}

	perTask := recordingCostPerTask(cx)
	recording := perTask * time.Duration(tasks)
	overheadPct := 100 * float64(recording) / float64(bestOff)
	rawPct := 100 * (float64(bestOn) - float64(bestOff)) / float64(bestOff)

	var sb strings.Builder
	fmt.Fprintf(&sb, "Observability smoke on %s\n", spec.Name)
	fmt.Fprintf(&sb, "  untraced pipeline   %12v  (best of %d interleaved pairs)\n", bestOff.Round(time.Microsecond), obsvPairs)
	fmt.Fprintf(&sb, "  traced pipeline     %12v  (raw delta %+.2f%%, informational)\n", bestOn.Round(time.Microsecond), rawPct)
	fmt.Fprintf(&sb, "  recording cost      %12v  (%d task spans x %v/task, calibrated = %+.2f%% of wall, budget +%.0f%%)\n",
		recording.Round(time.Microsecond), tasks, perTask, overheadPct, ObsvOverheadLimitPct)
	fmt.Fprintf(&sb, "  trace: %d phase spans, %d task spans, %d workers, %d bytes Chrome JSON (valid)\n",
		phases, tasks, lastTracer.Workers(), traceBuf.Len())
	fmt.Fprintf(&sb, "  run report: %d bytes, schema v%d (valid)\n", repBuf.Len(), bolt.ReportSchemaVersion)
	sb.WriteString(obsv.Summarize(lastRep.OccupancyStats()))
	if overheadPct > ObsvOverheadLimitPct {
		return sb.String(), fmt.Errorf("bench: obsv: calibrated tracing overhead %.2f%% exceeds the %.0f%% budget (%v/task x %d tasks over %v wall)",
			overheadPct, ObsvOverheadLimitPct, perTask, tasks, bestOff.Round(time.Microsecond))
	}
	return sb.String(), nil
}

// recordingCostPerTask measures what one task span costs to record: a
// tight par.ForTraced loop over trivial items, traced minus untraced,
// interleaved best-of-N. The loop's working set is tiny, so the delta
// is stable where end-to-end session walls are not.
func recordingCostPerTask(cx context.Context) time.Duration {
	name := func(int) string { return "calibrate" }
	work := func(worker, item int) error { return nil }
	sweep := func(tr *obsv.Tracer) time.Duration {
		start := time.Now()
		par.ForTraced(cx, tr, "calibrate", name, obsvCalibrationItems, 1, work)
		return time.Since(start)
	}
	var bestOff, bestOn time.Duration
	for i := 0; i < obsvCalibrationRounds; i++ {
		if d := sweep(nil); bestOff == 0 || d < bestOff {
			bestOff = d
		}
		if d := sweep(obsv.New()); bestOn == 0 || d < bestOn {
			bestOn = d
		}
	}
	if bestOn <= bestOff {
		return 0
	}
	return (bestOn - bestOff) / obsvCalibrationItems
}

package bench

import (
	"testing"

	"gobolt/internal/core"
)

// TestDynoSimilarity sanity-checks the scale-free scoring function.
func TestDynoSimilarity(t *testing.T) {
	a := core.DynoStats{ExecutedInstructions: 1000, TakenBranches: 100, ExecutedUncond: 50}
	if got := dynoSimilarity(a, a); got != 1.0 {
		t.Errorf("self-similarity = %v, want 1.0", got)
	}
	// Uniform sub-sampling (everything /10) must score 1.0: only the
	// branch *mix* matters, not the sampling period.
	b := core.DynoStats{ExecutedInstructions: 100, TakenBranches: 10, ExecutedUncond: 5}
	if got := dynoSimilarity(a, b); got != 1.0 {
		t.Errorf("scaled similarity = %v, want 1.0", got)
	}
	// A distorted mix must score below a faithful one.
	c := core.DynoStats{ExecutedInstructions: 1000, TakenBranches: 300, ExecutedUncond: 10}
	if faithful, distorted := dynoSimilarity(a, b), dynoSimilarity(a, c); distorted >= faithful {
		t.Errorf("distorted mix scored %v >= faithful %v", distorted, faithful)
	}
}

// TestInferenceExperiment runs the §5.1 experiment at reduced scale and
// asserts the acceptance-level results: minimum-cost-flow inference
// recovers strictly more dyno-stat accuracy from sample-only profiles
// than the old proportional estimator, with exactly consistent counts,
// and the MCF consistency repair does not degrade stale-profile
// recovery.
func TestInferenceExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("inference experiment takes seconds; skipped in -short")
	}
	res, report, err := Inference(Scale(0.1))
	if err != nil {
		t.Fatal(err)
	}
	t.Log(report)
	if res.SampleAccMCF <= res.SampleAccProportional {
		t.Errorf("min-cost flow accuracy %.4f not strictly above proportional %.4f",
			res.SampleAccMCF, res.SampleAccProportional)
	}
	if res.SampleFlowAfter != 1.0 {
		t.Errorf("sample-profile flow accuracy after MCF = %.6f, want exactly 1.0", res.SampleFlowAfter)
	}
	if !res.AllConsistent {
		t.Error("some inferred simple function violates the flow equations")
	}
	if res.InferredFuncs == 0 {
		t.Error("solver inferred no functions")
	}
	if res.StaleAccMCF < res.StaleAccPlain {
		t.Errorf("MCF repair degraded stale recovery: %.4f < %.4f",
			res.StaleAccMCF, res.StaleAccPlain)
	}
	if res.StaleAccMCF < 0.9 {
		t.Errorf("stale+MCF recovery %.4f < 0.9", res.StaleAccMCF)
	}
}

package bench

import (
	"context"
	"fmt"
	"strings"

	"gobolt/bolt"
	"gobolt/internal/core"
	"gobolt/internal/elfx"
	"gobolt/internal/perf"
	"gobolt/internal/profile"
	"gobolt/internal/workload"
)

// InferenceResult carries the headline numbers of the profile-inference
// experiment (tests assert on these; the report renders them).
type InferenceResult struct {
	// SampleAccProportional/SampleAccMCF score how well the dyno stats
	// reconstructed from a non-LBR sample profile match the LBR ground
	// truth (1.0 = identical branch behavior), under the legacy §5.1
	// proportional estimator versus minimum-cost-flow inference.
	SampleAccProportional, SampleAccMCF float64
	// SampleFlowBefore/SampleFlowAfter are the flow-equation consistency
	// of the sample profile before and after the MCF solve.
	SampleFlowBefore, SampleFlowAfter float64
	// AllConsistent is true when every inferred simple function's counts
	// satisfy the flow equations exactly (ProfileAcc == 1.0).
	AllConsistent bool
	// StaleAccPlain/StaleAccMCF score a stale v1 profile applied to a v2
	// release (shape matching on) against a fresh v2 LBR profile pushed
	// through the same pipeline — i.e. how much of what a fresh profile
	// would give the optimizer the stale path reproduces — without and
	// with the MCF consistency repair (-infer-flow=always).
	StaleAccPlain, StaleAccMCF float64
	// InferredFuncs is the function count the solver rebalanced on the
	// sample-profile run.
	InferredFuncs int
}

// analyzeDyno applies a profile to a fresh analysis of f and returns the
// pre-pipeline dyno stats plus the session (for accuracy accessors).
func analyzeDyno(f *elfx.File, fd *profile.Fdata, opts core.Options) (core.DynoStats, *bolt.Session, error) {
	cx := context.Background()
	sess, err := bolt.OpenELF(f, bolt.WithOptions(opts))
	if err != nil {
		return core.DynoStats{}, nil, err
	}
	if err := sess.LoadProfile(cx, bolt.Fdata(fd)); err != nil {
		return core.DynoStats{}, nil, err
	}
	if err := sess.Analyze(cx); err != nil {
		return core.DynoStats{}, nil, err
	}
	d, err := sess.DynoStats()
	if err != nil {
		return core.DynoStats{}, nil, err
	}
	return d, sess, nil
}

// dynoSimilarity scores how closely two dyno-stat vectors describe the
// same branch behavior, scale-free: each metric is normalized by its
// own vector's executed-instruction count (LBR counts are exact branch
// totals while PC samples are period-subsampled, so absolute counts
// live on different scales), then compared as min/max ratios averaged
// over the metrics present in either vector.
func dynoSimilarity(truth, got core.DynoStats) float64 {
	norm := func(d core.DynoStats) []float64 {
		base := float64(d.ExecutedInstructions)
		if base == 0 {
			base = 1
		}
		fields := []uint64{
			d.ExecutedBranches, d.TakenBranches, d.NonTakenCondBranches,
			d.TakenCondBranches, d.ExecutedForward, d.TakenForward,
			d.ExecutedBackward, d.TakenBackward, d.ExecutedUncond,
			d.FunctionCalls,
		}
		out := make([]float64, len(fields))
		for i, v := range fields {
			out[i] = float64(v) / base
		}
		return out
	}
	a, b := norm(truth), norm(got)
	sum, n := 0.0, 0
	for i := range a {
		if a[i] == 0 && b[i] == 0 {
			continue
		}
		lo, hi := a[i], b[i]
		if lo > hi {
			lo, hi = hi, lo
		}
		sum += lo / hi
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// checkConsistency verifies every inferred simple function's counts
// satisfy the flow equations exactly.
func checkConsistency(sess *bolt.Session) (bool, error) {
	funcs, err := sess.Functions()
	if err != nil {
		return false, err
	}
	for _, fn := range funcs {
		if fn.Simple && fn.Sampled && fn.ProfileAcc != 1.0 {
			return false, nil
		}
	}
	return true, nil
}

// Inference quantifies what replacing the §5.1 "non-ideal algorithm"
// with minimum-cost-flow inference buys:
//
//	record an LBR profile (ground truth) and a non-LBR sample profile
//	  -> reconstruct edge counts from the samples with the legacy
//	     proportional estimator and with the MCF solver
//	  -> score both reconstructions' dyno stats against the ground truth
//
// and the stale half:
//
//	apply the v1 LBR profile to a mutated v2 release (shape matching)
//	  -> score the re-anchored counts against a fresh v2 profile,
//	     without and with the MCF consistency repair (-infer-flow=always)
func Inference(scale Scale) (*InferenceResult, string, error) {
	spec := scale.apply(workload.TAO())
	lbrMode := perf.DefaultMode()
	sampMode := perf.Mode{LBR: false, Event: perf.EventCycles, Period: 512}
	res := &InferenceResult{}
	var sb strings.Builder
	sb.WriteString("Profile inference (§5.1: minimum cost flow vs the \"non-ideal algorithm\")\n")

	base, _, err := Build(spec, CfgBaseline, lbrMode)
	if err != nil {
		return nil, "", err
	}
	fdLBR, err := recordWithShapes(base, lbrMode)
	if err != nil {
		return nil, "", err
	}
	fdSamp, _, err := perf.RecordFile(base, sampMode, 0)
	if err != nil {
		return nil, "", err
	}
	truth, _, err := analyzeDyno(base, fdLBR, boltOptions())
	if err != nil {
		return nil, "", err
	}
	fmt.Fprintf(&sb, "  %s: LBR ground truth %d branch records; sample profile %d PC samples\n",
		spec.Name, len(fdLBR.Branches), len(fdSamp.Samples))

	// Legacy proportional estimator (InferNever) vs the MCF solver.
	propOpts := boltOptions()
	propOpts.InferFlow = core.InferNever
	dProp, sessProp, err := analyzeDyno(base, fdSamp, propOpts)
	if err != nil {
		return nil, "", err
	}
	_, propAfter, err := sessProp.FlowAccuracy()
	if err != nil {
		return nil, "", err
	}
	dMCF, sessMCF, err := analyzeDyno(base, fdSamp, boltOptions())
	if err != nil {
		return nil, "", err
	}
	res.SampleAccProportional = dynoSimilarity(truth, dProp)
	res.SampleAccMCF = dynoSimilarity(truth, dMCF)
	res.SampleFlowBefore, res.SampleFlowAfter, err = sessMCF.FlowAccuracy()
	if err != nil {
		return nil, "", err
	}
	res.AllConsistent, err = checkConsistency(sessMCF)
	if err != nil {
		return nil, "", err
	}
	if st, err := sessMCF.Stats(); err == nil {
		res.InferredFuncs = int(st["profile-inferred-funcs"])
	}
	fmt.Fprintf(&sb, "  sample-only dyno accuracy vs LBR truth: proportional %.2f%%, min-cost flow %.2f%%\n",
		100*res.SampleAccProportional, 100*res.SampleAccMCF)
	fmt.Fprintf(&sb, "  flow-equation consistency: raw samples %.2f%% -> proportional %.2f%% -> MCF %.2f%% (%d funcs inferred, all consistent: %v)\n",
		100*res.SampleFlowBefore, 100*propAfter, 100*res.SampleFlowAfter,
		res.InferredFuncs, res.AllConsistent)

	// Stale half: v1's profile on a v2 release, with and without the
	// MCF consistency repair after shape matching.
	spec2 := spec
	spec2.EntryPadOps = 3
	v2, _, err := Build(spec2, CfgBaseline, lbrMode)
	if err != nil {
		return nil, "", err
	}
	fdV2, _, err := perf.RecordFile(v2, lbrMode, 0)
	if err != nil {
		return nil, "", err
	}
	// Each config is scored against the fresh v2 profile run through the
	// same pipeline: the question is how much of the fresh-profile input
	// the optimizer would have seen the stale path reproduces.
	mcfOpts := boltOptions()
	mcfOpts.InferFlow = core.InferAlways
	for _, cfg := range []struct {
		opts core.Options
		dst  *float64
	}{
		{boltOptions(), &res.StaleAccPlain},
		{mcfOpts, &res.StaleAccMCF},
	} {
		truth2, _, err := analyzeDyno(v2, fdV2, cfg.opts)
		if err != nil {
			return nil, "", err
		}
		dStale, _, err := analyzeDyno(v2, fdLBR, cfg.opts)
		if err != nil {
			return nil, "", err
		}
		*cfg.dst = dynoSimilarity(truth2, dStale)
	}
	fmt.Fprintf(&sb, "  stale v1 profile on v2 (+%d entry pad ops), dyno recovery vs a fresh v2 profile: matched %.2f%%, matched+MCF repair %.2f%%\n",
		spec2.EntryPadOps, 100*res.StaleAccPlain, 100*res.StaleAccMCF)
	return res, sb.String(), nil
}

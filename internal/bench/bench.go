// Package bench is the experiment harness: it wires the whole toolchain
// into the build→profile→rebuild→bolt→measure pipelines that regenerate
// every table and figure of the paper's evaluation (§6). See DESIGN.md's
// per-experiment index for the mapping.
package bench

import (
	"context"
	"fmt"
	"math"

	"gobolt/bolt"
	"gobolt/internal/cc"
	"gobolt/internal/core"
	"gobolt/internal/elfx"
	"gobolt/internal/heatmap"
	"gobolt/internal/hfsort"
	"gobolt/internal/ld"
	"gobolt/internal/perf"
	"gobolt/internal/profile"
	"gobolt/internal/uarch"
	"gobolt/internal/vm"
	"gobolt/internal/workload"
)

// BuildConfig names a compiler/linker configuration (the paper's
// baselines).
type BuildConfig struct {
	Name string
	// PGO rebuilds with a source-keyed profile (requires a prior train
	// run; the harness handles the two-phase build).
	PGO bool
	// LTO enables cross-module inlining and static PLT elision.
	LTO bool
	// HFSortLink orders functions at link time from the profile (the
	// Figure 5 baseline).
	HFSortLink bool
}

// Standard configurations.
var (
	CfgBaseline  = BuildConfig{Name: "O2"}
	CfgLTO       = BuildConfig{Name: "LTO", LTO: true}
	CfgPGO       = BuildConfig{Name: "PGO", PGO: true}
	CfgPGOLTO    = BuildConfig{Name: "PGO+LTO", PGO: true, LTO: true}
	CfgHFSort    = BuildConfig{Name: "HFSort", HFSortLink: true}
	CfgHFSortLTO = BuildConfig{Name: "HFSort+LTO", HFSortLink: true, LTO: true}
)

// Build compiles and links a workload under a configuration. For PGO or
// HFSortLink it first builds a plain binary, profiles it on the *train*
// input, converts the profile (source-keyed for PGO, call graph for
// HFSort), and rebuilds.
func Build(spec workload.Spec, cfg BuildConfig, mode perf.Mode) (*elfx.File, *ld.Result, error) {
	prog := workload.Generate(spec)

	copts := cc.DefaultOptions()
	copts.LTO = cfg.LTO
	lopts := ld.Options{EmitRelocs: true, ICF: true, NoPLT: cfg.LTO}

	objs, err := cc.Compile(prog, copts)
	if err != nil {
		return nil, nil, err
	}
	res, err := ld.Link(objs, lopts)
	if err != nil {
		return nil, nil, err
	}
	if !cfg.PGO && !cfg.HFSortLink {
		return res.File, res, nil
	}

	// Train run on the plain binary.
	fd, _, err := perf.RecordFile(res.File, mode, 0)
	if err != nil {
		return nil, nil, err
	}

	if cfg.PGO {
		sp, err := SourceProfile(res.File, fd)
		if err != nil {
			return nil, nil, err
		}
		copts.PGO = sp
		objs, err = cc.Compile(prog, copts)
		if err != nil {
			return nil, nil, err
		}
	}
	if cfg.HFSortLink {
		g := profile.BuildCallGraph(fd, nil)
		sizes := map[string]uint64{}
		for _, s := range res.File.FuncSymbols() {
			sizes[s.Name] = s.Size
		}
		lopts.FuncOrder = hfsort.Order(g, sizes, hfsort.AlgoHFSort)
	}
	res, err = ld.Link(objs, lopts)
	if err != nil {
		return nil, nil, err
	}
	return res.File, res, nil
}

// SourceProfile converts a binary-level profile back to source
// coordinates — the AutoFDO step. Branch statistics are keyed by
// (file, line): after inlining, every binary copy of a source branch
// shares one entry, which is precisely the accuracy loss of paper
// Figure 2 (§2.2); perfect per-copy truth cannot be represented.
func SourceProfile(f *elfx.File, fd *profile.Fdata) (*cc.SourceProfile, error) {
	cx := context.Background()
	sess, err := bolt.OpenELF(f, bolt.WithJobs(boltJobs))
	if err != nil {
		return nil, err
	}
	if err := sess.LoadProfile(cx, bolt.Fdata(fd)); err != nil {
		return nil, err
	}
	if err := sess.Analyze(cx); err != nil {
		return nil, err
	}
	funcs, err := sess.Functions()
	if err != nil {
		return nil, err
	}

	sp := cc.NewSourceProfile()
	for _, fn := range funcs {
		if !fn.Simple {
			continue
		}
		if fn.ExecCount > 0 {
			sp.Func[fn.Name] += fn.ExecCount
		}
		for _, b := range fn.Blocks {
			last := b.LastInst()
			if last != nil && len(b.Succs) == 2 && last.File != "" {
				key := cc.SrcKey{File: last.File, Line: last.Line}
				for _, e := range b.Succs {
					succ, ok := blockSrcKey(e.To)
					if !ok {
						continue
					}
					sp.AddBranchSample(key, succ, e.Count)
				}
			}
			for i := range b.Insts {
				in := &b.Insts[i]
				if in.IsCall() && in.File != "" {
					key := cc.SrcKey{File: in.File, Line: in.Line}
					sp.Call[key] += b.ExecCount
				}
			}
		}
	}
	return sp, nil
}

// blockSrcKey reads the source coordinate of a CFG block's first
// attributed instruction.
func blockSrcKey(b *core.BasicBlock) (cc.SrcKey, bool) {
	for i := range b.Insts {
		if b.Insts[i].File != "" {
			return cc.SrcKey{File: b.Insts[i].File, Line: b.Insts[i].Line}, true
		}
	}
	return cc.SrcKey{}, false
}

// Bolt applies gobolt to a binary: profile on the train input, then
// optimize through the bolt API.
func Bolt(f *elfx.File, mode perf.Mode, opts core.Options) (*elfx.File, *bolt.Report, error) {
	fd, _, err := perf.RecordFile(f, mode, 0)
	if err != nil {
		return nil, nil, err
	}
	cx := context.Background()
	sess, err := bolt.OpenELF(f, bolt.WithOptions(opts))
	if err != nil {
		return nil, nil, err
	}
	if err := sess.LoadProfile(cx, bolt.Fdata(fd)); err != nil {
		return nil, nil, err
	}
	rep, err := sess.Optimize(cx)
	if err != nil {
		return nil, nil, err
	}
	return sess.Output(), rep, nil
}

// Measurement is one simulated run.
type Measurement struct {
	Metrics  *uarch.Metrics
	Checksum uint64
	Heat     *heatmap.Map
}

// Measure runs the binary to completion under the microarchitecture
// simulator. withHeat also collects the Figure 9 fetch heat map over all
// executable sections.
func Measure(f *elfx.File, cfg uarch.Config, withHeat bool) (*Measurement, error) {
	m, err := vm.New(f)
	if err != nil {
		return nil, err
	}
	sim := uarch.New(cfg)
	var tr vm.Tracer = sim
	var heat *heatmap.Map
	if withHeat {
		lo, hi := execSpan(f)
		heat = heatmap.New(lo, hi)
		tr = vm.TeeTracer{sim, heat.Tracer()}
	}
	m.SetTracer(tr)
	if _, err := m.Run(0); err != nil {
		return nil, err
	}
	if !m.Halted() {
		return nil, fmt.Errorf("bench: program did not halt")
	}
	return &Measurement{Metrics: sim.Finish(), Checksum: m.Result(), Heat: heat}, nil
}

// execSpan returns the [lo, hi) address range of executable sections.
func execSpan(f *elfx.File) (uint64, uint64) {
	var lo, hi uint64
	first := true
	for _, s := range f.Sections {
		if s.Flags&elfx.SHFExecinstr == 0 || s.Size() == 0 {
			continue
		}
		if first || s.Addr < lo {
			lo = s.Addr
		}
		if first || s.Addr+s.Size() > hi {
			hi = s.Addr + s.Size()
		}
		first = false
	}
	return lo, hi
}

// SwapInput rebuilds the same program with different input data (same
// structure seed) — the evaluation inputs of §6.2.
func SwapInput(spec workload.Spec, inputSeed uint64) workload.Spec {
	spec.InputSeed = inputSeed
	return spec
}

// GeoMean of (1+x) values minus 1, for speedup aggregation.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	p := 1.0
	for _, x := range xs {
		p *= 1 + x
	}
	return math.Pow(p, 1/float64(len(xs))) - 1
}

package bench

import (
	"testing"

	"gobolt/internal/cc"
	"gobolt/internal/core"
	"gobolt/internal/perf"
	"gobolt/internal/uarch"
	"gobolt/internal/workload"
)

func TestBuildConfigs(t *testing.T) {
	spec := workload.Tiny()
	mode := perf.DefaultMode()
	mode.Period = 512
	for _, cfg := range []BuildConfig{CfgBaseline, CfgLTO, CfgPGO, CfgPGOLTO, CfgHFSort} {
		f, _, err := Build(spec, cfg, mode)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		m, err := Measure(f, uarch.DefaultConfig(), false)
		if err != nil {
			t.Fatalf("%s: measure: %v", cfg.Name, err)
		}
		if m.Metrics.Instructions == 0 {
			t.Fatalf("%s: no instructions simulated", cfg.Name)
		}
	}
}

// TestConfigsAgreeSemantically: every build configuration and BOLT on top
// of each must compute the same checksum.
func TestConfigsAgreeSemantically(t *testing.T) {
	spec := workload.Tiny()
	mode := perf.DefaultMode()
	mode.Period = 512
	var want uint64
	first := true
	for _, cfg := range []BuildConfig{CfgBaseline, CfgLTO, CfgPGOLTO, CfgHFSort} {
		f, _, err := Build(spec, cfg, mode)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		m, err := Measure(f, uarch.DefaultConfig(), false)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if first {
			want = m.Checksum
			first = false
		} else if m.Checksum != want {
			t.Fatalf("%s: checksum %d, want %d", cfg.Name, m.Checksum, want)
		}
		bolted, _, err := Bolt(f, mode, core.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: bolt: %v", cfg.Name, err)
		}
		mb, err := Measure(bolted, uarch.DefaultConfig(), false)
		if err != nil {
			t.Fatalf("%s+bolt: %v", cfg.Name, err)
		}
		if mb.Checksum != want {
			t.Fatalf("%s+bolt: checksum %d, want %d", cfg.Name, mb.Checksum, want)
		}
	}
}

func TestSetInputChangesBehaviour(t *testing.T) {
	spec := workload.Tiny()
	f, _, err := Build(spec, CfgBaseline, perf.DefaultMode())
	if err != nil {
		t.Fatal(err)
	}
	m1, err := Measure(f, uarch.DefaultConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := SetInput(f, 999); err != nil {
		t.Fatal(err)
	}
	m2, err := Measure(f, uarch.DefaultConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Checksum == m2.Checksum {
		t.Fatal("input swap did not change behaviour")
	}
}

func TestSourceProfileMergesInlineCopies(t *testing.T) {
	// The Figure 2 mechanism: foo's branch statistics from bar and baz
	// call sites collapse into one ~50% entry.
	prog := workload.GenerateFigure2()
	objs, err := ccCompileDefault(prog)
	if err != nil {
		t.Fatal(err)
	}
	lres, err := ldLink(objs)
	if err != nil {
		t.Fatal(err)
	}
	mode := perf.DefaultMode()
	mode.Period = 512
	fd, _, err := perf.RecordFile(lres.File, mode, 0)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := SourceProfile(lres.File, fd)
	if err != nil {
		t.Fatal(err)
	}
	// foo's if lives at foo.mir:2. After merging across bar/baz call
	// sites, both successor sides must carry roughly equal counts.
	st := sp.Branch[cc.SrcKey{File: "foo.mir", Line: 2}]
	if st == nil || st.Total == 0 {
		t.Fatalf("no merged branch stat for foo.mir:2 (have %v)", sp.Branch)
	}
	if len(st.BySucc) < 2 {
		t.Fatalf("expected two successor sides, got %v", st.BySucc)
	}
	var counts []uint64
	for _, c := range st.BySucc {
		counts = append(counts, c)
	}
	hi, lo := counts[0], counts[1]
	if lo > hi {
		hi, lo = lo, hi
	}
	if float64(lo) < 0.5*float64(hi) {
		t.Errorf("expected ~50/50 merged distribution, got %v", st.BySucc)
	}
}

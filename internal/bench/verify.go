package bench

import (
	"fmt"
	"strings"
	"time"

	"gobolt/bolt"
	"gobolt/internal/bincheck"
	"gobolt/internal/elfx"
	"gobolt/internal/perf"
	"gobolt/internal/workload"
)

// VerifyPreset is one stress workload for the verification experiment,
// each angled at a different rule family of internal/bincheck.
type VerifyPreset struct {
	Name string
	Spec workload.Spec
	Cfg  BuildConfig
}

// VerifyPresets builds the four stress shapes: exception-dense code
// (CFI/LSDA rules), PLT-heavy non-LTO code (stub fragments and
// cross-module calls), aggressive cold splitting (split CFI state and
// cold BAT ranges), and hostile symbol tables (ICF alias pile-ups).
func VerifyPresets() []VerifyPreset {
	base := func(name string, seed uint64) workload.Spec {
		s := workload.Tiny()
		s.Name = name
		s.Seed = seed
		s.Modules = 4
		s.FuncsPerModule = 60
		s.SharedFuncs = 8
		s.Iterations = 8000
		s.InputSize = 1 << 12
		return s
	}

	exc := base("exceptions", 0xE0C1)
	exc.ThrowFrac = 0.6
	exc.ColdProb = 0.05

	plt := base("plt-heavy", 0x9717)
	plt.SharedFuncs = 24
	plt.IndirectCallFrac = 0.35

	cold := base("cold-split", 0xC01D)
	cold.ColdProb = 0.2
	cold.ColdOpsMax = 80

	hostile := base("hostile-symbols", 0x5105)
	hostile.DupFamilies = 24
	hostile.DupSize = 6

	return []VerifyPreset{
		{"exceptions", exc, CfgBaseline},
		{"plt-heavy", plt, CfgBaseline}, // non-LTO: keep the PLT alive
		{"cold-split", cold, CfgBaseline},
		{"hostile-symbols", hostile, CfgLTO}, // LTO feeds the ICF dedup
	}
}

// VerifyRow is one preset's verification outcome.
type VerifyRow struct {
	Preset       string
	Fragments    int
	Instructions int
	FDEs         int
	BATRanges    int
	Errors       int
	Warnings     int
}

// VerifyMutationRow is one corruption probe's outcome.
type VerifyMutationRow struct {
	Mutation string
	Rule     string
	Caught   bool
}

// VerifyResult is the full verification-experiment outcome.
type VerifyResult struct {
	Rows      []VerifyRow
	Mutations []VerifyMutationRow
	// VerifyWall/PipelineWall time the checker against the optimize
	// pipeline on the largest workload (clang); the CI gate holds their
	// ratio under 20%.
	VerifyWall   time.Duration
	PipelineWall time.Duration
}

// Verify runs the static-verification experiment: every stress preset
// must come out of the pipeline with zero findings, every targeted
// corruption of a clean output must be caught with its expected rule,
// and the verifier must stay under 20% of the optimize wall on the
// clang workload. Any violation is returned as an error, so
// `boltbench -experiment verify` is a usable CI gate.
func Verify(scale Scale) (*VerifyResult, string, error) {
	mode := perf.DefaultMode()
	res := &VerifyResult{}
	var excOut []byte

	for _, p := range VerifyPresets() {
		spec := scale.apply(p.Spec)
		f, _, err := Build(spec, p.Cfg, mode)
		if err != nil {
			return nil, "", fmt.Errorf("%s: %w", p.Name, err)
		}
		fd, _, err := perf.RecordFile(f, mode, 0)
		if err != nil {
			return nil, "", fmt.Errorf("%s: record: %w", p.Name, err)
		}
		sess, _, err := optimizeSession(f, fd, bolt.WithOptions(boltOptions()))
		if err != nil {
			return nil, "", fmt.Errorf("%s: bolt: %w", p.Name, err)
		}
		v, err := sess.VerifyOutput()
		if err != nil {
			return nil, "", fmt.Errorf("%s: verify: %w", p.Name, err)
		}
		res.Rows = append(res.Rows, VerifyRow{
			Preset: p.Name, Fragments: v.Fragments, Instructions: v.Instructions,
			FDEs: v.FDEs, BATRanges: v.BATRanges, Errors: v.Errors, Warnings: v.Warnings,
		})
		if len(v.Findings) > 0 {
			return res, "", fmt.Errorf("%s: output is not clean: %s", p.Name, v.Findings[0].String())
		}
		if p.Name == "exceptions" {
			if excOut, err = sess.Output().Bytes(); err != nil {
				return nil, "", fmt.Errorf("%s: serialize: %w", p.Name, err)
			}
		}
	}

	// Corruption matrix: each single-site mutation of the clean
	// exceptions output must be caught with its expected rule.
	for _, m := range bincheck.Mutations() {
		caught, err := RunMutation(excOut, m)
		if err != nil {
			return res, "", fmt.Errorf("mutation %s: %w", m.Name, err)
		}
		res.Mutations = append(res.Mutations, VerifyMutationRow{Mutation: m.Name, Rule: m.Rule, Caught: caught})
		if !caught {
			return res, "", fmt.Errorf("mutation %s was not caught by rule %s", m.Name, m.Rule)
		}
	}

	// Wall gate on the paper's compiler workload: the verifier must stay
	// a cheap epilogue, not a second pipeline.
	spec := scale.apply(workload.Clang())
	f, _, err := Build(spec, CfgBaseline, mode)
	if err != nil {
		return nil, "", fmt.Errorf("clang: %w", err)
	}
	fd, _, err := perf.RecordFile(f, mode, 0)
	if err != nil {
		return nil, "", fmt.Errorf("clang: record: %w", err)
	}
	start := time.Now()
	sess, _, err := optimizeSession(f, fd, bolt.WithOptions(boltOptions()))
	if err != nil {
		return nil, "", fmt.Errorf("clang: bolt: %w", err)
	}
	res.PipelineWall = time.Since(start)
	start = time.Now()
	v, err := sess.VerifyOutput()
	if err != nil {
		return nil, "", fmt.Errorf("clang: verify: %w", err)
	}
	res.VerifyWall = time.Since(start)
	if !v.Ok() {
		return res, "", fmt.Errorf("clang: output is not clean: %s", v.Findings[0].String())
	}
	if ratio := float64(res.VerifyWall) / float64(res.PipelineWall); ratio > 0.20 {
		return res, res.report(), fmt.Errorf("verify wall %.0f%% of pipeline wall exceeds the 20%% budget (%v vs %v)",
			100*ratio, res.VerifyWall.Round(time.Millisecond), res.PipelineWall.Round(time.Millisecond))
	}

	return res, res.report(), nil
}

// RunMutation applies one corruption to a fresh parse of a clean
// output image and reports whether the checker produced the expected
// rule. Exported for the regression tests; the base bytes are not
// modified.
func RunMutation(base []byte, m bincheck.Mutation) (bool, error) {
	f, err := elfx.Read(base)
	if err != nil {
		return false, err
	}
	if err := m.Apply(f); err != nil {
		return false, fmt.Errorf("apply: %w", err)
	}
	data, err := f.Bytes()
	if err != nil {
		return false, fmt.Errorf("serialize: %w", err)
	}
	v, err := bincheck.Check(data)
	if err != nil {
		// The corruption broke the image beyond parsing; that is also a
		// detection, but none of the matrix mutations should get here.
		return false, fmt.Errorf("check: %w", err)
	}
	for _, fi := range v.Findings {
		if fi.Rule == m.Rule {
			return true, nil
		}
	}
	return false, nil
}

func (r *VerifyResult) report() string {
	var sb strings.Builder
	sb.WriteString("Static verification (internal/bincheck) across stress presets\n")
	fmt.Fprintf(&sb, "  %-16s %10s %13s %6s %10s %7s %9s\n",
		"preset", "fragments", "instructions", "FDEs", "BAT ranges", "errors", "warnings")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-16s %10d %13d %6d %10d %7d %9d\n",
			row.Preset, row.Fragments, row.Instructions, row.FDEs, row.BATRanges, row.Errors, row.Warnings)
	}
	sb.WriteString("Corruption matrix (each mutation must be caught by its rule)\n")
	for _, m := range r.Mutations {
		verdict := "caught"
		if !m.Caught {
			verdict = "MISSED"
		}
		fmt.Fprintf(&sb, "  %-20s -> %-14s %s\n", m.Mutation, m.Rule, verdict)
	}
	if r.PipelineWall > 0 {
		fmt.Fprintf(&sb, "Verifier wall on clang: %v of %v pipeline (%.1f%%, budget 20%%)\n",
			r.VerifyWall.Round(time.Millisecond), r.PipelineWall.Round(time.Millisecond),
			100*float64(r.VerifyWall)/float64(r.PipelineWall))
	}
	return sb.String()
}

package bench

import (
	"testing"

	"gobolt/bolt"
	"gobolt/internal/bat"
	"gobolt/internal/bincheck"
	"gobolt/internal/elfx"
	"gobolt/internal/perf"
	"gobolt/internal/workload"
)

// boltAndSerialize runs the full pipeline over a built workload and
// returns the serialized output image plus the run report.
func boltAndSerialize(t *testing.T, spec workload.Spec, cfg BuildConfig, opts ...bolt.Option) ([]byte, *bolt.Report) {
	t.Helper()
	mode := perf.DefaultMode()
	f, _, err := Build(spec, cfg, mode)
	if err != nil {
		t.Fatalf("%s: build: %v", spec.Name, err)
	}
	fd, _, err := perf.RecordFile(f, mode, 0)
	if err != nil {
		t.Fatalf("%s: record: %v", spec.Name, err)
	}
	sess, rep, err := optimizeSession(f, fd, append([]bolt.Option{bolt.WithOptions(boltOptions())}, opts...)...)
	if err != nil {
		t.Fatalf("%s: bolt: %v", spec.Name, err)
	}
	data, err := sess.Output().Bytes()
	if err != nil {
		t.Fatalf("%s: serialize: %v", spec.Name, err)
	}
	return data, rep
}

// TestVerifierCatchesCorruption is the soundness half of the verifier's
// contract: for every corruption category the rule suite claims to
// cover, a targeted single-site mutation of a known-clean output must
// produce the expected finding. A verifier that silently stops looking
// fails here, not in production.
func TestVerifierCatchesCorruption(t *testing.T) {
	if testing.Short() {
		t.Skip("full build+bolt per mutation base; skipped in -short")
	}
	spec := workload.Tiny()
	spec.Name = "mutation-base"
	spec.ThrowFrac = 0.9 // exception paths everywhere: LSDAs to corrupt
	spec.ColdProb = 0.1  // splits: cold fragments and split CFI state
	base, _ := boltAndSerialize(t, spec, CfgBaseline)

	clean, err := bincheck.Check(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Findings) > 0 {
		t.Fatalf("mutation base is not clean: %v", clean.Findings[0])
	}

	muts := bincheck.Mutations()
	if len(muts) < 8 {
		t.Fatalf("corruption matrix shrank to %d mutations; need at least 8", len(muts))
	}
	for _, m := range muts {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			caught, err := RunMutation(base, m)
			if err != nil {
				t.Fatalf("mutation %s: %v", m.Name, err)
			}
			if !caught {
				t.Errorf("corruption %s was not caught by rule %s", m.Name, m.Rule)
			}
		})
	}
}

// TestVerifyCleanPipeline pins the completeness half: the pipeline's
// output for every example workload shape verifies with zero findings
// (not even warnings), at both serial and parallel emission.
func TestVerifyCleanPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and bolts five workloads twice; skipped in -short")
	}
	exceptions := workload.Tiny()
	exceptions.Name = "exceptions"
	exceptions.ThrowFrac = 0.9
	exceptions.ColdProb = 0.1
	continuous := workload.Tiny()
	continuous.Name = "continuous"
	continuous.EntryPadOps = 3 // the example's version-skew variant

	shapes := []struct {
		name string
		spec workload.Spec
		cfg  BuildConfig
	}{
		{"quickstart", workload.Tiny(), CfgBaseline},
		{"exceptions", exceptions, CfgBaseline},
		{"continuous", continuous, CfgBaseline},
		{"compiler-pgo", Scale(0.05).apply(workload.Clang()), CfgPGO},
		{"datacenter", Scale(0.05).apply(workload.HHVM()), CfgHFSortLTO},
	}
	for _, sh := range shapes {
		for _, jobs := range []int{1, 4} {
			data, _ := boltAndSerialize(t, sh.spec, sh.cfg, bolt.WithJobs(jobs))
			res, err := bincheck.Check(data)
			if err != nil {
				t.Fatalf("%s jobs=%d: %v", sh.name, jobs, err)
			}
			for _, f := range res.Findings {
				t.Errorf("%s jobs=%d: %v", sh.name, jobs, f)
			}
			if res.Fragments == 0 || res.FDEs == 0 {
				t.Errorf("%s jobs=%d: verifier saw %d fragments, %d FDEs; discovery broke",
					sh.name, jobs, res.Fragments, res.FDEs)
			}
		}
	}
}

// TestColdSplitBATAnchors audits the fall-through-split anchors: when a
// hot block falls through into what became the cold fragment, the cold
// range must open with an anchor at output offset 0 so the very first
// sample on the fragment translates, and every cold-range translation
// must stay inside the original function body.
func TestColdSplitBATAnchors(t *testing.T) {
	if testing.Short() {
		t.Skip("full build+bolt; skipped in -short")
	}
	spec := workload.Tiny()
	spec.Name = "cold-anchors"
	spec.ColdProb = 0.2
	spec.ThrowFrac = 0.5
	data, rep := boltAndSerialize(t, spec, CfgBaseline)
	if rep.SplitFuncs == 0 {
		t.Fatal("workload produced no split functions; the test exercises nothing")
	}

	res, err := bincheck.Check(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Findings {
		t.Errorf("verifier finding on split output: %v", f)
	}

	f, err := elfx.Read(data)
	if err != nil {
		t.Fatal(err)
	}
	sec := f.Section(bat.SectionName)
	if sec == nil {
		t.Fatalf("no %s section", bat.SectionName)
	}
	tbl, err := bat.Parse(sec.Data)
	if err != nil {
		t.Fatal(err)
	}
	coldRanges := 0
	for _, r := range tbl.Ranges {
		if !r.Cold {
			continue
		}
		coldRanges++
		fi := tbl.Funcs[r.FuncIdx]
		if len(r.Entries) == 0 {
			t.Errorf("%s: cold range at %#x has no anchors", fi.Name, r.Start)
			continue
		}
		if r.Entries[0].OutOff != 0 {
			t.Errorf("%s: cold range at %#x opens with anchor at +%#x, not +0; the split fall-through entry cannot translate",
				fi.Name, r.Start, r.Entries[0].OutOff)
		}
		for _, e := range r.Entries {
			fn, off, ok := tbl.Translate(r.Start + uint64(e.OutOff))
			if !ok || fn != fi.Name {
				t.Errorf("%s: anchor at +%#x does not translate back to its function (got %q, ok=%v)",
					fi.Name, e.OutOff, fn, ok)
				continue
			}
			if off >= fi.InSize {
				t.Errorf("%s: anchor at +%#x translates to %#x outside the original body (size %#x)",
					fi.Name, e.OutOff, off, fi.InSize)
			}
		}
	}
	if coldRanges == 0 {
		t.Error("BAT carries no cold ranges despite split functions")
	}
}

package bench

import (
	"flag"
	"strings"
	"testing"
	"time"

	"gobolt/internal/benchfmt"
)

// speedScale shrinks the speed experiment's workload for CI; raise it
// locally (go test -run Speed -speed-scale 0.25) for more realistic
// phase times.
var speedScale = flag.Float64("speed-scale", 0.02, "workload scale for TestSpeedExperiment")

// TestSpeedExperiment exercises the optimizer-speed experiment end to
// end at a tiny scale: all three phases measured, output parseable as Go
// benchfmt, and the regression gate self-consistent (a run never fails
// its own baseline).
func TestSpeedExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("speed experiment times full pipeline phases; skipped in -short")
	}
	scale := Scale(*speedScale)
	results, report, err := Speed(scale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3 (load/emit/pipeline): %+v", len(results), results)
	}
	for _, phase := range []string{"/load/", "/emit/", "/pipeline/"} {
		found := false
		for _, r := range results {
			if strings.Contains(r.Name, phase) {
				found = true
				for _, unit := range []string{"ns/op", "B/op", "allocs/op"} {
					if r.Metrics[unit] <= 0 {
						t.Errorf("%s: non-positive %s: %v", r.Name, unit, r.Metrics[unit])
					}
				}
			}
		}
		if !found {
			t.Errorf("no %s result in %q", phase, report)
		}
	}

	// The report is the CI artifact: it must round-trip through the
	// benchfmt parser with nothing lost.
	parsed, cfg, err := benchfmt.Parse(strings.NewReader(report))
	if err != nil {
		t.Fatalf("report does not parse as benchfmt: %v\n%s", err, report)
	}
	if len(parsed) != len(results) {
		t.Fatalf("parse round-trip lost results: %d -> %d", len(results), len(parsed))
	}
	if cfg["pkg"] != "gobolt/internal/bench" {
		t.Errorf("report header lost config lines: %v", cfg)
	}

	// Gate self-consistency: a baseline built from this very run must
	// pass, and must refuse a run at mismatched parameters.
	bf := NewBenchFile(scale, 1, results, time.Unix(0, 0))
	if bf.Gate.Benchmark == "" {
		t.Fatal("NewBenchFile found no emission benchmark to gate on")
	}
	if _, err := SpeedGate(bf, scale, 1, results); err != nil {
		t.Errorf("self-gate failed: %v", err)
	}
	if _, err := SpeedGate(bf, scale/2, 1, results); err == nil {
		t.Error("gate accepted a run at the wrong scale")
	}
	if _, err := SpeedGate(bf, scale, 4, results); err == nil {
		t.Error("gate accepted a run at the wrong jobs count")
	}
}

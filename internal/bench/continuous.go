package bench

import (
	"context"
	"fmt"
	"strings"

	"gobolt/bolt"
	"gobolt/internal/bat"
	"gobolt/internal/core"
	"gobolt/internal/elfx"
	"gobolt/internal/perf"
	"gobolt/internal/profile"
	"gobolt/internal/uarch"
	"gobolt/internal/workload"
)

// ContinuousResult carries the headline rates of the continuous-profiling
// experiment (tests assert on these; the report renders them).
type ContinuousResult struct {
	// TranslationSurvival is the fraction of branch counts sampled on the
	// BOLTed binary that survive BAT translation back to input
	// coordinates.
	TranslationSurvival float64
	// VsFresh compares the translated profile's total branch count to a
	// fresh profile recorded on the unoptimized binary.
	VsFresh float64
	// AppliedVsFresh compares the branch counts ApplyProfile actually
	// attaches (CFG edges + call records) from the translated profile
	// against the fresh profile.
	AppliedVsFresh float64
	// SpeedupFresh / SpeedupTranslated are round-1 (fresh profile) and
	// round-2 (translated profile) BOLT speedups over the baseline.
	SpeedupFresh, SpeedupTranslated float64
	// StaleRecovered is the branch count recovered by shape matching on
	// the new-release binary; StaleRecoveryRate is its share of the
	// counts that went through the matcher; StaleAppliedWithout is what
	// the classic drop-records pipeline manages on the same binary.
	StaleRecovered      int64
	StaleRecoveryRate   float64
	StaleAppliedWithout int64
	StaleSpeedup        float64
	StaleFuncsMatched   int64
}

// recordWithShapes samples a binary and embeds its CFG shapes, the way
// `vmrun -record` does.
func recordWithShapes(f *elfx.File, mode perf.Mode) (*profile.Fdata, error) {
	fd, _, err := perf.RecordFile(f, mode, 0)
	if err != nil {
		return nil, err
	}
	sess, err := bolt.OpenELF(f, bolt.WithJobs(boltJobs))
	if err != nil {
		return nil, err
	}
	if err := sess.Analyze(context.Background()); err != nil {
		return nil, err
	}
	shapes, err := sess.Shapes()
	if err != nil {
		return nil, err
	}
	fd.Shapes = shapes
	return fd, nil
}

// appliedCounts applies a profile to a fresh analysis of f and returns
// the branch counts that landed (edges+calls), plus the full stats map.
func appliedCounts(f *elfx.File, fd *profile.Fdata, opts core.Options) (int64, map[string]int64, error) {
	cx := context.Background()
	sess, err := bolt.OpenELF(f, bolt.WithOptions(opts))
	if err != nil {
		return 0, nil, err
	}
	if err := sess.LoadProfile(cx, bolt.Fdata(fd)); err != nil {
		return 0, nil, err
	}
	if err := sess.Analyze(cx); err != nil {
		return 0, nil, err
	}
	st, err := sess.Stats()
	if err != nil {
		return 0, nil, err
	}
	return st["profile-edge-count"] + st["profile-call-count"] + st["profile-stale-count"], st, nil
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Continuous closes the §7.3 loop end to end and quantifies it:
//
//	build v1 -> profile -> BOLT (writes .bolt.bat)
//	  -> sample the *optimized* binary in "production"
//	  -> translate the profile through BAT back to v1 coordinates
//	  -> re-BOLT v1 with the translated profile
//
// and the stale half:
//
//	build v2 (a mutated release) -> apply v1's profile
//	  -> without shape matching the intra-function records drop
//	  -> with internal/stale they are re-anchored and recovered
func Continuous(scale Scale) (*ContinuousResult, string, error) {
	spec := scale.apply(workload.TAO())
	mode := perf.DefaultMode()
	res := &ContinuousResult{}
	var sb strings.Builder
	sb.WriteString("Continuous profiling (§7.3 'Beyond' + stale matching)\n")

	base, _, err := Build(spec, CfgBaseline, mode)
	if err != nil {
		return nil, "", err
	}
	fdFresh, err := recordWithShapes(base, mode)
	if err != nil {
		return nil, "", err
	}
	fmt.Fprintf(&sb, "  %s: fresh profile: %d branch records, total count %d, %d shapes\n",
		spec.Name, len(fdFresh.Branches), fdFresh.TotalBranchCount(), len(fdFresh.Shapes))

	// Round 1: optimize with the fresh profile; the output carries BAT.
	sess1, _, err := optimizeSession(base, fdFresh, bolt.WithOptions(boltOptions()))
	if err != nil {
		return nil, "", fmt.Errorf("round-1 bolt: %w", err)
	}
	opt1 := sess1.Output()

	// "Production" sampling on the optimized binary, then translation.
	fdOpt, _, err := perf.RecordFile(opt1, mode, 0)
	if err != nil {
		return nil, "", err
	}
	table, err := bat.FromFile(opt1)
	if err != nil {
		return nil, "", err
	}
	if table == nil {
		return nil, "", fmt.Errorf("continuous: optimized binary carries no %s section", bat.SectionName)
	}
	fdTrans, tstats := bat.TranslateProfile(fdOpt, opt1, table)
	res.TranslationSurvival = ratio(fdTrans.TotalBranchCount(), fdOpt.TotalBranchCount())
	res.VsFresh = ratio(fdTrans.TotalBranchCount(), fdFresh.TotalBranchCount())
	fmt.Fprintf(&sb, "  sampled on BOLTed binary: total count %d; BAT (%d funcs, %d ranges) translated %d, passthrough %d, dropped %d\n",
		fdOpt.TotalBranchCount(), len(table.Funcs), len(table.Ranges),
		tstats.TranslatedBranches, tstats.PassthroughCount, tstats.DroppedCount)
	fmt.Fprintf(&sb, "  translation survival: %.2f%% of sampled counts; %.2f%% of the fresh profile's total\n",
		100*res.TranslationSurvival, 100*res.VsFresh)

	// How much of each profile ApplyProfile actually attaches to v1.
	appliedFresh, _, err := appliedCounts(base, fdFresh, boltOptions())
	if err != nil {
		return nil, "", err
	}
	appliedTrans, _, err := appliedCounts(base, fdTrans, boltOptions())
	if err != nil {
		return nil, "", err
	}
	res.AppliedVsFresh = ratio(uint64(appliedTrans), uint64(appliedFresh))
	fmt.Fprintf(&sb, "  ApplyProfile attached: fresh %d vs translated %d counts (%.2f%% reproduced)\n",
		appliedFresh, appliedTrans, 100*res.AppliedVsFresh)

	// Round 2: re-optimize v1 with the translated profile and compare.
	sess2, _, err := optimizeSession(base, fdTrans, bolt.WithOptions(boltOptions()))
	if err != nil {
		return nil, "", fmt.Errorf("round-2 bolt: %w", err)
	}
	opt2 := sess2.Output()
	mBase, err := Measure(base, uarch.DefaultConfig(), false)
	if err != nil {
		return nil, "", err
	}
	m1, err := Measure(opt1, uarch.DefaultConfig(), false)
	if err != nil {
		return nil, "", err
	}
	m2, err := Measure(opt2, uarch.DefaultConfig(), false)
	if err != nil {
		return nil, "", err
	}
	if mBase.Checksum != m1.Checksum || mBase.Checksum != m2.Checksum {
		return nil, "", fmt.Errorf("continuous: checksum mismatch after BOLT rounds")
	}
	res.SpeedupFresh = uarch.Speedup(mBase.Metrics, m1.Metrics)
	res.SpeedupTranslated = uarch.Speedup(mBase.Metrics, m2.Metrics)
	fmt.Fprintf(&sb, "  BOLT speedup over baseline: %.2f%% with fresh profile, %.2f%% with translated profile (results identical)\n",
		100*res.SpeedupFresh, 100*res.SpeedupTranslated)

	// Stale half: a "new release" whose entry blocks grew instrumentation
	// pads, shifting every downstream offset.
	spec2 := spec
	spec2.EntryPadOps = 3
	v2, _, err := Build(spec2, CfgBaseline, mode)
	if err != nil {
		return nil, "", err
	}
	optsOff := boltOptions()
	optsOff.StaleMatching = false
	appliedOff, stOff, err := appliedCounts(v2, fdFresh, optsOff)
	if err != nil {
		return nil, "", err
	}
	_, stOn, err := appliedCounts(v2, fdFresh, boltOptions())
	if err != nil {
		return nil, "", err
	}
	res.StaleAppliedWithout = appliedOff
	res.StaleRecovered = stOn["profile-stale-count"]
	res.StaleFuncsMatched = stOn["profile-stale-funcs"]
	staleTotal := stOn["profile-stale-count"] + stOn["profile-stale-drop-count"]
	if staleTotal > 0 {
		res.StaleRecoveryRate = float64(res.StaleRecovered) / float64(staleTotal)
	}
	fmt.Fprintf(&sb, "  stale release (v2, +%d entry pad ops): classic pipeline drops %d of the intra-function counts (edges applied: %d)\n",
		spec2.EntryPadOps, stOff["profile-drop-count"], stOff["profile-edge-count"])
	fmt.Fprintf(&sb, "  shape matching: %d funcs matched, %d counts recovered (%.2f%% of stale counts)\n",
		res.StaleFuncsMatched, res.StaleRecovered, 100*res.StaleRecoveryRate)

	// BOLT the new release with the stale profile.
	sess3, _, err := optimizeSession(v2, fdFresh, bolt.WithOptions(boltOptions()))
	if err != nil {
		return nil, "", fmt.Errorf("stale bolt: %w", err)
	}
	mV2, err := Measure(v2, uarch.DefaultConfig(), false)
	if err != nil {
		return nil, "", err
	}
	m3, err := Measure(sess3.Output(), uarch.DefaultConfig(), false)
	if err != nil {
		return nil, "", err
	}
	if mV2.Checksum != m3.Checksum {
		return nil, "", fmt.Errorf("continuous: checksum mismatch after stale-profile BOLT")
	}
	res.StaleSpeedup = uarch.Speedup(mV2.Metrics, m3.Metrics)
	fmt.Fprintf(&sb, "  BOLT v2 with the stale v1 profile: %.2f%% speedup over the v2 baseline\n",
		100*res.StaleSpeedup)
	return res, sb.String(), nil
}

package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"gobolt/bolt"
	"gobolt/internal/benchfmt"
	"gobolt/internal/core"
	"gobolt/internal/passes"
	"gobolt/internal/perf"
	"gobolt/internal/workload"
)

// Speed is the optimizer-performance experiment: where every other
// experiment measures the *optimized binary*, this one measures the
// *optimizer itself* (the paper's §6.1 processing-time claim). It builds
// the clang workload, records a training profile, and then times the
// pipeline's hot phases — the parallel loader (disassembly+CFG), the
// emitter (code generation + layout + patching), and the full
// load→passes→emit pipeline — reporting ns/op, B/op, and allocs/op per
// phase in Go benchfmt, so two runs can be compared with benchstat (or
// the built-in gate, see SpeedGate). The per-phase benches drive core
// directly: isolating one phase is exactly what the staged public API
// hides on purpose, and measurement is the one caller with a legitimate
// need to bypass it.
//
// Results are deterministic per (scale, jobs) for jobs=1 — allocation
// counts are exact mallocgc counters and the pipeline allocates
// identically every iteration — which is what makes the CI allocs/op
// regression gate possible.
func Speed(scale Scale, jobs int) ([]benchfmt.Result, string, error) {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	spec := scale.apply(workload.Clang())
	mode := perf.DefaultMode()
	f, _, err := Build(spec, CfgBaseline, mode)
	if err != nil {
		return nil, "", err
	}
	fd, _, err := perf.RecordFile(f, mode, 0)
	if err != nil {
		return nil, "", err
	}
	cx := context.Background()
	opts := boltOptions()
	opts.Jobs = jobs

	var results []benchfmt.Result
	bench := func(phase string, fn func() error) error {
		r, err := measurePhase(fmt.Sprintf("BenchmarkSpeed/%s/%s/jobs=%d", phase, spec.Name, jobs), fn)
		if err != nil {
			return fmt.Errorf("speed: %s: %w", phase, err)
		}
		results = append(results, r)
		return nil
	}

	// load: the front half of the pipeline — function discovery plus the
	// parallel disassembly+CFG phase.
	if err := bench("load", func() error {
		_, err := core.NewContext(cx, f, opts)
		return err
	}); err != nil {
		return nil, "", err
	}

	// emit: code generation + layout + patching on an already-optimized
	// context. The context is prepared once; Rewrite is repeatable (the
	// only CFG mutation it persists, JCC inversion, reaches a fixpoint on
	// the first run, which the warmup iteration absorbs).
	ectx, err := core.NewContext(cx, f, opts)
	if err != nil {
		return nil, "", err
	}
	if err := ectx.ApplyProfile(cx, fd); err != nil {
		return nil, "", err
	}
	if err := core.NewPassManager(jobs).Run(cx, ectx, passes.BuildPipeline(opts)); err != nil {
		return nil, "", err
	}
	if err := bench("emit", func() error {
		_, err := ectx.Rewrite(cx)
		return err
	}); err != nil {
		return nil, "", err
	}

	// pipeline: the end-to-end session (open → profile → optimize), the
	// number a data-center deployment loop actually pays per binary.
	if err := bench("pipeline", func() error {
		sess, err := bolt.OpenELF(f, bolt.WithOptions(opts))
		if err != nil {
			return err
		}
		if err := sess.LoadProfile(cx, bolt.Fdata(fd)); err != nil {
			return err
		}
		_, err = sess.Optimize(cx)
		return err
	}); err != nil {
		return nil, "", err
	}

	var sb strings.Builder
	writeSpeedReport(&sb, results)
	return results, sb.String(), nil
}

// writeSpeedReport renders header + benchmark lines as benchfmt text.
func writeSpeedReport(sb *strings.Builder, results []benchfmt.Result) {
	benchfmt.WriteHeader(sb, [][2]string{
		{"goos", runtime.GOOS},
		{"goarch", runtime.GOARCH},
		{"pkg", "gobolt/internal/bench"},
		{"cpu-count", fmt.Sprintf("%d", runtime.NumCPU())},
	})
	for _, r := range results {
		benchfmt.WriteResult(sb, r)
	}
}

// speedTargetTime bounds how long measurePhase spends per phase; the
// iteration count adapts to it the way `go test -bench` adapts to
// -benchtime.
const speedTargetTime = 2 * time.Second

// measurePhase runs fn once as warmup (absorbing lazy initialization and
// one-time CFG fixups), picks an iteration count from the warmup
// duration, and measures wall time and heap allocation deltas around the
// timed iterations. Allocation counters come from runtime.MemStats —
// exact mallocgc counts, not sampled — so B/op and allocs/op are stable
// run to run.
func measurePhase(name string, fn func() error) (benchfmt.Result, error) {
	warmStart := time.Now()
	if err := fn(); err != nil {
		return benchfmt.Result{}, err
	}
	warm := time.Since(warmStart)

	iters := int64(1)
	if warm > 0 {
		iters = int64(speedTargetTime / warm)
	}
	if iters < 2 {
		iters = 2
	}
	if iters > 100 {
		iters = 100
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := int64(0); i < iters; i++ {
		if err := fn(); err != nil {
			return benchfmt.Result{}, err
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	return benchfmt.Result{
		// The "-N" suffix is the GOMAXPROCS convention benchstat strips
		// when matching names across files.
		Name:  fmt.Sprintf("%s-%d", name, runtime.GOMAXPROCS(0)),
		Iters: iters,
		Metrics: map[string]float64{
			"ns/op":     float64(wall.Nanoseconds()) / float64(iters),
			"B/op":      float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
			"allocs/op": float64(after.Mallocs-before.Mallocs) / float64(iters),
		},
	}, nil
}

// BenchFile is the schema of the committed BENCH_*.json perf-trajectory
// records. Gate carries the CI regression baseline: results recorded at
// the exact (scale, jobs) the bench-smoke job runs, plus the benchmark
// and threshold the gate enforces. Local carries full-scale numbers from
// the documented multi-core protocol (informational). Comparison records
// the old-vs-new deltas measured when the PR landed.
type BenchFile struct {
	Issue int    `json:"issue"`
	Date  string `json:"date"`
	Host  struct {
		GOOS   string `json:"goos"`
		GOARCH string `json:"goarch"`
		CPUs   int    `json:"cpus"`
	} `json:"host"`
	Gate struct {
		Experiment   string            `json:"experiment"`
		Scale        float64           `json:"scale"`
		Jobs         int               `json:"jobs"`
		Benchmark    string            `json:"benchmark"`
		Unit         string            `json:"unit"`
		ThresholdPct float64           `json:"threshold_pct"`
		Results      []benchfmt.Result `json:"results"`
	} `json:"gate"`
	Local      []benchfmt.Result `json:"local,omitempty"`
	Comparison []benchfmt.Delta  `json:"comparison,omitempty"`
	Notes      string            `json:"notes,omitempty"`
}

// NewBenchFile builds a gate-baseline skeleton from a fresh speed run:
// the gate is pinned to the run's (scale, jobs) and to the emission
// benchmark's allocs/op at a 10% threshold — the number that is exact
// and reproducible at jobs=1 (see Speed). Edit Issue/Local/Comparison/
// Notes by hand before committing.
func NewBenchFile(scale Scale, jobs int, results []benchfmt.Result, now time.Time) *BenchFile {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	bf := &BenchFile{Date: now.UTC().Format("2006-01-02")}
	bf.Host.GOOS = runtime.GOOS
	bf.Host.GOARCH = runtime.GOARCH
	bf.Host.CPUs = runtime.NumCPU()
	bf.Gate.Experiment = "speed"
	bf.Gate.Scale = float64(scale)
	bf.Gate.Jobs = jobs
	bf.Gate.Unit = "allocs/op"
	bf.Gate.ThresholdPct = 10
	bf.Gate.Results = results
	for _, r := range results {
		if strings.Contains(r.Name, "/emit/") {
			bf.Gate.Benchmark = benchfmt.BaseName(r.Name)
		}
	}
	return bf
}

// Marshal renders the record as indented JSON ready to commit.
func (bf *BenchFile) Marshal() ([]byte, error) {
	raw, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}

// LoadBenchFile reads a committed BENCH_*.json record.
func LoadBenchFile(path string) (*BenchFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf BenchFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &bf, nil
}

// SpeedGate compares a fresh speed run against the baseline committed in
// a BENCH_*.json file and fails if the gated benchmark's gated unit
// regressed beyond the recorded threshold. The run must have been taken
// at the baseline's (scale, jobs) — allocs/op scales with the workload,
// so cross-scale comparisons are meaningless and rejected outright.
func SpeedGate(bf *BenchFile, scale Scale, jobs int, results []benchfmt.Result) (string, error) {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if float64(scale) != bf.Gate.Scale || jobs != bf.Gate.Jobs {
		return "", fmt.Errorf("bench: speed gate baseline was recorded at scale=%g jobs=%d, this run used scale=%g jobs=%d; rerun with the baseline's parameters",
			bf.Gate.Scale, bf.Gate.Jobs, float64(scale), jobs)
	}
	deltas := benchfmt.Compare(bf.Gate.Results, results, bf.Gate.Unit)
	var sb strings.Builder
	fmt.Fprintf(&sb, "speed gate (%s, threshold +%.0f%%) vs baseline:\n", bf.Gate.Unit, bf.Gate.ThresholdPct)
	sb.WriteString(benchfmt.FormatDeltas(deltas))
	var gated *benchfmt.Delta
	for i := range deltas {
		if deltas[i].Name == bf.Gate.Benchmark {
			gated = &deltas[i]
		}
	}
	if gated == nil {
		return sb.String(), fmt.Errorf("bench: gated benchmark %q missing from this run", bf.Gate.Benchmark)
	}
	if gated.Pct > bf.Gate.ThresholdPct {
		return sb.String(), fmt.Errorf("bench: %s %s regressed %.2f%% (%.0f -> %.0f), over the +%.0f%% gate",
			gated.Name, gated.Unit, gated.Pct, gated.Old, gated.New, bf.Gate.ThresholdPct)
	}
	return sb.String(), nil
}

// Package par provides the one bounded fan-out primitive shared by every
// parallel phase of the toolchain: the loader's per-function
// disassembly+CFG stage, the PassManager's function passes, the emitter's
// per-function code generation, and profile-shard parsing. It lives
// outside internal/core so leaf packages (profile tooling, the bolt API)
// can use the same pool without importing the engine.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Jobs resolves a -jobs setting against GOMAXPROCS and the amount of work
// available: jobs <= 0 selects GOMAXPROCS (the production default) and
// the pool never exceeds n workers.
func Jobs(jobs, n int) int {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > n {
		jobs = n
	}
	if jobs < 1 {
		jobs = 1
	}
	return jobs
}

// For distributes work items [0,n) over jobs workers. Work is handed out
// by an atomic cursor; work receives the worker index (so callers can
// give each worker a private shard) and the item index. On failure the
// pool drains and the error attributed to the lowest item index is
// returned along with that index, keeping error messages stable across
// schedules. jobs <= 1 degenerates to a plain loop.
//
// Cancelling cx stops the pool promptly: no new item is claimed once the
// context is done (items already claimed run to completion), and For
// returns (-1, cx.Err()). Item errors take precedence over cancellation
// in the returned error, so a real failure is never masked by a
// simultaneous cancel. A nil cx behaves like context.Background().
func For(cx context.Context, n, jobs int, work func(worker, item int) error) (int, error) {
	if cx == nil {
		cx = context.Background()
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			if err := cx.Err(); err != nil {
				return -1, err
			}
			if err := work(0, i); err != nil {
				return i, err
			}
		}
		return -1, nil
	}
	var (
		cursor atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		errMu  sync.Mutex
	)
	errIdx, firstErr := -1, error(nil)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				// Check for drain BEFORE claiming: a claimed item always
				// runs. The cursor hands out indices in order, so every
				// item below a recorded error index has run, and the
				// lowest-index error is reported exactly — the same
				// failure jobs=1 would stop at.
				if failed.Load() || cx.Err() != nil {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				if err := work(w, i); err != nil {
					errMu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, firstErr = i, err
					}
					errMu.Unlock()
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return errIdx, firstErr
	}
	if err := cx.Err(); err != nil {
		return -1, err
	}
	return -1, nil
}

// Package par provides the one bounded fan-out primitive shared by every
// parallel phase of the toolchain: the loader's per-function
// disassembly+CFG stage, the PassManager's function passes, the emitter's
// per-function code generation, and profile-shard parsing. It lives
// outside internal/core so leaf packages (profile tooling, the bolt API)
// can use the same pool without importing the engine.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gobolt/internal/obsv"
)

// Jobs resolves a -jobs setting against GOMAXPROCS and the amount of work
// available: jobs <= 0 selects GOMAXPROCS (the production default) and
// the pool never exceeds n workers.
func Jobs(jobs, n int) int {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > n {
		jobs = n
	}
	if jobs < 1 {
		jobs = 1
	}
	return jobs
}

// For distributes work items [0,n) over jobs workers. Work is handed out
// by an atomic cursor; work receives the worker index (so callers can
// give each worker a private shard) and the item index. On failure the
// pool drains and the error attributed to the lowest item index is
// returned along with that index, keeping error messages stable across
// schedules. jobs <= 1 degenerates to a plain loop.
//
// Cancelling cx stops the pool promptly: no new item is claimed once the
// context is done (items already claimed run to completion), and For
// returns (-1, cx.Err()). Item errors take precedence over cancellation
// in the returned error, so a real failure is never masked by a
// simultaneous cancel. A nil cx behaves like context.Background().
func For(cx context.Context, n, jobs int, work func(worker, item int) error) (int, error) {
	return ForTraced(cx, nil, "", nil, n, jobs, work)
}

// ForTraced is For with span recording: when tr is non-nil each worker
// records one batch span named after the phase covering its whole
// participation in the pool, plus one task span per item (named by
// taskName when provided, else by the phase). A nil tr makes ForTraced
// identical to For — the hot loop takes no time stamps and performs no
// allocations, preserving the zero-alloc emission path.
func ForTraced(cx context.Context, tr *obsv.Tracer, phase string, taskName func(item int) string, n, jobs int, work func(worker, item int) error) (int, error) {
	if cx == nil {
		cx = context.Background()
	}
	// Task timestamps are chained: each span starts where the previous
	// one on the same worker ended, so an item costs one clock read, not
	// two. The sliver of claim overhead between items is attributed to
	// the task, which is negligible next to any real work item. Spans
	// are recorded for completed items only — a failing item ends its
	// worker's batch without a task span. The closures are built only
	// when tracing: with tr == nil this function allocates nothing.
	var task func(w, i int, last time.Time) time.Time
	if tr != nil {
		if jobs < 1 {
			tr.EnsureWorkers(1)
		} else {
			tr.EnsureWorkers(jobs)
		}
		task = func(w, i int, last time.Time) time.Time {
			now := time.Now()
			name := phase
			if taskName != nil {
				name = taskName(i)
			}
			tr.Task(w, phase, name, last, now.Sub(last))
			return now
		}
	}
	if jobs <= 1 {
		if tr == nil {
			for i := 0; i < n; i++ {
				if err := cx.Err(); err != nil {
					return -1, err
				}
				if err := work(0, i); err != nil {
					return i, err
				}
			}
			return -1, nil
		}
		t0 := time.Now()
		last := t0
		items := 0
		batch := func() { tr.Batch(0, phase, t0, time.Since(t0), items) }
		for i := 0; i < n; i++ {
			if err := cx.Err(); err != nil {
				batch()
				return -1, err
			}
			if err := work(0, i); err != nil {
				batch()
				return i, err
			}
			last = task(0, i, last)
			items++
		}
		batch()
		return -1, nil
	}
	var (
		cursor atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		errMu  sync.Mutex
	)
	errIdx, firstErr := -1, error(nil)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			run := work // worker-local: the traced wrapper must not race across workers
			if tr != nil {
				t0 := time.Now()
				last := t0
				items := 0
				defer func() { tr.Batch(w, phase, t0, time.Since(t0), items) }()
				run = func(w, i int) error {
					err := work(w, i)
					if err == nil {
						last = task(w, i, last)
						items++
					}
					return err
				}
			}
			for {
				// Check for drain BEFORE claiming: a claimed item always
				// runs. The cursor hands out indices in order, so every
				// item below a recorded error index has run, and the
				// lowest-index error is reported exactly — the same
				// failure jobs=1 would stop at.
				if failed.Load() || cx.Err() != nil {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				if err := run(w, i); err != nil {
					errMu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, firstErr = i, err
					}
					errMu.Unlock()
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return errIdx, firstErr
	}
	if err := cx.Err(); err != nil {
		return -1, err
	}
	return -1, nil
}

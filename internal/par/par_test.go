package par

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForRunsEveryItem(t *testing.T) {
	for _, jobs := range []int{1, 2, 8} {
		var hits atomic.Int64
		idx, err := For(context.Background(), 100, jobs, func(_, i int) error {
			hits.Add(1)
			return nil
		})
		if err != nil || idx != -1 {
			t.Fatalf("jobs=%d: unexpected (%d, %v)", jobs, idx, err)
		}
		if hits.Load() != 100 {
			t.Fatalf("jobs=%d: ran %d of 100 items", jobs, hits.Load())
		}
	}
}

func TestForLowestErrorWins(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		idx, err := For(context.Background(), 50, jobs, func(_, i int) error {
			if i == 7 || i == 31 {
				return fmt.Errorf("item %d", i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("jobs=%d: expected error", jobs)
		}
		// Item 7 always runs before the drain completes, so the reported
		// index can never exceed it.
		if idx != 7 {
			t.Fatalf("jobs=%d: error attributed to item %d, want 7 (err: %v)", jobs, idx, err)
		}
	}
}

// TestForCancellationStopsPromptly cancels the context from inside a work
// item and checks that the pool drains without claiming the remaining
// items, returning the context's error with index -1.
func TestForCancellationStopsPromptly(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		cx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		const n, cancelAt = 10_000, 5
		idx, err := For(cx, n, jobs, func(_, i int) error {
			ran.Add(1)
			if i == cancelAt {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) || idx != -1 {
			t.Fatalf("jobs=%d: got (%d, %v), want (-1, context.Canceled)", jobs, idx, err)
		}
		// At most the items claimed before the cancel landed may run:
		// with the atomic cursor that is a handful per worker, never the
		// full range.
		if got := ran.Load(); got >= n/2 {
			t.Fatalf("jobs=%d: %d of %d items ran after cancellation", jobs, got, n)
		}
	}
}

// TestForCancelledBeforeStart: a pre-cancelled context runs no work.
func TestForCancelledBeforeStart(t *testing.T) {
	cx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, jobs := range []int{1, 4} {
		var ran atomic.Int64
		idx, err := For(cx, 100, jobs, func(_, i int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) || idx != -1 {
			t.Fatalf("jobs=%d: got (%d, %v), want (-1, context.Canceled)", jobs, idx, err)
		}
		if ran.Load() != 0 {
			t.Fatalf("jobs=%d: %d items ran under a cancelled context", jobs, ran.Load())
		}
	}
}

// TestForErrorBeatsCancel: when a work item fails and the context is then
// cancelled, the item error is reported, not the cancellation.
func TestForErrorBeatsCancel(t *testing.T) {
	cx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	idx, err := For(cx, 20, 4, func(_, i int) error {
		if i == 3 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || idx != 3 {
		t.Fatalf("got (%d, %v), want (3, boom)", idx, err)
	}
}

func TestJobs(t *testing.T) {
	if got := Jobs(4, 2); got != 2 {
		t.Errorf("Jobs(4,2) = %d, want 2 (capped by work)", got)
	}
	if got := Jobs(3, 100); got != 3 {
		t.Errorf("Jobs(3,100) = %d, want 3", got)
	}
	if got := Jobs(0, 0); got != 1 {
		t.Errorf("Jobs(0,0) = %d, want 1", got)
	}
}

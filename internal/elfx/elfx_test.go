package elfx

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleFile() *File {
	f := New()
	f.Entry = 0x401000
	f.AddSection(&Section{
		Name: ".text", Type: SHTProgbits, Flags: SHFAlloc | SHFExecinstr,
		Addr: 0x401000, Data: []byte{0xC3, 0x90, 0x90, 0xF4}, Addralign: 16,
	})
	f.AddSection(&Section{
		Name: ".rodata", Type: SHTProgbits, Flags: SHFAlloc,
		Addr: 0x402000, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}, Addralign: 8,
	})
	f.AddSection(&Section{
		Name: ".data", Type: SHTProgbits, Flags: SHFAlloc | SHFWrite,
		Addr: 0x403000, Data: bytes.Repeat([]byte{0xAB}, 32), Addralign: 8,
	})
	f.AddSection(&Section{
		Name: ".comment", Type: SHTProgbits, Data: []byte("gobolt"), Addralign: 1,
	})
	f.Symbols = []Symbol{
		{Name: "main", Value: 0x401000, Size: 1, Type: STTFunc, Bind: STBGlobal, Section: ".text"},
		{Name: "pad", Value: 0x401001, Size: 3, Type: STTFunc, Bind: STBLocal, Section: ".text"},
		{Name: "table", Value: 0x402000, Size: 8, Type: STTObject, Bind: STBLocal, Section: ".rodata"},
	}
	return f
}

func TestRoundTrip(t *testing.T) {
	f := sampleFile()
	data, err := f.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Read(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.Entry != f.Entry {
		t.Errorf("entry: got %#x want %#x", g.Entry, f.Entry)
	}
	for _, name := range []string{".text", ".rodata", ".data", ".comment"} {
		a, b := f.Section(name), g.Section(name)
		if b == nil {
			t.Fatalf("section %s missing after round trip", name)
		}
		if a.Addr != b.Addr || a.Flags != b.Flags || !bytes.Equal(a.Data, b.Data) {
			t.Errorf("section %s mismatch: addr %#x/%#x flags %#x/%#x", name, a.Addr, b.Addr, a.Flags, b.Flags)
		}
	}
	if len(g.Symbols) != len(f.Symbols) {
		t.Fatalf("symbols: got %d want %d", len(g.Symbols), len(f.Symbols))
	}
	m, ok := g.SymbolByName("main")
	if !ok || m.Value != 0x401000 || m.Type != STTFunc || m.Bind != STBGlobal || m.Section != ".text" {
		t.Errorf("main symbol corrupted: %+v", m)
	}
}

func TestRelocRoundTrip(t *testing.T) {
	f := sampleFile()
	f.EmitRelocs = true
	f.Relas[".text"] = []Rela{
		{Off: 0, Type: RX8664PC32, Sym: "table", Addend: -4},
		{Off: 2, Type: RX866464, Sym: "main", Addend: 0},
	}
	data, err := f.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Read(data)
	if err != nil {
		t.Fatal(err)
	}
	rl := g.Relas[".text"]
	if len(rl) != 2 {
		t.Fatalf("got %d relocs, want 2", len(rl))
	}
	if rl[0].Sym != "table" || rl[0].Type != RX8664PC32 || rl[0].Addend != -4 || rl[0].Off != 0 {
		t.Errorf("reloc 0 corrupted: %+v", rl[0])
	}
	if rl[1].Sym != "main" || rl[1].Type != RX866464 || rl[1].Off != 2 {
		t.Errorf("reloc 1 corrupted: %+v", rl[1])
	}
}

func TestSymbolAt(t *testing.T) {
	f := sampleFile()
	s, ok := f.SymbolAt(0x401002)
	if !ok || s.Name != "pad" {
		t.Errorf("SymbolAt(0x401002) = %v, %v; want pad", s.Name, ok)
	}
	if _, ok := f.SymbolAt(0x500000); ok {
		t.Errorf("SymbolAt out of range must fail")
	}
}

func TestReadAt(t *testing.T) {
	f := sampleFile()
	b, err := f.ReadAt(0x402002, 3)
	if err != nil || !bytes.Equal(b, []byte{3, 4, 5}) {
		t.Errorf("ReadAt: %v % x", err, b)
	}
	if _, err := f.ReadAt(0x402006, 4); err == nil {
		t.Errorf("cross-section read must fail")
	}
	if _, err := f.ReadAt(0x999999, 1); err == nil {
		t.Errorf("unmapped read must fail")
	}
}

func TestOverlapRejected(t *testing.T) {
	f := New()
	f.AddSection(&Section{Name: "a", Flags: SHFAlloc, Addr: 0x1000, Data: make([]byte, 32), Type: SHTProgbits})
	f.AddSection(&Section{Name: "b", Flags: SHFAlloc, Addr: 0x1010, Data: make([]byte, 32), Type: SHTProgbits})
	if _, err := f.Bytes(); err == nil {
		t.Fatal("overlapping sections must be rejected")
	}
}

func TestGarbageRejected(t *testing.T) {
	for _, b := range [][]byte{nil, []byte("hello"), bytes.Repeat([]byte{0}, 100)} {
		if _, err := Read(b); err == nil {
			t.Errorf("Read(%d bytes of garbage) succeeded", len(b))
		}
	}
}

// Property: random section payloads and symbols survive a write/read cycle.
func TestRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	check := func() bool {
		f := New()
		f.Entry = 0x400000 + uint64(r.Intn(0x1000))
		addr := uint64(0x400000)
		n := 1 + r.Intn(4)
		for i := 0; i < n; i++ {
			size := 1 + r.Intn(300)
			data := make([]byte, size)
			r.Read(data)
			flags := SHFAlloc
			if i%2 == 1 {
				flags |= SHFWrite
			} else {
				flags |= SHFExecinstr
			}
			f.AddSection(&Section{
				Name: string(rune('a'+i)) + ".sect", Type: SHTProgbits,
				Flags: flags, Addr: addr, Data: data, Addralign: 1,
			})
			addr += uint64(size) + uint64(r.Intn(0x1000))
		}
		for i := 0; i < r.Intn(5); i++ {
			f.Symbols = append(f.Symbols, Symbol{
				Name: string(rune('f'+i)) + "unc", Value: 0x400000 + uint64(r.Intn(100)),
				Size: uint64(r.Intn(50)), Type: STTFunc, Bind: byte(r.Intn(2)),
				Section: f.Sections[0].Name,
			})
		}
		data, err := f.Bytes()
		if err != nil {
			t.Logf("write: %v", err)
			return false
		}
		g, err := Read(data)
		if err != nil {
			t.Logf("read: %v", err)
			return false
		}
		if g.Entry != f.Entry || len(g.Sections) != len(f.Sections) || len(g.Symbols) != len(f.Symbols) {
			return false
		}
		for _, s := range f.Sections {
			gs := g.Section(s.Name)
			if gs == nil || gs.Addr != s.Addr || !bytes.Equal(gs.Data, s.Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

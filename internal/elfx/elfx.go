// Package elfx reads and writes ELF64 executables.
//
// The standard library's debug/elf is read-only; a post-link optimizer must
// also *write* executables, so elfx implements both directions over a small
// mutable model (File / Section / Symbol / Rela). The output is a
// well-formed ELF64 little-endian x86-64 executable: readelf-compatible
// headers, program headers derived from the allocatable sections, a symbol
// table, and (optionally) relocation sections as produced by a linker's
// --emit-relocs.
package elfx

import (
	"fmt"
	"sort"
)

// Section types (subset of the ELF spec).
const (
	SHTNull     uint32 = 0
	SHTProgbits uint32 = 1
	SHTSymtab   uint32 = 2
	SHTStrtab   uint32 = 3
	SHTRela     uint32 = 4
	SHTNobits   uint32 = 8
)

// Section flags.
const (
	SHFWrite     uint64 = 0x1
	SHFAlloc     uint64 = 0x2
	SHFExecinstr uint64 = 0x4
)

// Symbol types and bindings.
const (
	STTNotype  byte = 0
	STTObject  byte = 1
	STTFunc    byte = 2
	STTSection byte = 3

	STBLocal  byte = 0
	STBGlobal byte = 1
)

// Relocation types. The first three match the x86-64 psABI numbering; JT32
// is our stand-in for the compiler-internal PIC jump-table relocation the
// paper notes is *not* preserved by linkers (§3.2) — the linker resolves
// and discards it, so gobolt must rediscover those tables by analysis.
const (
	RX8664None  uint32 = 0
	RX866464    uint32 = 1   // S + A      (64-bit absolute)
	RX8664PC32  uint32 = 2   // S + A - P  (32-bit PC-relative)
	RX8664PLT32 uint32 = 4   // L + A - P  (via PLT)
	RJT32       uint32 = 250 // S + A - JTBASE (PIC jump-table entry; never emitted to files)
)

// Section is a named chunk of the address space (or of metadata).
type Section struct {
	Name      string
	Type      uint32
	Flags     uint64
	Addr      uint64
	Data      []byte
	Link      uint32
	Info      uint32
	Addralign uint64
	Entsize   uint64
}

// Size returns the section's size in bytes.
func (s *Section) Size() uint64 { return uint64(len(s.Data)) }

// Contains reports whether vaddr falls inside the section.
func (s *Section) Contains(vaddr uint64) bool {
	return s.Flags&SHFAlloc != 0 && vaddr >= s.Addr && vaddr < s.Addr+s.Size()
}

// Symbol is an entry of the symbol table.
type Symbol struct {
	Name    string
	Value   uint64
	Size    uint64
	Type    byte
	Bind    byte
	Section string // owning section name; "" = SHN_UNDEF, "*ABS*" = SHN_ABS
}

// Rela is a relocation with explicit addend, attached to a target section.
type Rela struct {
	Off    uint64 // offset within the target section
	Type   uint32
	Sym    string // referenced symbol name
	Addend int64
}

// File is a mutable ELF64 executable image.
type File struct {
	Entry    uint64
	Sections []*Section
	Symbols  []Symbol
	// Relas maps a target section name to its relocations (".text" ->
	// entries that would live in ".rela.text"). Populated on write only
	// when EmitRelocs is set; populated on read when the sections exist.
	Relas      map[string][]Rela
	EmitRelocs bool
}

// New returns an empty executable image.
func New() *File {
	return &File{Relas: make(map[string][]Rela)}
}

// Section returns the named section, or nil.
func (f *File) Section(name string) *Section {
	for _, s := range f.Sections {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// AddSection appends a section and returns it.
func (f *File) AddSection(s *Section) *Section {
	f.Sections = append(f.Sections, s)
	return s
}

// RemoveSection deletes the named section if present.
func (f *File) RemoveSection(name string) {
	for i, s := range f.Sections {
		if s.Name == name {
			f.Sections = append(f.Sections[:i], f.Sections[i+1:]...)
			return
		}
	}
}

// SectionFor returns the allocatable section containing vaddr, or nil.
func (f *File) SectionFor(vaddr uint64) *Section {
	for _, s := range f.Sections {
		if s.Contains(vaddr) {
			return s
		}
	}
	return nil
}

// ReadAt copies out bytes at virtual address vaddr from whichever section
// holds them.
func (f *File) ReadAt(vaddr uint64, n int) ([]byte, error) {
	s := f.SectionFor(vaddr)
	if s == nil {
		return nil, fmt.Errorf("elfx: address %#x not mapped", vaddr)
	}
	off := vaddr - s.Addr
	if off+uint64(n) > s.Size() {
		return nil, fmt.Errorf("elfx: read of %d bytes at %#x crosses end of %s", n, vaddr, s.Name)
	}
	return s.Data[off : off+uint64(n)], nil
}

// FuncSymbols returns all STT_FUNC symbols sorted by value.
func (f *File) FuncSymbols() []Symbol {
	var out []Symbol
	for _, s := range f.Symbols {
		if s.Type == STTFunc {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value < out[j].Value
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// SymbolByName returns the first symbol with the given name.
func (f *File) SymbolByName(name string) (Symbol, bool) {
	for _, s := range f.Symbols {
		if s.Name == name {
			return s, true
		}
	}
	return Symbol{}, false
}

// SymbolAt returns the function symbol whose [Value, Value+Size) covers
// vaddr, preferring the tightest match.
func (f *File) SymbolAt(vaddr uint64) (Symbol, bool) {
	best := Symbol{}
	found := false
	for _, s := range f.Symbols {
		if s.Type != STTFunc {
			continue
		}
		if vaddr >= s.Value && vaddr < s.Value+s.Size {
			if !found || s.Size < best.Size {
				best = s
				found = true
			}
		}
	}
	return best, found
}

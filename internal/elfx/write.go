package elfx

import (
	"encoding/binary"
	"fmt"
	"sort"
)

const (
	ehdrSize  = 64
	phdrSize  = 56
	shdrSize  = 64
	symSize   = 24
	relaSize  = 24
	pageAlign = 0x1000
)

// stringTable builds an ELF string table incrementally.
type stringTable struct {
	data []byte
	off  map[string]uint32
}

func newStringTable() *stringTable {
	return &stringTable{data: []byte{0}, off: map[string]uint32{"": 0}}
}

func (t *stringTable) add(s string) uint32 {
	if o, ok := t.off[s]; ok {
		return o
	}
	o := uint32(len(t.data))
	t.data = append(t.data, s...)
	t.data = append(t.data, 0)
	t.off[s] = o
	return o
}

type segment struct {
	vaddr, size, off uint64
	flags            uint32
}

// Bytes serializes the image to a complete ELF64 executable.
//
// Layout: ehdr, phdrs, then each allocatable section placed at a file
// offset congruent to its vaddr modulo the page size (so PT_LOAD entries
// are loader-correct), then non-alloc sections, symtab/strtab, optional
// .rela.* sections, .shstrtab, and the section header table.
func (f *File) Bytes() ([]byte, error) {
	// Order allocatable sections by address.
	var alloc, other []*Section
	for _, s := range f.Sections {
		if s.Flags&SHFAlloc != 0 {
			alloc = append(alloc, s)
		} else {
			other = append(other, s)
		}
	}
	sort.Slice(alloc, func(i, j int) bool { return alloc[i].Addr < alloc[j].Addr })
	for i := 1; i < len(alloc); i++ {
		p, q := alloc[i-1], alloc[i]
		if p.Addr+p.Size() > q.Addr {
			return nil, fmt.Errorf("elfx: sections %s and %s overlap", p.Name, q.Name)
		}
	}

	shstr := newStringTable()
	symstr := newStringTable()

	// Symbol table: local symbols must precede globals.
	syms := make([]Symbol, len(f.Symbols))
	copy(syms, f.Symbols)
	sort.SliceStable(syms, func(i, j int) bool { return syms[i].Bind < syms[j].Bind })
	numLocal := 1 // null symbol
	for _, s := range syms {
		if s.Bind == STBLocal {
			numLocal++
		}
	}

	// Assemble the section list in file order. Index 0 is the null section.
	type outSect struct {
		sec   *Section
		hdr   [shdrSize]byte
		data  []byte
		align uint64
	}
	var order []*Section
	order = append(order, alloc...)
	order = append(order, other...)

	sectIndex := map[string]uint32{"": 0}
	for i, s := range order {
		sectIndex[s.Name] = uint32(i + 1)
	}

	// Build symtab data after section indices are known.
	symIndexOf := make(map[string]uint32)
	symData := make([]byte, symSize) // null symbol
	for i, s := range syms {
		var e [symSize]byte
		binary.LittleEndian.PutUint32(e[0:], symstr.add(s.Name))
		e[4] = s.Bind<<4 | s.Type&0xF
		e[5] = 0
		var shndx uint16
		switch s.Section {
		case "":
			shndx = 0
		case "*ABS*":
			shndx = 0xFFF1
		default:
			idx, ok := sectIndex[s.Section]
			if !ok {
				return nil, fmt.Errorf("elfx: symbol %s references unknown section %s", s.Name, s.Section)
			}
			shndx = uint16(idx)
		}
		binary.LittleEndian.PutUint16(e[6:], shndx)
		binary.LittleEndian.PutUint64(e[8:], s.Value)
		binary.LittleEndian.PutUint64(e[16:], s.Size)
		symData = append(symData, e[:]...)
		symIndexOf[s.Name] = uint32(i + 1)
	}

	// Synthesize metadata sections.
	meta := []*Section{
		{Name: ".symtab", Type: SHTSymtab, Data: symData, Entsize: symSize, Addralign: 8},
		{Name: ".strtab", Type: SHTStrtab, Data: nil, Addralign: 1}, // data filled below
	}
	var relaSects []*Section
	if f.EmitRelocs {
		var names []string
		for name := range f.Relas {
			if len(f.Relas[name]) > 0 {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			rl := f.Relas[name]
			sort.Slice(rl, func(i, j int) bool { return rl[i].Off < rl[j].Off })
			data := make([]byte, 0, len(rl)*relaSize)
			target := f.Section(name)
			if target == nil {
				return nil, fmt.Errorf("elfx: relocations for unknown section %s", name)
			}
			for _, r := range rl {
				var e [relaSize]byte
				binary.LittleEndian.PutUint64(e[0:], target.Addr+r.Off)
				si, ok := symIndexOf[r.Sym]
				if !ok {
					return nil, fmt.Errorf("elfx: relocation references unknown symbol %q", r.Sym)
				}
				binary.LittleEndian.PutUint64(e[8:], uint64(si)<<32|uint64(r.Type))
				binary.LittleEndian.PutUint64(e[16:], uint64(r.Addend))
				data = append(data, e[:]...)
			}
			relaSects = append(relaSects, &Section{
				Name: ".rela" + name, Type: SHTRela, Data: data,
				Entsize: relaSize, Addralign: 8,
				Link: 0, // fixed up below (symtab index)
				Info: sectIndex[name],
			})
		}
	}
	meta = append(meta, relaSects...)
	shstrtab := &Section{Name: ".shstrtab", Type: SHTStrtab, Addralign: 1}
	meta = append(meta, shstrtab)
	order = append(order, meta...)
	for i, s := range order {
		sectIndex[s.Name] = uint32(i + 1)
	}
	symtabIdx := sectIndex[".symtab"]
	for _, rs := range relaSects {
		rs.Link = symtabIdx
	}
	// .symtab links to .strtab.
	// (indices known now)

	// Program headers: merge adjacent alloc sections with equal flags.
	var segs []segment
	for _, s := range alloc {
		fl := uint32(4) // R
		if s.Flags&SHFWrite != 0 {
			fl |= 2
		}
		if s.Flags&SHFExecinstr != 0 {
			fl |= 1
		}
		if n := len(segs); n > 0 && segs[n-1].flags == fl &&
			s.Addr >= segs[n-1].vaddr && s.Addr-segs[n-1].vaddr < 1<<30 {
			end := s.Addr + s.Size()
			if end > segs[n-1].vaddr+segs[n-1].size {
				segs[n-1].size = end - segs[n-1].vaddr
			}
			continue
		}
		segs = append(segs, segment{vaddr: s.Addr, size: s.Size(), flags: fl})
	}

	// Lay out the file.
	pos := uint64(ehdrSize + phdrSize*len(segs))
	offsets := make(map[string]uint64)
	for _, s := range alloc {
		// Congruence: off % page == vaddr % page.
		want := s.Addr % pageAlign
		if pos%pageAlign != want {
			pos += (pageAlign + want - pos%pageAlign) % pageAlign
		}
		offsets[s.Name] = pos
		pos += s.Size()
	}
	// Fill segment file offsets from their first section.
	for i := range segs {
		for _, s := range alloc {
			if s.Addr == segs[i].vaddr {
				segs[i].off = offsets[s.Name]
				break
			}
		}
	}
	// Late-bound metadata payloads.
	for _, s := range order {
		if s.Name == ".strtab" {
			s.Data = symstr.data
		}
	}
	for _, s := range order {
		shstr.add(s.Name)
	}
	shstrtab.Data = shstr.data
	for _, s := range order {
		if s.Flags&SHFAlloc != 0 {
			continue
		}
		align := s.Addralign
		if align == 0 {
			align = 1
		}
		if pos%align != 0 {
			pos += align - pos%align
		}
		offsets[s.Name] = pos
		if s.Type != SHTNobits {
			pos += s.Size()
		}
	}
	if pos%8 != 0 {
		pos += 8 - pos%8
	}
	shoff := pos

	out := make([]byte, shoff+uint64(shdrSize*(len(order)+1)))

	// ELF header.
	copy(out, []byte{0x7F, 'E', 'L', 'F', 2, 1, 1, 0})
	binary.LittleEndian.PutUint16(out[16:], 2)  // ET_EXEC
	binary.LittleEndian.PutUint16(out[18:], 62) // EM_X86_64
	binary.LittleEndian.PutUint32(out[20:], 1)
	binary.LittleEndian.PutUint64(out[24:], f.Entry)
	binary.LittleEndian.PutUint64(out[32:], ehdrSize) // phoff
	binary.LittleEndian.PutUint64(out[40:], shoff)
	binary.LittleEndian.PutUint16(out[52:], ehdrSize)
	binary.LittleEndian.PutUint16(out[54:], phdrSize)
	binary.LittleEndian.PutUint16(out[56:], uint16(len(segs)))
	binary.LittleEndian.PutUint16(out[58:], shdrSize)
	binary.LittleEndian.PutUint16(out[60:], uint16(len(order)+1))
	binary.LittleEndian.PutUint16(out[62:], uint16(sectIndex[".shstrtab"]))

	// Program headers.
	for i, sg := range segs {
		p := out[ehdrSize+i*phdrSize:]
		binary.LittleEndian.PutUint32(p[0:], 1) // PT_LOAD
		binary.LittleEndian.PutUint32(p[4:], sg.flags)
		binary.LittleEndian.PutUint64(p[8:], sg.off)
		binary.LittleEndian.PutUint64(p[16:], sg.vaddr)
		binary.LittleEndian.PutUint64(p[24:], sg.vaddr)
		binary.LittleEndian.PutUint64(p[32:], sg.size)
		binary.LittleEndian.PutUint64(p[40:], sg.size)
		binary.LittleEndian.PutUint64(p[48:], pageAlign)
	}

	// Section payloads.
	for _, s := range order {
		if s.Type == SHTNobits {
			continue
		}
		copy(out[offsets[s.Name]:], s.Data)
	}

	// Section headers (index 0 stays zero).
	for i, s := range order {
		h := out[shoff+uint64((i+1)*shdrSize):]
		binary.LittleEndian.PutUint32(h[0:], shstr.add(s.Name))
		binary.LittleEndian.PutUint32(h[4:], s.Type)
		binary.LittleEndian.PutUint64(h[8:], s.Flags)
		binary.LittleEndian.PutUint64(h[16:], s.Addr)
		binary.LittleEndian.PutUint64(h[24:], offsets[s.Name])
		binary.LittleEndian.PutUint64(h[32:], s.Size())
		link := s.Link
		info := s.Info
		if s.Name == ".symtab" {
			link = sectIndex[".strtab"]
			info = uint32(numLocal)
		}
		binary.LittleEndian.PutUint32(h[40:], link)
		binary.LittleEndian.PutUint32(h[44:], info)
		align := s.Addralign
		if align == 0 {
			align = 1
		}
		binary.LittleEndian.PutUint64(h[48:], align)
		binary.LittleEndian.PutUint64(h[56:], s.Entsize)
	}
	return out, nil
}

package elfx

import (
	"encoding/binary"
	"fmt"
	"os"
	"strings"
)

// Read parses an ELF64 image previously produced by Bytes (or any simple
// statically linked ELF64 executable using the same subset of features).
func Read(data []byte) (*File, error) {
	if len(data) < ehdrSize {
		return nil, fmt.Errorf("elfx: file too short")
	}
	if string(data[:4]) != "\x7fELF" || data[4] != 2 || data[5] != 1 {
		return nil, fmt.Errorf("elfx: not a little-endian ELF64 file")
	}
	f := New()
	f.Entry = binary.LittleEndian.Uint64(data[24:])
	shoff := binary.LittleEndian.Uint64(data[40:])
	shentsize := uint64(binary.LittleEndian.Uint16(data[58:]))
	shnum := uint64(binary.LittleEndian.Uint16(data[60:]))
	shstrndx := uint64(binary.LittleEndian.Uint16(data[62:]))
	if shentsize != shdrSize {
		return nil, fmt.Errorf("elfx: unexpected shentsize %d", shentsize)
	}
	if shoff+shnum*shdrSize > uint64(len(data)) {
		return nil, fmt.Errorf("elfx: section header table out of range")
	}

	type rawShdr struct {
		nameOff, typ           uint32
		flags, addr, off, size uint64
		link, info             uint32
		addralign, entsize     uint64
	}
	hdrs := make([]rawShdr, shnum)
	for i := uint64(0); i < shnum; i++ {
		h := data[shoff+i*shdrSize:]
		hdrs[i] = rawShdr{
			nameOff:   binary.LittleEndian.Uint32(h[0:]),
			typ:       binary.LittleEndian.Uint32(h[4:]),
			flags:     binary.LittleEndian.Uint64(h[8:]),
			addr:      binary.LittleEndian.Uint64(h[16:]),
			off:       binary.LittleEndian.Uint64(h[24:]),
			size:      binary.LittleEndian.Uint64(h[32:]),
			link:      binary.LittleEndian.Uint32(h[40:]),
			info:      binary.LittleEndian.Uint32(h[44:]),
			addralign: binary.LittleEndian.Uint64(h[48:]),
			entsize:   binary.LittleEndian.Uint64(h[56:]),
		}
	}
	if shstrndx >= shnum {
		return nil, fmt.Errorf("elfx: bad shstrndx")
	}
	shstr := hdrs[shstrndx]
	strAt := func(tab rawShdr, off uint32) string {
		start := tab.off + uint64(off)
		if start >= uint64(len(data)) {
			return ""
		}
		end := start
		for end < uint64(len(data)) && data[end] != 0 {
			end++
		}
		return string(data[start:end])
	}

	names := make([]string, shnum)
	secByIdx := make([]*Section, shnum)
	for i := uint64(1); i < shnum; i++ {
		h := hdrs[i]
		names[i] = strAt(shstr, h.nameOff)
		var payload []byte
		if h.typ != SHTNobits {
			if h.off+h.size > uint64(len(data)) {
				return nil, fmt.Errorf("elfx: section %s out of range", names[i])
			}
			payload = append([]byte(nil), data[h.off:h.off+h.size]...)
		} else {
			payload = make([]byte, h.size)
		}
		s := &Section{
			Name: names[i], Type: h.typ, Flags: h.flags, Addr: h.addr,
			Data: payload, Link: h.link, Info: h.info,
			Addralign: h.addralign, Entsize: h.entsize,
		}
		secByIdx[i] = s
		switch h.typ {
		case SHTSymtab, SHTRela, SHTStrtab:
			// Metadata sections are re-synthesized on write; keep the
			// payload out of Sections but remember symtab/rela below.
		default:
			f.Sections = append(f.Sections, s)
		}
	}

	// Symbols.
	var symNames []string
	for i := uint64(1); i < shnum; i++ {
		if hdrs[i].typ != SHTSymtab {
			continue
		}
		strtab := hdrs[hdrs[i].link]
		n := hdrs[i].size / symSize
		symNames = make([]string, n)
		for j := uint64(1); j < n; j++ {
			e := data[hdrs[i].off+j*symSize:]
			nameOff := binary.LittleEndian.Uint32(e[0:])
			info := e[4]
			shndx := binary.LittleEndian.Uint16(e[6:])
			val := binary.LittleEndian.Uint64(e[8:])
			size := binary.LittleEndian.Uint64(e[16:])
			name := strAt(strtab, nameOff)
			symNames[j] = name
			var secName string
			switch {
			case shndx == 0:
				secName = ""
			case shndx == 0xFFF1:
				secName = "*ABS*"
			case uint64(shndx) < shnum:
				secName = names[shndx]
			}
			f.Symbols = append(f.Symbols, Symbol{
				Name: name, Value: val, Size: size,
				Type: info & 0xF, Bind: info >> 4, Section: secName,
			})
		}
	}

	// Relocations.
	for i := uint64(1); i < shnum; i++ {
		if hdrs[i].typ != SHTRela {
			continue
		}
		targetName := strings.TrimPrefix(names[i], ".rela")
		target := f.Section(targetName)
		if target == nil {
			continue
		}
		n := hdrs[i].size / relaSize
		for j := uint64(0); j < n; j++ {
			e := data[hdrs[i].off+j*relaSize:]
			off := binary.LittleEndian.Uint64(e[0:])
			info := binary.LittleEndian.Uint64(e[8:])
			addend := int64(binary.LittleEndian.Uint64(e[16:]))
			symIdx := info >> 32
			var symName string
			if symNames != nil && symIdx < uint64(len(symNames)) {
				symName = symNames[symIdx]
			}
			f.Relas[targetName] = append(f.Relas[targetName], Rela{
				Off: off - target.Addr, Type: uint32(info), Sym: symName, Addend: addend,
			})
		}
		f.EmitRelocs = true
	}
	return f, nil
}

// ReadFile reads and parses the ELF file at path.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Read(data)
}

// WriteFile serializes f and writes it to path with execute permission.
func (f *File) WriteFile(path string) error {
	data, err := f.Bytes()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o755)
}

package profile

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"testing/quick"
)

func TestWriteParseRoundTrip(t *testing.T) {
	b := NewBuilder(true, "cycles")
	b.AddBranch(Loc{"foo", 0x10}, Loc{"foo", 0x40}, true)
	b.AddBranch(Loc{"foo", 0x10}, Loc{"foo", 0x40}, false)
	b.AddBranchN(Loc{"bar", 0x8}, Loc{"baz", 0}, 100, 7)
	fd := b.Build()

	var buf bytes.Buffer
	if err := fd.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(context.Background(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.LBR || got.Event != "cycles" {
		t.Fatalf("header lost: %+v", got)
	}
	if len(got.Branches) != 2 {
		t.Fatalf("got %d branches", len(got.Branches))
	}
	// Sorted: bar before foo.
	if got.Branches[0].From.Sym != "bar" || got.Branches[0].Count != 100 || got.Branches[0].Mispreds != 7 {
		t.Errorf("bar record corrupted: %+v", got.Branches[0])
	}
	if got.Branches[1].Count != 2 || got.Branches[1].Mispreds != 1 {
		t.Errorf("foo record corrupted: %+v", got.Branches[1])
	}
}

func TestNonLBRRoundTrip(t *testing.T) {
	b := NewBuilder(false, "instructions")
	b.AddSampleN(Loc{"f", 4}, 10)
	b.AddSample(Loc{"g", 0})
	fd := b.Build()
	var buf bytes.Buffer
	if err := fd.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(context.Background(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.LBR || len(got.Samples) != 2 {
		t.Fatalf("bad parse: %+v", got)
	}
	if got.Samples[0].At.Sym != "f" || got.Samples[0].Count != 10 {
		t.Errorf("sample corrupted: %+v", got.Samples[0])
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, s := range []string{
		"",
		"not a profile\n",
		"boltprofile v3 lbr\n",
		"boltprofile v1 lbr\n1 f 10 1 g\n", // short line
		"boltprofile v1 lbr\nX f 10\n",
		"boltprofile v2 lbr\ns f 2\nb 0 1 -\n",          // truncated shape
		"boltprofile v2 lbr\nb 0 1 -\n",                 // block outside shape
		"boltprofile v2 lbr\ns f 1\nb 0 1 2,x\n",        // bad successor list
		"boltprofile v2 lbr\ns f 1\n1 f 10 1 f 0 0 1\n", // record interrupts shape
	} {
		if _, err := Parse(context.Background(), strings.NewReader(s)); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", s)
		}
	}
}

func TestSymbolEscaping(t *testing.T) {
	b := NewBuilder(true, "cycles")
	b.AddBranch(Loc{"fn with space", 1}, Loc{"other", 2}, false)
	var buf bytes.Buffer
	if err := b.Build().Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(context.Background(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Branches[0].From.Sym != "fn with space" {
		t.Errorf("escaping broken: %q", got.Branches[0].From.Sym)
	}
}

// TestSymbolEscapingHostile is the regression test for the escape
// round-trip bug: symbols containing a literal `\x20`, the escape
// character itself, whitespace/control bytes, or the `__empty__` sentinel
// used to corrupt on Write→Parse.
func TestSymbolEscapingHostile(t *testing.T) {
	hostile := []string{
		`lit\x20eral`, // literal backslash-x-2-0, NOT a space
		`back\slash`,
		`\x5c`,
		"__empty__",
		"_x5f_empty__",
		"tab\there",
		"nl\nthere",
		"a b c",
		`\`,
		`\\`,
		"mixed \\x20 and space",
		"nb\u00a0space", // Unicode whitespace: Fields splits on it too
		"ideo\u3000space",
		"utf8\u00b7sym",
	}
	for _, sym := range hostile {
		b := NewBuilder(true, "e")
		b.AddBranchN(Loc{sym, 4}, Loc{"plain", 0}, 7, 1)
		var buf bytes.Buffer
		if err := b.Build().Write(&buf); err != nil {
			t.Fatalf("%q: %v", sym, err)
		}
		got, err := Parse(context.Background(), &buf)
		if err != nil {
			t.Fatalf("%q: %v", sym, err)
		}
		if len(got.Branches) != 1 || got.Branches[0].From.Sym != sym {
			t.Errorf("round trip corrupted %q -> %q", sym, got.Branches[0].From.Sym)
		}
	}
}

func TestShapesRoundTrip(t *testing.T) {
	fd := &Fdata{LBR: true, Event: "cycles",
		Branches: []Branch{{From: Loc{"f", 0x10}, To: Loc{"f", 0x20}, Count: 3}},
		Shapes: map[string]FuncShape{
			"f": {Blocks: []BlockShape{
				{Off: 0, Hash: 0xDEADBEEF, Succs: []int{1, 2}},
				{Off: 0x10, Hash: 0x1234, Succs: []int{2}},
				{Off: 0x20, Hash: 0x5678},
			}},
			"g with space": {Blocks: []BlockShape{{Off: 0, Hash: 1}}},
		},
	}
	var buf bytes.Buffer
	if err := fd.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "boltprofile v2 ") {
		t.Fatalf("shapes did not trigger v2 header: %q", buf.String()[:30])
	}
	got, err := Parse(context.Background(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Shapes) != 2 {
		t.Fatalf("got %d shapes", len(got.Shapes))
	}
	f := got.Shapes["f"]
	if len(f.Blocks) != 3 || f.Blocks[0].Hash != 0xDEADBEEF ||
		f.Blocks[1].Off != 0x10 || len(f.Blocks[0].Succs) != 2 || f.Blocks[0].Succs[1] != 2 {
		t.Fatalf("shape corrupted: %+v", f)
	}
	if f.Blocks[2].Succs != nil {
		t.Fatalf("empty successor list corrupted: %+v", f.Blocks[2])
	}
	if _, ok := got.Shapes["g with space"]; !ok {
		t.Fatal("escaped shape name lost")
	}
	if len(got.Branches) != 1 || got.Branches[0].Count != 3 {
		t.Fatalf("branch records lost alongside shapes: %+v", got.Branches)
	}
}

func TestMerge(t *testing.T) {
	mk := func(count uint64) *Fdata {
		b := NewBuilder(true, "cycles")
		b.AddBranchN(Loc{"f", 1}, Loc{"f", 9}, count, count/2)
		b.AddBranchN(Loc{"g", 2}, Loc{"h", 0}, 1, 0)
		return b.Build()
	}
	a, b := mk(10), mk(32)
	a.Shapes = map[string]FuncShape{
		"f": {Blocks: []BlockShape{{Off: 0, Hash: 42, Succs: []int{1}}}},
		"g": {Blocks: []BlockShape{{Off: 0, Hash: 7}}},
	}
	b.Shapes = map[string]FuncShape{
		"f": {Blocks: []BlockShape{{Off: 0, Hash: 42, Succs: []int{1}}}},
	}
	got, err := Merge([]*Fdata{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalBranchCount() != 44 {
		t.Fatalf("merged total = %d, want 44", got.TotalBranchCount())
	}
	if len(got.Branches) != 2 {
		t.Fatalf("merged records = %d, want 2 (aggregated)", len(got.Branches))
	}
	if got.Branches[0].From.Sym != "f" || got.Branches[0].Count != 42 || got.Branches[0].Mispreds != 21 {
		t.Fatalf("aggregation wrong: %+v", got.Branches[0])
	}
	if len(got.Shapes) != 2 || got.Shapes["f"].Blocks[0].Hash != 42 {
		t.Fatalf("shape merge wrong: %+v", got.Shapes)
	}

	if _, err := Merge(nil); err == nil {
		t.Fatal("empty merge unexpectedly succeeded")
	}
	nolbr := NewBuilder(false, "cycles").Build()
	if _, err := Merge([]*Fdata{a, nolbr}); err == nil {
		t.Fatal("mixed-mode merge unexpectedly succeeded")
	}
	instr := NewBuilder(true, "instructions").Build()
	if _, err := Merge([]*Fdata{a, instr}); err == nil {
		t.Fatal("mixed-event merge unexpectedly succeeded")
	}
	// Shards recorded on different builds (conflicting shapes) must be
	// rejected, not silently merged under one build's shapes.
	c := mk(1)
	c.Shapes = map[string]FuncShape{"f": {Blocks: []BlockShape{{Off: 0, Hash: 99, Succs: []int{1}}}}}
	if _, err := Merge([]*Fdata{a, c}); err == nil {
		t.Fatal("conflicting-shape merge unexpectedly succeeded")
	}
}

func TestBuildCallGraphLBR(t *testing.T) {
	fd := &Fdata{LBR: true, Branches: []Branch{
		{From: Loc{"a", 0x10}, To: Loc{"b", 0}, Count: 50},   // call
		{From: Loc{"a", 0x20}, To: Loc{"a", 0x5}, Count: 99}, // intra
		{From: Loc{"b", 0x8}, To: Loc{"a", 0x14}, Count: 50}, // return
		{From: Loc{"c", 0x4}, To: Loc{"b", 0}, Count: 10},    // call
	}}
	g := BuildCallGraph(fd, nil)
	if g.Edges[[2]string{"a", "b"}] != 50 || g.Edges[[2]string{"c", "b"}] != 10 {
		t.Fatalf("edges wrong: %v", g.Edges)
	}
	if g.Nodes["b"] != 60 {
		t.Fatalf("callee weight wrong: %v", g.Nodes)
	}
	if _, ok := g.Edges[[2]string{"b", "a"}]; ok {
		t.Fatal("return treated as call")
	}
}

func TestBuildCallGraphNonLBR(t *testing.T) {
	fd := &Fdata{LBR: false, Samples: []Sample{
		{At: Loc{"a", 0x10}, Count: 30},
		{At: Loc{"a", 0x50}, Count: 5},
	}}
	g := BuildCallGraph(fd, func(l Loc) (string, bool) {
		if l.Off == 0x10 {
			return "b", true // block at 0x10 contains a direct call to b
		}
		return "", false
	})
	if g.Edges[[2]string{"a", "b"}] != 30 {
		t.Fatalf("non-LBR call edge wrong: %v", g.Edges)
	}
	if g.Nodes["a"] != 35 {
		t.Fatalf("node weight wrong: %v", g.Nodes)
	}
}

func TestRoundTripProperty(t *testing.T) {
	check := func(sym1, sym2 string, off1, off2 uint16, count, mispred uint8) bool {
		if sym1 == "" || sym2 == "" {
			return true
		}
		b := NewBuilder(true, "e")
		b.AddBranchN(Loc{sym1, uint64(off1)}, Loc{sym2, uint64(off2)},
			uint64(count)+1, uint64(mispred))
		var buf bytes.Buffer
		if err := b.Build().Write(&buf); err != nil {
			return false
		}
		got, err := Parse(context.Background(), &buf)
		if err != nil || len(got.Branches) != 1 {
			return false
		}
		r := got.Branches[0]
		return r.From.Off == uint64(off1) && r.To.Off == uint64(off2) &&
			r.Count == uint64(count)+1 && r.Mispreds == uint64(mispred)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

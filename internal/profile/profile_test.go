package profile

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestWriteParseRoundTrip(t *testing.T) {
	b := NewBuilder(true, "cycles")
	b.AddBranch(Loc{"foo", 0x10}, Loc{"foo", 0x40}, true)
	b.AddBranch(Loc{"foo", 0x10}, Loc{"foo", 0x40}, false)
	b.AddBranchN(Loc{"bar", 0x8}, Loc{"baz", 0}, 100, 7)
	fd := b.Build()

	var buf bytes.Buffer
	if err := fd.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.LBR || got.Event != "cycles" {
		t.Fatalf("header lost: %+v", got)
	}
	if len(got.Branches) != 2 {
		t.Fatalf("got %d branches", len(got.Branches))
	}
	// Sorted: bar before foo.
	if got.Branches[0].From.Sym != "bar" || got.Branches[0].Count != 100 || got.Branches[0].Mispreds != 7 {
		t.Errorf("bar record corrupted: %+v", got.Branches[0])
	}
	if got.Branches[1].Count != 2 || got.Branches[1].Mispreds != 1 {
		t.Errorf("foo record corrupted: %+v", got.Branches[1])
	}
}

func TestNonLBRRoundTrip(t *testing.T) {
	b := NewBuilder(false, "instructions")
	b.AddSampleN(Loc{"f", 4}, 10)
	b.AddSample(Loc{"g", 0})
	fd := b.Build()
	var buf bytes.Buffer
	if err := fd.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.LBR || len(got.Samples) != 2 {
		t.Fatalf("bad parse: %+v", got)
	}
	if got.Samples[0].At.Sym != "f" || got.Samples[0].Count != 10 {
		t.Errorf("sample corrupted: %+v", got.Samples[0])
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, s := range []string{
		"",
		"not a profile\n",
		"boltprofile v2 lbr\n",
		"boltprofile v1 lbr\n1 f 10 1 g\n", // short line
		"boltprofile v1 lbr\nX f 10\n",
	} {
		if _, err := Parse(strings.NewReader(s)); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", s)
		}
	}
}

func TestSymbolEscaping(t *testing.T) {
	b := NewBuilder(true, "cycles")
	b.AddBranch(Loc{"fn with space", 1}, Loc{"other", 2}, false)
	var buf bytes.Buffer
	if err := b.Build().Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Branches[0].From.Sym != "fn with space" {
		t.Errorf("escaping broken: %q", got.Branches[0].From.Sym)
	}
}

func TestBuildCallGraphLBR(t *testing.T) {
	fd := &Fdata{LBR: true, Branches: []Branch{
		{From: Loc{"a", 0x10}, To: Loc{"b", 0}, Count: 50},   // call
		{From: Loc{"a", 0x20}, To: Loc{"a", 0x5}, Count: 99}, // intra
		{From: Loc{"b", 0x8}, To: Loc{"a", 0x14}, Count: 50}, // return
		{From: Loc{"c", 0x4}, To: Loc{"b", 0}, Count: 10},    // call
	}}
	g := BuildCallGraph(fd, nil)
	if g.Edges[[2]string{"a", "b"}] != 50 || g.Edges[[2]string{"c", "b"}] != 10 {
		t.Fatalf("edges wrong: %v", g.Edges)
	}
	if g.Nodes["b"] != 60 {
		t.Fatalf("callee weight wrong: %v", g.Nodes)
	}
	if _, ok := g.Edges[[2]string{"b", "a"}]; ok {
		t.Fatal("return treated as call")
	}
}

func TestBuildCallGraphNonLBR(t *testing.T) {
	fd := &Fdata{LBR: false, Samples: []Sample{
		{At: Loc{"a", 0x10}, Count: 30},
		{At: Loc{"a", 0x50}, Count: 5},
	}}
	g := BuildCallGraph(fd, func(l Loc) (string, bool) {
		if l.Off == 0x10 {
			return "b", true // block at 0x10 contains a direct call to b
		}
		return "", false
	})
	if g.Edges[[2]string{"a", "b"}] != 30 {
		t.Fatalf("non-LBR call edge wrong: %v", g.Edges)
	}
	if g.Nodes["a"] != 35 {
		t.Fatalf("node weight wrong: %v", g.Nodes)
	}
}

func TestRoundTripProperty(t *testing.T) {
	check := func(sym1, sym2 string, off1, off2 uint16, count, mispred uint8) bool {
		if sym1 == "" || sym2 == "" {
			return true
		}
		b := NewBuilder(true, "e")
		b.AddBranchN(Loc{sym1, uint64(off1)}, Loc{sym2, uint64(off2)},
			uint64(count)+1, uint64(mispred))
		var buf bytes.Buffer
		if err := b.Build().Write(&buf); err != nil {
			return false
		}
		got, err := Parse(&buf)
		if err != nil || len(got.Branches) != 1 {
			return false
		}
		r := got.Branches[0]
		return r.From.Off == uint64(off1) && r.To.Off == uint64(off2) &&
			r.Count == uint64(count)+1 && r.Mispreds == uint64(mispred)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

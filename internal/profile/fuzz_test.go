package profile

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
)

// FuzzProfileParse feeds arbitrary bytes to the parser (must never panic)
// and, whenever an input parses, checks the Write→Parse round trip is a
// fixpoint: re-serializing the parsed profile and parsing it again must
// reproduce the same records, shapes, and header.
func FuzzProfileParse(f *testing.F) {
	f.Add("boltprofile v1 lbr event=cycles\n1 f 10 1 g 0 2 7\n2 f 4 1\n")
	f.Add("boltprofile v2 lbr event=e\ns f 2\nb 0 dead 1\nb 10 beef -\n1 f 0 1 f 10 0 3\n")
	f.Add("boltprofile v1 nolbr event=instructions\n2 __empty__ 0 1\n")
	f.Add(`boltprofile v1 lbr` + "\n" + `1 a\x20b 1 1 \x5c 2 0 1` + "\n")
	f.Add("boltprofile v2 nolbr\ns g 0\n")
	f.Fuzz(func(t *testing.T, in string) {
		fd, err := Parse(context.Background(), strings.NewReader(in))
		if err != nil {
			return // rejected inputs just must not panic
		}
		var buf bytes.Buffer
		if err := fd.Write(&buf); err != nil {
			t.Fatalf("Write failed on parsed profile: %v", err)
		}
		got, err := Parse(context.Background(), bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reparse failed: %v\nserialized:\n%s", err, buf.String())
		}
		if got.LBR != fd.LBR || got.Event != fd.Event {
			t.Fatalf("header drift: %v/%q vs %v/%q", got.LBR, got.Event, fd.LBR, fd.Event)
		}
		if !reflect.DeepEqual(got.Branches, fd.Branches) {
			t.Fatalf("branches drift:\n got %+v\nwant %+v", got.Branches, fd.Branches)
		}
		if !reflect.DeepEqual(got.Samples, fd.Samples) {
			t.Fatalf("samples drift:\n got %+v\nwant %+v", got.Samples, fd.Samples)
		}
		if !reflect.DeepEqual(got.Shapes, fd.Shapes) {
			t.Fatalf("shapes drift:\n got %+v\nwant %+v", got.Shapes, fd.Shapes)
		}
	})
}

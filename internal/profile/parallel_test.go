package profile

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

var parseCorpus = []string{
	// Mirrors the FuzzProfileParse seed corpus.
	"boltprofile v1 lbr event=cycles\n1 f 10 1 g 0 2 7\n2 f 4 1\n",
	"boltprofile v2 lbr event=e\ns f 2\nb 0 dead 1\nb 10 beef -\n1 f 0 1 f 10 0 3\n",
	"boltprofile v1 nolbr event=instructions\n2 __empty__ 0 1\n",
	`boltprofile v1 lbr` + "\n" + `1 a\x20b 1 1 \x5c 2 0 1` + "\n",
	"boltprofile v2 nolbr\ns g 0\n",
	// Blank lines inside a shape group (legal) and between records.
	"boltprofile v2 lbr event=c\ns f 3\nb 0 1 1,2\n\nb 8 2 -\n\nb 10 3 -\n\n1 f 0 1 f 8 0 5\n",
	// No trailing newline on the final record.
	"boltprofile v1 lbr event=c\n1 a 0 1 b 0 0 1\n2 a 4 9",
	// Duplicate shape for one function: last wins in serial order.
	"boltprofile v2 nolbr\ns f 1\nb 0 11 -\ns f 1\nb 0 22 -\n2 f 0 3\n",
	// Header only.
	"boltprofile v1 lbr event=cycles\n",
	"boltprofile v1 lbr event=cycles",
}

// genFdata builds a deterministic pseudo-random profile text with shapes,
// hostile symbol names, blank lines, and interleaved records.
func genFdata(seed int64, funcs, records int) string {
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, funcs)
	for i := range names {
		switch i % 5 {
		case 0:
			names[i] = fmt.Sprintf("func_%d", i)
		case 1:
			names[i] = fmt.Sprintf("ns::tmpl<%d, true>::op()", i)
		case 2:
			names[i] = fmt.Sprintf("with space %d", i)
		case 3:
			names[i] = "" // __empty__ sentinel path
		default:
			names[i] = fmt.Sprintf("bs\\x%d", i)
		}
	}
	var sb strings.Builder
	sb.WriteString("boltprofile v2 lbr event=cycles\n")
	for i, name := range names {
		if i%3 != 0 {
			continue
		}
		nb := 1 + rng.Intn(6)
		fmt.Fprintf(&sb, "s %s %d\n", string(appendEscaped(nil, name)), nb)
		for b := 0; b < nb; b++ {
			succs := "-"
			if b+1 < nb {
				succs = fmt.Sprintf("%d", b+1)
			}
			fmt.Fprintf(&sb, "b %x %x %s\n", b*16, rng.Uint64(), succs)
			if rng.Intn(4) == 0 {
				sb.WriteString("\n") // blank line inside the shape group
			}
		}
	}
	for i := 0; i < records; i++ {
		from := names[rng.Intn(len(names))]
		to := names[rng.Intn(len(names))]
		if rng.Intn(4) == 0 {
			fmt.Fprintf(&sb, "2 %s %x %d\n", string(appendEscaped(nil, from)),
				rng.Intn(256), 1+rng.Intn(100))
			continue
		}
		fmt.Fprintf(&sb, "1 %s %x 1 %s %x %d %d\n",
			string(appendEscaped(nil, from)), rng.Intn(256),
			string(appendEscaped(nil, to)), rng.Intn(256),
			rng.Intn(10), 1+rng.Intn(1000))
	}
	return sb.String()
}

// TestParallelParseMatchesSerial checks that chunked parallel parsing is
// observationally identical to serial parsing for every chunk count:
// byte-identical Write output, equal TotalBranchCount, and deepequal
// records/shapes. Run under -race this also exercises the worker pool.
func TestParallelParseMatchesSerial(t *testing.T) {
	inputs := append([]string{}, parseCorpus...)
	for seed := int64(1); seed <= 4; seed++ {
		inputs = append(inputs, genFdata(seed, 20, 400))
	}
	for i, in := range inputs {
		serial, err := ParseData(context.Background(), []byte(in), 1)
		if err != nil {
			t.Fatalf("input %d: serial parse failed: %v", i, err)
		}
		var want bytes.Buffer
		if err := serial.Write(&want); err != nil {
			t.Fatalf("input %d: Write: %v", i, err)
		}
		for _, jobs := range []int{2, 3, 4, 8, 16} {
			got, err := ParseData(context.Background(), []byte(in), jobs)
			if err != nil {
				t.Fatalf("input %d jobs %d: parse failed: %v", i, jobs, err)
			}
			if got.TotalBranchCount() != serial.TotalBranchCount() {
				t.Fatalf("input %d jobs %d: TotalBranchCount %d, serial %d",
					i, jobs, got.TotalBranchCount(), serial.TotalBranchCount())
			}
			if !reflect.DeepEqual(got.Branches, serial.Branches) ||
				!reflect.DeepEqual(got.Samples, serial.Samples) ||
				!reflect.DeepEqual(got.Shapes, serial.Shapes) {
				t.Fatalf("input %d jobs %d: records drift from serial parse", i, jobs)
			}
			var buf bytes.Buffer
			if err := got.Write(&buf); err != nil {
				t.Fatalf("input %d jobs %d: Write: %v", i, jobs, err)
			}
			if !bytes.Equal(buf.Bytes(), want.Bytes()) {
				t.Fatalf("input %d jobs %d: Write output differs from serial parse", i, jobs)
			}
		}
	}
}

// TestParallelParseErrorLineNumbers checks that diagnostics carry the
// same absolute line number for every chunk count, including errors that
// land mid-chunk and shape groups left open at a chunk boundary.
func TestParallelParseErrorLineNumbers(t *testing.T) {
	pad := func(n int) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			fmt.Fprintf(&sb, "1 f%d %x 1 g%d 0 0 %d\n", i, i%64, i, i+1)
		}
		return sb.String()
	}
	cases := []struct {
		name string
		in   string
		want string // substring of the expected error
	}{
		{
			"bad-record-mid-file",
			"boltprofile v1 lbr event=c\n" + pad(100) + "X bogus\n" + pad(100),
			"line 102: unknown record \"X\"",
		},
		{
			"bad-count-mid-file",
			"boltprofile v1 lbr event=c\n" + pad(50) + "1 a 0 1 b 0 0 zz\n" + pad(150),
			"line 52",
		},
		{
			"underfilled-shape",
			"boltprofile v2 lbr event=c\n" + pad(80) + "s f 5\nb 0 1 -\n" + pad(120),
			"line 84: shape has 1 blocks, declared 5",
		},
		{
			"truncated-shape-at-eof",
			"boltprofile v2 lbr event=c\n" + pad(200) + "s f 3\nb 0 1 -\n",
			`truncated shape for "f" (1 of 3 blocks)`,
		},
	}
	for _, tc := range cases {
		var serialMsg string
		for _, jobs := range []int{1, 2, 3, 4, 8} {
			_, err := ParseData(context.Background(), []byte(tc.in), jobs)
			if err == nil {
				t.Fatalf("%s jobs %d: parse unexpectedly succeeded", tc.name, jobs)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("%s jobs %d: error %q does not contain %q", tc.name, jobs, err, tc.want)
			}
			if jobs == 1 {
				serialMsg = err.Error()
			} else if err.Error() != serialMsg {
				t.Fatalf("%s jobs %d: error %q differs from serial %q", tc.name, jobs, err, serialMsg)
			}
		}
	}
}

// TestParseReaderMatchesParseData checks the io.Reader entry point
// delegates to the chunked parser with identical results.
func TestParseReaderMatchesParseData(t *testing.T) {
	in := genFdata(7, 15, 300)
	a, err := Parse(context.Background(), strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseData(context.Background(), []byte(in), 4)
	if err != nil {
		t.Fatal(err)
	}
	var wa, wb bytes.Buffer
	if err := a.Write(&wa); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(&wb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wa.Bytes(), wb.Bytes()) {
		t.Fatal("Parse(reader) output differs from ParseData")
	}
}

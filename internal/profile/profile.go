// Package profile defines the sample-based profile data model shared by
// the sampler (internal/perf), the optimizer (internal/core), and the
// link-time function-ordering baseline.
//
// The on-disk format mirrors BOLT's fdata files: one aggregated branch
// record per line, symbolized as (function, offset) pairs, plus a non-LBR
// variant holding plain PC sample counts (paper §5).
package profile

//boltvet:hot-path fdata parse/write, Sscanf- and Sprintf-free since PR 7

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"

	"gobolt/internal/par"
)

// Loc is a symbolized code location.
type Loc struct {
	Sym string
	Off uint64
}

func (l Loc) String() string {
	// Manual append formatting: String sits on the profile ingest and
	// diagnostics hot paths, where fmt.Sprintf dominated the allocation
	// profile.
	b := make([]byte, 0, len(l.Sym)+19)
	b = append(b, l.Sym...)
	b = append(b, '+', '0', 'x')
	b = strconv.AppendUint(b, l.Off, 16)
	return string(b)
}

// Branch is one aggregated taken-branch record (LBR mode).
type Branch struct {
	From     Loc
	To       Loc
	Mispreds uint64
	Count    uint64
}

// Sample is one aggregated PC sample (non-LBR mode).
type Sample struct {
	At    Loc
	Count uint64
}

// BlockShape describes one basic block of the profiled binary's CFG: its
// offset within the function, a structural hash of its opcode sequence,
// and the indices of its successor blocks. Shapes ride in the profile
// header (format v2) so a consumer looking at a *different* version of
// the binary can re-anchor stale (function, offset) records by matching
// blocks structurally instead of dropping them (arXiv:2401.17168).
type BlockShape struct {
	Off   uint64 // block start offset within the function
	Hash  uint64 // opcode-sequence hash (see internal/stale)
	Succs []int  // successor block indices, CFG edge order
}

// FuncShape is the block-level shape of one profiled function.
type FuncShape struct {
	Blocks []BlockShape // original layout (address) order
}

// Fdata is a complete profile.
type Fdata struct {
	LBR      bool
	Event    string
	Branches []Branch
	Samples  []Sample

	// Shapes carries the CFG shapes of the binary the profile was
	// collected on, keyed by function name. Empty for v1 profiles.
	Shapes map[string]FuncShape
}

// Builder aggregates raw events into an Fdata.
type Builder struct {
	lbr      bool
	event    string
	branches map[[2]Loc]*Branch
	samples  map[Loc]uint64
}

// NewBuilder returns an aggregator for the given mode.
func NewBuilder(lbr bool, event string) *Builder {
	return &Builder{
		lbr:      lbr,
		event:    event,
		branches: map[[2]Loc]*Branch{},
		samples:  map[Loc]uint64{},
	}
}

// AddBranch accumulates one taken-branch observation.
func (b *Builder) AddBranch(from, to Loc, mispred bool) {
	var m uint64
	if mispred {
		m = 1
	}
	b.AddBranchN(from, to, 1, m)
}

// AddBranchN accumulates an already-aggregated branch record.
func (b *Builder) AddBranchN(from, to Loc, count, mispreds uint64) {
	key := [2]Loc{from, to}
	e := b.branches[key]
	if e == nil {
		e = &Branch{From: from, To: to}
		b.branches[key] = e
	}
	e.Count += count
	e.Mispreds += mispreds
}

// AddSample accumulates one PC sample.
func (b *Builder) AddSample(at Loc) { b.samples[at]++ }

// AddSampleN accumulates an aggregated PC sample count.
func (b *Builder) AddSampleN(at Loc, count uint64) { b.samples[at] += count }

// Build freezes the aggregation into a deterministic Fdata.
func (b *Builder) Build() *Fdata {
	f := &Fdata{LBR: b.lbr, Event: b.event}
	for _, e := range b.branches {
		f.Branches = append(f.Branches, *e)
	}
	sort.Slice(f.Branches, func(i, j int) bool {
		x, y := f.Branches[i], f.Branches[j]
		if x.From != y.From {
			return locLess(x.From, y.From)
		}
		return locLess(x.To, y.To)
	})
	for at, c := range b.samples {
		f.Samples = append(f.Samples, Sample{At: at, Count: c})
	}
	sort.Slice(f.Samples, func(i, j int) bool { return locLess(f.Samples[i].At, f.Samples[j].At) })
	return f
}

func locLess(a, b Loc) bool {
	if a.Sym != b.Sym {
		return a.Sym < b.Sym
	}
	return a.Off < b.Off
}

// TotalBranchCount sums branch counts.
func (f *Fdata) TotalBranchCount() uint64 {
	var n uint64
	for _, b := range f.Branches {
		n += b.Count
	}
	return n
}

// Write serializes the profile in fdata-like text form. Profiles without
// shapes use the v1 header; profiles carrying shapes use v2, which v1
// readers reject cleanly (the version field is checked before records).
//
// Record lines are built with manual append formatting into one reused
// buffer — Write runs inside merge/round-trip loops where per-line
// fmt.Fprintf was a measurable share of ingest wall time.
func (f *Fdata) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	mode := "lbr"
	if !f.LBR {
		mode = "nolbr"
	}
	version := "v1"
	if len(f.Shapes) > 0 {
		version = "v2"
	}
	buf := make([]byte, 0, 256)
	buf = append(buf, "boltprofile "...)
	buf = append(buf, version...)
	buf = append(buf, ' ')
	buf = append(buf, mode...)
	buf = append(buf, " event="...)
	buf = append(buf, f.Event...)
	buf = append(buf, '\n')
	bw.Write(buf)
	if len(f.Shapes) > 0 {
		names := make([]string, 0, len(f.Shapes))
		for name := range f.Shapes {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			sh := f.Shapes[name]
			// Format: s <func> <nblocks> then one `b <off> <hash> <succs>`
			// line per block (succs comma separated, "-" when none).
			buf = append(buf[:0], 's', ' ')
			buf = appendEscaped(buf, name)
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, int64(len(sh.Blocks)), 10)
			buf = append(buf, '\n')
			bw.Write(buf)
			for _, b := range sh.Blocks {
				buf = append(buf[:0], 'b', ' ')
				buf = strconv.AppendUint(buf, b.Off, 16)
				buf = append(buf, ' ')
				buf = strconv.AppendUint(buf, b.Hash, 16)
				buf = append(buf, ' ')
				buf = appendSuccs(buf, b.Succs)
				buf = append(buf, '\n')
				bw.Write(buf)
			}
		}
	}
	for _, b := range f.Branches {
		// Format: 1 <from-sym> <from-off> 1 <to-sym> <to-off> <mispreds> <count>
		buf = append(buf[:0], '1', ' ')
		buf = appendEscaped(buf, b.From.Sym)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, b.From.Off, 16)
		buf = append(buf, ' ', '1', ' ')
		buf = appendEscaped(buf, b.To.Sym)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, b.To.Off, 16)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, b.Mispreds, 10)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, b.Count, 10)
		buf = append(buf, '\n')
		bw.Write(buf)
	}
	for _, s := range f.Samples {
		buf = append(buf[:0], '2', ' ')
		buf = appendEscaped(buf, s.At.Sym)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, s.At.Off, 16)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, s.Count, 10)
		buf = append(buf, '\n')
		bw.Write(buf)
	}
	return bw.Flush()
}

// Parse reads a profile written by Write. The input is slurped and
// handed to ParseData, which parses large profiles in parallel chunks;
// cancelling cx stops the chunk pool promptly (nil cx = background).
func Parse(cx context.Context, r io.Reader) (*Fdata, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return ParseData(cx, data, 0)
}

// parallelParseMin is the body size below which auto-sized parsing stays
// serial: chunk bookkeeping costs more than it saves on tiny inputs.
const parallelParseMin = 1 << 16

// ParseData parses an fdata profile from memory, splitting the body into
// line-aligned chunks parsed concurrently by up to jobs workers (jobs <=
// 0 selects GOMAXPROCS, dropping to one worker for small inputs). The
// result is byte-identical on Write to a serial parse for any chunk
// count: chunk results are concatenated in input order, and chunk
// boundaries never split a multi-line `s`/`b` shape group. Errors carry
// absolute line numbers regardless of chunking, and the reported error is
// always the one serial parsing would hit first (chunks cover disjoint
// line ranges in order, and the pool returns the lowest-chunk error).
// Cancelling cx stops the pool at the next chunk claim; a nil cx
// parses without a cancellation point, matching the old signature.
func ParseData(cx context.Context, data []byte, jobs int) (*Fdata, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("profile: empty input")
	}
	headerLine := data
	var body []byte
	if nl := bytes.IndexByte(data, '\n'); nl >= 0 {
		headerLine, body = data[:nl], data[nl+1:]
	}
	headerLine = bytes.TrimSuffix(headerLine, []byte{'\r'})
	header := strings.Fields(string(headerLine))
	if len(header) < 3 || header[0] != "boltprofile" ||
		(header[1] != "v1" && header[1] != "v2") {
		return nil, fmt.Errorf("profile: bad header %q", string(headerLine))
	}
	f := &Fdata{LBR: header[2] == "lbr"}
	for _, h := range header[3:] {
		if v, ok := strings.CutPrefix(h, "event="); ok {
			f.Event = v
		}
	}
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
		if len(body) < parallelParseMin {
			jobs = 1
		}
	}
	chunks := splitChunks(body, jobs)
	if len(chunks) == 0 {
		return f, nil
	}
	// Absolute starting line number of each chunk: line 1 is the header,
	// the body starts on line 2. Chunk i+1's start line doubles as the
	// line a shape left open at the end of chunk i is reported on.
	starts := make([]int, len(chunks)+1)
	starts[0] = 2
	for i, c := range chunks {
		n := bytes.Count(c, []byte{'\n'})
		if len(c) > 0 && c[len(c)-1] != '\n' {
			n++ // final line without trailing newline
		}
		starts[i+1] = starts[i] + n
	}
	results := make([]chunkData, len(chunks))
	_, err := par.For(cx, len(chunks), jobs, func(_, i int) error {
		return parseChunk(chunks[i], starts[i], starts[i+1], i == len(chunks)-1, &results[i])
	})
	if err != nil {
		return nil, err
	}
	var nb, ns int
	for i := range results {
		nb += len(results[i].branches)
		ns += len(results[i].samples)
	}
	// Leave record slices nil when empty: parse results are compared
	// with reflect.DeepEqual in round-trip tests and a serial parse of
	// an empty body yields nil, not a zero-length allocation.
	if nb > 0 {
		f.Branches = make([]Branch, 0, nb)
	}
	if ns > 0 {
		f.Samples = make([]Sample, 0, ns)
	}
	for i := range results {
		f.Branches = append(f.Branches, results[i].branches...)
		f.Samples = append(f.Samples, results[i].samples...)
		for _, sh := range results[i].shapes {
			if f.Shapes == nil {
				f.Shapes = map[string]FuncShape{}
			}
			f.Shapes[sh.name] = sh.sh // last wins, as in serial order
		}
	}
	return f, nil
}

// splitChunks cuts body into at most n line-aligned pieces of roughly
// equal byte size. A cut never lands inside a shape group: after
// advancing to the next line boundary the cut keeps advancing past
// continuation lines (blank lines — legal inside shape groups — and `b`
// block records), so every chunk starts at a line that serial parsing
// treats as a fresh top-level record.
func splitChunks(body []byte, n int) [][]byte {
	if len(body) == 0 {
		return nil
	}
	if n <= 1 || len(body) < 2*n {
		return [][]byte{body}
	}
	chunks := make([][]byte, 0, n)
	target := len(body) / n
	start := 0
	for len(chunks) < n-1 {
		cut := start + target
		if cut >= len(body) {
			break
		}
		j := bytes.IndexByte(body[cut:], '\n')
		if j < 0 {
			break
		}
		cut += j + 1
		for cut < len(body) {
			adv := len(body) - cut
			line := body[cut:]
			if end := bytes.IndexByte(line, '\n'); end >= 0 {
				line, adv = line[:end], end+1
			}
			if !isContinuationLine(line) {
				break
			}
			cut += adv
		}
		if cut >= len(body) {
			break
		}
		chunks = append(chunks, body[start:cut])
		start = cut
	}
	return append(chunks, body[start:])
}

// isContinuationLine reports whether a line cannot begin a chunk: blank
// lines may sit inside shape groups and `b` records extend the shape
// opened by a preceding `s` line. Field splitting matches the parser's
// (Unicode whitespace), so the boundary scan and the parser agree on
// what "blank" means.
func isContinuationLine(line []byte) bool {
	fields := strings.Fields(string(line))
	return len(fields) == 0 || fields[0] == "b"
}

// chunkData is one chunk's private parse result, concatenated in chunk
// order by ParseData. Records stay in input order (no aggregation) so the
// merged Fdata writes back byte-identically to a serial parse.
type chunkData struct {
	branches []Branch
	samples  []Sample
	shapes   []namedShape
}

type namedShape struct {
	name string
	sh   FuncShape
}

// parseChunk parses the record lines of one chunk. baseLine is the
// absolute line number of the chunk's first line; boundaryLine is the
// absolute line number of the next chunk's first line, where a shape
// left open at the chunk end would be diagnosed by a serial parse (the
// next chunk is guaranteed to start with a non-blank, non-`b` line).
func parseChunk(body []byte, baseLine, boundaryLine int, last bool, out *chunkData) error {
	lineNo := baseLine - 1
	var fields [][]byte // reused across lines
	var curShape *FuncShape
	var curName string
	var curBlocks int
	for off := 0; off < len(body); {
		lineNo++
		line := body[off:]
		if end := bytes.IndexByte(line, '\n'); end >= 0 {
			line, off = line[:end], off+end+1
		} else {
			off = len(body)
		}
		fields = splitFieldsBytes(line, fields)
		if len(fields) == 0 {
			continue
		}
		rec := byte(0)
		if len(fields[0]) == 1 {
			rec = fields[0][0]
		}
		if rec != 'b' && curShape != nil && len(curShape.Blocks) != curBlocks {
			return fmt.Errorf("profile: line %d: shape has %d blocks, declared %d",
				lineNo, len(curShape.Blocks), curBlocks)
		}
		switch rec {
		case 's':
			if len(fields) != 3 {
				return fmt.Errorf("profile: line %d: want 3 fields, got %d", lineNo, len(fields))
			}
			name := unescape(string(fields[1]))
			n64, err := strconv.ParseUint(string(fields[2]), 10, 32)
			if err != nil {
				return fmt.Errorf("profile: line %d: %w", lineNo, err)
			}
			n := int(n64)
			if n > 1<<20 {
				return fmt.Errorf("profile: line %d: implausible block count %d", lineNo, n)
			}
			sh := FuncShape{Blocks: make([]BlockShape, 0, n)}
			curShape, curName, curBlocks = &sh, name, n
			if n == 0 {
				out.shapes = append(out.shapes, namedShape{curName, sh})
				curShape = nil
			}
		case 'b':
			if curShape == nil {
				return fmt.Errorf("profile: line %d: block shape outside function shape", lineNo)
			}
			if len(fields) != 4 {
				return fmt.Errorf("profile: line %d: want 4 fields, got %d", lineNo, len(fields))
			}
			var b BlockShape
			var err error
			if b.Off, err = strconv.ParseUint(string(fields[1]), 16, 64); err != nil {
				return fmt.Errorf("profile: line %d: %w", lineNo, err)
			}
			if b.Hash, err = strconv.ParseUint(string(fields[2]), 16, 64); err != nil {
				return fmt.Errorf("profile: line %d: %w", lineNo, err)
			}
			succs, err := parseSuccs(string(fields[3]))
			if err != nil {
				return fmt.Errorf("profile: line %d: %w", lineNo, err)
			}
			b.Succs = succs
			curShape.Blocks = append(curShape.Blocks, b)
			if len(curShape.Blocks) == curBlocks {
				out.shapes = append(out.shapes, namedShape{curName, *curShape})
				curShape = nil
			}
		case '1':
			if len(fields) != 8 {
				return fmt.Errorf("profile: line %d: want 8 fields, got %d", lineNo, len(fields))
			}
			var b Branch
			var err error
			b.From.Sym = unescape(string(fields[1]))
			b.To.Sym = unescape(string(fields[4]))
			if b.From.Off, err = strconv.ParseUint(string(fields[2]), 16, 64); err != nil {
				return fmt.Errorf("profile: line %d: %w", lineNo, err)
			}
			if b.To.Off, err = strconv.ParseUint(string(fields[5]), 16, 64); err != nil {
				return fmt.Errorf("profile: line %d: %w", lineNo, err)
			}
			if b.Mispreds, err = strconv.ParseUint(string(fields[6]), 10, 64); err != nil {
				return fmt.Errorf("profile: line %d: %w", lineNo, err)
			}
			if b.Count, err = strconv.ParseUint(string(fields[7]), 10, 64); err != nil {
				return fmt.Errorf("profile: line %d: %w", lineNo, err)
			}
			out.branches = append(out.branches, b)
		case '2':
			if len(fields) != 4 {
				return fmt.Errorf("profile: line %d: want 4 fields, got %d", lineNo, len(fields))
			}
			var s Sample
			var err error
			s.At.Sym = unescape(string(fields[1]))
			if s.At.Off, err = strconv.ParseUint(string(fields[2]), 16, 64); err != nil {
				return fmt.Errorf("profile: line %d: %w", lineNo, err)
			}
			if s.Count, err = strconv.ParseUint(string(fields[3]), 10, 64); err != nil {
				return fmt.Errorf("profile: line %d: %w", lineNo, err)
			}
			out.samples = append(out.samples, s)
		default:
			return fmt.Errorf("profile: line %d: unknown record %q", lineNo, string(fields[0]))
		}
	}
	if curShape != nil {
		if last {
			return fmt.Errorf("profile: truncated shape for %q (%d of %d blocks)",
				curName, len(curShape.Blocks), curBlocks)
		}
		// The next chunk starts with a top-level line, which serial
		// parsing would flag against this under-filled shape.
		return fmt.Errorf("profile: line %d: shape has %d blocks, declared %d",
			boundaryLine, len(curShape.Blocks), curBlocks)
	}
	return nil
}

// splitFieldsBytes splits a line on Unicode whitespace into dst
// (reused), mirroring strings.Fields without the per-line string
// conversion.
func splitFieldsBytes(line []byte, dst [][]byte) [][]byte {
	dst = dst[:0]
	i := 0
	for i < len(line) {
		r, size := utf8.DecodeRune(line[i:])
		if unicode.IsSpace(r) {
			i += size
			continue
		}
		start := i
		for i < len(line) {
			r, size := utf8.DecodeRune(line[i:])
			if unicode.IsSpace(r) {
				break
			}
			i += size
		}
		dst = append(dst, line[start:i])
	}
	return dst
}

// appendSuccs renders successor indices as "0,2,5" ("-" when none).
func appendSuccs(dst []byte, succs []int) []byte {
	if len(succs) == 0 {
		return append(dst, '-')
	}
	for i, s := range succs {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendInt(dst, int64(s), 10)
	}
	return dst
}

func parseSuccs(s string) ([]int, error) {
	if s == "-" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad successor list %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}

// appendEscaped appends a symbol made safe for the whitespace-separated
// fdata format. Empty names become the __empty__ sentinel; the escape
// character itself, control/whitespace bytes, all non-ASCII bytes (Parse
// splits on Unicode whitespace, so multi-byte spaces like U+00A0 must
// not pass through raw), and a symbol *literally* named __empty__ are
// hex-escaped so every name survives a Write→Parse round trip (the old
// space-only scheme corrupted symbols containing a literal `\x20` or the
// sentinel).
func appendEscaped(dst []byte, s string) []byte {
	if s == "" {
		return append(dst, "__empty__"...)
	}
	if s == "__empty__" {
		return append(dst, `\x5f_empty__`...)
	}
	needs := false
	for i := 0; i < len(s); i++ {
		if escNeeded(s[i]) {
			needs = true
			break
		}
	}
	if !needs {
		return append(dst, s...)
	}
	const hexdig = "0123456789abcdef"
	for i := 0; i < len(s); i++ {
		c := s[i]
		if escNeeded(c) {
			dst = append(dst, '\\', 'x', hexdig[c>>4], hexdig[c&0xf])
		} else {
			dst = append(dst, c)
		}
	}
	return dst
}

func escNeeded(c byte) bool { return c <= ' ' || c >= 0x7F || c == '\\' }

// unescape decodes escape's output: the sentinel and \xNN sequences.
// Malformed sequences pass through verbatim (garbage in, garbage out, but
// never a panic).
func unescape(s string) string {
	if s == "__empty__" {
		return ""
	}
	if !strings.Contains(s, `\x`) {
		return s
	}
	var sb strings.Builder
	for i := 0; i < len(s); {
		if s[i] == '\\' && i+3 < len(s) && s[i+1] == 'x' {
			if hi, ok1 := hexVal(s[i+2]); ok1 {
				if lo, ok2 := hexVal(s[i+3]); ok2 {
					sb.WriteByte(hi<<4 | lo)
					i += 4
					continue
				}
			}
		}
		sb.WriteByte(s[i])
		i++
	}
	return sb.String()
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// Merge aggregates N profiles (shards of the same logical run, or runs of
// the same binary) into one deterministic profile: branch and sample
// counts sum, shapes are taken from the first shard that carries them.
// All shards must agree on the LBR/non-LBR mode and sampling event, and
// shards carrying *conflicting* shapes for the same function are
// rejected — they were recorded on different builds, and merging their
// records under one shape set would make stale matching silently anchor
// counts to the wrong blocks.
func Merge(fds []*Fdata) (*Fdata, error) {
	if len(fds) == 0 {
		return nil, fmt.Errorf("profile: nothing to merge")
	}
	event := ""
	for _, fd := range fds {
		if fd.LBR != fds[0].LBR {
			return nil, fmt.Errorf("profile: cannot merge LBR and non-LBR shards")
		}
		if event == "" {
			event = fd.Event
		} else if fd.Event != "" && fd.Event != event {
			return nil, fmt.Errorf("profile: cannot merge shards of different events (%q vs %q)", event, fd.Event)
		}
	}
	b := NewBuilder(fds[0].LBR, event)
	var shapes map[string]FuncShape
	for _, fd := range fds {
		for _, br := range fd.Branches {
			b.AddBranchN(br.From, br.To, br.Count, br.Mispreds)
		}
		for _, s := range fd.Samples {
			b.AddSampleN(s.At, s.Count)
		}
		for name, sh := range fd.Shapes {
			if shapes == nil {
				shapes = map[string]FuncShape{}
			}
			prev, ok := shapes[name]
			if !ok {
				shapes[name] = sh
				continue
			}
			if !shapesCompatible(prev, sh) {
				return nil, fmt.Errorf("profile: shards carry conflicting shapes for %q (recorded on different builds)", name)
			}
		}
	}
	out := b.Build()
	out.Shapes = shapes
	return out, nil
}

// shapesCompatible reports whether two shapes describe the same CFG
// (same blocks, offsets, hashes, successor lists).
func shapesCompatible(a, b FuncShape) bool {
	if len(a.Blocks) != len(b.Blocks) {
		return false
	}
	for i := range a.Blocks {
		x, y := a.Blocks[i], b.Blocks[i]
		if x.Off != y.Off || x.Hash != y.Hash || len(x.Succs) != len(y.Succs) {
			return false
		}
		for k := range x.Succs {
			if x.Succs[k] != y.Succs[k] {
				return false
			}
		}
	}
	return true
}

// CallEdge is a weighted caller->callee pair.
type CallEdge struct {
	Caller, Callee string
	Weight         uint64
}

// CallGraph is the weighted dynamic call graph used by HFSort (§5.3).
type CallGraph struct {
	Nodes map[string]uint64 // function -> sample weight (entries or samples)
	Edges map[[2]string]uint64
}

// BuildCallGraph extracts a call graph from the profile. In LBR mode,
// branch records landing at function entry (offset 0) from a *different*
// function are calls. In non-LBR mode, the graph is built from sample
// counts in blocks containing direct calls — the caller supplies that
// mapping via callSites (sample location -> callee); indirect calls are
// invisible, as the paper notes.
func BuildCallGraph(f *Fdata, callSites func(Loc) (string, bool)) *CallGraph {
	g := &CallGraph{Nodes: map[string]uint64{}, Edges: map[[2]string]uint64{}}
	if f.LBR {
		for _, b := range f.Branches {
			g.Nodes[b.From.Sym] += 0 // ensure presence
			if b.To.Off == 0 && b.From.Sym != b.To.Sym && b.To.Sym != "" {
				g.Edges[[2]string{b.From.Sym, b.To.Sym}] += b.Count
				g.Nodes[b.To.Sym] += b.Count
			}
		}
		return g
	}
	for _, s := range f.Samples {
		g.Nodes[s.At.Sym] += s.Count
		if callSites != nil {
			if callee, ok := callSites(s.At); ok {
				g.Edges[[2]string{s.At.Sym, callee}] += s.Count
			}
		}
	}
	return g
}

// Package profile defines the sample-based profile data model shared by
// the sampler (internal/perf), the optimizer (internal/core), and the
// link-time function-ordering baseline.
//
// The on-disk format mirrors BOLT's fdata files: one aggregated branch
// record per line, symbolized as (function, offset) pairs, plus a non-LBR
// variant holding plain PC sample counts (paper §5).
package profile

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Loc is a symbolized code location.
type Loc struct {
	Sym string
	Off uint64
}

func (l Loc) String() string { return fmt.Sprintf("%s+%#x", l.Sym, l.Off) }

// Branch is one aggregated taken-branch record (LBR mode).
type Branch struct {
	From     Loc
	To       Loc
	Mispreds uint64
	Count    uint64
}

// Sample is one aggregated PC sample (non-LBR mode).
type Sample struct {
	At    Loc
	Count uint64
}

// Fdata is a complete profile.
type Fdata struct {
	LBR      bool
	Event    string
	Branches []Branch
	Samples  []Sample
}

// Builder aggregates raw events into an Fdata.
type Builder struct {
	lbr      bool
	event    string
	branches map[[2]Loc]*Branch
	samples  map[Loc]uint64
}

// NewBuilder returns an aggregator for the given mode.
func NewBuilder(lbr bool, event string) *Builder {
	return &Builder{
		lbr:      lbr,
		event:    event,
		branches: map[[2]Loc]*Branch{},
		samples:  map[Loc]uint64{},
	}
}

// AddBranch accumulates one taken-branch observation.
func (b *Builder) AddBranch(from, to Loc, mispred bool) {
	var m uint64
	if mispred {
		m = 1
	}
	b.AddBranchN(from, to, 1, m)
}

// AddBranchN accumulates an already-aggregated branch record.
func (b *Builder) AddBranchN(from, to Loc, count, mispreds uint64) {
	key := [2]Loc{from, to}
	e := b.branches[key]
	if e == nil {
		e = &Branch{From: from, To: to}
		b.branches[key] = e
	}
	e.Count += count
	e.Mispreds += mispreds
}

// AddSample accumulates one PC sample.
func (b *Builder) AddSample(at Loc) { b.samples[at]++ }

// AddSampleN accumulates an aggregated PC sample count.
func (b *Builder) AddSampleN(at Loc, count uint64) { b.samples[at] += count }

// Build freezes the aggregation into a deterministic Fdata.
func (b *Builder) Build() *Fdata {
	f := &Fdata{LBR: b.lbr, Event: b.event}
	for _, e := range b.branches {
		f.Branches = append(f.Branches, *e)
	}
	sort.Slice(f.Branches, func(i, j int) bool {
		x, y := f.Branches[i], f.Branches[j]
		if x.From != y.From {
			return locLess(x.From, y.From)
		}
		return locLess(x.To, y.To)
	})
	for at, c := range b.samples {
		f.Samples = append(f.Samples, Sample{At: at, Count: c})
	}
	sort.Slice(f.Samples, func(i, j int) bool { return locLess(f.Samples[i].At, f.Samples[j].At) })
	return f
}

func locLess(a, b Loc) bool {
	if a.Sym != b.Sym {
		return a.Sym < b.Sym
	}
	return a.Off < b.Off
}

// TotalBranchCount sums branch counts.
func (f *Fdata) TotalBranchCount() uint64 {
	var n uint64
	for _, b := range f.Branches {
		n += b.Count
	}
	return n
}

// Write serializes the profile in fdata-like text form.
func (f *Fdata) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	mode := "lbr"
	if !f.LBR {
		mode = "nolbr"
	}
	fmt.Fprintf(bw, "boltprofile v1 %s event=%s\n", mode, f.Event)
	for _, b := range f.Branches {
		// Format: 1 <from-sym> <from-off> 1 <to-sym> <to-off> <mispreds> <count>
		fmt.Fprintf(bw, "1 %s %x 1 %s %x %d %d\n",
			escape(b.From.Sym), b.From.Off, escape(b.To.Sym), b.To.Off, b.Mispreds, b.Count)
	}
	for _, s := range f.Samples {
		fmt.Fprintf(bw, "2 %s %x %d\n", escape(s.At.Sym), s.At.Off, s.Count)
	}
	return bw.Flush()
}

// Parse reads a profile written by Write.
func Parse(r io.Reader) (*Fdata, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("profile: empty input")
	}
	header := strings.Fields(sc.Text())
	if len(header) < 3 || header[0] != "boltprofile" || header[1] != "v1" {
		return nil, fmt.Errorf("profile: bad header %q", sc.Text())
	}
	f := &Fdata{LBR: header[2] == "lbr"}
	for _, h := range header[3:] {
		if v, ok := strings.CutPrefix(h, "event="); ok {
			f.Event = v
		}
	}
	lineNo := 1
	for sc.Scan() {
		lineNo++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "1":
			if len(fields) != 8 {
				return nil, fmt.Errorf("profile: line %d: want 8 fields, got %d", lineNo, len(fields))
			}
			var b Branch
			b.From.Sym = unescape(fields[1])
			b.To.Sym = unescape(fields[4])
			if _, err := fmt.Sscanf(fields[2], "%x", &b.From.Off); err != nil {
				return nil, fmt.Errorf("profile: line %d: %w", lineNo, err)
			}
			if _, err := fmt.Sscanf(fields[5], "%x", &b.To.Off); err != nil {
				return nil, fmt.Errorf("profile: line %d: %w", lineNo, err)
			}
			if _, err := fmt.Sscanf(fields[6], "%d", &b.Mispreds); err != nil {
				return nil, fmt.Errorf("profile: line %d: %w", lineNo, err)
			}
			if _, err := fmt.Sscanf(fields[7], "%d", &b.Count); err != nil {
				return nil, fmt.Errorf("profile: line %d: %w", lineNo, err)
			}
			f.Branches = append(f.Branches, b)
		case "2":
			if len(fields) != 4 {
				return nil, fmt.Errorf("profile: line %d: want 4 fields, got %d", lineNo, len(fields))
			}
			var s Sample
			s.At.Sym = unescape(fields[1])
			if _, err := fmt.Sscanf(fields[2], "%x", &s.At.Off); err != nil {
				return nil, fmt.Errorf("profile: line %d: %w", lineNo, err)
			}
			if _, err := fmt.Sscanf(fields[3], "%d", &s.Count); err != nil {
				return nil, fmt.Errorf("profile: line %d: %w", lineNo, err)
			}
			f.Samples = append(f.Samples, s)
		default:
			return nil, fmt.Errorf("profile: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	return f, sc.Err()
}

func escape(s string) string {
	if s == "" {
		return "__empty__"
	}
	return strings.ReplaceAll(s, " ", "\\x20")
}

func unescape(s string) string {
	if s == "__empty__" {
		return ""
	}
	return strings.ReplaceAll(s, "\\x20", " ")
}

// CallEdge is a weighted caller->callee pair.
type CallEdge struct {
	Caller, Callee string
	Weight         uint64
}

// CallGraph is the weighted dynamic call graph used by HFSort (§5.3).
type CallGraph struct {
	Nodes map[string]uint64 // function -> sample weight (entries or samples)
	Edges map[[2]string]uint64
}

// BuildCallGraph extracts a call graph from the profile. In LBR mode,
// branch records landing at function entry (offset 0) from a *different*
// function are calls. In non-LBR mode, the graph is built from sample
// counts in blocks containing direct calls — the caller supplies that
// mapping via callSites (sample location -> callee); indirect calls are
// invisible, as the paper notes.
func BuildCallGraph(f *Fdata, callSites func(Loc) (string, bool)) *CallGraph {
	g := &CallGraph{Nodes: map[string]uint64{}, Edges: map[[2]string]uint64{}}
	if f.LBR {
		for _, b := range f.Branches {
			g.Nodes[b.From.Sym] += 0 // ensure presence
			if b.To.Off == 0 && b.From.Sym != b.To.Sym && b.To.Sym != "" {
				g.Edges[[2]string{b.From.Sym, b.To.Sym}] += b.Count
				g.Nodes[b.To.Sym] += b.Count
			}
		}
		return g
	}
	for _, s := range f.Samples {
		g.Nodes[s.At.Sym] += s.Count
		if callSites != nil {
			if callee, ok := callSites(s.At); ok {
				g.Edges[[2]string{s.At.Sym, callee}] += s.Count
			}
		}
	}
	return g
}

// Package profile defines the sample-based profile data model shared by
// the sampler (internal/perf), the optimizer (internal/core), and the
// link-time function-ordering baseline.
//
// The on-disk format mirrors BOLT's fdata files: one aggregated branch
// record per line, symbolized as (function, offset) pairs, plus a non-LBR
// variant holding plain PC sample counts (paper §5).
package profile

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Loc is a symbolized code location.
type Loc struct {
	Sym string
	Off uint64
}

func (l Loc) String() string { return fmt.Sprintf("%s+%#x", l.Sym, l.Off) }

// Branch is one aggregated taken-branch record (LBR mode).
type Branch struct {
	From     Loc
	To       Loc
	Mispreds uint64
	Count    uint64
}

// Sample is one aggregated PC sample (non-LBR mode).
type Sample struct {
	At    Loc
	Count uint64
}

// BlockShape describes one basic block of the profiled binary's CFG: its
// offset within the function, a structural hash of its opcode sequence,
// and the indices of its successor blocks. Shapes ride in the profile
// header (format v2) so a consumer looking at a *different* version of
// the binary can re-anchor stale (function, offset) records by matching
// blocks structurally instead of dropping them (arXiv:2401.17168).
type BlockShape struct {
	Off   uint64 // block start offset within the function
	Hash  uint64 // opcode-sequence hash (see internal/stale)
	Succs []int  // successor block indices, CFG edge order
}

// FuncShape is the block-level shape of one profiled function.
type FuncShape struct {
	Blocks []BlockShape // original layout (address) order
}

// Fdata is a complete profile.
type Fdata struct {
	LBR      bool
	Event    string
	Branches []Branch
	Samples  []Sample

	// Shapes carries the CFG shapes of the binary the profile was
	// collected on, keyed by function name. Empty for v1 profiles.
	Shapes map[string]FuncShape
}

// Builder aggregates raw events into an Fdata.
type Builder struct {
	lbr      bool
	event    string
	branches map[[2]Loc]*Branch
	samples  map[Loc]uint64
}

// NewBuilder returns an aggregator for the given mode.
func NewBuilder(lbr bool, event string) *Builder {
	return &Builder{
		lbr:      lbr,
		event:    event,
		branches: map[[2]Loc]*Branch{},
		samples:  map[Loc]uint64{},
	}
}

// AddBranch accumulates one taken-branch observation.
func (b *Builder) AddBranch(from, to Loc, mispred bool) {
	var m uint64
	if mispred {
		m = 1
	}
	b.AddBranchN(from, to, 1, m)
}

// AddBranchN accumulates an already-aggregated branch record.
func (b *Builder) AddBranchN(from, to Loc, count, mispreds uint64) {
	key := [2]Loc{from, to}
	e := b.branches[key]
	if e == nil {
		e = &Branch{From: from, To: to}
		b.branches[key] = e
	}
	e.Count += count
	e.Mispreds += mispreds
}

// AddSample accumulates one PC sample.
func (b *Builder) AddSample(at Loc) { b.samples[at]++ }

// AddSampleN accumulates an aggregated PC sample count.
func (b *Builder) AddSampleN(at Loc, count uint64) { b.samples[at] += count }

// Build freezes the aggregation into a deterministic Fdata.
func (b *Builder) Build() *Fdata {
	f := &Fdata{LBR: b.lbr, Event: b.event}
	for _, e := range b.branches {
		f.Branches = append(f.Branches, *e)
	}
	sort.Slice(f.Branches, func(i, j int) bool {
		x, y := f.Branches[i], f.Branches[j]
		if x.From != y.From {
			return locLess(x.From, y.From)
		}
		return locLess(x.To, y.To)
	})
	for at, c := range b.samples {
		f.Samples = append(f.Samples, Sample{At: at, Count: c})
	}
	sort.Slice(f.Samples, func(i, j int) bool { return locLess(f.Samples[i].At, f.Samples[j].At) })
	return f
}

func locLess(a, b Loc) bool {
	if a.Sym != b.Sym {
		return a.Sym < b.Sym
	}
	return a.Off < b.Off
}

// TotalBranchCount sums branch counts.
func (f *Fdata) TotalBranchCount() uint64 {
	var n uint64
	for _, b := range f.Branches {
		n += b.Count
	}
	return n
}

// Write serializes the profile in fdata-like text form. Profiles without
// shapes use the v1 header; profiles carrying shapes use v2, which v1
// readers reject cleanly (the version field is checked before records).
func (f *Fdata) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	mode := "lbr"
	if !f.LBR {
		mode = "nolbr"
	}
	version := "v1"
	if len(f.Shapes) > 0 {
		version = "v2"
	}
	fmt.Fprintf(bw, "boltprofile %s %s event=%s\n", version, mode, f.Event)
	if len(f.Shapes) > 0 {
		names := make([]string, 0, len(f.Shapes))
		for name := range f.Shapes {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			sh := f.Shapes[name]
			// Format: s <func> <nblocks> then one `b <off> <hash> <succs>`
			// line per block (succs comma separated, "-" when none).
			fmt.Fprintf(bw, "s %s %d\n", escape(name), len(sh.Blocks))
			for _, b := range sh.Blocks {
				fmt.Fprintf(bw, "b %x %x %s\n", b.Off, b.Hash, succsString(b.Succs))
			}
		}
	}
	for _, b := range f.Branches {
		// Format: 1 <from-sym> <from-off> 1 <to-sym> <to-off> <mispreds> <count>
		fmt.Fprintf(bw, "1 %s %x 1 %s %x %d %d\n",
			escape(b.From.Sym), b.From.Off, escape(b.To.Sym), b.To.Off, b.Mispreds, b.Count)
	}
	for _, s := range f.Samples {
		fmt.Fprintf(bw, "2 %s %x %d\n", escape(s.At.Sym), s.At.Off, s.Count)
	}
	return bw.Flush()
}

// Parse reads a profile written by Write.
func Parse(r io.Reader) (*Fdata, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("profile: empty input")
	}
	header := strings.Fields(sc.Text())
	if len(header) < 3 || header[0] != "boltprofile" ||
		(header[1] != "v1" && header[1] != "v2") {
		return nil, fmt.Errorf("profile: bad header %q", sc.Text())
	}
	f := &Fdata{LBR: header[2] == "lbr"}
	for _, h := range header[3:] {
		if v, ok := strings.CutPrefix(h, "event="); ok {
			f.Event = v
		}
	}
	lineNo := 1
	var curShape *FuncShape // open `s` record collecting `b` lines
	var curName string
	var curBlocks int
	for sc.Scan() {
		lineNo++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if fields[0] != "b" && curShape != nil && len(curShape.Blocks) != curBlocks {
			return nil, fmt.Errorf("profile: line %d: shape has %d blocks, declared %d",
				lineNo, len(curShape.Blocks), curBlocks)
		}
		switch fields[0] {
		case "s":
			if len(fields) != 3 {
				return nil, fmt.Errorf("profile: line %d: want 3 fields, got %d", lineNo, len(fields))
			}
			name := unescape(fields[1])
			n := 0
			if _, err := fmt.Sscanf(fields[2], "%d", &n); err != nil {
				return nil, fmt.Errorf("profile: line %d: %w", lineNo, err)
			}
			if n < 0 || n > 1<<20 {
				return nil, fmt.Errorf("profile: line %d: implausible block count %d", lineNo, n)
			}
			if f.Shapes == nil {
				f.Shapes = map[string]FuncShape{}
			}
			sh := FuncShape{Blocks: make([]BlockShape, 0, n)}
			curShape, curName, curBlocks = &sh, name, n
			if n == 0 {
				f.Shapes[curName] = sh
				curShape = nil
			}
		case "b":
			if curShape == nil {
				return nil, fmt.Errorf("profile: line %d: block shape outside function shape", lineNo)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("profile: line %d: want 4 fields, got %d", lineNo, len(fields))
			}
			var b BlockShape
			if _, err := fmt.Sscanf(fields[1], "%x", &b.Off); err != nil {
				return nil, fmt.Errorf("profile: line %d: %w", lineNo, err)
			}
			if _, err := fmt.Sscanf(fields[2], "%x", &b.Hash); err != nil {
				return nil, fmt.Errorf("profile: line %d: %w", lineNo, err)
			}
			succs, err := parseSuccs(fields[3])
			if err != nil {
				return nil, fmt.Errorf("profile: line %d: %w", lineNo, err)
			}
			b.Succs = succs
			curShape.Blocks = append(curShape.Blocks, b)
			if len(curShape.Blocks) == curBlocks {
				f.Shapes[curName] = *curShape
				curShape = nil
			}
		case "1":
			if len(fields) != 8 {
				return nil, fmt.Errorf("profile: line %d: want 8 fields, got %d", lineNo, len(fields))
			}
			var b Branch
			b.From.Sym = unescape(fields[1])
			b.To.Sym = unescape(fields[4])
			if _, err := fmt.Sscanf(fields[2], "%x", &b.From.Off); err != nil {
				return nil, fmt.Errorf("profile: line %d: %w", lineNo, err)
			}
			if _, err := fmt.Sscanf(fields[5], "%x", &b.To.Off); err != nil {
				return nil, fmt.Errorf("profile: line %d: %w", lineNo, err)
			}
			if _, err := fmt.Sscanf(fields[6], "%d", &b.Mispreds); err != nil {
				return nil, fmt.Errorf("profile: line %d: %w", lineNo, err)
			}
			if _, err := fmt.Sscanf(fields[7], "%d", &b.Count); err != nil {
				return nil, fmt.Errorf("profile: line %d: %w", lineNo, err)
			}
			f.Branches = append(f.Branches, b)
		case "2":
			if len(fields) != 4 {
				return nil, fmt.Errorf("profile: line %d: want 4 fields, got %d", lineNo, len(fields))
			}
			var s Sample
			s.At.Sym = unescape(fields[1])
			if _, err := fmt.Sscanf(fields[2], "%x", &s.At.Off); err != nil {
				return nil, fmt.Errorf("profile: line %d: %w", lineNo, err)
			}
			if _, err := fmt.Sscanf(fields[3], "%d", &s.Count); err != nil {
				return nil, fmt.Errorf("profile: line %d: %w", lineNo, err)
			}
			f.Samples = append(f.Samples, s)
		default:
			return nil, fmt.Errorf("profile: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if curShape != nil {
		return nil, fmt.Errorf("profile: truncated shape for %q (%d of %d blocks)",
			curName, len(curShape.Blocks), curBlocks)
	}
	return f, sc.Err()
}

// succsString renders successor indices as "0,2,5" ("-" when none).
func succsString(succs []int) string {
	if len(succs) == 0 {
		return "-"
	}
	var sb strings.Builder
	for i, s := range succs {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", s)
	}
	return sb.String()
}

func parseSuccs(s string) ([]int, error) {
	if s == "-" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad successor list %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}

// escape makes a symbol safe for the whitespace-separated fdata format.
// Empty names become the __empty__ sentinel; the escape character itself,
// control/whitespace bytes, all non-ASCII bytes (Parse splits on Unicode
// whitespace, so multi-byte spaces like U+00A0 must not pass through
// raw), and a symbol *literally* named __empty__ are hex-escaped so
// every name survives a Write→Parse round trip (the old space-only
// scheme corrupted symbols containing a literal `\x20` or the sentinel).
func escape(s string) string {
	if s == "" {
		return "__empty__"
	}
	if s == "__empty__" {
		return `\x5f_empty__`
	}
	needsEsc := func(c byte) bool { return c <= ' ' || c >= 0x7F || c == '\\' }
	needs := false
	for i := 0; i < len(s); i++ {
		if needsEsc(s[i]) {
			needs = true
			break
		}
	}
	if !needs {
		return s
	}
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if needsEsc(s[i]) {
			fmt.Fprintf(&sb, `\x%02x`, s[i])
		} else {
			sb.WriteByte(s[i])
		}
	}
	return sb.String()
}

// unescape decodes escape's output: the sentinel and \xNN sequences.
// Malformed sequences pass through verbatim (garbage in, garbage out, but
// never a panic).
func unescape(s string) string {
	if s == "__empty__" {
		return ""
	}
	if !strings.Contains(s, `\x`) {
		return s
	}
	var sb strings.Builder
	for i := 0; i < len(s); {
		if s[i] == '\\' && i+3 < len(s) && s[i+1] == 'x' {
			if hi, ok1 := hexVal(s[i+2]); ok1 {
				if lo, ok2 := hexVal(s[i+3]); ok2 {
					sb.WriteByte(hi<<4 | lo)
					i += 4
					continue
				}
			}
		}
		sb.WriteByte(s[i])
		i++
	}
	return sb.String()
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// Merge aggregates N profiles (shards of the same logical run, or runs of
// the same binary) into one deterministic profile: branch and sample
// counts sum, shapes are taken from the first shard that carries them.
// All shards must agree on the LBR/non-LBR mode and sampling event, and
// shards carrying *conflicting* shapes for the same function are
// rejected — they were recorded on different builds, and merging their
// records under one shape set would make stale matching silently anchor
// counts to the wrong blocks.
func Merge(fds []*Fdata) (*Fdata, error) {
	if len(fds) == 0 {
		return nil, fmt.Errorf("profile: nothing to merge")
	}
	event := ""
	for _, fd := range fds {
		if fd.LBR != fds[0].LBR {
			return nil, fmt.Errorf("profile: cannot merge LBR and non-LBR shards")
		}
		if event == "" {
			event = fd.Event
		} else if fd.Event != "" && fd.Event != event {
			return nil, fmt.Errorf("profile: cannot merge shards of different events (%q vs %q)", event, fd.Event)
		}
	}
	b := NewBuilder(fds[0].LBR, event)
	var shapes map[string]FuncShape
	for _, fd := range fds {
		for _, br := range fd.Branches {
			b.AddBranchN(br.From, br.To, br.Count, br.Mispreds)
		}
		for _, s := range fd.Samples {
			b.AddSampleN(s.At, s.Count)
		}
		for name, sh := range fd.Shapes {
			if shapes == nil {
				shapes = map[string]FuncShape{}
			}
			prev, ok := shapes[name]
			if !ok {
				shapes[name] = sh
				continue
			}
			if !shapesCompatible(prev, sh) {
				return nil, fmt.Errorf("profile: shards carry conflicting shapes for %q (recorded on different builds)", name)
			}
		}
	}
	out := b.Build()
	out.Shapes = shapes
	return out, nil
}

// shapesCompatible reports whether two shapes describe the same CFG
// (same blocks, offsets, hashes, successor lists).
func shapesCompatible(a, b FuncShape) bool {
	if len(a.Blocks) != len(b.Blocks) {
		return false
	}
	for i := range a.Blocks {
		x, y := a.Blocks[i], b.Blocks[i]
		if x.Off != y.Off || x.Hash != y.Hash || len(x.Succs) != len(y.Succs) {
			return false
		}
		for k := range x.Succs {
			if x.Succs[k] != y.Succs[k] {
				return false
			}
		}
	}
	return true
}

// CallEdge is a weighted caller->callee pair.
type CallEdge struct {
	Caller, Callee string
	Weight         uint64
}

// CallGraph is the weighted dynamic call graph used by HFSort (§5.3).
type CallGraph struct {
	Nodes map[string]uint64 // function -> sample weight (entries or samples)
	Edges map[[2]string]uint64
}

// BuildCallGraph extracts a call graph from the profile. In LBR mode,
// branch records landing at function entry (offset 0) from a *different*
// function are calls. In non-LBR mode, the graph is built from sample
// counts in blocks containing direct calls — the caller supplies that
// mapping via callSites (sample location -> callee); indirect calls are
// invisible, as the paper notes.
func BuildCallGraph(f *Fdata, callSites func(Loc) (string, bool)) *CallGraph {
	g := &CallGraph{Nodes: map[string]uint64{}, Edges: map[[2]string]uint64{}}
	if f.LBR {
		for _, b := range f.Branches {
			g.Nodes[b.From.Sym] += 0 // ensure presence
			if b.To.Off == 0 && b.From.Sym != b.To.Sym && b.To.Sym != "" {
				g.Edges[[2]string{b.From.Sym, b.To.Sym}] += b.Count
				g.Nodes[b.To.Sym] += b.Count
			}
		}
		return g
	}
	for _, s := range f.Samples {
		g.Nodes[s.At.Sym] += s.Count
		if callSites != nil {
			if callee, ok := callSites(s.At); ok {
				g.Edges[[2]string{s.At.Sym, callee}] += s.Count
			}
		}
	}
	return g
}

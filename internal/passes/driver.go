package passes

import (
	"os"

	"gobolt/internal/core"
	"gobolt/internal/elfx"
	"gobolt/internal/profile"
)

// Optimize runs the complete Figure 3 pipeline on a linked binary:
// discovery, disassembly, CFG construction, profile application, the
// Table 1 pass sequence, emission, and ELF rewriting. Every per-function
// stage — the loader's disassembly+CFG phase, the function passes, ICF
// key hashing, and code emission — is scheduled over a worker pool sized
// by opts.Jobs (0 = GOMAXPROCS); the emitted binary is bit-identical for
// every worker count. Phase timing lands on ctx.LoadTimings,
// ctx.PassTimings, and ctx.EmitTimings for the -time-passes report. It
// returns the rewrite result plus the context (for reports: dyno-stats,
// CFG dumps, bad-layout findings, pass timings).
func Optimize(f *elfx.File, fd *profile.Fdata, opts core.Options) (*core.RewriteResult, *core.BinaryContext, error) {
	ctx, err := core.NewContext(f, opts)
	if err != nil {
		return nil, nil, err
	}
	if fd != nil {
		ctx.ApplyProfile(fd)
	}
	pm := core.NewPassManager(opts.Jobs)
	if err := pm.Run(ctx, BuildPipeline(opts)); err != nil {
		return nil, ctx, err
	}
	res, err := ctx.Rewrite()
	if opts.TimePasses {
		// After Rewrite so the report covers all three pipeline stages:
		// loader, passes, and emission.
		core.WriteFullTimings(os.Stderr, ctx)
	}
	if err != nil {
		return nil, ctx, err
	}
	return res, ctx, nil
}

package passes

import (
	"gobolt/internal/core"
	"gobolt/internal/elfx"
	"gobolt/internal/profile"
)

// Optimize runs the complete Figure 3 pipeline on a linked binary:
// discovery, disassembly, CFG construction, profile application, the
// Table 1 pass sequence, emission, and ELF rewriting. It returns the
// rewrite result plus the context (for reports: dyno-stats, CFG dumps,
// bad-layout findings).
func Optimize(f *elfx.File, fd *profile.Fdata, opts core.Options) (*core.RewriteResult, *core.BinaryContext, error) {
	ctx, err := core.NewContext(f, opts)
	if err != nil {
		return nil, nil, err
	}
	if fd != nil {
		ctx.ApplyProfile(fd)
	}
	if err := core.RunPasses(ctx, BuildPipeline(opts)); err != nil {
		return nil, ctx, err
	}
	res, err := ctx.Rewrite()
	if err != nil {
		return nil, ctx, err
	}
	return res, ctx, nil
}

package passes

import (
	"gobolt/internal/cfi"
	"gobolt/internal/core"
	"gobolt/internal/dataflow"
	"gobolt/internal/isa"
)

// FrameOpts removes unnecessary caller-saved register spills around calls
// (Table 1, pass 15): the compiler sometimes emits
//
//	push %rX ; call f ; pop %rX
//
// for a caller-saved %rX that is dead after the pop. Liveness analysis
// (the dataflow framework of §4) proves deadness before deletion.
type FrameOpts struct{}

// Name implements core.FunctionPass.
func (FrameOpts) Name() string { return "frame-opts" }

// RunOnFunction implements core.FunctionPass.
func (FrameOpts) RunOnFunction(fc *core.FuncCtx, fn *core.BinaryFunction) error {
	liveOut := flagsLiveOut(fn) // full register liveness, reused
	changed := false
	for _, b := range fn.Blocks {
		for i := 0; i+2 < len(b.Insts); i++ {
			push := &b.Insts[i]
			call := &b.Insts[i+1]
			pop := &b.Insts[i+2]
			if push.I.Op != isa.PUSH || pop.I.Op != isa.POP {
				continue
			}
			r := push.I.R1
			if r != pop.I.R1 || !r.CallerSaved() || !call.IsCall() {
				continue
			}
			// The spilled register must be dead after the pop.
			uses := make([]isa.RegSet, len(b.Insts))
			defs := make([]isa.RegSet, len(b.Insts))
			for k := range b.Insts {
				uses[k] = b.Insts[k].I.Uses()
				defs[k] = b.Insts[k].I.Defs()
			}
			liveAfter := liveAtEach(uses, defs, liveOut[b.Index])
			if liveAfter[i+2].Has(r) {
				// The value is consumed later: the spill is real.
				continue
			}
			b.Insts = append(b.Insts[:i:i], b.Insts[i+1:]...)
			// After removal the pop sits at i+1; delete it too.
			b.Insts = append(b.Insts[:i+1:i+1], b.Insts[i+2:]...)
			fc.CountStat("frame-opts-spills", 1)
			changed = true
		}
	}
	if changed {
		fn.RebuildIndex()
	}
	return nil
}

func liveAtEach(uses, defs []isa.RegSet, liveOut isa.RegSet) []isa.RegSet {
	return dataflow.LiveAtEachInst(uses, defs, liveOut)
}

// ShrinkWrapping moves a callee-saved register save out of the prologue
// and into the single cold block that actually uses it (Table 1, pass
// 16), when the profile shows the hot entry path never needs the spill.
//
// Conservative preconditions (full generality needs the frame analysis of
// production BOLT):
//   - standard prologue: push rbp; mov rbp,rsp; push r1..rk, no locals
//     (no `sub rsp, N`), no landing pads in the function;
//   - the candidate is the LAST pushed callee-saved register (so no other
//     spill slot or local offset shifts);
//   - all reads/writes of the register happen in one block containing no
//     calls (so no unwinding can observe the moved save);
//   - that block is cold relative to the entry.
type ShrinkWrapping struct{}

// Name implements core.FunctionPass.
func (ShrinkWrapping) Name() string { return "shrink-wrapping" }

// RunOnFunction implements core.FunctionPass.
func (s ShrinkWrapping) RunOnFunction(fc *core.FuncCtx, fn *core.BinaryFunction) error {
	if fn.HasLSDA || !fn.Sampled || len(fn.Blocks) < 2 {
		return nil
	}
	s.runOne(fc, fn)
	return nil
}

func (s ShrinkWrapping) runOne(fc *core.FuncCtx, fn *core.BinaryFunction) {
	entry := fn.Blocks[0]
	// Match the prologue and find the last saved callee-saved register.
	var pushIdx []int
	sawFrame := false
	for i := range entry.Insts {
		in := &entry.Insts[i]
		switch {
		case in.I.Op == isa.PUSH && in.I.R1 == isa.RBP && i == 0:
		case in.I.Op == isa.MOVrr && in.I.R1 == isa.RBP && in.I.R2 == isa.RSP:
			sawFrame = true
		case in.I.Op == isa.PUSH && in.I.R1.CalleeSaved() && sawFrame:
			pushIdx = append(pushIdx, i)
		case in.I.Op == isa.SUBri && in.I.R1 == isa.RSP:
			return // locals present: offsets would shift
		}
	}
	if !sawFrame || len(pushIdx) == 0 {
		return
	}
	last := pushIdx[len(pushIdx)-1]
	reg := entry.Insts[last].I.R1

	// Find the unique block using reg; reject other uses.
	var home *core.BasicBlock
	for _, b := range fn.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			if b == entry && in.I.Op == isa.PUSH && in.I.R1 == reg {
				continue
			}
			if in.I.Op == isa.POP && in.I.R1 == reg {
				continue // epilogue restore
			}
			touched := in.I.Uses() | in.I.Defs()
			if in.IsCall() {
				touched = 0 // calls preserve callee-saved registers
			}
			if touched.Has(reg) {
				if home != nil && home != b {
					return
				}
				home = b
			}
			if in.IsCall() && home == b {
				return // no calls in the home block
			}
		}
		if b.IsLP {
			return
		}
	}
	if home == nil || home == entry || home.IsEntry {
		return
	}
	// Calls anywhere in home block?
	for i := range home.Insts {
		if home.Insts[i].IsCall() {
			return
		}
	}
	// Profitability: home must be cold relative to the entry.
	if entry.ExecCount == 0 || home.ExecCount*20 > entry.ExecCount {
		return
	}

	// Compute the old save offset (CFA-relative) for CFI surgery.
	saveOff := int32(-24 - 8*int32(len(pushIdx)-1))

	// 1. Drop the prologue push.
	entry.Insts = append(entry.Insts[:last:last], entry.Insts[last+1:]...)

	// 2. Drop the matching epilogue pops (block ends in ret: sequence
	// `... pop reg ... pop rbp; ret`).
	for _, b := range fn.Blocks {
		lastInst := b.LastInst()
		if lastInst == nil || !lastInst.I.IsReturn() {
			continue
		}
		for i := len(b.Insts) - 1; i >= 0; i-- {
			if b.Insts[i].I.Op == isa.POP && b.Insts[i].I.R1 == reg {
				b.Insts = append(b.Insts[:i:i], b.Insts[i+1:]...)
				break
			}
		}
	}

	// 3. Wrap the home block with push/pop.
	pushIn := core.Inst{I: isa.NewInst(isa.PUSH)}
	pushIn.I.R1 = reg
	popIn := core.Inst{I: isa.NewInst(isa.POP)}
	popIn.I.R1 = reg

	// 4. CFI: remove reg from every state outside the home block; inside
	// (after the push) it stays saved at the same CFA offset.
	inHome := func(st cfi.State) cfi.State {
		st.Saved[uint8(reg)] = saveOff
		return st
	}
	outHome := func(st cfi.State) cfi.State {
		delete(st.Saved, uint8(reg))
		return st
	}
	remap := func(b *core.BasicBlock, f func(cfi.State) cfi.State) {
		for i := range b.Insts {
			if b.Insts[i].CFIIdx < 0 {
				continue
			}
			st := fn.StateAt(b.Insts[i].CFIIdx)
			ns := cfi.State{CfaReg: st.CfaReg, CfaOff: st.CfaOff, Saved: map[uint8]int32{}}
			for k, v := range st.Saved {
				ns.Saved[k] = v
			}
			ns = f(ns)
			b.Insts[i].CFIIdx = fn.InternState(ns)
		}
	}
	for _, b := range fn.Blocks {
		if b == home {
			continue
		}
		remap(b, outHome)
	}
	remap(home, inHome)

	// Insert the push first / pop last (before a trailing branch).
	pushIn.CFIIdx = home.CFIIn
	if len(home.Insts) > 0 {
		pushIn.CFIIdx = home.Insts[0].CFIIdx
	}
	popIn.CFIIdx = pushIn.CFIIdx
	insertAt := len(home.Insts)
	if lastInst := home.LastInst(); lastInst != nil && (lastInst.I.IsBranch() || lastInst.I.Op == isa.HLT) {
		insertAt--
	}
	newInsts := make([]core.Inst, 0, len(home.Insts)+2)
	newInsts = append(newInsts, pushIn)
	newInsts = append(newInsts, home.Insts[:insertAt]...)
	newInsts = append(newInsts, popIn)
	newInsts = append(newInsts, home.Insts[insertAt:]...)
	home.Insts = newInsts

	fn.RebuildIndex()
	fc.CountStat("shrink-wrapping", 1)
}

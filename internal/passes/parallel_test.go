package passes

import (
	"bytes"
	"reflect"
	"testing"

	"gobolt/internal/core"
	"gobolt/internal/elfx"
	"gobolt/internal/profile"
)

// optimizeWithJobs runs the full pipeline (context build, profile,
// passes, rewrite) at the given worker count and returns the serialized
// output binary plus the final context. The input file and profile are
// shared across calls: Optimize never mutates them.
func optimizeWithJobs(t *testing.T, f *elfx.File, fd *profile.Fdata, jobs int) ([]byte, *core.BinaryContext) {
	t.Helper()
	opts := core.DefaultOptions()
	opts.Jobs = jobs
	res, ctx, err := Optimize(f, fd, opts)
	if err != nil {
		t.Fatalf("optimize (jobs=%d): %v", jobs, err)
	}
	raw, err := res.File.Bytes()
	if err != nil {
		t.Fatalf("serialize (jobs=%d): %v", jobs, err)
	}
	return raw, ctx
}

// TestPipelineDeterministicAcrossJobs is the parallel pipeline's
// end-to-end contract, covering all three stages — the staged loader
// (parallel disassembly+CFG), the function passes, and the concurrent
// emitter: the emitted binary is byte-identical and the stat counters
// are exactly equal for any worker count. Run under -race this also
// exercises every fan-out phase for data races.
func TestPipelineDeterministicAcrossJobs(t *testing.T) {
	f, _ := buildWork(t)
	fd := record(t, f, true)
	serialBytes, serialCtx := optimizeWithJobs(t, f, fd, 1)
	for _, jobs := range []int{2, 8} {
		gotBytes, ctx := optimizeWithJobs(t, f, fd, jobs)
		if !bytes.Equal(serialBytes, gotBytes) {
			t.Errorf("jobs=%d: emitted binary differs from jobs=1 (%d vs %d bytes)",
				jobs, len(gotBytes), len(serialBytes))
		}
		if !reflect.DeepEqual(serialCtx.Stats, ctx.Stats) {
			t.Errorf("jobs=%d: stats diverge:\n  jobs=1: %v\n  jobs=%d: %v",
				jobs, serialCtx.Stats, jobs, ctx.Stats)
		}
		if len(ctx.PassTimings) == 0 {
			t.Errorf("jobs=%d: no pass timings recorded", jobs)
		}
		// Loader and emitter phases must be instrumented and scheduled
		// on the pool.
		assertParallelPhase(t, jobs, ctx.LoadTimings, "load:disasm+cfg")
		assertParallelPhase(t, jobs, ctx.EmitTimings, "emit:functions")
		// ICF's hashing runs as a parallel function pass; only the fold
		// remains a barrier.
		assertParallelPhase(t, jobs, ctx.PassTimings, "icf-1-hash")
		assertParallelPhase(t, jobs, ctx.PassTimings, "icf-2-hash")
	}
}

// assertParallelPhase checks that the named phase was recorded and fanned
// out over more than one worker.
func assertParallelPhase(t *testing.T, jobs int, timings []core.PassTiming, name string) {
	t.Helper()
	for _, pt := range timings {
		if pt.Name != name {
			continue
		}
		if !pt.Parallel || pt.Jobs < 2 {
			t.Errorf("jobs=%d: phase %s not parallel: %+v", jobs, name, pt)
		}
		return
	}
	t.Errorf("jobs=%d: phase %s missing from timings", jobs, name)
}

// TestParallelPipelineSemantics re-runs the round-trip check with an
// explicitly parallel manager: the rewritten binary must still compute
// the same checksum.
func TestParallelPipelineSemantics(t *testing.T) {
	f, want := buildWork(t)
	fd := record(t, f, true)
	opts := core.DefaultOptions()
	opts.Jobs = 8
	res, ctx, err := Optimize(f, fd, opts)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if got := run(t, res.File); got != want {
		t.Fatalf("semantic change under jobs=8: got %d want %d", got, want)
	}
	// The parallel schedule must still have exercised the function passes.
	for _, stat := range []string{"strip-rep-ret", "reorder-bbs-funcs", "split-functions"} {
		if ctx.Stats[stat] == 0 {
			t.Errorf("expected stat %q > 0 (stats: %v)", stat, ctx.Stats)
		}
	}
	// Every pipeline pass appears in the instrumentation, in order.
	pipeline := BuildPipeline(opts)
	if len(ctx.PassTimings) != len(pipeline) {
		t.Fatalf("timings cover %d passes, pipeline has %d", len(ctx.PassTimings), len(pipeline))
	}
	for i, p := range pipeline {
		if ctx.PassTimings[i].Name != p.Name() {
			t.Errorf("timing %d: got pass %q, want %q", i, ctx.PassTimings[i].Name, p.Name())
		}
	}
}

package passes

import (
	"testing"

	"gobolt/internal/core"
)

// TestParallelPipelineSemantics re-runs the round-trip check with an
// explicitly parallel manager: the rewritten binary must still compute
// the same checksum. (The cross-jobs byte-identity contract,
// TestPipelineDeterministicAcrossJobs, lives in the bolt package and
// exercises this pipeline through the public entry points.)
func TestParallelPipelineSemantics(t *testing.T) {
	f, want := buildWork(t)
	fd := record(t, f, true)
	opts := core.DefaultOptions()
	opts.Jobs = 8
	res, ctx, err := optimize(f, fd, opts)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if got := run(t, res.File); got != want {
		t.Fatalf("semantic change under jobs=8: got %d want %d", got, want)
	}
	// The parallel schedule must still have exercised the function passes.
	for _, stat := range []string{"strip-rep-ret", "reorder-bbs-funcs", "split-functions"} {
		if ctx.Stats[stat] == 0 {
			t.Errorf("expected stat %q > 0 (stats: %v)", stat, ctx.Stats)
		}
	}
	// Every pipeline pass appears in the instrumentation, in order.
	pipeline := BuildPipeline(opts)
	if len(ctx.PassTimings) != len(pipeline) {
		t.Fatalf("timings cover %d passes, pipeline has %d", len(ctx.PassTimings), len(pipeline))
	}
	for i, p := range pipeline {
		if ctx.PassTimings[i].Name != p.Name() {
			t.Errorf("timing %d: got pass %q, want %q", i, ctx.PassTimings[i].Name, p.Name())
		}
	}
}

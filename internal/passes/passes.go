// Package passes implements gobolt's optimization pipeline: the sixteen
// transformations of the paper's Table 1, in order. Each pass is a
// core.Pass; BuildPipeline assembles the sequence the paper runs.
package passes

import (
	"gobolt/internal/core"
)

// BuildPipeline returns the Table 1 sequence, honoring the options.
//
//  1. strip-rep-ret      9. reorder-bbs (+ splitting)
//  2. icf               10. peepholes (second run)
//  3. icp               11. uce
//  4. peepholes         12. fixup-branches (folded into emission)
//  5. inline-small      13. reorder-functions (HFSort)
//  6. simplify-ro-loads 14. sctc
//  7. icf (second run)  15. frame-opts
//  8. plt               16. shrink-wrapping
func BuildPipeline(opts core.Options) []core.Pass {
	var p []core.Pass
	add := func(enabled bool, pass core.Pass) {
		if enabled {
			p = append(p, pass)
		}
	}
	add(opts.Lite, LiteFilter{})
	add(opts.StripRepRet, StripRepRet{})
	add(opts.ICF, ICF{Round: 1})
	add(opts.ICP, ICP{})
	add(opts.Peepholes, Peepholes{Round: 1})
	add(opts.InlineSmall, InlineSmall{})
	add(opts.SimplifyROLoads, SimplifyROLoads{})
	add(opts.ICF, ICF{Round: 2})
	add(opts.PLT, PLTPass{})
	add(true, ReorderBBs{})
	add(opts.Peepholes, Peepholes{Round: 2})
	add(opts.UCE, UCE{})
	// fixup-branches: terminator materialization happens during code
	// emission (core/emit.go), exactly once per final layout, and is
	// redone after reorder-bbs as the paper notes.
	add(true, ReorderFunctions{})
	add(opts.SCTC, SCTC{})
	add(opts.FrameOpts, FrameOpts{})
	add(opts.ShrinkWrapping, ShrinkWrapping{})
	return p
}

// LiteFilter implements -lite: functions without profile samples are not
// rewritten at all.
type LiteFilter struct{}

// Name implements core.Pass.
func (LiteFilter) Name() string { return "lite-filter" }

// Run implements core.Pass.
func (LiteFilter) Run(ctx *core.BinaryContext) error {
	for _, fn := range ctx.Funcs {
		if fn.Simple && !fn.Sampled {
			fn.Simple = false
			fn.Reason = "lite mode: no profile samples"
			ctx.CountStat("lite-skipped", 1)
		}
	}
	return nil
}

// Package passes implements gobolt's optimization pipeline: the sixteen
// transformations of the paper's Table 1, in order. Per-function
// transformations are core.FunctionPass (schedulable over the
// PassManager's worker pool); whole-binary analyses (ICP, inline-small,
// reorder-functions, plt, and ICF's fold step) are core.Pass and run as
// sequential barriers between the parallel regions. ICF's expensive
// half — congruence-key hashing — is a FunctionPass (ICFHash), so only
// the cheap bucket-and-fold step remains a barrier.
package passes

import (
	"gobolt/internal/core"
)

// BuildPipeline returns the Table 1 sequence, honoring the options.
//
//  1. strip-rep-ret      9. reorder-bbs (+ splitting)
//  2. icf (hash ∥, fold) 10. peepholes (second run)
//  3. icp               11. uce
//  4. peepholes         12. fixup-branches (folded into emission)
//  5. inline-small      13. reorder-functions (HFSort)
//  6. simplify-ro-loads 14. sctc
//  7. icf (second run)  15. frame-opts
//  8. plt               16. shrink-wrapping
func BuildPipeline(opts core.Options) []core.Pass {
	opts = opts.Normalized()
	var p []core.Pass
	add := func(enabled bool, pass core.Pass) {
		if enabled {
			p = append(p, pass)
		}
	}
	each := func(enabled bool, fp core.FunctionPass) {
		add(enabled, core.ForEachFunction(fp))
	}
	each(opts.Lite, LiteFilter{})
	each(opts.StripRepRet, StripRepRet{})
	each(opts.ICF, ICFHash{Round: 1})
	add(opts.ICF, ICF{Round: 1})
	add(opts.ICP, ICP{})
	each(opts.Peepholes, Peepholes{Round: 1})
	add(opts.InlineSmall, InlineSmall{})
	each(opts.SimplifyROLoads, SimplifyROLoads{})
	each(opts.ICF, ICFHash{Round: 2})
	add(opts.ICF, ICF{Round: 2})
	add(opts.PLT, PLTPass{})
	each(true, ReorderBBs{})
	each(opts.Peepholes, Peepholes{Round: 2})
	each(opts.UCE, UCE{})
	// fixup-branches: terminator materialization happens during code
	// emission (core/emit.go), exactly once per final layout, and is
	// redone after reorder-bbs as the paper notes.
	add(true, ReorderFunctions{})
	each(opts.SCTC, SCTC{})
	each(opts.FrameOpts, FrameOpts{})
	each(opts.ShrinkWrapping, ShrinkWrapping{})
	return p
}

// LiteFilter implements -lite: functions without profile samples are not
// rewritten at all.
type LiteFilter struct{}

// Name implements core.FunctionPass.
func (LiteFilter) Name() string { return "lite-filter" }

// RunOnFunction implements core.FunctionPass.
func (LiteFilter) RunOnFunction(fc *core.FuncCtx, fn *core.BinaryFunction) error {
	if !fn.Sampled {
		fn.Simple = false
		fn.Reason = "lite mode: no profile samples"
		fc.CountStat("lite-skipped", 1)
	}
	return nil
}

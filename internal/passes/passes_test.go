package passes

import (
	"context"
	"testing"

	"gobolt/internal/cc"
	"gobolt/internal/core"
	"gobolt/internal/elfx"
	"gobolt/internal/ir"
	"gobolt/internal/isa"
	"gobolt/internal/ld"
	"gobolt/internal/obj"
	"gobolt/internal/perf"
	"gobolt/internal/profile"
	"gobolt/internal/uarch"
	"gobolt/internal/vm"
)

// optimize assembles the Figure 3 pipeline directly from core
// primitives — the reference driver path. Production callers go through
// the bolt package instead; the bolt e2e suite checks byte-identity of
// its staged Session against exactly this sequence.
func optimize(f *elfx.File, fd *profile.Fdata, opts core.Options) (*core.RewriteResult, *core.BinaryContext, error) {
	cx := context.Background()
	ctx, err := core.NewContext(cx, f, opts)
	if err != nil {
		return nil, nil, err
	}
	if fd != nil {
		if err := ctx.ApplyProfile(cx, fd); err != nil {
			return nil, ctx, err
		}
	}
	pm := core.NewPassManager(opts.Jobs)
	if err := pm.Run(cx, ctx, BuildPipeline(opts)); err != nil {
		return nil, ctx, err
	}
	res, err := ctx.Rewrite(cx)
	if err != nil {
		return nil, ctx, err
	}
	return res, ctx, nil
}

// buildAndRun compiles/links p and returns (file, result-of-run).
func buildAndRun(t *testing.T, p *ir.Program) (*elfx.File, uint64) {
	t.Helper()
	objs, err := cc.Compile(p, cc.DefaultOptions())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := ld.Link(objs, ld.Options{EmitRelocs: true})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return res.File, run(t, res.File)
}

func run(t *testing.T, f *elfx.File) uint64 {
	t.Helper()
	m, err := vm.New(f)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := m.Run(200_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !m.Halted() {
		t.Fatalf("did not halt")
	}
	return m.Result()
}

func record(t *testing.T, f *elfx.File, lbr bool) *profile.Fdata {
	t.Helper()
	mode := perf.DefaultMode()
	mode.LBR = lbr
	mode.Period = 256
	fd, _, err := perf.RecordFile(f, mode, 0)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	return fd
}

// workProgram builds a small but feature-complete program: hot/cold
// branches, a loop, calls (incl. a redundant spill), a jump table, a
// repz-ret function, duplicate (foldable) functions, an indirect call, a
// tail-call stub, and an exception path.
func workProgram() *ir.Program {
	// input table: 256 bytes with a strong bias.
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte((i * 131) % 256)
	}

	// Leaf compute functions (two identical bodies: ICF fodder).
	mkLeaf := func(name string, mul int64) *ir.Func {
		f := ir.NewFunc(name, "leaf.mir", 10)
		b := f.Blocks[0]
		b.Ops = []ir.Op{
			{Kind: ir.OpMov, Dst: isa.RAX, Src: isa.RDI},
			{Kind: ir.OpMovImm, Dst: isa.RCX, Imm: mul},
			{Kind: ir.OpMul, Dst: isa.RAX, Src: isa.RCX},
		}
		b.Term = ir.Term{Kind: ir.TermReturn}
		return f
	}
	leafA := mkLeaf("leafA", 3)
	leafDup1 := mkLeaf("dup1", 7)
	leafDup2 := mkLeaf("dup2", 7) // identical to dup1

	repz := ir.NewFunc("repzfn", "leaf.mir", 40)
	repz.RepzRet = true
	rb := repz.Blocks[0]
	rb.Ops = []ir.Op{
		{Kind: ir.OpMov, Dst: isa.RAX, Src: isa.RDI},
		{Kind: ir.OpAddImm, Dst: isa.RAX, Imm: 17},
	}
	rb.Term = ir.Term{Kind: ir.TermReturn}

	// Tail-call stub target.
	tailTarget := mkLeaf("tailTarget", 5)
	stub := ir.NewFunc("stubfn", "leaf.mir", 50)
	stub.Blocks[0].Term = ir.Term{Kind: ir.TermTailCall, Callee: "tailTarget"}

	// Thrower: throws when arg & 0xF == 0 (rare-ish).
	thrower := ir.NewFunc("thrower", "throw.mir", 60)
	tb := thrower.Blocks[0]
	thrBlk := thrower.AddBlock()
	okBlk := thrower.AddBlock()
	tb.Ops = []ir.Op{
		{Kind: ir.OpMov, Dst: isa.RAX, Src: isa.RDI},
		{Kind: ir.OpAndImm, Dst: isa.RAX, Imm: 0xF},
	}
	tb.Term = ir.Term{Kind: ir.TermBranch, Cc: isa.CondE, CmpReg: isa.RAX, CmpImm: 0,
		Then: thrBlk.Index, Else: okBlk.Index, Prob: 1.0 / 16}
	thrBlk.Cold = true
	thrBlk.Term = ir.Term{Kind: ir.TermThrow, LandingPad: -1}
	okBlk.Ops = []ir.Op{{Kind: ir.OpMov, Dst: isa.RAX, Src: isa.RDI}}
	okBlk.Term = ir.Term{Kind: ir.TermReturn}

	// Worker: branches on input byte, switch dispatch, calls leaves.
	worker := ir.NewFunc("worker", "work.mir", 100)
	worker.SavedRegs = []isa.Reg{isa.RBX, isa.R12}
	w0 := worker.Blocks[0]
	hot := worker.AddBlock()   // 1
	cold := worker.AddBlock()  // 2 (rare path)
	sw := worker.AddBlock()    // 3
	c0 := worker.AddBlock()    // 4
	c1 := worker.AddBlock()    // 5
	c2 := worker.AddBlock()    // 6
	c3 := worker.AddBlock()    // 7
	merge := worker.AddBlock() // 8
	lp := worker.AddBlock()    // 9 landing pad
	done := worker.AddBlock()  // 10

	w0.Ops = []ir.Op{
		{Kind: ir.OpMov, Dst: isa.RBX, Src: isa.RDI},
		{Kind: ir.OpMov, Dst: isa.R12, Src: isa.RDI},
		{Kind: ir.OpAndImm, Dst: isa.R12, Imm: 255},
		{Kind: ir.OpLoadByte, Dst: isa.RAX, Src: isa.R12, Sym: "input", Scale: 1},
	}
	w0.Term = ir.Term{Kind: ir.TermBranch, Cc: isa.CondL, CmpReg: isa.RAX, CmpImm: 230,
		Then: hot.Index, Else: cold.Index, Prob: 0.9}

	hot.Ops = []ir.Op{
		{Kind: ir.OpMov, Dst: isa.RDI, Src: isa.RBX},
		{Kind: ir.OpCall, Callee: "leafA", SpillReg: isa.R9, LandingPad: -1},
		{Kind: ir.OpAdd, Dst: isa.RBX, Src: isa.RAX},
	}
	hot.Term = ir.Term{Kind: ir.TermJump, Then: sw.Index}

	cold.Cold = true
	cold.Ops = []ir.Op{
		{Kind: ir.OpMov, Dst: isa.RDI, Src: isa.RBX},
		{Kind: ir.OpCall, Callee: "thrower", SpillReg: isa.NoReg, LandingPad: lp.Index},
		{Kind: ir.OpAdd, Dst: isa.RBX, Src: isa.RAX},
	}
	cold.Term = ir.Term{Kind: ir.TermJump, Then: sw.Index}

	sw.Ops = []ir.Op{
		{Kind: ir.OpMov, Dst: isa.RCX, Src: isa.R12},
		{Kind: ir.OpAndImm, Dst: isa.RCX, Imm: 3},
	}
	sw.Term = ir.Term{Kind: ir.TermSwitch, IndexReg: isa.RCX,
		Targets: []int{c0.Index, c1.Index, c2.Index, c3.Index}, PIC: true}

	for i, c := range []*ir.Block{c0, c1, c2, c3} {
		callee := "dup1"
		if i%2 == 1 {
			callee = "dup2"
		}
		c.Ops = []ir.Op{
			{Kind: ir.OpMov, Dst: isa.RDI, Src: isa.R12},
			{Kind: ir.OpCall, Callee: callee, SpillReg: isa.NoReg, LandingPad: -1},
			{Kind: ir.OpAdd, Dst: isa.RBX, Src: isa.RAX},
			{Kind: ir.OpAddImm, Dst: isa.RBX, Imm: int64(i)},
		}
		c.Term = ir.Term{Kind: ir.TermJump, Then: merge.Index}
	}

	// Indirect call through a function-pointer table + tail-call stub.
	merge.Ops = []ir.Op{
		{Kind: ir.OpMov, Dst: isa.RSI, Src: isa.R12},
		{Kind: ir.OpAndImm, Dst: isa.RSI, Imm: 1},
		{Kind: ir.OpMov, Dst: isa.RDI, Src: isa.R12},
		{Kind: ir.OpCallIndirect, Sym: "fptab", Src: isa.RSI, LandingPad: -1},
		{Kind: ir.OpAdd, Dst: isa.RBX, Src: isa.RAX},
		{Kind: ir.OpMov, Dst: isa.RDI, Src: isa.R12},
		{Kind: ir.OpCall, Callee: "stubfn", SpillReg: isa.NoReg, LandingPad: -1},
		{Kind: ir.OpAdd, Dst: isa.RBX, Src: isa.RAX},
	}
	merge.Term = ir.Term{Kind: ir.TermJump, Then: done.Index}

	lp.Cold = true
	lp.Ops = []ir.Op{{Kind: ir.OpAddImm, Dst: isa.RBX, Imm: 1000}}
	lp.Term = ir.Term{Kind: ir.TermJump, Then: sw.Index}

	done.Ops = []ir.Op{{Kind: ir.OpMov, Dst: isa.RAX, Src: isa.RBX}}
	done.Term = ir.Term{Kind: ir.TermReturn}

	// _start: loop over work items, accumulate checksum.
	start := ir.NewFunc("_start", "main.mir", 1)
	start.SavedRegs = []isa.Reg{isa.RBX, isa.R13}
	s0 := start.Blocks[0]
	loop := start.AddBlock()
	exit := start.AddBlock()
	s0.Ops = []ir.Op{
		{Kind: ir.OpMovImm, Dst: isa.RBX, Imm: 0},
		{Kind: ir.OpMovImm, Dst: isa.R13, Imm: 0},
	}
	s0.Term = ir.Term{Kind: ir.TermJump, Then: loop.Index}
	loop.Ops = []ir.Op{
		{Kind: ir.OpMov, Dst: isa.RDI, Src: isa.R13},
		{Kind: ir.OpCall, Callee: "worker", SpillReg: isa.NoReg, LandingPad: -1},
		{Kind: ir.OpAdd, Dst: isa.RBX, Src: isa.RAX},
		{Kind: ir.OpAddImm, Dst: isa.R13, Imm: 1},
	}
	loop.Term = ir.Term{Kind: ir.TermBranch, Cc: isa.CondL, CmpReg: isa.R13, CmpImm: 3000,
		Then: loop.Index, Else: exit.Index, Prob: 0.999}
	exit.Ops = []ir.Op{{Kind: ir.OpMov, Dst: isa.RAX, Src: isa.RBX}}
	exit.Term = ir.Term{Kind: ir.TermExit}

	return &ir.Program{
		Modules: []*ir.Module{
			{Name: "main", Funcs: []*ir.Func{start, worker}},
			{Name: "leaves", Funcs: []*ir.Func{leafA, leafDup1, leafDup2, repz, tailTarget, stub, thrower}},
		},
		Globals: []*ir.Global{
			{Name: "input", Data: data, Align: 8},
			{Name: "fptab", Data: make([]byte, 16), Align: 8, Writable: true},
		},
	}
}

func buildWork(t *testing.T) (*elfx.File, uint64) {
	t.Helper()
	p := workProgram()
	objs, err := cc.Compile(p, cc.DefaultOptions())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	// Wire the function-pointer table entries (leafA, repzfn).
	for _, o := range objs {
		for _, g := range o.Globals {
			if g.Name == "fptab" {
				g.Relocs = []obj.Reloc{
					{Off: 0, Type: obj.RelAbs64, Sym: "leafA"},
					{Off: 8, Type: obj.RelAbs64, Sym: "repzfn"},
				}
			}
		}
	}
	res, err := ld.Link(objs, ld.Options{EmitRelocs: true})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return res.File, run(t, res.File)
}

func TestBoltRoundTrip(t *testing.T) {
	f, want := buildWork(t)
	fd := record(t, f, true)
	if fd.TotalBranchCount() == 0 {
		t.Fatal("no profile collected")
	}
	res, ctx, err := optimize(f, fd, core.DefaultOptions())
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if res.MovedFuncs == 0 {
		t.Fatal("no functions moved")
	}
	got := run(t, res.File)
	if got != want {
		t.Fatalf("semantic change: got %d want %d", got, want)
	}
	// The pipeline must have exercised its headline passes.
	for _, stat := range []string{"strip-rep-ret", "icf-folded", "reorder-bbs-funcs", "split-functions"} {
		if ctx.Stats[stat] == 0 {
			t.Errorf("expected stat %q > 0 (stats: %v)", stat, ctx.Stats)
		}
	}
}

func TestBoltNonLBRProfile(t *testing.T) {
	f, want := buildWork(t)
	fd := record(t, f, false)
	if len(fd.Samples) == 0 {
		t.Fatal("no samples collected")
	}
	res, _, err := optimize(f, fd, core.DefaultOptions())
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if got := run(t, res.File); got != want {
		t.Fatalf("semantic change: got %d want %d", got, want)
	}
}

func TestBoltWithoutProfile(t *testing.T) {
	// No profile: layout stays, but rewriting must still be sound.
	f, want := buildWork(t)
	res, _, err := optimize(f, nil, core.DefaultOptions())
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if got := run(t, res.File); got != want {
		t.Fatalf("semantic change: got %d want %d", got, want)
	}
}

func TestBoltLiteMode(t *testing.T) {
	f, want := buildWork(t)
	fd := record(t, f, true)
	opts := core.DefaultOptions()
	opts.Lite = true
	res, ctx, err := optimize(f, fd, opts)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if got := run(t, res.File); got != want {
		t.Fatalf("semantic change: got %d want %d", got, want)
	}
	if ctx.Stats["lite-skipped"] == 0 {
		t.Error("lite mode skipped nothing")
	}
}

func TestDynoStatsImprove(t *testing.T) {
	f, _ := buildWork(t)
	fd := record(t, f, true)
	ctx, err := core.NewContext(context.Background(), f, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.ApplyProfile(context.Background(), fd); err != nil {
		t.Fatal(err)
	}
	before := ctx.CollectDynoStats()
	if err := core.RunPasses(context.Background(), ctx, BuildPipeline(ctx.Opts)); err != nil {
		t.Fatal(err)
	}
	after := ctx.CollectDynoStats()
	if after.TakenBranches >= before.TakenBranches {
		t.Errorf("taken branches did not drop: before %d after %d",
			before.TakenBranches, after.TakenBranches)
	}
}

func TestBoltSpeedsUpUnderSim(t *testing.T) {
	f, want := buildWork(t)
	fd := record(t, f, true)
	res, _, err := optimize(f, fd, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	measure := func(file *elfx.File) *uarch.Metrics {
		m, err := vm.New(file)
		if err != nil {
			t.Fatal(err)
		}
		sim := uarch.New(uarch.DefaultConfig())
		m.SetTracer(sim)
		if _, err := m.Run(0); err != nil {
			t.Fatal(err)
		}
		if m.Result() != want {
			t.Fatalf("checksum mismatch under sim: %d != %d", m.Result(), want)
		}
		return sim.Finish()
	}
	base := measure(f)
	opt := measure(res.File)
	sp := uarch.Speedup(base, opt)
	t.Logf("cycles base=%d opt=%d speedup=%.2f%% (taken: %d -> %d)",
		base.Cycles, opt.Cycles, 100*sp, base.TakenBranches, opt.TakenBranches)
	if opt.TakenBranches >= base.TakenBranches {
		t.Errorf("taken branches did not improve: %d -> %d", base.TakenBranches, opt.TakenBranches)
	}
}

package passes

import (
	"sort"

	"gobolt/internal/core"
	"gobolt/internal/dataflow"
	"gobolt/internal/isa"
)

// ICP promotes hot indirect calls to guarded direct calls (Table 1,
// pass 3): when the profile shows one callee dominating an indirect call
// site, the call is rewritten to
//
//	cmp  $hot_target, %reg
//	jne  Lind
//	call hot_target     ; direct: better BTB behavior, inlinable later
//	jmp  Lcont
//	Lind: call *%reg
//	Lcont: ...
//
// The transformation verifies with liveness analysis that FLAGS are dead
// at the site (the cmp clobbers them).
//
// ICP is a whole-binary pass (a sequential barrier under the
// PassManager): the CFG surgery is per-function, but promotion decisions
// read cross-function state (target addresses, the global call-target
// histogram) that later barriers may reshape.
type ICP struct{}

// Name implements core.Pass.
func (ICP) Name() string { return "icp" }

// Run implements core.Pass.
func (p ICP) Run(ctx *core.BinaryContext) error {
	threshold := ctx.Opts.ICPThreshold
	if threshold == 0 {
		threshold = 0.51
	}
	for _, fn := range ctx.SimpleFuncs() {
		// Collect sites first: block surgery invalidates iteration.
		type site struct {
			b               *core.BasicBlock
			i               int
			hot             string
			hotCount, total uint64
		}
		var sites []site
		for _, b := range fn.Blocks {
			for i := range b.Insts {
				in := &b.Insts[i]
				if in.I.Op != isa.CALLr {
					continue
				}
				hist := ctx.CallTargets[in.Addr]
				if len(hist) == 0 {
					continue
				}
				var total uint64
				names := make([]string, 0, len(hist))
				for n, c := range hist {
					total += c
					names = append(names, n)
				}
				sort.Slice(names, func(x, y int) bool {
					if hist[names[x]] != hist[names[y]] {
						return hist[names[x]] > hist[names[y]]
					}
					return names[x] < names[y]
				})
				hot := names[0]
				if float64(hist[hot]) < threshold*float64(total) {
					continue
				}
				target := ctx.ByName[hot]
				if target == nil || target.Addr >= 1<<31 {
					continue // must fit a cmp imm32
				}
				sites = append(sites, site{b: b, i: i, hot: hot, hotCount: hist[hot], total: total})
			}
		}
		// FLAGS liveness: compute per-block live-out once per function.
		if len(sites) == 0 {
			continue
		}
		liveOut := flagsLiveOut(fn)
		for s := len(sites) - 1; s >= 0; s-- {
			st := sites[s]
			if flagsLiveAfterInst(fn, st.b, st.i, liveOut) {
				ctx.CountStat("icp-flags-blocked", 1)
				continue
			}
			promote(ctx, fn, st.b, st.i, st.hot, st.hotCount, st.total)
			ctx.CountStat("icp-promoted", 1)
		}
		for i, b := range fn.Blocks {
			b.Index = i
		}
		fn.RebuildIndex()
	}
	return nil
}

// flagsLiveOut runs register liveness over the function and returns each
// block's live-out set (only FLAGS is consulted, but the analysis is the
// general one from the dataflow framework).
func flagsLiveOut(fn *core.BinaryFunction) []isa.RegSet {
	n := len(fn.Blocks)
	// The framework consumes each succs(i) result before the next call,
	// so one reusable buffer serves the whole fixpoint (this closure is
	// called O(blocks × iterations) times — a fresh slice per call
	// dominated the pass's allocations).
	var succBuf []int
	succs := func(i int) []int {
		out := succBuf[:0]
		for _, e := range fn.Blocks[i].Succs {
			out = append(out, e.To.Index)
		}
		for _, lp := range fn.Blocks[i].LPs {
			out = append(out, lp.Index)
		}
		succBuf = out
		return out
	}
	use := func(i int) isa.RegSet {
		b := fn.Blocks[i]
		var u, d isa.RegSet
		for k := range b.Insts {
			u |= b.Insts[k].I.Uses() &^ d
			d |= b.Insts[k].I.Defs()
		}
		return u
	}
	def := func(i int) isa.RegSet {
		b := fn.Blocks[i]
		var d isa.RegSet
		for k := range b.Insts {
			d |= b.Insts[k].I.Defs()
		}
		return d
	}
	_, liveOut := dataflow.Liveness(n, succs, use, def)
	return liveOut
}

// flagsLiveAfterInst reports whether FLAGS is live immediately after
// instruction i of block b.
func flagsLiveAfterInst(fn *core.BinaryFunction, b *core.BasicBlock, i int, liveOut []isa.RegSet) bool {
	uses := make([]isa.RegSet, len(b.Insts))
	defs := make([]isa.RegSet, len(b.Insts))
	for k := range b.Insts {
		uses[k] = b.Insts[k].I.Uses()
		defs[k] = b.Insts[k].I.Defs()
	}
	liveAfter := dataflow.LiveAtEachInst(uses, defs, liveOut[b.Index])
	return liveAfter[i]&isa.FlagsBit != 0
}

// promote performs the CFG surgery for one call site.
func promote(ctx *core.BinaryContext, fn *core.BinaryFunction, b *core.BasicBlock, i int, hot string, hotCount, total uint64) {
	call := b.Insts[i]
	reg := call.I.R1

	newBlock := func(label string) *core.BasicBlock {
		nb := &core.BasicBlock{
			Index: len(fn.Blocks),
			Label: label,
			CFIIn: call.CFIIdx,
		}
		fn.Blocks = append(fn.Blocks, nb)
		return nb
	}
	direct := newBlock(b.Label + ".icp_d")
	indirect := newBlock(b.Label + ".icp_i")
	cont := newBlock(b.Label + ".icp_c")

	// Continuation inherits the rest of the original block.
	cont.Insts = append(cont.Insts, b.Insts[i+1:]...)
	cont.Succs = b.Succs
	cont.LPs = b.LPs
	for _, e := range cont.Succs {
		replacePred(e.To, b, cont)
	}
	cont.ExecCount = b.ExecCount

	// Direct path.
	dc := call
	dc.I = isa.NewInst(isa.CALL)
	dc.Addr = 0
	dc.TargetSym = hot
	direct.Insts = []core.Inst{dc}
	direct.Succs = []core.Edge{{To: cont, Count: hotCount}}
	direct.ExecCount = hotCount
	cont.Preds = append(cont.Preds, direct)

	// Indirect fallback keeps the original call.
	ic := call
	ic.Addr = 0
	indirect.Insts = []core.Inst{ic}
	indirect.Succs = []core.Edge{{To: cont, Count: total - hotCount}}
	indirect.ExecCount = total - hotCount
	cont.Preds = append(cont.Preds, indirect)

	// Landing pads propagate to both call copies.
	if call.LP != nil {
		direct.LPs = []*core.BasicBlock{call.LP}
		indirect.LPs = []*core.BasicBlock{call.LP}
	}

	// The original block now compares and branches.
	cmp := core.Inst{CFIIdx: call.CFIIdx, File: call.File, Line: call.Line}
	cmp.I = isa.NewInst(isa.CMPri)
	cmp.I.R1 = reg
	cmp.I.Imm = 1 << 30 // placeholder; patched via ImmSym at emission
	cmp.ImmSym = hot
	jcc := core.Inst{CFIIdx: call.CFIIdx}
	jcc.I = isa.NewInst(isa.JCC)
	jcc.I.Cc = isa.CondE
	b.Insts = append(b.Insts[:i:i], cmp, jcc)
	b.Succs = []core.Edge{{To: direct, Count: hotCount}, {To: indirect, Count: total - hotCount}}
	b.LPs = nil
	direct.Preds = []*core.BasicBlock{b}
	indirect.Preds = []*core.BasicBlock{b}
	_ = ctx
}

func replacePred(b *core.BasicBlock, old, nw *core.BasicBlock) {
	for i, p := range b.Preds {
		if p == old {
			b.Preds[i] = nw
		}
	}
}

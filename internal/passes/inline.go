package passes

import (
	"gobolt/internal/core"
	"gobolt/internal/isa"
)

// InlineSmall inlines tiny leaf functions at the binary level (Table 1,
// pass 5). The paper notes this is deliberately limited compared to a
// compiler: the remaining opportunities come from more accurate profile
// data, ICP-promoted calls, and cross-module calls the compiler could not
// see. A callee qualifies when it is one straight-line block of
// register/immediate instructions ending in ret — no stack traffic, no
// calls, no memory-ordering hazards to reason about.
//
// InlineSmall is a whole-binary pass (a sequential barrier under the
// PassManager): it reads callee bodies while rewriting callers, so
// running it per-function would race with concurrent callee mutation.
type InlineSmall struct{}

// MaxInlineInsts bounds the inlined body size.
const MaxInlineInsts = 8

// Name implements core.Pass.
func (InlineSmall) Name() string { return "inline-small" }

// Run implements core.Pass.
func (InlineSmall) Run(ctx *core.BinaryContext) error {
	for _, fn := range ctx.SimpleFuncs() {
		changed := false
		for _, b := range fn.Blocks {
			for i := 0; i < len(b.Insts); i++ {
				in := &b.Insts[i]
				if in.I.Op != isa.CALL || in.TargetSym == "" || in.LP != nil {
					continue
				}
				callee := ctx.ByName[in.TargetSym]
				if callee == nil || callee == fn {
					continue
				}
				for callee.FoldedInto != nil {
					callee = callee.FoldedInto
				}
				body, ok := inlinableBody(callee)
				if !ok {
					continue
				}
				// Splice: replace the call with the body.
				spliced := make([]core.Inst, 0, len(b.Insts)+len(body)-1)
				spliced = append(spliced, b.Insts[:i]...)
				for _, bi := range body {
					ni := core.Inst{I: bi.I, CFIIdx: in.CFIIdx, File: bi.File, Line: bi.Line, MemTarget: bi.MemTarget}
					spliced = append(spliced, ni)
				}
				spliced = append(spliced, b.Insts[i+1:]...)
				b.Insts = spliced
				i += len(body) - 1
				changed = true
				ctx.CountStat("inline-small", 1)
			}
		}
		if changed {
			fn.RebuildIndex()
		}
	}
	return nil
}

// inlinableBody returns the callee's instructions sans ret if it
// qualifies.
func inlinableBody(callee *core.BinaryFunction) ([]core.Inst, bool) {
	if !callee.Simple || callee.HasLSDA || len(callee.Blocks) != 1 {
		return nil, false
	}
	b := callee.Blocks[0]
	if len(b.Insts) == 0 || len(b.Insts) > MaxInlineInsts+1 {
		return nil, false
	}
	last := b.LastInst()
	if !last.I.IsReturn() {
		return nil, false
	}
	body := b.Insts[:len(b.Insts)-1]
	for i := range body {
		in := &body[i]
		switch in.I.Op {
		case isa.PUSH, isa.POP, isa.CALL, isa.CALLr, isa.CALLm,
			isa.JMP, isa.JCC, isa.JMPr, isa.JMPm, isa.RET, isa.REPZRET,
			isa.HLT, isa.UD2:
			return nil, false
		}
		// Any RSP/RBP traffic disqualifies (stack discipline must be
		// preserved exactly).
		touched := in.I.Uses() | in.I.Defs()
		if touched.Has(isa.RSP) || touched.Has(isa.RBP) {
			return nil, false
		}
	}
	return body, true
}

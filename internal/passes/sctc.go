package passes

import (
	"gobolt/internal/core"
	"gobolt/internal/isa"
)

// SCTC simplifies conditional tail calls (Table 1, pass 14): the shape
//
//	jcc  Lstub        ...        Lstub: jmp other_function
//
// becomes a direct conditional tail call `jcc other_function`, removing a
// taken jump from the hot path; the stub block dies if it has no other
// predecessors.
type SCTC struct{}

// Name implements core.FunctionPass.
func (SCTC) Name() string { return "sctc" }

// RunOnFunction implements core.FunctionPass.
func (SCTC) RunOnFunction(fc *core.FuncCtx, fn *core.BinaryFunction) error {
	changed := false
	for _, b := range fn.Blocks {
		last := b.LastInst()
		if last == nil || last.I.Op != isa.JCC || last.TargetSym != "" || len(b.Succs) != 2 {
			continue
		}
		stub := b.Succs[0].To // taken edge
		if stub == nil || stub.IsLP || stub.IsEntry || len(stub.Preds) != 1 {
			continue
		}
		tgt, ok := tailCallStub(stub)
		if !ok {
			continue
		}
		// Retarget the conditional branch straight at the function.
		last.TargetSym = tgt
		takenCount := b.Succs[0].Count
		b.Succs = b.Succs[1:] // only the fall-through remains
		// Remove the stub block.
		for i, blk := range fn.Blocks {
			if blk == stub {
				fn.Blocks = append(fn.Blocks[:i], fn.Blocks[i+1:]...)
				break
			}
		}
		fc.CountStat("sctc", 1)
		fc.CountStat("sctc-count", int64(takenCount))
		changed = true
	}
	if changed {
		for i, blk := range fn.Blocks {
			blk.Index = i
		}
		fn.RebuildIndex()
	}
	return nil
}

// tailCallStub matches a block that only jumps to another function.
func tailCallStub(b *core.BasicBlock) (string, bool) {
	if len(b.Succs) != 0 || len(b.Insts) != 1 {
		return "", false
	}
	in := &b.Insts[0]
	if in.I.Op == isa.JMP && in.TargetSym != "" {
		return in.TargetSym, true
	}
	return "", false
}

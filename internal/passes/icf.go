package passes

import (
	"fmt"
	"strings"

	"gobolt/internal/core"
)

// ICF folds functions with identical semantics (Table 1, passes 2 and 7).
// Unlike linker ICF, it operates on the *reconstructed CFG*, so it can
// fold functions containing jump tables and functions that were not
// compiled with -ffunction-sections: bodies are compared structurally
// with internal control-flow targets normalized to block indices and
// external references symbolized (paper §4: ~3% size win over the
// linker's pass on HHVM).
//
// ICF runs in two pipeline steps: key computation is sharded across the
// worker pool (ICFHash, a FunctionPass — each function's congruence key
// depends only on that function), while the fold itself stays a short
// sequential barrier (ICF.Run compares and mutates arbitrary function
// pairs, so it cannot run per-function). Splitting the expensive half
// out takes both ICF rounds off the whole-binary barrier list.

// ICFHash computes each candidate function's congruence key ahead of
// the fold. Schedule it (via ForEachFunction) immediately before the
// matching ICF round.
type ICFHash struct{ Round int }

// Name implements core.FunctionPass.
func (p ICFHash) Name() string { return fmt.Sprintf("icf-%d-hash", p.Round) }

// RunOnFunction implements core.FunctionPass.
func (p ICFHash) RunOnFunction(fc *core.FuncCtx, fn *core.BinaryFunction) error {
	if icfEligible(fn) {
		fn.ICFKey = icfKey(fn)
		fc.CountStat("icf-hashed", 1)
	}
	return nil
}

// icfEligible reports whether ICF may consider folding fn.
func icfEligible(fn *core.BinaryFunction) bool {
	if !fn.Simple || fn.FoldedInto != nil || fn.Name == "_start" {
		return false
	}
	// Conservative: exception tables complicate folding.
	return !fn.HasLSDA
}

// ICF is the fold step: a sequential barrier that buckets the
// precomputed keys and folds congruent functions.
type ICF struct{ Round int }

// Name implements core.Pass.
func (p ICF) Name() string { return fmt.Sprintf("icf-%d", p.Round) }

// Run implements core.Pass. Functions are visited in the context's
// address-sorted order, so the kept (canonical) member of every bucket
// is deterministic regardless of how the keys were computed.
func (p ICF) Run(ctx *core.BinaryContext) error {
	buckets := map[string]*core.BinaryFunction{}
	for _, fn := range ctx.Funcs {
		if !icfEligible(fn) {
			continue
		}
		key := fn.ICFKey
		// Consume the cached key: bodies may change before the next
		// round recomputes it. Compute on demand when ICF runs without
		// a preceding ICFHash pass.
		fn.ICFKey = ""
		if key == "" {
			key = icfKey(fn)
		}
		if kept, ok := buckets[key]; ok {
			fn.FoldedInto = kept
			kept.Aliases = append(kept.Aliases, fn.Name)
			kept.ExecCount += fn.ExecCount
			// Merge block profile so layout decisions see total heat.
			for i, b := range fn.Blocks {
				if i < len(kept.Blocks) {
					kept.Blocks[i].ExecCount += b.ExecCount
					for k := range b.Succs {
						if k < len(kept.Blocks[i].Succs) {
							kept.Blocks[i].Succs[k].Count += b.Succs[k].Count
							kept.Blocks[i].Succs[k].Mispreds += b.Succs[k].Mispreds
						}
					}
				}
			}
			ctx.CountStat("icf-folded", 1)
			ctx.CountStat("icf-bytes", int64(fn.Size))
			continue
		}
		buckets[key] = fn
	}
	return nil
}

// icfKey renders a function body to a canonical string: block boundaries,
// instructions with intra-function targets as block indices, external
// targets as symbols, memory targets as absolute addresses (data does not
// move), and jump tables as target-index sequences.
func icfKey(fn *core.BinaryFunction) string {
	blockIdx := map[*core.BasicBlock]int{}
	for i, b := range fn.Blocks {
		blockIdx[b] = i
	}
	// The function's own jump tables are position-dependent data; the
	// *structure* (entry target blocks) is compared instead, so two
	// clones with distinct table addresses still fold — the capability
	// linkers lack (§4).
	ownJT := map[uint64]bool{}
	for _, jt := range fn.JTs {
		ownJT[jt.Addr] = true
	}
	var sb strings.Builder
	for _, b := range fn.Blocks {
		fmt.Fprintf(&sb, "[%d]", blockIdx[b])
		for i := range b.Insts {
			in := &b.Insts[i]
			inst := in.I
			// Normalize branch targets out of the byte-level fields.
			inst.TargetAddr = 0
			inst.Target = -1
			fmt.Fprintf(&sb, "%d/%d/%d/%d/%d;", inst.Op, inst.R1, inst.R2, inst.Cc, inst.Imm)
			if ownJT[in.MemTarget] {
				sb.WriteString("Mjt;")
			} else if in.MemTarget != 0 {
				fmt.Fprintf(&sb, "M%x;", in.MemTarget)
			} else if in.I.HasMem() {
				m := in.I.M
				fmt.Fprintf(&sb, "m%d/%d/%d/%d;", m.Base, m.Index, m.Scale, m.Disp)
			}
			if in.TargetSym != "" {
				fmt.Fprintf(&sb, "S%s;", in.TargetSym)
			}
			if in.JT != nil {
				fmt.Fprintf(&sb, "JT%v:", in.JT.PIC)
				for _, t := range in.JT.Targets {
					fmt.Fprintf(&sb, "%d,", blockIdx[t])
				}
				sb.WriteByte(';')
			}
		}
		sb.WriteString("->")
		for _, e := range b.Succs {
			fmt.Fprintf(&sb, "%d,", blockIdx[e.To])
		}
		sb.WriteByte('|')
	}
	return sb.String()
}

package passes

import (
	"gobolt/internal/core"
	"gobolt/internal/hfsort"
	"gobolt/internal/isa"
	"gobolt/internal/layout"
	"gobolt/internal/profile"
)

// ReorderBBs is the layout workhorse (Table 1, pass 9): it reorders each
// profiled function's blocks so the hottest successor falls through, and
// marks never-executed blocks for the cold fragment (function splitting,
// -split-functions / -split-all-cold / -split-eh).
type ReorderBBs struct{}

// Name implements core.FunctionPass.
func (ReorderBBs) Name() string { return "reorder-bbs" }

// RunOnFunction implements core.FunctionPass.
func (ReorderBBs) RunOnFunction(fc *core.FuncCtx, fn *core.BinaryFunction) error {
	if !fn.Sampled || len(fn.Blocks) <= 2 {
		return nil
	}
	if algo := fc.Opts.ReorderBlocks; algo != layout.AlgoNone && algo != "" {
		reorderOne(fn, algo)
		fc.CountStat("reorder-bbs-funcs", 1)
	}
	if fc.Opts.SplitFunctions > 0 {
		markCold(fc, fn)
	}
	return nil
}

// reorderOne partitions hot/cold and lays out the hot subgraph.
func reorderOne(fn *core.BinaryFunction, algo layout.Algorithm) {
	var hot, cold []*core.BasicBlock
	hot = append(hot, fn.Blocks[0])
	for _, b := range fn.Blocks {
		if b.IsEntry {
			continue
		}
		if b.ExecCount > 0 {
			hot = append(hot, b)
		} else {
			cold = append(cold, b)
		}
	}
	idx := map[*core.BasicBlock]int{}
	for i, b := range hot {
		idx[b] = i
	}
	g := &layout.Graph{N: len(hot)}
	for _, b := range hot {
		g.Weight = append(g.Weight, b.ExecCount)
		size := 0
		for i := range b.Insts {
			size += int(b.Insts[i].Size)
			if b.Insts[i].Size == 0 {
				size += isa.InstLen(&b.Insts[i].I, true)
			}
		}
		g.Size = append(g.Size, size)
	}
	for _, b := range hot {
		for _, e := range b.Succs {
			if j, ok := idx[e.To]; ok && e.Count > 0 {
				g.Edges = append(g.Edges, layout.Edge{From: idx[b], To: j, Weight: e.Count})
			}
		}
	}
	order := layout.Reorder(g, algo)
	newBlocks := make([]*core.BasicBlock, 0, len(fn.Blocks))
	for _, i := range order {
		newBlocks = append(newBlocks, hot[i])
	}
	newBlocks = append(newBlocks, cold...)
	fn.Blocks = newBlocks
	for i, b := range fn.Blocks {
		b.Index = i
	}
	// Indices changed: rebuild the address lookup used by profile and
	// rewrite mapping.
	fn.RebuildIndex()
}

// markCold assigns cold blocks to the cold fragment. -split-functions
// levels: 1 splits only never-executed blocks; >=2 also splits blocks
// whose count is negligible next to the function's hottest block
// (level 3, the paper's setting, uses a 1/64 threshold).
func markCold(fc *core.FuncCtx, fn *core.BinaryFunction) {
	var maxCount uint64
	for _, b := range fn.Blocks {
		if b.ExecCount > maxCount {
			maxCount = b.ExecCount
		}
	}
	threshold := uint64(0)
	if fc.Opts.SplitFunctions >= 2 {
		threshold = maxCount / 64
	}
	anyCold := false
	for _, b := range fn.Blocks {
		if b.IsEntry || b.ExecCount > threshold {
			continue
		}
		if !fc.Opts.SplitAllCold && !b.IsLP {
			continue
		}
		if b.IsLP && !fc.Opts.SplitEH {
			continue
		}
		b.IsCold = true
		anyCold = true
		fc.CountStat("split-cold-blocks", 1)
	}
	if anyCold {
		fn.IsSplit = true
		fc.CountStat("split-functions", 1)
	}
}

// ReorderFunctions applies HFSort to the dynamic call graph (Table 1,
// pass 13; §5.3). With LBR profiles the graph comes from branch records
// into function entries; without LBR it is approximated from samples in
// blocks containing direct calls — indirect calls are invisible, exactly
// the limitation the paper describes.
type ReorderFunctions struct{}

// Name implements core.Pass.
func (ReorderFunctions) Name() string { return "reorder-functions" }

// Run implements core.Pass.
func (ReorderFunctions) Run(ctx *core.BinaryContext) error {
	algo := ctx.Opts.ReorderFunctions
	if algo == hfsort.AlgoNone || algo == "" {
		return nil
	}
	g := &profile.CallGraph{Nodes: map[string]uint64{}, Edges: map[[2]string]uint64{}}
	sizes := map[string]uint64{}
	for _, fn := range ctx.Funcs {
		sizes[fn.Name] = fn.Size
		if fn.ExecCount > 0 {
			g.Nodes[fn.Name] = fn.ExecCount
		}
	}
	if ctx.ProfileLBR {
		for e, w := range ctx.CallEdges {
			g.Edges[e] += w
		}
	} else {
		// Non-LBR approximation: attribute a block's samples to the
		// direct calls it contains.
		for _, fn := range ctx.Funcs {
			if !fn.Simple {
				continue
			}
			total := uint64(0)
			for _, b := range fn.Blocks {
				total += b.ExecCount
				if b.ExecCount == 0 {
					continue
				}
				for i := range b.Insts {
					in := &b.Insts[i]
					if in.I.Op == isa.CALL && in.TargetSym != "" {
						g.Edges[[2]string{fn.Name, in.TargetSym}] += b.ExecCount
					}
				}
			}
			if total > 0 {
				g.Nodes[fn.Name] = total
			}
		}
	}
	ctx.FuncOrder = hfsort.Order(g, sizes, algo)
	ctx.CountStat("reorder-functions", int64(len(ctx.FuncOrder)))
	return nil
}

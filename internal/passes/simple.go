package passes

import (
	"gobolt/internal/core"
	"gobolt/internal/isa"
)

// StripRepRet rewrites `repz retq` (a legacy AMD branch-predictor
// workaround) into plain `retq`, reclaiming one I-cache byte per return
// (Table 1, pass 1).
type StripRepRet struct{}

// Name implements core.FunctionPass.
func (StripRepRet) Name() string { return "strip-rep-ret" }

// RunOnFunction implements core.FunctionPass.
func (StripRepRet) RunOnFunction(fc *core.FuncCtx, fn *core.BinaryFunction) error {
	for _, b := range fn.Blocks {
		for i := range b.Insts {
			if b.Insts[i].I.Op == isa.REPZRET {
				b.Insts[i].I.Op = isa.RET
				fc.CountStat("strip-rep-ret", 1)
			}
		}
	}
	return nil
}

// Peepholes performs the simple local rewrites of Table 1 pass 4/10:
// self-move elimination and double-jump threading (a jump to a block that
// only jumps again is retargeted).
type Peepholes struct{ Round int }

// Name implements core.FunctionPass.
func (p Peepholes) Name() string { return "peepholes" }

// RunOnFunction implements core.FunctionPass.
func (p Peepholes) RunOnFunction(fc *core.FuncCtx, fn *core.BinaryFunction) error {
	for _, b := range fn.Blocks {
		// Remove mov %r,%r.
		kept := b.Insts[:0]
		for i := range b.Insts {
			in := b.Insts[i]
			if in.I.Op == isa.MOVrr && in.I.R1 == in.I.R2 {
				fc.CountStat("peephole-selfmove", 1)
				continue
			}
			kept = append(kept, in)
		}
		b.Insts = kept
	}
	// Jump threading: an edge into an empty block whose only content
	// is an unconditional jump can go straight to its target.
	for _, b := range fn.Blocks {
		for k := range b.Succs {
			t := b.Succs[k].To
			for t != nil && isTrivialForwarder(t) && t.Succs[0].To != t {
				nt := t.Succs[0].To
				if nt == b {
					break
				}
				removePred(t, b)
				nt.Preds = append(nt.Preds, b)
				b.Succs[k].To = nt
				fc.CountStat("peephole-jump-thread", 1)
				t = nt
			}
		}
	}
	// Branch targets recorded inside JCC/JMP instructions follow the
	// edges at emission; nothing else to fix here.
	return nil
}

// isTrivialForwarder reports a block with no real instructions whose sole
// successor is unconditional — landing pads are excluded (the unwinder
// targets them directly).
func isTrivialForwarder(b *core.BasicBlock) bool {
	if b.IsLP || b.IsEntry || len(b.Succs) != 1 {
		return false
	}
	for i := range b.Insts {
		if b.Insts[i].I.Op != isa.JMP && b.Insts[i].I.Op != isa.NOP {
			return false
		}
	}
	return true
}

func removePred(b *core.BasicBlock, p *core.BasicBlock) {
	for i, x := range b.Preds {
		if x == p {
			b.Preds = append(b.Preds[:i], b.Preds[i+1:]...)
			return
		}
	}
}

// UCE eliminates unreachable basic blocks (Table 1, pass 11): anything
// not reachable from the entry via control-flow or exception edges.
type UCE struct{}

// Name implements core.FunctionPass.
func (UCE) Name() string { return "uce" }

// RunOnFunction implements core.FunctionPass.
func (UCE) RunOnFunction(fc *core.FuncCtx, fn *core.BinaryFunction) error {
	if len(fn.Blocks) == 0 {
		return nil
	}
	reach := map[*core.BasicBlock]bool{}
	var stack []*core.BasicBlock
	push := func(b *core.BasicBlock) {
		if b != nil && !reach[b] {
			reach[b] = true
			stack = append(stack, b)
		}
	}
	push(fn.Blocks[0])
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range b.Succs {
			push(e.To)
		}
		for _, lp := range b.LPs {
			push(lp)
		}
		if last := b.LastInst(); last != nil && last.JT != nil {
			for _, t := range last.JT.Targets {
				push(t)
			}
		}
	}
	if len(reach) == len(fn.Blocks) {
		return nil
	}
	var kept []*core.BasicBlock
	for _, b := range fn.Blocks {
		if reach[b] {
			kept = append(kept, b)
		} else {
			fc.CountStat("uce-blocks", 1)
			// Unlink from successor pred lists.
			for _, e := range b.Succs {
				removePred(e.To, b)
			}
		}
	}
	fn.Blocks = kept
	for i, b := range fn.Blocks {
		b.Index = i
	}
	fn.RebuildIndex()
	return nil
}

// SimplifyROLoads converts loads from read-only data at statically known
// addresses into immediate moves, trading D-cache pressure for I-cache
// bytes only when the new encoding is not larger (Table 1, pass 6). The
// pass only reads shared state (.rodata bytes), so it parallelizes.
type SimplifyROLoads struct{}

// Name implements core.FunctionPass.
func (SimplifyROLoads) Name() string { return "simplify-ro-loads" }

// RunOnFunction implements core.FunctionPass.
func (SimplifyROLoads) RunOnFunction(fc *core.FuncCtx, fn *core.BinaryFunction) error {
	rodata := fc.File.Section(".rodata")
	if rodata == nil {
		return nil
	}
	for _, b := range fn.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			if in.MemTarget == 0 || !rodata.Contains(in.MemTarget) {
				continue
			}
			var width int
			switch in.I.Op {
			case isa.MOVrm:
				width = 8
			case isa.MOVZXBrm:
				width = 1
			case isa.MOVSXDrm:
				width = 4
			default:
				continue
			}
			raw, err := fc.File.ReadAt(in.MemTarget, width)
			if err != nil {
				continue
			}
			var v uint64
			for k := width - 1; k >= 0; k-- {
				v = v<<8 | uint64(raw[k])
			}
			if in.I.Op == isa.MOVSXDrm {
				v = uint64(int64(int32(v)))
			}
			// Abort if the immediate form is larger (paper policy).
			imm := int64(v)
			var newInst isa.Inst
			if imm >= -1<<31 && imm < 1<<31 {
				newInst = isa.NewInst(isa.MOVri)
			} else {
				newInst = isa.NewInst(isa.MOVabs)
			}
			newInst.R1 = in.I.R1
			newInst.Imm = imm
			oldLen := int(in.Size)
			newLen := isa.InstLen(&newInst, true)
			if newLen > oldLen {
				fc.CountStat("simplify-ro-loads-aborted", 1)
				continue
			}
			// Do not simplify loads feeding jump-table dispatch.
			if in.JT != nil {
				continue
			}
			in.I = newInst
			in.MemTarget = 0
			fc.CountStat("simplify-ro-loads", 1)
		}
	}
	return nil
}

// PLTPass removes the indirection of calls routed through PLT stubs: the
// GOT binding is known at rewrite time, so `call stub` becomes a direct
// call to the target (Table 1, pass 8). It stays a whole-binary barrier
// pass: the early-out on an empty stub map costs nothing, and it anchors
// the sequence point between the ICF round before it and the parallel
// reorder region after.
type PLTPass struct{}

// Name implements core.Pass.
func (PLTPass) Name() string { return "plt" }

// Run implements core.Pass.
func (PLTPass) Run(ctx *core.BinaryContext) error {
	if len(ctx.PLTStubs) == 0 {
		return nil
	}
	for _, fn := range ctx.SimpleFuncs() {
		for _, b := range fn.Blocks {
			for i := range b.Insts {
				in := &b.Insts[i]
				if in.I.Op != isa.CALL || in.TargetSym != "" {
					continue
				}
				target, ok := ctx.PLTStubs[in.I.TargetAddr]
				if !ok {
					continue
				}
				if g := ctx.FuncByAddr(target); g != nil {
					in.TargetSym = g.Name
					ctx.CountStat("plt-calls", 1)
				}
			}
		}
	}
	return nil
}

package vm

import (
	"fmt"

	"gobolt/internal/cfi"
	"gobolt/internal/isa"
)

// unwind implements the exception runtime: starting from the return
// address of the `call __throw` site, it walks frames using the binary's
// CFI, restoring callee-saved registers from their spill slots, until a
// frame's LSDA covers the faulting call site; it then returns the landing
// pad address. This is the machinery that makes CFI load-bearing: if the
// rewriter emits stale CFI or fails to update the LSDA after moving
// blocks, unwinding lands in the weeds and tests fail.
//
// Convention: the caller (Run) has NOT pushed the __throw return address;
// retAddr is the address after the call instruction and RSP is still the
// thrower's call-site RSP.
func (m *Machine) unwind(retAddr uint64) (uint64, error) {
	pc := retAddr
	for depth := 0; depth < 1024; depth++ {
		fde, ok := cfi.FindFDE(m.fdes, pc-1)
		if !ok {
			return 0, fmt.Errorf("vm: unwind: no FDE for %#x", pc-1)
		}
		off := uint32(pc - 1 - fde.Start)
		state, err := fde.Evaluate(off)
		if err != nil {
			return 0, fmt.Errorf("vm: unwind at %#x: %w", pc, err)
		}
		cfa := m.Regs[state.CfaReg] + uint64(int64(state.CfaOff))

		// Does this frame handle the exception?
		if fde.LSDA != 0 {
			lsda, err := cfi.DecodeLSDA(m.lsdaData, uint32(fde.LSDA-m.lsdaBase))
			if err != nil {
				return 0, fmt.Errorf("vm: unwind: %w", err)
			}
			if lp, _, ok := lsda.Lookup(off); ok {
				// Enter the landing pad in this frame. The pad's first
				// instruction re-establishes RSP from RBP, so only the
				// registers of *popped* frames needed restoring.
				return lp, nil
			}
		}

		// Pop this frame: restore its saved registers, move to caller.
		for reg, slot := range state.Saved {
			v, err := m.read(cfa+uint64(int64(slot)), 8)
			if err != nil {
				return 0, fmt.Errorf("vm: unwind: restoring r%d: %w", reg, err)
			}
			m.Regs[reg] = v
		}
		ra, err := m.read(cfa-8, 8)
		if err != nil {
			return 0, fmt.Errorf("vm: unwind: return address: %w", err)
		}
		m.Regs[isa.RSP] = cfa
		pc = ra
	}
	return 0, fmt.Errorf("vm: unwind: no handler found (stack exhausted)")
}

package vm

import (
	"fmt"

	"gobolt/internal/isa"
)

// effAddr computes the effective address of a memory operand at pc with
// instruction length n (RIP-relative displacements are end-relative).
func (m *Machine) effAddr(mem *isa.Mem, pc uint64, n uint8) uint64 {
	if mem.RIP {
		return pc + uint64(n) + uint64(int64(mem.Disp))
	}
	addr := uint64(int64(mem.Disp))
	if mem.Base != isa.NoReg {
		addr += m.Regs[mem.Base]
	}
	if mem.Index != isa.NoReg {
		addr += m.Regs[mem.Index] * uint64(mem.Scale)
	}
	return addr
}

func (m *Machine) setFlagsAdd(a, b, r uint64) {
	m.zf = r == 0
	m.sf = int64(r) < 0
	m.cf = r < a
	m.of = (a^r)&(b^r)>>63 != 0
}

func (m *Machine) setFlagsSub(a, b, r uint64) {
	m.zf = r == 0
	m.sf = int64(r) < 0
	m.cf = a < b
	m.of = (a^b)&(a^r)>>63 != 0
}

func (m *Machine) setFlagsLogic(r uint64) {
	m.zf = r == 0
	m.sf = int64(r) < 0
	m.cf = false
	m.of = false
}

// cond evaluates a condition code against current flags.
func (m *Machine) cond(c isa.Cond) (bool, error) {
	switch c {
	case isa.CondE:
		return m.zf, nil
	case isa.CondNE:
		return !m.zf, nil
	case isa.CondL:
		return m.sf != m.of, nil
	case isa.CondGE:
		return m.sf == m.of, nil
	case isa.CondLE:
		return m.zf || m.sf != m.of, nil
	case isa.CondG:
		return !m.zf && m.sf == m.of, nil
	case isa.CondB:
		return m.cf, nil
	case isa.CondAE:
		return !m.cf, nil
	case isa.CondBE:
		return m.cf || m.zf, nil
	case isa.CondA:
		return !m.cf && !m.zf, nil
	case isa.CondS:
		return m.sf, nil
	case isa.CondNS:
		return !m.sf, nil
	case isa.CondO:
		return m.of, nil
	case isa.CondNO:
		return !m.of, nil
	}
	return false, fmt.Errorf("vm: unsupported condition %v", c)
}

// Run executes up to budget instructions (0 = unlimited) and returns why
// it stopped. Errors indicate guest faults (wild jumps, unmapped memory,
// unhandled exceptions) — i.e., rewriter bugs.
func (m *Machine) Run(budget uint64) (StopReason, error) {
	executed := uint64(0)
	for !m.halted {
		if budget != 0 && executed >= budget {
			return StopBudget, nil
		}
		d, err := m.fetch(m.rip)
		if err != nil {
			return StopHalt, err
		}
		in := &d.inst
		pc := m.rip
		next := pc + uint64(d.size)
		m.C.Instructions++
		executed++
		if m.tracer != nil {
			m.tracer.Inst(pc, d.size)
		}

		switch in.Op {
		case isa.MOVrr:
			m.Regs[in.R1] = m.Regs[in.R2]
		case isa.MOVri, isa.MOVabs:
			m.Regs[in.R1] = uint64(in.Imm)
		case isa.MOVrm, isa.MOVZXBrm, isa.MOVSXDrm:
			addr := m.effAddr(&in.M, pc, d.size)
			size := 8
			switch in.Op {
			case isa.MOVZXBrm:
				size = 1
			case isa.MOVSXDrm:
				size = 4
			}
			v, err := m.read(addr, size)
			if err != nil {
				return StopHalt, err
			}
			if in.Op == isa.MOVSXDrm {
				v = uint64(int64(int32(v)))
			}
			m.Regs[in.R1] = v
			m.C.Loads++
			if m.tracer != nil {
				m.tracer.Mem(addr, uint8(size), false)
			}
		case isa.MOVmr:
			addr := m.effAddr(&in.M, pc, d.size)
			if err := m.write(addr, m.Regs[in.R1], 8); err != nil {
				return StopHalt, err
			}
			m.C.Stores++
			if m.tracer != nil {
				m.tracer.Mem(addr, 8, true)
			}
		case isa.LEA:
			m.Regs[in.R1] = m.effAddr(&in.M, pc, d.size)
		case isa.ADDrr:
			a, b := m.Regs[in.R1], m.Regs[in.R2]
			r := a + b
			m.Regs[in.R1] = r
			m.setFlagsAdd(a, b, r)
		case isa.ADDri:
			a, b := m.Regs[in.R1], uint64(in.Imm)
			r := a + b
			m.Regs[in.R1] = r
			m.setFlagsAdd(a, b, r)
		case isa.SUBrr:
			a, b := m.Regs[in.R1], m.Regs[in.R2]
			r := a - b
			m.Regs[in.R1] = r
			m.setFlagsSub(a, b, r)
		case isa.SUBri:
			a, b := m.Regs[in.R1], uint64(in.Imm)
			r := a - b
			m.Regs[in.R1] = r
			m.setFlagsSub(a, b, r)
		case isa.IMULrr:
			r := m.Regs[in.R1] * m.Regs[in.R2]
			m.Regs[in.R1] = r
			m.setFlagsLogic(r) // simplified: defined zf/sf, cleared cf/of
		case isa.XORrr:
			r := m.Regs[in.R1] ^ m.Regs[in.R2]
			m.Regs[in.R1] = r
			m.setFlagsLogic(r)
		case isa.ANDri:
			r := m.Regs[in.R1] & uint64(in.Imm)
			m.Regs[in.R1] = r
			m.setFlagsLogic(r)
		case isa.SHLri:
			r := m.Regs[in.R1] << uint(in.Imm)
			m.Regs[in.R1] = r
			m.setFlagsLogic(r)
		case isa.SHRri:
			r := m.Regs[in.R1] >> uint(in.Imm)
			m.Regs[in.R1] = r
			m.setFlagsLogic(r)
		case isa.CMPrr:
			a, b := m.Regs[in.R1], m.Regs[in.R2]
			m.setFlagsSub(a, b, a-b)
		case isa.CMPri:
			a, b := m.Regs[in.R1], uint64(in.Imm)
			m.setFlagsSub(a, b, a-b)
		case isa.TESTrr:
			m.setFlagsLogic(m.Regs[in.R1] & m.Regs[in.R2])
		case isa.JMP:
			m.recordBranch(pc, in.TargetAddr, BrUncond, false)
			m.rip = in.TargetAddr
			continue
		case isa.JCC:
			taken, err := m.cond(in.Cc)
			if err != nil {
				return StopHalt, err
			}
			m.C.Branches++
			mispred := m.predict(pc, taken)
			if taken {
				m.C.TakenBranch++
				m.recordBranch(pc, in.TargetAddr, BrCond, mispred)
				m.rip = in.TargetAddr
				continue
			}
			if m.tracer != nil {
				m.tracer.Branch(pc, next, false, BrCond)
			}
		case isa.JMPr:
			m.recordBranch(pc, m.Regs[in.R1], BrIndirect, false)
			m.rip = m.Regs[in.R1]
			continue
		case isa.JMPm:
			addr := m.effAddr(&in.M, pc, d.size)
			v, err := m.read(addr, 8)
			if err != nil {
				return StopHalt, err
			}
			m.C.Loads++
			if m.tracer != nil {
				m.tracer.Mem(addr, 8, false)
			}
			m.recordBranch(pc, v, BrIndirect, false)
			m.rip = v
			continue
		case isa.CALL, isa.CALLr, isa.CALLm:
			var target uint64
			kind := BrCall
			switch in.Op {
			case isa.CALL:
				target = in.TargetAddr
			case isa.CALLr:
				target = m.Regs[in.R1]
				kind = BrIndCall
			case isa.CALLm:
				addr := m.effAddr(&in.M, pc, d.size)
				v, err := m.read(addr, 8)
				if err != nil {
					return StopHalt, err
				}
				m.C.Loads++
				target = v
				kind = BrIndCall
			}
			if target == m.throwAddr && m.throwAddr != 0 {
				// __throw intercept: unwind instead of calling.
				m.C.Throws++
				lp, err := m.unwind(next)
				if err != nil {
					return StopHalt, err
				}
				m.recordBranch(pc, lp, BrUncond, false)
				m.rip = lp
				continue
			}
			if err := m.push(next); err != nil {
				return StopHalt, err
			}
			m.C.Calls++
			m.recordBranch(pc, target, kind, false)
			m.rip = target
			continue
		case isa.RET, isa.REPZRET:
			v, err := m.pop()
			if err != nil {
				return StopHalt, err
			}
			m.C.Returns++
			m.recordBranch(pc, v, BrRet, false)
			m.rip = v
			continue
		case isa.PUSH:
			if err := m.push(m.Regs[in.R1]); err != nil {
				return StopHalt, err
			}
			m.C.Stores++
		case isa.POP:
			v, err := m.pop()
			if err != nil {
				return StopHalt, err
			}
			m.Regs[in.R1] = v
			m.C.Loads++
		case isa.NOP:
		case isa.UD2:
			return StopHalt, fmt.Errorf("vm: ud2 trap at %#x", pc)
		case isa.HLT:
			m.halted = true
			return StopHalt, nil
		default:
			return StopHalt, fmt.Errorf("vm: unimplemented op %v at %#x", in.Op, pc)
		}
		m.rip = next
	}
	return StopHalt, nil
}

// Package vm executes the toolchain's ELF binaries. It stands in for the
// paper's production hardware: it interprets the x86-64 subset with full
// flag semantics, maintains an LBR-style ring of the last 32 taken
// branches (with mispredict flags from an embedded bimodal predictor, like
// Intel's LBR), exposes retirement counters, and unwinds exceptions using
// the binary's CFI — so a rewriter that corrupts frame information breaks
// programs at runtime, exactly as it would on real hardware.
package vm

import (
	"fmt"
	"sort"

	"gobolt/internal/cfi"
	"gobolt/internal/elfx"
	"gobolt/internal/isa"
)

// LBRSize is the depth of the last-branch-record ring (Intel: 32).
const LBRSize = 32

// BranchKind classifies a control transfer for tracing and profiling.
type BranchKind uint8

// Branch kinds.
const (
	BrCond BranchKind = iota
	BrUncond
	BrIndirect
	BrCall
	BrIndCall
	BrRet
)

// BranchRecord is one LBR entry.
type BranchRecord struct {
	From, To uint64
	Mispred  bool
}

// Tracer observes execution; any method may be a no-op. Used by the
// microarchitecture simulator and by trace tools.
type Tracer interface {
	Inst(addr uint64, size uint8)
	Branch(from, to uint64, taken bool, kind BranchKind)
	Mem(addr uint64, size uint8, write bool)
}

// Counters accumulates retirement statistics.
type Counters struct {
	Instructions uint64
	Branches     uint64 // conditional branches executed
	TakenBranch  uint64 // taken conditional branches
	Calls        uint64
	Returns      uint64
	Loads        uint64
	Stores       uint64
	Throws       uint64
}

// StopReason reports why Run returned.
type StopReason int

// Stop reasons.
const (
	StopHalt StopReason = iota
	StopBudget
)

type decoded struct {
	inst isa.Inst
	size uint8
}

type codeSection struct {
	base uint64
	end  uint64
	idx  []int32 // byte offset -> index into insts, -1 = not an instruction start
}

const (
	stackBase = uint64(0x7F0000000000)
	stackSize = uint64(1 << 20)
)

// Machine is one virtual CPU plus its loaded program image.
type Machine struct {
	Regs   [16]uint64
	rip    uint64
	zf     bool
	sf     bool
	of     bool
	cf     bool
	C      Counters
	lbr    [LBRSize]BranchRecord
	lbrPos int
	lbrCnt int

	mem     []byte // image slab
	memBase uint64
	stack   []byte
	halted  bool

	insts    []decoded
	sections []codeSection
	lastSect int

	fdes     []cfi.FDE
	lsdaData []byte
	lsdaBase uint64

	throwAddr uint64
	file      *elfx.File

	tracer Tracer

	// predictor state for LBR mispredict flags (bimodal 2-bit).
	pred [4096]uint8
}

// New loads an executable into a fresh machine.
func New(f *elfx.File) (*Machine, error) {
	m := &Machine{file: f}

	// Map allocatable sections into one slab.
	var lo, hi uint64
	first := true
	for _, s := range f.Sections {
		if s.Flags&elfx.SHFAlloc == 0 || s.Size() == 0 {
			continue
		}
		if first || s.Addr < lo {
			lo = s.Addr
		}
		if first || s.Addr+s.Size() > hi {
			hi = s.Addr + s.Size()
		}
		first = false
	}
	if first {
		return nil, fmt.Errorf("vm: no loadable sections")
	}
	if hi-lo > 1<<31 {
		return nil, fmt.Errorf("vm: image span too large (%d bytes)", hi-lo)
	}
	m.memBase = lo
	m.mem = make([]byte, hi-lo)
	for _, s := range f.Sections {
		if s.Flags&elfx.SHFAlloc == 0 {
			continue
		}
		copy(m.mem[s.Addr-lo:], s.Data)
	}
	m.stack = make([]byte, stackSize)

	// Pre-decode executable sections using function symbol boundaries.
	if err := m.decodeCode(); err != nil {
		return nil, err
	}

	// Frame and exception metadata.
	if fs := f.Section(cfi.FrameSectionName); fs != nil {
		fdes, err := cfi.DecodeFrames(fs.Data)
		if err != nil {
			return nil, fmt.Errorf("vm: %w", err)
		}
		m.fdes = fdes
	}
	if ls := f.Section(cfi.LSDASectionName); ls != nil {
		m.lsdaData = ls.Data
		m.lsdaBase = ls.Addr
	}
	if sym, ok := f.SymbolByName("__throw"); ok {
		m.throwAddr = sym.Value
	}

	m.rip = f.Entry
	m.Regs[isa.RSP] = stackBase + stackSize - 128
	return m, nil
}

// decodeCode linearly disassembles every function body (symbol-delimited)
// in every executable section.
func (m *Machine) decodeCode() error {
	for _, s := range m.file.Sections {
		if s.Flags&elfx.SHFExecinstr == 0 || s.Size() == 0 {
			continue
		}
		cs := codeSection{base: s.Addr, end: s.Addr + s.Size()}
		cs.idx = make([]int32, s.Size())
		for i := range cs.idx {
			cs.idx[i] = -1
		}
		m.sections = append(m.sections, cs)
	}
	sort.Slice(m.sections, func(i, j int) bool { return m.sections[i].base < m.sections[j].base })

	for _, sym := range m.file.FuncSymbols() {
		si := m.sectionFor(sym.Value)
		if si < 0 {
			continue
		}
		cs := &m.sections[si]
		sec := m.file.SectionFor(sym.Value)
		off := sym.Value - sec.Addr
		end := off + sym.Size
		if end > sec.Size() {
			return fmt.Errorf("vm: symbol %s overruns section", sym.Name)
		}
		pos := off
		for pos < end {
			if cs.idx[sym.Value-cs.base+pos-off] >= 0 {
				break // already decoded (alias symbol)
			}
			inst, n, err := isa.Decode(sec.Data[pos:end], sec.Addr+pos)
			if err != nil {
				return fmt.Errorf("vm: decoding %s+%#x: %w", sym.Name, pos-off, err)
			}
			cs.idx[sec.Addr+pos-cs.base] = int32(len(m.insts))
			m.insts = append(m.insts, decoded{inst: inst, size: uint8(n)})
			pos += uint64(n)
		}
	}
	return nil
}

// sectionFor returns the code section index containing addr, or -1.
func (m *Machine) sectionFor(addr uint64) int {
	if m.lastSect < len(m.sections) {
		cs := &m.sections[m.lastSect]
		if addr >= cs.base && addr < cs.end {
			return m.lastSect
		}
	}
	for i := range m.sections {
		if addr >= m.sections[i].base && addr < m.sections[i].end {
			m.lastSect = i
			return i
		}
	}
	return -1
}

// fetch returns the decoded instruction at addr.
func (m *Machine) fetch(addr uint64) (*decoded, error) {
	si := m.sectionFor(addr)
	if si < 0 {
		return nil, fmt.Errorf("vm: execute at unmapped address %#x", addr)
	}
	cs := &m.sections[si]
	id := cs.idx[addr-cs.base]
	if id < 0 {
		return nil, fmt.Errorf("vm: execute at non-instruction address %#x", addr)
	}
	return &m.insts[id], nil
}

// SetTracer installs an execution observer (nil to remove).
func (m *Machine) SetTracer(t Tracer) { m.tracer = t }

// RIP returns the current program counter.
func (m *Machine) RIP() uint64 { return m.rip }

// Halted reports whether the program has executed HLT.
func (m *Machine) Halted() bool { return m.halted }

// Result returns the conventional exit value (RAX).
func (m *Machine) Result() uint64 { return m.Regs[isa.RAX] }

// LBR returns the last-branch records, most recent last. Valid entries
// only (fewer than LBRSize early in execution).
func (m *Machine) LBR() []BranchRecord {
	n := m.lbrCnt
	if n > LBRSize {
		n = LBRSize
	}
	out := make([]BranchRecord, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, m.lbr[(m.lbrPos-n+i+LBRSize*2)%LBRSize])
	}
	return out
}

// recordBranch appends a taken transfer to the LBR and notifies tracers.
func (m *Machine) recordBranch(from, to uint64, kind BranchKind, mispred bool) {
	m.lbr[m.lbrPos] = BranchRecord{From: from, To: to, Mispred: mispred}
	m.lbrPos = (m.lbrPos + 1) % LBRSize
	m.lbrCnt++
	if m.tracer != nil {
		m.tracer.Branch(from, to, true, kind)
	}
}

// predict runs the embedded bimodal predictor for conditional branches and
// returns whether the outcome was mispredicted.
func (m *Machine) predict(pc uint64, taken bool) bool {
	slot := &m.pred[(pc>>1)&4095]
	predTaken := *slot >= 2
	if taken && *slot < 3 {
		*slot++
	} else if !taken && *slot > 0 {
		*slot--
	}
	return predTaken != taken
}

// read8 loads a byte from the guest address space.
func (m *Machine) read(addr uint64, n int) (uint64, error) {
	var b []byte
	switch {
	case addr >= stackBase && addr+uint64(n) <= stackBase+stackSize:
		b = m.stack[addr-stackBase:]
	case addr >= m.memBase && addr+uint64(n) <= m.memBase+uint64(len(m.mem)):
		b = m.mem[addr-m.memBase:]
	default:
		return 0, fmt.Errorf("vm: read of %d bytes at unmapped %#x", n, addr)
	}
	var v uint64
	for i := n - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v, nil
}

func (m *Machine) write(addr uint64, v uint64, n int) error {
	var b []byte
	switch {
	case addr >= stackBase && addr+uint64(n) <= stackBase+stackSize:
		b = m.stack[addr-stackBase:]
	case addr >= m.memBase && addr+uint64(n) <= m.memBase+uint64(len(m.mem)):
		b = m.mem[addr-m.memBase:]
	default:
		return fmt.Errorf("vm: write of %d bytes at unmapped %#x", n, addr)
	}
	for i := 0; i < n; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return nil
}

// push/pop with the guest stack.
func (m *Machine) push(v uint64) error {
	m.Regs[isa.RSP] -= 8
	return m.write(m.Regs[isa.RSP], v, 8)
}

func (m *Machine) pop() (uint64, error) {
	v, err := m.read(m.Regs[isa.RSP], 8)
	m.Regs[isa.RSP] += 8
	return v, err
}

// TeeTracer fans one trace out to multiple observers.
type TeeTracer []Tracer

// Inst implements Tracer.
func (t TeeTracer) Inst(addr uint64, size uint8) {
	for _, x := range t {
		x.Inst(addr, size)
	}
}

// Branch implements Tracer.
func (t TeeTracer) Branch(from, to uint64, taken bool, kind BranchKind) {
	for _, x := range t {
		x.Branch(from, to, taken, kind)
	}
}

// Mem implements Tracer.
func (t TeeTracer) Mem(addr uint64, size uint8, write bool) {
	for _, x := range t {
		x.Mem(addr, size, write)
	}
}

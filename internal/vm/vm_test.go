package vm

import (
	"testing"

	"gobolt/internal/cc"
	"gobolt/internal/elfx"
	"gobolt/internal/ir"
	"gobolt/internal/isa"
	"gobolt/internal/ld"
)

// buildProgram compiles and links a MIR program with the given options.
func buildProgram(t *testing.T, p *ir.Program, copts cc.Options, lopts ld.Options) *elfx.File {
	t.Helper()
	objs, err := cc.Compile(p, copts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := ld.Link(objs, lopts)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return res.File
}

// runToHalt executes the program and returns RAX.
func runToHalt(t *testing.T, f *elfx.File) uint64 {
	t.Helper()
	m, err := New(f)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := m.Run(0); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !m.Halted() {
		t.Fatalf("did not halt")
	}
	return m.Result()
}

// arithProgram: _start computes ((5+7)*3 - 6) ^ 2 = 30 xor 2 = 28.
func arithProgram() *ir.Program {
	f := ir.NewFunc("_start", "main.mir", 1)
	b := f.Blocks[0]
	b.Ops = []ir.Op{
		{Kind: ir.OpMovImm, Dst: isa.RAX, Imm: 5},
		{Kind: ir.OpMovImm, Dst: isa.RCX, Imm: 7},
		{Kind: ir.OpAdd, Dst: isa.RAX, Src: isa.RCX},
		{Kind: ir.OpMovImm, Dst: isa.RDX, Imm: 3},
		{Kind: ir.OpMul, Dst: isa.RAX, Src: isa.RDX},
		{Kind: ir.OpAddImm, Dst: isa.RAX, Imm: -6},
		{Kind: ir.OpMovImm, Dst: isa.RCX, Imm: 2},
		{Kind: ir.OpXor, Dst: isa.RAX, Src: isa.RCX},
	}
	b.Term = ir.Term{Kind: ir.TermExit}
	return &ir.Program{Modules: []*ir.Module{{Name: "main", Funcs: []*ir.Func{f}}}}
}

func TestArithmetic(t *testing.T) {
	f := buildProgram(t, arithProgram(), cc.DefaultOptions(), ld.Options{})
	if got := runToHalt(t, f); got != 28 {
		t.Fatalf("result = %d, want 28", got)
	}
}

// callProgram: _start calls add3(10) three nested ways and sums.
func callProgram() *ir.Program {
	callee := ir.NewFunc("add3", "lib.mir", 10)
	cb := callee.Blocks[0]
	cb.Ops = []ir.Op{
		{Kind: ir.OpMov, Dst: isa.RAX, Src: isa.RDI},
		{Kind: ir.OpAddImm, Dst: isa.RAX, Imm: 3},
	}
	cb.Term = ir.Term{Kind: ir.TermReturn}

	outer := ir.NewFunc("outer", "lib.mir", 20)
	outer.SavedRegs = []isa.Reg{isa.RBX}
	ob := outer.Blocks[0]
	ob.Ops = []ir.Op{
		{Kind: ir.OpMov, Dst: isa.RBX, Src: isa.RDI},
		{Kind: ir.OpCall, Callee: "add3", SpillReg: isa.NoReg, LandingPad: -1},
		{Kind: ir.OpMov, Dst: isa.RDI, Src: isa.RAX},
		{Kind: ir.OpCall, Callee: "add3", SpillReg: isa.NoReg, LandingPad: -1},
		{Kind: ir.OpAdd, Dst: isa.RAX, Src: isa.RBX},
	}
	ob.Term = ir.Term{Kind: ir.TermReturn}

	start := ir.NewFunc("_start", "main.mir", 1)
	sb := start.Blocks[0]
	sb.Ops = []ir.Op{
		{Kind: ir.OpMovImm, Dst: isa.RDI, Imm: 10},
		{Kind: ir.OpCall, Callee: "outer", SpillReg: isa.NoReg, LandingPad: -1},
	}
	sb.Term = ir.Term{Kind: ir.TermExit}
	return &ir.Program{Modules: []*ir.Module{
		{Name: "main", Funcs: []*ir.Func{start}},
		{Name: "lib", Funcs: []*ir.Func{outer, callee}},
	}}
}

func TestCalls(t *testing.T) {
	// outer(10) = add3(add3(10)) + 10 = 16 + 10 = 26.
	f := buildProgram(t, callProgram(), cc.DefaultOptions(), ld.Options{})
	if got := runToHalt(t, f); got != 26 {
		t.Fatalf("result = %d, want 26", got)
	}
}

func TestCallsWithInlining(t *testing.T) {
	// add3 is tiny (2 ops) and in the same module as outer only under
	// LTO; result must be identical either way.
	for _, lto := range []bool{false, true} {
		opts := cc.DefaultOptions()
		opts.LTO = lto
		f := buildProgram(t, callProgram(), opts, ld.Options{})
		if got := runToHalt(t, f); got != 26 {
			t.Fatalf("lto=%v: result = %d, want 26", lto, got)
		}
	}
}

// branchProgram: loop 100 times, count bytes < 128 in a data table.
func branchProgram(pic bool) *ir.Program {
	data := make([]byte, 256)
	want := 0
	for i := range data {
		data[i] = byte(i * 37)
		if data[i] < 128 {
			want++
		}
	}
	_ = want

	f := ir.NewFunc("_start", "main.mir", 1)
	// b0: init rbx=0 (counter) rsi=0 (i)
	b0 := f.Blocks[0]
	b0.Ops = []ir.Op{
		{Kind: ir.OpMovImm, Dst: isa.RBX, Imm: 0},
		{Kind: ir.OpMovImm, Dst: isa.RSI, Imm: 0},
	}
	b1 := f.AddBlock() // loop head: load input[rsi], compare
	b2 := f.AddBlock() // increment counter
	b3 := f.AddBlock() // loop latch
	b4 := f.AddBlock() // exit
	b0.Term = ir.Term{Kind: ir.TermJump, Then: b1.Index}

	b1.Ops = []ir.Op{{Kind: ir.OpLoadByte, Dst: isa.RAX, Src: isa.RSI, Sym: "table", Scale: 1}}
	b1.Term = ir.Term{Kind: ir.TermBranch, Cc: isa.CondL, CmpReg: isa.RAX, CmpImm: 128,
		Then: b2.Index, Else: b3.Index}

	b2.Ops = []ir.Op{{Kind: ir.OpAddImm, Dst: isa.RBX, Imm: 1}}
	b2.Term = ir.Term{Kind: ir.TermJump, Then: b3.Index}

	b3.Ops = []ir.Op{{Kind: ir.OpAddImm, Dst: isa.RSI, Imm: 1}}
	b3.Term = ir.Term{Kind: ir.TermBranch, Cc: isa.CondL, CmpReg: isa.RSI, CmpImm: 256,
		Then: b1.Index, Else: b4.Index}

	b4.Ops = []ir.Op{{Kind: ir.OpMov, Dst: isa.RAX, Src: isa.RBX}}
	b4.Term = ir.Term{Kind: ir.TermExit}
	_ = pic
	return &ir.Program{
		Modules: []*ir.Module{{Name: "main", Funcs: []*ir.Func{f}}},
		Globals: []*ir.Global{{Name: "table", Data: data, Align: 8}},
	}
}

func TestBranchesAndLoads(t *testing.T) {
	data := make([]byte, 256)
	want := uint64(0)
	for i := range data {
		data[i] = byte(i * 37)
		if data[i] < 128 {
			want++
		}
	}
	f := buildProgram(t, branchProgram(false), cc.DefaultOptions(), ld.Options{})
	if got := runToHalt(t, f); got != want {
		t.Fatalf("result = %d, want %d", got, want)
	}
}

// switchProgram exercises jump tables: sum switch(i%4) over i in [0,64).
func switchProgram(pic bool) *ir.Program {
	f := ir.NewFunc("_start", "main.mir", 1)
	b0 := f.Blocks[0]
	b0.Ops = []ir.Op{
		{Kind: ir.OpMovImm, Dst: isa.RBX, Imm: 0},
		{Kind: ir.OpMovImm, Dst: isa.RSI, Imm: 0},
	}
	head := f.AddBlock()
	c0 := f.AddBlock()
	c1 := f.AddBlock()
	c2 := f.AddBlock()
	c3 := f.AddBlock()
	latch := f.AddBlock()
	exit := f.AddBlock()

	b0.Term = ir.Term{Kind: ir.TermJump, Then: head.Index}
	head.Ops = []ir.Op{
		{Kind: ir.OpMov, Dst: isa.RCX, Src: isa.RSI},
		{Kind: ir.OpAndImm, Dst: isa.RCX, Imm: 3},
	}
	head.Term = ir.Term{Kind: ir.TermSwitch, IndexReg: isa.RCX, PIC: pic,
		Targets: []int{c0.Index, c1.Index, c2.Index, c3.Index}}

	for i, c := range []*ir.Block{c0, c1, c2, c3} {
		c.Ops = []ir.Op{{Kind: ir.OpAddImm, Dst: isa.RBX, Imm: int64(i * i)}}
		c.Term = ir.Term{Kind: ir.TermJump, Then: latch.Index}
	}
	latch.Ops = []ir.Op{{Kind: ir.OpAddImm, Dst: isa.RSI, Imm: 1}}
	latch.Term = ir.Term{Kind: ir.TermBranch, Cc: isa.CondL, CmpReg: isa.RSI, CmpImm: 64,
		Then: head.Index, Else: exit.Index}
	exit.Ops = []ir.Op{{Kind: ir.OpMov, Dst: isa.RAX, Src: isa.RBX}}
	exit.Term = ir.Term{Kind: ir.TermExit}
	return &ir.Program{Modules: []*ir.Module{{Name: "main", Funcs: []*ir.Func{f}}}}
}

func TestJumpTables(t *testing.T) {
	// 16 iterations of each case: 16*(0+1+4+9) = 224.
	for _, pic := range []bool{false, true} {
		f := buildProgram(t, switchProgram(pic), cc.DefaultOptions(), ld.Options{EmitRelocs: true})
		if got := runToHalt(t, f); got != 224 {
			t.Fatalf("pic=%v: result = %d, want 224", pic, got)
		}
	}
}

// exceptionProgram: thrower(i) throws when i is odd; caller catches and
// records. Sum over i in [0,10): even i contribute i, odd contribute 100.
func exceptionProgram() *ir.Program {
	thrower := ir.NewFunc("thrower", "lib.mir", 30)
	tb := thrower.Blocks[0]
	throwBlk := thrower.AddBlock()
	okBlk := thrower.AddBlock()
	tb.Ops = []ir.Op{
		{Kind: ir.OpMov, Dst: isa.RAX, Src: isa.RDI},
		{Kind: ir.OpAndImm, Dst: isa.RAX, Imm: 1},
	}
	tb.Term = ir.Term{Kind: ir.TermBranch, Cc: isa.CondNE, CmpReg: isa.RAX, CmpImm: 0,
		Then: throwBlk.Index, Else: okBlk.Index}
	throwBlk.Term = ir.Term{Kind: ir.TermThrow, LandingPad: -1}
	okBlk.Ops = []ir.Op{{Kind: ir.OpMov, Dst: isa.RAX, Src: isa.RDI}}
	okBlk.Term = ir.Term{Kind: ir.TermReturn}

	// caller: rbx accumulates; invoke thrower(i); on catch add 100.
	caller := ir.NewFunc("caller", "main.mir", 40)
	caller.SavedRegs = []isa.Reg{isa.RBX, isa.R12}
	caller.FrameSlots = 1
	cb := caller.Blocks[0]
	loop := caller.AddBlock()
	lp := caller.AddBlock()
	cont := caller.AddBlock()
	done := caller.AddBlock()

	cb.Ops = []ir.Op{
		{Kind: ir.OpMovImm, Dst: isa.RBX, Imm: 0},
		{Kind: ir.OpMovImm, Dst: isa.R12, Imm: 0},
	}
	cb.Term = ir.Term{Kind: ir.TermJump, Then: loop.Index}

	loop.Ops = []ir.Op{
		{Kind: ir.OpMov, Dst: isa.RDI, Src: isa.R12},
		{Kind: ir.OpCall, Callee: "thrower", SpillReg: isa.NoReg, LandingPad: lp.Index},
		{Kind: ir.OpAdd, Dst: isa.RBX, Src: isa.RAX},
	}
	loop.Term = ir.Term{Kind: ir.TermJump, Then: cont.Index}

	lp.Ops = []ir.Op{{Kind: ir.OpAddImm, Dst: isa.RBX, Imm: 100}}
	lp.Term = ir.Term{Kind: ir.TermJump, Then: cont.Index}

	cont.Ops = []ir.Op{{Kind: ir.OpAddImm, Dst: isa.R12, Imm: 1}}
	cont.Term = ir.Term{Kind: ir.TermBranch, Cc: isa.CondL, CmpReg: isa.R12, CmpImm: 10,
		Then: loop.Index, Else: done.Index}

	done.Ops = []ir.Op{{Kind: ir.OpMov, Dst: isa.RAX, Src: isa.RBX}}
	done.Term = ir.Term{Kind: ir.TermReturn}

	start := ir.NewFunc("_start", "main.mir", 1)
	sb := start.Blocks[0]
	sb.Ops = []ir.Op{{Kind: ir.OpCall, Callee: "caller", SpillReg: isa.NoReg, LandingPad: -1}}
	sb.Term = ir.Term{Kind: ir.TermExit}

	return &ir.Program{Modules: []*ir.Module{
		{Name: "main", Funcs: []*ir.Func{start, caller}},
		{Name: "lib", Funcs: []*ir.Func{thrower}},
	}}
}

func TestExceptions(t *testing.T) {
	// Evens: 0+2+4+6+8 = 20; odds: 5*100 = 500; total 520.
	f := buildProgram(t, exceptionProgram(), cc.DefaultOptions(), ld.Options{})
	m, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := m.Result(); got != 520 {
		t.Fatalf("result = %d, want 520", got)
	}
	if m.C.Throws != 5 {
		t.Fatalf("throws = %d, want 5", m.C.Throws)
	}
}

// pltProgram: a shared-module function called through the PLT.
func pltProgram() *ir.Program {
	shared := ir.NewFunc("libfn", "shared.mir", 5)
	sb := shared.Blocks[0]
	sb.Ops = []ir.Op{
		{Kind: ir.OpMov, Dst: isa.RAX, Src: isa.RDI},
		{Kind: ir.OpShlImm, Dst: isa.RAX, Imm: 4},
	}
	sb.Term = ir.Term{Kind: ir.TermReturn}

	start := ir.NewFunc("_start", "main.mir", 1)
	b := start.Blocks[0]
	b.Ops = []ir.Op{
		{Kind: ir.OpMovImm, Dst: isa.RDI, Imm: 3},
		{Kind: ir.OpCall, Callee: "libfn", SpillReg: isa.NoReg, LandingPad: -1},
	}
	b.Term = ir.Term{Kind: ir.TermExit}
	return &ir.Program{Modules: []*ir.Module{
		{Name: "main", Funcs: []*ir.Func{start}},
		{Name: "libshared", Shared: true, Funcs: []*ir.Func{shared}},
	}}
}

func TestPLTCall(t *testing.T) {
	f := buildProgram(t, pltProgram(), cc.DefaultOptions(), ld.Options{})
	if f.Section(".plt") == nil {
		t.Fatal("expected a .plt section")
	}
	if _, ok := f.SymbolByName("libfn@plt"); !ok {
		t.Fatal("expected libfn@plt symbol")
	}
	if got := runToHalt(t, f); got != 48 {
		t.Fatalf("result = %d, want 48", got)
	}
	// NoPLT (static-LTO style) must produce the same result without .plt.
	f2 := buildProgram(t, pltProgram(), cc.DefaultOptions(), ld.Options{NoPLT: true})
	if f2.Section(".plt") != nil {
		t.Fatal("NoPLT build must not have .plt")
	}
	if got := runToHalt(t, f2); got != 48 {
		t.Fatalf("NoPLT result = %d, want 48", got)
	}
}

// spillProgram: redundant caller-saved spill around a call.
func spillProgram() *ir.Program {
	callee := ir.NewFunc("id", "lib.mir", 3)
	cb := callee.Blocks[0]
	cb.Ops = []ir.Op{{Kind: ir.OpMov, Dst: isa.RAX, Src: isa.RDI}}
	cb.Term = ir.Term{Kind: ir.TermReturn}

	start := ir.NewFunc("_start", "main.mir", 1)
	b := start.Blocks[0]
	b.Ops = []ir.Op{
		{Kind: ir.OpMovImm, Dst: isa.RDI, Imm: 9},
		// R9 is dead here; the spill is unnecessary (frame-opts fodder).
		{Kind: ir.OpCall, Callee: "id", SpillReg: isa.R9, LandingPad: -1},
	}
	b.Term = ir.Term{Kind: ir.TermExit}
	return &ir.Program{Modules: []*ir.Module{
		{Name: "main", Funcs: []*ir.Func{start, callee}},
	}}
}

func TestSpillAroundCall(t *testing.T) {
	f := buildProgram(t, spillProgram(), cc.DefaultOptions(), ld.Options{})
	if got := runToHalt(t, f); got != 9 {
		t.Fatalf("result = %d, want 9", got)
	}
}

func TestLBRRecordsTakenBranches(t *testing.T) {
	f := buildProgram(t, branchProgram(false), cc.DefaultOptions(), ld.Options{})
	m, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	lbr := m.LBR()
	if len(lbr) != LBRSize {
		t.Fatalf("LBR has %d entries, want %d", len(lbr), LBRSize)
	}
	for _, r := range lbr {
		if r.From == 0 || r.To == 0 {
			t.Fatalf("zero LBR entry: %+v", r)
		}
	}
	if m.C.Branches == 0 || m.C.TakenBranch == 0 || m.C.TakenBranch > m.C.Branches {
		t.Fatalf("counter sanity: %+v", m.C)
	}
}

func TestRunBudget(t *testing.T) {
	f := buildProgram(t, branchProgram(false), cc.DefaultOptions(), ld.Options{})
	m, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	reason, err := m.Run(10)
	if err != nil || reason != StopBudget {
		t.Fatalf("want budget stop, got %v %v", reason, err)
	}
	if m.C.Instructions != 10 {
		t.Fatalf("executed %d, want 10", m.C.Instructions)
	}
	// Resume to completion.
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if !m.Halted() {
		t.Fatal("not halted after resume")
	}
}

func TestWildJumpDetected(t *testing.T) {
	f := buildProgram(t, arithProgram(), cc.DefaultOptions(), ld.Options{})
	m, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	m.rip = f.Entry + 1 // middle of an instruction
	if _, err := m.Run(0); err == nil {
		t.Fatal("expected wild-jump error")
	}
}

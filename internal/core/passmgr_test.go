package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// fakeCtx builds a context with n synthetic simple functions.
func fakeCtx(n int) *BinaryContext {
	ctx := &BinaryContext{ByName: map[string]*BinaryFunction{}}
	for i := 0; i < n; i++ {
		fn := &BinaryFunction{
			Name:   fmt.Sprintf("f%03d", i),
			Addr:   uint64(0x1000 + 16*i),
			Size:   16,
			Simple: true,
		}
		ctx.Funcs = append(ctx.Funcs, fn)
		ctx.ByName[fn.Name] = fn
	}
	return ctx
}

// touchPass marks each visited function and counts per-function stats.
type touchPass struct{}

func (touchPass) Name() string { return "touch" }

func (touchPass) RunOnFunction(fc *FuncCtx, fn *BinaryFunction) error {
	fn.ExecCount++ // worker-private mutation of the handed function
	fc.CountStat("touched", 1)
	fc.CountStat("bytes", int64(fn.Size))
	return nil
}

func TestPassManagerShardsMergeIdentically(t *testing.T) {
	for _, jobs := range []int{1, 3, 8, 64} {
		ctx := fakeCtx(37)
		pm := NewPassManager(jobs)
		if err := pm.Run(context.Background(), ctx, []Pass{ForEachFunction(touchPass{})}); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if got := ctx.Stats["touched"]; got != 37 {
			t.Errorf("jobs=%d: touched=%d, want 37", jobs, got)
		}
		if got := ctx.Stats["bytes"]; got != 37*16 {
			t.Errorf("jobs=%d: bytes=%d, want %d", jobs, got, 37*16)
		}
		for _, fn := range ctx.Funcs {
			if fn.ExecCount != 1 {
				t.Errorf("jobs=%d: %s visited %d times", jobs, fn.Name, fn.ExecCount)
			}
		}
		if len(pm.Timings) != 1 || pm.Timings[0].Name != "touch" || pm.Timings[0].Funcs != 37 {
			t.Errorf("jobs=%d: bad timing record %+v", jobs, pm.Timings)
		}
		if d := pm.Timings[0].StatDelta["touched"]; d != 37 {
			t.Errorf("jobs=%d: stat delta touched=%d, want 37", jobs, d)
		}
	}
}

// failPass fails on one specific function.
type failPass struct{ victim string }

func (failPass) Name() string { return "fail" }

var errBoom = errors.New("boom")

func (p failPass) RunOnFunction(fc *FuncCtx, fn *BinaryFunction) error {
	if fn.Name == p.victim {
		return errBoom
	}
	return nil
}

func TestPassManagerErrorPropagation(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		ctx := fakeCtx(16)
		err := NewPassManager(jobs).Run(context.Background(), ctx, []Pass{ForEachFunction(failPass{victim: "f007"})})
		if !errors.Is(err, errBoom) {
			t.Fatalf("jobs=%d: error %v does not wrap the pass failure", jobs, err)
		}
		for _, part := range []string{"pass fail", "f007"} {
			if !strings.Contains(err.Error(), part) {
				t.Errorf("jobs=%d: error %q missing %q", jobs, err, part)
			}
		}
	}
}

func TestCountStatConcurrencySafe(t *testing.T) {
	// Direct CountStat calls (outside FuncCtx shards) take the stats
	// mutex; hammer it from a parallel pass to prove the fallback path.
	ctx := fakeCtx(64)
	direct := passFunc{name: "direct", fn: func(fc *FuncCtx, f *BinaryFunction) error {
		fc.BinaryContext.CountStat("direct", 1)
		return nil
	}}
	if err := NewPassManager(8).Run(context.Background(), ctx, []Pass{ForEachFunction(direct)}); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Stats["direct"]; got != 64 {
		t.Errorf("direct=%d, want 64", got)
	}
}

// passFunc adapts a closure to FunctionPass for tests.
type passFunc struct {
	name string
	fn   func(fc *FuncCtx, f *BinaryFunction) error
}

func (p passFunc) Name() string { return p.name }

func (p passFunc) RunOnFunction(fc *FuncCtx, f *BinaryFunction) error { return p.fn(fc, f) }

func TestWriteTimingsReport(t *testing.T) {
	ctx := fakeCtx(5)
	pm := NewPassManager(4)
	if err := pm.Run(context.Background(), ctx, []Pass{ForEachFunction(touchPass{})}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	WriteTimings(&sb, pm.Timings)
	out := sb.String()
	for _, want := range []string{"Pass execution timing report", "touch", "funcs", "touched=+5"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// barrierFunc adapts a closure to a whole-binary Pass for tests.
type barrierFunc struct {
	name string
	fn   func(ctx *BinaryContext) error
}

func (p barrierFunc) Name() string                 { return p.name }
func (p barrierFunc) Run(ctx *BinaryContext) error { return p.fn(ctx) }

// TestPassManagerCancellationMidPipeline cancels the context from a
// barrier in the middle of the pipeline: the manager must stop at the
// next pass boundary, report the context error unwrapped, and never run
// the downstream passes.
func TestPassManagerCancellationMidPipeline(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		cx, cancel := context.WithCancel(context.Background())
		ctx := fakeCtx(16)
		ranAfter := false
		pipeline := []Pass{
			ForEachFunction(touchPass{}),
			barrierFunc{name: "cancel", fn: func(*BinaryContext) error {
				cancel()
				return nil
			}},
			ForEachFunction(passFunc{name: "after", fn: func(*FuncCtx, *BinaryFunction) error {
				ranAfter = true
				return nil
			}}),
		}
		err := NewPassManager(jobs).Run(cx, ctx, pipeline)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("jobs=%d: got %v, want context.Canceled", jobs, err)
		}
		if ranAfter {
			t.Fatalf("jobs=%d: pass after cancellation still ran", jobs)
		}
		if got := ctx.Stats["touched"]; got != 16 {
			t.Errorf("jobs=%d: pre-cancel pass incomplete: touched=%d", jobs, got)
		}
	}
}

// TestPassManagerCancelledFunctionPass cancels while a parallel function
// pass is in flight: workers stop claiming items and Run returns the
// bare context error (not wrapped in a function name).
func TestPassManagerCancelledFunctionPass(t *testing.T) {
	cx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctx := fakeCtx(512)
	trigger := passFunc{name: "trigger", fn: func(fc *FuncCtx, f *BinaryFunction) error {
		if f.Name == "f005" {
			cancel()
		}
		fc.CountStat("visited", 1)
		return nil
	}}
	err := NewPassManager(4).Run(cx, ctx, []Pass{ForEachFunction(trigger)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if strings.Contains(err.Error(), "f0") {
		t.Errorf("cancellation error blamed a function: %v", err)
	}
	if got := ctx.Stats["visited"]; got == 0 || got >= 512 {
		t.Errorf("visited=%d, want partial progress (0 < n < 512)", got)
	}
}

func TestFuncContainingBinarySearch(t *testing.T) {
	ctx := fakeCtx(8) // functions at 0x1000+16i, size 16 (contiguous)
	// Punch a gap: shrink f003 so 0x1038..0x103f is uncovered.
	ctx.Funcs[3].Size = 8
	cases := []struct {
		addr uint64
		want string
	}{
		{0x0fff, ""},
		{0x1000, "f000"},
		{0x100f, "f000"},
		{0x1010, "f001"},
		{0x1037, "f003"},
		{0x1038, ""}, // inside the gap
		{0x1070, "f007"},
		{0x107f, "f007"},
		{0x1080, ""}, // past the end
	}
	for _, c := range cases {
		got := ""
		if fn := ctx.FuncContaining(c.addr); fn != nil {
			got = fn.Name
		}
		if got != c.want {
			t.Errorf("FuncContaining(%#x) = %q, want %q", c.addr, got, c.want)
		}
	}
}

package core

import (
	"fmt"
	"strconv"

	"gobolt/internal/asmx"
	"gobolt/internal/cfi"
	"gobolt/internal/isa"
	"gobolt/internal/obj"
)

// Emission relocation symbol encoding. Emitted code references targets
// symbolically until the whole-binary layout is fixed:
//
//	F:<name>       — function entry (new address if moved)
//	B:<name>:<idx> — basic block <idx> of function <name>
//	A:<hexaddr>    — absolute address (data, PLT stubs, unmoved code)
func symFunc(name string) string         { return "F:" + name }
func symBlock(name string, i int) string { return "B:" + name + ":" + strconv.Itoa(i) }
func symAbs(addr uint64) string          { return "A:" + strconv.FormatUint(addr, 16) }

// relImmAbs32 marks an emission relocation whose 4 patched bytes hold an
// absolute 32-bit address (ICP immediates) rather than a PC32 value.
const relImmAbs32 uint32 = 900

// fragCallSite is an LSDA entry before landing-pad addresses are known.
type fragCallSite struct {
	Start, Len uint32
	LP         *BasicBlock
	Action     int32
}

// batAnchor maps one emitted instruction's output offset back to its
// original input address (the raw material of the BAT table).
type batAnchor struct {
	Off    uint32
	InAddr uint64
}

// emittedFrag is one assembled function fragment (hot or cold).
type emittedFrag struct {
	Code      []byte
	Relocs    []obj.Reloc
	BlockOffs map[int]uint32
	CFI       []cfi.PCInst
	CallSites []fragCallSite
	Lines     []obj.LineEntry
	// Anchors records, for every emitted instruction that originated in
	// the input binary, (output offset within the fragment, original
	// address). Sorted by Off; synthesized instructions have no anchor.
	Anchors []batAnchor
}

// emitted bundles both fragments of a function.
type emitted struct {
	fn   *BinaryFunction
	Hot  *emittedFrag
	Cold *emittedFrag // nil when not split
}

// fragmentBlocks partitions the layout into hot and cold lists.
func fragmentBlocks(fn *BinaryFunction) (hot, cold []*BasicBlock) {
	for _, b := range fn.Blocks {
		if b.IsCold && fn.IsSplit {
			cold = append(cold, b)
		} else {
			hot = append(hot, b)
		}
	}
	return
}

// emitFunction assembles the function's current block layout into machine
// code: terminators are materialized against the layout (the
// fixup-branches responsibility), CFI is spliced by state diffing, and
// exception call sites are collected per fragment. Everything it reads
// and writes (including the JCC inversion persisted into the CFG) is
// local to fn, so Rewrite safely calls it concurrently — one worker per
// function — with all cross-function address resolution deferred to the
// serial layout step.
func emitFunction(fn *BinaryFunction) (*emitted, error) {
	hot, cold := fragmentBlocks(fn)
	if len(hot) == 0 || !hot[0].IsEntry {
		return nil, fmt.Errorf("core: %s: entry block must lead the hot fragment", fn.Name)
	}
	out := &emitted{fn: fn}
	var err error
	out.Hot, err = emitFragment(fn, hot)
	if err != nil {
		return nil, err
	}
	if len(cold) > 0 {
		out.Cold, err = emitFragment(fn, cold)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func emitFragment(fn *BinaryFunction, blocks []*BasicBlock) (*emittedFrag, error) {
	a := asmx.New()
	labels := map[*BasicBlock]asmx.Label{}
	for _, b := range blocks {
		labels[b] = a.NewLabel()
	}

	type cfiMark struct {
		label asmx.Label
		inst  cfi.Inst
	}
	type csMark struct {
		start, end asmx.Label
		lp         *BasicBlock
		action     int32
	}
	type lineMark struct {
		label asmx.Label
		file  string
		line  int32
	}
	type anchorMark struct {
		label  asmx.Label
		inAddr uint64
	}
	var cfiMarks []cfiMark
	var csMarks []csMark
	var lineMarks []lineMark
	var anchorMarks []anchorMark

	// anchor marks the current position as the emission site of the
	// original instruction at inAddr (0 = synthesized, no anchor).
	anchor := func(inAddr uint64) {
		if inAddr == 0 {
			return
		}
		l := a.NewLabel()
		a.Bind(l)
		anchorMarks = append(anchorMarks, anchorMark{label: l, inAddr: inAddr})
	}

	running := cfi.InitialState()
	lastFile, lastLine := "", int32(-1)

	emitCFIDiff := func(target *cfi.State) {
		if target == nil {
			return
		}
		diff := cfi.StateDiff(&running, target)
		if len(diff) == 0 {
			return
		}
		l := a.NewLabel()
		a.Bind(l)
		for _, d := range diff {
			cfiMarks = append(cfiMarks, cfiMark{label: l, inst: d})
		}
		running = *target
		// Clone the map so later mutations don't alias.
		saved := make(map[uint8]int32, len(target.Saved))
		for k, v := range target.Saved {
			saved[k] = v
		}
		running.Saved = saved
	}

	// branchTo emits a direct branch instruction to a block, via label
	// (same fragment, relaxable) or symbolic reloc (cross fragment).
	branchTo := func(inst isa.Inst, to *BasicBlock) {
		if _, same := labels[to]; same {
			a.EmitBranch(inst, labels[to])
			return
		}
		a.EmitReloc(inst, obj.RelPC32, symBlock(fn.Name, to.Index), -4)
	}

	for bi, b := range blocks {
		a.Bind(labels[b])
		var next *BasicBlock
		if bi+1 < len(blocks) {
			next = blocks[bi+1]
		}

		// Determine where the control-flow tail begins: the final
		// instruction if it is a branch/return; everything before it is
		// body.
		nInsts := len(b.Insts)
		tail := -1
		if nInsts > 0 && b.Insts[nInsts-1].I.IsBranch() {
			tail = nInsts - 1
		} else if nInsts > 0 {
			op := b.Insts[nInsts-1].I.Op
			if op == isa.HLT || op == isa.UD2 {
				tail = nInsts - 1
			}
		}

		emitOne := func(in *Inst) {
			emitCFIDiff(fn.StateAt(in.CFIIdx))
			if in.File != lastFile || in.Line != lastLine {
				l := a.NewLabel()
				a.Bind(l)
				lineMarks = append(lineMarks, lineMark{label: l, file: in.File, line: in.Line})
				lastFile, lastLine = in.File, in.Line
			}
			inst := in.I
			var start, end asmx.Label
			if in.LP != nil {
				start, end = a.NewLabel(), a.NewLabel()
				a.Bind(start)
			}
			if inst.Op != isa.NOP {
				anchor(in.Addr)
			}
			switch {
			case inst.Op == isa.NOP:
				// dropped
			case in.ImmSym != "":
				a.EmitReloc(inst, relImmAbs32, symFunc(in.ImmSym), 0)
			case inst.Op == isa.CALL:
				switch {
				case in.TargetSym != "":
					a.EmitReloc(inst, obj.RelPC32, symFunc(in.TargetSym), -4)
				default:
					a.EmitReloc(inst, obj.RelPC32, symAbs(inst.TargetAddr), -4)
				}
			case inst.HasMem() && inst.M.RIP && in.MemTarget != 0:
				m := inst
				m.M.Disp = 0
				a.EmitReloc(m, obj.RelPC32, symAbs(in.MemTarget), -4)
			default:
				a.Emit(inst)
			}
			if in.LP != nil {
				a.Bind(end)
				csMarks = append(csMarks, csMark{start: start, end: end, lp: in.LP, action: in.LPAction})
			}
		}

		bodyEnd := nInsts
		if tail >= 0 {
			bodyEnd = tail
		}
		for i := 0; i < bodyEnd; i++ {
			emitOne(&b.Insts[i])
		}

		// Control-flow tail, materialized against the layout.
		if tail < 0 {
			// Fall-through block: synthesize a jump if the successor is
			// not next in this fragment.
			if len(b.Succs) == 1 && b.Succs[0].To != next {
				branchTo(isa.NewInst(isa.JMP), b.Succs[0].To)
			}
			continue
		}
		in := &b.Insts[tail]
		emitCFIDiff(fn.StateAt(in.CFIIdx))
		inst := in.I
		switch {
		case inst.Op == isa.JCC && in.TargetSym != "":
			// Conditional tail call (SCTC output).
			anchor(in.Addr)
			a.EmitReloc(inst, obj.RelPC32, symFunc(in.TargetSym), -4)
			if len(b.Succs) == 1 && b.Succs[0].To != next {
				branchTo(isa.NewInst(isa.JMP), b.Succs[0].To)
			}
		case inst.Op == isa.JCC:
			if len(b.Succs) != 2 {
				return nil, fmt.Errorf("core: %s block %d: jcc with %d successors", fn.Name, b.Index, len(b.Succs))
			}
			taken, fall := b.Succs[0].To, b.Succs[1].To
			anchor(in.Addr)
			switch {
			case fall == next:
				branchTo(inst, taken)
			case taken == next:
				// Invert the condition so the hot target falls through;
				// persist the inversion in the CFG (edge semantics: the
				// recorded taken edge becomes the fall-through).
				in.I.Cc = inst.Cc.Invert()
				b.Succs[0], b.Succs[1] = b.Succs[1], b.Succs[0]
				branchTo(in.I, fall)
			default:
				branchTo(inst, taken)
				branchTo(isa.NewInst(isa.JMP), fall)
			}
		case inst.Op == isa.JMP && in.TargetSym != "":
			// Tail call to another function.
			anchor(in.Addr)
			a.EmitReloc(inst, obj.RelPC32, symFunc(in.TargetSym), -4)
		case inst.Op == isa.JMP:
			if len(b.Succs) != 1 {
				return nil, fmt.Errorf("core: %s block %d: jmp with %d successors", fn.Name, b.Index, len(b.Succs))
			}
			if b.Succs[0].To != next {
				anchor(in.Addr)
				branchTo(inst, b.Succs[0].To)
			}
		case inst.IsIndirectBranch():
			// Jump-table dispatch: emit verbatim; the table bytes are
			// rewritten at layout time.
			emitOne(in)
		default:
			// ret / repz ret / hlt / ud2
			emitOne(in)
		}
	}

	res, err := a.Finish(0)
	if err != nil {
		return nil, fmt.Errorf("core: emitting %s: %w", fn.Name, err)
	}
	frag := &emittedFrag{
		Code:      res.Code,
		Relocs:    res.Relocs,
		BlockOffs: map[int]uint32{},
	}
	for _, b := range blocks {
		frag.BlockOffs[b.Index] = res.LabelOffs[labels[b]]
	}
	for _, m := range cfiMarks {
		frag.CFI = append(frag.CFI, cfi.PCInst{PC: res.LabelOffs[m.label], Inst: m.inst})
	}
	for _, m := range csMarks {
		frag.CallSites = append(frag.CallSites, fragCallSite{
			Start:  res.LabelOffs[m.start],
			Len:    res.LabelOffs[m.end] - res.LabelOffs[m.start],
			LP:     m.lp,
			Action: m.action,
		})
	}
	for _, m := range lineMarks {
		if m.file == "" {
			continue
		}
		frag.Lines = append(frag.Lines, obj.LineEntry{Off: res.LabelOffs[m.label], File: m.file, Line: m.line})
	}
	// Anchors bind in emission order, which is layout order, so offsets
	// are already ascending; keep the first anchor at any offset (a
	// zero-size emission collapses onto its successor).
	for _, m := range anchorMarks {
		off := res.LabelOffs[m.label]
		if n := len(frag.Anchors); n > 0 && frag.Anchors[n-1].Off == off {
			continue
		}
		frag.Anchors = append(frag.Anchors, batAnchor{Off: off, InAddr: m.inAddr})
	}
	return frag, nil
}

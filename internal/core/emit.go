package core

//boltvet:hot-path per-function code emission, scrubbed to zero allocations per function in PR 6

import (
	"fmt"

	"gobolt/internal/asmx"
	"gobolt/internal/cfi"
	"gobolt/internal/isa"
	"gobolt/internal/obj"
)

// Emission relocation symbol encoding. Emitted code references targets
// symbolically until the whole-binary layout is fixed: a packed
// obj.SymID names a function entry (by ordinal, following ICF folds), a
// basic block (ordinal plus block index), or an absolute address (data,
// PLT stubs, unmoved code). The packed IDs replace the old
// "F:<name>"/"B:<name>:<idx>"/"A:<hex>" string symbols, which allocated
// a string per relocation at emission and re-parsed it per relocation at
// patch time. Construction and inspection go through the internal/obj
// helpers only (boltvet's symid analyzer enforces this).

// relImmAbs32 marks an emission relocation whose 4 patched bytes hold an
// absolute 32-bit address (ICP immediates) rather than a PC32 value.
const relImmAbs32 uint32 = 900

// fragCallSite is an LSDA entry before landing-pad addresses are known.
type fragCallSite struct {
	Start, Len uint32
	LP         *BasicBlock
	Action     int32
}

// batAnchor maps one emitted instruction's output offset back to its
// original input address (the raw material of the BAT table).
type batAnchor struct {
	Off    uint32
	InAddr uint64
}

// noBlockOff marks "block not in this fragment" in emittedFrag.BlockOffs.
const noBlockOff = ^uint32(0)

// emittedFrag is one assembled function fragment (hot or cold).
type emittedFrag struct {
	Code   []byte
	Relocs []obj.Reloc
	// BlockOffs maps block Index -> code offset within the fragment
	// (noBlockOff for blocks of the other fragment).
	BlockOffs []uint32
	CFI       []cfi.PCInst
	CallSites []fragCallSite
	Lines     []obj.LineEntry
	// Anchors records, for every emitted instruction that originated in
	// the input binary, (output offset within the fragment, original
	// address). Sorted by Off; synthesized instructions have no anchor.
	Anchors []batAnchor
}

// blockOff returns the fragment-relative offset of block idx.
func (frag *emittedFrag) blockOff(idx int) (uint32, bool) {
	if idx < 0 || idx >= len(frag.BlockOffs) || frag.BlockOffs[idx] == noBlockOff {
		return 0, false
	}
	return frag.BlockOffs[idx], true
}

// emitted bundles both fragments of a function.
type emitted struct {
	fn   *BinaryFunction
	Hot  *emittedFrag
	Cold *emittedFrag // nil when not split
}

// Emission mark records: positions noted during assembly and resolved to
// offsets once Finish fixes the layout.
type cfiMark struct {
	label asmx.Label
	inst  cfi.Inst
}
type csMark struct {
	start, end asmx.Label
	lp         *BasicBlock
	action     int32
}
type lineMark struct {
	label asmx.Label
	file  string
	line  int32
}
type anchorMark struct {
	label  asmx.Label
	inAddr uint64
}

// emitScratch is one emission worker's reusable state: the assembler
// (items, labels, label-offset scratch), the block label table, and the
// four mark lists. Everything is reset — not reallocated — between
// functions, so steady-state emission allocates only what survives in
// the emitted fragments. A scratch is owned by exactly one worker.
type emitScratch struct {
	asm         asmx.Assembler
	labels      []asmx.Label // block Index -> label; asmx.None = not in fragment
	cfiMarks    []cfiMark
	csMarks     []csMark
	lineMarks   []lineMark
	anchorMarks []anchorMark
}

// resetLabels returns a label slice of length n filled with asmx.None,
// reusing s's backing array when it is big enough.
func resetLabels(s []asmx.Label, n int) []asmx.Label {
	if cap(s) < n {
		s = make([]asmx.Label, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = asmx.None
	}
	return s
}

// fragmentBlocks partitions the layout into hot and cold lists.
func fragmentBlocks(fn *BinaryFunction) (hot, cold []*BasicBlock) {
	for _, b := range fn.Blocks {
		if b.IsCold && fn.IsSplit {
			cold = append(cold, b)
		} else {
			hot = append(hot, b)
		}
	}
	return
}

// emitFunction assembles the function's current block layout into machine
// code: terminators are materialized against the layout (the
// fixup-branches responsibility), CFI is spliced by state diffing, and
// exception call sites are collected per fragment. Everything it reads
// and writes (including the JCC inversion persisted into the CFG) is
// local to fn or to the worker-owned scratch — shared context state is
// only read (ByName, Funcs ordinals) — so Rewrite safely calls it
// concurrently, one worker per function, with all cross-function address
// resolution deferred to the serial layout step.
func (ctx *BinaryContext) emitFunction(fn *BinaryFunction, sc *emitScratch) (*emitted, error) {
	if len(fn.Blocks) > obj.MaxFuncBlocks {
		return nil, fmt.Errorf("core: %s: %d blocks exceeds the %d sym-ID limit", fn.Name, len(fn.Blocks), obj.MaxFuncBlocks)
	}
	hot, cold := fragmentBlocks(fn)
	if len(hot) == 0 || !hot[0].IsEntry {
		return nil, fmt.Errorf("core: %s: entry block must lead the hot fragment", fn.Name)
	}
	out := &emitted{fn: fn}
	var err error
	out.Hot, err = ctx.emitFragment(fn, hot, sc)
	if err != nil {
		return nil, err
	}
	if len(cold) > 0 {
		out.Cold, err = ctx.emitFragment(fn, cold, sc)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// funcSymID resolves a referenced function name to its packed symbol ID.
// ByName is frozen after discovery, so concurrent reads are safe.
func (ctx *BinaryContext) funcSymID(name string) (obj.SymID, error) {
	g := ctx.ByName[name]
	if g == nil {
		return 0, fmt.Errorf("core: unresolved function %q", name)
	}
	return obj.FuncSym(g.ordIdx), nil
}

func (ctx *BinaryContext) emitFragment(fn *BinaryFunction, blocks []*BasicBlock, sc *emitScratch) (*emittedFrag, error) {
	a := &sc.asm
	a.Reset()
	ord := fn.ordIdx

	maxIdx := 0
	for _, b := range blocks {
		if b.Index > maxIdx {
			maxIdx = b.Index
		}
	}
	sc.labels = resetLabels(sc.labels, maxIdx+1)
	labels := sc.labels
	for _, b := range blocks {
		labels[b.Index] = a.NewLabel()
	}

	sc.cfiMarks = sc.cfiMarks[:0]
	sc.csMarks = sc.csMarks[:0]
	sc.lineMarks = sc.lineMarks[:0]
	sc.anchorMarks = sc.anchorMarks[:0]

	// anchor marks the current position as the emission site of the
	// original instruction at inAddr (0 = synthesized, no anchor).
	anchor := func(inAddr uint64) {
		if inAddr == 0 {
			return
		}
		l := a.NewLabel()
		a.Bind(l)
		sc.anchorMarks = append(sc.anchorMarks, anchorMark{label: l, inAddr: inAddr})
	}

	running := cfi.InitialState()
	lastFile, lastLine := "", int32(-1)

	emitCFIDiff := func(target *cfi.State) {
		if target == nil {
			return
		}
		diff := cfi.StateDiff(&running, target)
		if len(diff) == 0 {
			return
		}
		l := a.NewLabel()
		a.Bind(l)
		for _, d := range diff {
			sc.cfiMarks = append(sc.cfiMarks, cfiMark{label: l, inst: d})
		}
		// Clone so later mutations of the interned state don't alias.
		running = cloneState(*target)
	}

	// branchTo emits a direct branch instruction to a block, via label
	// (same fragment, relaxable) or symbolic reloc (cross fragment).
	branchTo := func(inst isa.Inst, to *BasicBlock) {
		if to.Index < len(labels) && labels[to.Index] != asmx.None {
			a.EmitBranch(inst, labels[to.Index])
			return
		}
		a.EmitRelocID(inst, obj.RelPC32, obj.BlockSym(ord, to.Index), -4)
	}

	var emitErr error
	for bi, b := range blocks {
		a.Bind(labels[b.Index])
		var next *BasicBlock
		if bi+1 < len(blocks) {
			next = blocks[bi+1]
		}

		// Determine where the control-flow tail begins: the final
		// instruction if it is a branch/return; everything before it is
		// body.
		nInsts := len(b.Insts)
		tail := -1
		if nInsts > 0 && b.Insts[nInsts-1].I.IsBranch() {
			tail = nInsts - 1
		} else if nInsts > 0 {
			op := b.Insts[nInsts-1].I.Op
			if op == isa.HLT || op == isa.UD2 {
				tail = nInsts - 1
			}
		}

		emitOne := func(in *Inst) {
			emitCFIDiff(fn.StateAt(in.CFIIdx))
			if in.File != lastFile || in.Line != lastLine {
				l := a.NewLabel()
				a.Bind(l)
				sc.lineMarks = append(sc.lineMarks, lineMark{label: l, file: in.File, line: in.Line})
				lastFile, lastLine = in.File, in.Line
			}
			inst := in.I
			var start, end asmx.Label
			if in.LP != nil {
				start, end = a.NewLabel(), a.NewLabel()
				a.Bind(start)
			}
			if inst.Op != isa.NOP {
				anchor(in.Addr)
			}
			switch {
			case inst.Op == isa.NOP:
				// dropped
			case in.ImmSym != "":
				id, err := ctx.funcSymID(in.ImmSym)
				if err != nil {
					emitErr = err
					return
				}
				a.EmitRelocID(inst, relImmAbs32, id, 0)
			case inst.Op == isa.CALL:
				switch {
				case in.TargetSym != "":
					id, err := ctx.funcSymID(in.TargetSym)
					if err != nil {
						emitErr = err
						return
					}
					a.EmitRelocID(inst, obj.RelPC32, id, -4)
				default:
					a.EmitRelocID(inst, obj.RelPC32, obj.AbsSym(inst.TargetAddr), -4)
				}
			case inst.HasMem() && inst.M.RIP && in.MemTarget != 0:
				m := inst
				m.M.Disp = 0
				a.EmitRelocID(m, obj.RelPC32, obj.AbsSym(in.MemTarget), -4)
			default:
				a.Emit(inst)
			}
			if in.LP != nil {
				a.Bind(end)
				sc.csMarks = append(sc.csMarks, csMark{start: start, end: end, lp: in.LP, action: in.LPAction})
			}
		}

		bodyEnd := nInsts
		if tail >= 0 {
			bodyEnd = tail
		}
		for i := 0; i < bodyEnd; i++ {
			emitOne(&b.Insts[i])
			if emitErr != nil {
				return nil, emitErr
			}
		}

		// Control-flow tail, materialized against the layout.
		if tail < 0 {
			// Fall-through block: synthesize a jump if the successor is
			// not next in this fragment.
			if len(b.Succs) == 1 && b.Succs[0].To != next {
				branchTo(isa.NewInst(isa.JMP), b.Succs[0].To)
			}
			continue
		}
		in := &b.Insts[tail]
		emitCFIDiff(fn.StateAt(in.CFIIdx))
		inst := in.I
		switch {
		case inst.Op == isa.JCC && in.TargetSym != "":
			// Conditional tail call (SCTC output).
			anchor(in.Addr)
			id, err := ctx.funcSymID(in.TargetSym)
			if err != nil {
				return nil, err
			}
			a.EmitRelocID(inst, obj.RelPC32, id, -4)
			if len(b.Succs) == 1 && b.Succs[0].To != next {
				branchTo(isa.NewInst(isa.JMP), b.Succs[0].To)
			}
		case inst.Op == isa.JCC:
			if len(b.Succs) != 2 {
				return nil, fmt.Errorf("core: %s block %d: jcc with %d successors", fn.Name, b.Index, len(b.Succs))
			}
			taken, fall := b.Succs[0].To, b.Succs[1].To
			anchor(in.Addr)
			switch {
			case fall == next:
				branchTo(inst, taken)
			case taken == next:
				// Invert the condition so the hot target falls through;
				// persist the inversion in the CFG (edge semantics: the
				// recorded taken edge becomes the fall-through).
				in.I.Cc = inst.Cc.Invert()
				b.Succs[0], b.Succs[1] = b.Succs[1], b.Succs[0]
				branchTo(in.I, fall)
			default:
				branchTo(inst, taken)
				branchTo(isa.NewInst(isa.JMP), fall)
			}
		case inst.Op == isa.JMP && in.TargetSym != "":
			// Tail call to another function.
			anchor(in.Addr)
			id, err := ctx.funcSymID(in.TargetSym)
			if err != nil {
				return nil, err
			}
			a.EmitRelocID(inst, obj.RelPC32, id, -4)
		case inst.Op == isa.JMP:
			if len(b.Succs) != 1 {
				return nil, fmt.Errorf("core: %s block %d: jmp with %d successors", fn.Name, b.Index, len(b.Succs))
			}
			if b.Succs[0].To != next {
				anchor(in.Addr)
				branchTo(inst, b.Succs[0].To)
			}
		case inst.IsIndirectBranch():
			// Jump-table dispatch: emit verbatim; the table bytes are
			// rewritten at layout time.
			emitOne(in)
		default:
			// ret / repz ret / hlt / ud2
			emitOne(in)
		}
		if emitErr != nil {
			return nil, emitErr
		}
	}

	res, err := a.Finish(0)
	if err != nil {
		return nil, fmt.Errorf("core: emitting %s: %w", fn.Name, err)
	}
	// Materialize the fragment from the marks, every slice at its exact
	// final size. res.LabelOffs aliases assembler scratch — it must be
	// fully consumed here, before the next Reset.
	frag := &emittedFrag{
		Code:      res.Code,
		Relocs:    res.Relocs,
		BlockOffs: make([]uint32, maxIdx+1),
	}
	for i := range frag.BlockOffs {
		frag.BlockOffs[i] = noBlockOff
	}
	for _, b := range blocks {
		frag.BlockOffs[b.Index] = res.LabelOffs[labels[b.Index]]
	}
	if n := len(sc.cfiMarks); n > 0 {
		frag.CFI = make([]cfi.PCInst, 0, n)
		for _, m := range sc.cfiMarks {
			frag.CFI = append(frag.CFI, cfi.PCInst{PC: res.LabelOffs[m.label], Inst: m.inst})
		}
	}
	if n := len(sc.csMarks); n > 0 {
		frag.CallSites = make([]fragCallSite, 0, n)
		for _, m := range sc.csMarks {
			frag.CallSites = append(frag.CallSites, fragCallSite{
				Start:  res.LabelOffs[m.start],
				Len:    res.LabelOffs[m.end] - res.LabelOffs[m.start],
				LP:     m.lp,
				Action: m.action,
			})
		}
	}
	if n := len(sc.lineMarks); n > 0 {
		frag.Lines = make([]obj.LineEntry, 0, n)
		for _, m := range sc.lineMarks {
			if m.file == "" {
				continue
			}
			frag.Lines = append(frag.Lines, obj.LineEntry{Off: res.LabelOffs[m.label], File: m.file, Line: m.line})
		}
	}
	// Anchors bind in emission order, which is layout order, so offsets
	// are already ascending; keep the first anchor at any offset (a
	// zero-size emission collapses onto its successor).
	if n := len(sc.anchorMarks); n > 0 {
		frag.Anchors = make([]batAnchor, 0, n)
		for _, m := range sc.anchorMarks {
			off := res.LabelOffs[m.label]
			if n := len(frag.Anchors); n > 0 && frag.Anchors[n-1].Off == off {
				continue
			}
			frag.Anchors = append(frag.Anchors, batAnchor{Off: off, InAddr: m.inAddr})
		}
	}
	return frag, nil
}

package core

import (
	"context"
	"math/rand"
	"testing"

	"gobolt/internal/cc"
	"gobolt/internal/ir"
	"gobolt/internal/isa"
	"gobolt/internal/ld"
	"gobolt/internal/profile"
)

// buildProfBinary links a small program built for profile-matching
// tests: `hot` has a conditional diamond plus a loop back-edge, `leaf`
// is straight-line. entryPad prepends identity moves to hot's entry
// block, modeling the version skew that makes a profile stale.
func buildProfBinary(t *testing.T, entryPad int) *BinaryContext {
	t.Helper()
	leaf := ir.NewFunc("leaf", "l.mir", 4)
	leaf.Blocks[0].Ops = []ir.Op{
		{Kind: ir.OpMov, Dst: isa.RAX, Src: isa.RDI},
		{Kind: ir.OpAddImm, Dst: isa.RAX, Imm: 5},
	}
	leaf.Blocks[0].Term = ir.Term{Kind: ir.TermReturn}

	var pad []ir.Op
	for i := 0; i < entryPad; i++ {
		pad = append(pad, ir.Op{Kind: ir.OpMov, Dst: isa.RAX, Src: isa.RAX})
	}

	// hot: a diamond — entry -> {left, right} -> ret. The entry block is
	// short, so sparse PC sampling routinely misses it while the arms
	// stay hot (the ExecCount bug scenario).
	f := ir.NewFunc("hot", "h.mir", 10)
	left := f.AddBlock()
	right := f.AddBlock()
	ret := f.AddBlock()
	f.Blocks[0].Ops = append(append([]ir.Op(nil), pad...), []ir.Op{
		{Kind: ir.OpMov, Dst: isa.RCX, Src: isa.RDI},
	}...)
	f.Blocks[0].Term = ir.Term{Kind: ir.TermBranch, CmpReg: isa.RCX, CmpImm: 50,
		Cc: isa.CondL, Then: right.Index, Else: left.Index}
	left.Ops = []ir.Op{
		{Kind: ir.OpMovImm, Dst: isa.RAX, Imm: 1},
		{Kind: ir.OpAddImm, Dst: isa.RAX, Imm: 2},
	}
	left.Term = ir.Term{Kind: ir.TermJump, Then: ret.Index}
	right.Ops = []ir.Op{{Kind: ir.OpMovImm, Dst: isa.RAX, Imm: 99}}
	right.Term = ir.Term{Kind: ir.TermJump, Then: ret.Index}
	ret.Term = ir.Term{Kind: ir.TermReturn}

	// loopy: entry -> body; body -> {body, ret} — a hot back edge for
	// the conservation property tests.
	g := ir.NewFunc("loopy", "g.mir", 10)
	body := g.AddBlock()
	gret := g.AddBlock()
	g.Blocks[0].Ops = append(append([]ir.Op(nil), pad...), []ir.Op{
		{Kind: ir.OpMov, Dst: isa.RCX, Src: isa.RDI},
		{Kind: ir.OpMovImm, Dst: isa.RAX, Imm: 0},
	}...)
	g.Blocks[0].Term = ir.Term{Kind: ir.TermJump, Then: body.Index}
	body.Ops = []ir.Op{
		{Kind: ir.OpAddImm, Dst: isa.RAX, Imm: 1},
		{Kind: ir.OpAddImm, Dst: isa.RCX, Imm: -1},
	}
	body.Term = ir.Term{Kind: ir.TermBranch, CmpReg: isa.RCX, CmpImm: 0,
		Cc: isa.CondG, Then: body.Index, Else: gret.Index}
	gret.Term = ir.Term{Kind: ir.TermReturn}

	start := ir.NewFunc("_start", "m.mir", 1)
	start.Blocks[0].Ops = []ir.Op{
		{Kind: ir.OpMovImm, Dst: isa.RDI, Imm: 100},
		{Kind: ir.OpCall, Callee: "hot", SpillReg: isa.NoReg, LandingPad: -1},
		{Kind: ir.OpCall, Callee: "loopy", SpillReg: isa.NoReg, LandingPad: -1},
		{Kind: ir.OpCall, Callee: "leaf", SpillReg: isa.NoReg, LandingPad: -1},
	}
	start.Blocks[0].Term = ir.Term{Kind: ir.TermExit}

	p := &ir.Program{Modules: []*ir.Module{{Name: "m", Funcs: []*ir.Func{start, f, g, leaf}}}}
	p.Finalize()
	opts := cc.DefaultOptions()
	opts.TinyInlineOps = 1
	objs, err := cc.Compile(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ld.Link(objs, ld.Options{EmitRelocs: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(context.Background(), res.File, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

// blockOff returns a block's offset within its function.
func blockOff(fn *BinaryFunction, b *BasicBlock) uint64 { return b.Addr - fn.Addr }

// applyTo runs ApplyProfile and fails the test on error.
func applyTo(t *testing.T, ctx *BinaryContext, fd *profile.Fdata) {
	t.Helper()
	if err := ctx.ApplyProfile(context.Background(), fd); err != nil {
		t.Fatalf("ApplyProfile: %v", err)
	}
}

// TestSampleExecCountFromEntryInflow is the regression test for the
// non-LBR ExecCount bug: a hot function whose short entry block drew no
// PC samples must still get an execution count from its inferred entry
// out-flow instead of being treated as cold.
func TestSampleExecCountFromEntryInflow(t *testing.T) {
	ctx := buildProfBinary(t, 0)
	hot := ctx.ByName["hot"]
	if hot == nil || !hot.Simple || len(hot.Blocks) < 4 {
		t.Fatalf("hot not usable: %+v", hot)
	}
	// Samples only on the diamond arms — none on the short entry block.
	fd := &profile.Fdata{Samples: []profile.Sample{
		{At: profile.Loc{Sym: "hot", Off: blockOff(hot, hot.Blocks[1])}, Count: 3000},
		{At: profile.Loc{Sym: "hot", Off: blockOff(hot, hot.Blocks[2])}, Count: 2000},
	}}
	applyTo(t, ctx, fd)
	if hot.Blocks[0].ExecCount == 0 {
		t.Fatal("entry block count stayed 0 despite hot downstream flow")
	}
	if hot.ExecCount == 0 {
		t.Fatal("ExecCount derived from entry samples only: hot function treated as cold")
	}
	var entryOut uint64
	for _, e := range hot.Blocks[0].Succs {
		entryOut += e.Count
	}
	if hot.ExecCount != entryOut {
		t.Errorf("ExecCount = %d, want entry out-flow %d", hot.ExecCount, entryOut)
	}
	if hot.ProfileAcc != 1.0 {
		t.Errorf("inferred accuracy %v, want 1.0", hot.ProfileAcc)
	}
}

// TestSelfBranchNonSimpleIgnored is the regression test for the applyLBR
// misclassification: a same-function record landing on offset 0 of a
// NON-simple function is a loop back-edge, not a recursive call — it
// must not inflate ExecCount or invent a self CallEdges entry.
func TestSelfBranchNonSimpleIgnored(t *testing.T) {
	ctx := buildProfBinary(t, 0)
	hot := ctx.ByName["hot"]
	hot.Simple = false
	hot.Reason = "forced non-simple for test"
	fd := &profile.Fdata{LBR: true, Branches: []profile.Branch{
		{From: profile.Loc{Sym: "hot", Off: 8}, To: profile.Loc{Sym: "hot", Off: 0}, Count: 7},
	}}
	applyTo(t, ctx, fd)
	if hot.ExecCount != 0 {
		t.Errorf("self branch inflated ExecCount to %d", hot.ExecCount)
	}
	if n := ctx.CallEdges[[2]string{"hot", "hot"}]; n != 0 {
		t.Errorf("self CallEdges entry invented: %d", n)
	}
	if got := ctx.Stats["profile-ignored-count"]; got != 7 {
		t.Errorf("profile-ignored-count = %d, want 7", got)
	}
	if !hot.Sampled {
		t.Error("self branch should still mark the function sampled")
	}
}

// sampleEverything synthesizes a pseudo-random non-LBR profile hitting
// every block of every simple function.
func sampleEverything(ctx *BinaryContext, rng *rand.Rand) *profile.Fdata {
	fd := &profile.Fdata{}
	for _, fn := range ctx.Funcs {
		if !fn.Simple {
			continue
		}
		for _, b := range fn.Blocks {
			if rng.Intn(4) == 0 {
				continue // sparse, like real PC sampling
			}
			fd.Samples = append(fd.Samples, profile.Sample{
				At:    profile.Loc{Sym: fn.Name, Off: blockOff(fn, b)},
				Count: uint64(1 + rng.Intn(10000)),
			})
		}
	}
	return fd
}

// TestSampleInferenceConservesFlow is the satellite property test: with
// minimum-cost-flow inference (the default for non-LBR profiles), every
// inferred simple function satisfies the flow equations exactly —
// inflow == outflow == block count, flowAccuracy 1.0 — unlike the old
// proportional estimator, which lost flow to per-successor truncation.
func TestSampleInferenceConservesFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		ctx := buildProfBinary(t, 0)
		fd := sampleEverything(ctx, rng)
		applyTo(t, ctx, fd)
		for _, fn := range ctx.Funcs {
			if !fn.Simple || !fn.Sampled {
				continue
			}
			if fn.ProfileAcc != 1.0 {
				t.Errorf("trial %d: %s: ProfileAcc %v, want exactly 1.0", trial, fn.Name, fn.ProfileAcc)
			}
			inflow := map[*BasicBlock]uint64{}
			hasPred := map[*BasicBlock]bool{}
			for _, b := range fn.Blocks {
				for _, e := range b.Succs {
					inflow[e.To] += e.Count
					hasPred[e.To] = true
				}
			}
			for i, b := range fn.Blocks {
				if len(b.Succs) > 0 {
					var out uint64
					for _, e := range b.Succs {
						out += e.Count
					}
					if b.ExecCount != out {
						t.Errorf("trial %d: %s block %d: count %d != outflow %d",
							trial, fn.Name, i, b.ExecCount, out)
					}
				}
				if i > 0 && hasPred[b] && !b.IsEntry && b.ExecCount != inflow[b] {
					t.Errorf("trial %d: %s block %d: count %d != inflow %d",
						trial, fn.Name, i, b.ExecCount, inflow[b])
				}
			}
		}
		if ctx.FlowAccAfter != 1.0 {
			t.Errorf("trial %d: FlowAccAfter %v, want 1.0", trial, ctx.FlowAccAfter)
		}
	}
}

// lbrRecords synthesizes branch records for every conditional edge of
// the function, plus inter-function call/return noise against toFn.
func lbrRecords(fn *BinaryFunction, scale uint64) []profile.Branch {
	var out []profile.Branch
	for _, b := range fn.Blocks {
		last := b.LastInst()
		if last == nil || last.I.Op != isa.JCC || len(b.Succs) != 2 {
			continue
		}
		lastOff := last.Addr - fn.Addr
		out = append(out, profile.Branch{
			From:  profile.Loc{Sym: fn.Name, Off: lastOff},
			To:    profile.Loc{Sym: fn.Name, Off: blockOff(fn, b.Succs[0].To)},
			Count: scale,
		})
	}
	return out
}

// statSum asserts the documented invariant straight from the registry
// definitions: every counter declared with SumTo partitions its parent
// exactly (for the profile keys, profile-total-count). The key list
// lives in StatDefs, so a new outcome key added without declaring it
// fails here — not by drifting out of a hand-written sum.
func statSum(t *testing.T, ctx *BinaryContext, label string) {
	t.Helper()
	if err := ctx.Metrics.CheckSums(); err != nil {
		t.Errorf("%s: %v (stats: %v)", label, err, ctx.Stats)
	}
	if und := ctx.Metrics.Undeclared(); len(und) > 0 {
		t.Errorf("%s: undeclared stat keys recorded: %v", label, und)
	}
	if ctx.Stats["profile-total-count"] == 0 {
		t.Errorf("%s: no records counted", label)
	}
}

// TestProfileStatKeysSumToTotal pins the documented accounting
// invariant for all three profile kinds: LBR, non-LBR samples, and a
// stale v2 profile routed through the shape matcher.
func TestProfileStatKeysSumToTotal(t *testing.T) {
	// LBR: real edges, a call, a mid-function landing (ignored), and an
	// unresolvable record (dropped).
	ctx := buildProfBinary(t, 0)
	hot := ctx.ByName["hot"]
	fd := &profile.Fdata{LBR: true, Branches: append(lbrRecords(hot, 100),
		profile.Branch{From: profile.Loc{Sym: "_start", Off: 2}, To: profile.Loc{Sym: "hot", Off: 0}, Count: 40},
		profile.Branch{From: profile.Loc{Sym: "hot", Off: 3}, To: profile.Loc{Sym: "_start", Off: 9}, Count: 11},
		profile.Branch{From: profile.Loc{Sym: "nosuch", Off: 0}, To: profile.Loc{Sym: "hot", Off: 0}, Count: 3},
	)}
	applyTo(t, ctx, fd)
	statSum(t, ctx, "lbr")

	// Non-LBR samples, including one that cannot resolve.
	ctx = buildProfBinary(t, 0)
	sfd := sampleEverything(ctx, rand.New(rand.NewSource(2)))
	sfd.Samples = append(sfd.Samples, profile.Sample{At: profile.Loc{Sym: "nosuch", Off: 0}, Count: 9})
	applyTo(t, ctx, sfd)
	statSum(t, ctx, "samples")

	// Stale: records carry v1 offsets plus v1 shapes, applied to a v2
	// binary whose entry blocks grew pad instructions.
	v1 := buildProfBinary(t, 0)
	v2 := buildProfBinary(t, 3)
	v1hot := v1.ByName["hot"]
	stfd := &profile.Fdata{LBR: true,
		Branches: lbrRecords(v1hot, 50),
		Shapes:   ComputeShapes(v1),
	}
	applyTo(t, v2, stfd)
	statSum(t, v2, "stale")
	if v2.Stats["profile-stale-funcs"] == 0 {
		t.Error("stale profile never engaged the shape matcher")
	}
	if v2.Stats["profile-stale-count"] == 0 {
		t.Error("shape matcher recovered nothing")
	}
}

// TestLBRInferAlwaysRepairs: with InferAlways, an inconsistent LBR
// profile (edge counts lost to sampling skid) is rebalanced to exact
// consistency after classic flow repair.
func TestLBRInferAlwaysRepairs(t *testing.T) {
	ctx := buildProfBinary(t, 0)
	ctx.Opts.InferFlow = InferAlways
	hot := ctx.ByName["hot"]
	recs := lbrRecords(hot, 100)
	// Skew one edge so plain repair cannot make the counts consistent.
	recs[0].Count = 37
	fd := &profile.Fdata{LBR: true, Branches: recs}
	applyTo(t, ctx, fd)
	if hot.ProfileAcc != 1.0 {
		t.Errorf("InferAlways left accuracy %v, want 1.0", hot.ProfileAcc)
	}
	if ctx.FlowAccAfter != 1.0 {
		t.Errorf("FlowAccAfter %v, want 1.0", ctx.FlowAccAfter)
	}
	if ctx.InferredFuncs == 0 {
		t.Error("InferredFuncs not counted")
	}
}

package core

import (
	"context"
	"testing"
)

// Microbenchmarks for the pipeline's hot phases, over the same linked
// fixture the loader tests use. Run with -benchmem; compare runs with
// benchstat. The end-to-end clang-workload numbers live in boltbench
// (-experiment speed); these isolate the core phases for profiling
// tight loops (go test -run=- -bench=. -cpuprofile/-memprofile).

// BenchmarkLoad measures discovery + parallel disassembly + CFG
// construction (NewContext end to end).
func BenchmarkLoad(b *testing.B) {
	f := buildLoaderFile(b, 64)
	opts := DefaultOptions()
	opts.Jobs = 1
	b.ReportAllocs()
	for b.Loop() {
		if _, err := NewContext(context.Background(), f, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmitFunctions measures pure code generation: every simple
// function assembled through one worker scratch, no layout or patching.
func BenchmarkEmitFunctions(b *testing.B) {
	ctx := loadSlabCtx(b, 1)
	simple := ctx.SimpleFuncs()
	var sc emitScratch
	b.ReportAllocs()
	for b.Loop() {
		for _, fn := range simple {
			if _, err := ctx.emitFunction(fn, &sc); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRewrite measures the back half of the pipeline: emission plus
// layout, relocation patching, and metadata regeneration (Rewrite is
// repeatable on a loaded context; its only CFG mutation, JCC inversion,
// reaches a fixpoint on the first iteration).
func BenchmarkRewrite(b *testing.B) {
	ctx := loadSlabCtx(b, 1)
	b.ReportAllocs()
	for b.Loop() {
		if _, err := ctx.Rewrite(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

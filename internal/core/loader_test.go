package core

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"gobolt/internal/cc"
	"gobolt/internal/elfx"
	"gobolt/internal/ir"
	"gobolt/internal/isa"
	"gobolt/internal/ld"
)

// buildLoaderFile links a program with enough functions (plain leaves, a
// jump-table switch, callers) to give the loader's parallel phase real
// work: disassembly, CFG construction, CFI attachment, and call-target
// symbolization all run per function.
func buildLoaderFile(t testing.TB, workers int) *elfx.File {
	t.Helper()
	mod := &ir.Module{Name: "m"}

	for i := 0; i < workers; i++ {
		w := ir.NewFunc(fmt.Sprintf("w%03d", i), "w.mir", int32(i+1))
		w.SavedRegs = []isa.Reg{isa.RBX}
		w.Blocks[0].Ops = []ir.Op{
			{Kind: ir.OpMov, Dst: isa.RAX, Src: isa.RDI},
			{Kind: ir.OpAddImm, Dst: isa.RAX, Imm: int64(i + 1)},
			{Kind: ir.OpShlImm, Dst: isa.RAX, Imm: 1},
		}
		w.Blocks[0].Term = ir.Term{Kind: ir.TermReturn}
		mod.Funcs = append(mod.Funcs, w)
	}

	sw := ir.NewFunc("switchy", "s.mir", 1)
	c0 := sw.AddBlock()
	c1 := sw.AddBlock()
	ret := sw.AddBlock()
	sw.Blocks[0].Ops = []ir.Op{
		{Kind: ir.OpMov, Dst: isa.RCX, Src: isa.RDI},
		{Kind: ir.OpAndImm, Dst: isa.RCX, Imm: 1},
		{Kind: ir.OpCall, Callee: "w000", SpillReg: isa.NoReg, LandingPad: -1},
	}
	sw.Blocks[0].Term = ir.Term{Kind: ir.TermSwitch, IndexReg: isa.RCX,
		Targets: []int{c0.Index, c1.Index}, PIC: true}
	c0.Ops = []ir.Op{{Kind: ir.OpMovImm, Dst: isa.RAX, Imm: 10}}
	c0.Term = ir.Term{Kind: ir.TermJump, Then: ret.Index}
	c1.Ops = []ir.Op{{Kind: ir.OpMovImm, Dst: isa.RAX, Imm: 20}}
	c1.Term = ir.Term{Kind: ir.TermJump, Then: ret.Index}
	ret.Term = ir.Term{Kind: ir.TermReturn}
	mod.Funcs = append(mod.Funcs, sw)

	start := ir.NewFunc("_start", "m.mir", 1)
	var ops []ir.Op
	for i := 0; i < workers; i++ {
		ops = append(ops,
			ir.Op{Kind: ir.OpMovImm, Dst: isa.RDI, Imm: int64(i)},
			ir.Op{Kind: ir.OpCall, Callee: fmt.Sprintf("w%03d", i), SpillReg: isa.NoReg, LandingPad: -1})
	}
	ops = append(ops, ir.Op{Kind: ir.OpCall, Callee: "switchy", SpillReg: isa.NoReg, LandingPad: -1})
	start.Blocks[0].Ops = ops
	start.Blocks[0].Term = ir.Term{Kind: ir.TermExit}
	mod.Funcs = append(mod.Funcs, start)

	p := &ir.Program{Modules: []*ir.Module{mod}}
	p.Finalize()
	opts := cc.DefaultOptions()
	opts.TinyInlineOps = 1 // keep the leaves out-of-line
	objs, err := cc.Compile(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ld.Link(objs, ld.Options{EmitRelocs: true})
	if err != nil {
		t.Fatal(err)
	}
	return res.File
}

// funcShape flattens everything the loader derives for one function into
// a comparable value.
type funcShape struct {
	Name      string
	Addr      uint64
	Simple    bool
	Reason    string
	Blocks    int
	Insts     int
	JTs       int
	CFIStates int
	HasLSDA   bool
	Succs     []int
}

func loaderShapes(ctx *BinaryContext) []funcShape {
	var out []funcShape
	for _, fn := range ctx.Funcs {
		s := funcShape{
			Name: fn.Name, Addr: fn.Addr, Simple: fn.Simple, Reason: fn.Reason,
			Blocks: len(fn.Blocks), JTs: len(fn.JTs),
			CFIStates: len(fn.cfiStates), HasLSDA: fn.HasLSDA,
		}
		for _, b := range fn.Blocks {
			s.Insts += len(b.Insts)
			s.Succs = append(s.Succs, len(b.Succs))
		}
		out = append(out, s)
	}
	return out
}

// TestNewContextDeterministicAcrossJobs is the parallel loader's
// contract: NewContext yields identical function lists, block/edge
// structure, CFI interning, and Stats for any worker count. Under -race
// it also exercises the fan-out phase for data races.
func TestNewContextDeterministicAcrossJobs(t *testing.T) {
	f := buildLoaderFile(t, 24)
	opts := DefaultOptions()
	opts.Jobs = 1
	base, err := NewContext(context.Background(), f, opts)
	if err != nil {
		t.Fatal(err)
	}
	baseShapes := loaderShapes(base)
	if len(baseShapes) < 24 {
		t.Fatalf("expected >= 24 discovered functions, got %d", len(baseShapes))
	}
	for _, jobs := range []int{2, 8} {
		opts.Jobs = jobs
		got, err := NewContext(context.Background(), f, opts)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if !reflect.DeepEqual(baseShapes, loaderShapes(got)) {
			t.Errorf("jobs=%d: loader output differs from jobs=1:\n  jobs=1: %+v\n  jobs=%d: %+v",
				jobs, baseShapes, jobs, loaderShapes(got))
		}
		if !reflect.DeepEqual(base.Stats, got.Stats) {
			t.Errorf("jobs=%d: loader stats diverge:\n  jobs=1: %v\n  jobs=%d: %v",
				jobs, base.Stats, jobs, got.Stats)
		}
		if len(got.LoadTimings) != 2 ||
			got.LoadTimings[0].Name != "load:discover" ||
			got.LoadTimings[1].Name != "load:disasm+cfg" {
			t.Fatalf("jobs=%d: bad load timings %+v", jobs, got.LoadTimings)
		}
		if lt := got.LoadTimings[1]; lt.Funcs != len(got.Funcs) || !lt.Parallel || lt.Jobs != jobs {
			t.Errorf("jobs=%d: disasm+cfg phase not parallel: %+v", jobs, lt)
		}
	}
	// Loader stat shards must have merged exactly.
	if got := base.Stats["load-simple"] + base.Stats["load-non-simple"]; got != int64(len(base.Funcs)) {
		t.Errorf("loader stats cover %d functions, want %d (stats: %v)", got, len(base.Funcs), base.Stats)
	}
}

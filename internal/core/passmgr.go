package core

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"time"
)

// FunctionPass is a transformation confined to a single function: it may
// mutate fn's CFG, instructions, and interned CFI states freely, but must
// treat everything else reachable through the context (other functions,
// the input file, profile maps) as read-only. Passes with that contract
// are embarrassingly parallel — production llvm-bolt runs them on a
// per-function thread pool, and so does the PassManager here.
type FunctionPass interface {
	Name() string
	RunOnFunction(fc *FuncCtx, fn *BinaryFunction) error
}

// FuncCtx is the per-worker view handed to a FunctionPass. It embeds the
// shared BinaryContext for read access (options, file sections, symbol
// maps) and shadows CountStat with a private shard, so concurrent workers
// never contend on — or race over — the shared Stats map. Shards are
// merged back at the pass barrier; int64 addition commutes, so the final
// Stats are identical for any worker count.
type FuncCtx struct {
	*BinaryContext
	stats map[string]int64
}

// CountStat bumps a named statistic in the worker-private shard.
func (fc *FuncCtx) CountStat(name string, delta int64) { fc.stats[name] += delta }

func newFuncCtx(ctx *BinaryContext) *FuncCtx {
	return &FuncCtx{BinaryContext: ctx, stats: map[string]int64{}}
}

// funcPassAdapter lifts a FunctionPass into the Pass pipeline. Under the
// legacy RunPasses entry point it simply loops; under a PassManager with
// Jobs > 1 the manager recognizes the adapter and fans the function list
// out to its worker pool instead.
type funcPassAdapter struct{ fp FunctionPass }

// Name implements Pass.
func (a funcPassAdapter) Name() string { return a.fp.Name() }

// Run implements Pass by visiting every simple function sequentially.
func (a funcPassAdapter) Run(ctx *BinaryContext) error {
	return runSerialFunctionPass(ctx, a.fp, ctx.SimpleFuncs())
}

// runSerialFunctionPass is the single-threaded schedule, shared by the
// adapter's Run and the manager's jobs<=1 fast path.
func runSerialFunctionPass(ctx *BinaryContext, fp FunctionPass, funcs []*BinaryFunction) error {
	fc := newFuncCtx(ctx)
	defer ctx.mergeStats(fc.stats)
	for _, fn := range funcs {
		if err := fp.RunOnFunction(fc, fn); err != nil {
			return fmt.Errorf("%s: %w", fn.Name, err)
		}
	}
	return nil
}

// ForEachFunction wraps a FunctionPass for use in a []Pass pipeline.
func ForEachFunction(fp FunctionPass) Pass { return funcPassAdapter{fp} }

// PassTiming records one pass execution for the -time-passes report.
type PassTiming struct {
	Name     string
	Wall     time.Duration
	Funcs    int  // functions visited (0 for whole-binary passes)
	Parallel bool // scheduled on the worker pool
	Jobs     int  // workers actually used
	// StatDelta holds the counters this pass added to ctx.Stats.
	StatDelta map[string]int64
}

// PassManager schedules an optimization pipeline over a BinaryContext.
// Function passes (built with ForEachFunction) are fanned out over a
// bounded pool of Jobs workers; whole-binary passes run in place as
// sequential barriers, so every pass still observes the pipeline order of
// Table 1. Output is bit-identical for any Jobs value: workers only
// mutate the function they were handed, stats merge commutatively, and
// emission order is fixed by the context's address-sorted function list
// (plus FuncOrder), never by completion order.
type PassManager struct {
	// Jobs bounds the worker pool for function passes (<= 1 = serial).
	Jobs int
	// Timings accumulates per-pass instrumentation (always collected; it
	// costs one clock read and a small map diff per pass).
	Timings []PassTiming
}

// NewPassManager returns a manager with the given parallelism; jobs <= 0
// selects GOMAXPROCS, the production default.
func NewPassManager(jobs int) *PassManager {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	return &PassManager{Jobs: jobs}
}

// Run executes the pipeline in order, recording per-pass wall time and
// stat deltas. The error (if any) is wrapped with the failing pass name.
// Cancelling cx stops the pipeline at the next pass boundary — and, for
// function passes in flight, at the next work-item claim — returning
// cx.Err() unwrapped.
func (pm *PassManager) Run(cx context.Context, ctx *BinaryContext, passes []Pass) error {
	if cx == nil {
		cx = context.Background()
	}
	for _, p := range passes {
		if err := cx.Err(); err != nil {
			return err
		}
		before := ctx.statsSnapshot()
		start := time.Now()
		timing := PassTiming{Name: p.Name(), Jobs: 1}
		var err error
		if a, ok := p.(funcPassAdapter); ok {
			timing.Funcs, timing.Jobs, err = pm.runFunctionPass(cx, ctx, a.fp)
			timing.Parallel = timing.Jobs > 1
		} else {
			err = p.Run(ctx)
		}
		timing.Wall = time.Since(start)
		ctx.Opts.Trace.Phase(p.Name(), start, timing.Wall, timing.Jobs)
		timing.StatDelta = statDelta(before, ctx.statsSnapshot())
		pm.Timings = append(pm.Timings, timing)
		ctx.PassTimings = pm.Timings
		if err != nil {
			if cx.Err() != nil && err == cx.Err() {
				// Cancellation is not the pass's failure; surface it bare
				// so callers can match it with errors.Is.
				return err
			}
			return fmt.Errorf("pass %s: %w", p.Name(), err)
		}
	}
	return nil
}

// runFunctionPass fans one FunctionPass out over the worker pool via
// the traced fan-out; each worker owns a private stats shard, merged
// after the join. jobs <= 1 runs the same schedule inline. On error the
// failure attributed to the lowest function index is reported, keeping
// messages stable across schedules.
func (pm *PassManager) runFunctionPass(cx context.Context, ctx *BinaryContext, fp FunctionPass) (int, int, error) {
	funcs := ctx.SimpleFuncs()
	jobs := pm.Jobs
	if jobs > len(funcs) {
		jobs = len(funcs)
	}
	if jobs < 1 {
		jobs = 1
	}
	workers := make([]*FuncCtx, jobs)
	for w := range workers {
		workers[w] = newFuncCtx(ctx)
	}
	errIdx, err := ctx.forPhase(cx, fp.Name(),
		func(i int) string { return funcs[i].Name },
		len(funcs), jobs, func(w, i int) error {
			return fp.RunOnFunction(workers[w], funcs[i])
		})
	for _, fc := range workers {
		ctx.mergeStats(fc.stats)
	}
	if err != nil {
		if errIdx < 0 {
			// Cancellation: no function failed; return the context error.
			return len(funcs), jobs, err
		}
		return len(funcs), jobs, fmt.Errorf("%s: %w", funcs[errIdx].Name, err)
	}
	return len(funcs), jobs, nil
}

// AmdahlSummary aggregates a timing list into the quantities Amdahl's
// law cares about: how much of the pipeline wall ran on the worker pool
// versus serially, and the speedup ceiling the serial share implies.
type AmdahlSummary struct {
	Total        time.Duration
	ParallelWall time.Duration // phases scheduled on the worker pool
	SerialWall   time.Duration // barriers and serial phases
	// SerialFraction is SerialWall/Total (0 for an empty timing list).
	SerialFraction float64
	// MaxUsefulJobs is 1/SerialFraction — the asymptotic speedup bound,
	// so also the job count beyond which adding workers cannot help.
	// +Inf when no serial wall was measured.
	MaxUsefulJobs float64
}

// Amdahl folds a timing list into its serial/parallel split. A phase
// counts as parallel only if it actually ran on the pool (Jobs > 1), so
// the summary reflects the measured schedule, not the theoretical one.
func Amdahl(timings []PassTiming) AmdahlSummary {
	var s AmdahlSummary
	for _, t := range timings {
		s.Total += t.Wall
		if t.Parallel {
			s.ParallelWall += t.Wall
		} else {
			s.SerialWall += t.Wall
		}
	}
	if s.Total > 0 {
		s.SerialFraction = float64(s.SerialWall) / float64(s.Total)
	}
	if s.SerialFraction > 0 {
		s.MaxUsefulJobs = 1 / s.SerialFraction
	} else {
		s.MaxUsefulJobs = math.Inf(1)
	}
	return s
}

// statDelta returns after-before for every changed counter.
func statDelta(before, after map[string]int64) map[string]int64 {
	var out map[string]int64
	for k, v := range after {
		if d := v - before[k]; d != 0 {
			if out == nil {
				out = map[string]int64{}
			}
			out[k] = d
		}
	}
	return out
}

// WriteTimings renders the -time-passes report: per-pass wall time, share
// of the pipeline, scheduling mode, function count, and stat deltas.
func WriteTimings(w io.Writer, timings []PassTiming) {
	var total time.Duration
	for _, t := range timings {
		total += t.Wall
	}
	fmt.Fprintf(w, "===-- Pass execution timing report (pipeline total %v) --===\n",
		total.Round(time.Microsecond))
	for _, t := range timings {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(t.Wall) / float64(total)
		}
		mode := "barrier"
		switch {
		case t.Parallel:
			mode = fmt.Sprintf("%d jobs", t.Jobs)
		case t.Funcs > 0:
			mode = "serial"
		}
		fmt.Fprintf(w, "  %-20s %12v %5.1f%%  %-8s", t.Name,
			t.Wall.Round(time.Microsecond), pct, mode)
		if t.Funcs > 0 {
			fmt.Fprintf(w, " %5d funcs", t.Funcs)
		}
		if len(t.StatDelta) > 0 {
			keys := make([]string, 0, len(t.StatDelta))
			for k := range t.StatDelta {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			sep := "  "
			for _, k := range keys {
				fmt.Fprintf(w, "%s%s=%+d", sep, k, t.StatDelta[k])
				sep = " "
			}
		}
		fmt.Fprintln(w)
	}
	s := Amdahl(timings)
	jobs := "unbounded"
	if !math.IsInf(s.MaxUsefulJobs, 1) {
		jobs = fmt.Sprintf("~%.0f", math.Ceil(s.MaxUsefulJobs))
	}
	fmt.Fprintf(w, "  Amdahl: total %v, parallel %v (%.1f%%), serial %v (%.1f%%), max useful jobs %s\n",
		s.Total.Round(time.Microsecond),
		s.ParallelWall.Round(time.Microsecond), 100*(1-s.SerialFraction),
		s.SerialWall.Round(time.Microsecond), 100*s.SerialFraction, jobs)
}

package core

//boltvet:hot-path emission back half (layout/patch/metadata), allocation-scrubbed in PRs 6-7

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"gobolt/internal/bat"
	"gobolt/internal/cfi"
	"gobolt/internal/dbg"
	"gobolt/internal/elfx"
	"gobolt/internal/obj"
)

// RewriteResult reports what the rewrite did.
type RewriteResult struct {
	File *elfx.File

	MovedFuncs   int
	SkippedFuncs int
	HotTextSize  uint64
	ColdTextSize uint64
	OrigTextSize uint64
	FoldedFuncs  int
	SplitFuncs   int
}

// Rewrite emits all simple functions into a fresh .text (hot) and
// .text.cold (split) layout, patches every reference the relocations
// reveal, rebuilds CFI/LSDA/line metadata, and returns the new
// executable. Non-simple functions stay at their original addresses in
// the renamed ".bolt.org.text" section with their outgoing calls patched
// in place (paper §3.2 relocations mode). Cancelling cx aborts the
// parallel emission phase promptly and returns cx.Err().
func (ctx *BinaryContext) Rewrite(cx context.Context) (*RewriteResult, error) {
	if cx == nil {
		cx = context.Background()
	}
	if !ctx.HasRelocs {
		return nil, fmt.Errorf("core: relocations mode requires a binary linked with --emit-relocs")
	}
	if err := cx.Err(); err != nil {
		return nil, err
	}
	f := ctx.File
	res := &RewriteResult{}
	ctx.EmitTimings = nil

	// Ordered list of functions to move.
	moved := ctx.orderedSimpleFuncs()
	for _, fn := range ctx.Funcs {
		if fn.FoldedInto != nil {
			res.FoldedFuncs++
		} else if !fn.Simple {
			res.SkippedFuncs++
		}
	}

	// Emit every hot/cold fragment concurrently into per-function
	// buffers. Each emitFunction call reads and writes only its own
	// function plus its worker's scratch (assembler, label table, mark
	// lists — reused across the worker's whole share of functions), and
	// results land at a fixed slice index, so the layout below — and
	// therefore the output bytes — are identical for any worker count.
	emitStart := time.Now()
	emits := make([]*emitted, len(moved))
	jobs := effectiveJobs(ctx.Opts.Jobs, len(moved))
	escratch := make([]emitScratch, jobs)
	if _, err := ctx.forPhase(cx, "emit:functions",
		func(i int) string { return moved[i].Name },
		len(moved), jobs, func(w, i int) error {
			e, err := ctx.emitFunction(moved[i], &escratch[w])
			if err != nil {
				return err
			}
			emits[i] = e
			return nil
		}); err != nil {
		return nil, err
	}
	emitWall := time.Since(emitStart)
	ctx.Opts.Trace.Phase("emit:functions", emitStart, emitWall, jobs)
	ctx.EmitTimings = append(ctx.EmitTimings, PassTiming{
		Name: "emit:functions", Wall: emitWall,
		Funcs: len(moved), Parallel: jobs > 1, Jobs: jobs,
	})
	// ---- emit:layout ----
	// Serial address assignment: a prefix-sum over the emitted fragment
	// sizes. Inherently sequential (each function's address depends on
	// every predecessor's aligned size) but linear and branch-free, so it
	// is a sliver of the former monolithic layout+patch region.
	layoutStart := time.Now()

	// New section layout after the last alloc section.
	align := func(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }
	end := uint64(0)
	for _, s := range f.Sections {
		if s.Flags&elfx.SHFAlloc != 0 && s.Addr+s.Size() > end {
			end = s.Addr + s.Size()
		}
	}
	hotBase := align(end, 0x1000)
	addr := hotBase
	fa := uint64(ctx.Opts.AlignFunctions)
	if fa == 0 {
		fa = 16
	}
	for _, e := range emits {
		addr = align(addr, fa)
		e.fn.OutAddr = addr
		e.fn.OutSize = uint64(len(e.Hot.Code))
		addr += e.fn.OutSize
	}
	hotEnd := addr
	coldBase := align(hotEnd, 64)
	addr = coldBase
	for _, e := range emits {
		if e.Cold == nil {
			continue
		}
		addr = align(addr, 16)
		e.fn.ColdAddr = addr
		e.fn.ColdSize = uint64(len(e.Cold.Code))
		addr += e.fn.ColdSize
		res.SplitFuncs++
	}
	coldEnd := addr
	res.MovedFuncs = len(emits)
	res.HotTextSize = hotEnd - hotBase
	res.ColdTextSize = coldEnd - coldBase
	// emitOf is indexed by function ordinal (BinaryFunction.ordIdx); nil
	// for functions that were not re-emitted.
	emitOf := make([]*emitted, len(ctx.Funcs))
	for _, e := range emits {
		emitOf[e.fn.ordIdx] = e
	}
	layoutWall := time.Since(layoutStart)
	ctx.Opts.Trace.Phase("emit:layout", layoutStart, layoutWall, 1)
	ctx.EmitTimings = append(ctx.EmitTimings, PassTiming{
		Name: "emit:layout", Wall: layoutWall,
		Funcs: len(emits), Jobs: 1,
	})

	// Symbol resolution for emitted relocations.
	blockAddr := func(fn *BinaryFunction, idx int, e *emitted) (uint64, bool) {
		if off, ok := e.Hot.blockOff(idx); ok {
			return fn.OutAddr + uint64(off), true
		}
		if e.Cold != nil {
			if off, ok := e.Cold.blockOff(idx); ok {
				return fn.ColdAddr + uint64(off), true
			}
		}
		return 0, false
	}
	// finalFuncAddr resolves a function name to its final entry address,
	// following ICF folds. (Input relocations and the entry point carry
	// names; emitted relocations carry packed IDs — see resolveID.)
	finalFuncAddr := func(name string) (uint64, bool) {
		fn := ctx.ByName[name]
		if fn == nil {
			return 0, false
		}
		for fn.FoldedInto != nil {
			fn = fn.FoldedInto
		}
		if emitOf[fn.ordIdx] != nil {
			return fn.OutAddr, true
		}
		return fn.Addr, true
	}
	resolveID := func(sym obj.SymID) (uint64, error) {
		switch sym.Kind() {
		case obj.SymFunc:
			fn := ctx.Funcs[sym.FuncOrd()]
			for fn.FoldedInto != nil {
				fn = fn.FoldedInto
			}
			if emitOf[fn.ordIdx] != nil {
				return fn.OutAddr, nil
			}
			return fn.Addr, nil
		case obj.SymBlock:
			ord, idx := sym.BlockRef()
			fn := ctx.Funcs[ord]
			e := emitOf[fn.ordIdx]
			if e == nil {
				return 0, fmt.Errorf("core: block sym for unmoved function %q", fn.Name)
			}
			if v, ok := blockAddr(fn, idx, e); ok {
				return v, nil
			}
			return 0, fmt.Errorf("core: block %d of %s not emitted", idx, fn.Name)
		case obj.SymAbs:
			return sym.AbsAddr(), nil
		}
		return 0, fmt.Errorf("core: bad emission sym %#x", sym)
	}

	// ---- emit:patch ----
	// Patch emitted code and place it into the new text sections. Each
	// function's relocations target only its own fragment buffers, and
	// the layout assigns every fragment a disjoint range of the output
	// sections, so both the patching and the section copy fan out over
	// the worker pool; only the input-section rela patching and jump
	// table rewrite (shared section data) stay serial.
	patchStart := time.Now()
	patch32 := func(code []byte, off uint32, v uint32) {
		binary.LittleEndian.PutUint32(code[off:], v)
	}
	patchFrag := func(frag *emittedFrag, base uint64) error {
		for _, r := range frag.Relocs {
			s, err := resolveID(r.SymID)
			if err != nil {
				return err
			}
			if r.Type == relImmAbs32 {
				patch32(frag.Code, r.Off, uint32(int64(s)+r.Addend))
				continue
			}
			p := base + uint64(r.Off)
			patch32(frag.Code, r.Off, uint32(int64(s)+r.Addend-int64(p)))
		}
		return nil
	}
	hotData := make([]byte, hotEnd-hotBase)
	var coldData []byte
	if coldEnd > coldBase {
		coldData = make([]byte, coldEnd-coldBase)
	}
	if _, err := ctx.forPhase(cx, "emit:patch",
		func(i int) string { return emits[i].fn.Name },
		len(emits), jobs, func(_, i int) error {
			e := emits[i]
			if err := patchFrag(e.Hot, e.fn.OutAddr); err != nil {
				return err
			}
			copy(hotData[e.fn.OutAddr-hotBase:], e.Hot.Code)
			if e.Cold != nil {
				if err := patchFrag(e.Cold, e.fn.ColdAddr); err != nil {
					return err
				}
				copy(coldData[e.fn.ColdAddr-coldBase:], e.Cold.Code)
			}
			return nil
		}); err != nil {
		return nil, err
	}

	// Build the output file: copy sections (patched below).
	out := elfx.New()
	movedFn := func(name string) *BinaryFunction {
		fn := ctx.ByName[name]
		if fn == nil {
			return nil
		}
		for fn.FoldedInto != nil {
			fn = fn.FoldedInto
		}
		if emitOf[fn.ordIdx] != nil {
			return fn
		}
		return nil
	}

	// mapOldAddr translates an address inside a moved function's original
	// body to its new location (block-granular; used for data relocs and
	// jump tables).
	mapOldAddr := func(old uint64) (uint64, bool) {
		fn := ctx.FuncContaining(old)
		if fn == nil {
			return 0, false
		}
		for fn.FoldedInto != nil {
			// Identical bodies: same offsets.
			canon := fn.FoldedInto
			old = canon.Addr + (old - fn.Addr)
			fn = canon
		}
		e := emitOf[fn.ordIdx]
		if e == nil {
			return old, true // unmoved
		}
		if old == fn.Addr {
			return fn.OutAddr, true
		}
		if b := fn.BlockAt(old); b != nil {
			if v, ok := blockAddr(fn, b.Index, e); ok {
				return v, true
			}
		}
		return 0, false
	}

	for _, s := range f.Sections {
		ns := &elfx.Section{
			Name: s.Name, Type: s.Type, Flags: s.Flags, Addr: s.Addr,
			Data: append([]byte(nil), s.Data...), Link: s.Link, Info: s.Info,
			Addralign: s.Addralign, Entsize: s.Entsize,
		}
		switch s.Name {
		case ".text":
			ns.Name = ".bolt.org.text"
			res.OrigTextSize = s.Size()
		case cfi.FrameSectionName, cfi.LSDASectionName, dbg.SectionName:
			continue // regenerated below
		}
		out.AddSection(ns)
	}

	// Patch stale references inside kept sections. The patched ranges
	// are disjoint per section, but iterate in sorted order anyway so
	// the emission path is order-deterministic by construction (and
	// any future cross-section state stays schedule-free).
	relaNames := make([]string, 0, len(f.Relas))
	for sectName := range f.Relas {
		relaNames = append(relaNames, sectName)
	}
	sort.Strings(relaNames)
	for _, sectName := range relaNames {
		relas := f.Relas[sectName]
		sec := f.Section(sectName)
		outName := sectName
		if sectName == ".text" {
			outName = ".bolt.org.text"
		}
		osec := out.Section(outName)
		if sec == nil || osec == nil {
			continue
		}
		isCode := sec.Flags&elfx.SHFExecinstr != 0
		for _, r := range relas {
			p := sec.Addr + r.Off
			if isCode {
				// Only patch code of functions that stay in place.
				owner := ctx.FuncContaining(p)
				if owner == nil || movedFn(owner.Name) != nil || owner.FoldedInto != nil {
					continue
				}
				target := ctx.ByName[r.Sym]
				if target == nil {
					continue
				}
				tm := movedFn(r.Sym)
				foldTarget := target.FoldedInto != nil
				if tm == nil && !foldTarget {
					continue // target did not move
				}
				switch r.Type {
				case obj.RelPC32, obj.RelPLT32:
					// Calls/tail-calls target function entries (addend is
					// the conventional -4).
					entry, ok := finalFuncAddr(r.Sym)
					if !ok {
						continue
					}
					binary.LittleEndian.PutUint32(osec.Data[r.Off:],
						uint32(int64(entry)+r.Addend-int64(p)))
				case obj.RelAbs64:
					oldVal := target.Addr + uint64(r.Addend)
					if nv, ok := mapOldAddr(oldVal); ok {
						binary.LittleEndian.PutUint64(osec.Data[r.Off:], nv)
					}
				}
				continue
			}
			// Data sections: retarget absolute words into moved code.
			if r.Type == obj.RelAbs64 {
				target := ctx.ByName[r.Sym]
				if target == nil {
					continue
				}
				oldVal := target.Addr + uint64(r.Addend)
				if nv, ok := mapOldAddr(oldVal); ok && nv != oldVal {
					binary.LittleEndian.PutUint64(osec.Data[r.Off:], nv)
				}
			}
		}
	}

	// Rewrite PIC jump tables of moved functions (no relocations exist
	// for them; gobolt recovered the tables by analysis, §3.2).
	for _, e := range emits {
		for _, jt := range e.fn.JTs {
			sec := out.SectionFor(jt.Addr)
			if sec == nil {
				continue
			}
			off := jt.Addr - sec.Addr
			for i, tb := range jt.Targets {
				if tb == nil {
					continue
				}
				nv, ok := blockAddr(e.fn, tb.Index, e)
				if !ok {
					return nil, fmt.Errorf("core: jump table of %s references unemitted block %d", e.fn.Name, tb.Index)
				}
				if jt.PIC {
					binary.LittleEndian.PutUint32(sec.Data[off+uint64(4*i):], uint32(int64(nv)-int64(jt.Addr)))
				} else {
					binary.LittleEndian.PutUint64(sec.Data[off+uint64(8*i):], nv)
				}
			}
		}
	}

	// Register the new text sections (data filled by the parallel
	// patch+copy stage above).
	out.AddSection(&elfx.Section{
		Name: ".text", Type: elfx.SHTProgbits,
		Flags: elfx.SHFAlloc | elfx.SHFExecinstr,
		Addr:  hotBase, Data: hotData, Addralign: 16,
	})
	if coldEnd > coldBase {
		out.AddSection(&elfx.Section{
			Name: ".text.cold", Type: elfx.SHTProgbits,
			Flags: elfx.SHFAlloc | elfx.SHFExecinstr,
			Addr:  coldBase, Data: coldData, Addralign: 16,
		})
	}
	patchWall := time.Since(patchStart)
	ctx.Opts.Trace.Phase("emit:patch", patchStart, patchWall, jobs)
	ctx.EmitTimings = append(ctx.EmitTimings, PassTiming{
		Name: "emit:patch", Wall: patchWall,
		Funcs: len(emits), Parallel: jobs > 1, Jobs: jobs,
	})

	// ---- emit:metadata ----
	// BAT, exception tables, line table, and symbols. Per-function blobs
	// (LSDA call-site tables, FDE skeletons, line entries) are built in
	// parallel into index-addressed slots; the serial tail only
	// concatenates them in layout order, so section bytes match a fully
	// serial rebuild.
	metaStart := time.Now()

	// BOLT Address Translation table (§7.3 continuous profiling): one
	// range per emitted fragment, anchoring every surviving instruction's
	// output offset to its input-function offset. Built from the ordered
	// emits slice, so the section bytes are identical for any worker
	// count.
	if ctx.Opts.EnableBAT {
		bt := &bat.Table{}
		addRange := func(fn *BinaryFunction, frag *emittedFrag, start uint64, cold bool) {
			r := bat.Range{
				FuncIdx: bt.AddFunc(fn.Name, fn.Size),
				Start:   start, Size: uint32(len(frag.Code)), Cold: cold,
			}
			for _, an := range frag.Anchors {
				// Instructions spliced in from another function (inlined
				// bodies keep their origin addresses) are not part of this
				// function's input coordinate space; skip them.
				if an.InAddr < fn.Addr || an.InAddr >= fn.Addr+fn.Size {
					continue
				}
				r.Entries = append(r.Entries, bat.Entry{
					OutOff: an.Off, InOff: uint32(an.InAddr - fn.Addr),
				})
			}
			bt.AddRange(r)
		}
		for _, e := range emits {
			addRange(e.fn, e.Hot, e.fn.OutAddr, false)
			if e.Cold != nil {
				addRange(e.fn, e.Cold, e.fn.ColdAddr, true)
			}
		}
		out.AddSection(&elfx.Section{
			Name: bat.SectionName, Type: elfx.SHTProgbits,
			Data: bt.Encode(), Addralign: 1,
		})
	}

	// Exception tables: regenerate the LSDA section and all FDEs. Each
	// fragment's call-site table is encoded into a private blob by the
	// worker pool (cfi.EncodeLSDA is a pure append, so blobs concatenate
	// byte-identically to sequential encoding); the serial join assigns
	// the blob base offsets in layout order. Line entries for moved code
	// are offset per fragment in the same parallel pass.
	lsdaBase := align(coldEnd, 8)
	type lineEntry struct {
		addr uint64
		file string
		line uint32
	}
	type emitMeta struct {
		hotLSDA, coldLSDA []byte
		hotFDE, coldFDE   cfi.FDE
		lines             []lineEntry
	}
	metas := make([]emitMeta, len(emits))
	buildLSDA := func(frag *emittedFrag, e *emitted) ([]byte, error) {
		if len(frag.CallSites) == 0 {
			return nil, nil
		}
		l := &cfi.LSDA{CallSites: make([]cfi.CallSite, 0, len(frag.CallSites))}
		for _, cs := range frag.CallSites {
			lp, ok := blockAddr(e.fn, cs.LP.Index, e)
			if !ok {
				return nil, fmt.Errorf("core: landing pad block %d of %s not emitted", cs.LP.Index, e.fn.Name)
			}
			l.CallSites = append(l.CallSites, cfi.CallSite{
				Start: cs.Start, Len: cs.Len, LandingPad: lp, Action: cs.Action,
			})
		}
		blob, _ := cfi.EncodeLSDA(nil, l)
		return blob, nil
	}
	if _, err := ctx.forPhase(cx, "emit:metadata",
		func(i int) string { return emits[i].fn.Name },
		len(emits), jobs, func(_, i int) error {
			e, m := emits[i], &metas[i]
			var err error
			if m.hotLSDA, err = buildLSDA(e.Hot, e); err != nil {
				return err
			}
			m.hotFDE = cfi.FDE{Start: e.fn.OutAddr, Len: uint32(len(e.Hot.Code)), Insts: e.Hot.CFI}
			if ctx.Opts.UpdateDebugSections {
				for _, ln := range e.Hot.Lines {
					m.lines = append(m.lines, lineEntry{e.fn.OutAddr + uint64(ln.Off), ln.File, uint32(ln.Line)})
				}
			}
			if e.Cold != nil {
				if m.coldLSDA, err = buildLSDA(e.Cold, e); err != nil {
					return err
				}
				m.coldFDE = cfi.FDE{Start: e.fn.ColdAddr, Len: uint32(len(e.Cold.Code)), Insts: e.Cold.CFI}
				if ctx.Opts.UpdateDebugSections {
					for _, ln := range e.Cold.Lines {
						m.lines = append(m.lines, lineEntry{e.fn.ColdAddr + uint64(ln.Off), ln.File, uint32(ln.Line)})
					}
				}
			}
			return nil
		}); err != nil {
		return nil, err
	}
	// Serial concat: upper bound on FDE count is one per emitted fragment
	// plus every kept input FDE; the LSDA blob is presized to the summed
	// emitted-fragment size so the concat loop (almost) never regrows it
	// — only kept input LSDAs re-encoded below can push past the hint.
	lsdaSize := 0
	for i := range metas {
		lsdaSize += len(metas[i].hotLSDA) + len(metas[i].coldLSDA)
	}
	lsdaData := make([]byte, 0, lsdaSize)
	fdes := make([]cfi.FDE, 0, len(emits)+res.SplitFuncs+len(ctx.fdes))
	for i, e := range emits {
		m := &metas[i]
		if m.hotLSDA != nil {
			m.hotFDE.LSDA = lsdaBase + uint64(len(lsdaData))
			lsdaData = append(lsdaData, m.hotLSDA...)
		}
		fdes = append(fdes, m.hotFDE)
		if e.Cold != nil {
			if m.coldLSDA != nil {
				m.coldFDE.LSDA = lsdaBase + uint64(len(lsdaData))
				lsdaData = append(lsdaData, m.coldLSDA...)
			}
			fdes = append(fdes, m.coldFDE)
		}
	}
	// Keep FDEs (and LSDA records) of unmoved functions.
	for _, fde := range ctx.fdes {
		fn := ctx.FuncContaining(fde.Start)
		if fn != nil && (emitOf[fn.ordIdx] != nil || fn.FoldedInto != nil) {
			continue
		}
		nf := fde
		if fde.LSDA != 0 {
			old, err := cfi.DecodeLSDA(ctx.lsdaData, uint32(fde.LSDA-ctx.lsdaBase))
			if err != nil {
				return nil, err
			}
			var off uint32
			lsdaData, off = cfi.EncodeLSDA(lsdaData, old)
			nf.LSDA = lsdaBase + uint64(off)
		}
		fdes = append(fdes, nf)
	}
	if len(lsdaData) > 0 {
		out.AddSection(&elfx.Section{
			Name: cfi.LSDASectionName, Type: elfx.SHTProgbits, Flags: elfx.SHFAlloc,
			Addr: lsdaBase, Data: lsdaData, Addralign: 8,
		})
	}
	out.AddSection(&elfx.Section{
		Name: cfi.FrameSectionName, Type: elfx.SHTProgbits,
		Data: cfi.EncodeFrames(fdes), Addralign: 8,
	})

	// Debug line table (-update-debug-sections).
	if ctx.Opts.UpdateDebugSections {
		nt := &dbg.Table{}
		if ctx.LineTable != nil {
			for _, en := range ctx.LineTable.Entries {
				fn := ctx.FuncContaining(en.Addr)
				if fn != nil && (emitOf[fn.ordIdx] != nil || fn.FoldedInto != nil) {
					continue
				}
				if int(en.File) < len(ctx.LineTable.Files) {
					nt.Add(en.Addr, ctx.LineTable.Files[en.File], en.Line)
				}
			}
		}
		// Moved-code entries were offset per fragment by the parallel
		// metadata pass; Add them in layout order so file interning and
		// the (order-sensitive) sort+dedup match a serial rebuild.
		for i := range metas {
			for _, ln := range metas[i].lines {
				nt.Add(ln.addr, ln.file, ln.line)
			}
		}
		nt.Sort()
		out.AddSection(&elfx.Section{
			Name: dbg.SectionName, Type: elfx.SHTProgbits,
			Data: nt.Encode(), Addralign: 8,
		})
	}

	// Symbols: every input symbol survives, plus one ".cold.0" marker per
	// split function.
	out.Symbols = make([]elfx.Symbol, 0, len(f.Symbols)+res.SplitFuncs)
	for _, sym := range f.Symbols {
		ns := sym
		if sym.Type == elfx.STTFunc {
			if fn := ctx.ByName[sym.Name]; fn != nil {
				canon := fn
				for canon.FoldedInto != nil {
					canon = canon.FoldedInto
				}
				if e := emitOf[canon.ordIdx]; e != nil {
					ns.Value = canon.OutAddr
					ns.Size = canon.OutSize
					ns.Section = ".text"
				} else if sym.Section == ".text" {
					ns.Section = ".bolt.org.text"
				}
			} else if sym.Section == ".text" {
				ns.Section = ".bolt.org.text"
			}
		} else if sym.Section == ".text" {
			ns.Section = ".bolt.org.text"
		}
		out.Symbols = append(out.Symbols, ns)
	}
	for _, e := range emits {
		if e.Cold != nil {
			out.Symbols = append(out.Symbols, elfx.Symbol{
				//boltvet:alloc-ok one symbol-name string per split function; elfx.Symbol.Name is a string, so the allocation is inherent
				Name: e.fn.Name + ".cold.0", Value: e.fn.ColdAddr, Size: e.fn.ColdSize,
				Type: elfx.STTFunc, Bind: elfx.STBLocal, Section: ".text.cold",
			})
		}
	}

	// Entry point.
	out.Entry = f.Entry
	if v, ok := finalFuncAddr("_start"); ok {
		out.Entry = v
	}
	metaWall := time.Since(metaStart)
	ctx.Opts.Trace.Phase("emit:metadata", metaStart, metaWall, jobs)
	ctx.EmitTimings = append(ctx.EmitTimings, PassTiming{
		Name: "emit:metadata", Wall: metaWall,
		Funcs: len(emits), Parallel: jobs > 1, Jobs: jobs,
	})
	res.File = out
	return res, nil
}

// orderedSimpleFuncs returns movable functions in the final layout order
// (FuncOrder from reorder-functions first, the rest in original order).
func (ctx *BinaryContext) orderedSimpleFuncs() []*BinaryFunction {
	simple := ctx.SimpleFuncs()
	if len(ctx.FuncOrder) == 0 {
		return simple
	}
	placed := make(map[*BinaryFunction]bool, len(simple))
	out := make([]*BinaryFunction, 0, len(simple))
	for _, name := range ctx.FuncOrder {
		fn := ctx.ByName[name]
		if fn == nil || !fn.Simple || fn.FoldedInto != nil || placed[fn] {
			continue
		}
		placed[fn] = true
		out = append(out, fn)
	}
	for _, fn := range simple {
		if !placed[fn] {
			out = append(out, fn)
		}
	}
	return out
}

package core

import (
	"fmt"
	"io"
	"sort"

	"gobolt/internal/isa"
)

// DynoStats are the profile-weighted execution statistics BOLT prints
// with -dyno-stats; Table 2 of the paper compares them before and after
// optimization. All values are estimated from edge counts applied to a
// given block layout, so the same profile yields different taken/
// non-taken splits as the layout changes.
type DynoStats struct {
	ExecutedInstructions uint64
	ExecutedBranches     uint64 // conditional, executed
	TakenBranches        uint64 // all taken control transfers (cond taken + unconds)
	NonTakenCondBranches uint64
	TakenCondBranches    uint64
	ExecutedForward      uint64
	TakenForward         uint64
	ExecutedBackward     uint64
	TakenBackward        uint64
	ExecutedUncond       uint64
	FunctionCalls        uint64
}

// CollectDynoStats walks every simple, profiled function under its
// *current* layout.
func (ctx *BinaryContext) CollectDynoStats() DynoStats {
	var d DynoStats
	for _, fn := range ctx.Funcs {
		if !fn.Simple || fn.FoldedInto != nil {
			continue
		}
		pos := map[*BasicBlock]int{}
		for i, b := range fn.Blocks {
			pos[b] = i
		}
		for i, b := range fn.Blocks {
			cnt := b.ExecCount
			d.ExecutedInstructions += cnt * uint64(len(b.Insts))
			for k := range b.Insts {
				if b.Insts[k].IsCall() {
					d.FunctionCalls += cnt
				}
			}
			last := b.LastInst()
			if last == nil {
				continue
			}
			var next *BasicBlock
			if i+1 < len(fn.Blocks) {
				next = fn.Blocks[i+1]
			}
			switch {
			case last.I.Op == isa.JCC && len(b.Succs) == 2:
				taken, fall := b.Succs[0], b.Succs[1]
				exec := taken.Count + fall.Count
				if exec < cnt {
					exec = cnt
				}
				d.ExecutedBranches += exec
				// In the materialized layout, the taken edge is Succs[0]
				// unless it is the next block (then the branch is
				// emitted inverted and Succs get swapped at emission;
				// model it here the same way).
				takenEdge, fallEdge := taken, fall
				if taken.To == next {
					takenEdge, fallEdge = fall, taken
				}
				d.TakenCondBranches += takenEdge.Count
				d.NonTakenCondBranches += fallEdge.Count
				d.TakenBranches += takenEdge.Count
				forward := pos[takenEdge.To] > i
				if forward {
					d.ExecutedForward += exec
					d.TakenForward += takenEdge.Count
				} else {
					d.ExecutedBackward += exec
					d.TakenBackward += takenEdge.Count
				}
			case last.I.Op == isa.JMP && len(b.Succs) == 1:
				if b.Succs[0].To != next {
					d.ExecutedUncond += cnt
					d.TakenBranches += cnt
				}
			case len(b.Succs) == 1 && b.Succs[0].To != next:
				// Fall-through block forced to jump by the layout.
				d.ExecutedUncond += cnt
				d.TakenBranches += cnt
			}
		}
	}
	return d
}

// Delta returns (new-old)/old as a percentage, guarding zero.
func Delta(oldV, newV uint64) float64 {
	if oldV == 0 {
		return 0
	}
	return 100 * (float64(newV) - float64(oldV)) / float64(oldV)
}

// PrintComparison renders the Table 2 rows for two stat snapshots.
func PrintComparison(w io.Writer, name string, before, after DynoStats) {
	rows := []struct {
		label    string
		old, new uint64
	}{
		{"executed forward branches", before.ExecutedForward, after.ExecutedForward},
		{"taken forward branches", before.TakenForward, after.TakenForward},
		{"executed backward branches", before.ExecutedBackward, after.ExecutedBackward},
		{"taken backward branches", before.TakenBackward, after.TakenBackward},
		{"executed unconditional branches", before.ExecutedUncond, after.ExecutedUncond},
		{"executed instructions", before.ExecutedInstructions, after.ExecutedInstructions},
		{"total branches", before.ExecutedBranches + before.ExecutedUncond, after.ExecutedBranches + after.ExecutedUncond},
		{"taken branches", before.TakenBranches, after.TakenBranches},
		{"non-taken conditional branches", before.NonTakenCondBranches, after.NonTakenCondBranches},
		{"taken conditional branches", before.TakenCondBranches, after.TakenCondBranches},
		{"function calls", before.FunctionCalls, after.FunctionCalls},
	}
	fmt.Fprintf(w, "dyno-stats (%s):\n", name)
	fmt.Fprintf(w, "  %-34s %16s %16s %9s\n", "metric", "before", "after", "delta")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-34s %16d %16d %+8.1f%%\n", r.label, r.old, r.new, Delta(r.old, r.new))
	}
}

// HottestFunctions returns the top-n sampled functions for reports.
func (ctx *BinaryContext) HottestFunctions(n int) []*BinaryFunction {
	var fns []*BinaryFunction
	for _, f := range ctx.Funcs {
		if f.Sampled {
			fns = append(fns, f)
		}
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].ExecCount > fns[j].ExecCount })
	if n > 0 && len(fns) > n {
		fns = fns[:n]
	}
	return fns
}

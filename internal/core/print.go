package core

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PrintCFG dumps a function in the style of the paper's Figure 4: header
// metadata, then each block with CFI placeholders, landing-pad
// annotations, source lines, successor edges with counts/mispredicts,
// and landing pads.
func (ctx *BinaryContext) PrintCFG(w io.Writer, fn *BinaryFunction) {
	fmt.Fprintf(w, "Binary Function \"%s\" after building cfg {\n", fn.Name)
	fmt.Fprintf(w, "  State       : CFG constructed\n")
	fmt.Fprintf(w, "  Address     : %#x\n", fn.Addr)
	fmt.Fprintf(w, "  Size        : %#x\n", fn.Size)
	fmt.Fprintf(w, "  Section     : %s\n", fn.Section)
	if fn.HasLSDA {
		fmt.Fprintf(w, "  LSDA        : present\n")
	}
	fmt.Fprintf(w, "  IsSimple    : %d\n", boolInt(fn.Simple))
	fmt.Fprintf(w, "  IsSplit     : %d\n", boolInt(fn.IsSplit))
	fmt.Fprintf(w, "  BB Count    : %d\n", len(fn.Blocks))
	fmt.Fprintf(w, "  CFI States  : %d\n", len(fn.cfiStates))
	fmt.Fprintf(w, "  BB Layout   : %s\n", layoutString(fn))
	fmt.Fprintf(w, "  Exec Count  : %d\n", fn.ExecCount)
	fmt.Fprintf(w, "  Profile Acc : %.1f%%\n", 100*fn.ProfileAcc)
	fmt.Fprintf(w, "}\n")
	if !fn.Simple {
		fmt.Fprintf(w, "  (non-simple: %s)\n\n", fn.Reason)
		return
	}
	for _, b := range fn.Blocks {
		fmt.Fprintf(w, "%s (%d instructions, align : 1)\n", b.Label, len(b.Insts))
		if b.IsEntry {
			fmt.Fprintf(w, "  Entry Point\n")
		}
		if b.IsLP {
			fmt.Fprintf(w, "  Landing Pad\n")
		}
		if b.IsCold {
			fmt.Fprintf(w, "  Cold\n")
		}
		fmt.Fprintf(w, "  Exec Count : %d\n", b.ExecCount)
		if b.CFIIn >= 0 {
			fmt.Fprintf(w, "  CFI State : %d\n", b.CFIIn)
		}
		if len(b.Preds) > 0 {
			names := make([]string, 0, len(b.Preds))
			for _, p := range b.Preds {
				names = append(names, p.Label)
			}
			sort.Strings(names)
			fmt.Fprintf(w, "  Predecessors: %s\n", strings.Join(dedup(names), ", "))
		}
		lastCFI := int32(-1)
		for i := range b.Insts {
			in := &b.Insts[i]
			if in.CFIIdx >= 0 && in.CFIIdx != lastCFI && lastCFI >= 0 {
				fmt.Fprintf(w, "    %08x: !CFI state %d\n", in.Addr-fn.Addr, in.CFIIdx)
			}
			lastCFI = in.CFIIdx
			line := fmt.Sprintf("    %08x: %s", in.Addr-fn.Addr, in.I.Format(ctx.symNamer()))
			var notes []string
			if in.LP != nil {
				notes = append(notes, fmt.Sprintf("handler: %s; action: %d", in.LP.Label, in.LPAction))
			}
			if in.TargetSym != "" && in.IsCall() {
				notes = append(notes, in.TargetSym)
			}
			if in.File != "" {
				notes = append(notes, fmt.Sprintf("%s:%d", in.File, in.Line))
			}
			if len(notes) > 0 {
				line += " # " + strings.Join(notes, " # ")
			}
			fmt.Fprintln(w, line)
		}
		if len(b.Succs) > 0 {
			parts := make([]string, 0, len(b.Succs))
			for _, e := range b.Succs {
				parts = append(parts, fmt.Sprintf("%s (mispreds: %d, count: %d)", e.To.Label, e.Mispreds, e.Count))
			}
			fmt.Fprintf(w, "  Successors: %s\n", strings.Join(parts, ", "))
		}
		if len(b.LPs) > 0 {
			parts := make([]string, 0, len(b.LPs))
			for _, lp := range b.LPs {
				parts = append(parts, fmt.Sprintf("%s (count: %d)", lp.Label, lp.ExecCount))
			}
			fmt.Fprintf(w, "  Landing Pads: %s\n", strings.Join(parts, ", "))
		}
		fmt.Fprintln(w)
	}
}

func (ctx *BinaryContext) symNamer() func(uint64) string {
	return func(addr uint64) string {
		if fn := ctx.byAddr[addr]; fn != nil {
			return fn.Name
		}
		if _, ok := ctx.PLTStubs[addr]; ok {
			if sym, found := ctx.File.SymbolAt(addr); found {
				return sym.Name
			}
		}
		return ""
	}
}

func layoutString(fn *BinaryFunction) string {
	names := make([]string, 0, len(fn.Blocks))
	for _, b := range fn.Blocks {
		names = append(names, b.Label)
	}
	return strings.Join(names, ", ")
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func dedup(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// BadLayoutReport lists hot functions whose layout interleaves cold
// blocks between hot ones (paper §6.3, Figure 10) and traces them to
// source. Returns formatted findings, hottest first.
func (ctx *BinaryContext) BadLayoutReport(limit int) string {
	type finding struct {
		fn    *BinaryFunction
		block *BasicBlock
		score uint64
	}
	var finds []finding
	for _, fn := range ctx.Funcs {
		if !fn.Simple || !fn.Sampled {
			continue
		}
		for i := 1; i+1 < len(fn.Blocks); i++ {
			prev, cur, next := fn.Blocks[i-1], fn.Blocks[i], fn.Blocks[i+1]
			if cur.ExecCount == 0 && prev.ExecCount > 0 && next.ExecCount > 0 {
				score := prev.ExecCount
				if next.ExecCount > score {
					score = next.ExecCount
				}
				finds = append(finds, finding{fn: fn, block: cur, score: score})
			}
		}
	}
	sort.Slice(finds, func(i, j int) bool { return finds[i].score > finds[j].score })
	if limit > 0 && len(finds) > limit {
		finds = finds[:limit]
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "report-bad-layout: %d cold blocks interleaved between hot blocks\n", len(finds))
	for _, f := range finds {
		src := ""
		if len(f.block.Insts) > 0 && f.block.Insts[0].File != "" {
			src = fmt.Sprintf(" # %s:%d", f.block.Insts[0].File, f.block.Insts[0].Line)
		}
		fmt.Fprintf(&sb, "  %s: block %s (Exec Count: 0) between hot blocks (count %d)%s\n",
			f.fn.Name, f.block.Label, f.score, src)
	}
	return sb.String()
}

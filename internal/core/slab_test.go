package core

import (
	"context"
	"reflect"
	"testing"
)

// loadSlabCtx loads the shared loader fixture with enough functions that
// multi-block bodies and slab-adjacent blocks exist.
func loadSlabCtx(t testing.TB, jobs int) *BinaryContext {
	f := buildLoaderFile(t, 8)
	opts := DefaultOptions()
	opts.Jobs = jobs
	ctx, err := NewContext(context.Background(), f, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

// TestSlabInstsSurviveAppend is the slab allocator's safety contract
// with the pass manager: block instruction slices are carved from one
// per-function slab with capacity == length, so a pass appending to one
// block (as ICP's promotion does) must reallocate that block's slice
// rather than grow into — and clobber — the next block's storage.
func TestSlabInstsSurviveAppend(t *testing.T) {
	ctx := loadSlabCtx(t, 1)
	var fn *BinaryFunction
	for _, f := range ctx.Funcs {
		if f.Simple && len(f.Blocks) >= 2 && len(f.Blocks[0].Insts) > 0 && len(f.Blocks[1].Insts) > 0 {
			fn = f
			break
		}
	}
	if fn == nil {
		t.Fatal("fixture has no simple multi-block function")
	}
	b0, b1 := fn.Blocks[0], fn.Blocks[1]
	if cap(b0.Insts) != len(b0.Insts) {
		t.Fatalf("block 0 insts carved with cap %d != len %d; appends would clobber the neighbor slab region",
			cap(b0.Insts), len(b0.Insts))
	}

	before := append([]Inst(nil), b1.Insts...)
	// Mutate like a pass: duplicate the block's own first instruction at
	// the end, forcing growth past the slab boundary.
	b0.Insts = append(b0.Insts, b0.Insts[0])
	if !reflect.DeepEqual(before, b1.Insts) {
		t.Fatal("appending past block 0's capacity corrupted block 1's instructions")
	}
	if got := len(b0.Insts); got != len(before)+1 && got < 2 {
		t.Fatalf("append lost instructions: %d", got)
	}
	if !reflect.DeepEqual(b0.Insts[len(b0.Insts)-1], b0.Insts[0]) {
		t.Fatal("appended instruction not visible in block 0")
	}
}

// TestEmitScratchReuse proves the emitter's worker scratch is fully
// reset between functions: emitting a stream of functions through one
// reused scratch must produce the same fragments as a fresh scratch per
// function. This is the single-worker shape of what Rewrite's pool does,
// and the property that makes BenchmarkRewrite's output independent of
// how functions land on workers.
func TestEmitScratchReuse(t *testing.T) {
	ctx := loadSlabCtx(t, 1)
	var shared emitScratch
	for _, fn := range ctx.SimpleFuncs() {
		reused, err := ctx.emitFunction(fn, &shared)
		if err != nil {
			t.Fatalf("%s (reused scratch): %v", fn.Name, err)
		}
		fresh, err := ctx.emitFunction(fn, &emitScratch{})
		if err != nil {
			t.Fatalf("%s (fresh scratch): %v", fn.Name, err)
		}
		if !reflect.DeepEqual(reused.Hot, fresh.Hot) || !reflect.DeepEqual(reused.Cold, fresh.Cold) {
			t.Fatalf("%s: reused-scratch emission differs from fresh-scratch emission", fn.Name)
		}
	}
}

package core

import (
	"fmt"
	"strings"

	"gobolt/internal/obsv"
)

// Metric names for the pipeline's histograms and gauges. The
// per-function histograms exist for the re-optimization service's
// quality gate: thresholding them rejects individual bad functions
// instead of whole profiles.
const (
	// MetricFlowAccuracy is the per-function flow-equation consistency
	// after profile application and inference (1.0 = every block's
	// count equals its out-flow), observed once per profiled simple
	// function with the function name as label.
	MetricFlowAccuracy = "flow-accuracy"
	// MetricStaleMatchQuality is the fraction of a stale function's
	// recorded block shapes that matched the current CFG, observed once
	// per stale-matched function with the function name as label.
	MetricStaleMatchQuality = "stale-match-quality"
	// MetricFlowAccBefore/After mirror ctx.FlowAccBefore/After as
	// registry gauges.
	MetricFlowAccBefore = "flow-accuracy-before"
	MetricFlowAccAfter  = "flow-accuracy-after"
)

// statTotal is the parent every count-weighted profile stat sums into.
const statTotal = "profile-total-count"

// qualityBuckets are the histogram bounds shared by the two
// per-function quality metrics — both are fractions in [0,1], and the
// gate cares about resolution near 1.0.
var qualityBuckets = []float64{0.5, 0.8, 0.9, 0.95, 0.99, 0.999, 1.0}

// StatDefs declares every statistic the pipeline records: it is the
// single source of truth behind ctx.Stats, the README's documented
// stat-key list (StatKeyDoc), and the sum-to-total invariant test.
// Adding a stat key anywhere in the engine without declaring it here
// makes Registry.Undeclared non-empty, which a test turns into a
// failure — keys can no longer drift undocumented.
func StatDefs() []obsv.Def {
	counter := func(name, help string) obsv.Def {
		return obsv.Def{Name: name, Kind: obsv.Counter, Help: help}
	}
	weighted := func(name, help string) obsv.Def {
		return obsv.Def{Name: name, Kind: obsv.Counter, Help: help, SumTo: statTotal}
	}
	return []obsv.Def{
		// Loader (NewContext): every discovered function lands in
		// exactly one of simple/non-simple.
		counter("load-simple", "functions disassembled into a complete CFG"),
		counter("load-blocks", "basic blocks built across all simple functions"),
		counter("load-non-simple", "functions left untouched (indirect tails, jump tables, undecodable bytes)"),

		// Profile application (ApplyProfile): counts are weighted by
		// record count, so the eight weighted keys sum exactly to
		// profile-total-count.
		counter(statTotal, "every branch or sample record seen, count-weighted"),
		weighted("profile-edge-count", "applied to an intra-function CFG edge"),
		weighted("profile-call-count", "applied as a call/entry record (ExecCount)"),
		weighted("profile-sample-count", "applied as a PC sample to a block (non-LBR)"),
		weighted("profile-ignored-count", "carries no CFG info (returns, non-branch sources, mid-function landings, non-simple functions)"),
		weighted("profile-drop-count", "(function, offset) failed to resolve"),
		weighted("profile-stale-count", "recovered by stale shape matching (arXiv:2401.17168)"),
		weighted("profile-stale-drop-count", "stale and unrecoverable"),
		counter("profile-stale-funcs", "functions whose shapes mismatched and were routed through the stale matcher"),
		counter("profile-inferred-funcs", "functions rebalanced by the minimum-cost flow solver"),

		// Optimization passes (pipeline order).
		counter("lite-skipped", "functions skipped by lite mode (no profile samples)"),
		counter("icf-hashed", "functions hashed by identical-code-folding"),
		counter("icf-folded", "functions folded into an identical twin"),
		counter("icf-bytes", "code bytes eliminated by ICF"),
		counter("inline-small", "small-call sites inlined"),
		counter("plt-calls", "PLT calls rewritten to direct calls"),
		counter("icp-promoted", "indirect-call sites promoted to conditional direct calls"),
		counter("icp-flags-blocked", "ICP candidates blocked by live EFLAGS"),
		counter("simplify-ro-loads", "loads from read-only data folded to immediates"),
		counter("simplify-ro-loads-aborted", "read-only load folds abandoned (grew the instruction)"),
		counter("peephole-selfmove", "self-move instructions deleted"),
		counter("peephole-jump-thread", "jumps threaded through empty blocks"),
		counter("strip-rep-ret", "repz ret prefixes stripped"),
		counter("uce-blocks", "unreachable basic blocks eliminated"),
		counter("reorder-bbs-funcs", "functions whose basic blocks were relaid out"),
		counter("reorder-functions", "functions placed by the global reordering"),
		counter("split-functions", "functions split into hot and cold fragments"),
		counter("split-cold-blocks", "basic blocks moved to cold fragments"),
		counter("sctc", "functions changed by simplify-conditional-tail-calls"),
		counter("sctc-count", "conditional tail calls simplified"),
		counter("frame-opts-spills", "callee-saved spills removed by frame optimization"),
		counter("shrink-wrapping", "functions with saves sunk by shrink wrapping"),

		// Per-function quality distributions + binary-level gauges.
		{Name: MetricFlowAccuracy, Kind: obsv.HistogramKind, Buckets: qualityBuckets,
			Help: "per-function count-weighted flow-equation consistency after inference"},
		{Name: MetricStaleMatchQuality, Kind: obsv.HistogramKind, Buckets: qualityBuckets,
			Help: "per-function fraction of stale block shapes matched to the current CFG"},
		{Name: MetricFlowAccBefore, Kind: obsv.Gauge, Help: "binary-level flow accuracy before profile inference"},
		{Name: MetricFlowAccAfter, Kind: obsv.Gauge, Help: "binary-level flow accuracy after profile inference"},
	}
}

// StatKeyDoc renders the declared stats as the markdown table embedded
// in the README between the stat-keys markers; a test keeps the two in
// sync so the documentation is generated, not hand-maintained.
func StatKeyDoc() string {
	var b strings.Builder
	b.WriteString("| key | kind | meaning |\n|---|---|---|\n")
	for _, d := range StatDefs() {
		help := d.Help
		if d.SumTo != "" {
			help += fmt.Sprintf(" (sums into `%s`)", d.SumTo)
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s |\n", d.Name, d.Kind, help)
	}
	return b.String()
}

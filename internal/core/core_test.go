package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"gobolt/internal/cc"
	"gobolt/internal/ir"
	"gobolt/internal/isa"
	"gobolt/internal/ld"
)

// buildBinary links a little two-function program with jump table and
// exception metadata for discovery tests.
func buildBinary(t *testing.T) *BinaryContext {
	t.Helper()
	leaf := ir.NewFunc("leaf", "l.mir", 4)
	leaf.Blocks[0].Ops = []ir.Op{
		{Kind: ir.OpMov, Dst: isa.RAX, Src: isa.RDI},
		{Kind: ir.OpAddImm, Dst: isa.RAX, Imm: 1},
		{Kind: ir.OpShlImm, Dst: isa.RAX, Imm: 2},
		{Kind: ir.OpAddImm, Dst: isa.RAX, Imm: 3},
	}
	leaf.Blocks[0].Term = ir.Term{Kind: ir.TermReturn}

	f := ir.NewFunc("switchy", "s.mir", 10)
	f.SavedRegs = []isa.Reg{isa.RBX}
	c0 := f.AddBlock()
	c1 := f.AddBlock()
	ret := f.AddBlock()
	f.Blocks[0].Ops = []ir.Op{
		{Kind: ir.OpMov, Dst: isa.RCX, Src: isa.RDI},
		{Kind: ir.OpAndImm, Dst: isa.RCX, Imm: 1},
		{Kind: ir.OpCall, Callee: "leaf", SpillReg: isa.NoReg, LandingPad: -1},
	}
	f.Blocks[0].Term = ir.Term{Kind: ir.TermSwitch, IndexReg: isa.RCX,
		Targets: []int{c0.Index, c1.Index}, PIC: true}
	c0.Ops = []ir.Op{{Kind: ir.OpMovImm, Dst: isa.RAX, Imm: 10}}
	c0.Term = ir.Term{Kind: ir.TermJump, Then: ret.Index}
	c1.Ops = []ir.Op{{Kind: ir.OpMovImm, Dst: isa.RAX, Imm: 20}}
	c1.Term = ir.Term{Kind: ir.TermJump, Then: ret.Index}
	ret.Term = ir.Term{Kind: ir.TermReturn}

	start := ir.NewFunc("_start", "m.mir", 1)
	start.Blocks[0].Ops = []ir.Op{
		{Kind: ir.OpMovImm, Dst: isa.RDI, Imm: 3},
		{Kind: ir.OpCall, Callee: "switchy", SpillReg: isa.NoReg, LandingPad: -1},
	}
	start.Blocks[0].Term = ir.Term{Kind: ir.TermExit}

	p := &ir.Program{Modules: []*ir.Module{{Name: "m", Funcs: []*ir.Func{start, f, leaf}}}}
	p.Finalize()
	opts := cc.DefaultOptions()
	opts.TinyInlineOps = 1 // keep leaf out-of-line
	objs, err := cc.Compile(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ld.Link(objs, ld.Options{EmitRelocs: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(context.Background(), res.File, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func TestDiscoveryAndCFG(t *testing.T) {
	ctx := buildBinary(t)
	fn := ctx.ByName["switchy"]
	if fn == nil || !fn.Simple {
		t.Fatalf("switchy not simple: %+v", fn)
	}
	if len(fn.JTs) != 1 || !fn.JTs[0].PIC || len(fn.JTs[0].Targets) != 2 {
		t.Fatalf("PIC jump table not recovered: %+v", fn.JTs)
	}
	// The switch block must have two successors.
	var swBlock *BasicBlock
	for _, b := range fn.Blocks {
		if last := b.LastInst(); last != nil && last.JT != nil {
			swBlock = b
		}
	}
	if swBlock == nil || len(swBlock.Succs) != 2 {
		t.Fatalf("switch successors wrong: %+v", swBlock)
	}
	// CFI must be attached (framed function).
	if fn.Blocks[0].CFIIn < 0 {
		t.Error("entry CFI state missing")
	}
	// Call target symbolized.
	found := false
	for _, b := range fn.Blocks {
		for i := range b.Insts {
			if b.Insts[i].TargetSym == "leaf" {
				found = true
			}
		}
	}
	if !found {
		t.Error("call to leaf not symbolized")
	}
}

func TestPrintCFGFormat(t *testing.T) {
	ctx := buildBinary(t)
	var buf bytes.Buffer
	ctx.PrintCFG(&buf, ctx.ByName["switchy"])
	out := buf.String()
	for _, want := range []string{
		`Binary Function "switchy"`,
		"IsSimple    : 1",
		"BB Count",
		"Exec Count",
		"Successors:",
		"Entry Point",
		"s.mir:10", // source annotation
	} {
		if !strings.Contains(out, want) {
			t.Errorf("CFG dump missing %q:\n%s", want, out)
		}
	}
}

func TestStateInterning(t *testing.T) {
	fn := &BinaryFunction{}
	s1 := InitialStateForTest()
	a := fn.InternState(s1)
	b := fn.InternState(s1)
	if a != b {
		t.Fatal("identical states must intern to one index")
	}
	s2 := InitialStateForTest()
	s2.Saved[3] = -24
	if fn.InternState(s2) == a {
		t.Fatal("distinct states must not collide")
	}
	// The compact key must be insensitive to map iteration order: a
	// multi-register state interned twice (maps built in different
	// insertion orders) yields one index.
	s3 := InitialStateForTest()
	s3.Saved[3], s3.Saved[6], s3.Saved[12] = -24, -16, -8
	s4 := InitialStateForTest()
	s4.Saved[12], s4.Saved[6], s4.Saved[3] = -8, -16, -24
	if fn.InternState(s3) != fn.InternState(s4) {
		t.Fatal("saved-register order must not affect the interned key")
	}
	// Same registers, one differing offset: distinct.
	s5 := InitialStateForTest()
	s5.Saved[3], s5.Saved[6], s5.Saved[12] = -24, -16, -80
	if fn.InternState(s5) == fn.InternState(s3) {
		t.Fatal("states differing only in a saved offset must not collide")
	}
	// Negative CFA offsets must round-trip through the encoding.
	s6 := InitialStateForTest()
	s6.CfaOff = -8
	if fn.InternState(s6) == fn.InternState(InitialStateForTest()) {
		t.Fatal("states differing in CFA offset must not collide")
	}
}

func TestRewriteRequiresRelocs(t *testing.T) {
	ctx := buildBinary(t)
	ctx.HasRelocs = false
	if _, err := ctx.Rewrite(context.Background()); err == nil {
		t.Fatal("rewrite without relocations must fail")
	}
}

package core

import (
	"gobolt/internal/isa"
	"gobolt/internal/profile"
)

// ApplyProfile attaches an fdata profile to the CFGs: branch records
// become edge counts, call records become function execution counts and
// indirect-call histograms, and flow repair fills in the fall-through
// counts LBRs cannot observe (paper §5.2). Non-LBR profiles set block
// counts from PC samples and infer edges proportionally — the weaker
// inference whose cost Figure 11 quantifies.
func (ctx *BinaryContext) ApplyProfile(fd *profile.Fdata) {
	ctx.ProfileLBR = fd.LBR
	if ctx.CallEdges == nil {
		ctx.CallEdges = map[[2]string]uint64{}
	}
	if fd.LBR {
		ctx.applyLBR(fd)
	} else {
		ctx.applySamples(fd)
	}
	for _, fn := range ctx.Funcs {
		if fn.Simple && fn.Sampled {
			if fd.LBR {
				repairFlow(fn)
			} else {
				inferEdgesFromBlockCounts(fn)
			}
			fn.ProfileAcc = flowAccuracy(fn)
		}
	}
}

func (ctx *BinaryContext) applyLBR(fd *profile.Fdata) {
	for _, br := range fd.Branches {
		fromFn := ctx.ByName[br.From.Sym]
		toFn := ctx.ByName[br.To.Sym]
		if fromFn == nil || toFn == nil {
			continue
		}
		fromAddr := fromFn.Addr + br.From.Off
		toAddr := toFn.Addr + br.To.Off

		if fromFn == toFn && fromFn.Simple {
			fn := fromFn
			fb, fi := fn.InstAt(fromAddr)
			if fb == nil {
				continue
			}
			fn.Sampled = true
			// Return-to-self or call-to-self noise: only branch sources
			// contribute to edges.
			if !fi.I.IsBranch() {
				continue
			}
			tb := fn.BlockAt(toAddr)
			if tb == nil {
				continue
			}
			for k := range fb.Succs {
				if fb.Succs[k].To == tb {
					fb.Succs[k].Count += br.Count
					fb.Succs[k].Mispreds += br.Mispreds
					break
				}
			}
			continue
		}

		// Inter-function records.
		if br.To.Off == 0 {
			// Call, tail call, or conditional tail call into toFn's entry.
			toFn.ExecCount += br.Count
			toFn.Sampled = true
			ctx.CallEdges[[2]string{fromFn.Name, toFn.Name}] += br.Count
			if fromFn.Simple {
				fromFn.Sampled = true
				if _, fi := fromFn.InstAt(fromAddr); fi != nil {
					if fi.I.Op == isa.CALLr || fi.I.Op == isa.CALLm {
						m := ctx.CallTargets[fromAddr]
						if m == nil {
							m = map[string]uint64{}
							ctx.CallTargets[fromAddr] = m
						}
						m[toFn.Name] += br.Count
					}
				}
			}
		}
		// Returns land mid-function; they carry no CFG information here.
	}
}

func (ctx *BinaryContext) applySamples(fd *profile.Fdata) {
	for _, s := range fd.Samples {
		fn := ctx.ByName[s.At.Sym]
		if fn == nil || !fn.Simple {
			continue
		}
		b := fn.BlockContaining(fn.Addr + s.At.Off)
		if b == nil {
			continue
		}
		b.ExecCount += s.Count
		fn.Sampled = true
	}
	// Function exec counts approximate entry-block sample counts.
	for _, fn := range ctx.Funcs {
		if fn.Simple && len(fn.Blocks) > 0 {
			fn.ExecCount = fn.Blocks[0].ExecCount
		}
	}
}

// isCondTerm reports whether block b ends in a conditional branch with a
// fall-through (Succs = [taken, fallthrough]).
func isCondTerm(b *BasicBlock) bool {
	last := b.LastInst()
	return last != nil && last.I.Op == isa.JCC && len(b.Succs) == 2
}

// repairFlow reconstructs block counts and fall-through edge counts from
// taken-branch counts. Following §5.2, surplus flow is attributed to the
// fall-through path: the static compiler's layout is trusted unless the
// trace shows taken branches contradicting it.
func repairFlow(fn *BinaryFunction) {
	for iter := 0; iter < 5; iter++ {
		for _, b := range fn.Blocks {
			in := uint64(0)
			for _, p := range b.Preds {
				for _, e := range p.Succs {
					if e.To == b {
						in += e.Count
					}
				}
			}
			if b.IsEntry && fn.ExecCount > in {
				in = fn.ExecCount
			}
			out := uint64(0)
			for _, e := range b.Succs {
				out += e.Count
			}
			cnt := in
			if out > cnt {
				cnt = out
			}
			if cnt > b.ExecCount {
				b.ExecCount = cnt
			}
			// Distribute surplus to the fall-through (non-taken) path.
			switch {
			case isCondTerm(b):
				taken := b.Succs[0].Count
				if b.ExecCount > taken {
					b.Succs[1].Count = b.ExecCount - taken
				}
			case len(b.Succs) == 1:
				if b.Succs[0].Count < b.ExecCount {
					b.Succs[0].Count = b.ExecCount
				}
			}
		}
	}
}

// inferEdgesFromBlockCounts is the non-LBR edge estimator: block counts
// come from PC samples; each block's outflow is split across successors
// in proportion to the successors' own sample counts. This is the
// deliberately "non-ideal algorithm" of §5.1 (a production system would
// solve minimum cost flow).
func inferEdgesFromBlockCounts(fn *BinaryFunction) {
	for iter := 0; iter < 3; iter++ {
		for _, b := range fn.Blocks {
			if len(b.Succs) == 0 {
				continue
			}
			total := uint64(0)
			for _, e := range b.Succs {
				total += e.To.ExecCount + 1
			}
			for k := range b.Succs {
				share := float64(b.Succs[k].To.ExecCount+1) / float64(total)
				b.Succs[k].Count = uint64(float64(b.ExecCount) * share)
			}
		}
	}
}

// flowAccuracy measures how consistently the final counts satisfy the
// flow equations (1.0 = every block's inflow equals its outflow).
func flowAccuracy(fn *BinaryFunction) float64 {
	var total, violation float64
	for _, b := range fn.Blocks {
		if len(b.Succs) == 0 || b.ExecCount == 0 {
			continue
		}
		out := uint64(0)
		for _, e := range b.Succs {
			out += e.Count
		}
		diff := int64(b.ExecCount) - int64(out)
		if diff < 0 {
			diff = -diff
		}
		total += float64(b.ExecCount)
		violation += float64(diff)
	}
	if total == 0 {
		return 1
	}
	acc := 1 - violation/total
	if acc < 0 {
		return 0
	}
	return acc
}

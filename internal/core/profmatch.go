package core

import (
	"context"
	"time"

	"gobolt/internal/isa"
	"gobolt/internal/profile"
	"gobolt/internal/stale"
)

// Profile-application statistics (ctx.Stats keys). Counts are weighted by
// record count, so they sum to the profile's total:
//
//	profile-total-count     every branch or sample record seen
//	profile-edge-count      applied to an intra-function CFG edge
//	profile-call-count      applied as a call/entry record (ExecCount)
//	profile-sample-count    applied as a PC sample to a block (non-LBR)
//	profile-ignored-count   carries no CFG info here (returns, non-branch
//	                        sources, mid-function landings, records inside
//	                        non-simple functions)
//	profile-drop-count      (function, offset) failed to resolve
//	profile-stale-count     recovered by stale shape matching
//	profile-stale-drop-count  stale and unrecoverable
//
// plus profile-stale-funcs, the number of functions whose shapes
// mismatched and were routed through the matcher, and
// profile-inferred-funcs, the functions rebalanced by the minimum-cost
// flow solver (neither is count-weighted).

// ApplyProfile attaches an fdata profile to the CFGs: branch records
// become edge counts, call records become function execution counts and
// indirect-call histograms, and flow repair fills in the fall-through
// counts LBRs cannot observe (paper §5.2). Non-LBR profiles set block
// counts from PC samples and reconstruct edges with the minimum-cost
// flow solver of internal/flow — the production replacement for the
// "non-ideal algorithm" whose cost Figure 11 quantifies
// (Opts.InferFlow = InferNever restores the proportional estimator, and
// InferAlways also repairs LBR/stale/translated profiles after classic
// flow repair).
//
// When the profile carries CFG shapes (format v2) and Opts.StaleMatching
// is on, records whose offsets no longer resolve against this binary are
// re-anchored by structural block matching instead of being dropped — the
// stale-profile path that keeps week-old production profiles usable
// across releases.
//
// The per-function inference stage fans out over Opts.Jobs workers and
// is reported as "profile:infer" by -time-passes. Cancelling cx stops it
// promptly; the only possible error is cx.Err().
func (ctx *BinaryContext) ApplyProfile(cx context.Context, fd *profile.Fdata) error {
	ctx.ProfileLBR = fd.LBR
	if ctx.CallEdges == nil {
		ctx.CallEdges = map[[2]string]uint64{}
	}
	var sm *staleMatcher
	if ctx.Opts.StaleMatching && len(fd.Shapes) > 0 {
		sm = &staleMatcher{ctx: ctx, shapes: fd.Shapes, cache: map[*BinaryFunction]*staleFunc{}}
	}
	if fd.LBR {
		ctx.applyLBR(fd, sm)
	} else {
		ctx.applySamples(fd, sm)
	}
	return ctx.inferStage(cx, fd.LBR)
}

// inferStage reconstructs consistent per-function counts from the raw
// record application: classic flow repair and/or minimum-cost-flow
// inference, fanned out over the worker pool (each function's counts
// are function-local state, so the stage parallelizes like a function
// pass). Appends the "profile:infer" timing to LoadTimings and fills
// ctx.FlowAccBefore/FlowAccAfter/InferredFuncs.
func (ctx *BinaryContext) inferStage(cx context.Context, lbr bool) error {
	var funcs []*BinaryFunction
	for _, fn := range ctx.Funcs {
		if fn.Simple && fn.Sampled && len(fn.Blocks) > 0 {
			funcs = append(funcs, fn)
		}
	}
	useMCF := ctx.Opts.InferFlow == InferAlways ||
		(!lbr && ctx.Opts.InferFlow != InferNever)

	start := time.Now()
	jobs := effectiveJobs(ctx.Opts.Jobs, len(funcs))
	// Per-function accuracy terms land in index-addressed slots and fold
	// serially below, so the aggregate floats are bit-identical for
	// every worker count.
	type accTerm struct {
		violBefore, totalBefore uint64
		violAfter, totalAfter   uint64
	}
	terms := make([]accTerm, len(funcs))
	if _, err := parallelFor(cx, len(funcs), jobs, func(_, i int) error {
		fn := funcs[i]
		terms[i].violBefore, terms[i].totalBefore = flowViolation(fn)
		if lbr {
			repairFlow(fn)
			if useMCF {
				inferFlowMCF(fn, true)
			}
		} else {
			entrySamples := fn.Blocks[0].ExecCount
			if useMCF {
				inferFlowMCF(fn, false)
			} else {
				inferEdgesFromBlockCounts(fn)
			}
			// A function's execution count is its entry in-flow, not the
			// entry block's own sample count: a hot function with a
			// short, rarely-sampled entry block must not look cold.
			var entryOut uint64
			for _, e := range fn.Blocks[0].Succs {
				entryOut += e.Count
			}
			fn.ExecCount = max(entrySamples, fn.Blocks[0].ExecCount, entryOut)
		}
		fn.ProfileAcc = flowAccuracy(fn)
		terms[i].violAfter, terms[i].totalAfter = flowViolation(fn)
		return nil
	}); err != nil {
		return err
	}
	var vb, tb, va, ta uint64
	for _, t := range terms {
		vb += t.violBefore
		tb += t.totalBefore
		va += t.violAfter
		ta += t.totalAfter
	}
	ctx.FlowAccBefore = accFromViolation(vb, tb)
	ctx.FlowAccAfter = accFromViolation(va, ta)
	if useMCF {
		ctx.InferredFuncs = len(funcs)
		ctx.CountStat("profile-inferred-funcs", int64(len(funcs)))
	}
	ctx.LoadTimings = append(ctx.LoadTimings, PassTiming{
		Name: "profile:infer", Wall: time.Since(start),
		Funcs: len(funcs), Parallel: jobs > 1, Jobs: jobs,
	})
	return nil
}

// staleMatcher lazily diagnoses per function whether the profile's shape
// still describes this binary's CFG, and if not, builds the old-block ->
// current-block map.
type staleMatcher struct {
	ctx    *BinaryContext
	shapes map[string]profile.FuncShape
	cache  map[*BinaryFunction]*staleFunc
}

type staleFunc struct {
	stale    bool
	old      profile.FuncShape
	blockMap map[int]*BasicBlock // old shape block index -> current block
}

// lookup returns the stale state for fn (nil = no shape carried, treat as
// current).
func (sm *staleMatcher) lookup(fn *BinaryFunction) *staleFunc {
	if sm == nil {
		return nil
	}
	if sf, ok := sm.cache[fn]; ok {
		return sf
	}
	sh, ok := sm.shapes[fn.Name]
	if !ok || !fn.Simple || len(fn.Blocks) == 0 {
		sm.cache[fn] = nil
		return nil
	}
	cur, _ := computeFuncShape(fn, nil)
	if stale.ShapesEqual(sh, cur) {
		sm.cache[fn] = nil
		return nil
	}
	sf := &staleFunc{stale: true, old: sh, blockMap: map[int]*BasicBlock{}}
	for oldIdx, newIdx := range stale.Match(sh.Blocks, cur.Blocks) {
		if newIdx >= 0 && newIdx < len(fn.Blocks) {
			sf.blockMap[oldIdx] = fn.Blocks[newIdx]
		}
	}
	sm.cache[fn] = sf
	sm.ctx.CountStat("profile-stale-funcs", 1)
	return sf
}

func (ctx *BinaryContext) applyLBR(fd *profile.Fdata, sm *staleMatcher) {
	count := func(key string, n uint64) { ctx.CountStat(key, int64(n)) }
	for _, br := range fd.Branches {
		count("profile-total-count", br.Count)
		fromFn := ctx.ByName[br.From.Sym]
		toFn := ctx.ByName[br.To.Sym]
		if fromFn == nil || toFn == nil {
			count("profile-drop-count", br.Count)
			continue
		}
		fromAddr := fromFn.Addr + br.From.Off
		toAddr := toFn.Addr + br.To.Off

		// Same-function records inside a non-simple function carry no
		// recoverable CFG information — and a loop back-edge to offset 0
		// must not be miscounted as a recursive call (it would inflate
		// ExecCount and invent a self CallEdges entry).
		if fromFn == toFn && !fromFn.Simple {
			fromFn.Sampled = true
			count("profile-ignored-count", br.Count)
			continue
		}

		if fromFn == toFn && fromFn.Simple {
			fn := fromFn
			// Shape mismatch: this binary is a different build than the
			// profiled one; route every intra-function record through the
			// block matcher (raw offsets would at best miss, at worst hit
			// an unrelated instruction).
			if sf := sm.lookup(fn); sf != nil && sf.stale {
				switch applyStaleBranch(fn, sf, br) {
				case staleApplied:
					count("profile-stale-count", br.Count)
				case staleIgnored:
					// Same classification the fresh path would give the
					// record (returns, non-branch sources): no CFG info,
					// but nothing recoverable was lost either.
					count("profile-ignored-count", br.Count)
				case staleDropped:
					count("profile-stale-drop-count", br.Count)
				}
				continue
			}
			fb, fi := fn.InstAt(fromAddr)
			if fb == nil {
				count("profile-drop-count", br.Count)
				continue
			}
			fn.Sampled = true
			// Return-to-self or call-to-self noise: only branch sources
			// contribute to edges.
			if !fi.I.IsBranch() {
				count("profile-ignored-count", br.Count)
				continue
			}
			tb := fn.BlockAt(toAddr)
			if tb == nil {
				count("profile-drop-count", br.Count)
				continue
			}
			applied := false
			for k := range fb.Succs {
				if fb.Succs[k].To == tb {
					fb.Succs[k].Count += br.Count
					fb.Succs[k].Mispreds += br.Mispreds
					applied = true
					break
				}
			}
			if applied {
				count("profile-edge-count", br.Count)
			} else {
				count("profile-drop-count", br.Count)
			}
			continue
		}

		// Inter-function records.
		if br.To.Off == 0 {
			// Call, tail call, or conditional tail call into toFn's entry.
			toFn.ExecCount += br.Count
			toFn.Sampled = true
			ctx.CallEdges[[2]string{fromFn.Name, toFn.Name}] += br.Count
			count("profile-call-count", br.Count)
			if fromFn.Simple {
				fromFn.Sampled = true
				if sf := sm.lookup(fromFn); sf == nil || !sf.stale {
					if _, fi := fromFn.InstAt(fromAddr); fi != nil {
						if fi.I.Op == isa.CALLr || fi.I.Op == isa.CALLm {
							m := ctx.CallTargets[fromAddr]
							if m == nil {
								m = map[string]uint64{}
								ctx.CallTargets[fromAddr] = m
							}
							m[toFn.Name] += br.Count
						}
					}
				}
			}
			continue
		}
		// Returns land mid-function; they carry no CFG information here.
		count("profile-ignored-count", br.Count)
	}
}

// staleOutcome classifies one stale record's fate, mirroring the fresh
// path's three-way split (applied / no-CFG-info / lost).
type staleOutcome int

const (
	staleApplied staleOutcome = iota
	staleIgnored
	staleDropped
)

// applyStaleBranch re-anchors one intra-function branch record through
// the shape match: the source is the old block containing From.Off, the
// target the old block starting at To.Off; the count lands on the
// corresponding current-CFG edge if the old shape confirms the edge
// existed and both blocks matched. Records the *old* CFG itself would
// not have used (mid-block landings = returns-to-self, sources with no
// such edge = calls-to-self and noise) classify as ignored, exactly as
// the fresh path classifies them — they carry no recoverable counts.
func applyStaleBranch(fn *BinaryFunction, sf *staleFunc, br profile.Branch) staleOutcome {
	blocks := sf.old.Blocks
	oldFrom := stale.BlockAtOff(blocks, br.From.Off)
	oldTo := stale.BlockAtOff(blocks, br.To.Off)
	if oldFrom < 0 || oldTo < 0 {
		return staleDropped
	}
	if blocks[oldTo].Off != br.To.Off {
		return staleIgnored // mid-block landing: a return, not a branch
	}
	if !stale.HasSucc(blocks, oldFrom, oldTo) {
		return staleIgnored // no such old edge: non-branch source
	}
	nf, nt := sf.blockMap[oldFrom], sf.blockMap[oldTo]
	if nf == nil || nt == nil {
		return staleDropped
	}
	for k := range nf.Succs {
		if nf.Succs[k].To == nt {
			nf.Succs[k].Count += br.Count
			nf.Succs[k].Mispreds += br.Mispreds
			fn.Sampled = true
			return staleApplied
		}
	}
	return staleDropped
}

func (ctx *BinaryContext) applySamples(fd *profile.Fdata, sm *staleMatcher) {
	for _, s := range fd.Samples {
		ctx.CountStat("profile-total-count", int64(s.Count))
		fn := ctx.ByName[s.At.Sym]
		if fn == nil || !fn.Simple {
			ctx.CountStat("profile-drop-count", int64(s.Count))
			continue
		}
		if sf := sm.lookup(fn); sf != nil && sf.stale {
			oldIdx := stale.BlockAtOff(sf.old.Blocks, s.At.Off)
			if b := sf.blockMap[oldIdx]; oldIdx >= 0 && b != nil {
				b.ExecCount += s.Count
				fn.Sampled = true
				ctx.CountStat("profile-stale-count", int64(s.Count))
			} else {
				ctx.CountStat("profile-stale-drop-count", int64(s.Count))
			}
			continue
		}
		b := fn.BlockContaining(fn.Addr + s.At.Off)
		if b == nil {
			ctx.CountStat("profile-drop-count", int64(s.Count))
			continue
		}
		b.ExecCount += s.Count
		fn.Sampled = true
		ctx.CountStat("profile-sample-count", int64(s.Count))
	}
	// Function exec counts are derived after inference (inferStage): the
	// entry block's own sample count understates hot functions whose
	// entry is short and rarely sampled, so the entry *in-flow* decides.
}

// isCondTerm reports whether block b ends in a conditional branch with a
// fall-through (Succs = [taken, fallthrough]).
func isCondTerm(b *BasicBlock) bool {
	last := b.LastInst()
	return last != nil && last.I.Op == isa.JCC && len(b.Succs) == 2
}

// repairFlow reconstructs block counts and fall-through edge counts from
// taken-branch counts. Following §5.2, surplus flow is attributed to the
// fall-through path: the static compiler's layout is trusted unless the
// trace shows taken branches contradicting it.
func repairFlow(fn *BinaryFunction) {
	for iter := 0; iter < 5; iter++ {
		for _, b := range fn.Blocks {
			in := uint64(0)
			for _, p := range b.Preds {
				for _, e := range p.Succs {
					if e.To == b {
						in += e.Count
					}
				}
			}
			if b.IsEntry && fn.ExecCount > in {
				in = fn.ExecCount
			}
			out := uint64(0)
			for _, e := range b.Succs {
				out += e.Count
			}
			cnt := in
			if out > cnt {
				cnt = out
			}
			if cnt > b.ExecCount {
				b.ExecCount = cnt
			}
			// Distribute surplus to the fall-through (non-taken) path.
			switch {
			case isCondTerm(b):
				taken := b.Succs[0].Count
				if b.ExecCount > taken {
					b.Succs[1].Count = b.ExecCount - taken
				}
			case len(b.Succs) == 1:
				if b.Succs[0].Count < b.ExecCount {
					b.Succs[0].Count = b.ExecCount
				}
			}
		}
	}
}

// inferEdgesFromBlockCounts is the legacy non-LBR edge estimator
// (Opts.InferFlow = InferNever): block counts come from PC samples;
// each block's outflow is split across successors in proportion to the
// successors' own sample counts. This is the deliberately "non-ideal
// algorithm" of §5.1 — it loses flow to per-successor truncation and
// its +1 smoothing invents counts on never-executed successors — kept
// as the comparison baseline for the minimum-cost-flow solver
// (internal/flow) that now runs by default.
func inferEdgesFromBlockCounts(fn *BinaryFunction) {
	for iter := 0; iter < 3; iter++ {
		for _, b := range fn.Blocks {
			if len(b.Succs) == 0 {
				continue
			}
			total := uint64(0)
			for _, e := range b.Succs {
				total += e.To.ExecCount + 1
			}
			for k := range b.Succs {
				share := float64(b.Succs[k].To.ExecCount+1) / float64(total)
				b.Succs[k].Count = uint64(float64(b.ExecCount) * share)
			}
		}
	}
}

// flowViolation sums, over every executed block with successors, the
// block count and the absolute gap between it and its out-flow — the
// integer terms behind flowAccuracy, kept exact so parallel aggregation
// stays deterministic.
func flowViolation(fn *BinaryFunction) (violation, total uint64) {
	for _, b := range fn.Blocks {
		if len(b.Succs) == 0 || b.ExecCount == 0 {
			continue
		}
		out := uint64(0)
		for _, e := range b.Succs {
			out += e.Count
		}
		diff := int64(b.ExecCount) - int64(out)
		if diff < 0 {
			diff = -diff
		}
		total += b.ExecCount
		violation += uint64(diff)
	}
	return violation, total
}

// accFromViolation converts violation terms to the [0,1] accuracy scale
// (empty = vacuously consistent).
func accFromViolation(violation, total uint64) float64 {
	if total == 0 {
		return 1
	}
	acc := 1 - float64(violation)/float64(total)
	if acc < 0 {
		return 0
	}
	return acc
}

// flowAccuracy measures how consistently the final counts satisfy the
// flow equations (1.0 = every block's inflow equals its outflow).
func flowAccuracy(fn *BinaryFunction) float64 {
	v, t := flowViolation(fn)
	return accFromViolation(v, t)
}

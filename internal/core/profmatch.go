package core

import (
	"context"
	"time"

	"gobolt/internal/isa"
	"gobolt/internal/profile"
	"gobolt/internal/stale"
)

// Profile-application statistics (the profile-* keys of ctx.Stats) are
// declared in StatDefs (metrics.go) — the single source of truth behind
// the README's stat-key table and the sum-to-total invariant test. The
// count-weighted keys sum exactly to profile-total-count; see the defs
// for each key's meaning.

// ApplyProfile attaches an fdata profile to the CFGs: branch records
// become edge counts, call records become function execution counts and
// indirect-call histograms, and flow repair fills in the fall-through
// counts LBRs cannot observe (paper §5.2). Non-LBR profiles set block
// counts from PC samples and reconstruct edges with the minimum-cost
// flow solver of internal/flow — the production replacement for the
// "non-ideal algorithm" whose cost Figure 11 quantifies
// (Opts.InferFlow = InferNever restores the proportional estimator, and
// InferAlways also repairs LBR/stale/translated profiles after classic
// flow repair).
//
// When the profile carries CFG shapes (format v2) and Opts.StaleMatching
// is on, records whose offsets no longer resolve against this binary are
// re-anchored by structural block matching instead of being dropped — the
// stale-profile path that keeps week-old production profiles usable
// across releases.
//
// Record matching/attachment fans out per-function over Opts.Jobs
// workers (records are sharded by resolved function first; each
// function's CFG mutations are function-local) and is reported as
// "profile:apply" by -time-passes; the per-function inference stage is
// likewise parallel and reported as "profile:infer". Cancelling cx stops
// both promptly; the only possible error is cx.Err().
func (ctx *BinaryContext) ApplyProfile(cx context.Context, fd *profile.Fdata) error {
	ctx.ProfileLBR = fd.LBR
	if ctx.CallEdges == nil {
		ctx.CallEdges = map[[2]string]uint64{}
	}
	var sm *staleMatcher
	if ctx.Opts.StaleMatching && len(fd.Shapes) > 0 {
		sm = &staleMatcher{ctx: ctx, shapes: fd.Shapes, cache: map[*BinaryFunction]*staleFunc{}}
	}
	start := time.Now()
	before := ctx.statsSnapshot()
	var nfuncs, jobs int
	var err error
	if fd.LBR {
		nfuncs, jobs, err = ctx.applyLBR(cx, fd, sm)
	} else {
		nfuncs, jobs, err = ctx.applySamples(cx, fd, sm)
	}
	applyWall := time.Since(start)
	ctx.Opts.Trace.Phase("profile:apply", start, applyWall, jobs)
	ctx.LoadTimings = append(ctx.LoadTimings, PassTiming{
		Name: "profile:apply", Wall: applyWall,
		Funcs: nfuncs, Parallel: jobs > 1, Jobs: jobs,
		StatDelta: statDelta(before, ctx.statsSnapshot()),
	})
	if err != nil {
		return err
	}
	return ctx.inferStage(cx, fd.LBR)
}

// inferStage reconstructs consistent per-function counts from the raw
// record application: classic flow repair and/or minimum-cost-flow
// inference, fanned out over the worker pool (each function's counts
// are function-local state, so the stage parallelizes like a function
// pass). Appends the "profile:infer" timing to LoadTimings and fills
// ctx.FlowAccBefore/FlowAccAfter/InferredFuncs.
func (ctx *BinaryContext) inferStage(cx context.Context, lbr bool) error {
	var funcs []*BinaryFunction
	for _, fn := range ctx.Funcs {
		if fn.Simple && fn.Sampled && len(fn.Blocks) > 0 {
			funcs = append(funcs, fn)
		}
	}
	useMCF := ctx.Opts.InferFlow == InferAlways ||
		(!lbr && ctx.Opts.InferFlow != InferNever)

	start := time.Now()
	jobs := effectiveJobs(ctx.Opts.Jobs, len(funcs))
	// Per-function accuracy terms land in index-addressed slots and fold
	// serially below, so the aggregate floats are bit-identical for
	// every worker count.
	type accTerm struct {
		violBefore, totalBefore uint64
		violAfter, totalAfter   uint64
	}
	terms := make([]accTerm, len(funcs))
	if _, err := ctx.forPhase(cx, "profile:infer",
		func(i int) string { return funcs[i].Name },
		len(funcs), jobs, func(_, i int) error {
			fn := funcs[i]
			terms[i].violBefore, terms[i].totalBefore = flowViolation(fn)
			if lbr {
				repairFlow(fn)
				if useMCF {
					inferFlowMCF(fn, true)
				}
			} else {
				entrySamples := fn.Blocks[0].ExecCount
				if useMCF {
					inferFlowMCF(fn, false)
				} else {
					inferEdgesFromBlockCounts(fn)
				}
				// A function's execution count is its entry in-flow, not the
				// entry block's own sample count: a hot function with a
				// short, rarely-sampled entry block must not look cold.
				var entryOut uint64
				for _, e := range fn.Blocks[0].Succs {
					entryOut += e.Count
				}
				fn.ExecCount = max(entrySamples, fn.Blocks[0].ExecCount, entryOut)
			}
			fn.ProfileAcc = flowAccuracy(fn)
			terms[i].violAfter, terms[i].totalAfter = flowViolation(fn)
			return nil
		}); err != nil {
		return err
	}
	// Serial fold: aggregate floats and the per-function flow-accuracy
	// histogram are observed in function order, so both are identical
	// for every worker count.
	var vb, tb, va, ta uint64
	reg := ctx.metrics()
	for i, t := range terms {
		vb += t.violBefore
		tb += t.totalBefore
		va += t.violAfter
		ta += t.totalAfter
		reg.Observe(MetricFlowAccuracy, funcs[i].Name, funcs[i].ProfileAcc)
	}
	ctx.FlowAccBefore = accFromViolation(vb, tb)
	ctx.FlowAccAfter = accFromViolation(va, ta)
	reg.SetGauge(MetricFlowAccBefore, ctx.FlowAccBefore)
	reg.SetGauge(MetricFlowAccAfter, ctx.FlowAccAfter)
	if useMCF {
		ctx.InferredFuncs = len(funcs)
		ctx.CountStat("profile-inferred-funcs", int64(len(funcs)))
	}
	inferWall := time.Since(start)
	ctx.Opts.Trace.Phase("profile:infer", start, inferWall, jobs)
	ctx.LoadTimings = append(ctx.LoadTimings, PassTiming{
		Name: "profile:infer", Wall: inferWall,
		Funcs: len(funcs), Parallel: jobs > 1, Jobs: jobs,
	})
	return nil
}

// staleMatcher lazily diagnoses per function whether the profile's shape
// still describes this binary's CFG, and if not, builds the old-block ->
// current-block map.
type staleMatcher struct {
	ctx    *BinaryContext
	shapes map[string]profile.FuncShape
	cache  map[*BinaryFunction]*staleFunc
}

type staleFunc struct {
	stale    bool
	old      profile.FuncShape
	blockMap map[int]*BasicBlock // old shape block index -> current block
}

// lookup returns the stale state for fn (nil = no shape carried, treat as
// current), computing and caching it on first use. Serial callers only:
// the parallel apply stage uses compute into per-bucket slots and installs
// them into the cache at the join.
func (sm *staleMatcher) lookup(fn *BinaryFunction) *staleFunc {
	if sm == nil {
		return nil
	}
	if sf, ok := sm.cache[fn]; ok {
		return sf
	}
	sf := sm.compute(fn)
	sm.cache[fn] = sf
	if sf != nil {
		sm.ctx.CountStat("profile-stale-funcs", 1)
		observeStaleQuality(sm.ctx, fn, sf)
	}
	return sf
}

// observeStaleQuality records the fraction of a stale function's old
// block shapes that matched the current CFG — the per-function match
// quality a profile gate can threshold. Serial callers only (lookup and
// installStale), so the histogram is deterministic across worker counts.
func observeStaleQuality(ctx *BinaryContext, fn *BinaryFunction, sf *staleFunc) {
	if len(sf.old.Blocks) == 0 {
		return
	}
	q := float64(len(sf.blockMap)) / float64(len(sf.old.Blocks))
	ctx.metrics().Observe(MetricStaleMatchQuality, fn.Name, q)
}

// compute builds fn's stale state without touching the shared cache or
// stats — read-only on shared state, so it is safe to call concurrently
// for distinct functions.
func (sm *staleMatcher) compute(fn *BinaryFunction) *staleFunc {
	sh, ok := sm.shapes[fn.Name]
	if !ok || !fn.Simple || len(fn.Blocks) == 0 {
		return nil
	}
	cur, _ := computeFuncShape(fn, nil)
	if stale.ShapesEqual(sh, cur) {
		return nil
	}
	sf := &staleFunc{stale: true, old: sh, blockMap: map[int]*BasicBlock{}}
	for oldIdx, newIdx := range stale.Match(sh.Blocks, cur.Blocks) {
		if newIdx >= 0 && newIdx < len(fn.Blocks) {
			sf.blockMap[oldIdx] = fn.Blocks[newIdx]
		}
	}
	return sf
}

// funcRecs is one function's shard of profile records, applied by a
// single worker: every CFG mutation it performs (edge counts, block
// counts, fn.Sampled) is local to fn, so distinct buckets never race.
// The stale state is computed into sf by the owning worker and installed
// into the shared matcher cache at the serial join.
type funcRecs struct {
	fn   *BinaryFunction
	brs  []profile.Branch
	smps []profile.Sample
	sf   *staleFunc
}

// applyCounts is one worker's shard of the count-weighted profile stats;
// shards merge commutatively at the join, so totals match a serial apply
// exactly.
type applyCounts struct {
	edge, sample, ignored, drop, stale, staleDrop uint64
}

func (c *applyCounts) add(o applyCounts) {
	c.edge += o.edge
	c.sample += o.sample
	c.ignored += o.ignored
	c.drop += o.drop
	c.stale += o.stale
	c.staleDrop += o.staleDrop
}

// bucketFor returns the funcRecs shard for fn, creating it on first use.
func bucketFor(fn *BinaryFunction, buckets *[]*funcRecs, idx map[*BinaryFunction]int) *funcRecs {
	k, ok := idx[fn]
	if !ok {
		k = len(*buckets)
		idx[fn] = k
		*buckets = append(*buckets, &funcRecs{fn: fn})
	}
	return (*buckets)[k]
}

// installStale moves per-bucket stale results into the shared matcher
// cache at the serial join, counting each stale function once (the same
// accounting serial lookup performs on first touch).
func installStale(ctx *BinaryContext, sm *staleMatcher, buckets []*funcRecs) {
	if sm == nil {
		return
	}
	for _, b := range buckets {
		sm.cache[b.fn] = b.sf
		if b.sf != nil {
			ctx.CountStat("profile-stale-funcs", 1)
			observeStaleQuality(ctx, b.fn, b.sf)
		}
	}
}

// applyLBR attaches branch records in three phases: a serial classify
// pass resolves symbols and shards intra-function records per function,
// a parallel phase applies each function's records (stale matching,
// instruction lookup, edge attach — the expensive part), and a serial
// tail handles inter-function call records, which mutate shared state
// (ExecCount of arbitrary callees, CallEdges, CallTargets). Every update
// is commutative (+= or an idempotent flag), so the final CFG state and
// stats are identical to a record-order serial apply.
func (ctx *BinaryContext) applyLBR(cx context.Context, fd *profile.Fdata, sm *staleMatcher) (int, int, error) {
	type callRec struct {
		fromFn, toFn *BinaryFunction
		br           profile.Branch
	}
	var total, drop, ignored uint64
	var buckets []*funcRecs
	idx := map[*BinaryFunction]int{}
	var calls []callRec
	for _, br := range fd.Branches {
		total += br.Count
		fromFn := ctx.ByName[br.From.Sym]
		toFn := ctx.ByName[br.To.Sym]
		if fromFn == nil || toFn == nil {
			drop += br.Count
			continue
		}
		// Same-function records inside a non-simple function carry no
		// recoverable CFG information — and a loop back-edge to offset 0
		// must not be miscounted as a recursive call (it would inflate
		// ExecCount and invent a self CallEdges entry).
		if fromFn == toFn && !fromFn.Simple {
			fromFn.Sampled = true
			ignored += br.Count
			continue
		}
		if fromFn == toFn {
			b := bucketFor(fromFn, &buckets, idx)
			b.brs = append(b.brs, br)
			continue
		}
		calls = append(calls, callRec{fromFn, toFn, br})
	}

	jobs := effectiveJobs(ctx.Opts.Jobs, len(buckets))
	shards := make([]applyCounts, jobs)
	if _, err := ctx.forPhase(cx, "profile:apply",
		func(i int) string { return buckets[i].fn.Name },
		len(buckets), jobs, func(w, i int) error {
			b := buckets[i]
			if sm != nil {
				b.sf = sm.compute(b.fn)
			}
			c := &shards[w]
			for _, br := range b.brs {
				applyIntraBranch(b.fn, b.sf, br, c)
			}
			return nil
		}); err != nil {
		return len(buckets), jobs, err
	}
	installStale(ctx, sm, buckets)

	var c applyCounts
	for i := range shards {
		c.add(shards[i])
	}
	var callCount uint64
	for _, cr := range calls {
		br := cr.br
		if br.To.Off != 0 {
			// Returns land mid-function; they carry no CFG information.
			ignored += br.Count
			continue
		}
		// Call, tail call, or conditional tail call into toFn's entry.
		cr.toFn.ExecCount += br.Count
		cr.toFn.Sampled = true
		ctx.CallEdges[[2]string{cr.fromFn.Name, cr.toFn.Name}] += br.Count
		callCount += br.Count
		if cr.fromFn.Simple {
			cr.fromFn.Sampled = true
			if sf := sm.lookup(cr.fromFn); sf == nil || !sf.stale {
				fromAddr := cr.fromFn.Addr + br.From.Off
				if _, fi := cr.fromFn.InstAt(fromAddr); fi != nil {
					if fi.I.Op == isa.CALLr || fi.I.Op == isa.CALLm {
						m := ctx.CallTargets[fromAddr]
						if m == nil {
							m = map[string]uint64{}
							ctx.CallTargets[fromAddr] = m
						}
						m[cr.toFn.Name] += br.Count
					}
				}
			}
		}
	}

	count := func(key string, n uint64) {
		if n > 0 {
			ctx.CountStat(key, int64(n))
		}
	}
	count("profile-total-count", total)
	count("profile-edge-count", c.edge)
	count("profile-call-count", callCount)
	count("profile-ignored-count", ignored+c.ignored)
	count("profile-drop-count", drop+c.drop)
	count("profile-stale-count", c.stale)
	count("profile-stale-drop-count", c.staleDrop)
	return len(buckets), jobs, nil
}

// applyIntraBranch applies one same-function branch record. All state it
// mutates belongs to fn; counts accumulate into the worker's shard.
func applyIntraBranch(fn *BinaryFunction, sf *staleFunc, br profile.Branch, c *applyCounts) {
	// Shape mismatch: this binary is a different build than the profiled
	// one; route every intra-function record through the block matcher
	// (raw offsets would at best miss, at worst hit an unrelated
	// instruction).
	if sf != nil && sf.stale {
		switch applyStaleBranch(fn, sf, br) {
		case staleApplied:
			c.stale += br.Count
		case staleIgnored:
			// Same classification the fresh path would give the record
			// (returns, non-branch sources): no CFG info, but nothing
			// recoverable was lost either.
			c.ignored += br.Count
		case staleDropped:
			c.staleDrop += br.Count
		}
		return
	}
	fromAddr := fn.Addr + br.From.Off
	toAddr := fn.Addr + br.To.Off
	fb, fi := fn.InstAt(fromAddr)
	if fb == nil {
		c.drop += br.Count
		return
	}
	fn.Sampled = true
	// Return-to-self or call-to-self noise: only branch sources
	// contribute to edges.
	if !fi.I.IsBranch() {
		c.ignored += br.Count
		return
	}
	tb := fn.BlockAt(toAddr)
	if tb == nil {
		c.drop += br.Count
		return
	}
	for k := range fb.Succs {
		if fb.Succs[k].To == tb {
			fb.Succs[k].Count += br.Count
			fb.Succs[k].Mispreds += br.Mispreds
			c.edge += br.Count
			return
		}
	}
	c.drop += br.Count
}

// staleOutcome classifies one stale record's fate, mirroring the fresh
// path's three-way split (applied / no-CFG-info / lost).
type staleOutcome int

const (
	staleApplied staleOutcome = iota
	staleIgnored
	staleDropped
)

// applyStaleBranch re-anchors one intra-function branch record through
// the shape match: the source is the old block containing From.Off, the
// target the old block starting at To.Off; the count lands on the
// corresponding current-CFG edge if the old shape confirms the edge
// existed and both blocks matched. Records the *old* CFG itself would
// not have used (mid-block landings = returns-to-self, sources with no
// such edge = calls-to-self and noise) classify as ignored, exactly as
// the fresh path classifies them — they carry no recoverable counts.
func applyStaleBranch(fn *BinaryFunction, sf *staleFunc, br profile.Branch) staleOutcome {
	blocks := sf.old.Blocks
	oldFrom := stale.BlockAtOff(blocks, br.From.Off)
	oldTo := stale.BlockAtOff(blocks, br.To.Off)
	if oldFrom < 0 || oldTo < 0 {
		return staleDropped
	}
	if blocks[oldTo].Off != br.To.Off {
		return staleIgnored // mid-block landing: a return, not a branch
	}
	if !stale.HasSucc(blocks, oldFrom, oldTo) {
		return staleIgnored // no such old edge: non-branch source
	}
	nf, nt := sf.blockMap[oldFrom], sf.blockMap[oldTo]
	if nf == nil || nt == nil {
		return staleDropped
	}
	for k := range nf.Succs {
		if nf.Succs[k].To == nt {
			nf.Succs[k].Count += br.Count
			nf.Succs[k].Mispreds += br.Mispreds
			fn.Sampled = true
			return staleApplied
		}
	}
	return staleDropped
}

// applySamples attaches PC samples with the same classify → parallel
// per-function apply → join structure as applyLBR; samples only ever
// touch their own function's blocks, so there is no serial tail beyond
// stat folding.
func (ctx *BinaryContext) applySamples(cx context.Context, fd *profile.Fdata, sm *staleMatcher) (int, int, error) {
	var total, drop uint64
	var buckets []*funcRecs
	idx := map[*BinaryFunction]int{}
	for _, s := range fd.Samples {
		total += s.Count
		fn := ctx.ByName[s.At.Sym]
		if fn == nil || !fn.Simple {
			drop += s.Count
			continue
		}
		b := bucketFor(fn, &buckets, idx)
		b.smps = append(b.smps, s)
	}

	jobs := effectiveJobs(ctx.Opts.Jobs, len(buckets))
	shards := make([]applyCounts, jobs)
	if _, err := ctx.forPhase(cx, "profile:apply",
		func(i int) string { return buckets[i].fn.Name },
		len(buckets), jobs, func(w, i int) error {
			b := buckets[i]
			if sm != nil {
				b.sf = sm.compute(b.fn)
			}
			c := &shards[w]
			for _, s := range b.smps {
				applySample(b.fn, b.sf, s, c)
			}
			return nil
		}); err != nil {
		return len(buckets), jobs, err
	}
	installStale(ctx, sm, buckets)

	var c applyCounts
	for i := range shards {
		c.add(shards[i])
	}
	count := func(key string, n uint64) {
		if n > 0 {
			ctx.CountStat(key, int64(n))
		}
	}
	count("profile-total-count", total)
	count("profile-sample-count", c.sample)
	count("profile-drop-count", drop+c.drop)
	count("profile-stale-count", c.stale)
	count("profile-stale-drop-count", c.staleDrop)
	// Function exec counts are derived after inference (inferStage): the
	// entry block's own sample count understates hot functions whose
	// entry is short and rarely sampled, so the entry *in-flow* decides.
	return len(buckets), jobs, nil
}

// applySample applies one PC sample to fn's blocks (fn-local state only).
func applySample(fn *BinaryFunction, sf *staleFunc, s profile.Sample, c *applyCounts) {
	if sf != nil && sf.stale {
		oldIdx := stale.BlockAtOff(sf.old.Blocks, s.At.Off)
		if b := sf.blockMap[oldIdx]; oldIdx >= 0 && b != nil {
			b.ExecCount += s.Count
			fn.Sampled = true
			c.stale += s.Count
		} else {
			c.staleDrop += s.Count
		}
		return
	}
	b := fn.BlockContaining(fn.Addr + s.At.Off)
	if b == nil {
		c.drop += s.Count
		return
	}
	b.ExecCount += s.Count
	fn.Sampled = true
	c.sample += s.Count
}

// isCondTerm reports whether block b ends in a conditional branch with a
// fall-through (Succs = [taken, fallthrough]).
func isCondTerm(b *BasicBlock) bool {
	last := b.LastInst()
	return last != nil && last.I.Op == isa.JCC && len(b.Succs) == 2
}

// repairFlow reconstructs block counts and fall-through edge counts from
// taken-branch counts. Following §5.2, surplus flow is attributed to the
// fall-through path: the static compiler's layout is trusted unless the
// trace shows taken branches contradicting it.
func repairFlow(fn *BinaryFunction) {
	for iter := 0; iter < 5; iter++ {
		for _, b := range fn.Blocks {
			in := uint64(0)
			for _, p := range b.Preds {
				for _, e := range p.Succs {
					if e.To == b {
						in += e.Count
					}
				}
			}
			if b.IsEntry && fn.ExecCount > in {
				in = fn.ExecCount
			}
			out := uint64(0)
			for _, e := range b.Succs {
				out += e.Count
			}
			cnt := in
			if out > cnt {
				cnt = out
			}
			if cnt > b.ExecCount {
				b.ExecCount = cnt
			}
			// Distribute surplus to the fall-through (non-taken) path.
			switch {
			case isCondTerm(b):
				taken := b.Succs[0].Count
				if b.ExecCount > taken {
					b.Succs[1].Count = b.ExecCount - taken
				}
			case len(b.Succs) == 1:
				if b.Succs[0].Count < b.ExecCount {
					b.Succs[0].Count = b.ExecCount
				}
			}
		}
	}
}

// inferEdgesFromBlockCounts is the legacy non-LBR edge estimator
// (Opts.InferFlow = InferNever): block counts come from PC samples;
// each block's outflow is split across successors in proportion to the
// successors' own sample counts. This is the deliberately "non-ideal
// algorithm" of §5.1 — it loses flow to per-successor truncation and
// its +1 smoothing invents counts on never-executed successors — kept
// as the comparison baseline for the minimum-cost-flow solver
// (internal/flow) that now runs by default.
func inferEdgesFromBlockCounts(fn *BinaryFunction) {
	for iter := 0; iter < 3; iter++ {
		for _, b := range fn.Blocks {
			if len(b.Succs) == 0 {
				continue
			}
			total := uint64(0)
			for _, e := range b.Succs {
				total += e.To.ExecCount + 1
			}
			for k := range b.Succs {
				share := float64(b.Succs[k].To.ExecCount+1) / float64(total)
				b.Succs[k].Count = uint64(float64(b.ExecCount) * share)
			}
		}
	}
}

// flowViolation sums, over every executed block with successors, the
// block count and the absolute gap between it and its out-flow — the
// integer terms behind flowAccuracy, kept exact so parallel aggregation
// stays deterministic.
func flowViolation(fn *BinaryFunction) (violation, total uint64) {
	for _, b := range fn.Blocks {
		if len(b.Succs) == 0 || b.ExecCount == 0 {
			continue
		}
		out := uint64(0)
		for _, e := range b.Succs {
			out += e.Count
		}
		diff := int64(b.ExecCount) - int64(out)
		if diff < 0 {
			diff = -diff
		}
		total += b.ExecCount
		violation += uint64(diff)
	}
	return violation, total
}

// accFromViolation converts violation terms to the [0,1] accuracy scale
// (empty = vacuously consistent).
func accFromViolation(violation, total uint64) float64 {
	if total == 0 {
		return 1
	}
	acc := 1 - float64(violation)/float64(total)
	if acc < 0 {
		return 0
	}
	return acc
}

// flowAccuracy measures how consistently the final counts satisfy the
// flow equations (1.0 = every block's inflow equals its outflow).
func flowAccuracy(fn *BinaryFunction) float64 {
	v, t := flowViolation(fn)
	return accFromViolation(v, t)
}

package core

import (
	"os"
	"strings"
	"testing"
)

// TestReadmeStatKeysInSync keeps the README's documented stat-key table
// generated, not hand-maintained: the block between the stat-keys
// markers must be exactly StatKeyDoc(). Regenerate by pasting the
// failure's "want" output (or any `fmt.Print(core.StatKeyDoc())`)
// between the markers.
func TestReadmeStatKeysInSync(t *testing.T) {
	data, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatalf("read README: %v", err)
	}
	const begin = "<!-- stat-keys:begin -->"
	const end = "<!-- stat-keys:end -->"
	readme := string(data)
	i := strings.Index(readme, begin)
	j := strings.Index(readme, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("README is missing the %s / %s markers", begin, end)
	}
	got := strings.TrimSpace(readme[i+len(begin) : j])
	want := strings.TrimSpace(StatKeyDoc())
	if got != want {
		t.Errorf("README stat-key table is stale; regenerate from core.StatKeyDoc().\nwant:\n%s", want)
	}
}

package core

import (
	"gobolt/internal/profile"
	"gobolt/internal/stale"
)

// ComputeShapes captures the block-level shape of every simple function
// for embedding in a v2 profile: per block, its input offset, an
// opcode-sequence hash, and its successor indices. A later gobolt run on
// a *different* build of the program uses these via internal/stale to
// re-anchor profile records whose offsets no longer resolve. Call it on a
// freshly loaded context (before passes restructure the CFGs) so block
// indices and offsets reflect the on-disk layout the profiler saw.
func ComputeShapes(ctx *BinaryContext) map[string]profile.FuncShape {
	out := make(map[string]profile.FuncShape)
	var buf []byte
	for _, fn := range ctx.Funcs {
		if !fn.Simple || fn.FoldedInto != nil || len(fn.Blocks) == 0 {
			continue
		}
		sh, scratch := computeFuncShape(fn, buf)
		buf = scratch
		out[fn.Name] = sh
	}
	return out
}

// computeFuncShape builds one function's shape; buf is reusable scratch.
func computeFuncShape(fn *BinaryFunction, buf []byte) (profile.FuncShape, []byte) {
	sh := profile.FuncShape{Blocks: make([]profile.BlockShape, len(fn.Blocks))}
	for i, b := range fn.Blocks {
		buf = buf[:0]
		for k := range b.Insts {
			in := &b.Insts[k].I
			buf = append(buf, byte(in.Op), byte(in.Cc))
		}
		bs := profile.BlockShape{Off: b.Addr - fn.Addr, Hash: stale.HashBytes(buf)}
		for _, e := range b.Succs {
			if e.To != nil {
				bs.Succs = append(bs.Succs, e.To.Index)
			}
		}
		sh.Blocks[i] = bs
	}
	return sh, buf
}

// Package core is the gobolt engine: the paper's primary contribution.
//
// It implements the rewriting pipeline of Figure 3 — function discovery,
// debug-info and profile reading, disassembly, CFG construction, an
// optimization pipeline (Table 1, implemented in internal/passes), code
// emission, and binary rewriting — operating on fully linked ELF
// executables plus sample-based fdata profiles.
//
// Like BOLT, gobolt is conservative: functions it cannot fully analyze
// (indirect tail calls, unbounded jump tables, undecodable bytes) are
// marked non-simple and left untouched while the rest of the binary is
// optimized (paper §3.1, §6.4).
package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"gobolt/internal/cfi"
	"gobolt/internal/dbg"
	"gobolt/internal/elfx"
	"gobolt/internal/hfsort"
	"gobolt/internal/intern"
	"gobolt/internal/isa"
	"gobolt/internal/layout"
	"gobolt/internal/obsv"
)

// Options mirrors the llvm-bolt command line used in the paper (§6.2.1):
// -reorder-blocks=cache+ -reorder-functions=hfsort+ -split-functions=3
// -split-all-cold -split-eh -icf=1.
type Options struct {
	ReorderBlocks    layout.Algorithm
	ReorderFunctions hfsort.Algorithm
	SplitFunctions   int // 0 = off, >=1 = split cold code
	SplitAllCold     bool
	SplitEH          bool
	ICF              bool
	ICP              bool
	InlineSmall      bool
	SimplifyROLoads  bool
	PLT              bool
	Peepholes        bool
	StripRepRet      bool
	FrameOpts        bool
	ShrinkWrapping   bool
	SCTC             bool
	UCE              bool

	AlignFunctions      int
	DynoStats           bool
	UpdateDebugSections bool
	// Lite skips functions with no profile samples entirely.
	Lite bool
	// EnableBAT emits the BOLT Address Translation table (.bolt.bat) into
	// the rewritten binary so profiles sampled on the optimized binary can
	// be translated back to input coordinates (§7.3 continuous profiling).
	EnableBAT bool
	// StaleMatching recovers profile records whose (function, offset)
	// pairs no longer resolve by matching CFG blocks against the shapes
	// carried in a v2 profile (arXiv:2401.17168); off = drop them, the
	// classic perf2bolt behaviour.
	StaleMatching bool
	// ICPThreshold is the minimum fraction of calls going to the dominant
	// target for indirect-call promotion (e.g. 0.51).
	ICPThreshold float64
	// InferFlow selects the minimum-cost-flow profile-inference stage
	// (internal/flow), the production replacement for the §5.1 "non-ideal
	// algorithm": InferAuto (default) solves MCF for non-LBR sample
	// profiles and leaves LBR profiles to classic flow repair; InferAlways
	// additionally repairs LBR/stale/BAT-translated profiles after
	// repairFlow; InferNever keeps the legacy proportional estimator.
	InferFlow InferMode

	// Jobs bounds the worker pools of every parallel pipeline phase:
	// the loader's per-function disassembly+CFG stage, the PassManager's
	// function passes, and the emitter's per-function code generation
	// (0 = GOMAXPROCS, 1 = fully serial). Output is bit-identical for
	// every value.
	Jobs int
	// TimePasses asks the driver to render the per-phase timing report
	// after the pipeline (the bolt package exposes it as
	// Report.WriteTimings; the timings themselves are always collected).
	TimePasses bool
	// Trace, when non-nil, records a span for every pipeline phase and
	// every worker-pool task into the obsv tracer (exported as Chrome
	// trace-event JSON by `gobolt -trace-out`). nil disables tracing;
	// every recording site nil-checks first, so the hot paths stay
	// allocation-free when tracing is off.
	Trace *obsv.Tracer `json:"-"`
}

// InferMode selects how ApplyProfile reconstructs consistent counts
// from the attached samples (the profile:infer stage).
type InferMode int

const (
	// InferAuto solves minimum-cost flow for non-LBR sample profiles —
	// where edges must be reconstructed from scratch — and applies only
	// classic flow repair (§5.2) to LBR profiles. The default.
	InferAuto InferMode = iota
	// InferAlways additionally runs the MCF consistency repair on LBR,
	// stale-matched, and BAT-translated profiles after repairFlow.
	InferAlways
	// InferNever keeps the paper's §5.1 proportional estimator for
	// non-LBR profiles (the deliberately "non-ideal algorithm" —
	// useful as the boltbench comparison baseline).
	InferNever
)

// String renders the mode the way the -infer-flow flag spells it.
func (m InferMode) String() string {
	switch m {
	case InferAlways:
		return "always"
	case InferNever:
		return "never"
	default:
		return "auto"
	}
}

// ParseInferMode converts a -infer-flow flag value.
func ParseInferMode(s string) (InferMode, error) {
	switch s {
	case "auto", "":
		return InferAuto, nil
	case "always":
		return InferAlways, nil
	case "never":
		return InferNever, nil
	}
	return InferAuto, fmt.Errorf("invalid infer-flow mode %q (want auto, always, or never)", s)
}

// Normalized upgrades an unconfigured Options value to DefaultOptions.
// Historically `core.Options{}` silently meant "every pass off" — a
// footgun for callers that only wanted a context to analyze (compute
// shapes, apply a profile) and accidentally also disabled stale matching
// and BAT. Every pipeline entry point (NewContext, passes.BuildPipeline)
// normalizes its options, so an unconfigured value now means "the
// paper's defaults".
//
// "Unconfigured" ignores the operational knobs that do not select
// passes — Jobs, TimePasses, DynoStats, Trace — so `Options{Jobs: n}`
// means "defaults at n workers" for every n, not "all passes off unless
// n is 0". Turning every optimization off deliberately still works:
// start from DefaultOptions() and clear fields, or set any
// pass-selection field.
func (o Options) Normalized() Options {
	probe := o
	probe.Jobs = 0
	probe.TimePasses = false
	probe.DynoStats = false
	probe.Trace = nil
	if probe != (Options{}) {
		return o
	}
	d := DefaultOptions()
	d.Jobs = o.Jobs
	d.TimePasses = o.TimePasses
	d.DynoStats = o.DynoStats
	d.Trace = o.Trace
	return d
}

// DefaultOptions reproduces the paper's evaluation configuration.
func DefaultOptions() Options {
	return Options{
		ReorderBlocks:       layout.AlgoCache,
		ReorderFunctions:    hfsort.AlgoPlus,
		SplitFunctions:      3,
		SplitAllCold:        true,
		SplitEH:             true,
		ICF:                 true,
		ICP:                 true,
		InlineSmall:         true,
		SimplifyROLoads:     true,
		PLT:                 true,
		Peepholes:           true,
		StripRepRet:         true,
		FrameOpts:           true,
		ShrinkWrapping:      true,
		SCTC:                true,
		UCE:                 true,
		AlignFunctions:      16,
		UpdateDebugSections: true,
		ICPThreshold:        0.51,
		EnableBAT:           true,
		StaleMatching:       true,
	}
}

// Inst is one instruction plus gobolt's annotations (the MCInst
// annotation mechanism from paper §3.3).
type Inst struct {
	I    isa.Inst
	Size uint8
	Addr uint64 // original address; 0 for synthesized instructions

	// Source origin (from .debug_line), shown in CFG dumps.
	File string
	Line int32

	// CFIIdx indexes the function's interned CFI state table: the unwind
	// state in effect AT this instruction. -1 = unknown/na.
	CFIIdx int32

	// LP is the landing pad covering this call, if any.
	LP       *BasicBlock
	LPAction int32

	// TargetSym names an external direct-call/branch target.
	TargetSym string
	// ImmSym, when set, makes the instruction's 32-bit immediate the
	// absolute address of the named function (ICP's `cmp $target, %reg`).
	ImmSym string
	// MemTarget is the resolved absolute address of a RIP-relative memory
	// operand (0 = none/unresolved).
	MemTarget uint64
	// JT is the jump table driving this indirect jump.
	JT *JumpTable
}

// IsCall reports whether the instruction is any call form.
func (in *Inst) IsCall() bool { return in.I.IsCall() }

// Edge is a weighted CFG edge.
type Edge struct {
	To       *BasicBlock
	Count    uint64
	Mispreds uint64
}

// BasicBlock is a node of the reconstructed CFG.
type BasicBlock struct {
	Index int
	Label string
	Addr  uint64 // original start address
	Insts []Inst

	// Succs ordering convention: for a conditional branch, Succs[0] is
	// the taken target and Succs[1] the fall-through; for unconditional
	// or fall-through blocks, Succs[0] is the sole successor; for jump
	// tables, one entry per distinct target.
	Succs []Edge
	Preds []*BasicBlock

	// LPs are landing pads reachable from calls in this block.
	LPs []*BasicBlock

	ExecCount uint64
	CFIIn     int32
	IsLP      bool
	IsCold    bool // assigned to the cold fragment by splitting
	IsEntry   bool
}

// SuccBlock returns the i-th successor block or nil.
func (b *BasicBlock) SuccBlock(i int) *BasicBlock {
	if i < len(b.Succs) {
		return b.Succs[i].To
	}
	return nil
}

// LastInst returns the final instruction or nil.
func (b *BasicBlock) LastInst() *Inst {
	if len(b.Insts) == 0 {
		return nil
	}
	return &b.Insts[len(b.Insts)-1]
}

// JumpTable describes a recovered jump table (paper §3.2: PIC tables must
// be rediscovered by analysis because their relocations are discarded).
type JumpTable struct {
	Addr      uint64
	EntrySize int
	PIC       bool
	Targets   []*BasicBlock
	SymName   string
}

// BinaryFunction is one discovered function.
type BinaryFunction struct {
	Name    string
	Aliases []string
	Addr    uint64
	Size    uint64
	Section string
	Bytes   []byte

	Simple bool
	Reason string // why non-simple

	Blocks    []*BasicBlock // current layout order
	cfiStates []cfi.State
	stateKeys map[string]int32
	JTs       []*JumpTable

	HasLSDA   bool
	ExecCount uint64
	Sampled   bool // any profile data attached
	// ProfileAcc estimates flow-equation consistency (Fig 4 "Profile Acc").
	ProfileAcc float64

	// FoldedInto is set by ICF when this function's body was replaced by
	// a reference to another function.
	FoldedInto *BinaryFunction

	// ICFKey caches the congruence key computed by the (parallel) ICF
	// hash pass; the sequential fold pass consumes and clears it, so a
	// stale key never survives into a later round.
	ICFKey string

	// IsSplit marks functions whose cold blocks go to the cold section.
	IsSplit bool

	// Emission results (set during rewrite).
	OutAddr, OutSize   uint64
	ColdAddr, ColdSize uint64

	// ordIdx is this function's index in BinaryContext.Funcs (assigned
	// once after discovery sorts the list). Emission packs it into
	// numeric relocation symbols and the rewriter uses it to index
	// per-function side tables without map lookups.
	ordIdx int

	jtPending map[int]*pendingJT
	instIndex map[uint64]instRef
	// keyBuf is InternState's reusable key-encoding scratch. Safe because
	// a function is only ever mutated by the one worker that owns it.
	keyBuf []byte
}

type instRef struct {
	b *BasicBlock
	i int
}

// RebuildIndex refreshes the address lookup after passes restructure the
// CFG (block reordering, splitting, splicing).
func (f *BinaryFunction) RebuildIndex() { f.buildInstIndex() }

// buildInstIndex (re)builds the address -> instruction lookup table,
// sized up front so the map never rehashes while filling.
func (f *BinaryFunction) buildInstIndex() {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Insts)
	}
	f.instIndex = make(map[uint64]instRef, n)
	for _, b := range f.Blocks {
		for i := range b.Insts {
			if b.Insts[i].Addr != 0 {
				f.instIndex[b.Insts[i].Addr] = instRef{b: b, i: i}
			}
		}
	}
}

// NumBlocks returns the block count.
func (f *BinaryFunction) NumBlocks() int { return len(f.Blocks) }

// InternState interns a CFI state and returns its index. It is hot under
// the parallel loader (one call per instruction of every framed
// function), so the lookup key is encoded into a reusable scratch buffer
// and only materialized as a string on first insertion.
func (f *BinaryFunction) InternState(st cfi.State) int32 {
	f.keyBuf = appendStateKey(f.keyBuf[:0], st)
	if i, ok := f.stateKeys[string(f.keyBuf)]; ok {
		return i
	}
	if f.stateKeys == nil {
		f.stateKeys = map[string]int32{}
	}
	i := int32(len(f.cfiStates))
	f.cfiStates = append(f.cfiStates, cloneState(st))
	f.stateKeys[string(f.keyBuf)] = i
	return i
}

// StateAt returns the interned CFI state by index.
func (f *BinaryFunction) StateAt(idx int32) *cfi.State {
	if idx < 0 || int(idx) >= len(f.cfiStates) {
		return nil
	}
	return &f.cfiStates[idx]
}

// appendStateKey encodes a CFI state into buf as a compact comparable
// key: CFA register and offset, then the saved-register set sorted by
// register number with each register's CFA offset. The layout
// (5 + 5*len(Saved) bytes) is unambiguous, so two states map to the same
// key iff they are equal. This replaces a fmt.Sprintf renderer that
// allocated several strings per call.
func appendStateKey(buf []byte, st cfi.State) []byte {
	buf = append(buf, st.CfaReg,
		byte(st.CfaOff), byte(st.CfaOff>>8), byte(st.CfaOff>>16), byte(st.CfaOff>>24))
	if len(st.Saved) == 0 {
		return buf
	}
	regsAt := len(buf)
	for r := range st.Saved {
		buf = append(buf, r)
	}
	// Insertion sort: the saved set is a handful of callee-saved
	// registers at most.
	regs := buf[regsAt:]
	for i := 1; i < len(regs); i++ {
		for j := i; j > 0 && regs[j] < regs[j-1]; j-- {
			regs[j], regs[j-1] = regs[j-1], regs[j]
		}
	}
	for _, r := range regs {
		off := st.Saved[r]
		buf = append(buf, byte(off), byte(off>>8), byte(off>>16), byte(off>>24))
	}
	return buf
}

func cloneState(st cfi.State) cfi.State {
	// A nil Saved map for the (common) no-saved-registers state: readers
	// only range over or look up in it, and the replay state the clone
	// detaches from is mutated through its own map, never this one.
	var m map[uint8]int32
	if len(st.Saved) > 0 {
		m = make(map[uint8]int32, len(st.Saved))
		for k, v := range st.Saved {
			m[k] = v
		}
	}
	return cfi.State{CfaReg: st.CfaReg, CfaOff: st.CfaOff, Saved: m}
}

// BlockAt finds the block starting at the given original address.
func (f *BinaryFunction) BlockAt(addr uint64) *BasicBlock {
	for _, b := range f.Blocks {
		if b.Addr == addr {
			return b
		}
	}
	return nil
}

// BlockContaining finds the block whose original instruction range covers
// addr (used for profile matching).
func (f *BinaryFunction) BlockContaining(addr uint64) *BasicBlock {
	if r, ok := f.instIndex[addr]; ok {
		return r.b
	}
	// Fall back to range check (the address may be inside an instruction
	// or a stripped NOP).
	var best *BasicBlock
	for _, b := range f.Blocks {
		if b.Addr <= addr && (best == nil || b.Addr > best.Addr) {
			best = b
		}
	}
	return best
}

// InstAt returns the block and instruction at an original address.
func (f *BinaryFunction) InstAt(addr uint64) (*BasicBlock, *Inst) {
	if r, ok := f.instIndex[addr]; ok {
		return r.b, &r.b.Insts[r.i]
	}
	return nil, nil
}

// BinaryContext owns everything gobolt knows about the input binary.
type BinaryContext struct {
	File *elfx.File
	Opts Options

	// Strings interns the repeated strings the loader attaches to
	// instructions (source files, call-target symbols) so each distinct
	// value is stored once per context and comparisons can rely on
	// identity. Safe for concurrent use by the parallel phases.
	Strings intern.Table

	Funcs  []*BinaryFunction
	ByName map[string]*BinaryFunction
	byAddr map[uint64]*BinaryFunction

	// HasRelocs is true when the binary was linked with --emit-relocs,
	// enabling relocations mode (function reordering; paper §3.2).
	HasRelocs bool

	// PLTStubs maps stub address -> final target address (via GOT).
	PLTStubs map[uint64]uint64

	LineTable *dbg.Table

	fdes     []cfi.FDE
	lsdaData []byte
	lsdaBase uint64

	// textRelocs maps absolute patch-site address -> relocation.
	textRelocs map[uint64]elfx.Rela

	// CallTargets histograms indirect-call targets per call-site address
	// (filled by profile application, consumed by ICP).
	CallTargets map[uint64]map[string]uint64

	// CallEdges is the weighted dynamic call graph (caller -> callee)
	// observed in the profile; reorder-functions feeds it to HFSort.
	CallEdges map[[2]string]uint64

	// ProfileLBR records which §5 profile mode produced the attached data.
	ProfileLBR bool

	// FuncOrder is the new function layout (set by reorder-functions).
	FuncOrder []string

	// Metrics is the typed registry behind the pipeline's statistics:
	// declared counters (see StatDefs), gauges, and the per-function
	// flow-accuracy / stale-match-quality histograms. It is the source
	// of truth for counts; Stats below aliases its live counter map.
	Metrics *obsv.Registry

	// Stats is the compatibility view of Metrics' counters — the same
	// live map the registry mutates, kept so existing readers and the
	// worker-shard merge protocol keep working unchanged. During
	// parallel function passes workers count into private FuncCtx
	// shards merged at the barrier; direct CountStat calls go through
	// the registry's lock. Read it only between passes.
	Stats       map[string]int64
	metricsOnce sync.Once

	// PassTimings is the instrumentation record of the last PassManager
	// run (one entry per pass, pipeline order).
	PassTimings []PassTiming

	// LoadTimings records the loader phases (serial discovery, parallel
	// disassembly+CFG) set by NewContext, plus the profile:infer stage
	// appended by ApplyProfile. EmitTimings records the emission phases
	// (parallel per-function code generation, serial layout+patch), set
	// by Rewrite. The bolt package's Report.WriteTimings renders all
	// three timing groups as one report.
	LoadTimings []PassTiming
	EmitTimings []PassTiming

	// FlowAccBefore/FlowAccAfter are the count-weighted flow-equation
	// consistency of the profiled CFGs before and after the
	// profile:infer stage (1.0 = every block's count equals its
	// out-flow); InferredFuncs counts the functions the minimum-cost
	// flow solver rebalanced. Set by ApplyProfile.
	FlowAccBefore, FlowAccAfter float64
	InferredFuncs               int
}

// FuncByAddr returns the function starting at addr.
func (ctx *BinaryContext) FuncByAddr(addr uint64) *BinaryFunction { return ctx.byAddr[addr] }

// FuncContaining returns the function covering addr. Funcs is sorted by
// address at discovery and never reordered, so this is a binary search —
// it sits on the hot profile-matching path.
func (ctx *BinaryContext) FuncContaining(addr uint64) *BinaryFunction {
	i := sort.Search(len(ctx.Funcs), func(i int) bool {
		return ctx.Funcs[i].Addr > addr
	})
	if i == 0 {
		return nil
	}
	if f := ctx.Funcs[i-1]; addr < f.Addr+f.Size {
		return f
	}
	return nil
}

// metrics returns the registry, creating it (and the aliased Stats
// view) on first use so contexts built without NewContext keep working.
func (ctx *BinaryContext) metrics() *obsv.Registry {
	ctx.metricsOnce.Do(func() {
		if ctx.Metrics == nil {
			ctx.Metrics = obsv.NewRegistry(StatDefs())
			ctx.Stats = ctx.Metrics.Counters()
		}
	})
	return ctx.Metrics
}

// CountStat bumps a named statistic through the metrics registry. Safe
// for concurrent use; inside a FunctionPass prefer the FuncCtx shard,
// which is contention-free.
func (ctx *BinaryContext) CountStat(name string, delta int64) {
	ctx.metrics().Add(name, delta)
}

// mergeStats folds a worker shard into the registry's counters (and
// therefore the aliased Stats map).
func (ctx *BinaryContext) mergeStats(shard map[string]int64) {
	if len(shard) == 0 {
		return
	}
	ctx.metrics().Merge(shard)
}

// statsSnapshot copies the current counters (for per-pass deltas).
func (ctx *BinaryContext) statsSnapshot() map[string]int64 {
	return ctx.metrics().SnapshotCounters()
}

// SimpleFuncs returns the rewritable functions.
func (ctx *BinaryContext) SimpleFuncs() []*BinaryFunction {
	var out []*BinaryFunction
	for _, f := range ctx.Funcs {
		if f.Simple && f.FoldedInto == nil {
			out = append(out, f)
		}
	}
	return out
}

// Pass is one transformation or analysis over the binary context.
type Pass interface {
	Name() string
	Run(ctx *BinaryContext) error
}

// RunPasses executes the pipeline in order on a single thread. It is the
// serial convenience entry point; use a PassManager to schedule function
// passes over a worker pool.
func RunPasses(cx context.Context, ctx *BinaryContext, passes []Pass) error {
	return NewPassManager(1).Run(cx, ctx, passes)
}

// InitialStateForTest exposes the ABI entry unwind state to tests.
func InitialStateForTest() cfi.State { return cfi.InitialState() }

package core

import (
	"context"

	"gobolt/internal/par"
)

// effectiveJobs resolves a -jobs setting against GOMAXPROCS and the
// amount of work available: jobs <= 0 selects GOMAXPROCS (the production
// default) and the pool never exceeds n workers.
func effectiveJobs(jobs, n int) int { return par.Jobs(jobs, n) }

// parallelFor distributes work items [0,n) over jobs workers; it is the
// engine-local name for par.For, the one fan-out primitive shared by the
// pipeline's parallel phases: the loader's per-function disassembly+CFG
// stage, the PassManager's function passes, and the emitter's
// per-function code generation. Cancelling cx drains the pool promptly
// (no new item is claimed) and returns (-1, cx.Err()). See par.For for
// the scheduling and error-attribution contract.
func parallelFor(cx context.Context, n, jobs int, work func(worker, item int) error) (int, error) {
	return par.For(cx, n, jobs, work)
}

// forPhase is parallelFor with span tracing: when the context carries a
// tracer (Opts.Trace) each worker records a batch span named after the
// phase plus one task span per item, named by taskName (typically the
// function being processed). With tracing off it is exactly parallelFor.
func (ctx *BinaryContext) forPhase(cx context.Context, phase string, taskName func(item int) string, n, jobs int, work func(worker, item int) error) (int, error) {
	return par.ForTraced(cx, ctx.Opts.Trace, phase, taskName, n, jobs, work)
}

package core

import (
	"gobolt/internal/flow"
)

// buildFlowProblem converts fn's CFG and current counts into the
// minimum-cost-flow inference problem. pos maps blocks to their layout
// index. withEdges seeds the measured edge counts as baselines (the
// LBR/stale consistency-repair case); without it only block counts
// constrain the solve (the non-LBR case, where edges must be
// reconstructed from scratch). Edge costs encode the static layout
// (§5.2): fall-through cheapest, taken forward next, backward dearest.
func buildFlowProblem(fn *BinaryFunction, pos map[*BasicBlock]int, withEdges bool) []flow.Node {
	nodes := make([]flow.Node, len(fn.Blocks))
	for i, b := range fn.Blocks {
		nodes[i].Weight = b.ExecCount
		nodes[i].IsEntry = b.IsEntry || i == 0
		if len(b.Succs) == 0 {
			continue
		}
		nodes[i].Succs = make([]flow.Succ, len(b.Succs))
		cond := isCondTerm(b)
		for k := range b.Succs {
			j := pos[b.Succs[k].To]
			cost := int64(flow.CostTaken)
			switch {
			case j <= i:
				cost = flow.CostBackward
			case j == i+1 && ((cond && k == 1) || len(b.Succs) == 1):
				cost = flow.CostFallThrough
			}
			nodes[i].Succs[k] = flow.Succ{To: j, Cost: cost}
			if withEdges {
				nodes[i].Succs[k].Weight = b.Succs[k].Count
			}
		}
	}
	return nodes
}

// inferFlowMCF runs minimum-cost-flow inference over fn and writes the
// conserving counts back onto the CFG. It mutates only fn (blocks and
// edges), so it is safe as a parallel per-function stage; Mispreds are
// preserved — only Counts are rebalanced.
func inferFlowMCF(fn *BinaryFunction, withEdges bool) {
	if len(fn.Blocks) == 0 {
		return
	}
	pos := make(map[*BasicBlock]int, len(fn.Blocks))
	for i, b := range fn.Blocks {
		pos[b] = i
	}
	nodes := buildFlowProblem(fn, pos, withEdges)
	res := flow.Infer(nodes)
	for i, b := range fn.Blocks {
		b.ExecCount = res.NodeCounts[i]
		for k := range b.Succs {
			b.Succs[k].Count = res.EdgeCounts[i][k]
		}
	}
}

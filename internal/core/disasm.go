package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"gobolt/internal/cfi"
	"gobolt/internal/dbg"
	"gobolt/internal/elfx"
	"gobolt/internal/isa"
)

// NewContext discovers functions, disassembles them, and builds CFGs —
// the front half of the Figure 3 pipeline. It runs in two stages: a
// serial discovery phase (symbols, relocations, CFI/LSDA, PLT stubs)
// that finalizes the function list and every shared map, then a parallel
// per-function phase (disassembly, CFG construction, CFI/LSDA
// attachment) fanned out over opts.Jobs workers — safe because after
// discovery a worker only writes state local to the function it was
// handed, plus a private stats shard merged at the join. The resulting
// context is identical for every worker count. Cancelling cx aborts the
// parallel phase promptly and returns cx.Err(). The zero Options value is
// upgraded to DefaultOptions (see Options.Normalized).
func NewContext(cx context.Context, f *elfx.File, opts Options) (*BinaryContext, error) {
	if cx == nil {
		cx = context.Background()
	}
	opts = opts.Normalized()
	if opts.AlignFunctions == 0 {
		opts.AlignFunctions = 16
	}
	if err := cx.Err(); err != nil {
		return nil, err
	}
	discoverStart := time.Now()
	ctx := &BinaryContext{
		File:        f,
		Opts:        opts,
		ByName:      map[string]*BinaryFunction{},
		byAddr:      map[uint64]*BinaryFunction{},
		PLTStubs:    map[uint64]uint64{},
		textRelocs:  map[uint64]elfx.Rela{},
		CallTargets: map[uint64]map[string]uint64{},
		Stats:       map[string]int64{},
	}

	// Relocations (--emit-relocs) enable relocations mode.
	for sectName, relas := range f.Relas {
		sec := f.Section(sectName)
		if sec == nil {
			continue
		}
		if sec.Flags&elfx.SHFExecinstr != 0 {
			for _, r := range relas {
				ctx.textRelocs[sec.Addr+r.Off] = r
			}
		}
	}
	ctx.HasRelocs = len(f.Relas) > 0

	// Debug info.
	if ls := f.Section(dbg.SectionName); ls != nil {
		if t, err := dbg.Decode(ls.Data); err == nil {
			ctx.LineTable = t
		}
	}

	// Frame info.
	if fs := f.Section(cfi.FrameSectionName); fs != nil {
		fdes, err := cfi.DecodeFrames(fs.Data)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		ctx.fdes = fdes
	}
	if ls := f.Section(cfi.LSDASectionName); ls != nil {
		ctx.lsdaData = ls.Data
		ctx.lsdaBase = ls.Addr
	}

	// Function discovery: symbol-table driven (paper §3.3). PLT stubs are
	// recognized separately; alias symbols (ICF'd at link time) attach to
	// the canonical function at the same address.
	syms := f.FuncSymbols()
	for _, sym := range syms {
		sec := f.SectionFor(sym.Value)
		if sec == nil || sym.Size == 0 {
			continue
		}
		if sec.Name == ".plt" {
			ctx.discoverPLTStub(sym)
			continue
		}
		if existing := ctx.byAddr[sym.Value]; existing != nil {
			existing.Aliases = append(existing.Aliases, sym.Name)
			ctx.ByName[sym.Name] = existing
			continue
		}
		bytes, err := f.ReadAt(sym.Value, int(sym.Size))
		if err != nil {
			continue
		}
		fn := &BinaryFunction{
			Name:    sym.Name,
			Addr:    sym.Value,
			Size:    sym.Size,
			Section: sec.Name,
			Bytes:   append([]byte(nil), bytes...),
			Simple:  true,
		}
		ctx.Funcs = append(ctx.Funcs, fn)
		ctx.ByName[sym.Name] = fn
		ctx.byAddr[sym.Value] = fn
	}
	sort.Slice(ctx.Funcs, func(i, j int) bool { return ctx.Funcs[i].Addr < ctx.Funcs[j].Addr })
	ctx.LoadTimings = append(ctx.LoadTimings, PassTiming{
		Name: "load:discover", Wall: time.Since(discoverStart), Jobs: 1,
	})

	// Parallel per-function phase. The shared maps (byAddr, ByName,
	// PLTStubs, textRelocs) and the address-sorted function list are
	// frozen above; from here every worker touches only the function it
	// was handed.
	loadStart := time.Now()
	jobs := effectiveJobs(opts.Jobs, len(ctx.Funcs))
	shards := make([]map[string]int64, jobs)
	for w := range shards {
		shards[w] = map[string]int64{}
	}
	if _, err := parallelFor(cx, len(ctx.Funcs), jobs, func(w, i int) error {
		ctx.loadFunction(ctx.Funcs[i], shards[w])
		return nil
	}); err != nil {
		return nil, err
	}
	for _, s := range shards {
		ctx.mergeStats(s)
	}
	ctx.LoadTimings = append(ctx.LoadTimings, PassTiming{
		Name: "load:disasm+cfg", Wall: time.Since(loadStart),
		Funcs: len(ctx.Funcs), Parallel: jobs > 1, Jobs: jobs,
		StatDelta: statDelta(nil, ctx.statsSnapshot()),
	})
	return ctx, nil
}

// loadFunction is the per-function half of the loader: linear
// disassembly, CFG construction, and CFI/LSDA attachment. Failures mark
// the function non-simple rather than fatal: precise disassembly is
// undecidable in general (§3.3). It writes only fn-local state and the
// caller's private stats shard.
func (ctx *BinaryContext) loadFunction(fn *BinaryFunction, stats map[string]int64) {
	if err := ctx.disassemble(fn); err != nil {
		fn.Simple = false
		fn.Reason = err.Error()
	}
	if fn.Simple {
		ctx.buildCFG(fn)
		ctx.attachCFI(fn)
		ctx.attachLSDA(fn)
	}
	if fn.Simple {
		stats["load-simple"]++
		stats["load-blocks"] += int64(len(fn.Blocks))
	} else {
		stats["load-non-simple"]++
	}
}

// discoverPLTStub decodes `jmp *GOT(%rip)` and resolves the target
// through the GOT contents.
func (ctx *BinaryContext) discoverPLTStub(sym elfx.Symbol) {
	data, err := ctx.File.ReadAt(sym.Value, 6)
	if err != nil {
		return
	}
	inst, n, err := isa.Decode(data, sym.Value)
	if err != nil || inst.Op != isa.JMPm || !inst.M.RIP {
		return
	}
	gotAddr := sym.Value + uint64(n) + uint64(int64(inst.M.Disp))
	raw, err := ctx.File.ReadAt(gotAddr, 8)
	if err != nil {
		return
	}
	var target uint64
	for i := 7; i >= 0; i-- {
		target = target<<8 | uint64(raw[i])
	}
	ctx.PLTStubs[sym.Value] = target
}

// rawInst is a decoded instruction before block formation.
type rawInst struct {
	inst isa.Inst
	addr uint64
	size uint8
}

// disassemble linearly decodes the function and performs target analysis:
// internal branch targets become leaders; indirect jumps must match a
// jump-table pattern or the function is non-simple.
func (ctx *BinaryContext) disassemble(fn *BinaryFunction) error {
	var raw []rawInst
	off := uint64(0)
	for off < fn.Size {
		inst, n, err := isa.Decode(fn.Bytes[off:], fn.Addr+off)
		if err != nil {
			return fmt.Errorf("undecodable at +%#x: %w", off, err)
		}
		raw = append(raw, rawInst{inst: inst, addr: fn.Addr + off, size: uint8(n)})
		off += uint64(n)
	}

	inside := func(a uint64) bool { return a >= fn.Addr && a < fn.Addr+fn.Size }

	leaders := map[uint64]bool{fn.Addr: true}
	jts := map[int]*pendingJT{} // raw index of indirect jump -> table

	for i := range raw {
		in := &raw[i].inst
		switch {
		case in.IsDirectBranch():
			if inside(in.TargetAddr) {
				leaders[in.TargetAddr] = true
				if i+1 < len(raw) {
					leaders[raw[i+1].addr] = true
				}
			} else if i+1 < len(raw) {
				leaders[raw[i+1].addr] = true
			}
		case in.IsReturn() || in.Op == isa.HLT || in.Op == isa.UD2:
			if i+1 < len(raw) {
				leaders[raw[i+1].addr] = true
			}
		case in.IsIndirectBranch():
			jt, err := ctx.matchJumpTable(fn, raw, i)
			if err != nil {
				return fmt.Errorf("indirect tail call or unbounded jump table at +%#x: %w",
					raw[i].addr-fn.Addr, err)
			}
			jts[i] = jt
			for _, taddr := range jt.rawTargets {
				if !inside(taddr) {
					return fmt.Errorf("jump table entry %#x escapes function", taddr)
				}
				leaders[taddr] = true
			}
			if i+1 < len(raw) {
				leaders[raw[i+1].addr] = true
			}
		}
	}

	// LSDA landing pads are leaders too.
	if fde, ok := cfi.FindFDE(ctx.fdes, fn.Addr); ok && fde.LSDA != 0 {
		lsda, err := cfi.DecodeLSDA(ctx.lsdaData, uint32(fde.LSDA-ctx.lsdaBase))
		if err != nil {
			return fmt.Errorf("bad LSDA: %w", err)
		}
		for _, cs := range lsda.CallSites {
			if cs.LandingPad != 0 {
				if !inside(cs.LandingPad) {
					return fmt.Errorf("landing pad %#x outside function", cs.LandingPad)
				}
				leaders[cs.LandingPad] = true
			}
		}
		fn.HasLSDA = true
	}

	// Form blocks (dropping NOPs per the paper's I-cache policy, §4).
	fn.Blocks = nil
	var cur *BasicBlock
	newBlock := func(addr uint64) *BasicBlock {
		b := &BasicBlock{Index: len(fn.Blocks), Addr: addr, CFIIn: -1}
		b.Label = fmt.Sprintf(".LBB%d", b.Index)
		fn.Blocks = append(fn.Blocks, b)
		return b
	}
	rawJTByAddr := map[uint64]*JumpTable{}
	for i := range raw {
		r := &raw[i]
		if leaders[r.addr] || cur == nil {
			cur = newBlock(r.addr)
		}
		if r.inst.Op == isa.NOP {
			continue // stripped
		}
		ci := Inst{I: r.inst, Size: r.size, Addr: r.addr, CFIIdx: -1}
		if ctx.LineTable != nil {
			if file, line, ok := ctx.LineTable.Lookup(r.addr); ok {
				ci.File, ci.Line = file, int32(line)
			}
		}
		if jt, ok := jts[i]; ok {
			ci.JT = jt.JumpTable
			rawJTByAddr[r.addr] = jt.JumpTable
			fn.JTs = append(fn.JTs, jt.JumpTable)
		}
		// Resolve RIP memory operands via decode (absolute target).
		if r.inst.HasMem() && r.inst.M.RIP {
			ci.MemTarget = r.addr + uint64(r.size) + uint64(int64(r.inst.M.Disp))
		}
		// Symbolize external direct targets.
		if r.inst.Op == isa.CALL || (r.inst.IsDirectBranch() && !inside(r.inst.TargetAddr)) {
			if g := ctx.FuncContaining(r.inst.TargetAddr); g != nil && g.Addr == r.inst.TargetAddr {
				ci.TargetSym = g.Name
			}
		}
		cur.Insts = append(cur.Insts, ci)
	}
	fn.jtPending = jts
	return nil
}

// pendingJT carries raw target addresses until blocks exist.
type pendingJT struct {
	*JumpTable
	rawTargets []uint64
}

// matchJumpTable recognizes the two lowering patterns for switches:
//
//	absolute: lea B,[rip+T] ... jmp [B + idx*8]
//	PIC:      lea B,[rip+T] ... movslq R,[B+idx*4]; add R,B; jmp R
//
// Table extent comes from the rodata symbol covering T; entries are
// validated against the function bounds. Anything else is an indirect
// tail call -> non-simple (paper §6.4).
func (ctx *BinaryContext) matchJumpTable(fn *BinaryFunction, raw []rawInst, i int) (*pendingJT, error) {
	in := &raw[i].inst

	findLea := func(reg isa.Reg, from int) (uint64, bool) {
		for k := from; k >= 0 && k > from-8; k-- {
			r := &raw[k].inst
			if r.Op == isa.LEA && r.R1 == reg && r.M.RIP {
				return raw[k].addr + uint64(raw[k].size) + uint64(int64(r.M.Disp)), true
			}
			if r.Defs().Has(reg) {
				return 0, false
			}
		}
		return 0, false
	}

	var tableAddr uint64
	var pic bool
	switch in.Op {
	case isa.JMPm:
		if in.M.Base == isa.NoReg || in.M.Scale != 8 {
			return nil, fmt.Errorf("unrecognized memory jump form")
		}
		t, ok := findLea(in.M.Base, i-1)
		if !ok {
			return nil, fmt.Errorf("no table base lea found")
		}
		tableAddr = t
	case isa.JMPr:
		// Expect: movslq R,[B+idx*4]; add R,B; jmp R
		if i < 2 {
			return nil, fmt.Errorf("indirect jump with no context")
		}
		add := &raw[i-1].inst
		mov := &raw[i-2].inst
		if add.Op != isa.ADDrr || add.R1 != in.R1 ||
			mov.Op != isa.MOVSXDrm || mov.R1 != in.R1 ||
			mov.M.Base != add.R2 || mov.M.Scale != 4 {
			return nil, fmt.Errorf("not a PIC jump-table pattern")
		}
		t, ok := findLea(add.R2, i-3)
		if !ok {
			return nil, fmt.Errorf("no PIC table base lea found")
		}
		tableAddr = t
		pic = true
	default:
		return nil, fmt.Errorf("unhandled indirect branch")
	}

	// Bound the table via its data symbol.
	var symName string
	var symSize uint64
	for _, s := range ctx.File.Symbols {
		if s.Type == elfx.STTObject && s.Value == tableAddr {
			symName, symSize = s.Name, s.Size
			break
		}
	}
	if symSize == 0 {
		return nil, fmt.Errorf("no symbol bounds table at %#x", tableAddr)
	}
	entrySize := 8
	if pic {
		entrySize = 4
	}
	n := int(symSize) / entrySize
	if n == 0 || n > 4096 {
		return nil, fmt.Errorf("implausible table size %d", n)
	}
	data, err := ctx.File.ReadAt(tableAddr, n*entrySize)
	if err != nil {
		return nil, err
	}
	jt := &pendingJT{JumpTable: &JumpTable{Addr: tableAddr, EntrySize: entrySize, PIC: pic, SymName: symName}}
	for e := 0; e < n; e++ {
		var target uint64
		if pic {
			var v uint32
			for k := 3; k >= 0; k-- {
				v = v<<8 | uint32(data[e*4+k])
			}
			target = tableAddr + uint64(int64(int32(v)))
		} else {
			for k := 7; k >= 0; k-- {
				target = target<<8 | uint64(data[e*8+k])
			}
		}
		jt.rawTargets = append(jt.rawTargets, target)
	}
	return jt, nil
}

// buildCFG wires successor/predecessor edges and jump-table targets.
func (ctx *BinaryContext) buildCFG(fn *BinaryFunction) {
	if len(fn.Blocks) == 0 {
		fn.Simple = false
		fn.Reason = "empty function"
		return
	}
	fn.Blocks[0].IsEntry = true
	byAddr := map[uint64]*BasicBlock{}
	for _, b := range fn.Blocks {
		byAddr[b.Addr] = b
	}
	// addEdge tolerates a nil target: the JCC case records a nil
	// placeholder for conditional tail calls (present in gobolt's own
	// SCTC output, which the continuous-profiling loop re-disassembles);
	// placeholders are filtered below.
	addEdge := func(from *BasicBlock, to *BasicBlock) {
		from.Succs = append(from.Succs, Edge{To: to})
		if to != nil {
			to.Preds = append(to.Preds, from)
		}
	}
	for bi, b := range fn.Blocks {
		var next *BasicBlock
		if bi+1 < len(fn.Blocks) {
			next = fn.Blocks[bi+1]
		}
		last := b.LastInst()
		if last == nil {
			if next != nil {
				addEdge(b, next)
			}
			continue
		}
		switch {
		case last.I.Op == isa.JMP:
			if to := byAddr[last.I.TargetAddr]; to != nil {
				addEdge(b, to)
			}
			// else: external tail call, no successor
		case last.I.Op == isa.JCC:
			if to := byAddr[last.I.TargetAddr]; to != nil {
				addEdge(b, to) // Succs[0] = taken
			} else {
				// Conditional tail call: no block successor for taken.
				addEdge(b, nil)
			}
			if next != nil {
				addEdge(b, next) // Succs[1] = fall-through
			}
		case last.JT != nil:
			// One edge per unique target; the table keeps one slot per
			// entry (duplicates allowed).
			seen := map[*BasicBlock]bool{}
			for _, taddr := range jtRawTargets(fn, last.JT) {
				to := byAddr[taddr]
				if to != nil && !seen[to] {
					seen[to] = true
					addEdge(b, to)
				}
				last.JT.Targets = append(last.JT.Targets, to)
			}
		case last.I.IsReturn() || last.I.Op == isa.HLT || last.I.Op == isa.UD2:
			// no successors
		case last.I.IsIndirectBranch():
			// unreachable: would have been non-simple
		default:
			if next != nil {
				addEdge(b, next)
			}
		}
	}
	// Fix the nil placeholder edges (conditional tail calls).
	for _, b := range fn.Blocks {
		out := b.Succs[:0]
		for _, e := range b.Succs {
			if e.To != nil {
				out = append(out, e)
			}
		}
		b.Succs = out
	}
	fn.buildInstIndex()
}

// jtRawTargets retrieves the pending raw target addresses recorded at
// disassembly time (they live on the function until CFG build).
func jtRawTargets(fn *BinaryFunction, jt *JumpTable) []uint64 {
	for _, p := range fn.jtPending {
		if p.JumpTable == jt {
			return p.rawTargets
		}
	}
	return nil
}

// attachCFI replays the FDE over the original instruction order and
// interns per-instruction unwind states.
func (ctx *BinaryContext) attachCFI(fn *BinaryFunction) {
	fde, ok := cfi.FindFDE(ctx.fdes, fn.Addr)
	if !ok {
		return
	}
	st := cfi.InitialState()
	var stack []cfi.State
	k := 0
	apply := func(upto uint32) {
		for k < len(fde.Insts) && fde.Insts[k].PC <= upto {
			in := fde.Insts[k].Inst
			switch in.Kind {
			case cfi.OpDefCfa:
				st.CfaReg, st.CfaOff = in.Reg, in.Off
			case cfi.OpDefCfaRegister:
				st.CfaReg = in.Reg
			case cfi.OpDefCfaOffset:
				st.CfaOff = in.Off
			case cfi.OpOffset:
				st.Saved[in.Reg] = in.Off
			case cfi.OpRestore:
				delete(st.Saved, in.Reg)
			case cfi.OpRememberState:
				stack = append(stack, cloneState(st))
			case cfi.OpRestoreState:
				if len(stack) > 0 {
					st = stack[len(stack)-1]
					stack = stack[:len(stack)-1]
				}
			}
			k++
		}
	}
	for _, b := range fn.Blocks {
		first := true
		for i := range b.Insts {
			off := uint32(b.Insts[i].Addr - fn.Addr)
			apply(off)
			idx := fn.InternState(st)
			b.Insts[i].CFIIdx = idx
			if first {
				b.CFIIn = idx
				first = false
			}
		}
		if first {
			// Empty block (all NOPs): state at its address.
			apply(uint32(b.Addr - fn.Addr))
			b.CFIIn = fn.InternState(st)
		}
	}
}

// attachLSDA connects calls to their landing pads and marks LP blocks.
func (ctx *BinaryContext) attachLSDA(fn *BinaryFunction) {
	if !fn.HasLSDA {
		return
	}
	fde, ok := cfi.FindFDE(ctx.fdes, fn.Addr)
	if !ok || fde.LSDA == 0 {
		return
	}
	lsda, err := cfi.DecodeLSDA(ctx.lsdaData, uint32(fde.LSDA-ctx.lsdaBase))
	if err != nil {
		fn.Simple = false
		fn.Reason = "bad LSDA"
		return
	}
	byAddr := map[uint64]*BasicBlock{}
	for _, b := range fn.Blocks {
		byAddr[b.Addr] = b
	}
	for _, b := range fn.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			if !in.IsCall() {
				continue
			}
			off := uint32(in.Addr - fn.Addr)
			if lp, action, ok := lsda.Lookup(off); ok {
				lpb := byAddr[lp]
				if lpb == nil {
					fn.Simple = false
					fn.Reason = "landing pad not at block boundary"
					return
				}
				in.LP = lpb
				in.LPAction = action
				lpb.IsLP = true
				b.LPs = appendUniqueBlock(b.LPs, lpb)
				lpb.Preds = append(lpb.Preds, b)
			}
		}
	}
}

func appendUniqueBlock(s []*BasicBlock, b *BasicBlock) []*BasicBlock {
	for _, x := range s {
		if x == b {
			return s
		}
	}
	return append(s, b)
}

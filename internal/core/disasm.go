package core

//boltvet:hot-path loader disassembly+CFG construction, slab-allocated in PR 6

import (
	"context"
	"fmt"
	"sort"
	"time"

	"gobolt/internal/cfi"
	"gobolt/internal/dbg"
	"gobolt/internal/elfx"
	"gobolt/internal/intern"
	"gobolt/internal/isa"
	"gobolt/internal/obsv"
)

// NewContext discovers functions, disassembles them, and builds CFGs —
// the front half of the Figure 3 pipeline. It runs in two stages: a
// serial discovery phase (symbols, relocations, CFI/LSDA, PLT stubs)
// that finalizes the function list and every shared map, then a parallel
// per-function phase (disassembly, CFG construction, CFI/LSDA
// attachment) fanned out over opts.Jobs workers — safe because after
// discovery a worker only writes state local to the function it was
// handed, plus a private stats shard merged at the join. The resulting
// context is identical for every worker count. Cancelling cx aborts the
// parallel phase promptly and returns cx.Err(). The zero Options value is
// upgraded to DefaultOptions (see Options.Normalized).
func NewContext(cx context.Context, f *elfx.File, opts Options) (*BinaryContext, error) {
	if cx == nil {
		cx = context.Background()
	}
	opts = opts.Normalized()
	if opts.AlignFunctions == 0 {
		opts.AlignFunctions = 16
	}
	if err := cx.Err(); err != nil {
		return nil, err
	}
	discoverStart := time.Now()
	ctx := &BinaryContext{
		File:        f,
		Opts:        opts,
		ByName:      map[string]*BinaryFunction{},
		byAddr:      map[uint64]*BinaryFunction{},
		PLTStubs:    map[uint64]uint64{},
		textRelocs:  map[uint64]elfx.Rela{},
		CallTargets: map[uint64]map[string]uint64{},
		Metrics:     obsv.NewRegistry(StatDefs()),
	}
	// ctx.Stats aliases the registry's live counter map: the registry is
	// the source of truth, the map is the compatibility view.
	ctx.Stats = ctx.Metrics.Counters()

	// Discovery runs as four independent scans overlapped on the worker
	// pool — each writes a disjoint set of context fields (textRelocs;
	// LineTable; fdes+LSDA; Funcs/ByName/byAddr/PLTStubs), the input file
	// is read-only, and results don't depend on scan interleaving, so the
	// context is identical for any worker count. Only the frame decode
	// can fail, keeping error reporting schedule-independent.
	discoverScans := []func() error{
		func() error {
			// Relocations (--emit-relocs) enable relocations mode.
			for sectName, relas := range f.Relas {
				sec := f.Section(sectName)
				if sec == nil {
					continue
				}
				if sec.Flags&elfx.SHFExecinstr != 0 {
					for _, r := range relas {
						ctx.textRelocs[sec.Addr+r.Off] = r
					}
				}
			}
			return nil
		},
		func() error {
			// Debug info.
			if ls := f.Section(dbg.SectionName); ls != nil {
				if t, err := dbg.Decode(ls.Data); err == nil {
					ctx.LineTable = t
				}
			}
			return nil
		},
		func() error {
			// Frame info.
			if fs := f.Section(cfi.FrameSectionName); fs != nil {
				fdes, err := cfi.DecodeFrames(fs.Data)
				if err != nil {
					return fmt.Errorf("core: %w", err)
				}
				ctx.fdes = fdes
			}
			if ls := f.Section(cfi.LSDASectionName); ls != nil {
				ctx.lsdaData = ls.Data
				ctx.lsdaBase = ls.Addr
			}
			return nil
		},
		func() error {
			// Function discovery: symbol-table driven (paper §3.3). PLT
			// stubs are recognized separately; alias symbols (ICF'd at
			// link time) attach to the canonical function at the same
			// address.
			for _, sym := range f.FuncSymbols() {
				sec := f.SectionFor(sym.Value)
				if sec == nil || sym.Size == 0 {
					continue
				}
				if sec.Name == ".plt" {
					ctx.discoverPLTStub(sym)
					continue
				}
				if existing := ctx.byAddr[sym.Value]; existing != nil {
					existing.Aliases = append(existing.Aliases, sym.Name)
					ctx.ByName[sym.Name] = existing
					continue
				}
				bytes, err := f.ReadAt(sym.Value, int(sym.Size))
				if err != nil {
					continue
				}
				fn := &BinaryFunction{
					Name:    sym.Name,
					Addr:    sym.Value,
					Size:    sym.Size,
					Section: sec.Name,
					// Bytes aliases the mapped section data. Safe:
					// disassembly only reads it, and rewriting emits into
					// fresh output buffers — nothing writes a function
					// body in place.
					Bytes:  bytes,
					Simple: true,
				}
				ctx.Funcs = append(ctx.Funcs, fn)
				ctx.ByName[sym.Name] = fn
				ctx.byAddr[sym.Value] = fn
			}
			sort.Slice(ctx.Funcs, func(i, j int) bool { return ctx.Funcs[i].Addr < ctx.Funcs[j].Addr })
			for i, fn := range ctx.Funcs {
				fn.ordIdx = i
			}
			return nil
		},
	}
	discoverScanNames := []string{"relocs", "linetable", "cfi", "symbols"}
	discoverJobs := effectiveJobs(opts.Jobs, len(discoverScans))
	if _, err := ctx.forPhase(cx, "load:discover",
		func(i int) string { return discoverScanNames[i] },
		len(discoverScans), discoverJobs, func(_, i int) error {
			return discoverScans[i]()
		}); err != nil {
		return nil, err
	}
	ctx.HasRelocs = len(f.Relas) > 0
	discoverWall := time.Since(discoverStart)
	ctx.Opts.Trace.Phase("load:discover", discoverStart, discoverWall, discoverJobs)
	ctx.LoadTimings = append(ctx.LoadTimings, PassTiming{
		Name: "load:discover", Wall: discoverWall,
		Parallel: discoverJobs > 1, Jobs: discoverJobs,
	})

	// Parallel per-function phase. The shared maps (byAddr, ByName,
	// PLTStubs, textRelocs) and the address-sorted function list are
	// frozen above; from here every worker touches only the function it
	// was handed.
	loadStart := time.Now()
	jobs := effectiveJobs(opts.Jobs, len(ctx.Funcs))
	scratch := make([]loaderScratch, jobs)
	if _, err := ctx.forPhase(cx, "load:disasm+cfg",
		func(i int) string { return ctx.Funcs[i].Name },
		len(ctx.Funcs), jobs, func(w, i int) error {
			ctx.loadFunction(ctx.Funcs[i], &scratch[w])
			return nil
		}); err != nil {
		return nil, err
	}
	for w := range scratch {
		ctx.mergeStats(scratch[w].stats)
	}
	loadWall := time.Since(loadStart)
	ctx.Opts.Trace.Phase("load:disasm+cfg", loadStart, loadWall, jobs)
	ctx.LoadTimings = append(ctx.LoadTimings, PassTiming{
		Name: "load:disasm+cfg", Wall: loadWall,
		Funcs: len(ctx.Funcs), Parallel: jobs > 1, Jobs: jobs,
		StatDelta: statDelta(nil, ctx.statsSnapshot()),
	})
	return ctx, nil
}

// loaderScratch is one worker's reusable state for the parallel loader.
// Everything in it is cleared — not reallocated — between functions, so
// steady-state loading only allocates the per-function slabs that
// survive in the context. A scratch is owned by exactly one worker.
type loaderScratch struct {
	raw     []rawInst
	leaders map[uint64]bool
	blockAt map[uint64]*BasicBlock
	jtSeen  map[*BasicBlock]bool
	lpSeen  map[blockPair]bool
	edges   []edgeRef
	succN   []int32
	predN   []int32
	stats   map[string]int64
}

// edgeRef is one CFG edge held in scratch while buildCFG counts edge
// storage; blockPair keys the landing-pad dedup set.
type edgeRef struct{ from, to *BasicBlock }
type blockPair struct{ from, to int }

func (sc *loaderScratch) init() {
	if sc.stats == nil {
		sc.stats = map[string]int64{}
		sc.leaders = map[uint64]bool{}
		sc.blockAt = map[uint64]*BasicBlock{}
		sc.jtSeen = map[*BasicBlock]bool{}
		sc.lpSeen = map[blockPair]bool{}
	}
}

// loadFunction is the per-function half of the loader: linear
// disassembly, CFG construction, and CFI/LSDA attachment. Failures mark
// the function non-simple rather than fatal: precise disassembly is
// undecidable in general (§3.3). It writes only fn-local state and the
// caller's private scratch.
func (ctx *BinaryContext) loadFunction(fn *BinaryFunction, sc *loaderScratch) {
	sc.init()
	if err := ctx.disassemble(fn, sc); err != nil {
		fn.Simple = false
		fn.Reason = err.Error()
	}
	if fn.Simple {
		ctx.buildCFG(fn, sc)
		ctx.attachCFI(fn)
		ctx.attachLSDA(fn, sc)
	}
	if fn.Simple {
		sc.stats["load-simple"]++
		sc.stats["load-blocks"] += int64(len(fn.Blocks))
	} else {
		sc.stats["load-non-simple"]++
	}
}

// discoverPLTStub decodes `jmp *GOT(%rip)` and resolves the target
// through the GOT contents.
func (ctx *BinaryContext) discoverPLTStub(sym elfx.Symbol) {
	data, err := ctx.File.ReadAt(sym.Value, 6)
	if err != nil {
		return
	}
	inst, n, err := isa.Decode(data, sym.Value)
	if err != nil || inst.Op != isa.JMPm || !inst.M.RIP {
		return
	}
	gotAddr := sym.Value + uint64(n) + uint64(int64(inst.M.Disp))
	raw, err := ctx.File.ReadAt(gotAddr, 8)
	if err != nil {
		return
	}
	var target uint64
	for i := 7; i >= 0; i-- {
		target = target<<8 | uint64(raw[i])
	}
	ctx.PLTStubs[sym.Value] = target
}

// rawInst is a decoded instruction before block formation.
type rawInst struct {
	inst isa.Inst
	addr uint64
	size uint8
}

// disassemble linearly decodes the function and performs target analysis:
// internal branch targets become leaders; indirect jumps must match a
// jump-table pattern or the function is non-simple. The decoded
// instruction list and the leader set live in the worker's scratch;
// block and instruction storage is slab-allocated exactly once from the
// counts the scratch makes available.
func (ctx *BinaryContext) disassemble(fn *BinaryFunction, sc *loaderScratch) error {
	raw := sc.raw[:0]
	off := uint64(0)
	for off < fn.Size {
		inst, n, err := isa.Decode(fn.Bytes[off:], fn.Addr+off)
		if err != nil {
			sc.raw = raw
			return fmt.Errorf("undecodable at +%#x: %w", off, err)
		}
		raw = append(raw, rawInst{inst: inst, addr: fn.Addr + off, size: uint8(n)})
		off += uint64(n)
	}
	sc.raw = raw

	inside := func(a uint64) bool { return a >= fn.Addr && a < fn.Addr+fn.Size }

	leaders := sc.leaders
	clear(leaders)
	leaders[fn.Addr] = true
	var jts map[int]*pendingJT // raw index of indirect jump -> table (lazy: most functions have none)

	for i := range raw {
		in := &raw[i].inst
		switch {
		case in.IsDirectBranch():
			if inside(in.TargetAddr) {
				leaders[in.TargetAddr] = true
				if i+1 < len(raw) {
					leaders[raw[i+1].addr] = true
				}
			} else if i+1 < len(raw) {
				leaders[raw[i+1].addr] = true
			}
		case in.IsReturn() || in.Op == isa.HLT || in.Op == isa.UD2:
			if i+1 < len(raw) {
				leaders[raw[i+1].addr] = true
			}
		case in.IsIndirectBranch():
			jt, err := ctx.matchJumpTable(fn, raw, i)
			if err != nil {
				return fmt.Errorf("indirect tail call or unbounded jump table at +%#x: %w",
					raw[i].addr-fn.Addr, err)
			}
			if jts == nil {
				jts = map[int]*pendingJT{}
			}
			jts[i] = jt
			for _, taddr := range jt.rawTargets {
				if !inside(taddr) {
					return fmt.Errorf("jump table entry %#x escapes function", taddr)
				}
				leaders[taddr] = true
			}
			if i+1 < len(raw) {
				leaders[raw[i+1].addr] = true
			}
		}
	}

	// LSDA landing pads are leaders too.
	if fde, ok := cfi.FindFDE(ctx.fdes, fn.Addr); ok && fde.LSDA != 0 {
		lsda, err := cfi.DecodeLSDA(ctx.lsdaData, uint32(fde.LSDA-ctx.lsdaBase))
		if err != nil {
			return fmt.Errorf("bad LSDA: %w", err)
		}
		for _, cs := range lsda.CallSites {
			if cs.LandingPad != 0 {
				if !inside(cs.LandingPad) {
					return fmt.Errorf("landing pad %#x outside function", cs.LandingPad)
				}
				leaders[cs.LandingPad] = true
			}
		}
		fn.HasLSDA = true
	}

	// Form blocks (dropping NOPs per the paper's I-cache policy, §4).
	// Block and instruction counts are known from the leader set, so both
	// are slab-allocated exactly once: one backing array of BasicBlocks
	// and one of Insts per function, instead of an incremental append per
	// block and per instruction.
	nBlocks, nInsts := 0, 0
	for i := range raw {
		if i == 0 || leaders[raw[i].addr] {
			nBlocks++
		}
		if raw[i].inst.Op != isa.NOP {
			nInsts++
		}
	}
	blockSlab := make([]BasicBlock, nBlocks)
	instSlab := make([]Inst, 0, nInsts)
	fn.Blocks = make([]*BasicBlock, 0, nBlocks)
	var cur *BasicBlock
	curStart := 0
	// seal fixes the finished block's window into the instruction slab.
	// The three-index slice caps it at its own length: a pass appending
	// to b.Insts reallocates onto a fresh array instead of clobbering
	// the next block's slab storage.
	seal := func() {
		if cur != nil {
			cur.Insts = instSlab[curStart:len(instSlab):len(instSlab)]
		}
	}
	newBlock := func(addr uint64) *BasicBlock {
		seal()
		b := &blockSlab[len(fn.Blocks)]
		b.Index = len(fn.Blocks)
		b.Addr = addr
		b.CFIIn = -1
		b.Label = intern.Label(b.Index)
		fn.Blocks = append(fn.Blocks, b)
		curStart = len(instSlab)
		return b
	}
	for i := range raw {
		r := &raw[i]
		if leaders[r.addr] || cur == nil {
			cur = newBlock(r.addr)
		}
		if r.inst.Op == isa.NOP {
			continue // stripped
		}
		ci := Inst{I: r.inst, Size: r.size, Addr: r.addr, CFIIdx: -1}
		if ctx.LineTable != nil {
			if file, line, ok := ctx.LineTable.Lookup(r.addr); ok {
				ci.File, ci.Line = ctx.Strings.Intern(file), int32(line)
			}
		}
		if jt, ok := jts[i]; ok {
			ci.JT = jt.JumpTable
			fn.JTs = append(fn.JTs, jt.JumpTable)
		}
		// Resolve RIP memory operands via decode (absolute target).
		if r.inst.HasMem() && r.inst.M.RIP {
			ci.MemTarget = r.addr + uint64(r.size) + uint64(int64(r.inst.M.Disp))
		}
		// Symbolize external direct targets.
		if r.inst.Op == isa.CALL || (r.inst.IsDirectBranch() && !inside(r.inst.TargetAddr)) {
			if g := ctx.FuncContaining(r.inst.TargetAddr); g != nil && g.Addr == r.inst.TargetAddr {
				ci.TargetSym = ctx.Strings.Intern(g.Name)
			}
		}
		instSlab = append(instSlab, ci)
	}
	seal()
	fn.jtPending = jts
	return nil
}

// pendingJT carries raw target addresses until blocks exist.
type pendingJT struct {
	*JumpTable
	rawTargets []uint64
}

// matchJumpTable recognizes the two lowering patterns for switches:
//
//	absolute: lea B,[rip+T] ... jmp [B + idx*8]
//	PIC:      lea B,[rip+T] ... movslq R,[B+idx*4]; add R,B; jmp R
//
// Table extent comes from the rodata symbol covering T; entries are
// validated against the function bounds. Anything else is an indirect
// tail call -> non-simple (paper §6.4).
func (ctx *BinaryContext) matchJumpTable(fn *BinaryFunction, raw []rawInst, i int) (*pendingJT, error) {
	in := &raw[i].inst

	findLea := func(reg isa.Reg, from int) (uint64, bool) {
		for k := from; k >= 0 && k > from-8; k-- {
			r := &raw[k].inst
			if r.Op == isa.LEA && r.R1 == reg && r.M.RIP {
				return raw[k].addr + uint64(raw[k].size) + uint64(int64(r.M.Disp)), true
			}
			if r.Defs().Has(reg) {
				return 0, false
			}
		}
		return 0, false
	}

	var tableAddr uint64
	var pic bool
	switch in.Op {
	case isa.JMPm:
		if in.M.Base == isa.NoReg || in.M.Scale != 8 {
			return nil, fmt.Errorf("unrecognized memory jump form")
		}
		t, ok := findLea(in.M.Base, i-1)
		if !ok {
			return nil, fmt.Errorf("no table base lea found")
		}
		tableAddr = t
	case isa.JMPr:
		// Expect: movslq R,[B+idx*4]; add R,B; jmp R
		if i < 2 {
			return nil, fmt.Errorf("indirect jump with no context")
		}
		add := &raw[i-1].inst
		mov := &raw[i-2].inst
		if add.Op != isa.ADDrr || add.R1 != in.R1 ||
			mov.Op != isa.MOVSXDrm || mov.R1 != in.R1 ||
			mov.M.Base != add.R2 || mov.M.Scale != 4 {
			return nil, fmt.Errorf("not a PIC jump-table pattern")
		}
		t, ok := findLea(add.R2, i-3)
		if !ok {
			return nil, fmt.Errorf("no PIC table base lea found")
		}
		tableAddr = t
		pic = true
	default:
		return nil, fmt.Errorf("unhandled indirect branch")
	}

	// Bound the table via its data symbol.
	var symName string
	var symSize uint64
	for _, s := range ctx.File.Symbols {
		if s.Type == elfx.STTObject && s.Value == tableAddr {
			symName, symSize = s.Name, s.Size
			break
		}
	}
	if symSize == 0 {
		return nil, fmt.Errorf("no symbol bounds table at %#x", tableAddr)
	}
	entrySize := 8
	if pic {
		entrySize = 4
	}
	n := int(symSize) / entrySize
	if n == 0 || n > 4096 {
		return nil, fmt.Errorf("implausible table size %d", n)
	}
	data, err := ctx.File.ReadAt(tableAddr, n*entrySize)
	if err != nil {
		return nil, err
	}
	jt := &pendingJT{JumpTable: &JumpTable{Addr: tableAddr, EntrySize: entrySize, PIC: pic, SymName: symName}}
	for e := 0; e < n; e++ {
		var target uint64
		if pic {
			var v uint32
			for k := 3; k >= 0; k-- {
				v = v<<8 | uint32(data[e*4+k])
			}
			target = tableAddr + uint64(int64(int32(v)))
		} else {
			for k := 7; k >= 0; k-- {
				target = target<<8 | uint64(data[e*8+k])
			}
		}
		jt.rawTargets = append(jt.rawTargets, target)
	}
	return jt, nil
}

// buildCFG wires successor/predecessor edges and jump-table targets.
// Edges are collected into the worker's scratch first so the per-block
// Succs/Preds storage can be carved out of two exactly-sized slabs (one
// edge array, one predecessor array per function) instead of growing
// each block's slices by append.
func (ctx *BinaryContext) buildCFG(fn *BinaryFunction, sc *loaderScratch) {
	if len(fn.Blocks) == 0 {
		fn.Simple = false
		fn.Reason = "empty function"
		return
	}
	fn.Blocks[0].IsEntry = true
	byAddr := sc.blockAt
	clear(byAddr)
	for _, b := range fn.Blocks {
		byAddr[b.Addr] = b
	}
	// A conditional tail call (present in gobolt's own SCTC output, which
	// the continuous-profiling loop re-disassembles) has no block
	// successor for its taken side; it simply contributes no edge.
	edges := sc.edges[:0]
	addEdge := func(from *BasicBlock, to *BasicBlock) {
		edges = append(edges, edgeRef{from: from, to: to})
	}
	for bi, b := range fn.Blocks {
		var next *BasicBlock
		if bi+1 < len(fn.Blocks) {
			next = fn.Blocks[bi+1]
		}
		last := b.LastInst()
		if last == nil {
			if next != nil {
				addEdge(b, next)
			}
			continue
		}
		switch {
		case last.I.Op == isa.JMP:
			if to := byAddr[last.I.TargetAddr]; to != nil {
				addEdge(b, to)
			}
			// else: external tail call, no successor
		case last.I.Op == isa.JCC:
			if to := byAddr[last.I.TargetAddr]; to != nil {
				addEdge(b, to) // Succs[0] = taken
			}
			if next != nil {
				addEdge(b, next) // fall-through (Succs[1], or [0] for a cond tail call)
			}
		case last.JT != nil:
			// One edge per unique target; the table keeps one slot per
			// entry (duplicates allowed).
			seen := sc.jtSeen
			clear(seen)
			for _, taddr := range jtRawTargets(fn, last.JT) {
				to := byAddr[taddr]
				if to != nil && !seen[to] {
					seen[to] = true
					addEdge(b, to)
				}
				last.JT.Targets = append(last.JT.Targets, to)
			}
		case last.I.IsReturn() || last.I.Op == isa.HLT || last.I.Op == isa.UD2:
			// no successors
		case last.I.IsIndirectBranch():
			// unreachable: would have been non-simple
		default:
			if next != nil {
				addEdge(b, next)
			}
		}
	}
	sc.edges = edges

	// Carve Succs/Preds out of two exact-size slabs. Three-index caps
	// mean a pass appending an edge later reallocates that block's slice
	// instead of overwriting a neighbour's slab storage.
	sc.succN = resetCounts(sc.succN, len(fn.Blocks))
	sc.predN = resetCounts(sc.predN, len(fn.Blocks))
	for _, e := range edges {
		sc.succN[e.from.Index]++
		sc.predN[e.to.Index]++
	}
	edgeSlab := make([]Edge, len(edges))
	predSlab := make([]*BasicBlock, len(edges))
	so, po := 0, 0
	for _, b := range fn.Blocks {
		if n := int(sc.succN[b.Index]); n > 0 {
			b.Succs = edgeSlab[so : so : so+n]
			so += n
		}
		if n := int(sc.predN[b.Index]); n > 0 {
			b.Preds = predSlab[po : po : po+n]
			po += n
		}
	}
	for _, e := range edges {
		e.from.Succs = append(e.from.Succs, Edge{To: e.to})
		e.to.Preds = append(e.to.Preds, e.from)
	}
	fn.buildInstIndex()
}

// resetCounts returns a zeroed int32 slice of length n, reusing s's
// backing array when it is big enough.
func resetCounts(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// jtRawTargets retrieves the pending raw target addresses recorded at
// disassembly time (they live on the function until CFG build).
func jtRawTargets(fn *BinaryFunction, jt *JumpTable) []uint64 {
	for _, p := range fn.jtPending {
		if p.JumpTable == jt {
			return p.rawTargets
		}
	}
	return nil
}

// attachCFI replays the FDE over the original instruction order and
// interns per-instruction unwind states.
func (ctx *BinaryContext) attachCFI(fn *BinaryFunction) {
	fde, ok := cfi.FindFDE(ctx.fdes, fn.Addr)
	if !ok {
		return
	}
	st := cfi.InitialState()
	var stack []cfi.State
	k := 0
	apply := func(upto uint32) {
		for k < len(fde.Insts) && fde.Insts[k].PC <= upto {
			in := fde.Insts[k].Inst
			switch in.Kind {
			case cfi.OpDefCfa:
				st.CfaReg, st.CfaOff = in.Reg, in.Off
			case cfi.OpDefCfaRegister:
				st.CfaReg = in.Reg
			case cfi.OpDefCfaOffset:
				st.CfaOff = in.Off
			case cfi.OpOffset:
				st.Saved[in.Reg] = in.Off
			case cfi.OpRestore:
				delete(st.Saved, in.Reg)
			case cfi.OpRememberState:
				//boltvet:alloc-ok remember/restore nesting is rare (depth 0 for almost every function); lazy append beats an unconditional prealloc
				stack = append(stack, cloneState(st))
			case cfi.OpRestoreState:
				if len(stack) > 0 {
					st = stack[len(stack)-1]
					stack = stack[:len(stack)-1]
				}
			}
			k++
		}
	}
	for _, b := range fn.Blocks {
		first := true
		for i := range b.Insts {
			off := uint32(b.Insts[i].Addr - fn.Addr)
			apply(off)
			idx := fn.InternState(st)
			b.Insts[i].CFIIdx = idx
			if first {
				b.CFIIn = idx
				first = false
			}
		}
		if first {
			// Empty block (all NOPs): state at its address.
			apply(uint32(b.Addr - fn.Addr))
			b.CFIIn = fn.InternState(st)
		}
	}
}

// attachLSDA connects calls to their landing pads and marks LP blocks.
// The per-block LPs lists are deduplicated through a scratch set keyed
// by (block, landing pad) index pair — the old linear scan per insert
// made attachment O(n²) for functions with many landing-pad preds.
func (ctx *BinaryContext) attachLSDA(fn *BinaryFunction, sc *loaderScratch) {
	if !fn.HasLSDA {
		return
	}
	fde, ok := cfi.FindFDE(ctx.fdes, fn.Addr)
	if !ok || fde.LSDA == 0 {
		return
	}
	lsda, err := cfi.DecodeLSDA(ctx.lsdaData, uint32(fde.LSDA-ctx.lsdaBase))
	if err != nil {
		fn.Simple = false
		fn.Reason = "bad LSDA"
		return
	}
	byAddr := sc.blockAt
	clear(byAddr)
	for _, b := range fn.Blocks {
		byAddr[b.Addr] = b
	}
	lpSeen := sc.lpSeen
	clear(lpSeen)
	for _, b := range fn.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			if !in.IsCall() {
				continue
			}
			off := uint32(in.Addr - fn.Addr)
			if lp, action, ok := lsda.Lookup(off); ok {
				lpb := byAddr[lp]
				if lpb == nil {
					fn.Simple = false
					fn.Reason = "landing pad not at block boundary"
					return
				}
				in.LP = lpb
				in.LPAction = action
				lpb.IsLP = true
				if key := (blockPair{from: b.Index, to: lpb.Index}); !lpSeen[key] {
					lpSeen[key] = true
					b.LPs = append(b.LPs, lpb)
				}
				lpb.Preds = append(lpb.Preds, b)
			}
		}
	}
}

// Package benchfmt reads and writes the Go benchmark text format
// (https://golang.org/design/14313-benchmark-format), the interchange
// format understood by benchstat and the rest of golang.org/x/perf.
// The toolchain ships its own minimal implementation so the speed
// experiment and its CI regression gate run without network access or
// external dependencies; the emitted text is still byte-compatible with
// `benchstat old.txt new.txt`.
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line: a name, an iteration count, and a set of
// (value, unit) measurements such as "ns/op", "B/op", "allocs/op".
type Result struct {
	Name  string
	Iters int64
	// Metrics maps unit -> value in benchmark-line order. Units follow
	// the testing package's spelling ("ns/op", "B/op", "allocs/op").
	Metrics map[string]float64
}

// Metric returns the value for a unit.
func (r Result) Metric(unit string) (float64, bool) {
	v, ok := r.Metrics[unit]
	return v, ok
}

// canonicalUnits orders the well-known units the way `go test -bench`
// prints them; anything else sorts alphabetically after.
var canonicalUnits = map[string]int{"ns/op": 0, "B/op": 1, "allocs/op": 2, "MB/s": 3}

func unitLess(a, b string) bool {
	ia, oka := canonicalUnits[a]
	ib, okb := canonicalUnits[b]
	switch {
	case oka && okb:
		return ia < ib
	case oka:
		return true
	case okb:
		return false
	}
	return a < b
}

// WriteHeader emits benchfmt configuration lines ("key: value"). Keys
// must be lowercase per the format spec (e.g. "goos", "goarch", "pkg").
func WriteHeader(w io.Writer, keys [][2]string) error {
	for _, kv := range keys {
		if _, err := fmt.Fprintf(w, "%s: %s\n", kv[0], kv[1]); err != nil {
			return err
		}
	}
	return nil
}

// WriteResult emits one benchmark line. The name must begin with
// "Benchmark" for benchstat to pick it up; formatValue keeps the numeric
// rendering close to the testing package's (integral values print without
// a decimal point).
func WriteResult(w io.Writer, r Result) error {
	if !strings.HasPrefix(r.Name, "Benchmark") {
		return fmt.Errorf("benchfmt: name %q does not start with Benchmark", r.Name)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\t%8d", r.Name, r.Iters)
	units := make([]string, 0, len(r.Metrics))
	for u := range r.Metrics {
		units = append(units, u)
	}
	sort.Slice(units, func(i, j int) bool { return unitLess(units[i], units[j]) })
	for _, u := range units {
		fmt.Fprintf(&sb, "\t%s %s", formatValue(r.Metrics[u]), u)
	}
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}

func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// Parse reads benchfmt text: configuration lines are collected into the
// returned header map, benchmark lines into Results (in input order).
// Unparseable benchmark lines are an error — the CI gate uses Parse as
// the "output is valid benchfmt" check.
func Parse(r io.Reader) ([]Result, map[string]string, error) {
	var out []Result
	header := map[string]string{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			// Configuration line: "key: value" with a lowercase key.
			if i := strings.Index(line, ": "); i > 0 && line[:i] == strings.ToLower(line[:i]) && !strings.ContainsAny(line[:i], " \t") {
				header[line[:i]] = strings.TrimSpace(line[i+2:])
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || len(fields)%2 != 0 {
			return nil, nil, fmt.Errorf("benchfmt: malformed benchmark line %q", line)
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("benchfmt: bad iteration count in %q: %w", line, err)
		}
		res := Result{Name: fields[0], Iters: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("benchfmt: bad value in %q: %w", line, err)
			}
			res.Metrics[fields[i+1]] = v
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return out, header, nil
}

// BaseName strips the trailing "-N" GOMAXPROCS suffix benchstat ignores
// when matching benchmarks across files.
func BaseName(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// Delta is one old-vs-new comparison for a single benchmark and unit.
type Delta struct {
	Name     string
	Unit     string
	Old, New float64
	// Pct is the relative change in percent: negative = improvement for
	// lower-is-better units (all the units the gate uses).
	Pct float64
}

// Compare matches benchmarks by base name (GOMAXPROCS suffix stripped)
// and reports the relative change for the given unit, in old-file order.
// Benchmarks present on only one side are skipped, like benchstat.
func Compare(old, new []Result, unit string) []Delta {
	newBy := make(map[string]Result, len(new))
	for _, r := range new {
		newBy[BaseName(r.Name)] = r
	}
	var out []Delta
	for _, o := range old {
		n, ok := newBy[BaseName(o.Name)]
		if !ok {
			continue
		}
		ov, ok1 := o.Metric(unit)
		nv, ok2 := n.Metric(unit)
		if !ok1 || !ok2 {
			continue
		}
		d := Delta{Name: BaseName(o.Name), Unit: unit, Old: ov, New: nv}
		if ov != 0 {
			d.Pct = 100 * (nv - ov) / ov
		}
		out = append(out, d)
	}
	return out
}

// FormatDeltas renders a compact benchstat-like table for a set of
// comparisons.
func FormatDeltas(deltas []Delta) string {
	var sb strings.Builder
	for _, d := range deltas {
		fmt.Fprintf(&sb, "  %-40s %14s -> %14s  %+7.2f%%  (%s)\n",
			d.Name, formatValue(d.Old), formatValue(d.New), d.Pct, d.Unit)
	}
	return sb.String()
}

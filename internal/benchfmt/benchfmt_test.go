package benchfmt

import (
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := WriteHeader(&sb, [][2]string{{"goos", "linux"}, {"goarch", "amd64"}, {"pkg", "gobolt/internal/bench"}}); err != nil {
		t.Fatal(err)
	}
	in := []Result{
		{Name: "BenchmarkSpeed/load/clang-8", Iters: 10,
			Metrics: map[string]float64{"ns/op": 123456.5, "B/op": 4096, "allocs/op": 42}},
		{Name: "BenchmarkSpeed/emit/clang-8", Iters: 25,
			Metrics: map[string]float64{"ns/op": 999, "B/op": 17, "allocs/op": 3}},
	}
	for _, r := range in {
		if err := WriteResult(&sb, r); err != nil {
			t.Fatal(err)
		}
	}
	got, header, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("Parse: %v\ninput:\n%s", err, sb.String())
	}
	if header["goos"] != "linux" || header["pkg"] != "gobolt/internal/bench" {
		t.Errorf("header mismatch: %v", header)
	}
	if len(got) != len(in) {
		t.Fatalf("got %d results, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i].Name != in[i].Name || got[i].Iters != in[i].Iters {
			t.Errorf("result %d: got %+v want %+v", i, got[i], in[i])
		}
		for unit, v := range in[i].Metrics {
			if gv, ok := got[i].Metric(unit); !ok || gv != v {
				t.Errorf("result %d unit %s: got %v want %v", i, unit, gv, v)
			}
		}
	}
}

func TestWriteResultRejectsBadName(t *testing.T) {
	var sb strings.Builder
	if err := WriteResult(&sb, Result{Name: "Speed/x", Iters: 1}); err == nil {
		t.Fatal("expected error for name without Benchmark prefix")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX\t10\t55", // odd value/unit pairing
		"BenchmarkX\tnope\t55 ns/op",
		"BenchmarkX\t10\tfast ns/op",
	} {
		if _, _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

func TestBaseName(t *testing.T) {
	for _, tc := range [][2]string{
		{"BenchmarkSpeed/emit/clang-8", "BenchmarkSpeed/emit/clang"},
		{"BenchmarkSpeed/emit/clang", "BenchmarkSpeed/emit/clang"},
		{"BenchmarkA-b", "BenchmarkA-b"},
	} {
		if got := BaseName(tc[0]); got != tc[1] {
			t.Errorf("BaseName(%q) = %q, want %q", tc[0], got, tc[1])
		}
	}
}

func TestCompare(t *testing.T) {
	old := []Result{{Name: "BenchmarkSpeed/emit/clang-1", Iters: 1, Metrics: map[string]float64{"allocs/op": 100}}}
	new := []Result{{Name: "BenchmarkSpeed/emit/clang-8", Iters: 1, Metrics: map[string]float64{"allocs/op": 60}}}
	d := Compare(old, new, "allocs/op")
	if len(d) != 1 || d[0].Pct != -40 || d[0].Name != "BenchmarkSpeed/emit/clang" {
		t.Fatalf("unexpected deltas: %+v", d)
	}
	// Missing on one side -> skipped.
	if d := Compare(old, nil, "allocs/op"); len(d) != 0 {
		t.Fatalf("expected no deltas, got %+v", d)
	}
}

// Package ir defines MIR, the CFG-level intermediate representation the
// mini compiler consumes. MIR plays the role of "source code" in the
// paper's Figure 1 pipeline: workload generators produce MIR programs, the
// compiler (internal/cc) lowers them to machine code, and the compiler's
// PGO mode retrofits *source-keyed* profile data onto MIR — with exactly
// the context-insensitivity the paper's Figure 2 describes.
//
// MIR operates directly on physical registers under a simple convention:
// RDI/RSI carry arguments, RAX carries the return value, and values live
// across calls only in callee-saved registers or frame slots. Generators
// are responsible for producing convention-respecting programs; Validate
// checks structural invariants.
package ir

import (
	"fmt"

	"gobolt/internal/isa"
)

// Program is a whole source program: modules plus global data.
type Program struct {
	Modules []*Module
	Globals []*Global
}

// Module is one compilation unit.
type Module struct {
	Name string
	// Shared marks the simulated shared library: calls into it are routed
	// through PLT stubs unless the build uses LTO-style static linking.
	Shared bool
	Funcs  []*Func
}

// FuncRef plants a function's address into a global at a byte offset
// (function-pointer tables for indirect calls and dispatch).
type FuncRef struct {
	Off  uint32
	Name string
}

// Global is initialized data referenced by name.
type Global struct {
	Name     string
	Data     []byte
	Align    int
	Writable bool
	FuncRefs []FuncRef
}

// Func is a MIR function.
type Func struct {
	Name   string
	File   string // source file for debug info
	Line   int32  // first source line
	Blocks []*Block

	// Frame shape.
	FrameSlots int       // number of 8-byte locals (rbp-relative)
	SavedRegs  []isa.Reg // callee-saved registers pushed in the prologue

	// RepzRet makes returns use the legacy-AMD `repz retq` form.
	RepzRet bool
	// Global controls symbol binding.
	Global bool

	mod *Module // set by Finalize
}

// Module returns the owning module (after Program.Finalize).
func (f *Func) Module() *Module { return f.mod }

// Block is a basic block: straight-line ops plus one terminator.
type Block struct {
	Index int
	Ops   []Op
	Term  Term
	Line  int32
	// Cold is a generator hint recorded for test assertions; the compiler
	// and optimizer never read it.
	Cold bool
}

// OpKind enumerates non-terminator operations.
type OpKind uint8

// Operations.
const (
	OpMovImm       OpKind = iota // Dst = Imm
	OpMov                        // Dst = Src
	OpAdd                        // Dst += Src
	OpAddImm                     // Dst += Imm
	OpSub                        // Dst -= Src
	OpMul                        // Dst *= Src
	OpXor                        // Dst ^= Src
	OpAndImm                     // Dst &= Imm
	OpShlImm                     // Dst <<= Imm
	OpShrImm                     // Dst >>= Imm (logical)
	OpLoad                       // Dst = *(Sym + SymOff + Src*Scale); Src may be NoReg
	OpLoadByte                   // Dst = zero-extended byte at Sym + SymOff + Src*Scale
	OpStore                      // *(Sym + SymOff + Src*Scale) = Dst  (Dst is the value!)
	OpLoadLocal                  // Dst = frame slot Imm
	OpStoreLocal                 // frame slot Imm = Dst
	OpCall                       // call Callee; optional SpillReg, optional landing pad
	OpCallIndirect               // load ptr from Sym + Src*8, call it (via R11)
)

// Op is one MIR operation.
type Op struct {
	Kind   OpKind
	Dst    isa.Reg
	Src    isa.Reg
	Imm    int64
	Sym    string
	SymOff int64
	Scale  uint8

	// Call-specific fields.
	Callee string
	// SpillReg, when not NoReg, makes the compiler save/restore this
	// caller-saved register around the call with push/pop — the
	// "unnecessary caller-saved register spilling" that the frame-opts
	// pass removes when the register is dead (paper Table 1, pass 15).
	SpillReg isa.Reg
	// LandingPad, when >= 0, marks the call as an invoke whose exception
	// edge leads to that block.
	LandingPad int

	// Source coordinates. After inlining these remain the *callee's*
	// coordinates, which is what makes source-keyed PGO profiles merge
	// across inline copies (paper Figure 2). Finalize fills empty fields
	// from the enclosing function/block.
	File string
	Line int32
}

// TermKind enumerates block terminators.
type TermKind uint8

// Terminators.
const (
	TermJump         TermKind = iota // goto Then
	TermBranch                       // if CmpReg <Cc> (CmpReg2|CmpImm) goto Then else Else
	TermSwitch                       // jump table on IndexReg in [0, len(Targets))
	TermReturn                       // return (value already in RAX)
	TermTailCall                     // jmp Callee (frameless functions only)
	TermTailIndirect                 // jmp *(Sym + IndexReg*8) — an indirect tail call; makes the function non-simple for gobolt (paper §6.4)
	TermThrow                        // raise an exception (unwinds to nearest landing pad)
	TermExit                         // halt the machine (entry function only)
)

// Term is a block terminator.
type Term struct {
	Kind TermKind

	// TermBranch: compare CmpReg against CmpReg2 (when CmpUseReg) or
	// CmpImm, then branch on Cc. The explicit flag avoids the zero-value
	// register (RAX) silently meaning "register compare".
	Cc        isa.Cond
	CmpReg    isa.Reg
	CmpUseReg bool
	CmpReg2   isa.Reg
	CmpImm    int64
	Then      int
	Else      int

	// TermSwitch.
	IndexReg isa.Reg
	Targets  []int
	PIC      bool // PIC-style (offset) jump table vs absolute

	// TermTailCall.
	Callee string

	// LandingPad covers TermThrow raised inside an inlined invoke: the
	// throw call site inherits the surrounding invoke's landing pad.
	LandingPad int

	// Prob is the generator's intended probability of the Then edge.
	// It parameterizes input data generation and test oracles only; the
	// compiler must learn probabilities from profiles, never from here.
	Prob float64

	// Source coordinates; see Op.File.
	File string
	Line int32
}

// NewFunc returns a function with an allocated entry block.
func NewFunc(name, file string, line int32) *Func {
	f := &Func{Name: name, File: file, Line: line, Global: true}
	f.AddBlock()
	return f
}

// AddBlock appends and returns a new block.
func (f *Func) AddBlock() *Block {
	b := &Block{Index: len(f.Blocks), Line: f.Line}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Finalize wires back-pointers, assigns block indices, and normalizes
// source coordinates (empty op/term File inherits the function's File;
// zero Line inherits the block's Line).
func (p *Program) Finalize() {
	for _, m := range p.Modules {
		for _, f := range m.Funcs {
			f.mod = m
			for i, b := range f.Blocks {
				b.Index = i
				if b.Line == 0 {
					b.Line = f.Line
				}
				for j := range b.Ops {
					if b.Ops[j].File == "" {
						b.Ops[j].File = f.File
					}
					if b.Ops[j].Line == 0 {
						b.Ops[j].Line = b.Line
					}
					if b.Ops[j].Kind != OpCall && b.Ops[j].LandingPad == 0 {
						// Zero value means "no landing pad" for non-calls.
						b.Ops[j].LandingPad = -1
					}
				}
				if b.Term.File == "" {
					b.Term.File = f.File
				}
				if b.Term.Line == 0 {
					b.Term.Line = b.Line
				}
				if b.Term.Kind != TermThrow && b.Term.LandingPad == 0 {
					b.Term.LandingPad = -1
				}
			}
		}
	}
}

// FuncByName finds a function anywhere in the program.
func (p *Program) FuncByName(name string) *Func {
	for _, m := range p.Modules {
		for _, f := range m.Funcs {
			if f.Name == name {
				return f
			}
		}
	}
	return nil
}

// GlobalByName finds a global.
func (p *Program) GlobalByName(name string) *Global {
	for _, g := range p.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// NumFuncs counts all functions.
func (p *Program) NumFuncs() int {
	n := 0
	for _, m := range p.Modules {
		n += len(m.Funcs)
	}
	return n
}

// Validate checks structural invariants of the whole program.
func (p *Program) Validate() error {
	names := map[string]bool{}
	for _, g := range p.Globals {
		if names[g.Name] {
			return fmt.Errorf("ir: duplicate global %q", g.Name)
		}
		names[g.Name] = true
	}
	for _, m := range p.Modules {
		for _, f := range m.Funcs {
			if names[f.Name] {
				return fmt.Errorf("ir: duplicate symbol %q", f.Name)
			}
			names[f.Name] = true
			if err := p.validateFunc(f); err != nil {
				return fmt.Errorf("ir: func %s: %w", f.Name, err)
			}
		}
	}
	return nil
}

func (p *Program) validateFunc(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	checkTarget := func(i int) error {
		if i < 0 || i >= len(f.Blocks) {
			return fmt.Errorf("block target %d out of range", i)
		}
		return nil
	}
	for bi, b := range f.Blocks {
		for oi, op := range b.Ops {
			switch op.Kind {
			case OpCall:
				if op.Callee == "" {
					return fmt.Errorf("block %d op %d: call without callee", bi, oi)
				}
				if op.LandingPad == 0 {
					return fmt.Errorf("block %d op %d: entry block cannot be a landing pad", bi, oi)
				}
				if op.LandingPad > 0 {
					if err := checkTarget(op.LandingPad); err != nil {
						return err
					}
				}
				if op.SpillReg != isa.NoReg && !op.SpillReg.CallerSaved() {
					return fmt.Errorf("block %d op %d: spill of callee-saved %v", bi, oi, op.SpillReg)
				}
			case OpCallIndirect:
				if op.Sym == "" {
					return fmt.Errorf("block %d op %d: indirect call without table", bi, oi)
				}
			case OpLoad, OpLoadByte, OpStore:
				if op.Sym == "" {
					return fmt.Errorf("block %d op %d: memory op without symbol", bi, oi)
				}
			case OpLoadLocal, OpStoreLocal:
				if op.Imm < 0 || op.Imm >= int64(f.FrameSlots) {
					return fmt.Errorf("block %d op %d: frame slot %d out of range", bi, oi, op.Imm)
				}
			}
		}
		t := &b.Term
		switch t.Kind {
		case TermJump:
			if err := checkTarget(t.Then); err != nil {
				return err
			}
		case TermBranch:
			if err := checkTarget(t.Then); err != nil {
				return err
			}
			if err := checkTarget(t.Else); err != nil {
				return err
			}
		case TermSwitch:
			if len(t.Targets) == 0 {
				return fmt.Errorf("block %d: empty switch", bi)
			}
			for _, tg := range t.Targets {
				if err := checkTarget(tg); err != nil {
					return err
				}
			}
		case TermTailCall:
			if t.Callee == "" {
				return fmt.Errorf("block %d: tail call without callee", bi)
			}
			if f.FrameSlots > 0 || len(f.SavedRegs) > 0 {
				return fmt.Errorf("block %d: tail call from function with a frame", bi)
			}
		case TermTailIndirect:
			if t.Callee == "" { // Callee carries the table symbol here
				return fmt.Errorf("block %d: indirect tail call without table", bi)
			}
			if f.FrameSlots > 0 || len(f.SavedRegs) > 0 {
				return fmt.Errorf("block %d: indirect tail call from function with a frame", bi)
			}
		case TermReturn, TermThrow, TermExit:
		default:
			return fmt.Errorf("block %d: unknown terminator %d", bi, t.Kind)
		}
	}
	for _, r := range f.SavedRegs {
		if !r.CalleeSaved() {
			return fmt.Errorf("saved reg %v is not callee-saved", r)
		}
	}
	return nil
}

// Successors lists the control-flow successors of block b (excluding
// exception edges).
func (f *Func) Successors(b *Block) []int {
	switch b.Term.Kind {
	case TermJump:
		return []int{b.Term.Then}
	case TermBranch:
		return []int{b.Term.Then, b.Term.Else}
	case TermSwitch:
		return append([]int(nil), b.Term.Targets...)
	}
	return nil
}

package ir

import (
	"testing"

	"gobolt/internal/isa"
)

func validProgram() *Program {
	f := NewFunc("_start", "m.mir", 1)
	f.Blocks[0].Term = Term{Kind: TermExit}
	g := NewFunc("g", "m.mir", 5)
	b := g.AddBlock()
	g.Blocks[0].Term = Term{Kind: TermBranch, Cc: isa.CondE, CmpReg: isa.RAX, Then: b.Index, Else: 0}
	b.Term = Term{Kind: TermReturn}
	p := &Program{Modules: []*Module{{Name: "m", Funcs: []*Func{f, g}}}}
	p.Finalize()
	return p
}

func TestValidateAccepts(t *testing.T) {
	if err := validProgram().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadTargets(t *testing.T) {
	p := validProgram()
	p.Modules[0].Funcs[1].Blocks[0].Term.Then = 99
	if err := p.Validate(); err == nil {
		t.Fatal("out-of-range branch target accepted")
	}
}

func TestValidateRejectsDuplicateNames(t *testing.T) {
	p := validProgram()
	dup := NewFunc("g", "m.mir", 9)
	dup.Blocks[0].Term = Term{Kind: TermReturn}
	p.Modules[0].Funcs = append(p.Modules[0].Funcs, dup)
	if err := p.Validate(); err == nil {
		t.Fatal("duplicate function name accepted")
	}
}

func TestValidateRejectsFramedTailCall(t *testing.T) {
	p := validProgram()
	f := NewFunc("tc", "m.mir", 20)
	f.FrameSlots = 1
	f.Blocks[0].Term = Term{Kind: TermTailCall, Callee: "g"}
	p.Modules[0].Funcs = append(p.Modules[0].Funcs, f)
	p.Finalize()
	if err := p.Validate(); err == nil {
		t.Fatal("tail call from framed function accepted")
	}
}

func TestValidateRejectsEntryLandingPad(t *testing.T) {
	p := validProgram()
	f := p.Modules[0].Funcs[1]
	f.Blocks[1].Ops = []Op{{Kind: OpCall, Callee: "g", SpillReg: isa.NoReg, LandingPad: 0}}
	if err := p.Validate(); err == nil {
		t.Fatal("entry-block landing pad accepted")
	}
}

func TestValidateRejectsBadSpill(t *testing.T) {
	p := validProgram()
	f := p.Modules[0].Funcs[1]
	f.Blocks[1].Ops = []Op{{Kind: OpCall, Callee: "g", SpillReg: isa.RBX, LandingPad: -1}}
	if err := p.Validate(); err == nil {
		t.Fatal("callee-saved spill reg accepted")
	}
}

func TestFinalizeNormalizesSourceInfo(t *testing.T) {
	p := validProgram()
	f := p.Modules[0].Funcs[1]
	f.Blocks[1].Ops = []Op{{Kind: OpMovImm, Dst: isa.RAX, Imm: 1}}
	p.Finalize()
	op := f.Blocks[1].Ops[0]
	if op.File != "m.mir" || op.Line == 0 {
		t.Fatalf("source info not normalized: %+v", op)
	}
	if op.LandingPad != -1 {
		t.Fatalf("non-call landing pad not normalized: %d", op.LandingPad)
	}
}

func TestSuccessors(t *testing.T) {
	p := validProgram()
	f := p.Modules[0].Funcs[1]
	succs := f.Successors(f.Blocks[0])
	if len(succs) != 2 {
		t.Fatalf("branch successors: %v", succs)
	}
	if got := f.Successors(f.Blocks[1]); len(got) != 0 {
		t.Fatalf("return must have no successors: %v", got)
	}
}

func TestNumFuncsAndLookup(t *testing.T) {
	p := validProgram()
	if p.NumFuncs() != 2 {
		t.Fatalf("NumFuncs = %d", p.NumFuncs())
	}
	if p.FuncByName("g") == nil || p.FuncByName("nope") != nil {
		t.Fatal("FuncByName broken")
	}
}

package isa

import (
	"fmt"
	"strings"
)

// FormatMem renders a memory operand in AT&T syntax.
func FormatMem(m Mem) string {
	if m.RIP {
		return fmt.Sprintf("%#x(%%rip)", m.Disp)
	}
	var sb strings.Builder
	if m.Disp != 0 {
		if m.Disp < 0 {
			fmt.Fprintf(&sb, "-%#x", -int64(m.Disp))
		} else {
			fmt.Fprintf(&sb, "%#x", m.Disp)
		}
	}
	sb.WriteByte('(')
	if m.Base != NoReg {
		sb.WriteString(m.Base.ATT())
	}
	if m.Index != NoReg {
		fmt.Fprintf(&sb, ",%s,%d", m.Index.ATT(), m.Scale)
	}
	sb.WriteByte(')')
	return sb.String()
}

// Format renders the instruction in AT&T syntax. SymName, if non-nil, maps
// branch-target addresses to symbolic names for readability.
func (i *Inst) Format(symName func(uint64) string) string {
	target := func() string {
		if symName != nil {
			if n := symName(i.TargetAddr); n != "" {
				return n
			}
		}
		return fmt.Sprintf("%#x", i.TargetAddr)
	}
	m := i.Mnemonic()
	switch i.Op {
	case MOVrr, ADDrr, SUBrr, XORrr, CMPrr, TESTrr, IMULrr:
		return fmt.Sprintf("%s %s, %s", m, i.R2.ATT(), i.R1.ATT())
	case MOVri, MOVabs, ADDri, SUBri, ANDri, SHLri, SHRri, CMPri:
		return fmt.Sprintf("%s $%#x, %s", m, i.Imm, i.R1.ATT())
	case MOVrm, MOVZXBrm, MOVSXDrm, LEA:
		return fmt.Sprintf("%s %s, %s", m, FormatMem(i.M), i.R1.ATT())
	case MOVmr:
		return fmt.Sprintf("%s %s, %s", m, i.R1.ATT(), FormatMem(i.M))
	case JMP, JCC, CALL:
		return fmt.Sprintf("%s %s", m, target())
	case JMPr, CALLr:
		return fmt.Sprintf("%s *%s", m, i.R1.ATT())
	case JMPm, CALLm:
		return fmt.Sprintf("%s *%s", m, FormatMem(i.M))
	case PUSH, POP:
		return fmt.Sprintf("%s %s", m, i.R1.ATT())
	case NOP:
		if i.Imm > 1 {
			return fmt.Sprintf("nop(%d)", i.Imm)
		}
		return "nop"
	default:
		return m
	}
}

// String implements fmt.Stringer.
func (i *Inst) String() string { return i.Format(nil) }

package isa

import "fmt"

// Op identifies an operation together with its operand form. Keeping the
// form in the opcode (MOVrr vs MOVri vs MOVrm...) makes the encoder,
// decoder, and interpreter simple exhaustive switches.
type Op uint8

// Operations. Suffix convention: r = register, i = immediate, m = memory.
// For two-operand forms the destination is first (R1).
const (
	INVALID Op = iota

	// Data movement (64-bit unless noted).
	MOVrr    // mov  R1 <- R2
	MOVri    // mov  R1 <- imm32 (sign-extended)
	MOVabs   // movabs R1 <- imm64
	MOVrm    // mov  R1 <- [M]
	MOVmr    // mov  [M] <- R1
	MOVZXBrm // movzbq R1 <- byte[M]
	MOVSXDrm // movslq R1 <- dword[M]
	LEA      // lea  R1 <- effective address of M

	// Arithmetic / logic. All set FLAGS.
	ADDrr  // add R1 += R2
	ADDri  // add R1 += imm
	SUBrr  // sub R1 -= R2
	SUBri  // sub R1 -= imm
	IMULrr // imul R1 *= R2 (flags set but undefined bits; we model OF/CF=0)
	XORrr  // xor R1 ^= R2
	ANDri  // and R1 &= imm
	SHLri  // shl R1 <<= imm
	SHRri  // shr R1 >>= imm (logical)

	// Comparison (FLAGS only).
	CMPrr  // flags from R1 - R2
	CMPri  // flags from R1 - imm
	TESTrr // flags from R1 & R2

	// Control flow.
	JMP     // jmp   target (direct)
	JCC     // jCC   target (direct, conditional)
	JMPr    // jmp   *R1
	JMPm    // jmp   *[M]
	CALL    // call  target (direct)
	CALLr   // call  *R1
	CALLm   // call  *[M]
	RET     // ret
	REPZRET // repz ret (legacy AMD form; stripped by strip-rep-ret)

	// Stack.
	PUSH // push R1
	POP  // pop  R1

	// Misc.
	NOP // alignment filler; Imm holds the byte length (1..15)
	UD2 // trap
	HLT // VM program exit

	numOps
)

// Mem is a memory operand: [Base + Index*Scale + Disp] or [RIP + Disp].
type Mem struct {
	Base  Reg
	Index Reg
	Scale uint8 // 1, 2, 4, or 8; meaningful only when Index != NoReg
	Disp  int32
	RIP   bool // RIP-relative; Base and Index must be NoReg
}

// NoTarget marks an Inst with no symbolic branch target.
const NoTarget = -1

// Inst is one machine instruction. Direct branches carry their destination
// two ways: TargetAddr (absolute address, filled by the decoder and used by
// the encoder) and Target (a symbolic label index used by assemblers before
// layout is final).
type Inst struct {
	Op  Op
	R1  Reg // destination / primary operand
	R2  Reg // source
	Cc  Cond
	Imm int64 // immediate, or NOP length
	M   Mem

	Target     int    // symbolic label id, or NoTarget
	TargetAddr uint64 // absolute branch target (decode output / encode input)
}

// NewInst returns a non-branch instruction with Target cleared.
func NewInst(op Op) Inst {
	return Inst{Op: op, R1: NoReg, R2: NoReg, Target: NoTarget, M: Mem{Base: NoReg, Index: NoReg}}
}

// IsBranch reports whether the instruction redirects control flow
// (excluding calls, which fall through after returning).
func (i *Inst) IsBranch() bool {
	switch i.Op {
	case JMP, JCC, JMPr, JMPm, RET, REPZRET:
		return true
	}
	return false
}

// IsDirectBranch reports JMP or JCC.
func (i *Inst) IsDirectBranch() bool { return i.Op == JMP || i.Op == JCC }

// IsCall reports any call form.
func (i *Inst) IsCall() bool { return i.Op == CALL || i.Op == CALLr || i.Op == CALLm }

// IsIndirectBranch reports a computed jump (not call, not return).
func (i *Inst) IsIndirectBranch() bool { return i.Op == JMPr || i.Op == JMPm }

// IsReturn reports ret / repz ret.
func (i *Inst) IsReturn() bool { return i.Op == RET || i.Op == REPZRET }

// IsTerminator reports whether the instruction ends a basic block.
func (i *Inst) IsTerminator() bool { return i.IsBranch() || i.Op == UD2 || i.Op == HLT }

// IsNop reports alignment filler.
func (i *Inst) IsNop() bool { return i.Op == NOP }

// HasMem reports whether the instruction has a memory operand.
func (i *Inst) HasMem() bool {
	switch i.Op {
	case MOVrm, MOVmr, MOVZXBrm, MOVSXDrm, LEA, JMPm, CALLm:
		return true
	}
	return false
}

// IsLoad reports a data-memory read.
func (i *Inst) IsLoad() bool {
	switch i.Op {
	case MOVrm, MOVZXBrm, MOVSXDrm, JMPm, CALLm:
		return true
	}
	return false
}

// IsStore reports a data-memory write. PUSH also writes the stack.
func (i *Inst) IsStore() bool { return i.Op == MOVmr || i.Op == PUSH }

// Uses returns the set of registers read by the instruction.
// Call semantics: argument registers (RDI, RSI, RDX, RCX, R8, R9) are
// treated as used so liveness stays conservative.
func (i *Inst) Uses() RegSet {
	var s RegSet
	addMem := func() {
		if i.M.Base != NoReg {
			s = s.Add(i.M.Base)
		}
		if i.M.Index != NoReg {
			s = s.Add(i.M.Index)
		}
	}
	switch i.Op {
	case MOVrr, MOVSXDrm:
		if i.Op == MOVrr {
			s = s.Add(i.R2)
		} else {
			addMem()
		}
	case MOVri, MOVabs:
	case MOVrm, MOVZXBrm, LEA:
		addMem()
	case MOVmr:
		s = s.Add(i.R1)
		addMem()
	case ADDrr, SUBrr, IMULrr, XORrr, CMPrr, TESTrr:
		s = s.Add(i.R1).Add(i.R2)
	case ADDri, SUBri, ANDri, SHLri, SHRri, CMPri:
		s = s.Add(i.R1)
	case JCC:
		s |= FlagsBit
	case JMPr, CALLr:
		s = s.Add(i.R1)
	case JMPm, CALLm:
		addMem()
	case PUSH:
		s = s.Add(i.R1).Add(RSP)
	case POP:
		s = s.Add(RSP)
	case RET, REPZRET:
		s = s.Add(RSP)
	}
	if i.IsCall() {
		s = s.Add(RDI).Add(RSI).Add(RDX).Add(RCX).Add(R8).Add(R9).Add(RSP)
	}
	return s
}

// Defs returns the set of registers written by the instruction.
// Calls clobber all caller-saved registers plus FLAGS.
func (i *Inst) Defs() RegSet {
	var s RegSet
	switch i.Op {
	case MOVrr, MOVri, MOVabs, MOVrm, MOVZXBrm, MOVSXDrm, LEA:
		s = s.Add(i.R1)
	case ADDrr, ADDri, SUBrr, SUBri, IMULrr, XORrr, ANDri, SHLri, SHRri:
		s = s.Add(i.R1)
		s |= FlagsBit
	case CMPrr, CMPri, TESTrr:
		s |= FlagsBit
	case PUSH:
		s = s.Add(RSP)
	case POP:
		s = s.Add(i.R1).Add(RSP)
	case RET, REPZRET:
		s = s.Add(RSP)
	}
	if i.IsCall() {
		s |= CallerSavedSet() | FlagsBit
		s = s.Add(RSP)
	}
	return s
}

var opNames = [numOps]string{
	INVALID: "(invalid)",
	MOVrr:   "movq", MOVri: "movq", MOVabs: "movabsq", MOVrm: "movq",
	MOVmr: "movq", MOVZXBrm: "movzbq", MOVSXDrm: "movslq", LEA: "leaq",
	ADDrr: "addq", ADDri: "addq", SUBrr: "subq", SUBri: "subq",
	IMULrr: "imulq", XORrr: "xorq", ANDri: "andq", SHLri: "shlq", SHRri: "shrq",
	CMPrr: "cmpq", CMPri: "cmpq", TESTrr: "testq",
	JMP: "jmp", JCC: "j", JMPr: "jmp", JMPm: "jmp",
	CALL: "callq", CALLr: "callq", CALLm: "callq",
	RET: "retq", REPZRET: "repz retq",
	PUSH: "pushq", POP: "popq",
	NOP: "nop", UD2: "ud2", HLT: "hlt",
}

// Mnemonic returns the AT&T mnemonic (JCC includes the condition suffix).
func (i *Inst) Mnemonic() string {
	if i.Op == JCC {
		return "j" + i.Cc.String()
	}
	if int(i.Op) < len(opNames) {
		return opNames[i.Op]
	}
	return fmt.Sprintf("op%d", i.Op)
}

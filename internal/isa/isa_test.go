package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// encodeOne is a test helper that encodes a single instruction at pc.
func encodeOne(t *testing.T, i Inst, pc uint64, long bool) []byte {
	t.Helper()
	buf, err := AppendInst(nil, &i, pc, long)
	if err != nil {
		t.Fatalf("encode %v: %v", i.String(), err)
	}
	return buf
}

func TestEncodeDecodeFixed(t *testing.T) {
	mk := func(op Op) Inst { return NewInst(op) }
	cases := []Inst{
		func() Inst { i := mk(MOVrr); i.R1 = RAX; i.R2 = RBX; return i }(),
		func() Inst { i := mk(MOVrr); i.R1 = R15; i.R2 = R8; return i }(),
		func() Inst { i := mk(MOVri); i.R1 = RDI; i.Imm = 42; return i }(),
		func() Inst { i := mk(MOVri); i.R1 = R12; i.Imm = -7; return i }(),
		func() Inst { i := mk(MOVabs); i.R1 = RSI; i.Imm = 0x1234567890; return i }(),
		func() Inst {
			i := mk(MOVrm)
			i.R1 = RAX
			i.M = Mem{Base: RBP, Index: NoReg, Scale: 1, Disp: -8}
			return i
		}(),
		func() Inst {
			i := mk(MOVmr)
			i.R1 = RCX
			i.M = Mem{Base: RSP, Index: NoReg, Scale: 1, Disp: 16}
			return i
		}(),
		func() Inst {
			i := mk(MOVrm)
			i.R1 = RDX
			i.M = Mem{Base: NoReg, Index: NoReg, RIP: true, Disp: 0x100}
			return i
		}(),
		func() Inst {
			i := mk(MOVZXBrm)
			i.R1 = RAX
			i.M = Mem{Base: RDI, Index: RSI, Scale: 1, Disp: 0}
			return i
		}(),
		func() Inst {
			i := mk(MOVSXDrm)
			i.R1 = RBX
			i.M = Mem{Base: RDI, Index: RAX, Scale: 4, Disp: 0}
			return i
		}(),
		func() Inst {
			i := mk(LEA)
			i.R1 = R10
			i.M = Mem{Base: NoReg, Index: NoReg, RIP: true, Disp: -64}
			return i
		}(),
		func() Inst { i := mk(ADDrr); i.R1 = RAX; i.R2 = RDX; return i }(),
		func() Inst { i := mk(ADDri); i.R1 = RSP; i.Imm = 8; return i }(),
		func() Inst { i := mk(ADDri); i.R1 = RSP; i.Imm = 1024; return i }(),
		func() Inst { i := mk(SUBri); i.R1 = RSP; i.Imm = 0x10; return i }(),
		func() Inst { i := mk(IMULrr); i.R1 = RAX; i.R2 = R9; return i }(),
		func() Inst { i := mk(XORrr); i.R1 = RAX; i.R2 = RAX; return i }(),
		func() Inst { i := mk(ANDri); i.R1 = RBX; i.Imm = -8; return i }(),
		func() Inst { i := mk(SHLri); i.R1 = RCX; i.Imm = 3; return i }(),
		func() Inst { i := mk(SHRri); i.R1 = RCX; i.Imm = 9; return i }(),
		func() Inst { i := mk(CMPrr); i.R1 = RDI; i.R2 = RSI; return i }(),
		func() Inst { i := mk(CMPri); i.R1 = RDI; i.Imm = 100; return i }(),
		func() Inst { i := mk(CMPri); i.R1 = R13; i.Imm = 100000; return i }(),
		func() Inst { i := mk(TESTrr); i.R1 = RAX; i.R2 = RAX; return i }(),
		func() Inst { i := mk(JMPr); i.R1 = RAX; return i }(),
		func() Inst { i := mk(JMPr); i.R1 = R11; return i }(),
		func() Inst {
			i := mk(JMPm)
			i.M = Mem{Base: NoReg, Index: NoReg, RIP: true, Disp: 0x2000}
			return i
		}(),
		func() Inst {
			i := mk(JMPm)
			i.M = Mem{Base: RDI, Index: RAX, Scale: 8, Disp: 0}
			return i
		}(),
		func() Inst { i := mk(CALLr); i.R1 = RDX; return i }(),
		func() Inst {
			i := mk(CALLm)
			i.M = Mem{Base: NoReg, Index: NoReg, RIP: true, Disp: 0x40}
			return i
		}(),
		mk(RET), mk(REPZRET), mk(UD2), mk(HLT),
		func() Inst { i := mk(PUSH); i.R1 = RBP; return i }(),
		func() Inst { i := mk(PUSH); i.R1 = R14; return i }(),
		func() Inst { i := mk(POP); i.R1 = RBP; return i }(),
		func() Inst { i := mk(POP); i.R1 = R9; return i }(),
	}
	const pc = 0x400000
	for _, c := range cases {
		buf := encodeOne(t, c, pc, false)
		if got := InstLen(&c, false); got != len(buf) {
			t.Errorf("%s: InstLen=%d, encoded %d bytes", c.String(), got, len(buf))
		}
		dec, n, err := Decode(buf, pc)
		if err != nil {
			t.Fatalf("decode %s (% x): %v", c.String(), buf, err)
		}
		if n != len(buf) {
			t.Errorf("%s: decoded %d of %d bytes", c.String(), n, len(buf))
		}
		if dec.String() != c.String() {
			t.Errorf("roundtrip mismatch: encoded %q, decoded %q (% x)", c.String(), dec.String(), buf)
		}
	}
}

func TestBranchEncoding(t *testing.T) {
	const pc = 0x400100
	for _, tc := range []struct {
		op     Op
		cc     Cond
		target uint64
		long   bool
		length int
	}{
		{JMP, 0, pc + 10, false, 2},
		{JMP, 0, pc - 20, false, 2},
		{JMP, 0, pc + 4096, true, 5},
		{JCC, CondE, pc + 4, false, 2},
		{JCC, CondNE, pc - 100, false, 2},
		{JCC, CondG, pc + 100000, true, 6},
		{CALL, 0, pc + 0x1000, false, 5},
		{CALL, 0, pc - 0x1000, false, 5},
	} {
		i := NewInst(tc.op)
		i.Cc = tc.cc
		i.TargetAddr = tc.target
		buf := encodeOne(t, i, pc, tc.long)
		if len(buf) != tc.length {
			t.Fatalf("%s to %#x: got %d bytes, want %d", i.Mnemonic(), tc.target, len(buf), tc.length)
		}
		dec, _, err := Decode(buf, pc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if dec.Op != tc.op || dec.TargetAddr != tc.target {
			t.Errorf("%s: decoded op=%v target=%#x, want op=%v target=%#x",
				i.Mnemonic(), dec.Op, dec.TargetAddr, tc.op, tc.target)
		}
		if tc.op == JCC && dec.Cc != tc.cc {
			t.Errorf("cond mismatch: got %v want %v", dec.Cc, tc.cc)
		}
	}
}

func TestBranchRangeError(t *testing.T) {
	i := NewInst(JMP)
	i.TargetAddr = 0x400000 + 1000
	_, err := AppendInst(nil, &i, 0x400000, false)
	if !IsBranchRangeError(err) {
		t.Fatalf("expected branch range error, got %v", err)
	}
	// The long form must succeed.
	buf, err := AppendInst(nil, &i, 0x400000, true)
	if err != nil || len(buf) != 5 {
		t.Fatalf("long form: %v, %d bytes", err, len(buf))
	}
}

func TestNopLengths(t *testing.T) {
	for n := 1; n <= 32; n++ {
		buf := AppendNop(nil, n)
		if len(buf) != n {
			t.Fatalf("AppendNop(%d) produced %d bytes", n, len(buf))
		}
		// Every nop sequence must decode to NOPs covering exactly n bytes.
		off := 0
		for off < n {
			dec, sz, err := Decode(buf[off:], 0x400000+uint64(off))
			if err != nil {
				t.Fatalf("nop decode at %d (% x): %v", off, buf, err)
			}
			if dec.Op != NOP {
				t.Fatalf("expected NOP at %d, got %v", off, dec.Op)
			}
			off += sz
		}
		if off != n {
			t.Fatalf("nop decode overran: %d != %d", off, n)
		}
	}
}

func TestCondInvert(t *testing.T) {
	pairs := [][2]Cond{{CondE, CondNE}, {CondL, CondGE}, {CondLE, CondG}, {CondB, CondAE}, {CondS, CondNS}, {CondO, CondNO}}
	for _, p := range pairs {
		if p[0].Invert() != p[1] || p[1].Invert() != p[0] {
			t.Errorf("invert %v <-> %v broken", p[0], p[1])
		}
	}
}

func TestRegSets(t *testing.T) {
	i := NewInst(CALL)
	if !i.Defs().Has(RAX) || !i.Defs().Has(R11) || i.Defs().Has(RBX) {
		t.Errorf("call defs wrong: %v", i.Defs())
	}
	add := NewInst(ADDrr)
	add.R1, add.R2 = RAX, RBX
	if !add.Uses().Has(RAX) || !add.Uses().Has(RBX) {
		t.Errorf("add uses wrong: %v", add.Uses())
	}
	if add.Defs()&FlagsBit == 0 {
		t.Errorf("add must def flags")
	}
	jcc := NewInst(JCC)
	if jcc.Uses()&FlagsBit == 0 {
		t.Errorf("jcc must use flags")
	}
	st := NewInst(MOVmr)
	st.R1 = RDX
	st.M = Mem{Base: RSP, Index: NoReg, Disp: 8}
	if !st.Uses().Has(RDX) || !st.Uses().Has(RSP) {
		t.Errorf("store uses wrong: %v", st.Uses())
	}
	if st.Defs().Has(RDX) {
		t.Errorf("store must not def RDX")
	}
}

// randInst builds a random valid instruction for property testing.
func randInst(r *rand.Rand) Inst {
	regs := []Reg{RAX, RCX, RDX, RBX, RSP, RBP, RSI, RDI, R8, R9, R10, R11, R12, R13, R14, R15}
	anyReg := func() Reg { return regs[r.Intn(len(regs))] }
	// Index register cannot be RSP.
	idxReg := func() Reg {
		for {
			g := anyReg()
			if g != RSP {
				return g
			}
		}
	}
	randMem := func() Mem {
		switch r.Intn(3) {
		case 0:
			return Mem{Base: NoReg, Index: NoReg, RIP: true, Disp: int32(r.Intn(1<<20) - 1<<19)}
		case 1:
			return Mem{Base: anyReg(), Index: NoReg, Scale: 1, Disp: int32(r.Intn(512) - 256)}
		default:
			scales := []uint8{1, 2, 4, 8}
			return Mem{Base: anyReg(), Index: idxReg(), Scale: scales[r.Intn(4)], Disp: int32(r.Intn(1<<16) - 1<<15)}
		}
	}
	ops := []Op{MOVrr, MOVri, MOVabs, MOVrm, MOVmr, MOVZXBrm, MOVSXDrm, LEA,
		ADDrr, ADDri, SUBrr, SUBri, IMULrr, XORrr, ANDri, SHLri, SHRri,
		CMPrr, CMPri, TESTrr, JMPr, JMPm, CALLr, CALLm, RET, REPZRET, PUSH, POP, UD2, HLT}
	i := NewInst(ops[r.Intn(len(ops))])
	switch i.Op {
	case MOVrr, ADDrr, SUBrr, IMULrr, XORrr, CMPrr, TESTrr:
		i.R1, i.R2 = anyReg(), anyReg()
	case MOVri, ADDri, SUBri, ANDri, CMPri:
		i.R1 = anyReg()
		i.Imm = int64(int32(r.Uint32()))
	case MOVabs:
		i.R1 = anyReg()
		i.Imm = int64(r.Uint64())
	case SHLri, SHRri:
		i.R1 = anyReg()
		i.Imm = int64(r.Intn(64))
	case MOVrm, MOVZXBrm, MOVSXDrm, LEA:
		i.R1 = anyReg()
		i.M = randMem()
	case MOVmr:
		i.R1 = anyReg()
		i.M = randMem()
	case JMPr, CALLr, PUSH, POP:
		i.R1 = anyReg()
	case JMPm, CALLm:
		i.M = randMem()
	}
	return i
}

func TestEncodeDecodeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	check := func() bool {
		in := randInst(r)
		const pc = 0x401000
		buf, err := AppendInst(nil, &in, pc, false)
		if err != nil {
			t.Logf("encode error for %s: %v", in.String(), err)
			return false
		}
		if InstLen(&in, false) != len(buf) {
			t.Logf("InstLen mismatch for %s: %d vs %d", in.String(), InstLen(&in, false), len(buf))
			return false
		}
		dec, n, err := Decode(buf, pc)
		if err != nil || n != len(buf) {
			t.Logf("decode error for %s (% x): %v n=%d", in.String(), buf, err, n)
			return false
		}
		// Printed form is a canonical witness of operand equality.
		if dec.String() != in.String() {
			t.Logf("mismatch: in=%q out=%q bytes=% x", in.String(), dec.String(), buf)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	// Unknown opcodes must fail cleanly, never panic.
	bad := [][]byte{{}, {0x06}, {0x0F}, {0x0F, 0xFF}, {0xC7}, {0xC7, 0xC0}, {0x48}, {0xE9, 1, 2}}
	for _, b := range bad {
		if _, _, err := Decode(b, 0x400000); err == nil {
			t.Errorf("decode % x unexpectedly succeeded", b)
		}
	}
}

// Package isa models the subset of the x86-64 instruction set that the
// gobolt toolchain emits, decodes, executes, and rewrites.
//
// The subset is small but byte-accurate: REX prefixes, ModRM/SIB addressing,
// RIP-relative operands, rel8/rel32 branch forms (the 2-byte vs 6-byte Jcc
// trade-off discussed in the BOLT paper §3.1), multi-byte alignment NOPs,
// and the legacy-AMD `repz retq` form targeted by the strip-rep-ret pass.
package isa

import "strings"

// Reg is a general-purpose 64-bit register. The numeric value is the
// hardware encoding used in ModRM/SIB bytes (REX extension included).
type Reg uint8

// General-purpose registers in hardware encoding order.
const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	// NoReg marks an absent register operand (e.g. no index register).
	NoReg Reg = 0xFF
)

// NumRegs is the number of addressable general-purpose registers.
const NumRegs = 16

var regNames = [NumRegs]string{
	"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

// String returns the AT&T-style name without the % sigil.
func (r Reg) String() string {
	if r < NumRegs {
		return regNames[r]
	}
	return "noreg"
}

// ATT returns the AT&T-syntax operand spelling, e.g. "%rax".
func (r Reg) ATT() string { return "%" + r.String() }

// lo3 returns the low three bits used in ModRM/SIB fields.
func (r Reg) lo3() byte { return byte(r) & 7 }

// hi returns the REX extension bit.
func (r Reg) hi() byte { return byte(r) >> 3 & 1 }

// CallerSaved reports whether the System V AMD64 ABI treats r as
// caller-saved (clobbered by calls).
func (r Reg) CallerSaved() bool {
	switch r {
	case RAX, RCX, RDX, RSI, RDI, R8, R9, R10, R11:
		return true
	}
	return false
}

// CalleeSaved reports whether r must be preserved across calls.
func (r Reg) CalleeSaved() bool {
	switch r {
	case RBX, RBP, R12, R13, R14, R15:
		return true
	}
	return false
}

// Cond is an x86 condition code in hardware encoding order (the low nibble
// of the Jcc opcode).
type Cond uint8

// Condition codes.
const (
	CondO Cond = iota
	CondNO
	CondB
	CondAE
	CondE
	CondNE
	CondBE
	CondA
	CondS
	CondNS
	CondP
	CondNP
	CondL
	CondGE
	CondLE
	CondG
)

var condNames = [16]string{
	"o", "no", "b", "ae", "e", "ne", "be", "a",
	"s", "ns", "p", "np", "l", "ge", "le", "g",
}

// String returns the mnemonic suffix, e.g. "e" for je.
func (c Cond) String() string {
	if c < 16 {
		return condNames[c]
	}
	return "??"
}

// Invert returns the logically opposite condition (je <-> jne, ...).
// x86 encodes inversion by flipping the low bit.
func (c Cond) Invert() Cond { return c ^ 1 }

// CondFromName parses a condition mnemonic suffix ("e", "ne", "l", ...).
func CondFromName(s string) (Cond, bool) {
	for i, n := range condNames {
		if n == s {
			return Cond(i), true
		}
	}
	return 0, false
}

// RegSet is a bitset over the 16 general-purpose registers plus the FLAGS
// pseudo-register (bit 16). It is the currency of the liveness analysis
// used by the frame-opts and shrink-wrapping passes.
type RegSet uint32

// FlagsBit marks the RFLAGS pseudo-register inside a RegSet.
const FlagsBit RegSet = 1 << 16

// RegMask returns the set containing only r.
func RegMask(r Reg) RegSet {
	if r >= NumRegs {
		return 0
	}
	return 1 << r
}

// Add returns s with r added.
func (s RegSet) Add(r Reg) RegSet { return s | RegMask(r) }

// Remove returns s with r removed.
func (s RegSet) Remove(r Reg) RegSet { return s &^ RegMask(r) }

// Has reports whether r is in s.
func (s RegSet) Has(r Reg) bool { return s&RegMask(r) != 0 }

// Union returns the set union.
func (s RegSet) Union(t RegSet) RegSet { return s | t }

// CallerSavedSet is the set of all caller-saved registers.
func CallerSavedSet() RegSet {
	var s RegSet
	for r := Reg(0); r < NumRegs; r++ {
		if r.CallerSaved() {
			s = s.Add(r)
		}
	}
	return s
}

// String lists the members for debugging, e.g. "{rax,rdx,flags}".
func (s RegSet) String() string {
	var parts []string
	for r := Reg(0); r < NumRegs; r++ {
		if s.Has(r) {
			parts = append(parts, r.String())
		}
	}
	if s&FlagsBit != 0 {
		parts = append(parts, "flags")
	}
	return "{" + strings.Join(parts, ",") + "}"
}

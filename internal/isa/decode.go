package isa

import (
	"encoding/binary"
	"fmt"
)

// DecodeError describes an undecodable byte sequence. The BOLT engine
// reacts by marking the containing function non-simple rather than
// aborting (precise disassembly is undecidable in general; see paper §3.3).
type DecodeError struct {
	PC   uint64
	Byte byte
	Msg  string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("isa: cannot decode at %#x (byte %#02x): %s", e.PC, e.Byte, e.Msg)
}

// Decode decodes a single instruction from code at address pc. It returns
// the instruction and its encoded length. Direct branch targets are
// resolved to absolute addresses in TargetAddr.
func Decode(code []byte, pc uint64) (Inst, int, error) {
	inst := NewInst(INVALID)
	if len(code) == 0 {
		return inst, 0, &DecodeError{PC: pc, Msg: "empty"}
	}
	fail := func(msg string) (Inst, int, error) {
		return inst, 0, &DecodeError{PC: pc, Byte: code[0], Msg: msg}
	}

	p := 0
	repz := false
	var rexB byte
	hasRex := false
	// Prefixes. The 0x66 data-size prefix appears only in multi-byte NOPs.
	for p < len(code) {
		switch code[p] {
		case 0xF3:
			repz = true
			p++
			continue
		case 0x66:
			p++
			continue
		}
		if code[p]&0xF0 == 0x40 {
			rexB = code[p]
			hasRex = true
			p++
			continue
		}
		break
	}
	if p >= len(code) {
		return fail("truncated prefixes")
	}
	rexW := rexB >> 3 & 1
	rexR := rexB >> 2 & 1
	rexX := rexB >> 1 & 1
	rexBb := rexB & 1

	need := func(n int) bool { return p+n <= len(code) }

	// parseModRM decodes ModRM (+SIB+disp) starting at code[p]; it returns
	// the reg field and either a register (mod=11) or memory operand.
	parseModRM := func() (reg byte, isReg bool, rm Reg, m Mem, ok bool) {
		if !need(1) {
			return 0, false, 0, Mem{}, false
		}
		modrm := code[p]
		p++
		mod := modrm >> 6
		reg = modrm >> 3 & 7
		rmBits := modrm & 7
		m = Mem{Base: NoReg, Index: NoReg, Scale: 1}
		if mod == 3 {
			return reg, true, Reg(rmBits | rexBb<<3), m, true
		}
		if mod == 0 && rmBits == 5 {
			// RIP-relative.
			if !need(4) {
				return 0, false, 0, Mem{}, false
			}
			m.RIP = true
			m.Disp = int32(binary.LittleEndian.Uint32(code[p:]))
			p += 4
			return reg, false, 0, m, true
		}
		if rmBits == 4 {
			if !need(1) {
				return 0, false, 0, Mem{}, false
			}
			sib := code[p]
			p++
			scale := sib >> 6
			idx := sib >> 3 & 7
			base := sib & 7
			if idx != 4 || rexX == 1 {
				m.Index = Reg(idx | rexX<<3)
				m.Scale = 1 << scale
			}
			m.Base = Reg(base | rexBb<<3)
			if mod == 0 && base == 5 {
				// disp32 with no base; we never emit this form.
				return 0, false, 0, Mem{}, false
			}
		} else {
			m.Base = Reg(rmBits | rexBb<<3)
		}
		switch mod {
		case 1:
			if !need(1) {
				return 0, false, 0, Mem{}, false
			}
			m.Disp = int32(int8(code[p]))
			p++
		case 2:
			if !need(4) {
				return 0, false, 0, Mem{}, false
			}
			m.Disp = int32(binary.LittleEndian.Uint32(code[p:]))
			p += 4
		}
		return reg, false, 0, m, true
	}

	imm8 := func() (int64, bool) {
		if !need(1) {
			return 0, false
		}
		v := int64(int8(code[p]))
		p++
		return v, true
	}
	imm32 := func() (int64, bool) {
		if !need(4) {
			return 0, false
		}
		v := int64(int32(binary.LittleEndian.Uint32(code[p:])))
		p += 4
		return v, true
	}

	op := code[p]
	p++

	// rel targets are relative to the end of the instruction.
	relTarget := func(rel int64) uint64 { return uint64(int64(pc) + int64(p) + rel) }

	rrInst := func(o Op, reg byte, rm Reg) (Inst, int, error) {
		inst.Op = o
		inst.R1 = rm
		inst.R2 = Reg(reg | rexR<<3)
		return inst, p, nil
	}
	memInst := func(o Op, reg byte, m Mem) (Inst, int, error) {
		inst.Op = o
		inst.R1 = Reg(reg | rexR<<3)
		inst.M = m
		return inst, p, nil
	}

	switch {
	case op == 0x89 || op == 0x8B: // mov rr / rm / mr
		reg, isReg, rm, m, ok := parseModRM()
		if !ok {
			return fail("bad modrm")
		}
		if isReg {
			if op == 0x89 {
				return rrInst(MOVrr, reg, rm)
			}
			// 8B with mod=11: mov reg<-rm; normalize to MOVrr with swapped roles.
			inst.Op = MOVrr
			inst.R1 = Reg(reg | rexR<<3)
			inst.R2 = rm
			return inst, p, nil
		}
		if op == 0x8B {
			return memInst(MOVrm, reg, m)
		}
		return memInst(MOVmr, reg, m)
	case op == 0xC7:
		reg, isReg, rm, _, ok := parseModRM()
		if !ok || !isReg || reg != 0 {
			return fail("bad C7 form")
		}
		v, ok := imm32()
		if !ok {
			return fail("truncated imm32")
		}
		inst.Op = MOVri
		inst.R1 = rm
		inst.Imm = v
		return inst, p, nil
	case op >= 0xB8 && op <= 0xBF && rexW == 1:
		if !need(8) {
			return fail("truncated imm64")
		}
		inst.Op = MOVabs
		inst.R1 = Reg(op - 0xB8 | rexBb<<3)
		inst.Imm = int64(binary.LittleEndian.Uint64(code[p:]))
		p += 8
		return inst, p, nil
	case op == 0x8D:
		reg, isReg, _, m, ok := parseModRM()
		if !ok || isReg {
			return fail("bad lea")
		}
		return memInst(LEA, reg, m)
	case op == 0x63:
		reg, isReg, _, m, ok := parseModRM()
		if !ok || isReg {
			return fail("bad movslq")
		}
		return memInst(MOVSXDrm, reg, m)
	case op == 0x01 || op == 0x29 || op == 0x31 || op == 0x39 || op == 0x85:
		reg, isReg, rm, _, ok := parseModRM()
		if !ok || !isReg {
			return fail("unsupported mem form")
		}
		var o Op
		switch op {
		case 0x01:
			o = ADDrr
		case 0x29:
			o = SUBrr
		case 0x31:
			o = XORrr
		case 0x39:
			o = CMPrr
		case 0x85:
			o = TESTrr
		}
		return rrInst(o, reg, rm)
	case op == 0x83 || op == 0x81:
		reg, isReg, rm, _, ok := parseModRM()
		if !ok || !isReg {
			return fail("unsupported mem form")
		}
		var o Op
		switch reg {
		case 0:
			o = ADDri
		case 4:
			o = ANDri
		case 5:
			o = SUBri
		case 7:
			o = CMPri
		default:
			return fail("unsupported group-1 ext")
		}
		var v int64
		if op == 0x83 {
			v, ok = imm8()
		} else {
			v, ok = imm32()
		}
		if !ok {
			return fail("truncated imm")
		}
		inst.Op = o
		inst.R1 = rm
		inst.Imm = v
		return inst, p, nil
	case op == 0xC1:
		reg, isReg, rm, _, ok := parseModRM()
		if !ok || !isReg {
			return fail("bad shift")
		}
		var o Op
		switch reg {
		case 4:
			o = SHLri
		case 5:
			o = SHRri
		default:
			return fail("unsupported shift ext")
		}
		v, ok := imm8()
		if !ok {
			return fail("truncated imm8")
		}
		inst.Op = o
		inst.R1 = rm
		inst.Imm = v & 63
		return inst, p, nil
	case op == 0xEB:
		v, ok := imm8()
		if !ok {
			return fail("truncated rel8")
		}
		inst.Op = JMP
		inst.TargetAddr = relTarget(v)
		return inst, p, nil
	case op == 0xE9:
		v, ok := imm32()
		if !ok {
			return fail("truncated rel32")
		}
		inst.Op = JMP
		inst.TargetAddr = relTarget(v)
		return inst, p, nil
	case op >= 0x70 && op <= 0x7F:
		v, ok := imm8()
		if !ok {
			return fail("truncated rel8")
		}
		inst.Op = JCC
		inst.Cc = Cond(op - 0x70)
		inst.TargetAddr = relTarget(v)
		return inst, p, nil
	case op == 0xE8:
		v, ok := imm32()
		if !ok {
			return fail("truncated rel32")
		}
		inst.Op = CALL
		inst.TargetAddr = relTarget(v)
		return inst, p, nil
	case op == 0xFF:
		reg, isReg, rm, m, ok := parseModRM()
		if !ok {
			return fail("bad FF form")
		}
		switch reg {
		case 2:
			if isReg {
				inst.Op = CALLr
				inst.R1 = rm
			} else {
				inst.Op = CALLm
				inst.M = m
			}
		case 4:
			if isReg {
				inst.Op = JMPr
				inst.R1 = rm
			} else {
				inst.Op = JMPm
				inst.M = m
			}
		default:
			return fail("unsupported FF ext")
		}
		return inst, p, nil
	case op == 0xC3:
		if repz {
			inst.Op = REPZRET
		} else {
			inst.Op = RET
		}
		return inst, p, nil
	case op >= 0x50 && op <= 0x57:
		inst.Op = PUSH
		inst.R1 = Reg(op - 0x50 | rexBb<<3)
		return inst, p, nil
	case op >= 0x58 && op <= 0x5F:
		inst.Op = POP
		inst.R1 = Reg(op - 0x58 | rexBb<<3)
		return inst, p, nil
	case op == 0x90 && !hasRex:
		inst.Op = NOP
		inst.Imm = int64(p) // prefixes (e.g. 0x66) already counted
		return inst, p, nil
	case op == 0xF4:
		inst.Op = HLT
		return inst, p, nil
	case op == 0x0F:
		if !need(1) {
			return fail("truncated 0F")
		}
		op2 := code[p]
		p++
		switch {
		case op2 == 0xB6:
			reg, isReg, _, m, ok := parseModRM()
			if !ok || isReg {
				return fail("bad movzbq")
			}
			return memInst(MOVZXBrm, reg, m)
		case op2 == 0xAF:
			reg, isReg, rm, _, ok := parseModRM()
			if !ok || !isReg {
				return fail("bad imul")
			}
			inst.Op = IMULrr
			inst.R1 = Reg(reg | rexR<<3)
			inst.R2 = rm
			return inst, p, nil
		case op2 >= 0x80 && op2 <= 0x8F:
			v, ok := imm32()
			if !ok {
				return fail("truncated rel32")
			}
			inst.Op = JCC
			inst.Cc = Cond(op2 - 0x80)
			inst.TargetAddr = relTarget(v)
			return inst, p, nil
		case op2 == 0x0B:
			inst.Op = UD2
			return inst, p, nil
		case op2 == 0x1F:
			// Multi-byte NOP: 0F 1F /0 with arbitrary memory operand.
			_, isReg, _, _, ok := parseModRM()
			if !ok || isReg {
				return fail("bad long nop")
			}
			inst.Op = NOP
			inst.Imm = int64(p)
			return inst, p, nil
		}
		return fail("unknown 0F opcode")
	}
	return fail("unknown opcode")
}

package isa

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encoding errors.
var (
	errBranchRange = fmt.Errorf("isa: rel8 branch target out of range")
)

// IsBranchRangeError reports whether err means "rel8 did not fit"; the
// emitter reacts by widening the branch to rel32 and re-laying-out.
func IsBranchRangeError(err error) bool { return err == errBranchRange }

// rex builds a REX prefix byte. w=1 selects 64-bit operand size.
func rex(w, r, x, b byte) byte { return 0x40 | w<<3 | r<<2 | x<<1 | b }

// needsSIB reports whether the memory operand requires a SIB byte.
func needsSIB(m Mem) bool {
	return m.Index != NoReg || m.Base == RSP || m.Base == R12
}

// appendModRM encodes the ModRM (+ optional SIB, + displacement) bytes for
// a register field `reg` and memory operand m. For RIP-relative operands
// m.Disp must already hold the displacement from the instruction end.
func appendModRM(buf []byte, reg byte, m Mem) []byte {
	if m.RIP {
		buf = append(buf, reg<<3|0x05) // mod=00 rm=101 -> RIP+disp32
		return binary.LittleEndian.AppendUint32(buf, uint32(m.Disp))
	}
	var mod byte
	disp8 := m.Disp >= math.MinInt8 && m.Disp <= math.MaxInt8
	// RBP/R13 as base with mod=00 means RIP/abs, so force a displacement.
	forceDisp := m.Base == RBP || m.Base == R13
	switch {
	case m.Disp == 0 && !forceDisp:
		mod = 0
	case disp8:
		mod = 1
	default:
		mod = 2
	}
	if needsSIB(m) {
		buf = append(buf, mod<<6|reg<<3|0x04)
		idx := byte(0x04) // none
		scaleBits := byte(0)
		if m.Index != NoReg {
			idx = m.Index.lo3()
			switch m.Scale {
			case 1:
				scaleBits = 0
			case 2:
				scaleBits = 1
			case 4:
				scaleBits = 2
			case 8:
				scaleBits = 3
			}
		}
		buf = append(buf, scaleBits<<6|idx<<3|m.Base.lo3())
	} else {
		buf = append(buf, mod<<6|reg<<3|m.Base.lo3())
	}
	switch mod {
	case 1:
		buf = append(buf, byte(int8(m.Disp)))
	case 2:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Disp))
	}
	return buf
}

// modRMLen returns the byte length of ModRM+SIB+disp for operand m.
func modRMLen(m Mem) int {
	if m.RIP {
		return 5
	}
	n := 1
	if needsSIB(m) {
		n++
	}
	forceDisp := m.Base == RBP || m.Base == R13
	switch {
	case m.Disp == 0 && !forceDisp:
	case m.Disp >= math.MinInt8 && m.Disp <= math.MaxInt8:
		n++
	default:
		n += 4
	}
	return n
}

// memRex returns the REX X and B bits contributed by a memory operand.
func memRex(m Mem) (x, b byte) {
	if m.Index != NoReg {
		x = m.Index.hi()
	}
	if m.Base != NoReg && !m.RIP {
		b = m.Base.hi()
	}
	return
}

// imm8OK reports whether v fits a sign-extended imm8.
func imm8OK(v int64) bool { return v >= math.MinInt8 && v <= math.MaxInt8 }

// imm32OK reports whether v fits a sign-extended imm32.
func imm32OK(v int64) bool { return v >= math.MinInt32 && v <= math.MaxInt32 }

// InstLen returns the encoded length of i in bytes. For direct branches,
// `long` selects the rel32 form; otherwise the rel8 form length is
// returned. The length never depends on the displacement value, so the
// emitter can compute layout before resolving targets.
func InstLen(i *Inst, long bool) int {
	switch i.Op {
	case MOVrr, ADDrr, SUBrr, XORrr, CMPrr, TESTrr:
		return 3
	case IMULrr:
		return 4
	case MOVri:
		return 7
	case MOVabs:
		return 10
	case MOVrm, MOVmr, LEA, MOVSXDrm:
		return 2 + modRMLen(i.M)
	case MOVZXBrm:
		return 3 + modRMLen(i.M)
	case ADDri, SUBri, ANDri, CMPri:
		if imm8OK(i.Imm) {
			return 4
		}
		return 7
	case SHLri, SHRri:
		return 4
	case JMP:
		if long {
			return 5
		}
		return 2
	case JCC:
		if long {
			return 6
		}
		return 2
	case JMPr, CALLr:
		n := 2
		if i.R1.hi() != 0 {
			n++
		}
		return n
	case JMPm, CALLm:
		n := 1 + modRMLen(i.M)
		if x, b := memRex(i.M); x != 0 || b != 0 {
			n++
		}
		return n
	case CALL:
		return 5
	case RET:
		return 1
	case REPZRET:
		return 2
	case PUSH, POP:
		if i.R1.hi() != 0 {
			return 2
		}
		return 1
	case NOP:
		return int(i.Imm)
	case UD2:
		return 2
	case HLT:
		return 1
	}
	return 0
}

// nopPatterns holds the recommended multi-byte NOP encodings (Intel SDM).
var nopPatterns = [...][]byte{
	1: {0x90},
	2: {0x66, 0x90},
	3: {0x0F, 0x1F, 0x00},
	4: {0x0F, 0x1F, 0x40, 0x00},
	5: {0x0F, 0x1F, 0x44, 0x00, 0x00},
	6: {0x66, 0x0F, 0x1F, 0x44, 0x00, 0x00},
	7: {0x0F, 0x1F, 0x80, 0x00, 0x00, 0x00, 0x00},
	8: {0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00},
	9: {0x66, 0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00},
}

// AppendNop appends n bytes of alignment filler.
func AppendNop(buf []byte, n int) []byte {
	for n > 0 {
		k := n
		if k > 9 {
			k = 9
		}
		buf = append(buf, nopPatterns[k]...)
		n -= k
	}
	return buf
}

// AppendInst encodes i at address pc and appends the bytes to buf.
// Direct branches read i.TargetAddr; `long` forces the rel32 form and an
// errBranchRange is returned if a rel8 form is requested but the target is
// out of range (the caller should widen and retry).
func AppendInst(buf []byte, i *Inst, pc uint64, long bool) ([]byte, error) {
	rr := func(opcode byte, reg, rm Reg) []byte {
		b := append(buf, rex(1, reg.hi(), 0, rm.hi()), opcode)
		return append(b, 0xC0|reg.lo3()<<3|rm.lo3())
	}
	mem := func(w byte, opcodes []byte, reg byte, regHi byte) []byte {
		x, bbit := memRex(i.M)
		b := append(buf, rex(w, regHi, x, bbit))
		b = append(b, opcodes...)
		return appendModRM(b, reg, i.M)
	}
	switch i.Op {
	case MOVrr:
		return rr(0x89, i.R2, i.R1), nil
	case MOVri:
		if !imm32OK(i.Imm) {
			return buf, fmt.Errorf("isa: mov imm %d does not fit imm32", i.Imm)
		}
		b := append(buf, rex(1, 0, 0, i.R1.hi()), 0xC7, 0xC0|i.R1.lo3())
		return binary.LittleEndian.AppendUint32(b, uint32(i.Imm)), nil
	case MOVabs:
		b := append(buf, rex(1, 0, 0, i.R1.hi()), 0xB8+i.R1.lo3())
		return binary.LittleEndian.AppendUint64(b, uint64(i.Imm)), nil
	case MOVrm:
		return mem(1, []byte{0x8B}, i.R1.lo3(), i.R1.hi()), nil
	case MOVmr:
		return mem(1, []byte{0x89}, i.R1.lo3(), i.R1.hi()), nil
	case MOVZXBrm:
		return mem(1, []byte{0x0F, 0xB6}, i.R1.lo3(), i.R1.hi()), nil
	case MOVSXDrm:
		return mem(1, []byte{0x63}, i.R1.lo3(), i.R1.hi()), nil
	case LEA:
		return mem(1, []byte{0x8D}, i.R1.lo3(), i.R1.hi()), nil
	case ADDrr:
		return rr(0x01, i.R2, i.R1), nil
	case SUBrr:
		return rr(0x29, i.R2, i.R1), nil
	case XORrr:
		return rr(0x31, i.R2, i.R1), nil
	case CMPrr:
		return rr(0x39, i.R2, i.R1), nil
	case TESTrr:
		return rr(0x85, i.R2, i.R1), nil
	case IMULrr:
		b := append(buf, rex(1, i.R1.hi(), 0, i.R2.hi()), 0x0F, 0xAF)
		return append(b, 0xC0|i.R1.lo3()<<3|i.R2.lo3()), nil
	case ADDri, SUBri, ANDri, CMPri:
		var ext byte
		switch i.Op {
		case ADDri:
			ext = 0
		case SUBri:
			ext = 5
		case ANDri:
			ext = 4
		case CMPri:
			ext = 7
		}
		if imm8OK(i.Imm) {
			b := append(buf, rex(1, 0, 0, i.R1.hi()), 0x83, 0xC0|ext<<3|i.R1.lo3())
			return append(b, byte(int8(i.Imm))), nil
		}
		if !imm32OK(i.Imm) {
			return buf, fmt.Errorf("isa: %s imm %d does not fit imm32", i.Mnemonic(), i.Imm)
		}
		b := append(buf, rex(1, 0, 0, i.R1.hi()), 0x81, 0xC0|ext<<3|i.R1.lo3())
		return binary.LittleEndian.AppendUint32(b, uint32(i.Imm)), nil
	case SHLri, SHRri:
		ext := byte(4)
		if i.Op == SHRri {
			ext = 5
		}
		b := append(buf, rex(1, 0, 0, i.R1.hi()), 0xC1, 0xC0|ext<<3|i.R1.lo3())
		return append(b, byte(i.Imm)), nil
	case JMP:
		if long {
			rel := int64(i.TargetAddr) - int64(pc) - 5
			if !imm32OK(rel) {
				return buf, fmt.Errorf("isa: jmp rel32 out of range")
			}
			b := append(buf, 0xE9)
			return binary.LittleEndian.AppendUint32(b, uint32(rel)), nil
		}
		rel := int64(i.TargetAddr) - int64(pc) - 2
		if !imm8OK(rel) {
			return buf, errBranchRange
		}
		return append(buf, 0xEB, byte(int8(rel))), nil
	case JCC:
		if long {
			rel := int64(i.TargetAddr) - int64(pc) - 6
			if !imm32OK(rel) {
				return buf, fmt.Errorf("isa: jcc rel32 out of range")
			}
			b := append(buf, 0x0F, 0x80+byte(i.Cc))
			return binary.LittleEndian.AppendUint32(b, uint32(rel)), nil
		}
		rel := int64(i.TargetAddr) - int64(pc) - 2
		if !imm8OK(rel) {
			return buf, errBranchRange
		}
		return append(buf, 0x70+byte(i.Cc), byte(int8(rel))), nil
	case CALL:
		rel := int64(i.TargetAddr) - int64(pc) - 5
		if !imm32OK(rel) {
			return buf, fmt.Errorf("isa: call rel32 out of range")
		}
		b := append(buf, 0xE8)
		return binary.LittleEndian.AppendUint32(b, uint32(rel)), nil
	case JMPr, CALLr:
		ext := byte(4)
		if i.Op == CALLr {
			ext = 2
		}
		b := buf
		if i.R1.hi() != 0 {
			b = append(b, rex(0, 0, 0, 1))
		}
		return append(b, 0xFF, 0xC0|ext<<3|i.R1.lo3()), nil
	case JMPm, CALLm:
		ext := byte(4)
		if i.Op == CALLm {
			ext = 2
		}
		b := buf
		if x, bbit := memRex(i.M); x != 0 || bbit != 0 {
			b = append(b, rex(0, 0, x, bbit))
		}
		b = append(b, 0xFF)
		return appendModRM(b, ext, i.M), nil
	case RET:
		return append(buf, 0xC3), nil
	case REPZRET:
		return append(buf, 0xF3, 0xC3), nil
	case PUSH:
		if i.R1.hi() != 0 {
			buf = append(buf, rex(0, 0, 0, 1))
		}
		return append(buf, 0x50+i.R1.lo3()), nil
	case POP:
		if i.R1.hi() != 0 {
			buf = append(buf, rex(0, 0, 0, 1))
		}
		return append(buf, 0x58+i.R1.lo3()), nil
	case NOP:
		return AppendNop(buf, int(i.Imm)), nil
	case UD2:
		return append(buf, 0x0F, 0x0B), nil
	case HLT:
		return append(buf, 0xF4), nil
	}
	return buf, fmt.Errorf("isa: cannot encode op %v", i.Op)
}

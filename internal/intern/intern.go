// Package intern provides string interning for the loader's hot path.
// The disassembler attaches the same handful of strings — source file
// names, call-target symbols, block labels — to hundreds of thousands of
// instructions; interning collapses them to one canonical copy each, so
// repeated values cost a map lookup instead of an allocation and
// downstream comparisons can rely on identity.
package intern

import (
	"strconv"
	"sync"
)

// Table is a concurrent string interner. The zero value is ready to use.
// Intern is identity-stable: every call with an equal string returns the
// same canonical copy, no matter which goroutine got there first — the
// property the parallel loader's workers depend on.
type Table struct {
	m sync.Map // string -> string (canonical)
}

// Intern returns the canonical copy of s.
func (t *Table) Intern(s string) string {
	if s == "" {
		return ""
	}
	if v, ok := t.m.Load(s); ok {
		return v.(string)
	}
	v, _ := t.m.LoadOrStore(s, s)
	return v.(string)
}

// nLabels bounds the precomputed block-label table; functions with more
// basic blocks than this exist but are rare enough that falling back to
// a fresh allocation does not show up in profiles.
const nLabels = 1024

var lbb = func() [nLabels]string {
	var a [nLabels]string
	for i := range a {
		a[i] = ".LBB" + strconv.Itoa(i)
	}
	return a
}()

// Label returns the canonical ".LBB<i>" basic-block label. Labels repeat
// across every function in a binary, so they are process-wide constants
// rather than per-table entries.
func Label(i int) string {
	if i >= 0 && i < nLabels {
		return lbb[i]
	}
	return ".LBB" + strconv.Itoa(i)
}

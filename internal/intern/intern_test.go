package intern

import (
	"fmt"
	"sync"
	"testing"
	"unsafe"
)

// data returns the string's backing-array pointer, the identity the
// loader relies on: two interned strings with equal content must share
// storage so the per-function metadata keeps one copy per distinct file
// name / symbol instead of one per instruction.
func data(s string) *byte { return unsafe.StringData(s) }

func TestInternIdentity(t *testing.T) {
	var tab Table
	// Build the contents separately so the inputs don't share backing
	// arrays to begin with.
	a := tab.Intern(string([]byte("src/lib/parse.c")))
	b := tab.Intern(string([]byte("src/lib/parse.c")))
	if a != b {
		t.Fatalf("interned values differ: %q vs %q", a, b)
	}
	if data(a) != data(b) {
		t.Fatal("equal strings interned to distinct backing arrays")
	}
	if got := tab.Intern(""); got != "" {
		t.Fatalf("Intern(%q) = %q", "", got)
	}
}

// TestInternConcurrent is the loader-shaped contract: many workers
// interning overlapping string sets concurrently (as the parallel
// disassembly phase does with file names and call-target symbols) must
// all observe the same canonical instance. Run under -race this also
// proves the table itself is safe for concurrent use.
func TestInternConcurrent(t *testing.T) {
	var tab Table
	const workers = 16
	const distinct = 64
	out := make([][]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got := make([]string, distinct)
			for i := 0; i < distinct; i++ {
				// Fresh allocation per worker: no accidental sharing.
				got[i] = tab.Intern(fmt.Sprintf("module%02d/file%02d.c", i%7, i))
			}
			out[w] = got
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range out[w] {
			if out[w][i] != out[0][i] {
				t.Fatalf("worker %d interned %q, worker 0 %q", w, out[w][i], out[0][i])
			}
			if data(out[w][i]) != data(out[0][i]) {
				t.Fatalf("worker %d: %q not identity-stable across workers", w, out[w][i])
			}
		}
	}
}

func TestLabel(t *testing.T) {
	for _, i := range []int{0, 1, 37, nLabels - 1, nLabels, nLabels + 5} {
		want := fmt.Sprintf(".LBB%d", i)
		if got := Label(i); got != want {
			t.Fatalf("Label(%d) = %q, want %q", i, got, want)
		}
	}
	// Within the precomputed range the same instance comes back every
	// time — block labels are process-wide constants.
	if data(Label(3)) != data(Label(3)) {
		t.Fatal("Label(3) not identity-stable")
	}
}

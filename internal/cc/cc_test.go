package cc

import (
	"testing"

	"gobolt/internal/ir"
	"gobolt/internal/isa"
	"gobolt/internal/obj"
)

// branchy builds: entry -> {then(line 3) | else(line 5)} -> ret.
func branchy(file string) *ir.Func {
	f := ir.NewFunc("f", file, 2)
	thenB := f.AddBlock()
	elseB := f.AddBlock()
	ret := f.AddBlock()
	thenB.Line, elseB.Line = 3, 5
	f.Blocks[0].Term = ir.Term{Kind: ir.TermBranch, Cc: isa.CondG, CmpReg: isa.RDI, CmpImm: 0,
		Then: thenB.Index, Else: elseB.Index}
	thenB.Ops = []ir.Op{{Kind: ir.OpMovImm, Dst: isa.RAX, Imm: 1}}
	thenB.Term = ir.Term{Kind: ir.TermJump, Then: ret.Index}
	elseB.Ops = []ir.Op{{Kind: ir.OpMovImm, Dst: isa.RAX, Imm: 2}}
	elseB.Term = ir.Term{Kind: ir.TermJump, Then: ret.Index}
	ret.Term = ir.Term{Kind: ir.TermReturn}
	return f
}

func singleFuncProgram(f *ir.Func) *ir.Program {
	start := ir.NewFunc("_start", "m.mir", 1)
	start.Blocks[0].Ops = []ir.Op{
		{Kind: ir.OpMovImm, Dst: isa.RDI, Imm: 1},
		{Kind: ir.OpCall, Callee: "f", SpillReg: isa.NoReg, LandingPad: -1},
	}
	start.Blocks[0].Term = ir.Term{Kind: ir.TermExit}
	p := &ir.Program{Modules: []*ir.Module{{Name: "m", Funcs: []*ir.Func{start, f}}}}
	p.Finalize()
	return p
}

func TestPGOBranchPolarityFromSuccessorLines(t *testing.T) {
	p := singleFuncProgram(branchy("src.mir"))
	sp := NewSourceProfile()
	// The else side (line 5) dominates.
	sp.AddBranchSample(SrcKey{"src.mir", 2}, SrcKey{"src.mir", 3}, 5)
	sp.AddBranchSample(SrcKey{"src.mir", 2}, SrcKey{"src.mir", 5}, 95)
	opts := DefaultOptions()
	opts.PGO = sp

	work := cloneProgram(p)
	f := work.FuncByName("f")
	prob := branchProb(f, f.Blocks[0], sp)
	if prob > 0.1 {
		t.Fatalf("then-probability should be ~0.05, got %f", prob)
	}
	order := layoutBlocks(f, opts)
	// The hot else block (index 2) must directly follow the entry.
	if order[1] != 2 {
		t.Fatalf("hot successor not adjacent: order %v", order)
	}
}

func TestTinyInlining(t *testing.T) {
	callee := ir.NewFunc("tiny", "lib.mir", 8)
	callee.Blocks[0].Ops = []ir.Op{{Kind: ir.OpMovImm, Dst: isa.RAX, Imm: 7}}
	callee.Blocks[0].Term = ir.Term{Kind: ir.TermReturn}
	caller := ir.NewFunc("_start", "m.mir", 1)
	caller.Blocks[0].Ops = []ir.Op{{Kind: ir.OpCall, Callee: "tiny", SpillReg: isa.NoReg, LandingPad: -1}}
	caller.Blocks[0].Term = ir.Term{Kind: ir.TermExit}
	p := &ir.Program{Modules: []*ir.Module{{Name: "m", Funcs: []*ir.Func{caller, callee}}}}
	p.Finalize()

	work := cloneProgram(p)
	inlineAll(work, DefaultOptions())
	got := work.FuncByName("_start")
	for _, b := range got.Blocks {
		for _, op := range b.Ops {
			if op.Kind == ir.OpCall && op.Callee == "tiny" {
				t.Fatal("tiny callee was not inlined")
			}
		}
	}
	// Inlined ops keep the callee's source file (the Figure 2 property).
	found := false
	for _, b := range got.Blocks {
		for _, op := range b.Ops {
			if op.File == "lib.mir" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("inlined ops lost callee source coordinates")
	}
}

func TestCrossModuleInliningNeedsLTO(t *testing.T) {
	callee := ir.NewFunc("tiny", "lib.mir", 8)
	callee.Blocks[0].Ops = []ir.Op{{Kind: ir.OpMovImm, Dst: isa.RAX, Imm: 7}}
	callee.Blocks[0].Term = ir.Term{Kind: ir.TermReturn}
	caller := ir.NewFunc("_start", "m.mir", 1)
	caller.Blocks[0].Ops = []ir.Op{{Kind: ir.OpCall, Callee: "tiny", SpillReg: isa.NoReg, LandingPad: -1}}
	caller.Blocks[0].Term = ir.Term{Kind: ir.TermExit}
	p := &ir.Program{Modules: []*ir.Module{
		{Name: "m", Funcs: []*ir.Func{caller}},
		{Name: "lib", Funcs: []*ir.Func{callee}},
	}}
	p.Finalize()

	hasCall := func(f *ir.Func) bool {
		for _, b := range f.Blocks {
			for _, op := range b.Ops {
				if op.Kind == ir.OpCall {
					return true
				}
			}
		}
		return false
	}
	work := cloneProgram(p)
	inlineAll(work, DefaultOptions())
	if !hasCall(work.FuncByName("_start")) {
		t.Fatal("cross-module inlining happened without LTO")
	}
	lto := DefaultOptions()
	lto.LTO = true
	work2 := cloneProgram(p)
	inlineAll(work2, lto)
	if hasCall(work2.FuncByName("_start")) {
		t.Fatal("LTO did not inline across modules")
	}
}

func TestCompileEmitsCFIAndLines(t *testing.T) {
	// Make the callee big enough that it is NOT inlined, so _start keeps
	// its call (and therefore its frame and CFI).
	big := branchy("src.mir")
	for i := 0; i < 6; i++ {
		big.Blocks[1].Ops = append(big.Blocks[1].Ops,
			ir.Op{Kind: ir.OpAddImm, Dst: isa.RAX, Imm: int64(i)})
	}
	p := singleFuncProgram(big)
	objs, err := Compile(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var start *obj.Func
	for _, o := range objs {
		for _, f := range o.Funcs {
			if f.Name == "_start" {
				start = f
			}
		}
	}
	if start == nil {
		t.Fatal("no _start emitted")
	}
	if len(start.CFI) == 0 {
		t.Error("framed function must carry CFI")
	}
	if len(start.Lines) == 0 {
		t.Error("line info missing")
	}
	if len(start.Relocs) == 0 {
		t.Error("call reloc missing")
	}
}

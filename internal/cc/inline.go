package cc

import (
	"gobolt/internal/ir"
)

// funcSize counts MIR ops.
func funcSize(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Ops)
	}
	return n
}

// inlinable reports whether callee's body can be spliced into a caller:
// it must be frameless (no locals, no callee-saved spills) and must not
// itself contain invokes (calls with landing pads) — the splice would have
// to merge exception tables, which real compilers do but we keep out of
// scope. Plain calls, throws, branches, and switches are all fine.
func inlinable(callee *ir.Func) bool {
	if callee == nil || callee.FrameSlots > 0 || len(callee.SavedRegs) > 0 {
		return false
	}
	for _, b := range callee.Blocks {
		for _, op := range b.Ops {
			if op.Kind == ir.OpCall && op.LandingPad >= 0 {
				return false
			}
		}
		switch b.Term.Kind {
		case ir.TermExit, ir.TermTailCall, ir.TermTailIndirect:
			return false
		}
	}
	return true
}

// inlineAll applies the inlining policy over the whole program:
//   - tiny callees (<= TinyInlineOps) are inlined whenever visible
//     (same module, or anywhere under LTO);
//   - with PGO, small callees (<= PGOInlineOps) are also inlined at call
//     sites whose profile count is hot.
//
// Inlined ops keep the *callee's* source coordinates, so a later PGO build
// of this program sees merged per-line profiles across all inline copies —
// the paper's Figure 2 scenario.
func inlineAll(p *ir.Program, opts Options) {
	byName := map[string]*ir.Func{}
	sameModule := map[string]*ir.Module{}
	for _, m := range p.Modules {
		for _, f := range m.Funcs {
			byName[f.Name] = f
			sameModule[f.Name] = m
		}
	}

	shouldInline := func(caller *ir.Func, callerMod *ir.Module, op ir.Op) bool {
		callee := byName[op.Callee]
		if callee == nil || callee == caller || !inlinable(callee) {
			return false
		}
		visible := sameModule[op.Callee] == callerMod || opts.LTO
		if !visible {
			return false
		}
		size := funcSize(callee)
		if size <= opts.TinyInlineOps {
			return true
		}
		if opts.PGO != nil && size <= opts.PGOInlineOps {
			cnt := opts.PGO.Call[SrcKey{File: caller.File, Line: op.Line}]
			// Merged-at-source caveat applies here too: the count is the
			// sum over all binary call sites sharing this source line.
			return cnt >= opts.HotCallCount
		}
		return false
	}

	for _, m := range p.Modules {
		for _, f := range m.Funcs {
			// Bounded rounds prevent runaway mutual inlining.
			for round := 0; round < 3; round++ {
				if !inlineOnePass(f, m, byName, shouldInline) {
					break
				}
			}
		}
	}
	p.Finalize()
}

// inlineOnePass splices the first eligible call site of each block and
// reports whether anything changed.
func inlineOnePass(f *ir.Func, m *ir.Module, byName map[string]*ir.Func,
	shouldInline func(*ir.Func, *ir.Module, ir.Op) bool) bool {

	changed := false
	for bi := 0; bi < len(f.Blocks); bi++ {
		b := f.Blocks[bi]
		for oi := 0; oi < len(b.Ops); oi++ {
			op := b.Ops[oi]
			if op.Kind != ir.OpCall || !shouldInline(f, m, op) {
				continue
			}
			splice(f, bi, oi, byName[op.Callee], op.LandingPad)
			changed = true
			break // block was rewritten; move on
		}
	}
	return changed
}

// splice inlines callee at f.Blocks[bi].Ops[oi].
//
// The call block is split: [ops before call | jump to inlined entry] and a
// continuation block [ops after call | original terminator]. Callee blocks
// are appended with indices shifted; callee returns become jumps to the
// continuation. If the call site was an invoke (landing pad lp >= 0),
// calls and throws inside the inlined body inherit lp.
func splice(f *ir.Func, bi, oi int, callee *ir.Func, lp int) {
	call := f.Blocks[bi].Ops[oi]
	base := len(f.Blocks)
	shift := func(idx int) int { return base + idx }

	// Continuation block.
	cont := &ir.Block{
		Index: base + len(callee.Blocks),
		Line:  f.Blocks[bi].Line,
		Ops:   append([]ir.Op(nil), f.Blocks[bi].Ops[oi+1:]...),
		Term:  f.Blocks[bi].Term,
		Cold:  f.Blocks[bi].Cold,
	}

	// Rewrite the call block.
	b := f.Blocks[bi]
	b.Ops = b.Ops[:oi]
	b.Term = ir.Term{Kind: ir.TermJump, Then: shift(0), Line: call.Line}

	// Copy callee blocks.
	for _, cb := range callee.Blocks {
		nb := &ir.Block{
			Index: base + cb.Index,
			Line:  cb.Line, // callee coordinates survive: Figure 2
			Cold:  cb.Cold,
			Ops:   append([]ir.Op(nil), cb.Ops...),
		}
		for i := range nb.Ops {
			if nb.Ops[i].Kind == ir.OpCall && nb.Ops[i].LandingPad < 0 && lp >= 0 {
				nb.Ops[i].LandingPad = lp
			}
		}
		t := cb.Term
		t.Targets = append([]int(nil), cb.Term.Targets...)
		switch t.Kind {
		case ir.TermJump:
			t.Then = shift(t.Then)
		case ir.TermBranch:
			t.Then, t.Else = shift(t.Then), shift(t.Else)
		case ir.TermSwitch:
			for i := range t.Targets {
				t.Targets[i] = shift(t.Targets[i])
			}
		case ir.TermReturn:
			t = ir.Term{Kind: ir.TermJump, Then: cont.Index, Line: t.Line}
		case ir.TermThrow:
			if lp >= 0 {
				t.LandingPad = lp
			}
		}
		nb.Term = t
		f.Blocks = append(f.Blocks, nb)
	}
	f.Blocks = append(f.Blocks, cont)
}

package cc

import (
	"fmt"

	"gobolt/internal/asmx"
	"gobolt/internal/cfi"
	"gobolt/internal/ir"
	"gobolt/internal/isa"
	"gobolt/internal/obj"
)

// Scratch registers reserved for lowering; MIR never uses them, so they
// are dead between MIR operations. gobolt's ICP pass re-verifies this with
// liveness analysis before reusing them.
const (
	scratchA = isa.R10
	scratchB = isa.R11
)

// lowerState carries per-function assembly state.
type lowerState struct {
	f           *ir.Func
	opts        Options
	a           *asmx.Assembler
	order       []int
	sharedFuncs map[string]bool

	blockLabels []asmx.Label
	endLabel    asmx.Label

	cfiMarks []cfiMark
	csMarks  []csMark
	lineMark []lineMark

	jtFixes []jtFix
	nextJT  int
}

type cfiMark struct {
	label asmx.Label
	inst  cfi.Inst
}

type csMark struct {
	start, end asmx.Label
	lp         int // block index
}

type lineMark struct {
	label asmx.Label
	file  string
	line  int32
}

type jtFix struct {
	name    string
	pic     bool
	targets []int
}

// lowerFunc compiles one function in the given block order. sharedFuncs
// names the functions living in shared modules (their calls use PLT32).
func lowerFunc(sharedFuncs map[string]bool, f *ir.Func, order []int, opts Options) (*obj.Func, []*obj.Global, error) {
	if len(order) == 0 || order[0] != 0 {
		return nil, nil, fmt.Errorf("layout must start with the entry block")
	}
	st := &lowerState{f: f, opts: opts, a: asmx.New(), order: order, sharedFuncs: sharedFuncs}
	st.blockLabels = make([]asmx.Label, len(f.Blocks))
	for i := range f.Blocks {
		st.blockLabels[i] = st.a.NewLabel()
	}
	st.endLabel = st.a.NewLabel()

	hasFrame := st.needsFrame()
	pos := make([]int, len(f.Blocks)) // block -> position in order
	for idx, b := range order {
		pos[b] = idx
	}

	// Landing-pad blocks: entered from the unwinder, which restores RBP
	// but not RSP; their first instruction re-establishes RSP from RBP.
	isLandingPad := make([]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			if op.Kind == ir.OpCall || op.Kind == ir.OpCallIndirect {
				if op.LandingPad > 0 {
					isLandingPad[op.LandingPad] = true
				}
			}
		}
		if b.Term.Kind == ir.TermThrow && b.Term.LandingPad > 0 {
			isLandingPad[b.Term.LandingPad] = true
		}
	}

	// Which blocks are loop headers (branched to from later positions)?
	isLoopHead := make([]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range f.Successors(b) {
			if pos[s] < pos[b.Index] {
				isLoopHead[s] = true
			}
		}
	}

	for idx, bi := range order {
		b := f.Blocks[bi]
		if opts.AlignBlocks && idx > 0 && isLoopHead[bi] {
			st.a.Align(16)
		}
		st.a.Bind(st.blockLabels[bi])
		if bi == 0 && hasFrame {
			st.emitPrologue()
		}
		if isLandingPad[bi] {
			lea := isa.NewInst(isa.LEA)
			lea.R1 = isa.RSP
			lea.M = isa.Mem{
				Base: isa.RBP, Index: isa.NoReg, Scale: 1,
				Disp: int32(-8 * (len(f.SavedRegs) + f.FrameSlots)),
			}
			st.a.Emit(lea)
		}
		st.markLine(b.Term.File, b.Line)
		for oi := range b.Ops {
			if err := st.lowerOp(&b.Ops[oi]); err != nil {
				return nil, nil, err
			}
		}
		var next int = -1
		if idx+1 < len(order) {
			next = order[idx+1]
		}
		if err := st.lowerTerm(b, next, hasFrame); err != nil {
			return nil, nil, err
		}
	}
	st.a.Bind(st.endLabel)

	res, err := st.a.Finish(0)
	if err != nil {
		return nil, nil, err
	}

	of := &obj.Func{
		Name:   f.Name,
		Bytes:  res.Code,
		Align:  opts.AlignFuncs,
		Relocs: res.Relocs,
		Global: f.Global,
	}
	for _, m := range st.cfiMarks {
		of.CFI = append(of.CFI, cfi.PCInst{PC: res.LabelOffs[m.label], Inst: m.inst})
	}
	for _, m := range st.csMarks {
		start := res.LabelOffs[m.start]
		end := res.LabelOffs[m.end]
		of.CallSites = append(of.CallSites, obj.CallSite{
			Start: start, Len: end - start,
			LPOff: res.LabelOffs[st.blockLabels[m.lp]], Action: 1,
		})
	}
	for _, m := range st.lineMark {
		of.Lines = append(of.Lines, obj.LineEntry{Off: res.LabelOffs[m.label], File: m.file, Line: m.line})
	}

	// Jump tables become globals whose entries point back into the function.
	var globals []*obj.Global
	for _, jt := range st.jtFixes {
		g := &obj.Global{Name: jt.name, Align: 8}
		if jt.pic {
			g.NoEmitRelocs = true // paper §3.2: PIC jump-table relocs vanish
			g.Data = make([]byte, 4*len(jt.targets))
			for i, t := range jt.targets {
				g.Relocs = append(g.Relocs, obj.Reloc{
					Off: uint32(4 * i), Type: obj.RelJT32,
					Sym: f.Name, Addend: int64(res.LabelOffs[st.blockLabels[t]]),
				})
			}
		} else {
			g.Data = make([]byte, 8*len(jt.targets))
			for i, t := range jt.targets {
				g.Relocs = append(g.Relocs, obj.Reloc{
					Off: uint32(8 * i), Type: obj.RelAbs64,
					Sym: f.Name, Addend: int64(res.LabelOffs[st.blockLabels[t]]),
				})
			}
		}
		globals = append(globals, g)
	}
	return of, globals, nil
}

// needsFrame reports whether the function requires a full rbp frame:
// any locals, callee-saved spills, or calls (so the unwinder can rely on
// an rbp-based CFA at every call site).
func (st *lowerState) needsFrame() bool {
	f := st.f
	if f.FrameSlots > 0 || len(f.SavedRegs) > 0 {
		return true
	}
	for _, b := range f.Blocks {
		for _, op := range b.Ops {
			if op.Kind == ir.OpCall || op.Kind == ir.OpCallIndirect {
				return true
			}
		}
	}
	return false
}

func (st *lowerState) markCFI(in cfi.Inst) {
	l := st.a.NewLabel()
	st.a.Bind(l)
	st.cfiMarks = append(st.cfiMarks, cfiMark{label: l, inst: in})
}

func (st *lowerState) markLine(file string, line int32) {
	l := st.a.NewLabel()
	st.a.Bind(l)
	st.lineMark = append(st.lineMark, lineMark{label: l, file: file, line: line})
}

func reg2(op isa.Op, dst, src isa.Reg) isa.Inst {
	i := isa.NewInst(op)
	i.R1, i.R2 = dst, src
	return i
}

func regImm(op isa.Op, dst isa.Reg, imm int64) isa.Inst {
	i := isa.NewInst(op)
	i.R1, i.Imm = dst, imm
	return i
}

func (st *lowerState) emitPrologue() {
	f := st.f
	st.a.Emit(func() isa.Inst { i := isa.NewInst(isa.PUSH); i.R1 = isa.RBP; return i }())
	st.markCFI(cfi.Inst{Kind: cfi.OpDefCfaOffset, Off: 16})
	st.markCFI(cfi.Inst{Kind: cfi.OpOffset, Reg: uint8(isa.RBP), Off: -16})
	st.a.Emit(reg2(isa.MOVrr, isa.RBP, isa.RSP))
	st.markCFI(cfi.Inst{Kind: cfi.OpDefCfaRegister, Reg: uint8(isa.RBP)})
	for i, r := range f.SavedRegs {
		st.a.Emit(func() isa.Inst { p := isa.NewInst(isa.PUSH); p.R1 = r; return p }())
		st.markCFI(cfi.Inst{Kind: cfi.OpOffset, Reg: uint8(r), Off: int32(-24 - 8*i)})
	}
	if f.FrameSlots > 0 {
		st.a.Emit(regImm(isa.SUBri, isa.RSP, int64(8*f.FrameSlots)))
	}
}

// emitEpilogue tears the frame down and restores the steady-state CFI for
// whatever block follows in layout order.
func (st *lowerState) emitEpilogue() {
	f := st.f
	if f.FrameSlots > 0 {
		st.a.Emit(regImm(isa.ADDri, isa.RSP, int64(8*f.FrameSlots)))
	}
	for i := len(f.SavedRegs) - 1; i >= 0; i-- {
		st.a.Emit(func() isa.Inst { p := isa.NewInst(isa.POP); p.R1 = f.SavedRegs[i]; return p }())
	}
	st.a.Emit(func() isa.Inst { p := isa.NewInst(isa.POP); p.R1 = isa.RBP; return p }())
	// After pop rbp the frame is gone.
	st.markCFI(cfi.Inst{Kind: cfi.OpDefCfa, Reg: uint8(isa.RSP), Off: 8})
	st.markCFI(cfi.Inst{Kind: cfi.OpRestore, Reg: uint8(isa.RBP)})
	for _, r := range f.SavedRegs {
		st.markCFI(cfi.Inst{Kind: cfi.OpRestore, Reg: uint8(r)})
	}
}

// restoreSteadyCFI re-asserts the in-frame CFI state; it must be recorded
// at the offset right after a ret so later blocks evaluate correctly.
func (st *lowerState) restoreSteadyCFI() {
	f := st.f
	st.markCFI(cfi.Inst{Kind: cfi.OpDefCfa, Reg: uint8(isa.RBP), Off: 16})
	st.markCFI(cfi.Inst{Kind: cfi.OpOffset, Reg: uint8(isa.RBP), Off: -16})
	for i, r := range f.SavedRegs {
		st.markCFI(cfi.Inst{Kind: cfi.OpOffset, Reg: uint8(r), Off: int32(-24 - 8*i)})
	}
}

// memOp assembles Sym+SymOff(+index*scale) addressing: RIP-relative when
// no index, otherwise via a scratch LEA.
func (st *lowerState) memInst(op isa.Op, valReg isa.Reg, o *ir.Op) {
	if o.Src == isa.NoReg {
		i := isa.NewInst(op)
		i.R1 = valReg
		i.M = isa.Mem{Base: isa.NoReg, Index: isa.NoReg, RIP: true}
		st.a.EmitReloc(i, obj.RelPC32, o.Sym, o.SymOff-4)
		return
	}
	lea := isa.NewInst(isa.LEA)
	lea.R1 = scratchB
	lea.M = isa.Mem{Base: isa.NoReg, Index: isa.NoReg, RIP: true}
	st.a.EmitReloc(lea, obj.RelPC32, o.Sym, o.SymOff-4)
	i := isa.NewInst(op)
	i.R1 = valReg
	i.M = isa.Mem{Base: scratchB, Index: o.Src, Scale: o.Scale}
	if i.M.Scale == 0 {
		i.M.Scale = 1
	}
	st.a.Emit(i)
}

func (st *lowerState) lowerOp(o *ir.Op) error {
	st.markLine(o.File, o.Line)
	switch o.Kind {
	case ir.OpMovImm:
		if o.Imm >= -1<<31 && o.Imm < 1<<31 {
			st.a.Emit(regImm(isa.MOVri, o.Dst, o.Imm))
		} else {
			st.a.Emit(regImm(isa.MOVabs, o.Dst, o.Imm))
		}
	case ir.OpMov:
		st.a.Emit(reg2(isa.MOVrr, o.Dst, o.Src))
	case ir.OpAdd:
		st.a.Emit(reg2(isa.ADDrr, o.Dst, o.Src))
	case ir.OpAddImm:
		st.a.Emit(regImm(isa.ADDri, o.Dst, o.Imm))
	case ir.OpSub:
		st.a.Emit(reg2(isa.SUBrr, o.Dst, o.Src))
	case ir.OpMul:
		st.a.Emit(reg2(isa.IMULrr, o.Dst, o.Src))
	case ir.OpXor:
		st.a.Emit(reg2(isa.XORrr, o.Dst, o.Src))
	case ir.OpAndImm:
		st.a.Emit(regImm(isa.ANDri, o.Dst, o.Imm))
	case ir.OpShlImm:
		st.a.Emit(regImm(isa.SHLri, o.Dst, o.Imm))
	case ir.OpShrImm:
		st.a.Emit(regImm(isa.SHRri, o.Dst, o.Imm))
	case ir.OpLoad:
		st.memInst(isa.MOVrm, o.Dst, o)
	case ir.OpLoadByte:
		st.memInst(isa.MOVZXBrm, o.Dst, o)
	case ir.OpStore:
		st.memInst(isa.MOVmr, o.Dst, o)
	case ir.OpLoadLocal, ir.OpStoreLocal:
		slotOff := int32(-8*len(st.f.SavedRegs) - 8*int(o.Imm+1) - 8)
		i := isa.NewInst(isa.MOVrm)
		if o.Kind == ir.OpStoreLocal {
			i = isa.NewInst(isa.MOVmr)
		}
		i.R1 = o.Dst
		i.M = isa.Mem{Base: isa.RBP, Index: isa.NoReg, Scale: 1, Disp: slotOff}
		st.a.Emit(i)
	case ir.OpCall:
		if o.SpillReg != isa.NoReg {
			st.a.Emit(func() isa.Inst { p := isa.NewInst(isa.PUSH); p.R1 = o.SpillReg; return p }())
		}
		st.emitCall(o.Callee, o.LandingPad)
		if o.SpillReg != isa.NoReg {
			st.a.Emit(func() isa.Inst { p := isa.NewInst(isa.POP); p.R1 = o.SpillReg; return p }())
		}
	case ir.OpCallIndirect:
		lea := isa.NewInst(isa.LEA)
		lea.R1 = scratchB
		lea.M = isa.Mem{Base: isa.NoReg, Index: isa.NoReg, RIP: true}
		st.a.EmitReloc(lea, obj.RelPC32, o.Sym, o.SymOff-4)
		mov := isa.NewInst(isa.MOVrm)
		mov.R1 = scratchA
		mov.M = isa.Mem{Base: scratchB, Index: o.Src, Scale: 8}
		st.a.Emit(mov)
		call := isa.NewInst(isa.CALLr)
		call.R1 = scratchA
		st.wrapCallSite(o.LandingPad, func() { st.a.Emit(call) })
	default:
		return fmt.Errorf("cc: unknown op kind %d", o.Kind)
	}
	return nil
}

// emitCall emits a direct call with optional exception call-site entry.
func (st *lowerState) emitCall(callee string, lp int) {
	relType := obj.RelPC32
	if st.calleeShared(callee) {
		relType = obj.RelPLT32
	}
	st.wrapCallSite(lp, func() {
		st.a.EmitReloc(isa.NewInst(isa.CALL), relType, callee, -4)
	})
}

// calleeShared reports whether callee lives in a shared module.
func (st *lowerState) calleeShared(callee string) bool {
	return st.sharedFuncs[callee]
}

// wrapCallSite brackets emit() with labels to build an LSDA entry.
func (st *lowerState) wrapCallSite(lp int, emit func()) {
	if lp <= 0 {
		emit()
		return
	}
	start := st.a.NewLabel()
	end := st.a.NewLabel()
	st.a.Bind(start)
	emit()
	st.a.Bind(end)
	st.csMarks = append(st.csMarks, csMark{start: start, end: end, lp: lp})
}

func (st *lowerState) lowerTerm(b *ir.Block, next int, hasFrame bool) error {
	t := &b.Term
	st.markLine(t.File, t.Line)
	emitJump := func(target int) {
		if target != next {
			st.a.EmitBranch(isa.NewInst(isa.JMP), st.blockLabels[target])
		}
	}
	switch t.Kind {
	case ir.TermJump:
		emitJump(t.Then)
	case ir.TermBranch:
		if t.CmpUseReg {
			st.a.Emit(reg2(isa.CMPrr, t.CmpReg, t.CmpReg2))
		} else {
			st.a.Emit(regImm(isa.CMPri, t.CmpReg, t.CmpImm))
		}
		jcc := isa.NewInst(isa.JCC)
		switch {
		case t.Then == next:
			jcc.Cc = t.Cc.Invert()
			st.a.EmitBranch(jcc, st.blockLabels[t.Else])
		case t.Else == next:
			jcc.Cc = t.Cc
			st.a.EmitBranch(jcc, st.blockLabels[t.Then])
		default:
			jcc.Cc = t.Cc
			st.a.EmitBranch(jcc, st.blockLabels[t.Then])
			st.a.EmitBranch(isa.NewInst(isa.JMP), st.blockLabels[t.Else])
		}
	case ir.TermSwitch:
		st.nextJT++
		jt := jtFix{
			name:    fmt.Sprintf("%s.JT%d", st.f.Name, st.nextJT),
			pic:     t.PIC,
			targets: append([]int(nil), t.Targets...),
		}
		st.jtFixes = append(st.jtFixes, jt)
		lea := isa.NewInst(isa.LEA)
		lea.R1 = scratchB
		lea.M = isa.Mem{Base: isa.NoReg, Index: isa.NoReg, RIP: true}
		st.a.EmitReloc(lea, obj.RelPC32, jt.name, -4)
		if t.PIC {
			mov := isa.NewInst(isa.MOVSXDrm)
			mov.R1 = scratchA
			mov.M = isa.Mem{Base: scratchB, Index: t.IndexReg, Scale: 4}
			st.a.Emit(mov)
			st.a.Emit(reg2(isa.ADDrr, scratchA, scratchB))
			jmp := isa.NewInst(isa.JMPr)
			jmp.R1 = scratchA
			st.a.Emit(jmp)
		} else {
			jmp := isa.NewInst(isa.JMPm)
			jmp.M = isa.Mem{Base: scratchB, Index: t.IndexReg, Scale: 8}
			st.a.Emit(jmp)
		}
	case ir.TermReturn:
		if hasFrame {
			st.emitEpilogue()
		}
		if st.f.RepzRet {
			st.a.Emit(isa.NewInst(isa.REPZRET))
		} else {
			st.a.Emit(isa.NewInst(isa.RET))
		}
		if hasFrame {
			st.restoreSteadyCFI()
		}
	case ir.TermTailCall:
		relType := obj.RelPC32
		if st.calleeShared(t.Callee) {
			relType = obj.RelPLT32
		}
		st.a.EmitReloc(isa.NewInst(isa.JMP), relType, t.Callee, -4)
	case ir.TermTailIndirect:
		// jmp *(table + idx*8): gobolt cannot bound this target set, so
		// the containing function becomes non-simple (paper §6.4).
		lea := isa.NewInst(isa.LEA)
		lea.R1 = scratchB
		lea.M = isa.Mem{Base: isa.NoReg, Index: isa.NoReg, RIP: true}
		st.a.EmitReloc(lea, obj.RelPC32, t.Callee, -4)
		mov := isa.NewInst(isa.MOVrm)
		mov.R1 = scratchA
		mov.M = isa.Mem{Base: scratchB, Index: t.IndexReg, Scale: 8}
		st.a.Emit(mov)
		jmp := isa.NewInst(isa.JMPr)
		jmp.R1 = scratchA
		st.a.Emit(jmp)
	case ir.TermThrow:
		st.wrapCallSite(t.LandingPad, func() {
			st.a.EmitReloc(isa.NewInst(isa.CALL), obj.RelPC32, "__throw", -4)
		})
	case ir.TermExit:
		st.a.Emit(isa.NewInst(isa.HLT))
	default:
		return fmt.Errorf("cc: unknown terminator %d", t.Kind)
	}
	return nil
}

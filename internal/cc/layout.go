package cc

import (
	"sort"

	"gobolt/internal/ir"
)

// blockSrc returns the source coordinate at the start of a block.
func blockSrc(f *ir.Func, idx int) SrcKey {
	b := f.Blocks[idx]
	if len(b.Ops) > 0 {
		return SrcKey{File: b.Ops[0].File, Line: b.Ops[0].Line}
	}
	return SrcKey{File: b.Term.File, Line: b.Term.Line}
}

// branchProb returns the probability of the Then edge of block b's
// conditional branch. With PGO it comes from the source-keyed profile:
// the successor distribution at the branch's source line, matched against
// the Then block's source coordinate. Merged across inline copies
// (Figure 2); unknown branches default to 0.5.
func branchProb(f *ir.Func, b *ir.Block, prof *SourceProfile) float64 {
	if prof == nil {
		return 0.5
	}
	st := prof.Branch[SrcKey{File: b.Term.File, Line: b.Term.Line}]
	if st == nil || st.Total == 0 {
		return 0.5
	}
	thenKey := blockSrc(f, b.Term.Then)
	elseKey := blockSrc(f, b.Term.Else)
	if thenKey == elseKey {
		return 0.5
	}
	thenCnt := st.BySucc[thenKey]
	elseCnt := st.BySucc[elseKey]
	if thenCnt+elseCnt == 0 {
		return 0.5
	}
	return float64(thenCnt) / float64(thenCnt+elseCnt)
}

// estimateFreqs propagates an entry frequency of 1.0 through edge
// probabilities for a fixed number of rounds (enough for the loop depths
// our workloads generate; exact dataflow convergence is not required for a
// layout heuristic).
func estimateFreqs(f *ir.Func, prof *SourceProfile) []float64 {
	n := len(f.Blocks)
	freq := make([]float64, n)
	freq[0] = 1
	for round := 0; round < 32; round++ {
		next := make([]float64, n)
		next[0] = 1
		for i, b := range f.Blocks {
			out := freq[i]
			if out == 0 {
				continue
			}
			switch b.Term.Kind {
			case ir.TermJump:
				next[b.Term.Then] += out
			case ir.TermBranch:
				p := branchProb(f, b, prof)
				next[b.Term.Then] += out * p
				next[b.Term.Else] += out * (1 - p)
			case ir.TermSwitch:
				share := out / float64(len(b.Term.Targets))
				for _, t := range b.Term.Targets {
					next[t] += share
				}
			}
		}
		// Dampen to avoid blow-up on loops: cap at a large value.
		for i := range next {
			if next[i] > 1e6 {
				next[i] = 1e6
			}
		}
		freq = next
	}
	return freq
}

// layoutBlocks returns the emission order of blocks. Without PGO this is
// source order (the generator's "natural" order, cold paths inline, which
// is what un-profiled compilers emit). With PGO it is a greedy
// likeliest-successor chain with cold blocks sunk to the end — a
// reorder-blocks analogue operating on (source-merged) profile data.
func layoutBlocks(f *ir.Func, opts Options) []int {
	n := len(f.Blocks)
	order := make([]int, 0, n)
	if opts.PGO == nil || n <= 2 {
		for i := 0; i < n; i++ {
			order = append(order, i)
		}
		return order
	}

	freq := estimateFreqs(f, opts.PGO)
	placed := make([]bool, n)
	place := func(i int) {
		order = append(order, i)
		placed[i] = true
	}

	// Hot chain from the entry.
	cur := 0
	place(0)
	for {
		b := f.Blocks[cur]
		next := -1
		var bestW float64 = -1
		consider := func(t int, w float64) {
			if t >= 0 && t < n && !placed[t] && w > bestW {
				next, bestW = t, w
			}
		}
		switch b.Term.Kind {
		case ir.TermJump:
			consider(b.Term.Then, 1)
		case ir.TermBranch:
			p := branchProb(f, b, opts.PGO)
			consider(b.Term.Then, p)
			consider(b.Term.Else, 1-p)
		case ir.TermSwitch:
			for _, t := range b.Term.Targets {
				consider(t, freq[t])
			}
		}
		if next == -1 {
			// Chain ended; restart from the hottest unplaced block.
			for i := 0; i < n; i++ {
				if !placed[i] {
					consider(i, freq[i]+1e-9)
				}
			}
			if next == -1 {
				break
			}
		}
		place(next)
		cur = next
	}

	// Stable split: hot blocks stay in chain order, cold blocks
	// (relative frequency below 0.05%) sink to the end.
	const coldFrac = 0.0005
	maxF := 0.0
	for _, v := range freq {
		if v > maxF {
			maxF = v
		}
	}
	var hot, cold []int
	for _, i := range order {
		if i != 0 && freq[i] < coldFrac*maxF {
			cold = append(cold, i)
		} else {
			hot = append(hot, i)
		}
	}
	return append(hot, cold...)
}

// hotFuncOrder sorts function names by profile entry count, hottest first.
// Used by tests and by the link-time exec-count ordering baseline.
func hotFuncOrder(prof *SourceProfile) []string {
	names := sortedKeys(prof.Func)
	sort.SliceStable(names, func(i, j int) bool {
		return prof.Func[names[i]] > prof.Func[names[j]]
	})
	return names
}
